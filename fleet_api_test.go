package pie_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pie"
	"pie/apps"
	"pie/internal/fleet"
)

// fleetDoc is a full-featured manifest exercising every ConfigFromManifest
// conversion: variants, role pools with headroom, classes, a pin, and KV
// policy.
const fleetDoc = `{
  "schema": 1,
  "seed": 17,
  "placement": "least-loaded",
  "variants": [
    {"name": "l4", "cost": 1.0},
    {"name": "l4-eco", "cost": 0.6, "slowdown": 1.4}
  ],
  "pools": [
    {"name": "fast", "variant": "l4", "count": 2, "max": 3},
    {"name": "eco", "variant": "l4-eco", "count": 1}
  ],
  "classes": [{"name": "interactive", "ttft": "250ms", "priority": 10}],
  "programs": [{"name": "text_completion", "version": "1.0.0", "class": "interactive"}],
  "kv": {"host_ratio": 1.5, "eviction": "priority"},
  "reconcile": {"interval": "2ms"}
}`

// TestConfigFromManifest pins the manifest -> Config conversion: topology,
// policies, and the Fleet back-pointer that makes New start the
// controller.
func TestConfigFromManifest(t *testing.T) {
	m, err := fleet.Parse([]byte(fleetDoc))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := pie.ConfigFromManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 17 || cfg.Replicas != 3 || cfg.Fleet == nil {
		t.Fatalf("topology: seed=%d replicas=%d fleet=%v", cfg.Seed, cfg.Replicas, cfg.Fleet)
	}
	if cfg.Placement != pie.PlaceLeastLoaded || len(cfg.Variants) != 2 || len(cfg.Classes) != 1 {
		t.Fatalf("policies: placement=%v variants=%d classes=%d", cfg.Placement, len(cfg.Variants), len(cfg.Classes))
	}
	if cfg.HostKVRatio != 1.5 || cfg.KVEviction != pie.EvictPriority {
		t.Fatalf("kv: ratio=%v evict=%v", cfg.HostKVRatio, cfg.KVEviction)
	}

	bad := m.Clone()
	bad.Pools[0].Variant = "ghost"
	if _, err := pie.ConfigFromManifest(bad); !errors.Is(err, fleet.ErrUnknownReference) {
		t.Fatalf("invalid manifest: %v, want ErrUnknownReference", err)
	}
}

// TestFleetManagedEngine boots an engine from the manifest and drives the
// public fleet surface end to end: headroom replicas built but idle, a
// pinned launch, a hot count change converged by the controller, and
// status reads.
func TestFleetManagedEngine(t *testing.T) {
	m, err := fleet.Parse([]byte(fleetDoc))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := pie.ConfigFromManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = pie.ModeTiming
	e := pie.New(cfg)
	e.MustRegister(apps.All()...)

	if e.FleetController() == nil {
		t.Fatal("manifest-built engine has no controller")
	}
	if rs := e.Cluster().Replicas(); len(rs) != 4 {
		t.Fatalf("built %d replicas, want 4 (3 serving + 1 headroom)", len(rs))
	}

	grow := m.Clone()
	grow.Pools[0].Count = 3
	e.Go("driver", func() {
		h, err := e.Launch(pie.Spec("text_completion", `{"prompt":"fleet api test","max_tokens":8}`))
		if err != nil {
			panic(err)
		}
		if err := h.Wait(); err != nil {
			panic(err)
		}
		if err := e.ApplyFleet(grow); err != nil {
			panic(err)
		}
		e.Sleep(30 * time.Millisecond)
		st, ok := e.FleetStatus()
		if !ok || !st.Converged || st.Generation != 1 {
			panic(fmt.Sprintf("after grow: %+v, %v", st, ok))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	st, ok := e.FleetStatus()
	if !ok || len(st.Pools) != 2 {
		t.Fatalf("FleetStatus = %+v, %v", st, ok)
	}
	serving := 0
	for _, p := range st.Pools {
		serving += p.Serving
	}
	if serving != 4 {
		t.Fatalf("serving after grow = %d, want 4", serving)
	}
}

// TestFleetSurfaceOnPlainEngine: the fleet verbs fail typed on an engine
// built from flags.
func TestFleetSurfaceOnPlainEngine(t *testing.T) {
	e := pie.New(pie.Config{Seed: 1, Mode: pie.ModeTiming, Replicas: 1})
	if e.FleetController() != nil {
		t.Fatal("plain engine has a fleet controller")
	}
	if _, ok := e.FleetStatus(); ok {
		t.Fatal("plain engine reports fleet status")
	}
	m, _ := fleet.Parse([]byte(fleetDoc))
	if err := e.ApplyFleet(m); !errors.Is(err, pie.ErrNotFleetManaged) {
		t.Fatalf("ApplyFleet = %v, want ErrNotFleetManaged", err)
	}
}

// TestParseRoles covers the re-exported role-spec parser.
func TestParseRoles(t *testing.T) {
	roles, err := pie.ParseRoles("prefill:count=2;decode")
	if err != nil || len(roles) != 2 {
		t.Fatalf("ParseRoles = %v, %v", roles, err)
	}
	if roles[0].Role != pie.RolePrefill || roles[0].Count != 2 || roles[1].Role != pie.RoleDecode {
		t.Fatalf("ParseRoles = %+v", roles)
	}
	if _, err := pie.ParseRoles("warmer:count=1"); err == nil {
		t.Fatal("unknown role accepted")
	}
}
