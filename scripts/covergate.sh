#!/bin/sh
# Per-package test-coverage ratchet. scripts/coverage_floors.txt maps
# packages to their minimum statement coverage; this script runs
# `go test -cover` and fails when any listed package measures below its
# floor, or when a listed package vanishes from the test output. Raising
# a floor is how coverage ratchets up: when a PR meaningfully lifts a
# package's coverage, bump its floor in the same commit. Floors sit a
# couple of points under the measured value so unrelated refactors don't
# trip the gate.
set -eu
cd "$(dirname "$0")/.."
floors=scripts/coverage_floors.txt
out="$(mktemp)"
trap 'rm -f "$out"' EXIT

go test -count=1 -cover ./... > "$out" || { cat "$out" >&2; exit 1; }

fail=0
while read -r pkg floor; do
	case "$pkg" in ''|'#'*) continue ;; esac
	line="$(grep -E "^ok[[:space:]]+$pkg[[:space:]]" "$out" || true)"
	if [ -z "$line" ]; then
		echo "covergate: package $pkg missing from test output" >&2
		fail=1
		continue
	fi
	got="$(echo "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')"
	if [ -z "$got" ]; then
		echo "covergate: no coverage figure for $pkg" >&2
		fail=1
		continue
	fi
	ok="$(awk -v g="$got" -v f="$floor" 'BEGIN { print (g >= f) ? 1 : 0 }')"
	if [ "$ok" = 1 ]; then
		echo "covergate: $pkg ${got}% (floor ${floor}%)"
	else
		echo "covergate: FAIL $pkg ${got}% below floor ${floor}%" >&2
		fail=1
	fi
done < "$floors"

exit "$fail"
