// Package pie is a programmable LLM serving system, reproducing "Pie: A
// Programmable Serving System for Emerging LLM Applications" (SOSP 2025).
//
// Pie decomposes the monolithic prefill–decode loop of conventional LLM
// serving into fine-grained service handlers and delegates end-to-end
// control of generation to user programs called inferlets. Applications
// gain explicit KV-cache management (R1), custom decoding loops (R2), and
// integrated computation and I/O (R3) without touching the serving system.
//
// The Engine assembles the three-layer architecture (§5):
//
//	application layer  — inferlet lifecycle manager, sandboxed sessions
//	control layer      — resource virtualization + batch scheduling
//	inference layer    — batched API handlers over the (simulated) GPU
//
// Everything runs on a deterministic virtual clock: construct an Engine,
// register programs, spawn client processes with Engine.Go, then call
// Engine.Run to drive the simulation to completion. See examples/ for
// runnable scenarios and DESIGN.md for the substitution policy that maps
// the paper's hardware to this pure-Go reproduction.
package pie

import (
	"errors"
	"fmt"
	"time"

	"pie/api"
	"pie/inferlet"
	"pie/internal/cluster"
	"pie/internal/core"
	"pie/internal/fleet"
	"pie/internal/ilm"
	"pie/internal/infer"
	"pie/internal/metrics"
	"pie/internal/model"
	"pie/internal/netsim"
	"pie/internal/sim"
)

// Re-exported programming-model types and errors, so applications that
// embed the engine need only import "pie": programs are written against
// Session, obtain a *Queue from Session.Open, and negotiate trait
// capabilities from it (see package inferlet for the full v2 API).
// Programs deploy with a Manifest (version, required models/traits,
// resource limits) and launch from a LaunchSpec.
type (
	Program  = inferlet.Program
	Manifest = inferlet.Manifest
	Limits   = inferlet.Limits
	Session  = inferlet.Session
	Queue    = inferlet.Queue

	// LaunchSpec describes one inferlet launch: program reference
	// ("name" or "name@version"), args, service class, default queue
	// priority, virtual deadline, and an opaque client tag.
	LaunchSpec = ilm.LaunchSpec
	// ProgramInfo describes one registered artifact (Engine.Programs).
	ProgramInfo = ilm.ProgramInfo
	// ServiceClass is an SLO contract launches run under: latency targets,
	// scheduler priority, and degradation eligibility (Config.Classes).
	ServiceClass = api.ServiceClass
)

// Spec builds the common LaunchSpec: a program reference plus positional
// launch arguments. Callers needing priority, deadline, or a client tag
// construct the LaunchSpec literal instead.
func Spec(program string, args ...string) LaunchSpec {
	return LaunchSpec{Program: program, Args: args}
}

// Re-exported API errors (see package api for the full set).
var (
	ErrNoSuchModel         = api.ErrNoSuchModel
	ErrNoSuchTrait         = api.ErrNoSuchTrait
	ErrQueueClosed         = api.ErrQueueClosed
	ErrNoSuchProgram       = api.ErrNoSuchProgram
	ErrUnsatisfiedManifest = api.ErrUnsatisfiedManifest
	ErrAborted             = api.ErrAborted
	ErrDeadlineExceeded    = api.ErrDeadlineExceeded
	ErrLimitExceeded       = api.ErrLimitExceeded
	ErrTerminated          = api.ErrTerminated
	ErrNoSuchClass         = api.ErrNoSuchClass
	ErrNoDecodeCapacity    = api.ErrNoDecodeCapacity

	// Fault-tolerance errors: replica death surfaced to waiters, launches
	// shed at admission, injected transient faults, and retry exhaustion.
	ErrReplicaLost          = api.ErrReplicaLost
	ErrOverloaded           = api.ErrOverloaded
	ErrTransientFault       = api.ErrTransientFault
	ErrRetryBudgetExhausted = api.ErrRetryBudgetExhausted
)

// ErrNotFleetManaged is returned by ApplyFleet on an engine that was not
// built from a fleet manifest (Config.Fleet unset).
var ErrNotFleetManaged = errors.New("pie: engine is not fleet-managed (start it with Config.Fleet)")

// ExecutionMode selects functional fidelity (see internal/infer).
type ExecutionMode int

const (
	// ModeFull runs real tensor math on the tiny functional model:
	// correct token distributions, attention, page semantics.
	ModeFull ExecutionMode = iota
	// ModeTiming skips tensor math but keeps every timing charge and all
	// resource bookkeeping; used for large-scale experiments.
	ModeTiming
)

// Policy names a batch-scheduling strategy (§6.1, Table 5).
type Policy = core.SchedPolicy

// Re-exported scheduling policies.
const (
	PolicyAdaptive = core.PolicyAdaptive
	PolicyEager    = core.PolicyEager
	PolicyKOnly    = core.PolicyKOnly
	PolicyTOnly    = core.PolicyTOnly
)

// PlacementPolicy names a cluster routing strategy (internal/cluster).
type PlacementPolicy = cluster.PlacementPolicy

// Re-exported placement policies.
const (
	PlaceRoundRobin      = cluster.PlaceRoundRobin
	PlaceLeastLoaded     = cluster.PlaceLeastLoaded
	PlaceKVAffinity      = cluster.PlaceKVAffinity
	PlaceProgramAffinity = cluster.PlaceProgramAffinity
)

// AutoscaleConfig tunes the cluster's queue-depth autoscaler.
type AutoscaleConfig = cluster.AutoscaleConfig

// SLO-aware serving (internal/cluster): the saturation-guarded, cost-aware
// scaler, heterogeneous replica pools, and per-class attainment stats.
type (
	// ScalerConfig tunes the SLO scaler that replaces the queue-depth
	// autoscaler: saturation-guarded scale-up with a cold-start hold,
	// cheapest-variant-meeting-SLO selection, and scale-to-zero.
	ScalerConfig = cluster.ScalerConfig
	// ReplicaVariant describes one hardware class in a heterogeneous
	// replica pool: a name, a cost rate, and a kernel slowdown.
	ReplicaVariant = cluster.ReplicaVariant
	// ClassStat snapshots one service class's cumulative SLO attainment
	// and degradation counters (Stats.Classes).
	ClassStat = cluster.ClassStat
)

// Prefill/decode disaggregation (internal/cluster): role-aware replica
// pools with KV handoff over the modeled interconnect.
type (
	// Role is a replica's serving phase assignment: unified (both
	// phases, the default), prefill, or decode.
	Role = cluster.Role
	// RoleSpec assigns a role to a run of replicas in ID order
	// (Config.Roles).
	RoleSpec = cluster.RoleSpec
)

// Re-exported replica roles.
const (
	RoleUnified = cluster.RoleUnified
	RolePrefill = cluster.RolePrefill
	RoleDecode  = cluster.RoleDecode
)

// ParseRoles parses a compact role-pool spec, e.g.
// "prefill:count=2;decode" (CLI flags); it piggybacks on the -variants
// syntax.
func ParseRoles(spec string) ([]RoleSpec, error) { return cluster.ParseRoles(spec) }

// ParseServiceClasses parses a compact class-registry spec, e.g.
// "interactive:ttft=250ms,itl=50ms,prio=10;batch:tps=40,degradable"
// (CLI flags).
func ParseServiceClasses(spec string) ([]ServiceClass, error) {
	return cluster.ParseServiceClasses(spec)
}

// ParseReplicaVariants parses a compact heterogeneous-pool spec, e.g.
// "l4:cost=1,count=4;l4e:cost=0.6,slow=1.4" (CLI flags).
func ParseReplicaVariants(spec string) ([]ReplicaVariant, error) {
	return cluster.ParseReplicaVariants(spec)
}

// Fault-tolerance configuration (internal/cluster, internal/ilm): replica
// health checking, saturation load shedding, deterministic fault
// injection, and launch retry policies.
type (
	// HealthConfig tunes the replica health monitor (healthy → suspect →
	// dead → replaced). The zero value disables it.
	HealthConfig = cluster.HealthConfig
	// ShedConfig tunes the saturation guard that sheds best-effort
	// (negative-priority) launches with ErrOverloaded. The zero value
	// disables it.
	ShedConfig = cluster.ShedConfig
	// FaultPlan is a deterministic, seeded failure schedule replayed
	// against the replicas (chaos experiments).
	FaultPlan = cluster.FaultPlan
	// FaultEvent schedules one replica fault at a virtual instant.
	FaultEvent = cluster.FaultEvent
	// FaultKind names a replica fault: crash-stop, hang, or slow-down.
	FaultKind = cluster.FaultKind
	// HealthState is a replica's position in the failure state machine.
	HealthState = cluster.HealthState
	// RetryPolicy controls launch requeue-on-failure: attempts, capped
	// exponential backoff with deterministic jitter, and a backoff budget.
	RetryPolicy = ilm.RetryPolicy
)

// Re-exported fault kinds and health states.
const (
	FaultCrash = cluster.FaultCrash
	FaultHang  = cluster.FaultHang
	FaultSlow  = cluster.FaultSlow

	HealthHealthy = cluster.HealthHealthy
	HealthSuspect = cluster.HealthSuspect
	HealthDead    = cluster.HealthDead
)

// ParseFaultPlan parses a compact fault-plan spec, e.g.
// "crash:1@200ms,hang:2@300ms,slow:3@100ms*4" (CLI flags).
func ParseFaultPlan(spec string) (FaultPlan, error) { return cluster.ParseFaultPlan(spec) }

// RandomFaultPlan derives a seeded random kill/hang/slow schedule over
// (0, window] for chaos tests; replica 0 is never faulted.
func RandomFaultPlan(seed uint64, replicas, events int, window time.Duration) FaultPlan {
	return cluster.RandomFaultPlan(seed, replicas, events, window)
}

// EvictionPolicy selects the tiered-KV offload victim policy
// (internal/core).
type EvictionPolicy = core.EvictionPolicy

// Re-exported eviction policies.
const (
	EvictLRU      = core.EvictLRU
	EvictPriority = core.EvictPriority
)

// Config parameterizes an Engine.
type Config struct {
	// Seed drives every random stream (weights, workloads, sampling).
	Seed uint64
	// Mode selects functional fidelity. Default ModeFull.
	Mode ExecutionMode
	// Policy selects the batch scheduler strategy. Default PolicyAdaptive.
	Policy Policy
	// BatchK is the PolicyKOnly threshold (default 32).
	BatchK int
	// BatchT is the PolicyTOnly flush interval (default 5ms).
	BatchT time.Duration
	// MaxBatchCalls caps batch size at the backend (default 256).
	MaxBatchCalls int
	// ClientRTT is the client↔server network round trip (default 8ms,
	// calibrated to the paper's launch-latency floor).
	ClientRTT time.Duration
	// ExternalLatency is the default latency of unregistered external
	// services reached via HTTPGet/HTTPPost (default 50ms).
	ExternalLatency time.Duration
	// TopKOverride truncates returned distributions (default: model's 256).
	TopKOverride int
	// NoSchedOverhead and NoDistReturnOverhead zero the corresponding
	// control-layer charges for the Table 3 opportunity-cost ablation.
	NoSchedOverhead      bool
	NoDistReturnOverhead bool
	// Replicas is the number of backend replicas, each a full serving
	// stack (device, scheduler, KV pools) behind one cluster router.
	// Default 1: the paper's single-device engine.
	Replicas int
	// Placement selects the cluster routing policy. Default round-robin.
	Placement PlacementPolicy
	// Autoscale enables and bounds the queue-depth replica autoscaler;
	// when Autoscale.Max exceeds Replicas, the extra replicas are built
	// cold and activated on demand. Ignored when Scaler is enabled.
	Autoscale AutoscaleConfig
	// Classes registers the service-class contracts launches may run
	// under: latency targets, scheduler priority, and degradation
	// eligibility. Launches naming an unknown class fail ErrNoSuchClass.
	Classes []ServiceClass
	// Variants assigns hardware classes across the replica pool in ID
	// order (heterogeneous serving: cost rate + kernel slowdown per
	// variant). Empty keeps the homogeneous default pool.
	Variants []ReplicaVariant
	// Roles assigns serving phases (prefill/decode/unified) across the
	// replica pool in ID order. With any non-unified role present, new
	// launches route to prefill capacity and sessions hand their KV state
	// off to a decode replica after the first token. Empty keeps every
	// replica unified — the classic colocated configuration.
	Roles []RoleSpec
	// HandoffBudget bounds concurrent in-flight prefill->decode KV
	// transfers (default 2); excess handoffs queue FIFO.
	HandoffBudget int
	// HandoffMinPages keeps sessions whose KV footprint is below this many
	// physical pages decoding on their prefill replica instead of
	// migrating (0 migrates everything).
	HandoffMinPages int
	// Scaler enables the SLO scaler: saturation-guarded, cost-aware
	// scale-up/down driven by per-class attainment. Supersedes Autoscale;
	// when Scaler.Max exceeds Replicas, the extra replicas are built cold.
	Scaler ScalerConfig
	// HostKVRatio sizes each replica's host-memory KV tier as a multiple
	// of the device page capacity (e.g. 1.0 doubles effective KV
	// capacity; cold pages spill over PCIe and fault back on use).
	// Default 0: device-only pools, the paper's configuration.
	HostKVRatio float64
	// KVEviction selects the offload victim policy: EvictLRU (default)
	// or EvictPriority (queue-priority-aware, LRU within a class).
	KVEviction EvictionPolicy
	// KVPagesOverride overrides every model's device page capacity
	// derived from GPU memory geometry (0 keeps the geometry). Used by
	// oversubscription experiments and tests.
	KVPagesOverride int
	// ArtifactCacheBytes sizes each replica's warm-artifact cache (the
	// compiled program binaries resident there; cold launches pay upload
	// + JIT, warm ones skip it). 0 takes the device default (8 MB, which
	// holds every Table 2 binary); negative disables eviction.
	ArtifactCacheBytes int64
	// Health enables and tunes replica failure detection and recovery:
	// dead replicas are taken out of rotation, their in-flight inferlets
	// aborted typed (ErrReplicaLost) and requeued when retried, their
	// exports declared lost, and a cold spare activated as replacement.
	Health HealthConfig
	// Shed enables the saturation guard: best-effort (negative-priority)
	// launches are rejected with ErrOverloaded when aggregate KV or queue
	// utilization crosses the watermarks.
	Shed ShedConfig
	// Faults injects a deterministic failure schedule (chaos testing):
	// replica crash/hang/slow events plus a transient per-launch failure
	// rate, all byte-identically reproducible from the plan's seed.
	Faults FaultPlan
	// DefaultRetry applies to launches whose LaunchSpec.Retry is zero.
	// The zero value keeps failures final (no retries).
	DefaultRetry RetryPolicy
	// Fleet, when set, makes the deployment declaratively managed: the
	// engine builds every pool's full capacity (active replicas aligned
	// per pool), starts the reconciling fleet controller, and applies
	// program pins. Build the rest of the Config from the same manifest
	// with ConfigFromManifest; Engine.ApplyFleet hot-reloads it.
	Fleet *fleet.Manifest
}

// ConfigFromManifest converts a validated fleet manifest into the engine
// Config it declares: pool topology (variants, roles, counts), placement,
// service classes, the SLO scaler, and KV policy, with Fleet set so New
// starts the reconciling controller. Caller-side fields the manifest does
// not speak to (Mode, ClientRTT, retry policy, ...) keep their zero
// values — set them after, or let explicit server flags override.
func ConfigFromManifest(m *fleet.Manifest) (Config, error) {
	if err := m.Validate(); err != nil {
		return Config{}, err
	}
	cfg := Config{
		Seed:      m.Seed,
		Replicas:  m.InitialActive(),
		Placement: m.PlacementPolicy(),
		Variants:  m.ReplicaVariants(),
		Roles:     m.RoleSpecs(),
		Classes:   m.ServiceClasses(),
		Scaler:    m.ScalerConfig(),
		Fleet:     m,
	}
	if kv := m.KV; kv != nil {
		cfg.HostKVRatio = kv.HostRatio
		cfg.KVEviction = m.EvictionPolicy()
		cfg.KVPagesOverride = kv.PagesOverride
	}
	return cfg, nil
}

func (c Config) withDefaults() Config {
	if c.ClientRTT == 0 {
		c.ClientRTT = 8 * time.Millisecond
	}
	if c.ExternalLatency == 0 {
		c.ExternalLatency = 50 * time.Millisecond
	}
	if c.BatchK == 0 {
		c.BatchK = 32
	}
	if c.BatchT == 0 {
		c.BatchT = 5 * time.Millisecond
	}
	if c.MaxBatchCalls == 0 {
		c.MaxBatchCalls = 256
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	return c
}

// Engine is one Pie serving deployment on its own virtual clock.
type Engine struct {
	cfg     Config
	clock   *sim.Clock
	catalog *model.Catalog
	cluster *cluster.Cluster
	ilm     *ilm.ILM
	world   *netsim.World
	fleet   *fleet.Controller // nil unless Config.Fleet is set
}

// New assembles an engine. The standard catalog (llama-1b/3b/8b) is always
// installed; pick the model per command queue. With cfg.Replicas > 1 (or
// autoscaling enabled) the engine builds one full serving stack per
// replica — its own device, scheduler, and KV pools — behind the cluster
// router; model weights and the tokenizer are shared read-only.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	clock := sim.NewClock()
	cat := model.StandardCatalog(cfg.Seed)
	mode := infer.ExecFull
	if cfg.Mode == ModeTiming {
		mode = infer.ExecTiming
	}
	var models []*model.Model
	for _, name := range cat.Names() {
		m, _ := cat.Get(name)
		if cfg.TopKOverride > 0 {
			c := m.Config()
			c.TopK = cfg.TopKOverride
			m = model.New(c, cat.Tokenizer)
			m.RegisterAdapter("chat", 4, 0.5, c.Seed^0xA1)
			m.RegisterAdapter("code", 4, 0.5, c.Seed^0xB2)
		}
		models = append(models, m)
	}
	sched := core.DefaultSchedConfig()
	sched.Policy = cfg.Policy
	sched.K = cfg.BatchK
	sched.T = cfg.BatchT
	sched.MaxBatchCalls = cfg.MaxBatchCalls
	if cfg.NoSchedOverhead {
		sched.SchedOverhead = 0
	}
	if cfg.NoDistReturnOverhead {
		sched.DistReturnOverhead = 0
	}
	autoscale := cfg.Autoscale
	if cfg.Scaler.Enabled {
		// The SLO scaler supersedes the queue-depth autoscaler: one owner
		// for the scaling decision, or the two fight over the fleet.
		autoscale = AutoscaleConfig{}
	}
	total := cfg.Replicas
	if autoscale.Enabled && autoscale.Max > total {
		total = autoscale.Max
	}
	if cfg.Scaler.Enabled && cfg.Scaler.Max > total {
		total = cfg.Scaler.Max
	}
	if cfg.Fleet != nil && cfg.Fleet.TotalBuilt() > total {
		// Pools with headroom (max > count) build their full capacity;
		// the fleet controller decides which replicas serve.
		total = cfg.Fleet.TotalBuilt()
	}
	variants := cluster.ExpandVariants(cfg.Variants, total)
	roles := cluster.ExpandRoles(cfg.Roles, total)
	offload := core.OffloadConfig{HostRatio: cfg.HostKVRatio, Eviction: cfg.KVEviction}
	artifacts := core.ArtifactConfig{CapacityBytes: cfg.ArtifactCacheBytes}
	replicas := make([]*cluster.Replica, 0, total)
	for i := 0; i < total; i++ {
		v := variants[i]
		backend := infer.NewBackend(clock, fmt.Sprintf("%s-%d", v.Name, i))
		if v.Slowdown > 1 {
			backend.Device.SetSlowdown(v.Slowdown)
		}
		rts := make([]*infer.ModelRuntime, 0, len(models))
		for _, m := range models {
			rt := infer.NewModelRuntime(m, mode)
			if cfg.KVPagesOverride > 0 {
				rt.PageCapacity = cfg.KVPagesOverride
			}
			rts = append(rts, rt)
		}
		replicas = append(replicas, &cluster.Replica{
			ID:          i,
			Backend:     backend,
			Ctl:         core.NewController(clock, backend, rts, sched, offload, artifacts),
			Variant:     v.Name,
			CostRate:    v.CostRate,
			SpeedFactor: v.Slowdown,
			Role:        roles[i],
		})
	}
	cl := cluster.New(clock, cfg.Placement, autoscale, replicas, cfg.Replicas)
	if len(cfg.Classes) > 0 {
		cl.RegisterClasses(cfg.Classes)
	}
	for _, r := range replicas {
		if r.Role != cluster.RoleUnified {
			cl.EnableHandoff(cluster.HandoffConfig{Budget: cfg.HandoffBudget, MinPages: cfg.HandoffMinPages})
			break
		}
	}
	if cfg.Scaler.Enabled {
		cl.EnableScaler(cfg.Scaler)
	}
	if cfg.Health.Enabled {
		cl.EnableHealth(cfg.Health)
	}
	if cfg.Shed.Enabled {
		cl.EnableShedding(cfg.Shed)
	}
	if !cfg.Faults.Empty() {
		if err := cl.InjectFaults(cfg.Faults); err != nil {
			panic(err)
		}
	}
	world := netsim.NewWorld(clock)
	world.DefaultLatency = cfg.ExternalLatency
	lifecycle := ilm.New(clock, cl, world, replicas[0].Ctl.ModelInfos())
	if cfg.DefaultRetry.Enabled() {
		lifecycle.SetDefaultRetry(cfg.DefaultRetry)
	}
	lifecycle.SetClasses(cfg.Classes)
	e := &Engine{
		cfg: cfg, clock: clock, catalog: cat,
		cluster: cl, ilm: lifecycle, world: world,
	}
	if cfg.Fleet != nil {
		e.fleet = fleet.NewController(clock, cl, lifecycle, cfg.Fleet)
		// cluster.New activated the first cfg.Replicas IDs; realign to the
		// manifest's per-pool desired sets before any traffic, then start
		// the reconcile daemon.
		e.fleet.AlignInitial()
		e.fleet.Start()
	}
	return e
}

// Register deploys an inferlet program into the versioned registry,
// validating its manifest against the catalog (ErrUnsatisfiedManifest on
// requirements the installed models cannot serve). Registering a new
// version of an existing name is a rolling deployment: bare-name launches
// resolve to the highest version.
func (e *Engine) Register(p inferlet.Program) error { return e.ilm.Register(p) }

// MustRegister is Register for static program sets; it panics on error.
func (e *Engine) MustRegister(ps ...inferlet.Program) {
	for _, p := range ps {
		if err := e.ilm.Register(p); err != nil {
			panic(err)
		}
	}
}

// Programs lists every registered artifact with its manifest, sorted by
// name then version.
func (e *Engine) Programs() []ProgramInfo { return e.ilm.ProgramInfos() }

// ApplyFleet hot-reloads the fleet manifest: desired state is validated,
// checked compatible (pool counts, program pins, placement, and reconcile
// tuning may change live; topology changes fail typed fleet.ErrImmutable),
// and converged on subsequent reconcile ticks. Fails when the engine was
// not built from a manifest. Must be called from a sim process.
func (e *Engine) ApplyFleet(m *fleet.Manifest) error {
	if e.fleet == nil {
		return ErrNotFleetManaged
	}
	return e.fleet.Apply(m)
}

// FleetStatus reports the fleet controller's desired-vs-actual view; ok
// is false when the engine is not fleet-managed.
func (e *Engine) FleetStatus() (fleet.Status, bool) {
	if e.fleet == nil {
		return fleet.Status{}, false
	}
	return e.fleet.Status(), true
}

// FleetController exposes the reconciling controller (nil unless the
// engine was built from a manifest) — experiment and test surface.
func (e *Engine) FleetController() *fleet.Controller { return e.fleet }

// RegisterTool installs an external service reachable from inferlets and
// baseline clients via HTTP calls.
func (e *Engine) RegisterTool(name string, latency time.Duration, handler func(req string) string) {
	e.world.Register(&netsim.Service{Name: name, Latency: latency, Handler: handler})
}

// Handle is the client-side connection to a launched inferlet.
type Handle struct {
	h *ilm.Handle
}

// Send delivers a message to the inferlet.
func (h *Handle) Send(msg string) { h.h.Send(msg) }

// Recv resolves with the inferlet's next message.
func (h *Handle) Recv() api.Future[string] { return h.h.Recv() }

// TryRecv drains one queued message without blocking.
func (h *Handle) TryRecv() (string, bool) { return h.h.TryRecv() }

// Wait blocks the calling process until the inferlet finishes.
func (h *Handle) Wait() error { return h.h.Wait() }

// Done reports whether the inferlet finished.
func (h *Handle) Done() bool { return h.h.Done() }

// Logs returns the inferlet's Print output.
func (h *Handle) Logs() []string { return h.h.Logs() }

// Stats reports per-instance instrumentation: control-layer calls,
// inference-layer calls, and accepted output tokens (Fig. 10/11).
func (h *Handle) Stats() (controlCalls, inferCalls, outputTokens int) { return h.h.Stats() }

// Abort cancels the inferlet: queue-scoped reclamation frees every page
// and embedding slot it holds, in-flight calls fail, and Wait resolves
// with ErrAborted. A no-op on finished runs. Must be called from a sim
// process; it reports whether this call performed the abort.
func (h *Handle) Abort() bool { return h.h.Abort() }

// Program reports the launched program name and resolved version.
func (h *Handle) Program() (name, version string) { return h.h.Program, h.h.Version }

// ClientTag reports the opaque client label from the LaunchSpec.
func (h *Handle) ClientTag() string { return h.h.ClientTag }

// Attempts reports how many placement attempts the launch has made: 1 on
// the happy path, more when the retry policy requeued it after a replica
// loss or transient fault.
func (h *Handle) Attempts() int { return h.h.Attempts() }

// Class reports the service class the launch resolved to ("" = unclassed).
func (h *Handle) Class() string { return h.h.Class() }

// Degraded reports whether admission degraded this launch (output cap +
// cheaper-model substitution) instead of shedding it near saturation.
func (h *Handle) Degraded() bool { return h.h.Degraded() }

// Launch starts an inferlet described by a LaunchSpec over the client
// link (one half RTT out; the full acknowledgement round trip is visible
// through Wait/Recv). Must be called from a sim process. The common case
// reads e.Launch(pie.Spec("name", args...)); legacy call sites keep the
// old positional signature through inferlet/compat.Launch.
func (e *Engine) Launch(spec LaunchSpec) (*Handle, error) {
	e.clock.Sleep(e.cfg.ClientRTT / 2)
	h, err := e.ilm.Launch(spec)
	if err != nil {
		return nil, err
	}
	return &Handle{h: h}, nil
}

// LaunchAndWait runs an inferlet to completion and returns its logs.
func (e *Engine) LaunchAndWait(spec LaunchSpec) ([]string, error) {
	h, err := e.Launch(spec)
	if err != nil {
		return nil, err
	}
	if err := h.Wait(); err != nil {
		return h.Logs(), err
	}
	return h.Logs(), nil
}

// Go spawns a client/driver process on the engine's clock.
func (e *Engine) Go(name string, fn func()) { e.clock.Go(name, fn) }

// Run drives the simulation until every client process and inferlet
// finishes. It returns an error on deadlock.
func (e *Engine) Run() error { return e.clock.Run() }

// RunClient is the common single-client pattern: spawn fn and drive the
// simulation to completion.
func (e *Engine) RunClient(fn func()) error {
	e.Go("client", fn)
	return e.Run()
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.clock.Now() }

// Sleep suspends the calling sim process.
func (e *Engine) Sleep(d time.Duration) { e.clock.Sleep(d) }

// ClientRTT reports the configured client link round trip.
func (e *Engine) ClientRTT() time.Duration { return e.cfg.ClientRTT }

// Stats summarizes engine activity, aggregated across replicas.
type Stats struct {
	GPUBusy        time.Duration
	Kernels        int
	Batches        int
	BatchedCalls   int
	AvgBatch       float64
	MaxBatch       int
	Terminations   int
	Launches       int
	ColdLaunches   int
	Aborts         int
	ToolCalls      int
	ActiveReplicas int

	// Warm-artifact cache, aggregated across replicas (Fig. 9
	// economics: Misses paid upload + JIT, Hits skipped it).
	ArtifactHits      int
	ArtifactMisses    int
	ArtifactEvictions int

	// Tiered KV cache (zero when HostKVRatio is 0).
	KVDevicePages int // device-resident pages right now
	KVHostPages   int // host-resident (offloaded) pages right now
	KVPeakPages   int // high-water mark of live pages, both tiers
	SwapInPages   int // pages faulted host -> device
	SwapOutPages  int // pages offloaded device -> host
	SwapTime      time.Duration

	// Fault layer (all zero without health/shed/fault config).
	FaultsInjected  int           // replica fault events applied
	TransientFaults int           // injected transient launch failures
	ReplicasLost    int           // replicas declared dead
	Replacements    int           // cold spares activated for the dead
	ExportsLost     int           // KV exports lost with dead replicas
	Sheds           int           // best-effort launches shed at admission
	Requeues        int           // launches re-placed after replica death
	Retries         int           // launch attempts retried before placement stuck
	UpgradeRequeues int           // instances restarted onto a new pinned version
	DetectTime      time.Duration // cumulative failure-onset -> declared-dead latency

	// SLO-aware serving (zero without Classes/Scaler config).
	Degradations      int         // launches admitted degraded instead of shed
	ModelDowngrades   int         // queues opened on a cheaper substituted model
	ScaleToZeroEvents int         // idle-fleet drains to zero
	CostUnits         float64     // Σ replica cost-rate x active seconds
	Classes           []ClassStat // per-class SLO attainment, sorted by name

	// Prefill/decode disaggregation (zero without Config.Roles).
	Handoffs       int           // sessions migrated prefill -> decode
	HandoffPages   int           // distinct physical KV pages copied across
	HandoffTime    time.Duration // cumulative modeled interconnect time
	HandoffDenied  int           // handoffs denied (no decode capacity)
	HandoffQueued  int           // handoffs that waited on the transfer budget
	HandoffSkipped int           // sessions kept in place below HandoffMinPages
}

// Stats snapshots engine counters. Per-device counters (busy time,
// kernels, batches) sum over replicas; MaxBatch is the cluster-wide max.
func (e *Engine) Stats() Stats {
	out := Stats{
		Launches:       e.ilm.Launches,
		ColdLaunches:   e.ilm.ColdLaunches,
		Aborts:         e.ilm.Aborts,
		ToolCalls:      e.world.Calls,
		ActiveReplicas: e.cluster.ActiveReplicas(),

		FaultsInjected:  e.cluster.FaultsInjected,
		TransientFaults: e.cluster.TransientFaults,
		ReplicasLost:    e.cluster.ReplicasLost,
		Replacements:    e.cluster.Replacements,
		ExportsLost:     e.cluster.ExportsLost,
		Sheds:           e.cluster.Sheds,
		Requeues:        e.ilm.Requeues,
		Retries:         e.ilm.Retries,
		UpgradeRequeues: e.ilm.UpgradeRequeues,
		DetectTime:      e.cluster.DetectTime,

		Degradations:      e.cluster.Degradations,
		ScaleToZeroEvents: e.cluster.ScaleToZeroEvents,
		CostUnits:         e.cluster.CostUnits(e.clock.Now()),
		Classes:           e.cluster.ClassStats(),

		Handoffs:       e.cluster.Handoffs,
		HandoffPages:   e.cluster.HandoffPages,
		HandoffTime:    e.cluster.HandoffTime,
		HandoffDenied:  e.cluster.HandoffDenied,
		HandoffQueued:  e.cluster.HandoffQueued,
		HandoffSkipped: e.cluster.HandoffSkipped,
	}
	for _, r := range e.cluster.Replicas() {
		s := r.Ctl.Scheduler()
		out.ModelDowngrades += r.Ctl.Downgrades
		out.GPUBusy += r.Backend.Device.BusyTime()
		out.Kernels += r.Backend.Device.Kernels()
		out.Batches += s.Batches
		out.BatchedCalls += s.BatchedCalls
		if s.MaxBatch > out.MaxBatch {
			out.MaxBatch = s.MaxBatch
		}
		out.Terminations += r.Ctl.Terminations
		art := r.Ctl.ArtifactStats()
		out.ArtifactHits += art.Hits
		out.ArtifactMisses += art.Misses
		out.ArtifactEvictions += art.Evictions
		off := r.Ctl.OffloadStats()
		out.KVDevicePages += off.DeviceInUse
		out.KVHostPages += off.HostInUse
		out.KVPeakPages += off.PeakInUse
		out.SwapInPages += off.SwapInPages
		out.SwapOutPages += off.SwapOutPages
		out.SwapTime += off.XferTime
	}
	if out.Batches > 0 {
		out.AvgBatch = float64(out.BatchedCalls) / float64(out.Batches)
	}
	return out
}

// ReplicaStats snapshots every replica's counters in ID order.
func (e *Engine) ReplicaStats() []metrics.ReplicaStats { return e.cluster.ReplicaStats() }

// PoolStats reports KV page occupancy for a model, summed over replicas.
func (e *Engine) PoolStats(modelName string) (inUse, capacity int) {
	for _, r := range e.cluster.Replicas() {
		u, c := r.Ctl.PoolStats(modelName)
		inUse += u
		capacity += c
	}
	return inUse, capacity
}

// Models lists the installed model ids.
func (e *Engine) Models() []string { return e.catalog.Names() }

// String describes the engine configuration.
func (e *Engine) String() string {
	return fmt.Sprintf("pie.Engine{mode=%d policy=%s replicas=%d placement=%s rtt=%v}",
		e.cfg.Mode, e.Controller().Scheduler().Config().Policy,
		len(e.cluster.Replicas()), e.cluster.Policy(), e.cfg.ClientRTT)
}

// Internal hooks for the experiment harness (internal/eval) and advanced
// tests. These expose internal types and are not part of the stable API.

// Clock returns the engine's virtual clock.
func (e *Engine) Clock() *sim.Clock { return e.clock }

// Cluster returns the multi-backend routing layer.
func (e *Engine) Cluster() *cluster.Cluster { return e.cluster }

// Controller returns replica 0's control layer (the only one in
// single-replica engines).
func (e *Engine) Controller() *core.Controller { return e.cluster.Replicas()[0].Ctl }

// Backend returns replica 0's inference layer.
func (e *Engine) Backend() *infer.Backend { return e.cluster.Replicas()[0].Backend }

// Lifecycle returns the application layer.
func (e *Engine) Lifecycle() *ilm.ILM { return e.ilm }

// World returns the external-service registry.
func (e *Engine) World() *netsim.World { return e.world }
