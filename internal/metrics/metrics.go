// Package metrics collects latency/throughput series for the evaluation
// harness and renders paper-style tables.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Series accumulates duration samples.
type Series struct {
	Name    string
	samples []time.Duration
}

// Add records one sample.
func (s *Series) Add(d time.Duration) { s.samples = append(s.samples, d) }

// N returns the sample count.
func (s *Series) N() int { return len(s.samples) }

// Mean returns the average sample.
func (s *Series) Mean() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.samples {
		sum += d
	}
	return sum / time.Duration(len(s.samples))
}

// Percentile returns the p-th percentile (0-100) by nearest rank.
func (s *Series) Percentile(p float64) time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Max returns the largest sample.
func (s *Series) Max() time.Duration {
	var mx time.Duration
	for _, d := range s.samples {
		if d > mx {
			mx = d
		}
	}
	return mx
}

// Min returns the smallest sample.
func (s *Series) Min() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	mn := s.samples[0]
	for _, d := range s.samples[1:] {
		if d < mn {
			mn = d
		}
	}
	return mn
}

// Throughput converts a completion count over a window into items/second.
func Throughput(completed int, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(completed) / window.Seconds()
}

// Table renders rows with aligned columns, paper style.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// ReplicaStats snapshots one cluster replica's counters. The JSON shape is
// part of the pie-server /stats contract and the determinism contract:
// same-seed runs must marshal to byte-identical documents.
type ReplicaStats struct {
	ID           int     `json:"id"`
	Device       string  `json:"device"`
	Active       bool    `json:"active"`
	Draining     bool    `json:"draining"`
	Placements   int     `json:"placements"`
	Instances    int     `json:"instances"`
	Outstanding  int     `json:"outstanding_calls"`
	OutTokens    int     `json:"outstanding_tokens"`
	Batches      int     `json:"batches"`
	BatchedCalls int     `json:"batched_calls"`
	MaxBatch     int     `json:"max_batch"`
	Kernels      int     `json:"kernels"`
	GPUBusyMS    float64 `json:"gpu_busy_ms"`
	Terminations int     `json:"terminations"`

	// Tiered KV cache: residency and PCIe swap traffic (all zero when
	// host offload is disabled).
	KVDevPages   int `json:"kv_device_pages"`
	KVHostPages  int `json:"kv_host_pages"`
	KVPeakPages  int `json:"kv_peak_pages"`
	SwapInPages  int `json:"swap_in_pages"`
	SwapOutPages int `json:"swap_out_pages"`

	// Warm-artifact cache: program binaries resident on the replica and
	// the cold/warm launch split they produced (Fig. 9 economics).
	Artifacts         int `json:"artifacts"`
	ArtifactHits      int `json:"artifact_hits"`
	ArtifactMisses    int `json:"artifact_misses"`
	ArtifactEvictions int `json:"artifact_evictions"`
	Aborts            int `json:"aborts"`

	// Fault layer: the replica's health state ("healthy", "suspect",
	// "dead") and the in-flight instances evacuated off it when it died
	// (the launches handed back for requeue).
	Health   string `json:"health"`
	Requeues int    `json:"requeues"`

	// SLO-aware serving: the replica's hardware variant, its accumulated
	// cost (cost rate x active seconds), whether it is inside the
	// cold-start window, and queues it served on a downgraded model.
	Variant    string  `json:"variant"`
	CostRate   float64 `json:"cost_rate"`
	CostUnits  float64 `json:"cost_units"`
	Warming    bool    `json:"warming"`
	Downgrades int     `json:"model_downgrades"`

	// Prefill/decode disaggregation: the replica's role ("unified",
	// "prefill", "decode") and sessions handed off from / to it.
	Role        string `json:"role"`
	HandoffsIn  int    `json:"handoffs_in"`
	HandoffsOut int    `json:"handoffs_out"`
}

// ReplicaTable renders per-replica stats in paper style.
func ReplicaTable(rows []ReplicaStats) *Table {
	t := &Table{
		Title:  "Per-replica stats",
		Header: []string{"replica", "state", "placed", "batches", "calls", "maxbatch", "kernels", "gpu-busy", "terms", "kv dev/host", "swaps in/out"},
	}
	for _, r := range rows {
		state := "inactive"
		switch {
		case r.Health == "dead":
			state = "dead"
		case r.Health == "suspect" && r.Active:
			state = "suspect"
		case r.Active && r.Draining:
			state = "draining"
		case r.Active:
			state = "active"
		}
		t.AddRow(r.Device, state, fmt.Sprint(r.Placements), fmt.Sprint(r.Batches),
			fmt.Sprint(r.BatchedCalls), fmt.Sprint(r.MaxBatch), fmt.Sprint(r.Kernels),
			fmt.Sprintf("%.2f ms", r.GPUBusyMS), fmt.Sprint(r.Terminations),
			fmt.Sprintf("%d/%d", r.KVDevPages, r.KVHostPages),
			fmt.Sprintf("%d/%d", r.SwapInPages, r.SwapOutPages))
	}
	return t
}

// Ms formats a duration as milliseconds with two decimals.
func Ms(d time.Duration) string { return fmt.Sprintf("%.2f ms", float64(d)/float64(time.Millisecond)) }

// Sec formats a duration as seconds with two decimals.
func Sec(d time.Duration) string { return fmt.Sprintf("%.2f s", d.Seconds()) }

// Ratio formats a/b with two decimals, guarding zero.
func Ratio(a, b float64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", a/b)
}
