// Engine-level tests of the reconciling controller: these drive real
// engines (the external test package may import pie) because pool
// convergence, two-phase drains, and rolling upgrades depend on live
// serving state — running instances, artifact caches, KV exports — that
// only the full stack produces.
package fleet_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pie"
	"pie/apps"
	"pie/internal/fleet"
)

// bootManifest declares one pool with headroom and text_completion pinned
// to 1.0.0, reconciling every 2ms.
func bootManifest(count, max int) *fleet.Manifest {
	return &fleet.Manifest{
		Schema:    fleet.CurrentSchema,
		Pools:     []fleet.Pool{{Name: "main", Count: count, Max: max}},
		Programs:  []fleet.Pin{{Name: "text_completion", Version: "1.0.0"}},
		Reconcile: fleet.Reconcile{Interval: fleet.Duration(2 * time.Millisecond)},
	}
}

// newFleetEngine boots an engine from the manifest with text_completion
// 2.0.0 registered alongside 1.0.0.
func newFleetEngine(t *testing.T, m *fleet.Manifest) *pie.Engine {
	t.Helper()
	cfg, err := pie.ConfigFromManifest(m)
	if err != nil {
		t.Fatalf("ConfigFromManifest: %v", err)
	}
	cfg.Seed = 11
	cfg.Mode = pie.ModeTiming
	e := pie.New(cfg)
	e.MustRegister(apps.All()...)
	v2 := apps.TextCompletion()
	v2.Manifest.Version = "2.0.0"
	e.MustRegister(v2)
	return e
}

func completion(maxTokens int) string {
	return fmt.Sprintf(`{"prompt":"fleet controller test prompt","max_tokens":%d}`, maxTokens)
}

// TestAlignInitialHonorsHeadroom: a pool built 2-of-4 starts with exactly
// its desired replicas serving, not the cluster default prefix.
func TestAlignInitialHonorsHeadroom(t *testing.T) {
	e := newFleetEngine(t, bootManifest(2, 4))
	rs := e.Cluster().Replicas()
	if len(rs) != 4 {
		t.Fatalf("built %d replicas, want 4", len(rs))
	}
	for i, r := range rs {
		if want := i < 2; r.Active() != want {
			t.Fatalf("replica %d active = %v, want %v", i, r.Active(), want)
		}
	}
	st, ok := e.FleetStatus()
	if !ok || len(st.Pools) != 1 || st.Pools[0].Desired != 2 || st.Pools[0].Built != 4 {
		t.Fatalf("FleetStatus = %+v, %v", st, ok)
	}
}

// TestHotReloadConvergesPoolCounts grows 2 -> 4 and shrinks back to 1
// under live traffic; every in-flight session survives and the fleet
// converges to each desired count in turn.
func TestHotReloadConvergesPoolCounts(t *testing.T) {
	boot := bootManifest(2, 4)
	e := newFleetEngine(t, boot)
	grow := boot.Clone()
	grow.Pools[0].Count = 4
	shrink := boot.Clone()
	shrink.Pools[0].Count = 1

	serving := func() int {
		n := 0
		for _, r := range e.Cluster().Replicas() {
			if r.Active() && !r.Draining() {
				n++
			}
		}
		return n
	}
	e.Go("driver", func() {
		if err := e.ApplyFleet(grow); err != nil {
			panic(err)
		}
		e.Sleep(50 * time.Millisecond)
		if got := serving(); got != 4 {
			panic(fmt.Sprintf("after grow: serving %d, want 4", got))
		}
		// Keep a session in flight across the shrink.
		h, err := e.Launch(pie.Spec("text_completion", completion(24)))
		if err != nil {
			panic(err)
		}
		if err := e.ApplyFleet(shrink); err != nil {
			panic(err)
		}
		if err := h.Wait(); err != nil {
			panic(fmt.Sprintf("in-flight session dropped by shrink: %v", err))
		}
		// Two-phase drains need idle replicas to retire.
		e.Sleep(200 * time.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st, _ := e.FleetStatus()
	if !st.Converged || st.Pools[0].Serving != 1 || st.Pools[0].Draining != 0 {
		t.Fatalf("after shrink: %+v", st.Pools[0])
	}
	if st.Generation != 2 || st.Activations == 0 || st.Drains < 3 {
		t.Fatalf("status counters: %+v", st)
	}
	if e.Cluster().DrainDone < 3 {
		t.Fatalf("drains retired = %d, want >= 3", e.Cluster().DrainDone)
	}
}

// TestRollingUpgradeRequeuesStragglers pins a long-running session's
// program to a new version with a tiny drain grace: the controller must
// abort-and-requeue it onto 2.0.0 with the client handle held open.
func TestRollingUpgradeRequeuesStragglers(t *testing.T) {
	boot := bootManifest(2, 2)
	boot.Reconcile.DrainDeadline = fleet.Duration(-time.Millisecond)
	e := newFleetEngine(t, boot)
	repin := boot.Clone()
	repin.Programs[0].Version = "2.0.0"

	e.Go("driver", func() {
		h, err := e.Launch(pie.Spec("text_completion", completion(400)))
		if err != nil {
			panic(err)
		}
		e.Sleep(20 * time.Millisecond) // session under way on 1.0.0
		if err := e.ApplyFleet(repin); err != nil {
			panic(err)
		}
		if err := h.Wait(); err != nil {
			panic(fmt.Sprintf("upgraded session failed: %v", err))
		}
		e.Sleep(50 * time.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().UpgradeRequeues; got < 1 {
		t.Fatalf("UpgradeRequeues = %d, want >= 1", got)
	}
	st, _ := e.FleetStatus()
	if !st.Converged || len(st.Programs) != 1 {
		t.Fatalf("status = %+v", st)
	}
	p := st.Programs[0]
	if !p.Pinned || p.Version != "2.0.0" || p.Upgrading {
		t.Fatalf("pin status = %+v", p)
	}
	if st.UpgradeRequeues != e.Stats().UpgradeRequeues {
		t.Fatalf("status requeues %d != stats %d", st.UpgradeRequeues, e.Stats().UpgradeRequeues)
	}
}

// TestPinWaitsForRegistration: repinning to a not-yet-registered version
// retries each tick (PinRetries), leaves the old pin serving, and cuts
// over as soon as the artifact lands.
func TestPinWaitsForRegistration(t *testing.T) {
	boot := bootManifest(1, 1)
	e := newFleetEngine(t, boot)
	repin := boot.Clone()
	repin.Programs[0].Version = "3.0.0"

	e.Go("driver", func() {
		if err := e.ApplyFleet(repin); err != nil {
			panic(err)
		}
		e.Sleep(30 * time.Millisecond)
		st, _ := e.FleetStatus()
		if st.Programs[0].Pinned {
			panic("unregistered version reported pinned")
		}
		v3 := apps.TextCompletion()
		v3.Manifest.Version = "3.0.0"
		e.MustRegister(v3)
		e.Sleep(30 * time.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st, _ := e.FleetStatus()
	if !st.Programs[0].Pinned || st.Programs[0].Version != "3.0.0" {
		t.Fatalf("pin after late registration: %+v", st.Programs[0])
	}
	if e.FleetController().PinRetries == 0 {
		t.Fatal("no pin retries recorded while version was unregistered")
	}
}

// TestBootPinHoldsBareNamesDown: with 2.0.0 registered as latest, the
// manifest's 1.0.0 pin decides what bare-name launches run.
func TestBootPinHoldsBareNamesDown(t *testing.T) {
	e := newFleetEngine(t, bootManifest(1, 1))
	e.Go("driver", func() {
		e.Sleep(5 * time.Millisecond) // let the boot pin land
		h, err := e.Launch(pie.Spec("text_completion", completion(64)))
		if err != nil {
			panic(err)
		}
		e.Sleep(10 * time.Millisecond)
		st, _ := e.FleetStatus()
		live := st.Programs[0].Live
		if live["1.0.0"] != 1 || live["2.0.0"] != 0 {
			panic(fmt.Sprintf("live versions = %v, want the 1.0.0 pin serving", live))
		}
		if lv := st.Programs[0].LiveVersions(); lv != "1.0.0:1" {
			panic(fmt.Sprintf("LiveVersions = %q", lv))
		}
		_ = h.Wait()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestApplyRejectsImmutableChanges: hot reloads may change counts and
// pins, never topology; rejected applies leave the generation untouched.
func TestApplyRejectsImmutableChanges(t *testing.T) {
	boot := bootManifest(2, 4)
	e := newFleetEngine(t, boot)
	renamed := boot.Clone()
	renamed.Pools[0].Name = "other"
	if err := e.ApplyFleet(renamed); !errors.Is(err, fleet.ErrImmutable) {
		t.Fatalf("pool rename: %v, want ErrImmutable", err)
	}
	invalid := boot.Clone()
	invalid.Pools[0].Count = 9 // over built max: fails Validate first
	if err := e.ApplyFleet(invalid); !errors.Is(err, fleet.ErrAmbiguousPool) {
		t.Fatalf("invalid manifest: %v, want ErrAmbiguousPool", err)
	}
	if st, _ := e.FleetStatus(); st.Generation != 0 {
		t.Fatalf("rejected applies bumped generation to %d", st.Generation)
	}
}

// TestNotFleetManaged: engines booted from flags have no controller.
func TestNotFleetManaged(t *testing.T) {
	e := pie.New(pie.Config{Seed: 1, Mode: pie.ModeTiming, Replicas: 1})
	e.MustRegister(apps.All()...)
	if _, ok := e.FleetStatus(); ok {
		t.Fatal("flag-configured engine reports fleet status")
	}
	if err := e.ApplyFleet(bootManifest(1, 1)); !errors.Is(err, pie.ErrNotFleetManaged) {
		t.Fatalf("ApplyFleet = %v, want ErrNotFleetManaged", err)
	}
}
