package fleet

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"pie/internal/cluster"
)

// validDoc is a full-featured manifest exercising every section.
const validDoc = `{
  "schema": 1,
  "seed": 7,
  "models": ["llama-1b", "llama-3b"],
  "placement": "least-loaded",
  "variants": [
    {"name": "l4", "cost": 1.0},
    {"name": "l4e", "cost": 0.6, "slowdown": 1.35}
  ],
  "pools": [
    {"name": "prefill", "variant": "l4", "role": "prefill", "count": 2, "max": 4},
    {"name": "decode", "variant": "l4e", "role": "decode", "count": 3}
  ],
  "classes": [
    {"name": "interactive", "ttft": "120ms", "itl": "60ms", "priority": 10},
    {"name": "batch", "tps": 40, "degradable": true}
  ],
  "programs": [
    {"name": "text_completion", "version": "1.2", "class": "interactive"}
  ],
  "kv": {"host_ratio": 2.0, "eviction": "priority"},
  "reconcile": {"interval": "5ms", "drain_deadline": "80ms", "upgrade_batch": 3}
}`

func TestParseValidManifest(t *testing.T) {
	m, err := Parse([]byte(validDoc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.Seed != 7 || m.Placement != "least-loaded" {
		t.Fatalf("header fields: %+v", m)
	}
	if got := m.TotalBuilt(); got != 7 {
		t.Fatalf("TotalBuilt = %d, want 7 (4 built prefill + 3 decode)", got)
	}
	if got := m.InitialActive(); got != 5 {
		t.Fatalf("InitialActive = %d, want 5", got)
	}
	prs := m.PoolRanges()
	if len(prs) != 2 || prs[0] != (PoolRange{Name: "prefill", Start: 0, End: 4, Desired: 2, Role: cluster.RolePrefill, Variant: "l4"}) {
		t.Fatalf("PoolRanges = %+v", prs)
	}
	if prs[1].Start != 4 || prs[1].End != 7 || prs[1].Desired != 3 {
		t.Fatalf("second range = %+v", prs[1])
	}
	if m.PlacementPolicy() != cluster.PlaceLeastLoaded {
		t.Fatalf("PlacementPolicy = %v", m.PlacementPolicy())
	}
	if rs := m.RoleSpecs(); len(rs) != 2 {
		t.Fatalf("RoleSpecs = %+v", rs)
	}
	if vs := m.ReplicaVariants(); len(vs) != 2 || vs[0].Count != 4 || vs[1].Count != 3 {
		t.Fatalf("ReplicaVariants = %+v", vs)
	}
	cs := m.ServiceClasses()
	if len(cs) != 2 || cs[0].TTFTTarget != 120*time.Millisecond || !cs[1].Degradable {
		t.Fatalf("ServiceClasses = %+v", cs)
	}
	if m.EvictionPolicy().String() == "lru" {
		t.Fatalf("EvictionPolicy kept the default over %q", m.KV.Eviction)
	}
	rc := m.Reconcile
	if rc.EffectiveInterval() != 5*time.Millisecond ||
		rc.EffectiveDrainDeadline() != 80*time.Millisecond ||
		rc.EffectiveBatch() != 3 || !rc.EffectivePrewarm() {
		t.Fatalf("reconcile effectives: %+v", rc)
	}
	if ref := m.Programs[0].Ref(); ref != "text_completion@1.2" {
		t.Fatalf("Ref = %q", ref)
	}
}

func TestParseRoundTrip(t *testing.T) {
	m, err := Parse([]byte(validDoc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	m2, err := Parse(blob)
	if err != nil {
		t.Fatalf("re-Parse marshaled manifest: %v\n%s", err, blob)
	}
	blob2, _ := json.Marshal(m2)
	if string(blob) != string(blob2) {
		t.Fatalf("round trip not stable:\n%s\n%s", blob, blob2)
	}
}

// TestParseErrors maps every malformed-document class to its typed error.
func TestParseErrors(t *testing.T) {
	pool := `"pools": [{"name": "main", "count": 2}]`
	cases := []struct {
		name string
		doc  string
		want error
	}{
		{"malformed json", `{"schema": 1,`, ErrSyntax},
		{"unknown field", `{"schema": 1, "bogus": true, ` + pool + `}`, ErrSyntax},
		{"trailing data", `{"schema": 1, ` + pool + `} {}`, ErrSyntax},
		{"numeric duration", `{"schema": 1, ` + pool + `, "reconcile": {"interval": 5}}`, ErrSyntax},
		{"bad duration string", `{"schema": 1, ` + pool + `, "reconcile": {"interval": "fast"}}`, ErrSyntax},
		{"wrong schema", `{"schema": 2, ` + pool + `}`, ErrBadVersion},
		{"missing schema", `{` + pool + `}`, ErrBadVersion},
		{"unknown model", `{"schema": 1, "models": ["gpt-5"], ` + pool + `}`, ErrUnknownReference},
		{"unknown placement", `{"schema": 1, "placement": "warmest", ` + pool + `}`, ErrUnknownReference},
		{"empty variant name", `{"schema": 1, "variants": [{"name": ""}], ` + pool + `}`, ErrSyntax},
		{"duplicate variant", `{"schema": 1, "variants": [{"name": "a"}, {"name": "a"}], ` + pool + `}`, ErrSyntax},
		{"negative variant cost", `{"schema": 1, "variants": [{"name": "a", "cost": -1}], ` + pool + `}`, ErrSyntax},
		{"sub-unit slowdown", `{"schema": 1, "variants": [{"name": "a", "slowdown": 0.5}], ` + pool + `}`, ErrSyntax},
		{"no pools", `{"schema": 1}`, ErrAmbiguousPool},
		{"empty pool name", `{"schema": 1, "pools": [{"name": "", "count": 1}]}`, ErrAmbiguousPool},
		{"duplicate pool", `{"schema": 1, "pools": [{"name": "a", "count": 1}, {"name": "a", "count": 1}]}`, ErrAmbiguousPool},
		{"negative count", `{"schema": 1, "pools": [{"name": "a", "count": -1}]}`, ErrAmbiguousPool},
		{"negative max", `{"schema": 1, "pools": [{"name": "a", "count": 1, "max": -2}]}`, ErrAmbiguousPool},
		{"builds nothing", `{"schema": 1, "pools": [{"name": "a", "count": 0}]}`, ErrAmbiguousPool},
		{"count over max", `{"schema": 1, "pools": [{"name": "a", "count": 5, "max": 2}]}`, ErrAmbiguousPool},
		{"undeclared variant ref", `{"schema": 1, "pools": [{"name": "a", "variant": "h100", "count": 1}]}`, ErrUnknownReference},
		{"unknown role", `{"schema": 1, "pools": [{"name": "a", "role": "verify", "count": 1}]}`, ErrUnknownReference},
		{"empty class name", `{"schema": 1, ` + pool + `, "classes": [{"name": ""}]}`, ErrSyntax},
		{"duplicate class", `{"schema": 1, ` + pool + `, "classes": [{"name": "c"}, {"name": "c"}]}`, ErrSyntax},
		{"negative latency target", `{"schema": 1, ` + pool + `, "classes": [{"name": "c", "ttft": "-1ms"}]}`, ErrSyntax},
		{"negative scaler bounds", `{"schema": 1, ` + pool + `, "scaler": {"min": -1}}`, ErrSyntax},
		{"scaler max over built", `{"schema": 1, ` + pool + `, "scaler": {"max": 9}}`, ErrSyntax},
		{"scaler min over max", `{"schema": 1, ` + pool + `, "scaler": {"min": 2, "max": 1}}`, ErrSyntax},
		{"empty pin name", `{"schema": 1, ` + pool + `, "programs": [{"name": "", "version": "1.0.0"}]}`, ErrSyntax},
		{"duplicate pin", `{"schema": 1, ` + pool + `, "programs": [{"name": "p", "version": "1.0.0"}, {"name": "p", "version": "2.0.0"}]}`, ErrSyntax},
		{"non-semver pin", `{"schema": 1, ` + pool + `, "programs": [{"name": "p", "version": "latest"}]}`, ErrBadVersion},
		{"four-part version", `{"schema": 1, ` + pool + `, "programs": [{"name": "p", "version": "1.2.3.4"}]}`, ErrBadVersion},
		{"undeclared pin class", `{"schema": 1, ` + pool + `, "programs": [{"name": "p", "version": "1.0.0", "class": "gold"}]}`, ErrUnknownReference},
		{"negative host ratio", `{"schema": 1, ` + pool + `, "kv": {"host_ratio": -1}}`, ErrSyntax},
		{"negative pages override", `{"schema": 1, ` + pool + `, "kv": {"pages_override": -1}}`, ErrSyntax},
		{"unknown eviction", `{"schema": 1, ` + pool + `, "kv": {"eviction": "random"}}`, ErrUnknownReference},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted %s: %+v", tc.name, m)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Parse(%s) = %v, want %v", tc.name, err, tc.want)
			}
		})
	}
}

func TestCanonicalVersion(t *testing.T) {
	good := map[string]string{
		"1":      "1.0.0",
		"1.2":    "1.2.0",
		"1.2.3":  "1.2.3",
		"0.9.10": "0.9.10",
	}
	for in, want := range good {
		got, err := CanonicalVersion(in)
		if err != nil || got != want {
			t.Fatalf("CanonicalVersion(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "v1", "1.2.3.4", "1..2", "1.-2", "01.2", "latest", "1.x"} {
		if got, err := CanonicalVersion(bad); err == nil {
			t.Fatalf("CanonicalVersion(%q) = %q, want error", bad, got)
		}
	}
}

func TestReconcileEffectiveDefaults(t *testing.T) {
	var rc Reconcile
	if rc.EffectiveInterval() != 10*time.Millisecond {
		t.Fatalf("default interval = %v", rc.EffectiveInterval())
	}
	if rc.EffectiveDrainDeadline() != 100*time.Millisecond {
		t.Fatalf("default drain deadline = %v", rc.EffectiveDrainDeadline())
	}
	if rc.EffectiveBatch() != 2 {
		t.Fatalf("default batch = %d", rc.EffectiveBatch())
	}
	if !rc.EffectivePrewarm() {
		t.Fatal("default prewarm must be on")
	}
	// Negatives are the naive-baseline escape hatches: no grace, one
	// unbounded batch.
	neg := Reconcile{DrainDeadline: Duration(-time.Millisecond), UpgradeBatch: -1}
	if neg.EffectiveDrainDeadline() != 0 {
		t.Fatalf("negative drain deadline = %v, want 0", neg.EffectiveDrainDeadline())
	}
	if neg.EffectiveBatch() < 1<<40 {
		t.Fatalf("negative batch = %d, want unbounded", neg.EffectiveBatch())
	}
	off := false
	if (Reconcile{Prewarm: &off}).EffectivePrewarm() {
		t.Fatal("explicit prewarm=false ignored")
	}
}

func TestCheckCompatible(t *testing.T) {
	base, err := Parse([]byte(validDoc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// The mutable surface: counts, pins, placement, reconcile tuning.
	ok := base.Clone()
	ok.Pools[0].Count = 4
	ok.Programs[0].Version = "2.0.0"
	ok.Placement = "rr"
	ok.Reconcile.UpgradeBatch = 1
	if err := base.CheckCompatible(ok); err != nil {
		t.Fatalf("mutable changes rejected: %v", err)
	}
	// Everything else needs a restart.
	breakers := map[string]func(*Manifest){
		"seed":         func(m *Manifest) { m.Seed = 99 },
		"models":       func(m *Manifest) { m.Models = append(m.Models, "llama-8b") },
		"pool removed": func(m *Manifest) { m.Pools = m.Pools[:1] },
		"pool renamed": func(m *Manifest) { m.Pools[0].Name = "other" },
		"pool variant": func(m *Manifest) { m.Pools[0].Variant = "l4e" },
		"pool role":    func(m *Manifest) { m.Pools[0].Role = "decode" },
		"pool max":     func(m *Manifest) { m.Pools[0].Max = 8 },
		"variant decl": func(m *Manifest) { m.Variants[1].Cost = 0.7 },
		"class decl":   func(m *Manifest) { m.Classes[0].Priority = 5 },
		"kv":           func(m *Manifest) { m.KV.HostRatio = 3 },
		"scaler":       func(m *Manifest) { m.Scaler = &Scaler{Min: 1} },
	}
	for name, mutate := range breakers {
		next := base.Clone()
		mutate(next)
		if err := base.CheckCompatible(next); !errors.Is(err, ErrImmutable) {
			t.Fatalf("%s change: err = %v, want ErrImmutable", name, err)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	m, err := Parse([]byte(validDoc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cp := m.Clone()
	cp.Pools[0].Count = 99
	cp.Programs[0].Version = "9.9.9"
	cp.Variants[0].Cost = 42
	cp.KV.HostRatio = 8
	cp.Models[0] = "other"
	if m.Pools[0].Count == 99 || m.Programs[0].Version == "9.9.9" ||
		m.Variants[0].Cost == 42 || m.KV.HostRatio == 8 || m.Models[0] == "other" {
		t.Fatalf("Clone shares memory with the original: %+v", m)
	}
}

func TestScalerConfigDefaultsMaxToBuilt(t *testing.T) {
	m, err := Parse([]byte(`{"schema": 1, "pools": [{"name": "a", "count": 2, "max": 5}], "scaler": {"min": 1}}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	sc := m.ScalerConfig()
	if !sc.Enabled || sc.Max != 5 {
		t.Fatalf("ScalerConfig = %+v, want enabled with max 5", sc)
	}
	var none Manifest
	if none.ScalerConfig().Enabled {
		t.Fatal("nil scaler must disable the config")
	}
}

func TestDurationMarshal(t *testing.T) {
	blob, err := json.Marshal(Duration(250 * time.Millisecond))
	if err != nil || string(blob) != `"250ms"` {
		t.Fatalf("Marshal = %s, %v", blob, err)
	}
	var d Duration
	if err := json.Unmarshal([]byte(`"1.5s"`), &d); err != nil || d.Std() != 1500*time.Millisecond {
		t.Fatalf("Unmarshal = %v, %v", d, err)
	}
	if err := json.Unmarshal([]byte(`250`), &d); !errors.Is(err, ErrSyntax) {
		t.Fatalf("numeric duration err = %v, want ErrSyntax", err)
	}
}
