package fleet

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"pie/internal/cluster"
	"pie/internal/ilm"
	"pie/internal/sim"
)

// maxLog bounds the controller's decision log.
const maxLog = 4096

// Controller is the reconciling fleet controller: a daemon that diffs the
// manifest's desired state against the live cluster each tick and
// converges it — completing two-phase drains, growing or draining pools
// toward their desired counts, applying program pins, and rolling
// old-version instances onto newly pinned versions in bounded batches.
//
// Everything it does is deterministic on the virtual clock: replicas are
// visited in ID order, handles in launch order, pools and pins in
// manifest order, so same-seed runs produce byte-identical decision logs.
type Controller struct {
	clock *sim.Clock
	cl    *cluster.Cluster
	lm    *ilm.ILM

	desired    *Manifest
	generation int
	lastTick   time.Duration
	ticked     bool

	// upgrades tracks one in-flight rolling upgrade per program.
	upgrades map[string]*upgradeState

	// Stats.
	Activations int // replicas activated (or un-drained) toward desired counts
	Drains      int // pool drains initiated toward desired counts
	Prewarms    int // upgrade artifacts uploaded ahead of cutover
	PinRetries  int // pin applications deferred (target version not registered yet)

	// Log is the bounded reconcile decision log, byte-identical across
	// same-seed runs (the determinism probe's fingerprint).
	Log []string
}

// upgradeState is one program's rolling upgrade in flight.
type upgradeState struct {
	target   string        // canonical pinned version being rolled to
	batch    []uint64      // handle IDs draining in the current batch
	deadline time.Duration // when stragglers in the batch are requeued
}

// NewController builds a controller over a validated manifest. Call
// AlignInitial before traffic, then Start to run the reconcile daemon.
func NewController(clock *sim.Clock, cl *cluster.Cluster, lm *ilm.ILM, m *Manifest) *Controller {
	return &Controller{
		clock:    clock,
		cl:       cl,
		lm:       lm,
		desired:  m.Clone(),
		upgrades: make(map[string]*upgradeState),
	}
}

// Desired returns the manifest currently being reconciled toward.
func (c *Controller) Desired() *Manifest { return c.desired }

// Generation reports how many manifests have been applied (0 = the boot
// manifest).
func (c *Controller) Generation() int { return c.generation }

// Apply replaces desired state by hot reload: the next manifest is
// validated, checked compatible (pool counts, pins, placement, and
// reconcile tuning may change live; topology may not — typed
// ErrImmutable), and snapshotted. Convergence happens on subsequent
// ticks.
func (c *Controller) Apply(next *Manifest) error {
	if err := next.Validate(); err != nil {
		return err
	}
	if err := c.desired.CheckCompatible(next); err != nil {
		return err
	}
	c.desired = next.Clone()
	c.generation++
	c.cl.SetPlacement(next.PlacementPolicy())
	c.logf("apply: generation %d", c.generation)
	return nil
}

// AlignInitial aligns the boot-time active set with the manifest's pools.
// The cluster activates the first N replica IDs at construction; with
// pools holding headroom (max > count), the desired set is per-pool — eg
// pools [4/6, 2/2] want {0..3, 6..7} active, not {0..5}. Runs once,
// before any traffic, so idle-deactivation is safe.
func (c *Controller) AlignInitial() {
	for _, pr := range c.desired.PoolRanges() {
		for _, r := range c.poolReplicas(pr) {
			if r.ID < pr.Start+pr.Desired {
				c.cl.Activate(r)
			} else {
				c.cl.Deactivate(r)
			}
		}
	}
}

// Start runs the reconcile daemon on the virtual clock.
func (c *Controller) Start() {
	c.clock.GoDaemon("fleet:controller", func() {
		for {
			c.clock.Sleep(c.desired.Reconcile.EffectiveInterval())
			c.Tick()
		}
	})
}

// Tick runs one reconcile pass: finish drains whose replicas went idle,
// converge pool counts (unless the SLO scaler owns them), then reconcile
// program pins and advance rolling upgrades. Must run in a sim process.
func (c *Controller) Tick() {
	c.lastTick = c.clock.Now()
	c.ticked = true
	c.cl.CompleteDrains()
	if c.desired.Scaler == nil {
		c.convergePools()
	}
	c.reconcilePins()
}

// poolReplicas returns the pool's replicas in ID order.
func (c *Controller) poolReplicas(pr PoolRange) []*cluster.Replica {
	all := c.cl.Replicas()
	end := pr.End
	if end > len(all) {
		end = len(all)
	}
	if pr.Start >= end {
		return nil
	}
	return all[pr.Start:end]
}

// convergePools moves each pool's serving count toward desired: grow by
// un-draining, then activating, the lowest-ID eligible replicas; shrink
// by draining the highest-ID serving ones (two-phase — CompleteDrains
// retires them once idle, migrating their KV exports first).
func (c *Controller) convergePools() {
	for _, pr := range c.desired.PoolRanges() {
		rs := c.poolReplicas(pr)
		serving := 0
		for _, r := range rs {
			if r.Active() && !r.Draining() && r.Health() == cluster.HealthHealthy {
				serving++
			}
		}
		switch {
		case serving < pr.Desired:
			need := pr.Desired - serving
			// First cancel drains (cheapest — the replica never left),
			// then wake inactive replicas, lowest ID first.
			for pass := 0; pass < 2 && need > 0; pass++ {
				for _, r := range rs {
					if need == 0 {
						break
					}
					wantDraining := pass == 0
					if r.Active() != wantDraining || r.Draining() != wantDraining {
						continue
					}
					if c.cl.Activate(r) {
						c.Activations++
						need--
						c.logf("pool %s: activate replica %d (%d/%d serving)", pr.Name, r.ID, pr.Desired-need, pr.Desired)
					}
				}
			}
		case serving > pr.Desired:
			excess := serving - pr.Desired
			for i := len(rs) - 1; i >= 0 && excess > 0; i-- {
				r := rs[i]
				if !r.Active() || r.Draining() || r.Health() != cluster.HealthHealthy {
					continue
				}
				if c.cl.BeginDrain(r) {
					c.Drains++
					excess--
					c.logf("pool %s: drain replica %d (%d/%d serving)", pr.Name, r.ID, pr.Desired+excess, pr.Desired)
				}
			}
		}
	}
}

// reconcilePins applies each manifest pin to the registry and rolls any
// running old-version instances onto the pinned version: prewarm the
// target artifact on serving replicas BEFORE the cutover (so launches
// resolving the new pin — and upgrade relaunches — never pay a cold
// start), then drain old instances in bounded batches (letting them
// finish naturally inside the batch deadline), and abort-and-requeue
// stragglers past it.
func (c *Controller) reconcilePins() {
	for _, pin := range c.desired.Programs {
		target, err := CanonicalVersion(pin.Version)
		if err != nil {
			continue // Validate already rejected this; defensive
		}
		if cur, ok := c.lm.Pinned(pin.Name); !ok || cur != target {
			// Warm first, cut over second: while the uploads run (in this
			// daemon's virtual time), new launches still resolve the old
			// pin, so no request lands cold on the new version. Only a
			// version CHANGE prewarms — the boot install applies
			// immediately, before bare names can float to a newer
			// registered version.
			if ok && c.desired.Reconcile.EffectivePrewarm() {
				c.prewarm(pin.Name, target)
			}
			if err := c.lm.SetPin(pin.Name, target); err != nil {
				// Target not registered yet: keep trying each tick.
				c.PinRetries++
				continue
			}
			c.logf("pin %s@%s", pin.Name, target)
		}
		c.advanceUpgrade(pin.Name, target)
	}
}

// advanceUpgrade drives one program's rollout toward the pinned version.
func (c *Controller) advanceUpgrade(name, target string) {
	old := make([]*ilm.Handle, 0)
	byID := make(map[uint64]*ilm.Handle)
	for _, h := range c.lm.RunningHandles(name) {
		if h.Version != target {
			old = append(old, h)
			byID[h.ID] = h
		}
	}
	st := c.upgrades[name]
	if st != nil && st.target != target {
		// Repinned mid-roll: restart the rollout toward the new target.
		st = nil
	}
	if st == nil {
		if len(old) == 0 {
			delete(c.upgrades, name)
			return
		}
		st = &upgradeState{target: target}
		c.upgrades[name] = st
		c.logf("upgrade %s -> %s: %d old-version instance(s)", name, target, len(old))
	}
	if len(old) == 0 {
		c.logf("upgrade %s -> %s: complete", name, target)
		delete(c.upgrades, name)
		return
	}
	// Drop batch members that finished or already moved to the target.
	live := st.batch[:0]
	for _, id := range st.batch {
		if _, ok := byID[id]; ok {
			live = append(live, id)
		}
	}
	st.batch = live
	if len(st.batch) == 0 {
		// Form the next batch: the oldest still-running old-version
		// instances, given the drain deadline to finish naturally.
		n := c.desired.Reconcile.EffectiveBatch()
		if n > len(old) {
			n = len(old)
		}
		for _, h := range old[:n] {
			st.batch = append(st.batch, h.ID)
		}
		st.deadline = c.clock.Now() + c.desired.Reconcile.EffectiveDrainDeadline()
		c.logf("upgrade %s -> %s: batch of %d (deadline %v)", name, target, len(st.batch), st.deadline)
		if c.clock.Now() < st.deadline {
			return
		}
	}
	if c.clock.Now() >= st.deadline {
		// Stragglers: restart them onto the pinned version now.
		for _, id := range st.batch {
			if h, ok := byID[id]; ok && c.lm.RequeueForUpgrade(h) {
				c.logf("upgrade %s -> %s: requeue straggler handle %d", name, target, id)
			}
		}
		st.batch = st.batch[:0]
	}
}

// prewarm uploads the target version's artifact to every serving replica
// that lacks it, so upgrade relaunches are warm. The upload cost is paid
// in the controller's own daemon (serialized, replica ID order) — it
// never blocks serving traffic.
func (c *Controller) prewarm(name, target string) {
	key, size, err := c.lm.ArtifactFor(name + "@" + target)
	if err != nil {
		return
	}
	for _, r := range c.cl.Replicas() {
		if !r.Active() || r.Health() != cluster.HealthHealthy || r.Ctl.HasArtifact(key) {
			continue
		}
		c.clock.Sleep(r.Ctl.ArtifactCost(size))
		r.Ctl.AdmitArtifact(key, size, true)
		c.Prewarms++
		c.logf("prewarm %s on replica %d", key, r.ID)
	}
}

func (c *Controller) logf(format string, args ...any) {
	if len(c.Log) >= maxLog {
		return
	}
	c.Log = append(c.Log, fmt.Sprintf("[%v] %s", c.clock.Now(), fmt.Sprintf(format, args...)))
}

// --- Desired-vs-actual status (the GET /v1/fleet surface) ---------------

// PoolStatus is one pool's desired-vs-actual view.
type PoolStatus struct {
	Name     string `json:"name"`
	Desired  int    `json:"desired"`
	Serving  int    `json:"serving"`
	Draining int    `json:"draining"`
	Built    int    `json:"built"`
}

// PinStatus is one program pin's rollout view.
type PinStatus struct {
	Name    string `json:"name"`
	Version string `json:"version"`
	// Pinned reports whether the registry pin is applied (false while the
	// target version is not yet registered).
	Pinned bool `json:"pinned"`
	// Live maps running versions to instance counts (sorted rendering via
	// LiveVersions).
	Live map[string]int `json:"live,omitempty"`
	// Upgrading reports a rollout in flight.
	Upgrading bool `json:"upgrading"`
}

// Status is the desired-vs-actual reconciliation report.
type Status struct {
	Generation int          `json:"generation"`
	Converged  bool         `json:"converged"`
	LastTick   string       `json:"last_tick"`
	Placement  string       `json:"placement"`
	Pools      []PoolStatus `json:"pools"`
	Programs   []PinStatus  `json:"programs"`

	Activations     int `json:"activations"`
	Drains          int `json:"drains"`
	Prewarms        int `json:"prewarms"`
	UpgradeRequeues int `json:"upgrade_requeues"`
}

// Status reports desired vs actual: per-pool serving counts, per-pin
// rollout state, and whether the fleet has converged (every pool at its
// desired count, every pin applied, no upgrade in flight).
func (c *Controller) Status() Status {
	st := Status{
		Generation:      c.generation,
		Converged:       true,
		Placement:       c.desired.Placement,
		Activations:     c.Activations,
		Drains:          c.Drains,
		Prewarms:        c.Prewarms,
		UpgradeRequeues: c.lm.UpgradeRequeues,
	}
	if c.ticked {
		st.LastTick = c.lastTick.String()
	}
	for _, pr := range c.desired.PoolRanges() {
		ps := PoolStatus{Name: pr.Name, Desired: pr.Desired, Built: pr.End - pr.Start}
		for _, r := range c.poolReplicas(pr) {
			switch {
			case r.Active() && r.Draining():
				ps.Draining++
			case r.Active() && r.Health() == cluster.HealthHealthy:
				ps.Serving++
			}
		}
		if c.desired.Scaler == nil && (ps.Serving != ps.Desired || ps.Draining > 0) {
			st.Converged = false
		}
		st.Pools = append(st.Pools, ps)
	}
	for _, pin := range c.desired.Programs {
		target, err := CanonicalVersion(pin.Version)
		if err != nil {
			continue
		}
		cur, ok := c.lm.Pinned(pin.Name)
		ps := PinStatus{Name: pin.Name, Version: target, Pinned: ok && cur == target}
		for _, h := range c.lm.RunningHandles(pin.Name) {
			if ps.Live == nil {
				ps.Live = make(map[string]int)
			}
			ps.Live[h.Version]++
		}
		_, ps.Upgrading = c.upgrades[pin.Name]
		if !ps.Pinned || ps.Upgrading {
			st.Converged = false
		}
		st.Programs = append(st.Programs, ps)
	}
	return st
}

// LiveVersions renders a pin's live map deterministically.
func (p PinStatus) LiveVersions() string {
	if len(p.Live) == 0 {
		return "-"
	}
	vs := make([]string, 0, len(p.Live))
	for v := range p.Live {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%s:%d", v, p.Live[v])
	}
	return strings.Join(parts, " ")
}
