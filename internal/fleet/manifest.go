// Package fleet implements declarative fleet management: a versioned
// manifest describing the desired cluster state — replica pools with
// hardware variants and serving roles, placement and KV policies, service
// classes, and program version pins — plus a reconciling controller
// (controller.go) that diffs desired against actual each tick and
// converges the cluster: growing and draining pools, completing two-phase
// drains, and rolling pinned programs onto new versions in bounded
// batches.
//
// The manifest is the write path for cluster state: pie-server loads one
// via -config at startup and hot-reloads it on SIGHUP or POST /v1/fleet.
// Every field the controller acts on is declared intent; flags explicitly
// set on the command line override manifest values, defaults do not.
package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"pie/api"
	"pie/internal/cluster"
	"pie/internal/core"
)

// Typed manifest errors. Parse and Validate wrap every failure in exactly
// one of these, so callers (and the /v1/fleet handler) can branch on the
// failure class without parsing message text.
var (
	// ErrSyntax is a document that does not decode: malformed JSON,
	// unknown fields, bad durations, out-of-range values.
	ErrSyntax = errors.New("fleet: malformed manifest")
	// ErrUnknownReference is a dangling name: a pool naming an undeclared
	// variant, a pin naming an undeclared class, a model absent from the
	// catalog, an unknown placement/eviction/role keyword.
	ErrUnknownReference = errors.New("fleet: unknown reference")
	// ErrBadVersion is a program pin whose version is not semver, or an
	// unsupported manifest schema version.
	ErrBadVersion = errors.New("fleet: bad version")
	// ErrAmbiguousPool is a pool set the controller cannot act on
	// deterministically: no pools, duplicate names, desired counts
	// exceeding built capacity, pools that build nothing.
	ErrAmbiguousPool = errors.New("fleet: ambiguous pool definition")
	// ErrImmutable is a hot-reload that changes fields only a restart can:
	// pool topology, variants, classes, the scaler, KV geometry, the seed.
	ErrImmutable = errors.New("fleet: immutable field changed")
)

// CurrentSchema is the manifest schema version this build understands.
const CurrentSchema = 1

// CatalogModels are the model ids the standard catalog installs; a
// manifest's models list validates against them.
var CatalogModels = []string{"llama-1b", "llama-3b", "llama-8b"}

// Duration is a time.Duration that marshals as a parseable string
// ("250ms"), the manifest's on-disk form.
type Duration time.Duration

// Std converts to the standard library representation.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// UnmarshalJSON accepts duration strings only — a bare number is
// ambiguous (ns? ms?) and fails typed.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("%w: duration must be a string like \"250ms\", got %s", ErrSyntax, bytes.TrimSpace(b))
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("%w: bad duration %q", ErrSyntax, s)
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON renders the string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Manifest is the versioned desired-state document.
type Manifest struct {
	// Schema is the document schema version; must be CurrentSchema.
	Schema int `json:"schema"`
	// Seed drives every random stream; 0 takes the server default.
	Seed uint64 `json:"seed,omitempty"`
	// Models restricts validation to catalog ids the deployment relies
	// on; empty accepts the full standard catalog.
	Models []string `json:"models,omitempty"`
	// Placement names the routing policy (cluster.ParsePlacement
	// keywords); empty means round-robin.
	Placement string `json:"placement,omitempty"`
	// Variants declares the hardware classes pools may reference.
	Variants []Variant `json:"variants,omitempty"`
	// Pools declares the replica pools in ID order: pool i occupies the
	// replica-ID range after pool i-1's built capacity.
	Pools []Pool `json:"pools"`
	// Classes declares the service-class contracts.
	Classes []Class `json:"classes,omitempty"`
	// Scaler, when present, hands pool-count ownership to the SLO scaler;
	// the controller then reconciles only pins and placement.
	Scaler *Scaler `json:"scaler,omitempty"`
	// Programs pins program names to exact versions: launches resolving
	// the bare name get the pinned version, and changing a pin triggers a
	// rolling upgrade.
	Programs []Pin `json:"programs,omitempty"`
	// KV tunes the tiered KV cache.
	KV *KV `json:"kv,omitempty"`
	// Reconcile tunes the controller loop.
	Reconcile Reconcile `json:"reconcile,omitempty"`
}

// Variant is one hardware class pools reference by name.
type Variant struct {
	Name string `json:"name"`
	// Cost is the cost-units-per-second price of one active replica
	// (default 1).
	Cost float64 `json:"cost,omitempty"`
	// Slowdown multiplies kernel cost relative to the reference device
	// (>= 1; default 1).
	Slowdown float64 `json:"slowdown,omitempty"`
}

// Pool is one replica pool: a contiguous run of replica IDs sharing a
// variant and a role.
type Pool struct {
	Name string `json:"name"`
	// Variant references a declared Variant by name; empty takes the
	// default reference hardware.
	Variant string `json:"variant,omitempty"`
	// Role is the serving phase: "unified" (default), "prefill", "decode".
	Role string `json:"role,omitempty"`
	// Count is the desired number of active replicas. The controller
	// converges the pool's active set to it each tick.
	Count int `json:"count"`
	// Max is the built capacity (replicas constructed, active or not);
	// 0 means Count. Count may be raised up to Max by a hot reload.
	Max int `json:"max,omitempty"`
}

// BuiltMax is the pool's built capacity with the Max-defaults-to-Count
// rule applied.
func (p Pool) BuiltMax() int {
	if p.Max > 0 {
		return p.Max
	}
	return p.Count
}

// Class is one service-class contract in manifest form.
type Class struct {
	Name string `json:"name"`
	// TTFT bounds time-to-first-token; zero means no objective.
	TTFT Duration `json:"ttft,omitempty"`
	// ITL bounds inter-token latency; zero means no objective.
	ITL Duration `json:"itl,omitempty"`
	// TPS is the advisory tokens-per-second objective.
	TPS float64 `json:"tps,omitempty"`
	// Priority seeds scheduler priority; negative marks best-effort.
	Priority int `json:"priority,omitempty"`
	// Degradable opts the class into graceful degradation near saturation.
	Degradable bool `json:"degradable,omitempty"`
}

// Scaler tunes the SLO scaler in manifest form. Zero fields take the
// cluster defaults.
type Scaler struct {
	Min          int      `json:"min,omitempty"`
	Max          int      `json:"max,omitempty"`
	Interval     Duration `json:"interval,omitempty"`
	SatHigh      float64  `json:"sat_high,omitempty"`
	SatLow       float64  `json:"sat_low,omitempty"`
	AttainTarget float64  `json:"attain_target,omitempty"`
	ScaleToZero  bool     `json:"scale_to_zero,omitempty"`
	IdleAfter    Duration `json:"idle_after,omitempty"`
}

// Pin pins one program name to an exact version.
type Pin struct {
	Name string `json:"name"`
	// Version is the semver the bare name resolves to ("1.2" canonicalizes
	// to "1.2.0").
	Version string `json:"version"`
	// Class optionally references a declared service class the program's
	// launches are expected to run under (documentation + validation; the
	// launch spec still decides).
	Class string `json:"class,omitempty"`
}

// Ref formats the pin's registry reference.
func (p Pin) Ref() string { return p.Name + "@" + p.Version }

// KV tunes the tiered KV cache in manifest form.
type KV struct {
	// HostRatio sizes the host-memory tier as a multiple of device page
	// capacity (0 disables offload).
	HostRatio float64 `json:"host_ratio,omitempty"`
	// Eviction is the offload victim policy: "lru" (default) or "priority".
	Eviction string `json:"eviction,omitempty"`
	// PagesOverride overrides device page capacity (0 keeps geometry).
	PagesOverride int `json:"pages_override,omitempty"`
}

// Reconcile tunes the controller loop. Zero fields take defaults; see the
// Effective* accessors for the semantics of negatives.
type Reconcile struct {
	// Interval is the reconcile tick period (default 10ms).
	Interval Duration `json:"interval,omitempty"`
	// DrainDeadline is how long each upgrade batch may finish naturally
	// before stragglers are aborted and requeued onto the new version
	// (default 100ms; negative means no grace — requeue immediately).
	DrainDeadline Duration `json:"drain_deadline,omitempty"`
	// UpgradeBatch bounds how many old-version instances drain at once
	// during a rolling upgrade (default 2; negative means unbounded — the
	// whole fleet restarts in one batch, the naive-upgrade baseline).
	UpgradeBatch int `json:"upgrade_batch,omitempty"`
	// Prewarm, when unset or true, uploads the new version's artifact to
	// every serving replica before its batches drain, so relaunches are
	// warm. Explicit false skips it (the naive baseline).
	Prewarm *bool `json:"prewarm,omitempty"`
}

// Reconcile defaults.
const (
	defaultTick          = 10 * time.Millisecond
	defaultDrainDeadline = 100 * time.Millisecond
	defaultUpgradeBatch  = 2
)

// EffectiveInterval is the reconcile tick period with defaults applied.
func (r Reconcile) EffectiveInterval() time.Duration {
	if r.Interval <= 0 {
		return defaultTick
	}
	return r.Interval.Std()
}

// EffectiveDrainDeadline is the per-batch natural-finish grace: the
// default when zero, zero (immediate requeue) when negative.
func (r Reconcile) EffectiveDrainDeadline() time.Duration {
	switch {
	case r.DrainDeadline == 0:
		return defaultDrainDeadline
	case r.DrainDeadline < 0:
		return 0
	}
	return r.DrainDeadline.Std()
}

// EffectiveBatch is the rolling-upgrade batch size: the default when
// zero, effectively unbounded when negative.
func (r Reconcile) EffectiveBatch() int {
	switch {
	case r.UpgradeBatch == 0:
		return defaultUpgradeBatch
	case r.UpgradeBatch < 0:
		return math.MaxInt
	}
	return r.UpgradeBatch
}

// EffectivePrewarm reports whether upgrade prewarming is on (the default).
func (r Reconcile) EffectivePrewarm() bool { return r.Prewarm == nil || *r.Prewarm }

// Parse decodes and validates a manifest document. Unknown fields,
// trailing data, and every validation failure return one of the typed
// errors above.
func Parse(data []byte) (*Manifest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		if errors.Is(err, ErrSyntax) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrSyntax, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after manifest document", ErrSyntax)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// ParseFile is Parse over a file path.
func ParseFile(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSyntax, err)
	}
	m, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// Validate checks the manifest's internal consistency and returns the
// first violation as a typed error.
func (m *Manifest) Validate() error {
	if m.Schema != CurrentSchema {
		return fmt.Errorf("%w: unsupported manifest schema %d (this build understands %d)", ErrBadVersion, m.Schema, CurrentSchema)
	}
	known := make(map[string]bool, len(CatalogModels))
	for _, name := range CatalogModels {
		known[name] = true
	}
	for _, name := range m.Models {
		if !known[name] {
			return fmt.Errorf("%w: model %q is not in the catalog (%s)", ErrUnknownReference, name, strings.Join(CatalogModels, ", "))
		}
	}
	if m.Placement != "" {
		if _, err := cluster.ParsePlacement(m.Placement); err != nil {
			return fmt.Errorf("%w: placement %q", ErrUnknownReference, m.Placement)
		}
	}
	variants := make(map[string]Variant, len(m.Variants))
	for _, v := range m.Variants {
		if v.Name == "" {
			return fmt.Errorf("%w: variant with empty name", ErrSyntax)
		}
		if _, dup := variants[v.Name]; dup {
			return fmt.Errorf("%w: duplicate variant %q", ErrSyntax, v.Name)
		}
		if v.Cost < 0 {
			return fmt.Errorf("%w: variant %q has negative cost", ErrSyntax, v.Name)
		}
		if v.Slowdown != 0 && v.Slowdown < 1 {
			return fmt.Errorf("%w: variant %q slowdown must be >= 1", ErrSyntax, v.Name)
		}
		variants[v.Name] = v
	}
	if len(m.Pools) == 0 {
		return fmt.Errorf("%w: manifest declares no pools", ErrAmbiguousPool)
	}
	pools := make(map[string]bool, len(m.Pools))
	for _, p := range m.Pools {
		if p.Name == "" {
			return fmt.Errorf("%w: pool with empty name", ErrAmbiguousPool)
		}
		if pools[p.Name] {
			return fmt.Errorf("%w: duplicate pool %q", ErrAmbiguousPool, p.Name)
		}
		pools[p.Name] = true
		if p.Count < 0 {
			return fmt.Errorf("%w: pool %q has negative count", ErrAmbiguousPool, p.Name)
		}
		if p.Max < 0 {
			return fmt.Errorf("%w: pool %q has negative max", ErrAmbiguousPool, p.Name)
		}
		if p.BuiltMax() == 0 {
			return fmt.Errorf("%w: pool %q builds no replicas (count and max both 0)", ErrAmbiguousPool, p.Name)
		}
		if p.Max > 0 && p.Count > p.Max {
			return fmt.Errorf("%w: pool %q desires %d active replicas but builds only %d", ErrAmbiguousPool, p.Name, p.Count, p.Max)
		}
		if p.Variant != "" {
			if _, ok := variants[p.Variant]; !ok {
				return fmt.Errorf("%w: pool %q references undeclared variant %q", ErrUnknownReference, p.Name, p.Variant)
			}
		}
		if _, err := cluster.ParseRole(p.Role); err != nil {
			return fmt.Errorf("%w: pool %q role %q", ErrUnknownReference, p.Name, p.Role)
		}
	}
	classes := make(map[string]bool, len(m.Classes))
	for _, cl := range m.Classes {
		if cl.Name == "" {
			return fmt.Errorf("%w: service class with empty name", ErrSyntax)
		}
		if classes[cl.Name] {
			return fmt.Errorf("%w: duplicate service class %q", ErrSyntax, cl.Name)
		}
		classes[cl.Name] = true
		if cl.TTFT < 0 || cl.ITL < 0 {
			return fmt.Errorf("%w: service class %q has a negative latency target", ErrSyntax, cl.Name)
		}
	}
	if s := m.Scaler; s != nil {
		if s.Min < 0 || s.Max < 0 {
			return fmt.Errorf("%w: scaler bounds must be >= 0", ErrSyntax)
		}
		if s.Max > 0 && s.Max > m.TotalBuilt() {
			return fmt.Errorf("%w: scaler max %d exceeds built capacity %d", ErrSyntax, s.Max, m.TotalBuilt())
		}
		if s.Min > 0 && s.Max > 0 && s.Min > s.Max {
			return fmt.Errorf("%w: scaler min %d exceeds max %d", ErrSyntax, s.Min, s.Max)
		}
	}
	pins := make(map[string]bool, len(m.Programs))
	for _, pin := range m.Programs {
		if pin.Name == "" {
			return fmt.Errorf("%w: program pin with empty name", ErrSyntax)
		}
		if pins[pin.Name] {
			return fmt.Errorf("%w: duplicate program pin %q", ErrSyntax, pin.Name)
		}
		pins[pin.Name] = true
		if _, err := CanonicalVersion(pin.Version); err != nil {
			return fmt.Errorf("%w: pin %q version %q is not semver", ErrBadVersion, pin.Name, pin.Version)
		}
		if pin.Class != "" && !classes[pin.Class] {
			return fmt.Errorf("%w: pin %q references undeclared class %q", ErrUnknownReference, pin.Name, pin.Class)
		}
	}
	if kv := m.KV; kv != nil {
		if kv.HostRatio < 0 {
			return fmt.Errorf("%w: kv host_ratio must be >= 0", ErrSyntax)
		}
		if kv.PagesOverride < 0 {
			return fmt.Errorf("%w: kv pages_override must be >= 0", ErrSyntax)
		}
		if kv.Eviction != "" {
			if _, err := core.ParseEviction(kv.Eviction); err != nil {
				return fmt.Errorf("%w: kv eviction %q", ErrUnknownReference, kv.Eviction)
			}
		}
	}
	return nil
}

// CanonicalVersion parses a semver reference with 1-3 numeric components
// and returns its canonical three-component form ("1.2" -> "1.2.0").
func CanonicalVersion(v string) (string, error) {
	parts := strings.Split(v, ".")
	if len(parts) == 0 || len(parts) > 3 || v == "" {
		return "", fmt.Errorf("version %q is not MAJOR[.MINOR[.PATCH]]", v)
	}
	nums := [3]int{}
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || (len(p) > 1 && p[0] == '0') {
			return "", fmt.Errorf("version %q component %q is not a plain number", v, p)
		}
		nums[i] = n
	}
	return fmt.Sprintf("%d.%d.%d", nums[0], nums[1], nums[2]), nil
}

// --- Derived cluster topology -------------------------------------------

// PoolRange is one pool's expansion onto the replica-ID space: pool i
// covers [Start, End) directly after pool i-1's built capacity.
type PoolRange struct {
	Name    string
	Start   int // first replica ID (inclusive)
	End     int // one past the last replica ID
	Desired int // active replicas the controller converges to
	Role    cluster.Role
	Variant string
}

// PoolRanges expands the pools onto contiguous replica-ID ranges, in
// manifest order.
func (m *Manifest) PoolRanges() []PoolRange {
	out := make([]PoolRange, 0, len(m.Pools))
	next := 0
	for _, p := range m.Pools {
		role, _ := cluster.ParseRole(p.Role)
		out = append(out, PoolRange{
			Name:    p.Name,
			Start:   next,
			End:     next + p.BuiltMax(),
			Desired: p.Count,
			Role:    role,
			Variant: p.Variant,
		})
		next += p.BuiltMax()
	}
	return out
}

// TotalBuilt is the replica count the engine constructs: the sum of every
// pool's built capacity.
func (m *Manifest) TotalBuilt() int {
	total := 0
	for _, p := range m.Pools {
		total += p.BuiltMax()
	}
	return total
}

// InitialActive is the sum of desired counts — the replicas active at
// startup (the controller aligns which ones per pool).
func (m *Manifest) InitialActive() int {
	total := 0
	for _, p := range m.Pools {
		total += p.Count
	}
	return total
}

// ReplicaVariants converts the pools into the cluster's per-replica
// variant assignment (one entry per pool, covering its built capacity).
func (m *Manifest) ReplicaVariants() []cluster.ReplicaVariant {
	byName := make(map[string]Variant, len(m.Variants))
	for _, v := range m.Variants {
		byName[v.Name] = v
	}
	out := make([]cluster.ReplicaVariant, 0, len(m.Pools))
	for _, p := range m.Pools {
		rv := cluster.ReplicaVariant{Count: p.BuiltMax()}
		if v, ok := byName[p.Variant]; ok {
			rv.Name, rv.CostRate, rv.Slowdown = v.Name, v.Cost, v.Slowdown
		}
		out = append(out, rv)
	}
	return out
}

// RoleSpecs converts the pools into the cluster's per-replica role
// assignment.
func (m *Manifest) RoleSpecs() []cluster.RoleSpec {
	out := make([]cluster.RoleSpec, 0, len(m.Pools))
	anyRole := false
	for _, p := range m.Pools {
		role, _ := cluster.ParseRole(p.Role)
		if role != cluster.RoleUnified {
			anyRole = true
		}
		out = append(out, cluster.RoleSpec{Role: role, Count: p.BuiltMax()})
	}
	if !anyRole {
		return nil
	}
	return out
}

// ServiceClasses converts the class declarations to the api form.
func (m *Manifest) ServiceClasses() []api.ServiceClass {
	out := make([]api.ServiceClass, 0, len(m.Classes))
	for _, cl := range m.Classes {
		out = append(out, api.ServiceClass{
			Name:            cl.Name,
			TTFTTarget:      cl.TTFT.Std(),
			ITLTarget:       cl.ITL.Std(),
			MinTokensPerSec: cl.TPS,
			Priority:        cl.Priority,
			Degradable:      cl.Degradable,
		})
	}
	return out
}

// PlacementPolicy resolves the placement keyword (round-robin when empty;
// Validate has already rejected unknown names).
func (m *Manifest) PlacementPolicy() cluster.PlacementPolicy {
	if m.Placement == "" {
		return cluster.PlaceRoundRobin
	}
	pol, _ := cluster.ParsePlacement(m.Placement)
	return pol
}

// ScalerConfig converts the scaler declaration (zero value when absent).
func (m *Manifest) ScalerConfig() cluster.ScalerConfig {
	s := m.Scaler
	if s == nil {
		return cluster.ScalerConfig{}
	}
	max := s.Max
	if max == 0 {
		max = m.TotalBuilt()
	}
	return cluster.ScalerConfig{
		Enabled: true, Min: s.Min, Max: max,
		Interval: s.Interval.Std(),
		SatHigh:  s.SatHigh, SatLow: s.SatLow,
		AttainTarget: s.AttainTarget,
		ScaleToZero:  s.ScaleToZero,
		IdleAfter:    s.IdleAfter.Std(),
	}
}

// EvictionPolicy resolves the KV eviction keyword (LRU when absent).
func (m *Manifest) EvictionPolicy() core.EvictionPolicy {
	if m.KV == nil || m.KV.Eviction == "" {
		return core.EvictLRU
	}
	ev, _ := core.ParseEviction(m.KV.Eviction)
	return ev
}

// Clone deep-copies the manifest (Apply snapshots desired state).
func (m *Manifest) Clone() *Manifest {
	cp := *m
	cp.Models = append([]string(nil), m.Models...)
	cp.Variants = append([]Variant(nil), m.Variants...)
	cp.Pools = append([]Pool(nil), m.Pools...)
	cp.Classes = append([]Class(nil), m.Classes...)
	cp.Programs = append([]Pin(nil), m.Programs...)
	if m.Scaler != nil {
		s := *m.Scaler
		cp.Scaler = &s
	}
	if m.KV != nil {
		kv := *m.KV
		cp.KV = &kv
	}
	if m.Reconcile.Prewarm != nil {
		b := *m.Reconcile.Prewarm
		cp.Reconcile.Prewarm = &b
	}
	return &cp
}

// CheckCompatible reports whether next can replace m by hot reload.
// Mutable: pool desired counts, program pins, placement, reconcile
// tuning. Everything shaping built topology — pool names/variants/roles/
// capacity, variant and class declarations, the scaler, KV geometry, the
// seed, the model list — is immutable and fails typed ErrImmutable.
func (m *Manifest) CheckCompatible(next *Manifest) error {
	if next.Seed != m.Seed {
		return fmt.Errorf("%w: seed (restart to change)", ErrImmutable)
	}
	if !equalStrings(next.Models, m.Models) {
		return fmt.Errorf("%w: models (restart to change)", ErrImmutable)
	}
	if len(next.Pools) != len(m.Pools) {
		return fmt.Errorf("%w: pool set (restart to add or remove pools)", ErrImmutable)
	}
	for i, p := range m.Pools {
		np := next.Pools[i]
		if np.Name != p.Name || np.Variant != p.Variant || np.Role != p.Role || np.BuiltMax() != p.BuiltMax() {
			return fmt.Errorf("%w: pool %q topology (only count may change live)", ErrImmutable, p.Name)
		}
	}
	if len(next.Variants) != len(m.Variants) {
		return fmt.Errorf("%w: variant declarations", ErrImmutable)
	}
	for i, v := range m.Variants {
		if next.Variants[i] != v {
			return fmt.Errorf("%w: variant %q", ErrImmutable, v.Name)
		}
	}
	if len(next.Classes) != len(m.Classes) {
		return fmt.Errorf("%w: service-class declarations", ErrImmutable)
	}
	for i, cl := range m.Classes {
		if next.Classes[i] != cl {
			return fmt.Errorf("%w: service class %q", ErrImmutable, cl.Name)
		}
	}
	if (m.Scaler == nil) != (next.Scaler == nil) || (m.Scaler != nil && *m.Scaler != *next.Scaler) {
		return fmt.Errorf("%w: scaler configuration", ErrImmutable)
	}
	if (m.KV == nil) != (next.KV == nil) || (m.KV != nil && *m.KV != *next.KV) {
		return fmt.Errorf("%w: kv configuration", ErrImmutable)
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
