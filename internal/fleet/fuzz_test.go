package fleet

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzParse holds the parser to its contract on arbitrary input: it never
// panics, every rejection is one of the typed errors, and every accepted
// document survives a marshal/re-parse round trip.
func FuzzParse(f *testing.F) {
	f.Add([]byte(validDoc))
	f.Add([]byte(`{"schema": 1, "pools": [{"name": "main", "count": 2}]}`))
	f.Add([]byte(`{"schema": 1, "pools": [{"name": "a", "count": 1, "max": 3}], "scaler": {"min": 1, "max": 2}}`))
	f.Add([]byte(`{"schema": 1, "pools": [{"name": "a", "count": 1}], "programs": [{"name": "p", "version": "1.2"}]}`))
	f.Add([]byte(`{"schema": 1, "pools": [{"name": "a", "count": 1}], "reconcile": {"drain_deadline": "-1ms", "upgrade_batch": -1, "prewarm": false}}`))
	f.Add([]byte(`{"schema": 2}`))
	f.Add([]byte(`{"schema": 1, "pools": []}`))
	f.Add([]byte(`{"schema": 1, "pools": [{"name": "a", "count": 1}], "kv": {"eviction": "random"}}`))
	f.Add([]byte(`{"schema": 1, "pools": [{"name": "a", "count": 1}]} trailing`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			for _, typed := range []error{ErrSyntax, ErrUnknownReference, ErrBadVersion, ErrAmbiguousPool} {
				if errors.Is(err, typed) {
					return
				}
			}
			t.Fatalf("untyped parse error: %v", err)
		}
		blob, merr := json.Marshal(m)
		if merr != nil {
			t.Fatalf("accepted manifest does not marshal: %v", merr)
		}
		if _, rerr := Parse(blob); rerr != nil {
			t.Fatalf("accepted manifest does not re-parse: %v\n%s", rerr, blob)
		}
		if m.Clone().TotalBuilt() != m.TotalBuilt() {
			t.Fatal("clone disagrees on built capacity")
		}
	})
}
