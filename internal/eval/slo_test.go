package eval

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestSLOAcceptance pins the SLO-serving experiment's headline claims at
// CI scale: at high load the saturation-guarded, cost-aware scaler holds
// interactive steady-state TTFT attainment at or above the 95% target
// where the queue-depth baseline misses it, at a total replica cost below
// the naive always-on fleet; batch launches absorb the pressure through
// graceful degradation (output caps + cheaper-model substitution) instead
// of best-effort sheds; and at low load it is no more expensive than the
// baseline (scale-to-zero pays for the machinery).
func TestSLOAcceptance(t *testing.T) {
	r := SLOSweep(Options{Quick: true})
	if len(r.Levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(r.Levels))
	}
	for _, lvl := range r.Levels {
		for name, leg := range map[string]SLOLeg{"baseline": lvl.Baseline, "slo": lvl.SLO} {
			// Conservation: every task slot is accounted for on both legs.
			if leg.IntDone != lvl.IntTotal || leg.IntFailed != 0 {
				t.Fatalf("%s/%s interactive: done %d failed %d, want %d/0",
					lvl.Spec.Name, name, leg.IntDone, leg.IntFailed, lvl.IntTotal)
			}
			if leg.BatchDone != lvl.BatchTotal {
				t.Fatalf("%s/%s batch: done %d, want %d", lvl.Spec.Name, name, leg.BatchDone, lvl.BatchTotal)
			}
			if leg.BEDone+leg.BEShed != lvl.BETotal {
				t.Fatalf("%s/%s best-effort unaccounted: done %d shed %d, want %d total",
					lvl.Spec.Name, name, leg.BEDone, leg.BEShed, lvl.BETotal)
			}
			if leg.SteadyN == 0 {
				t.Fatalf("%s/%s has no steady-state samples", lvl.Spec.Name, name)
			}
		}
	}

	high := r.Levels[len(r.Levels)-1]
	// The headline: the SLO scaler attains in steady state, the
	// queue-depth baseline does not.
	if high.SLO.SteadyTTFTAttain < 0.95 {
		t.Fatalf("slo steady-state TTFT attainment %.3f, want >= 0.95", high.SLO.SteadyTTFTAttain)
	}
	if high.Baseline.SteadyTTFTAttain >= 0.95 {
		t.Fatalf("baseline steady-state TTFT attainment %.3f: baseline attains, no contrast", high.Baseline.SteadyTTFTAttain)
	}
	// Cost: below the naive always-on fleet over the same window.
	if high.SLO.CostUnits >= high.SLO.NaiveCost {
		t.Fatalf("slo cost %.2f >= naive %.2f", high.SLO.CostUnits, high.SLO.NaiveCost)
	}
	// Pressure routed to graceful degradation, not to hard sheds: batch
	// launches were capped and downgraded while best-effort all served.
	if high.SLO.BatchDegraded == 0 || high.SLO.ModelDowngrades == 0 {
		t.Fatalf("slo leg never degraded: degraded %d downgrades %d", high.SLO.BatchDegraded, high.SLO.ModelDowngrades)
	}
	if high.SLO.BEShed != 0 {
		t.Fatalf("slo leg hard-shed %d best-effort launches", high.SLO.BEShed)
	}
	if high.Baseline.BEShed == 0 {
		t.Fatal("baseline never shed best-effort traffic: load level too low to contrast")
	}
	// Degradations were SLO-driven, not just watermark-driven: the
	// decision log attributes at least one to a higher-priority class at
	// risk, and logs the scale-ups.
	log := strings.Join(high.SLO.DecisionLog, "\n")
	if !strings.Contains(log, "degrade: class=batch") {
		t.Fatalf("no batch degradation in decision log:\n%s", log)
	}
	if !strings.Contains(log, "slo-risk=interactive") {
		t.Fatalf("no slo-risk degradation in decision log:\n%s", log)
	}
	if !strings.Contains(log, "scale-up") {
		t.Fatalf("no scale-up in decision log:\n%s", log)
	}
	// The scaler actually scaled, and drained back after the run.
	if high.SLO.ScaleUps == 0 || high.SLO.ScaleToZeroEvents == 0 {
		t.Fatalf("slo leg scaling inert: ups %d to-zero %d", high.SLO.ScaleUps, high.SLO.ScaleToZeroEvents)
	}
	if high.Baseline.ScaleUps >= high.SLO.ScaleUps {
		t.Fatalf("baseline scaled as much as slo (%d vs %d): queue-depth foil broken",
			high.Baseline.ScaleUps, high.SLO.ScaleUps)
	}

	// At low load the SLO leg must not cost more than the baseline: idle
	// fleets scale to zero instead of idling at Min.
	low := r.Levels[0]
	if low.SLO.CostUnits > low.Baseline.CostUnits {
		t.Fatalf("low-load slo cost %.2f > baseline %.2f", low.SLO.CostUnits, low.Baseline.CostUnits)
	}
	if low.SLO.ScaleToZeroEvents == 0 {
		t.Fatal("low-load slo leg never scaled to zero")
	}
}

// TestSLOSweepDeterministic pins the determinism contract: the whole
// result document and the scaler's decision log — every scale-up,
// scale-down, hold, degradation, and shed line — are byte-identical
// across same-seed runs, and a different seed actually changes the
// workload (prompt lengths derive from it), so the guard is not vacuous.
func TestSLOSweepDeterministic(t *testing.T) {
	doc := func(seed uint64) ([]byte, string) {
		r := SLOSweep(Options{Quick: true, Seed: seed})
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var log strings.Builder
		for _, lvl := range r.Levels {
			log.WriteString(strings.Join(lvl.Baseline.DecisionLog, "\n"))
			log.WriteString(strings.Join(lvl.SLO.DecisionLog, "\n"))
		}
		return b, log.String()
	}
	a, alog := doc(9)
	b, blog := doc(9)
	if string(a) != string(b) {
		t.Fatalf("same-seed sweeps diverged:\n%s\n%s", a, b)
	}
	if alog != blog {
		t.Fatalf("same-seed decision logs diverged:\n%s\n---\n%s", alog, blog)
	}
	if alog == "" {
		t.Fatal("decision log empty: determinism check is vacuous")
	}
	_, clog := doc(10)
	if clog == alog {
		t.Fatal("different seeds produced identical decision logs: seed does not reach the workload")
	}
}
