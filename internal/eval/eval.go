// Package eval contains one driver per table and figure of the paper's
// evaluation (§7). Every driver builds fresh engines (Pie and baselines)
// on fresh virtual clocks, replays the workload, and returns structured
// rows that cmd/pie-bench renders and bench_test.go reports as benchmark
// metrics. EXPERIMENTS.md records paper-vs-measured for each.
package eval

import (
	"encoding/json"
	"fmt"
	"time"

	"pie"
	"pie/apps"
	"pie/internal/baseline"
	"pie/internal/metrics"
	"pie/internal/netsim"
	"pie/internal/sim"
)

// Options tunes experiment scale. Quick shrinks workloads for CI and
// go-test benchmarks; the defaults reproduce paper-scale runs.
type Options struct {
	Seed  uint64
	Quick bool
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

// scale returns full when !Quick, else quick.
func (o Options) scale(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

// Tool latencies shared by Pie and baseline worlds (§7.1 workloads).
const (
	searchLatency = 40 * time.Millisecond
	codeLatency   = 80 * time.Millisecond
	fnLatency     = 30 * time.Millisecond
	// clientRTT is the campus-network round trip for microbenchmarks
	// (Fig. 9's launch floor pins it near 8 ms).
	clientRTT = 8 * time.Millisecond
	// agentRTT is the end-to-end client↔server round trip for the agent
	// experiments: network plus API-server request handling, the "tens of
	// milliseconds" §7.1 attributes to each client interaction.
	agentRTT = 25 * time.Millisecond
)

// newPieEngine builds a timing-mode engine with every app and tool
// service registered.
func newPieEngine(seed uint64, mutate func(*pie.Config)) *pie.Engine {
	cfg := pie.Config{Seed: seed, Mode: pie.ModeTiming, ClientRTT: clientRTT}
	if mutate != nil {
		mutate(&cfg)
	}
	e := pie.New(cfg)
	e.MustRegister(apps.All()...)
	registerTools := func(reg func(string, time.Duration, func(string) string)) {
		reg("search.api", searchLatency, func(string) string { return "search results for the query" })
		reg("code.exec", codeLatency, func(string) string { return "stdout: ok exit 0" })
		reg("fn.api", fnLatency, func(string) string { return "ok" })
	}
	registerTools(e.RegisterTool)
	return e
}

// registerWorldTools installs the same services on a baseline clock.
func registerWorldTools(w *netsim.World) {
	w.Register(&netsim.Service{Name: "search.api", Latency: searchLatency, Handler: func(string) string { return "search results for the query" }})
	w.Register(&netsim.Service{Name: "code.exec", Latency: codeLatency, Handler: func(string) string { return "stdout: ok exit 0" }})
	w.Register(&netsim.Service{Name: "fn.api", Latency: fnLatency, Handler: func(string) string { return "ok" }})
}

// marshalParams encodes app parameters.
func marshalParams(v interface{}) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// loadResult is one closed-loop load-generation outcome.
type loadResult struct {
	Latency  *metrics.Series
	Makespan time.Duration
	Done     int
	Failures int
	Tokens   int // accepted output tokens across completed tasks
}

// Throughput returns completed tasks per second of virtual time.
func (r loadResult) Throughput() float64 { return metrics.Throughput(r.Done, r.Makespan) }

// runPieLoad drives `total` instances of app through a closed-loop load
// generator with `concurrency` in flight; failed instances (e.g. FCFS
// reclamation) are retried and counted. One uncounted warmup run
// populates the binary cache so steady-state numbers exclude cold JIT.
func runPieLoad(e *pie.Engine, app string, paramsFor func(task int) string, total, concurrency int) loadResult {
	return runPieLoadAfter(e, app, paramsFor, total, concurrency, nil)
}

// runPieLoadAfter is runPieLoad with a hook that runs in the loadgen
// process after the load drains (and after Makespan is stamped) — e.g. an
// idle period so the cluster autoscaler's drain-back is observable before
// the simulation finishes.
func runPieLoadAfter(e *pie.Engine, app string, paramsFor func(task int) string, total, concurrency int, after func()) loadResult {
	res := loadResult{Latency: &metrics.Series{Name: app}}
	e.Go("loadgen", func() {
		if h, err := e.Launch(pie.Spec(app, paramsFor(0))); err == nil {
			_ = h.Wait()
		}
		start := e.Now()
		g := sim.NewGroup(e.Clock())
		queue := sim.NewMailbox[int](e.Clock())
		for t := 0; t < total; t++ {
			queue.Send(t)
		}
		for w := 0; w < concurrency; w++ {
			g.Go("worker", func() {
				for {
					task, ok := queue.TryRecv()
					if !ok {
						return
					}
					for attempt := 0; attempt < 4; attempt++ {
						t0 := e.Now()
						h, err := e.Launch(pie.Spec(app, paramsFor(task)))
						if err != nil {
							res.Failures++
							continue
						}
						if err := h.Wait(); err != nil {
							res.Failures++
							continue
						}
						res.Latency.Add(e.Now() - t0)
						_, _, tok := h.Stats()
						res.Tokens += tok
						res.Done++
						break
					}
				}
			})
		}
		g.Wait()
		res.Makespan = e.Now() - start
		if after != nil {
			after()
		}
	})
	if err := e.Run(); err != nil {
		panic(fmt.Sprintf("eval: pie load run: %v", err))
	}
	return res
}

// baselineWorkflow is a client-side agent script against a monolithic
// engine (Fig. 5 left): every generation is a network request with the
// full accumulated context, every tool call happens at the client.
type baselineWorkflow func(c *baseline.Client, w *netsim.World, rng *sim.RNG)

// runBaselineLoad drives a baseline engine with `total` client workflows,
// `concurrency` in flight, over the microbenchmark link.
func runBaselineLoad(cfg baseline.Config, wf baselineWorkflow, total, concurrency int, seed uint64) loadResult {
	return runBaselineLoadRTT(cfg, wf, total, concurrency, seed, clientRTT)
}

func runBaselineLoadRTT(cfg baseline.Config, wf baselineWorkflow, total, concurrency int, seed uint64, rtt time.Duration) loadResult {
	clock := sim.NewClock()
	eng := baseline.NewEngine(clock, cfg)
	world := netsim.NewWorld(clock)
	registerWorldTools(world)
	res := loadResult{Latency: &metrics.Series{Name: string(cfg.Kind)}}
	queue := sim.NewMailbox[int](clock)
	for t := 0; t < total; t++ {
		queue.Send(t)
	}
	g := sim.NewGroup(clock)
	for w := 0; w < concurrency; w++ {
		g.Go("client", func() {
			for {
				task, ok := queue.TryRecv()
				if !ok {
					return
				}
				t0 := clock.Now()
				c := baseline.NewClient(clock, eng, rtt)
				wf(c, world, sim.NewRNG(seed^uint64(task*2654435761)))
				res.Latency.Add(clock.Now() - t0)
				res.Done++
			}
		})
	}
	clock.Go("main", g.Wait)
	if err := clock.Run(); err != nil {
		panic(fmt.Sprintf("eval: baseline load run: %v", err))
	}
	res.Makespan = clock.Now()
	return res
}

// syntheticTokens produces deterministic token ids (valid vocab range).
func syntheticTokens(rng *sim.RNG, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 4 + rng.Intn(1800)
	}
	return out
}
