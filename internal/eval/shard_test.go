package eval

import (
	"runtime"
	"strings"
	"testing"
)

func TestShardSweepQuick(t *testing.T) {
	r := ShardSweep(Options{Quick: true})
	if r.MaxReplicas < 100 {
		t.Fatalf("largest leg is %d replicas, want >= 100", r.MaxReplicas)
	}
	for _, p := range r.Sweep {
		if p.Sessions != p.Replicas*2 {
			t.Fatalf("%d replicas: %d sessions, want %d", p.Replicas, p.Sessions, p.Replicas*2)
		}
		if p.Completions != p.Sessions || p.Failures != 0 {
			t.Fatalf("%d replicas: %d/%d sessions completed, %d failed",
				p.Replicas, p.Completions, p.Sessions, p.Failures)
		}
		if p.Events == 0 || p.AvgLatency <= 0 {
			t.Fatalf("%d replicas: no work recorded: %+v", p.Replicas, p)
		}
	}
	first, last := r.Sweep[0], r.Sweep[len(r.Sweep)-1]
	if last.Events <= first.Events {
		t.Fatalf("events did not grow with fleet size: %d @ %d replicas vs %d @ %d",
			first.Events, first.Replicas, last.Events, last.Replicas)
	}
	if !r.Deterministic {
		t.Fatal("serial rerun of the largest leg diverged from the parallel run")
	}
	if !strings.Contains(r.Table(), "BYTE-IDENTICAL") {
		t.Fatalf("table does not report the determinism probe:\n%s", r.Table())
	}
}

// TestShardSweepDeterminismAcrossGOMAXPROCS is the cross-shard
// determinism stress for the -shard bench rows: a sweep's deterministic
// transcript must be byte-identical at GOMAXPROCS=1 and at the default,
// and must move when the seed moves. Small legs keep it cheap — the
// 128-replica byte-identity probe runs inside TestShardSweepQuick.
func TestShardSweepDeterminismAcrossGOMAXPROCS(t *testing.T) {
	o := Options{Quick: true, Seed: 23}
	legs := []int{1, 4, 8}
	parallel := shardSweep(o, legs).Summary()
	prev := runtime.GOMAXPROCS(1)
	serial := shardSweep(o, legs).Summary()
	runtime.GOMAXPROCS(prev)
	if parallel != serial {
		t.Fatalf("-shard sweep transcript differs across GOMAXPROCS:\n--- parallel ---\n%s\n--- serial ---\n%s",
			parallel, serial)
	}
	if other := shardSweep(Options{Quick: true, Seed: 24}, legs).Summary(); other == parallel {
		t.Fatal("different seeds produced identical sweep transcripts (seed not plumbed through)")
	}
}

// TestBenchRowDeterminismAcrossGOMAXPROCS pins the -pd and -faults
// bench rows: their tables are virtual-time only, so parallelFor
// spreading legs across cores must not change a byte.
func TestBenchRowDeterminismAcrossGOMAXPROCS(t *testing.T) {
	o := Options{Quick: true, Seed: 5}
	pdPar := PDSweep(o).Table()
	faultsPar := FaultsSweep(o).Table()
	prev := runtime.GOMAXPROCS(1)
	pdSer := PDSweep(o).Table()
	faultsSer := FaultsSweep(o).Table()
	runtime.GOMAXPROCS(prev)
	if pdPar != pdSer {
		t.Fatalf("-pd bench rows differ across GOMAXPROCS:\n--- parallel ---\n%s\n--- serial ---\n%s", pdPar, pdSer)
	}
	if faultsPar != faultsSer {
		t.Fatalf("-faults bench rows differ across GOMAXPROCS:\n--- parallel ---\n%s\n--- serial ---\n%s", faultsPar, faultsSer)
	}
}
