package eval

import (
	"encoding/json"
	"testing"
)

// TestOffloadSweepRecoversCapacity pins the headline acceptance claims:
// at 2x oversubscription the host tier recovers at least 1.5x effective
// KV capacity with no FCFS terminations, while the device-only engine
// collapses into termination churn; the TTFT cost of offloading stays
// bounded relative to the uncontended baseline.
func TestOffloadSweepRecoversCapacity(t *testing.T) {
	r := OffloadSweep(quick)
	if len(r.Points) != 2*len(offloadOversubs) {
		t.Fatalf("%d points, want %d", len(r.Points), 2*len(offloadOversubs))
	}
	base, ok := r.Get(1, 0)
	if !ok || base.Done == 0 || base.TTFT == 0 {
		t.Fatalf("1x device-only leg incomplete: %+v", base)
	}
	if base.Failures != 0 || base.Terminations != 0 {
		t.Fatalf("1x device-only leg contended: %+v", base)
	}

	off2, ok := r.Get(2, offloadHostRatio)
	if !ok {
		t.Fatal("missing 2x offload leg")
	}
	if off2.EffCapacity < 1.5 {
		t.Fatalf("2x offload effective capacity = %.2fx, want >= 1.5x", off2.EffCapacity)
	}
	if off2.Terminations != 0 {
		t.Fatalf("2x offload leg still terminated %d inferlets", off2.Terminations)
	}
	if off2.Done != off2.Agents*2 {
		t.Fatalf("2x offload completed %d of %d tasks", off2.Done, off2.Agents*2)
	}
	if off2.SwapOutPages == 0 || off2.SwapInPages == 0 {
		t.Fatalf("2x offload leg recorded no swap traffic: %+v", off2)
	}
	// Bounded TTFT degradation: prefetch transfer plus fault-in queueing
	// must stay within 2.5x of the uncontended single-tier baseline
	// (measured ~2.05x at quick scale; the device-only engine at the same
	// load does not serve most requests at all).
	if float64(off2.TTFT) > 2.5*float64(base.TTFT) {
		t.Fatalf("2x offload TTFT %v exceeds 2.5x the 1x baseline %v", off2.TTFT, base.TTFT)
	}

	// The device-only engine at the same load resolves contention by
	// killing inferlets.
	none2, ok := r.Get(2, 0)
	if !ok || none2.Terminations == 0 {
		t.Fatalf("2x device-only leg shows no contention: %+v", none2)
	}
	if none2.Done >= off2.Done {
		t.Fatalf("offload did not improve completions: %d (offload) vs %d (none)", off2.Done, none2.Done)
	}
}

// TestOffloadSweepDeterministic pins the byte-identical contract for the
// whole experiment document.
func TestOffloadSweepDeterministic(t *testing.T) {
	a, err := json.Marshal(OffloadSweep(quick))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(OffloadSweep(quick))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("same-seed offload sweeps produced different documents")
	}
}
