package eval

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"pie"
	"pie/apps"
	"pie/internal/metrics"
	"pie/internal/sim"
)

// SLO-aware serving experiment (beyond the paper): mixed-class traffic —
// interactive (tight TTFT/ITL targets, high priority), batch (degradable,
// larger model), and best-effort (negative priority, unclassed) — replayed
// at three load levels against the same heterogeneous 8-replica pool,
// twice per level:
//
//   - baseline: the queue-depth autoscaler (mean outstanding calls per
//     replica against a fixed threshold), blind to classes and cost;
//   - slo: the saturation-guarded, cost-aware scaler driven by live
//     per-class attainment, with graceful degradation and scale-to-zero.
//
// The claims under test: at high load the SLO scaler holds interactive
// TTFT attainment at or above the target where the queue-depth baseline
// misses it; it does so at a lower cost than a naive always-on fleet; the
// batch class absorbs saturation through degradation (output caps +
// cheaper-model substitution) instead of interactive misses; and the whole
// decision log is byte-identical under the same seed.

// Workload shape. The pool is 4 reference replicas plus 4 economy
// replicas (cheaper, slower kernels); both legs of every level see the
// identical hardware and start from the same active count.
const (
	sloReplicas    = 8
	sloStartActive = 2
	sloMaxTokens   = 12
	sloBatchTokens = 24
	// sloIdleTail extends the run past the last completion so the SLO
	// leg's scale-to-zero (and the baseline's drain-back) is observable
	// inside the measured window.
	sloIdleTail = 400 * time.Millisecond
)

// sloTargets are the interactive-class latency objectives. TTFT includes
// launch admission, instantiation, queueing, and prefill on the virtual
// clock; ITL is the decode interval under batching.
const (
	sloTTFTTarget = 120 * time.Millisecond
	sloITLTarget  = 60 * time.Millisecond
)

// sloVariants is the heterogeneous pool: replicas 0-3 reference ("l4"),
// replicas 4-7 economy ("l4e") at 60% of the price and ~35% slower
// kernels.
func sloVariants() []pie.ReplicaVariant {
	return []pie.ReplicaVariant{
		{Name: "l4", CostRate: 1.0, Count: 4},
		{Name: "l4e", CostRate: 0.6, Slowdown: 1.35},
	}
}

// sloClasses is the service-class registry both legs run under.
func sloClasses() []pie.ServiceClass {
	return []pie.ServiceClass{
		{Name: "interactive", TTFTTarget: sloTTFTTarget, ITLTarget: sloITLTarget, Priority: 10},
		{Name: "batch", MinTokensPerSec: 40, Degradable: true},
	}
}

// SLOLevelSpec shapes one load level of the mixed workload.
type SLOLevelSpec struct {
	Name                       string
	IntConc, BatchConc, BEConc int // closed-loop clients per class
}

func sloLevels() []SLOLevelSpec {
	return []SLOLevelSpec{
		{Name: "low", IntConc: 4, BatchConc: 2, BEConc: 2},
		{Name: "mid", IntConc: 12, BatchConc: 6, BEConc: 4},
		{Name: "high", IntConc: 28, BatchConc: 12, BEConc: 8},
	}
}

// SLOLeg is one measured run of the mixed workload under one scaler.
type SLOLeg struct {
	IntDone, IntFailed int
	IntTTFTAttain      float64 // engine-side cumulative attainment vs TTFTTarget
	IntITLAttain       float64
	// SteadyTTFTAttain is client-observed TTFT attainment excluding the
	// first two closed-loop rounds: the cold ramp hits every scaler the
	// same way, so steady state is where the policies separate.
	SteadyTTFTAttain  float64
	SteadyN           int
	ClientTTFTP95     time.Duration // client-observed launch -> first token
	BatchDone         int
	BatchDegraded     int // launches admitted with a degraded output cap
	ModelDowngrades   int // queues opened on a substituted cheaper model
	BEDone, BEShed    int
	Makespan          time.Duration
	CostUnits         float64 // Σ replica cost-rate x active seconds
	NaiveCost         float64 // always-on full fleet over the same makespan
	ScaleUps          int
	ScaleToZeroEvents int
	FinalActive       int
	Decisions         int // decision-log length (scale/degrade/shed lines)
	// DecisionLog is the full scale/degrade/shed decision log, the
	// determinism contract's unit of comparison. Excluded from the JSON
	// document so benchmark artifacts stay compact.
	DecisionLog []string `json:"-"`
}

// SLOLevel pairs the two legs of one load level.
type SLOLevel struct {
	Spec              SLOLevelSpec
	IntTotal, BETotal int
	BatchTotal        int
	Baseline, SLO     SLOLeg
}

// SLOResult is the full sweep.
type SLOResult struct {
	Replicas int
	Levels   []SLOLevel
}

// SLOSweep runs every load level under both scalers, each leg on an
// independent engine with the same seed, fanned out across workers.
func SLOSweep(o Options) SLOResult {
	specs := sloLevels()
	out := SLOResult{Replicas: sloReplicas, Levels: make([]SLOLevel, len(specs))}
	parallelFor(2*len(specs), func(i int) {
		lvl := &out.Levels[i/2]
		spec := specs[i/2]
		leg := runSLOLeg(o, spec, i%2 == 1)
		if i%2 == 0 {
			lvl.Spec = spec
			lvl.IntTotal = spec.IntConc * o.scale(12, 4)
			lvl.BatchTotal = spec.BatchConc * o.scale(12, 4)
			lvl.BETotal = spec.BEConc * o.scale(12, 4)
			lvl.Baseline = leg
		} else {
			lvl.SLO = leg
		}
	})
	return out
}

// sloEngine builds one engine for a leg: identical hardware, classes, and
// shedding on both; only the scaling loop differs.
func sloEngine(seed uint64, slo bool) *pie.Engine {
	return newPieEngine(seed, func(c *pie.Config) {
		c.Replicas = sloStartActive
		c.Placement = pie.PlaceLeastLoaded
		c.Classes = sloClasses()
		c.Variants = sloVariants()
		// Degradation watermarks sit below the shed watermarks: batch
		// launches shorten before best-effort launches drop.
		c.Shed = pie.ShedConfig{Enabled: true, KVWatermark: 0.9, QueueDepth: 24}
		if slo {
			c.Scaler = pie.ScalerConfig{
				Enabled: true, Min: 1, Max: sloReplicas,
				ScaleToZero: true, IdleAfter: 150 * time.Millisecond,
			}
		} else {
			c.Autoscale = pie.AutoscaleConfig{Enabled: true, Min: 1, Max: sloReplicas}
		}
	})
}

// runSLOLeg drives the mixed-class workload once.
func runSLOLeg(o Options, spec SLOLevelSpec, slo bool) SLOLeg {
	perWorker := o.scale(12, 4)
	e := sloEngine(o.seed(), slo)
	// Seed-sensitive prompts: prefill sizes (and so every downstream
	// timing and scaling decision) vary with the seed.
	promptRNG := sim.NewRNG(o.seed() ^ 0x51095109)
	prompts := make([]string, 64)
	for i := range prompts {
		prompts[i] = strings.Repeat("service level objective probe ", 1+promptRNG.Intn(8))
	}
	var leg SLOLeg
	ttft := &metrics.Series{Name: "client-ttft"}
	// Steady state starts after every interactive client has completed two
	// tasks — past the cold ramp both scalers pay equally.
	warmCut := 2 * spec.IntConc
	steadyGood := 0
	e.Go("loadgen", func() {
		// Warmup populates every artifact cache path before measurement.
		if h, err := e.Launch(pie.Spec("text_completion", marshalParams(apps.CompletionParams{
			Prompt: prompts[0], MaxTokens: 2,
		}))); err == nil {
			_ = h.Wait()
		}
		start := e.Now()
		g := sim.NewGroup(e.Clock())
		intQ := sim.NewMailbox[int](e.Clock())
		batchQ := sim.NewMailbox[int](e.Clock())
		beQ := sim.NewMailbox[int](e.Clock())
		for t := 0; t < spec.IntConc*perWorker; t++ {
			intQ.Send(t)
		}
		for t := 0; t < spec.BatchConc*perWorker; t++ {
			batchQ.Send(t)
		}
		for t := 0; t < spec.BEConc*perWorker; t++ {
			beQ.Send(t)
		}
		for w := 0; w < spec.IntConc; w++ {
			g.Go("interactive", func() {
				for {
					task, ok := intQ.TryRecv()
					if !ok {
						return
					}
					params := marshalParams(apps.CompletionParams{
						Prompt:        prompts[task%len(prompts)],
						MaxTokens:     sloMaxTokens,
						FirstTokenAck: true,
					})
					sp := pie.Spec("text_completion", params)
					sp.Class = "interactive"
					t0 := e.Now()
					h, err := e.Launch(sp)
					if err != nil {
						leg.IntFailed++
						continue
					}
					if msg, merr := h.Recv().Get(); merr == nil && msg == "first-token" {
						d := e.Now() - t0
						ttft.Add(d)
						if task >= warmCut {
							leg.SteadyN++
							if d <= sloTTFTTarget {
								steadyGood++
							}
						}
					}
					if h.Wait() != nil {
						leg.IntFailed++
						continue
					}
					leg.IntDone++
				}
			})
		}
		for w := 0; w < spec.BatchConc; w++ {
			g.Go("batch", func() {
				for {
					task, ok := batchQ.TryRecv()
					if !ok {
						return
					}
					params := marshalParams(apps.CompletionParams{
						Common: apps.Common{Model: "llama-3b"},
						Prompt: prompts[(task*7)%len(prompts)],
						// Degraded admissions rewrite this cap downward.
						MaxTokens: sloBatchTokens,
					})
					sp := pie.Spec("text_completion", params)
					sp.Class = "batch"
					h, err := e.Launch(sp)
					if err != nil {
						continue
					}
					if h.Degraded() {
						leg.BatchDegraded++
					}
					if h.Wait() == nil {
						leg.BatchDone++
					}
				}
			})
		}
		for w := 0; w < spec.BEConc; w++ {
			g.Go("best-effort", func() {
				for {
					task, ok := beQ.TryRecv()
					if !ok {
						return
					}
					params := marshalParams(apps.CompletionParams{
						Prompt:    prompts[(task*3)%len(prompts)],
						MaxTokens: sloMaxTokens,
					})
					sp := pie.Spec("text_completion", params)
					sp.Priority = -1
					h, err := e.Launch(sp)
					switch {
					case err == nil:
						if h.Wait() == nil {
							leg.BEDone++
						}
					case errors.Is(err, pie.ErrOverloaded):
						leg.BEShed++
					}
				}
			})
		}
		g.Wait()
		leg.Makespan = e.Now() - start
		// Idle tail: long enough for the SLO leg to drain to zero and the
		// baseline to drain back toward Min, so the cost gap is honest
		// about idle fleets too.
		e.Sleep(sloIdleTail)
	})
	if err := e.Run(); err != nil {
		panic(fmt.Sprintf("eval: slo leg run: %v", err))
	}
	st := e.Stats()
	for _, cs := range st.Classes {
		if cs.Class == "interactive" {
			leg.IntTTFTAttain = cs.TTFTAttainment
			leg.IntITLAttain = cs.ITLAttainment
		}
	}
	leg.SteadyTTFTAttain = 1
	if leg.SteadyN > 0 {
		leg.SteadyTTFTAttain = float64(steadyGood) / float64(leg.SteadyN)
	}
	leg.ClientTTFTP95 = ttft.Percentile(95)
	leg.ModelDowngrades = st.ModelDowngrades
	leg.CostUnits = st.CostUnits
	leg.ScaleToZeroEvents = st.ScaleToZeroEvents
	leg.FinalActive = st.ActiveReplicas
	leg.ScaleUps = e.Cluster().ScaleUps
	leg.Decisions = len(e.Cluster().Decisions)
	leg.DecisionLog = append([]string(nil), e.Cluster().Decisions...)
	// The naive comparator keeps the whole fleet active for the leg's
	// entire run (makespan + idle tail): what the cost-aware scaler is up
	// against.
	var rate float64
	for _, r := range e.ReplicaStats() {
		rate += r.CostRate
	}
	leg.NaiveCost = rate * (leg.Makespan + sloIdleTail).Seconds()
	return leg
}

// Table renders the experiment in paper style.
func (r SLOResult) Table() string {
	var b strings.Builder
	t := &metrics.Table{
		Title: fmt.Sprintf("SLO serving: mixed classes on %d heterogeneous replicas (interactive ttft<=%v itl<=%v; batch degradable; best-effort sheddable)",
			r.Replicas, sloTTFTTarget, sloITLTarget),
		Header: []string{"level", "scaler", "int done", "ttft attain", "steady attain", "itl attain", "client p95", "batch done/degr/downg", "be done/shed", "makespan", "cost", "naive cost", "ups", "to-zero"},
	}
	for _, lvl := range r.Levels {
		row := func(name string, l SLOLeg) {
			t.AddRow(lvl.Spec.Name, name,
				fmt.Sprint(l.IntDone),
				fmt.Sprintf("%.1f%%", l.IntTTFTAttain*100),
				fmt.Sprintf("%.1f%%", l.SteadyTTFTAttain*100),
				fmt.Sprintf("%.1f%%", l.IntITLAttain*100),
				metrics.Ms(l.ClientTTFTP95),
				fmt.Sprintf("%d/%d/%d", l.BatchDone, l.BatchDegraded, l.ModelDowngrades),
				fmt.Sprintf("%d/%d", l.BEDone, l.BEShed),
				metrics.Ms(l.Makespan),
				fmt.Sprintf("%.2f", l.CostUnits),
				fmt.Sprintf("%.2f", l.NaiveCost),
				fmt.Sprint(l.ScaleUps),
				fmt.Sprint(l.ScaleToZeroEvents))
		}
		row("queue-depth", lvl.Baseline)
		row("slo", lvl.SLO)
	}
	b.WriteString(t.String())
	high := r.Levels[len(r.Levels)-1]
	fmt.Fprintf(&b, "\nSLO: high load steady-state interactive TTFT attainment %.1f%% (queue-depth baseline %.1f%%), "+
		"cost %.2f vs %.2f baseline vs %.2f naive, %d degradations, %d model downgrades, %d scale-to-zero drains\n",
		high.SLO.SteadyTTFTAttain*100, high.Baseline.SteadyTTFTAttain*100,
		high.SLO.CostUnits, high.Baseline.CostUnits, high.SLO.NaiveCost,
		high.SLO.BatchDegraded, high.SLO.ModelDowngrades, high.SLO.ScaleToZeroEvents)
	return b.String()
}
