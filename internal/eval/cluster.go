package eval

import (
	"fmt"
	"strings"
	"time"

	"pie"
	"pie/apps"
	"pie/internal/metrics"
	"pie/internal/sim"
)

// Cluster scaling experiment (beyond the paper): the engine fronts N
// backend replicas — each a full serving stack with its own device,
// scheduler, and KV pools — behind the cluster router. Three questions:
//
//  1. Scaling: weak-scaling batch completion (16 concurrent clients per
//     replica) swept N=1..8 under least-outstanding-tokens placement.
//     Aggregate tokens/sec must grow monotonically with N.
//  2. Affinity: a prefix-caching workload with 8 hot shared prefixes,
//     round-robin versus KV-affinity placement at N=4. Affinity keeps
//     every key on one replica, so each prefix prefills once instead of
//     once per replica.
//  3. Autoscaling: the same batch load against min=1/max=8 bounds; the
//     queue-depth autoscaler grows the active set under load and drains
//     it back afterward.
//
// Everything runs on virtual clocks: same-seed runs produce byte-identical
// results, including the per-replica stats.

// Cluster sweep workload shape.
const (
	clusterSweepMaxN     = 8
	clusterConcPerRep    = 16 // weak scaling: concurrent clients per replica
	clusterMaxTokens     = 24
	clusterPrefixKeys    = 8
	clusterPrefixConc    = 16
	clusterAutoConc      = 64
	clusterAutoMaxTokens = 16
)

// ClusterPoint is one measured cluster run. The batch sweep fills the
// token-oriented metrics; the request-oriented affinity legs fill
// ReqPerSec/MeanLatency instead.
type ClusterPoint struct {
	Replicas     int
	Concurrency  int
	Done         int
	Failures     int
	Tokens       int
	Makespan     time.Duration
	TokensPerSec float64
	TTFT         time.Duration // mean time to first token
	TPOT         time.Duration // mean time per output token after the first
	ReqPerSec    float64       // affinity legs: completed requests per second
	MeanLatency  time.Duration // affinity legs: mean end-to-end request latency
	PerReplica   []metrics.ReplicaStats
}

// ClusterAutoPoint is the autoscaling run with its scaling trajectory.
type ClusterAutoPoint struct {
	ClusterPoint
	ScaleUps    int
	DrainStart  int
	DrainDone   int
	FinalActive int
}

// ClusterResult holds the full experiment.
type ClusterResult struct {
	Sweep      []ClusterPoint // N = 1..clusterSweepMaxN, least-loaded placement
	AffinityRR ClusterPoint   // prefix workload, round-robin
	AffinityKV ClusterPoint   // prefix workload, kv-affinity
	Auto       ClusterAutoPoint
}

// ClusterSweep runs the full cluster experiment. Every leg builds an
// independent engine on a fresh virtual clock, so legs fan out across
// workers with results in index-addressed slots.
func ClusterSweep(o Options) ClusterResult {
	var out ClusterResult
	out.Sweep = make([]ClusterPoint, clusterSweepMaxN)
	rounds := o.scale(6, 3)
	legs := clusterSweepMaxN + 3
	parallelFor(legs, func(i int) {
		switch {
		case i < clusterSweepMaxN:
			n := i + 1
			conc := clusterConcPerRep * n
			e := newPieEngine(o.seed(), func(c *pie.Config) {
				c.Replicas = n
				c.Placement = pie.PlaceLeastLoaded
			})
			out.Sweep[i] = runClusterBatch(e, n, conc, conc*rounds, clusterMaxTokens)
		case i == clusterSweepMaxN:
			out.AffinityRR = runClusterPrefix(o, pie.PlaceRoundRobin)
		case i == clusterSweepMaxN+1:
			out.AffinityKV = runClusterPrefix(o, pie.PlaceKVAffinity)
		default:
			out.Auto = runClusterAuto(o)
		}
	})
	return out
}

// runClusterBatch drives the weak-scaling batch-completion workload and
// measures TTFT/TPOT per task from the first-token ack.
func runClusterBatch(e *pie.Engine, n, conc, total, maxTokens int) ClusterPoint {
	params := marshalParams(apps.CompletionParams{
		Prompt:        "The serving system dispatches requests across replicas",
		MaxTokens:     maxTokens,
		FirstTokenAck: true,
	})
	p := ClusterPoint{Replicas: n, Concurrency: conc}
	var ttftSum, tpotSum time.Duration
	var ttftN, tpotN int
	e.Go("loadgen", func() {
		// Warmup populates the binary cache so steady-state numbers exclude
		// cold JIT.
		if h, err := e.Launch(pie.Spec("text_completion", params)); err == nil {
			_ = h.Wait()
		}
		start := e.Now()
		g := sim.NewGroup(e.Clock())
		queue := sim.NewMailbox[int](e.Clock())
		for t := 0; t < total; t++ {
			queue.Send(t)
		}
		for w := 0; w < conc; w++ {
			g.Go("client", func() {
				for {
					if _, ok := queue.TryRecv(); !ok {
						return
					}
					t0 := e.Now()
					h, err := e.Launch(pie.Spec("text_completion", params))
					if err != nil {
						p.Failures++
						continue
					}
					tFirst := t0
					if _, err := h.Recv().Get(); err == nil {
						tFirst = e.Now()
						ttftSum += tFirst - t0
						ttftN++
					}
					if err := h.Wait(); err != nil {
						p.Failures++
						continue
					}
					end := e.Now()
					_, _, tok := h.Stats()
					if tok > 1 && tFirst > t0 {
						tpotSum += (end - tFirst) / time.Duration(tok-1)
						tpotN++
					}
					p.Tokens += tok
					p.Done++
				}
			})
		}
		g.Wait()
		p.Makespan = e.Now() - start
	})
	if err := e.Run(); err != nil {
		panic(fmt.Sprintf("eval: cluster batch run: %v", err))
	}
	if p.Makespan > 0 {
		p.TokensPerSec = float64(p.Tokens) / p.Makespan.Seconds()
	}
	if ttftN > 0 {
		p.TTFT = ttftSum / time.Duration(ttftN)
	}
	if tpotN > 0 {
		p.TPOT = tpotSum / time.Duration(tpotN)
	}
	p.PerReplica = e.ReplicaStats()
	return p
}

// runClusterPrefix drives the shared-prefix workload: tasks cycle over
// clusterPrefixKeys hot prefixes, each tagged with the cache_key the
// router's affinity policy sticks to.
func runClusterPrefix(o Options, placement pie.PlacementPolicy) ClusterPoint {
	const n = 4
	total := o.scale(128, 48)
	e := newPieEngine(o.seed(), func(c *pie.Config) {
		c.Replicas = n
		c.Placement = placement
	})
	prefix := strings.Repeat("shared corpus context segment ", 48)
	paramsFor := func(task int) string {
		// Hash the task index so the key sequence doesn't alias with
		// round-robin's placement cycle (a periodic key pattern would give
		// round-robin accidental affinity).
		key := int((uint64(task)*2654435761)>>16) % clusterPrefixKeys
		return marshalParams(apps.PrefixCachingParams{
			SharedPrefix: prefix + fmt.Sprint(key),
			Prompt:       fmt.Sprintf("query %d", task),
			MaxTokens:    8,
			CacheKey:     fmt.Sprintf("sweep-prefix:%d", key),
		})
	}
	res := runPieLoad(e, "prefix_caching", paramsFor, total, clusterPrefixConc)
	p := ClusterPoint{
		Replicas:    n,
		Concurrency: clusterPrefixConc,
		Done:        res.Done,
		Failures:    res.Failures,
		Makespan:    res.Makespan,
		MeanLatency: res.Latency.Mean(),
		PerReplica:  e.ReplicaStats(),
	}
	if res.Makespan > 0 {
		p.ReqPerSec = metrics.Throughput(res.Done, res.Makespan)
	}
	return p
}

// runClusterAuto drives the batch workload against autoscaling bounds and
// keeps the clock alive afterward so the drain-back is observable.
func runClusterAuto(o Options) ClusterAutoPoint {
	total := o.scale(256, 128)
	e := newPieEngine(o.seed(), func(c *pie.Config) {
		c.Replicas = 1
		c.Placement = pie.PlaceLeastLoaded
		c.Autoscale = pie.AutoscaleConfig{
			Enabled: true, Min: 1, Max: 8,
			UpDepth: 12, DownDepth: 2,
		}
	})
	params := marshalParams(apps.CompletionParams{
		Prompt:    "autoscale probe",
		MaxTokens: clusterAutoMaxTokens,
	})
	// The post-load idle period lets the autoscaler drain back to Min
	// before the simulation finishes.
	res := runPieLoadAfter(e, "text_completion", func(int) string { return params },
		total, clusterAutoConc, func() { e.Sleep(2 * time.Second) })
	var p ClusterAutoPoint
	p.Done = res.Done
	p.Failures = res.Failures
	p.Tokens = res.Tokens
	p.Makespan = res.Makespan
	if res.Makespan > 0 {
		p.TokensPerSec = float64(res.Tokens) / res.Makespan.Seconds()
	}
	p.Replicas = len(e.Cluster().Replicas()) // the autoscale Max bound
	p.Concurrency = clusterAutoConc
	p.PerReplica = e.ReplicaStats()
	cl := e.Cluster()
	p.ScaleUps = cl.ScaleUps
	p.DrainStart = cl.DrainStart
	p.DrainDone = cl.DrainDone
	p.FinalActive = cl.ActiveReplicas()
	return p
}

// Table renders the experiment in paper style.
func (r ClusterResult) Table() string {
	var b strings.Builder
	t := &metrics.Table{
		Title:  "Cluster: weak-scaling replica sweep (text completion, least-outstanding-tokens placement)",
		Header: []string{"replicas", "clients", "done", "tok/s", "ttft", "tpot", "speedup"},
	}
	base := 0.0
	if len(r.Sweep) > 0 {
		base = r.Sweep[0].TokensPerSec
	}
	for _, p := range r.Sweep {
		t.AddRow(fmt.Sprint(p.Replicas), fmt.Sprint(p.Concurrency), fmt.Sprint(p.Done),
			fmt.Sprintf("%.0f", p.TokensPerSec), metrics.Ms(p.TTFT), metrics.Ms(p.TPOT),
			metrics.Ratio(p.TokensPerSec, base)+"x")
	}
	b.WriteString(t.String())

	a := &metrics.Table{
		Title:  "\nCluster: placement policy on the shared-prefix workload (4 replicas, 8 hot prefixes)",
		Header: []string{"placement", "done", "req/s", "mean latency"},
	}
	a.AddRow("round-robin", fmt.Sprint(r.AffinityRR.Done),
		fmt.Sprintf("%.2f", r.AffinityRR.ReqPerSec), metrics.Ms(r.AffinityRR.MeanLatency))
	a.AddRow("kv-affinity", fmt.Sprint(r.AffinityKV.Done),
		fmt.Sprintf("%.2f", r.AffinityKV.ReqPerSec), metrics.Ms(r.AffinityKV.MeanLatency))
	b.WriteString(a.String())

	fmt.Fprintf(&b, "\nCluster: autoscaler (bounds 1..8, %d clients): %d done, %.0f tok/s, "+
		"%d scale-ups, %d drains started, %d completed, %d active at end\n",
		r.Auto.Concurrency, r.Auto.Done, r.Auto.TokensPerSec,
		r.Auto.ScaleUps, r.Auto.DrainStart, r.Auto.DrainDone, r.Auto.FinalActive)
	b.WriteString(metrics.ReplicaTable(r.Auto.PerReplica).String())
	return b.String()
}
