package eval

import (
	"fmt"
	"time"

	"pie/apps"
	"pie/internal/baseline"
	"pie/internal/metrics"
	"pie/internal/netsim"
	"pie/internal/sim"
)

// Figure 8: normalized latency and throughput of eleven inference
// techniques across Pie, vLLM, SGLang, LMQL, and StreamingLLM. Paper:
// Pie matches the state of the art on standard tasks (3–12% overhead on
// text completion) and wins on deliberate prompting (−28% latency, +34%
// throughput) and attention-level techniques (1.5×/30× vs StreamingLLM).
// Unsupported (technique, system) pairs are ×.

// Fig8Row is one cell of the grid.
type Fig8Row struct {
	Technique  string
	System     string
	Latency    time.Duration
	Throughput float64
	Supported  bool
}

// Fig8Result is the full grid.
type Fig8Result struct {
	Techniques []string
	Systems    []string
	Rows       []Fig8Row
}

type fig8Runner func(o Options, total, concurrency int) loadResult

// Figure8 runs every supported cell.
func Figure8(o Options) Fig8Result {
	out := Fig8Result{
		Techniques: []string{"textcomp", "prefixtree", "tot", "rot", "got", "skot",
			"cache", "ebnf", "specdec", "beam", "attnsink"},
		Systems: []string{"pie", "vllm", "sglang", "lmql", "streamingllm"},
	}
	latConc := 2
	thptConc := o.scale(32, 12)
	totalLat := latConc * 3
	totalThpt := o.scale(64, 18)

	// All 55 grid cells are independent; fan them out and fill rows by
	// index so the table reads identically to a serial run.
	out.Rows = make([]Fig8Row, len(out.Techniques)*len(out.Systems))
	parallelFor(len(out.Rows), func(i int) {
		tech := out.Techniques[i/len(out.Systems)]
		sys := out.Systems[i%len(out.Systems)]
		runner := fig8Cell(tech, sys)
		if runner == nil {
			out.Rows[i] = Fig8Row{Technique: tech, System: sys}
			return
		}
		lat := runner(o, totalLat, latConc)
		thp := runner(o, totalThpt, thptConc)
		out.Rows[i] = Fig8Row{
			Technique: tech, System: sys, Supported: true,
			Latency: lat.Latency.Mean(), Throughput: thp.Throughput(),
		}
	})
	return out
}

// Workload shapes per technique (1B model throughout, matching §7.2-7.3).
const (
	f8PromptLen = 256
	f8GenLen    = 64
	f8Branches  = 4
	f8Branch    = 24
)

var f8Prompt = func() string {
	s := ""
	for i := 0; i < 40; i++ {
		s += "the story of the system continues with more events and people "
	}
	return s[:900] // ≈ 256 tokens after lexicon compression
}()

// fig8Cell returns the runner for (technique, system), nil when the pair
// is unsupported (× in the figure).
func fig8Cell(tech, sys string) fig8Runner {
	pieApp := func(app string, params interface{}) fig8Runner {
		return func(o Options, total, conc int) loadResult {
			e := newPieEngine(o.seed(), nil)
			blob := marshalParams(params)
			return runPieLoad(e, app, func(int) string { return blob }, total, conc)
		}
	}
	bl := func(cfg baseline.Config, wf baselineWorkflow) fig8Runner {
		return func(o Options, total, conc int) loadResult {
			return runBaselineLoad(cfg, wf, total, conc, o.seed())
		}
	}
	simpleGen := func(promptLen, gen int, opts func(*baseline.Request)) baselineWorkflow {
		return func(c *baseline.Client, w *netsim.World, rng *sim.RNG) {
			r := &baseline.Request{Prompt: syntheticTokens(rng, promptLen), MaxTokens: gen,
				Script: syntheticTokens(rng, gen)}
			if opts != nil {
				opts(r)
			}
			c.GenerateOpts(r)
		}
	}

	switch tech + "/" + sys {
	// --- Text completion: everything but StreamingLLM.
	case "textcomp/pie":
		return pieApp("text_completion", apps.CompletionParams{Prompt: f8Prompt, MaxTokens: f8GenLen})
	case "textcomp/vllm":
		return bl(baseline.Config{Kind: baseline.VLLM, ModelLabel: "1B"}, simpleGen(f8PromptLen, f8GenLen, nil))
	case "textcomp/sglang":
		return bl(baseline.Config{Kind: baseline.SGLang, ModelLabel: "1B"}, simpleGen(f8PromptLen, f8GenLen, nil))
	case "textcomp/lmql":
		return bl(baseline.Config{Kind: baseline.LMQL, ModelLabel: "1B"}, simpleGen(f8PromptLen, f8GenLen, nil))

	// --- Prefix-tree branching: Pie and SGLang (RadixAttention).
	case "prefixtree/pie":
		return pieApp("prefix_tree", apps.PrefixTreeParams{Prompt: f8Prompt, Branches: f8Branches, BranchTokens: f8Branch})
	case "prefixtree/sglang":
		return bl(baseline.Config{Kind: baseline.SGLang, ModelLabel: "1B"},
			func(c *baseline.Client, w *netsim.World, rng *sim.RNG) {
				c.GenerateFork(syntheticTokens(rng, f8PromptLen), f8Branches, f8Branch, nil)
			})

	// --- ToT: Pie and SGLang (fork/join per level).
	case "tot/pie":
		return pieApp("tot", apps.TreeParams{Depth: 3, Branch: 3, ThinkTokens: 24})
	case "tot/sglang":
		return bl(baseline.Config{Kind: baseline.SGLang, ModelLabel: "1B"},
			func(c *baseline.Client, w *netsim.World, rng *sim.RNG) {
				ctx := syntheticTokens(rng, 32)
				for level := 0; level < 3; level++ {
					outs := c.GenerateFork(ctx, 3, 24, nil)
					best := outs[rng.Intn(len(outs))]
					ctx = append(ctx, best...)
				}
				c.Generate(ctx, 24, nil)
			})

	// --- RoT: Pie; client script on vLLM (no native support anywhere).
	case "rot/pie":
		return pieApp("rot", apps.RecursionParams{Depth: 3, Branch: 2, DivideTokens: 12, SolveTokens: 16})
	case "rot/vllm":
		return bl(baseline.Config{Kind: baseline.VLLM, ModelLabel: "1B"},
			func(c *baseline.Client, w *netsim.World, rng *sim.RNG) {
				var solve func(ctx []int, depth int) []int
				solve = func(ctx []int, depth int) []int {
					if depth == 0 {
						return c.Generate(ctx, 16, nil)
					}
					div := c.Generate(ctx, 12, nil)
					ctx = append(ctx, div...)
					for b := 0; b < 2; b++ {
						sub := append(syntheticTokens(rng, 8), div...)
						ans := solve(sub, depth-1)
						ctx = append(ctx, ans...)
					}
					return c.Generate(ctx, 16, nil)
				}
				solve(syntheticTokens(rng, 32), 3)
			})

	// --- GoT: Pie; client script on vLLM.
	case "got/pie":
		return pieApp("got", apps.GraphParams{NumChunks: 4, ChunkTokens: 24, MergeTokens: 16})
	case "got/vllm":
		return bl(baseline.Config{Kind: baseline.VLLM, ModelLabel: "1B"},
			func(c *baseline.Client, w *netsim.World, rng *sim.RNG) {
				var summaries [][]int
				for i := 0; i < 4; i++ {
					s := c.Generate(syntheticTokens(rng, 48), 24, nil)
					summaries = append(summaries, s)
				}
				for len(summaries) > 1 {
					var next [][]int
					for i := 0; i+1 < len(summaries); i += 2 {
						merged := append(append([]int(nil), summaries[i]...), summaries[i+1]...)
						next = append(next, c.Generate(merged, 16, nil))
					}
					if len(summaries)%2 == 1 {
						next = append(next, summaries[len(summaries)-1])
					}
					summaries = next
				}
			})

	// --- SkoT: Pie and SGLang.
	case "skot/pie":
		return pieApp("skot", apps.SkeletonParams{Points: 4, SkeletonTokens: 20, ExpandTokens: 24})
	case "skot/sglang":
		return bl(baseline.Config{Kind: baseline.SGLang, ModelLabel: "1B"},
			func(c *baseline.Client, w *netsim.World, rng *sim.RNG) {
				ctx := syntheticTokens(rng, 32)
				skel := c.Generate(ctx, 20, nil)
				ctx = append(ctx, skel...)
				c.GenerateFork(ctx, 4, 24, nil)
			})

	// --- Prefix caching: Pie, vLLM (hash), SGLang (radix).
	case "cache/pie":
		return func(o Options, total, conc int) loadResult {
			e := newPieEngine(o.seed(), nil)
			return runPieLoad(e, "prefix_caching", func(task int) string {
				return marshalParams(apps.PrefixCachingParams{
					SharedPrefix: f8Prompt, Prompt: fmt.Sprintf("query %d ", task), MaxTokens: 16,
				})
			}, total, conc)
		}
	case "cache/vllm", "cache/sglang":
		kind := baseline.VLLM
		if sys == "sglang" {
			kind = baseline.SGLang
		}
		return bl(baseline.Config{Kind: kind, ModelLabel: "1B"},
			func(c *baseline.Client, w *netsim.World, rng *sim.RNG) {
				shared := syntheticTokens(sim.NewRNG(0xCAFE), f8PromptLen)
				prompt := append(append([]int(nil), shared...), syntheticTokens(rng, 8)...)
				c.Generate(prompt, 16, nil)
			})

	// --- EBNF structured generation: Pie, vLLM, SGLang, LMQL.
	case "ebnf/pie":
		return pieApp("ebnf", apps.EBNFParams{MaxTokens: 40})
	case "ebnf/vllm", "ebnf/sglang", "ebnf/lmql":
		kind := map[string]baseline.Kind{"vllm": baseline.VLLM, "sglang": baseline.SGLang, "lmql": baseline.LMQL}[sys]
		return bl(baseline.Config{Kind: kind, ModelLabel: "1B"},
			simpleGen(16, 40, func(r *baseline.Request) { r.Guided = true }))

	// --- Speculative decoding (n-gram prompt lookup): Pie and vLLM.
	case "specdec/pie":
		return pieApp("specdec", apps.SpecDecodeParams{MaxTokens: f8GenLen, DraftLen: 4, Oracle: true, AcceptRate: 0.7})
	case "specdec/vllm":
		return bl(baseline.Config{Kind: baseline.VLLM, ModelLabel: "1B", SpecDecode: true, SpecDraftLen: 4, SpecAcceptRate: 0.7},
			simpleGen(f8PromptLen, f8GenLen, nil))

	// --- Beam search: Pie, vLLM, LMQL.
	case "beam/pie":
		return pieApp("beam", apps.BeamParams{Width: 3, Steps: 32})
	case "beam/vllm", "beam/lmql":
		kind := baseline.VLLM
		if sys == "lmql" {
			kind = baseline.LMQL
		}
		return bl(baseline.Config{Kind: kind, ModelLabel: "1B"},
			simpleGen(32, 32, func(r *baseline.Request) { r.BeamWidth = 3 }))

	// --- Attention sink: Pie and StreamingLLM.
	case "attnsink/pie":
		return pieApp("attention_sink", apps.SinkParams{MaxTokens: 256, SinkTokens: 4, WindowSize: 128, ReleaseKv: true})
	case "attnsink/streamingllm":
		return bl(baseline.Config{Kind: baseline.StreamingLLM, ModelLabel: "1B", SinkWindow: 132},
			simpleGen(32, 256, nil))
	}
	return nil
}

// Table renders normalized latency and throughput per technique.
func (r Fig8Result) Table() string {
	t := &metrics.Table{
		Title:  "Figure 8: techniques across serving systems (normalized; x = unsupported)",
		Header: []string{"technique", "system", "latency", "lat ratio", "tasks/s", "thpt ratio"},
	}
	worstLat := map[string]time.Duration{}
	bestThp := map[string]float64{}
	for _, row := range r.Rows {
		if !row.Supported {
			continue
		}
		if row.Latency > worstLat[row.Technique] {
			worstLat[row.Technique] = row.Latency
		}
		if row.Throughput > bestThp[row.Technique] {
			bestThp[row.Technique] = row.Throughput
		}
	}
	for _, row := range r.Rows {
		if !row.Supported {
			t.AddRow(row.Technique, row.System, "x", "x", "x", "x")
			continue
		}
		t.AddRow(row.Technique, row.System, metrics.Ms(row.Latency),
			fmt.Sprintf("%.2f", float64(row.Latency)/float64(worstLat[row.Technique])),
			fmt.Sprintf("%.2f", row.Throughput),
			fmt.Sprintf("%.2f", row.Throughput/bestThp[row.Technique]))
	}
	return t.String()
}

// Get returns the cell for (technique, system).
func (r Fig8Result) Get(tech, sys string) (Fig8Row, bool) {
	for _, row := range r.Rows {
		if row.Technique == tech && row.System == sys {
			return row, row.Supported
		}
	}
	return Fig8Row{}, false
}
