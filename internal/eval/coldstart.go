package eval

import (
	"fmt"
	"strings"
	"time"

	"pie"
	"pie/inferlet"
	"pie/internal/metrics"
	"pie/internal/sim"
)

// Coldstart experiment (deployment API v2; reproduces Fig. 9's economics
// at the cluster level): what does the upload + JIT pipeline cost a cold
// launch, how much does a replica's warm-artifact cache recover, and does
// program-affinity placement keep a multi-replica cluster warm?
//
// Three questions:
//
//  1. Gap: on one replica, the first launch of a program pays upload +
//     JIT sized by its binary; every later launch hits the artifact cache.
//     The cold/warm launch-latency ratio is the headline (the acceptance
//     bar is warm >= 3x cheaper).
//  2. Placement: a 4-replica cluster serving a rotating set of programs,
//     round-robin versus program-affinity. Round-robin re-pays the JIT
//     once per (program, replica) pair; affinity pays once per program
//     and routes launches to the warm holder.
//  3. Determinism: same-seed sweeps produce byte-identical documents
//     (TestColdstartSweepDeterministic enforces this).
//
// The probe inferlet acks and exits — pure launch-path latency, the
// paper's Fig. 9 methodology with generation stripped out.

// Coldstart workload shape.
const (
	coldstartProbeKB   = 256 // probe binary for the single-replica gap leg
	coldstartWarmN     = 16  // warm launches averaged in the gap leg
	coldstartReplicas  = 4
	coldstartPrograms  = 6
	coldstartConc      = 8
	coldstartBaseKB    = 128 // program i ships (base + 48*i) KB
	coldstartPerProgKB = 48
)

// ColdstartLeg is one cluster run under a placement policy.
type ColdstartLeg struct {
	Policy       string
	Done         int
	ColdLaunches int
	MeanLaunch   time.Duration // mean launch->ack latency
	Makespan     time.Duration
	ReqPerSec    float64
}

// ColdstartResult holds the full experiment.
type ColdstartResult struct {
	Cold  time.Duration // first launch on a cold replica (upload + JIT)
	Warm  time.Duration // mean warm launch (artifact cache hit)
	Ratio float64       // Cold / Warm

	RR ColdstartLeg // round-robin
	PA ColdstartLeg // program-affinity
}

// coldstartProbe is the launch-latency probe: ack the client and exit.
func coldstartProbe(name string, sizeKB int) inferlet.Program {
	return inferlet.Program{
		Name:       name,
		BinarySize: sizeKB << 10,
		Manifest:   inferlet.Manifest{Version: "1.0.0"},
		Run: func(s inferlet.Session) error {
			s.Send("ack")
			return nil
		},
	}
}

// ColdstartSweep runs the full experiment. Each leg builds an independent
// engine on a fresh virtual clock; legs fan out across workers.
func ColdstartSweep(o Options) ColdstartResult {
	var out ColdstartResult
	total := o.scale(96, 48)
	parallelFor(3, func(i int) {
		switch i {
		case 0:
			out.Cold, out.Warm = coldstartGap(o.seed())
		case 1:
			out.RR = coldstartCluster(o.seed(), pie.PlaceRoundRobin, total)
		default:
			out.PA = coldstartCluster(o.seed(), pie.PlaceProgramAffinity, total)
		}
	})
	if out.Warm > 0 {
		out.Ratio = float64(out.Cold) / float64(out.Warm)
	}
	return out
}

// launchAck launches the program and returns the client-observed
// launch->ack latency (Fig. 9 methodology: the response leg is half the
// client RTT).
func launchAck(e *pie.Engine, program string) (time.Duration, error) {
	t0 := e.Now()
	h, err := e.Launch(pie.Spec(program))
	if err != nil {
		return 0, err
	}
	if _, err := h.Recv().Get(); err != nil {
		return 0, err
	}
	lat := e.Now() - t0 + e.ClientRTT()/2
	if err := h.Wait(); err != nil {
		return 0, err
	}
	return lat, nil
}

// coldstartGap measures the single-replica cold/warm launch gap.
func coldstartGap(seed uint64) (cold, warm time.Duration) {
	e := newPieEngine(seed, nil)
	e.MustRegister(coldstartProbe("coldstart_probe", coldstartProbeKB))
	warmSum := time.Duration(0)
	e.Go("driver", func() {
		var err error
		if cold, err = launchAck(e, "coldstart_probe"); err != nil {
			panic(fmt.Sprintf("eval: coldstart cold probe: %v", err))
		}
		for i := 0; i < coldstartWarmN; i++ {
			lat, err := launchAck(e, "coldstart_probe")
			if err != nil {
				panic(fmt.Sprintf("eval: coldstart warm probe: %v", err))
			}
			warmSum += lat
		}
	})
	if err := e.Run(); err != nil {
		panic(err)
	}
	return cold, warmSum / coldstartWarmN
}

// coldstartCluster drives the repeated-program workload against one
// placement policy and reports launch-latency and cold-launch totals.
func coldstartCluster(seed uint64, placement pie.PlacementPolicy, total int) ColdstartLeg {
	e := newPieEngine(seed, func(c *pie.Config) {
		c.Replicas = coldstartReplicas
		c.Placement = placement
	})
	for i := 0; i < coldstartPrograms; i++ {
		e.MustRegister(coldstartProbe(
			fmt.Sprintf("coldstart_probe_%d", i),
			coldstartBaseKB+coldstartPerProgKB*i))
	}
	leg := ColdstartLeg{Policy: placement.String()}
	lat := &metrics.Series{}
	e.Go("loadgen", func() {
		start := e.Now()
		g := sim.NewGroup(e.Clock())
		queue := sim.NewMailbox[int](e.Clock())
		for t := 0; t < total; t++ {
			queue.Send(t)
		}
		for w := 0; w < coldstartConc; w++ {
			g.Go("client", func() {
				for {
					task, ok := queue.TryRecv()
					if !ok {
						return
					}
					// Hash the task index so the program sequence does not
					// alias with round-robin's placement cycle.
					prog := fmt.Sprintf("coldstart_probe_%d",
						int((uint64(task)*2654435761)>>16)%coldstartPrograms)
					l, err := launchAck(e, prog)
					if err != nil {
						continue
					}
					lat.Add(l)
					leg.Done++
				}
			})
		}
		g.Wait()
		leg.Makespan = e.Now() - start
	})
	if err := e.Run(); err != nil {
		panic(fmt.Sprintf("eval: coldstart cluster run: %v", err))
	}
	leg.MeanLaunch = lat.Mean()
	leg.ColdLaunches = e.Stats().ColdLaunches
	if leg.Makespan > 0 {
		leg.ReqPerSec = metrics.Throughput(leg.Done, leg.Makespan)
	}
	return leg
}

// Table renders the experiment in paper style.
func (r ColdstartResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Coldstart: deployable-artifact launch economics (probe binary %d KB)\n",
		coldstartProbeKB)
	fmt.Fprintf(&b, "  cold launch (upload + JIT): %s   warm launch (artifact cache): %s   gap: %.2fx\n",
		metrics.Ms(r.Cold), metrics.Ms(r.Warm), r.Ratio)
	t := &metrics.Table{
		Title: fmt.Sprintf("\nColdstart: placement on a repeated-program workload (%d replicas, %d programs)",
			coldstartReplicas, coldstartPrograms),
		Header: []string{"placement", "done", "cold", "mean launch", "req/s"},
	}
	for _, leg := range []ColdstartLeg{r.RR, r.PA} {
		t.AddRow(leg.Policy, fmt.Sprint(leg.Done), fmt.Sprint(leg.ColdLaunches),
			metrics.Ms(leg.MeanLaunch), fmt.Sprintf("%.2f", leg.ReqPerSec))
	}
	b.WriteString(t.String())
	return b.String()
}
