package eval

import (
	"fmt"
	"strings"
	"time"

	"pie"
	"pie/apps"
	"pie/internal/metrics"
	"pie/internal/sim"
)

// Prefill/decode disaggregation experiment (beyond the paper): the same
// mixed interactive + batch workload replayed on identical hardware under
// two pool layouts:
//
//   - unified: every replica serves prefill and decode (the classic
//     colocated pool);
//   - disagg: a prefill tier takes every new launch, and after each
//     session's first token its KV pages migrate over the modeled PCIe
//     interconnect to the least-loaded decode replica.
//
// The claims under test: at mixes where long-prompt batch prefills
// contend with interactive arrivals, disaggregation shields interactive
// TTFT (new prompts never queue behind deep decode batches) without
// giving up aggregate goodput; the transfer budget bounds concurrent
// wire occupancy, so handoff storms queue instead of multiplying PCIe
// bandwidth; and every migrated page is conserved — after the idle tail,
// zero KV pages remain live on any replica in either leg.

// Pool shape: both legs run the same replica count; the disaggregated
// leg carves out a fixed prefill tier.
const (
	pdReplicas = 6
	pdPrefill  = 2
	// pdIdleTail runs the engine past the last completion so late handoff
	// releases and pool frees land inside the measured window, making the
	// conservation check honest.
	pdIdleTail = 100 * time.Millisecond
	// Interactive sessions: short prompt, short completion, TTFT-bound.
	// Batch sessions: long prompt, long completion, throughput-bound.
	pdIntTokens   = 8
	pdBatchTokens = 48
	// SLO targets: a session is good when it meets its class target —
	// interactive sessions must deliver the first token within pdTTFTSLO,
	// batch sessions must finish end-to-end within pdBatchSLO. Goodput
	// counts only good sessions per second (the disaggregation
	// literature's definition); raw throughput counts every completion.
	pdTTFTSLO  = 25 * time.Millisecond
	pdBatchSLO = 900 * time.Millisecond
)

// PDMixSpec shapes one load mix: closed-loop client counts per class.
type PDMixSpec struct {
	Name               string
	IntConc, BatchConc int
}

func pdMixes() []PDMixSpec {
	return []PDMixSpec{
		{Name: "interactive", IntConc: 8, BatchConc: 2},
		{Name: "mixed", IntConc: 6, BatchConc: 4},
		{Name: "batch-heavy", IntConc: 3, BatchConc: 6},
	}
}

// PDLeg is one measured run of the mixed workload under one pool layout.
type PDLeg struct {
	IntDone, BatchDone int
	IntGood, BatchGood int           // sessions that met their class SLO
	IntTTFTP50         time.Duration // client-observed launch -> first token
	IntTTFTP95         time.Duration
	IntTPOT            time.Duration // mean decode interval after first token
	BatchP95           time.Duration // batch end-to-end latency
	Throughput         float64       // completed sessions (both classes) per second
	Goodput            float64       // SLO-attaining sessions per second
	Makespan           time.Duration
	Handoffs           int
	HandoffPages       int
	HandoffQueued      int
	HandoffDenied      int
	HandoffTime        time.Duration
	LeakedPages        int // live KV pages after the idle tail; must be 0
}

// PDMix pairs the two legs of one load mix.
type PDMix struct {
	Spec               PDMixSpec
	IntTotal, BatchTot int
	Unified, Disagg    PDLeg
}

// PDResult is the full sweep.
type PDResult struct {
	Replicas, Prefill int
	Mixes             []PDMix
}

// PDSweep runs every load mix under both layouts, each leg on an
// independent engine with the same seed, fanned out across workers.
func PDSweep(o Options) PDResult {
	specs := pdMixes()
	out := PDResult{Replicas: pdReplicas, Prefill: pdPrefill, Mixes: make([]PDMix, len(specs))}
	parallelFor(2*len(specs), func(i int) {
		mix := &out.Mixes[i/2]
		spec := specs[i/2]
		leg := runPDLeg(o, spec, i%2 == 1)
		if i%2 == 0 {
			mix.Spec = spec
			mix.IntTotal = spec.IntConc * o.scale(12, 5)
			mix.BatchTot = spec.BatchConc * o.scale(12, 5)
			mix.Unified = leg
		} else {
			mix.Disagg = leg
		}
	})
	return out
}

// pdEngine builds one engine for a leg: identical hardware on both; only
// the role layout differs.
func pdEngine(seed uint64, disagg bool) *pie.Engine {
	return newPieEngine(seed, func(c *pie.Config) {
		c.Replicas = pdReplicas
		c.Placement = pie.PlaceLeastLoaded
		if disagg {
			c.Roles = []pie.RoleSpec{
				{Role: pie.RolePrefill, Count: pdPrefill},
				{Role: pie.RoleDecode},
			}
			c.HandoffBudget = 4
		}
	})
}

// runPDLeg drives the mixed workload once.
func runPDLeg(o Options, spec PDMixSpec, disagg bool) PDLeg {
	perWorker := o.scale(12, 5)
	e := pdEngine(o.seed(), disagg)
	// Seed-sensitive prompts: interactive prompts stay short; batch
	// prompts are long enough that their prefills dominate a unified
	// replica's batch slots.
	promptRNG := sim.NewRNG(o.seed() ^ 0x9D9D9D9D)
	intPrompts := make([]string, 32)
	batchPrompts := make([]string, 32)
	for i := range intPrompts {
		intPrompts[i] = strings.Repeat("disaggregation probe ", 3+promptRNG.Intn(5))
		batchPrompts[i] = strings.Repeat("batch analytics context window filler ", 8+promptRNG.Intn(6))
	}
	var leg PDLeg
	ttft := &metrics.Series{Name: "client-ttft"}
	tpot := &metrics.Series{Name: "client-tpot"}
	bLat := &metrics.Series{Name: "batch-latency"}
	// Steady state starts after every interactive client has completed a
	// couple of tasks: the t=0 thundering herd hits both layouts, but it
	// hits the (smaller) prefill tier harder, and it says nothing about
	// sustained serving — which is what the layouts differ on.
	warmCut := spec.IntConc * o.scale(2, 1)
	e.Go("loadgen", func() {
		// Warmup populates the artifact caches on every replica path.
		if h, err := e.Launch(pie.Spec("text_completion", marshalParams(apps.CompletionParams{
			Prompt: intPrompts[0], MaxTokens: 2,
		}))); err == nil {
			_ = h.Wait()
		}
		start := e.Now()
		g := sim.NewGroup(e.Clock())
		intQ := sim.NewMailbox[int](e.Clock())
		batchQ := sim.NewMailbox[int](e.Clock())
		for t := 0; t < spec.IntConc*perWorker; t++ {
			intQ.Send(t)
		}
		for t := 0; t < spec.BatchConc*perWorker; t++ {
			batchQ.Send(t)
		}
		for w := 0; w < spec.IntConc; w++ {
			// Per-client think time decorrelates arrivals: real interactive
			// clients do not fire in lockstep, and a synchronized herd would
			// measure burst absorption instead of sustained serving.
			think := sim.NewRNG(o.seed() ^ uint64(0x17+w))
			g.Go("interactive", func() {
				for {
					task, ok := intQ.TryRecv()
					if !ok {
						return
					}
					e.Sleep(time.Duration(think.Intn(12)) * time.Millisecond)
					params := marshalParams(apps.CompletionParams{
						Prompt:        intPrompts[task%len(intPrompts)],
						MaxTokens:     pdIntTokens,
						FirstTokenAck: true,
					})
					t0 := e.Now()
					h, err := e.Launch(pie.Spec("text_completion", params))
					if err != nil {
						continue
					}
					var first time.Duration
					if msg, merr := h.Recv().Get(); merr == nil && msg == "first-token" {
						first = e.Now() - t0
						if task >= warmCut {
							ttft.Add(first)
						}
					}
					if h.Wait() == nil {
						leg.IntDone++
						if first > 0 {
							if first <= pdTTFTSLO {
								leg.IntGood++
							}
							if pdIntTokens > 1 {
								tpot.Add((e.Now() - t0 - first) / (pdIntTokens - 1))
							}
						}
					}
				}
			})
		}
		for w := 0; w < spec.BatchConc; w++ {
			think := sim.NewRNG(o.seed() ^ uint64(0x8100+w))
			g.Go("batch", func() {
				for {
					task, ok := batchQ.TryRecv()
					if !ok {
						return
					}
					e.Sleep(time.Duration(think.Intn(24)) * time.Millisecond)
					params := marshalParams(apps.CompletionParams{
						Prompt:    batchPrompts[(task*5)%len(batchPrompts)],
						MaxTokens: pdBatchTokens,
					})
					t0 := e.Now()
					h, err := e.Launch(pie.Spec("text_completion", params))
					if err != nil {
						continue
					}
					if h.Wait() == nil {
						leg.BatchDone++
						lat := e.Now() - t0
						bLat.Add(lat)
						if lat <= pdBatchSLO {
							leg.BatchGood++
						}
					}
				}
			})
		}
		g.Wait()
		leg.Makespan = e.Now() - start
		e.Sleep(pdIdleTail)
	})
	if err := e.Run(); err != nil {
		panic(fmt.Sprintf("eval: pd leg run: %v", err))
	}
	st := e.Stats()
	leg.IntTTFTP50 = ttft.Percentile(50)
	leg.IntTTFTP95 = ttft.Percentile(95)
	leg.IntTPOT = tpot.Mean()
	leg.BatchP95 = bLat.Percentile(95)
	leg.Throughput = metrics.Throughput(leg.IntDone+leg.BatchDone, leg.Makespan)
	leg.Goodput = metrics.Throughput(leg.IntGood+leg.BatchGood, leg.Makespan)
	leg.Handoffs = st.Handoffs
	leg.HandoffPages = st.HandoffPages
	leg.HandoffQueued = st.HandoffQueued
	leg.HandoffDenied = st.HandoffDenied
	leg.HandoffTime = st.HandoffTime
	for _, r := range e.Cluster().Replicas() {
		inUse, _ := r.Ctl.KVLoad()
		leg.LeakedPages += inUse
	}
	return leg
}

// Table renders the experiment in paper style.
func (r PDResult) Table() string {
	var b strings.Builder
	t := &metrics.Table{
		Title: fmt.Sprintf("Prefill/decode disaggregation: %d replicas unified vs %d prefill + %d decode with KV handoff",
			r.Replicas, r.Prefill, r.Replicas-r.Prefill),
		Header: []string{"mix", "pool", "int done", "ttft p50", "ttft p95", "tpot", "batch p95", "thru/s", "goodput/s", "makespan", "handoffs", "pages", "queued", "leaked"},
	}
	for _, mix := range r.Mixes {
		row := func(name string, l PDLeg) {
			t.AddRow(mix.Spec.Name, name,
				fmt.Sprint(l.IntDone),
				metrics.Ms(l.IntTTFTP50),
				metrics.Ms(l.IntTTFTP95),
				metrics.Ms(l.IntTPOT),
				metrics.Ms(l.BatchP95),
				fmt.Sprintf("%.1f", l.Throughput),
				fmt.Sprintf("%.1f", l.Goodput),
				metrics.Ms(l.Makespan),
				fmt.Sprint(l.Handoffs),
				fmt.Sprint(l.HandoffPages),
				fmt.Sprint(l.HandoffQueued),
				fmt.Sprint(l.LeakedPages))
		}
		row("unified", mix.Unified)
		row("disagg", mix.Disagg)
	}
	b.WriteString(t.String())
	best := r.BestMix()
	fmt.Fprintf(&b, "\nPD: %s mix interactive TTFT p95 %v disaggregated vs %v unified (%.2fx), "+
		"SLO goodput %.1f vs %.1f /s (raw %.1f vs %.1f), %d handoffs moved %d pages in %v\n",
		best.Spec.Name, best.Disagg.IntTTFTP95, best.Unified.IntTTFTP95, best.TTFTSpeedup(),
		best.Disagg.Goodput, best.Unified.Goodput,
		best.Disagg.Throughput, best.Unified.Throughput,
		best.Disagg.Handoffs, best.Disagg.HandoffPages, best.Disagg.HandoffTime)
	return b.String()
}

// TTFTSpeedup is unified p95 TTFT over disaggregated p95 TTFT: above 1,
// disaggregation wins interactive latency at this mix.
func (m PDMix) TTFTSpeedup() float64 {
	if m.Disagg.IntTTFTP95 == 0 {
		return 0
	}
	return float64(m.Unified.IntTTFTP95) / float64(m.Disagg.IntTTFTP95)
}

// BestMix returns the headline comparison point: the mix with the
// largest p95 TTFT advantage among those where disaggregation gives up
// no goodput, falling back to the largest advantage outright.
func (r PDResult) BestMix() PDMix {
	pick := func(mixes []PDMix) (PDMix, bool) {
		var best PDMix
		found := false
		for _, m := range mixes {
			if !found || m.TTFTSpeedup() > best.TTFTSpeedup() {
				best, found = m, true
			}
		}
		return best, found
	}
	var holds []PDMix
	for _, m := range r.Mixes {
		if m.Disagg.Goodput >= m.Unified.Goodput {
			holds = append(holds, m)
		}
	}
	if best, ok := pick(holds); ok {
		return best
	}
	best, _ := pick(r.Mixes)
	return best
}
