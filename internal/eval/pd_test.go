package eval

import (
	"encoding/json"
	"testing"
)

// TestPDAcceptance pins the disaggregation experiment's headline claims
// at CI scale: every session completes on both layouts at every mix with
// zero KV pages left live after the idle tail; the unified leg never
// migrates while the disaggregated leg does (and every migration moves
// pages); the bounded transfer budget actually queues at least one
// handoff; and at the best mix, disaggregation beats unified on
// interactive p95 TTFT while giving up no SLO goodput.
func TestPDAcceptance(t *testing.T) {
	r := PDSweep(Options{Quick: true})
	if len(r.Mixes) != 3 {
		t.Fatalf("mixes = %d, want 3", len(r.Mixes))
	}
	queued := 0
	for _, mix := range r.Mixes {
		for name, leg := range map[string]PDLeg{"unified": mix.Unified, "disagg": mix.Disagg} {
			// Conservation: every task slot completes, no pages leak.
			if leg.IntDone != mix.IntTotal || leg.BatchDone != mix.BatchTot {
				t.Fatalf("%s/%s: done %d int %d batch, want %d/%d",
					mix.Spec.Name, name, leg.IntDone, leg.BatchDone, mix.IntTotal, mix.BatchTot)
			}
			if leg.LeakedPages != 0 {
				t.Fatalf("%s/%s leaked %d KV pages after idle tail", mix.Spec.Name, name, leg.LeakedPages)
			}
		}
		if mix.Unified.Handoffs != 0 || mix.Unified.HandoffPages != 0 {
			t.Fatalf("%s unified leg migrated: %d handoffs %d pages",
				mix.Spec.Name, mix.Unified.Handoffs, mix.Unified.HandoffPages)
		}
		if mix.Disagg.Handoffs == 0 {
			t.Fatalf("%s disagg leg never migrated a session", mix.Spec.Name)
		}
		if mix.Disagg.HandoffPages < mix.Disagg.Handoffs {
			t.Fatalf("%s disagg moved %d pages over %d handoffs: empty migrations",
				mix.Spec.Name, mix.Disagg.HandoffPages, mix.Disagg.Handoffs)
		}
		queued += mix.Disagg.HandoffQueued
	}
	if queued == 0 {
		t.Fatal("transfer budget never queued a handoff: bound is vacuous at this load")
	}
	best := r.BestMix()
	if best.TTFTSpeedup() <= 1 {
		t.Fatalf("%s mix: disagg TTFT p95 %v vs unified %v — no interactive win",
			best.Spec.Name, best.Disagg.IntTTFTP95, best.Unified.IntTTFTP95)
	}
	if best.Disagg.Goodput < best.Unified.Goodput {
		t.Fatalf("%s mix: disagg goodput %.2f/s below unified %.2f/s",
			best.Spec.Name, best.Disagg.Goodput, best.Unified.Goodput)
	}
}

// TestPDSweepDeterministic pins the determinism contract for the
// disaggregation sweep: the whole result document — both legs of every
// mix, handoff counters included — is byte-identical across same-seed
// runs, and a different seed actually changes the workload (prompt
// lengths and think times derive from it), so the guard is not vacuous.
func TestPDSweepDeterministic(t *testing.T) {
	doc := func(seed uint64) string {
		b, err := json.Marshal(PDSweep(Options{Quick: true, Seed: seed}))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a := doc(9)
	if b := doc(9); a != b {
		t.Fatalf("same-seed sweeps diverged:\n%s\n%s", a, b)
	}
	if c := doc(10); c == a {
		t.Fatal("different seeds produced identical sweeps: seed does not reach the workload")
	}
}
