package eval

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestFleetSweepQuick pins the fleet experiment's acceptance criteria at
// CI scale: a rolling upgrade under sustained interactive load sheds
// nothing and holds post-apply TTFT p95 within 1.5x steady state (the
// naive restart baseline violates the same bound — the contrast is the
// point), the same-seed replay is byte-identical, and pool-count hot
// reloads converge without dropping in-flight sessions.
func TestFleetSweepQuick(t *testing.T) {
	r := FleetSweep(Options{Quick: true})

	// Conservation on every upgrade leg: all tasks complete, none fail.
	for name, leg := range map[string]FleetLeg{
		"steady": r.Steady, "rolling": r.Rolling, "naive": r.Naive,
	} {
		if leg.Done != r.Tasks || leg.Failed != 0 {
			t.Fatalf("%s: done %d failed %d, want %d/0", name, leg.Done, leg.Failed, r.Tasks)
		}
		if leg.WindowN == 0 {
			t.Fatalf("%s: no post-apply window samples", name)
		}
	}

	// The headline: the rolling upgrade is inside the SLO bound, the
	// naive restart is not.
	if r.RollingRatio > 1.5 {
		t.Fatalf("rolling window p95 %.2fx steady, want <= 1.5x", r.RollingRatio)
	}
	if r.NaiveRatio <= 1.5 {
		t.Fatalf("naive window p95 %.2fx steady: baseline inside the bound, no contrast", r.NaiveRatio)
	}

	// Both upgrade legs converge on the new pin; the rolling leg prewarms
	// every serving replica, the naive leg none.
	for name, leg := range map[string]FleetLeg{"rolling": r.Rolling, "naive": r.Naive} {
		if !leg.Converged || leg.FinalPin != "2.0.0" || leg.Generation != 1 {
			t.Fatalf("%s: converged=%v pin=%s gen=%d", name, leg.Converged, leg.FinalPin, leg.Generation)
		}
	}
	if r.Rolling.Prewarms != r.Desired {
		t.Fatalf("rolling prewarms %d, want one per serving replica (%d)", r.Rolling.Prewarms, r.Desired)
	}
	if r.Naive.Prewarms != 0 {
		t.Fatalf("naive leg prewarmed %d times", r.Naive.Prewarms)
	}
	// The naive leg's mass requeue is what creates the herd.
	if r.Naive.UpgradeRequeues == 0 {
		t.Fatal("naive leg never requeued: the baseline is not exercising the restart path")
	}
	if !r.Steady.Converged || r.Steady.FinalPin != "1.0.0" || r.Steady.Generation != 0 {
		t.Fatalf("steady leg drifted: %+v", r.Steady)
	}

	// Same seed, same transcript: samples plus the controller op log.
	if !r.Deterministic {
		t.Fatal("same-seed rolling replay diverged")
	}

	// Hot reload: 2 -> 5 -> 3 converges, nothing dropped.
	if r.Reload.Dropped != 0 || !r.Reload.Converged {
		t.Fatalf("reload: dropped %d converged %v", r.Reload.Dropped, r.Reload.Converged)
	}
	if r.Reload.FinalServing != 3 || r.Reload.Applies != 2 {
		t.Fatalf("reload: serving %d applies %d, want 3/2", r.Reload.FinalServing, r.Reload.Applies)
	}
	if r.Reload.Activations == 0 || r.Reload.Drains == 0 {
		t.Fatalf("reload never moved replicas: %+v", r.Reload)
	}

	// The artifact surfaces: table renders, JSON round-trips.
	tbl := r.Table()
	for _, want := range []string{"rolling upgrade", "naive restart", "hot reload"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back FleetResult
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Rolling.Done != r.Rolling.Done || back.Reload.FinalServing != r.Reload.FinalServing {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
}
