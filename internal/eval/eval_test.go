package eval

import (
	"testing"
	"time"
)

var quick = Options{Quick: true}

func TestFigure6Shape(t *testing.T) {
	r := Figure6(quick)
	if len(r.Rows) != 9 {
		t.Fatalf("%d rows, want 9", len(r.Rows))
	}
	// Paper claims (§7.1): Pie reduces latency by up to 15% and raises
	// throughput by up to 30% versus the baselines, with the gap tied to
	// the IO:token ratio. Encode that as: strictly better than vLLM on
	// every workflow, never meaningfully behind SGLang (whose radix tree
	// and fused loop are genuinely competitive at 1B), and clearly ahead
	// of SGLang somewhere.
	beatsSGLangSomewhere := false
	for _, wf := range []string{"react", "codeact", "swarm"} {
		pieRow, _ := r.Get(wf, "pie")
		vllm, _ := r.Get(wf, "vllm")
		sgl, _ := r.Get(wf, "sglang")
		if pieRow.Latency <= 0 || vllm.Latency <= 0 || sgl.Latency <= 0 {
			t.Fatalf("%s: zero latency cell", wf)
		}
		if pieRow.Latency >= vllm.Latency {
			t.Errorf("%s: pie latency %v not below vLLM %v", wf, pieRow.Latency, vllm.Latency)
		}
		if pieRow.Throughput <= vllm.Throughput {
			t.Errorf("%s: pie throughput %.2f not above vLLM %.2f", wf, pieRow.Throughput, vllm.Throughput)
		}
		if float64(pieRow.Latency) > 1.15*float64(sgl.Latency) {
			t.Errorf("%s: pie latency %v more than 15%% behind SGLang %v", wf, pieRow.Latency, sgl.Latency)
		}
		if pieRow.Throughput < 0.85*sgl.Throughput {
			t.Errorf("%s: pie throughput %.2f more than 15%% behind SGLang %.2f", wf, pieRow.Throughput, sgl.Throughput)
		}
		if pieRow.Latency < sgl.Latency && pieRow.Throughput >= sgl.Throughput {
			beatsSGLangSomewhere = true
		}
	}
	if !beatsSGLangSomewhere {
		t.Error("pie never beats SGLang on any agent workflow")
	}
	t.Log("\n" + r.Table())
}

func TestFigure7Shape(t *testing.T) {
	r := Figure7(quick)
	if len(r.Series) != 5 {
		t.Fatalf("%d series, want 5", len(r.Series))
	}
	last := len(r.Series[0].AgentCount) - 1
	base := r.find("vllm (baseline)").Throughput[last]
	pieBase := r.find("pie (baseline)").Throughput[last]
	cache := r.find("+ cache (#1)").Throughput[last]
	call := r.find("+ call (#2)").Throughput[last]
	mask := r.find("+ mask (#3)").Throughput[last]
	t.Logf("\n%s", r.Table())
	if pieBase <= 0 || base <= 0 {
		t.Fatal("zero throughput")
	}
	// Stacked optimizations must be monotone at the max agent count, and
	// the full stack must clearly beat the vLLM baseline.
	if !(cache >= pieBase*0.95 && call >= cache*0.95 && mask >= call*0.95) {
		t.Errorf("optimizations not monotone: base=%.2f cache=%.2f call=%.2f mask=%.2f",
			pieBase, cache, call, mask)
	}
	if mask < base*1.5 {
		t.Errorf("full stack %.2f not clearly above vLLM %.2f (paper: 3.5x)", mask, base)
	}
}

func TestFigure8Shape(t *testing.T) {
	r := Figure8(quick)
	// Pie must support every technique.
	for _, tech := range r.Techniques {
		if _, ok := r.Get(tech, "pie"); !ok {
			t.Errorf("pie missing technique %s", tech)
		}
	}
	// Standard task: Pie within a modest overhead of vLLM (paper: 3-12%).
	pieTC, _ := r.Get("textcomp", "pie")
	vllmTC, _ := r.Get("textcomp", "vllm")
	ratio := float64(pieTC.Latency) / float64(vllmTC.Latency)
	if ratio > 1.4 {
		t.Errorf("textcomp latency ratio pie/vllm = %.2f, want near parity", ratio)
	}
	// Attention sink: Pie far ahead of the research prototype.
	pieAS, _ := r.Get("attnsink", "pie")
	sllm, _ := r.Get("attnsink", "streamingllm")
	if pieAS.Throughput < 3*sllm.Throughput {
		t.Errorf("attnsink: pie %.2f vs streamingllm %.2f, want >3x (paper: 30x)",
			pieAS.Throughput, sllm.Throughput)
	}
	if pieAS.Latency >= sllm.Latency {
		t.Errorf("attnsink latency: pie %v not below streamingllm %v", pieAS.Latency, sllm.Latency)
	}
	// Unsupported combos are marked.
	if _, ok := r.Get("rot", "sglang"); ok {
		t.Error("rot/sglang should be unsupported")
	}
	t.Log("\n" + r.Table())
}

func TestFigure9Shape(t *testing.T) {
	r := Figure9(quick)
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	t.Log("\n" + r.Table())
	if first.Warm >= first.Cold {
		t.Errorf("warm launch (%v) not cheaper than cold (%v)", first.Warm, first.Cold)
	}
	if last.Warm <= first.Warm {
		t.Errorf("warm latency did not grow with concurrency: %v -> %v", first.Warm, last.Warm)
	}
	// Paper ranges: warm 10-50ms, cold 35-81ms.
	if first.Warm < 2*time.Millisecond || first.Warm > 30*time.Millisecond {
		t.Errorf("warm floor %v outside plausible range", first.Warm)
	}
	if first.Cold < 20*time.Millisecond || first.Cold > 120*time.Millisecond {
		t.Errorf("cold floor %v outside plausible range", first.Cold)
	}
}

func TestFigure10Shape(t *testing.T) {
	r := Figure10(quick)
	t.Log("\n" + r.Table())
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	// Control layer stays cheap; inference layer grows with concurrency.
	for _, p := range r.Points {
		if p.ControlLayer > 40*time.Microsecond {
			t.Errorf("control-layer overhead %v at %d inferlets exceeds ~30us", p.ControlLayer, p.Inferlets)
		}
	}
	if last.InferenceLayer <= first.InferenceLayer {
		t.Errorf("inference-layer overhead flat: %v -> %v", first.InferenceLayer, last.InferenceLayer)
	}
	if first.InferenceLayer < 5*time.Microsecond || first.InferenceLayer > 60*time.Microsecond {
		t.Errorf("inference-layer floor %v implausible", first.InferenceLayer)
	}
}

func TestFigure11Shape(t *testing.T) {
	r := Figure11(quick)
	t.Log("\n" + r.Table())
	get := func(name string) Fig11Row {
		for _, row := range r.Rows {
			if row.Task == name {
				return row
			}
		}
		t.Fatalf("missing task %s", name)
		return Fig11Row{}
	}
	tc := get("textcomp")
	beam := get("beam")
	if beam.InferCalls < 3*tc.InferCalls {
		t.Errorf("beam (%.2f calls/tok) should dwarf text completion (%.2f)",
			beam.InferCalls, tc.InferCalls)
	}
	if tc.OutputTokens == 0 {
		t.Error("no output tokens recorded")
	}
}

func TestTable2Inventory(t *testing.T) {
	r := Table2()
	if len(r.Rows) != 19 {
		t.Fatalf("%d rows, want 19", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.BinaryBytes == 0 {
			t.Errorf("%s: no registered binary size", row.Technique)
		}
	}
	t.Log("\n" + r.Table())
}

func TestTable3Shape(t *testing.T) {
	r := Table3(quick)
	t.Log("\n" + r.Table())
	if r.PieTPOT <= r.VLLMTPOT {
		t.Errorf("Pie TPOT %v not above vLLM %v", r.PieTPOT, r.VLLMTPOT)
	}
	overhead := r.PieTPOT - r.VLLMTPOT
	if overhead > r.VLLMTPOT/5 {
		t.Errorf("overhead %v exceeds 20%% of TPOT %v (paper: 2.4%%)", overhead, r.VLLMTPOT)
	}
	// Sampling should dominate the itemization (paper: 1.32 of 1.53 ms).
	if r.SamplingGap < r.EmbedGap || r.SamplingGap < r.SchedOverhead {
		t.Errorf("sampling gap %v should dominate (embed %v, sched %v)",
			r.SamplingGap, r.EmbedGap, r.SchedOverhead)
	}
}

func TestTable4Shape(t *testing.T) {
	r := Table4(quick)
	t.Log("\n" + r.Table())
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// TPOT ordering 8B > 3B > 1B, and relative overhead grows as the
	// model shrinks.
	if !(r.Rows[0].VLLM > r.Rows[1].VLLM && r.Rows[1].VLLM > r.Rows[2].VLLM) {
		t.Error("TPOT not ordered by model size")
	}
	if !(r.Rows[2].Percent > r.Rows[0].Percent) {
		t.Errorf("relative overhead should grow as models shrink: 8B %.2f%% vs 1B %.2f%%",
			r.Rows[0].Percent, r.Rows[2].Percent)
	}
}

func TestTable5Shape(t *testing.T) {
	r := Table5(quick)
	t.Log("\n" + r.Table())
	get := func(name string) float64 {
		for _, row := range r.Rows {
			if row.Policy == name {
				return row.Throughput
			}
		}
		t.Fatalf("missing policy %s", name)
		return 0
	}
	eager, konly, tonly, adaptive := get("Eager"), get("K-only"), get("T-only"), get("Adaptive")
	if !(adaptive > tonly && tonly > eager && konly > eager) {
		t.Errorf("policy ordering broken: eager=%.2f k=%.2f t=%.2f adaptive=%.2f",
			eager, konly, tonly, adaptive)
	}
	if adaptive < 5*eager {
		t.Errorf("adaptive (%.2f) should be several times eager (%.2f); paper 15x", adaptive, eager)
	}
}
