package eval

import (
	"encoding/json"
	"testing"
)

// TestColdstartAcceptance pins the experiment's headline claims at CI
// scale: a warm launch is >= 3x cheaper than a cold launch of the same
// program, and program-affinity beats round-robin on the repeated-program
// workload (fewer cold launches AND cheaper mean launch).
func TestColdstartAcceptance(t *testing.T) {
	r := ColdstartSweep(Options{Quick: true})
	if r.Cold == 0 || r.Warm == 0 {
		t.Fatalf("degenerate gap leg: cold %v warm %v", r.Cold, r.Warm)
	}
	if r.Ratio < 3 {
		t.Fatalf("cold/warm launch ratio %.2f, want >= 3 (cold %v, warm %v)",
			r.Ratio, r.Cold, r.Warm)
	}
	if r.RR.Done != r.PA.Done || r.RR.Done == 0 {
		t.Fatalf("legs completed %d vs %d launches", r.RR.Done, r.PA.Done)
	}
	if r.PA.ColdLaunches >= r.RR.ColdLaunches {
		t.Fatalf("program-affinity cold launches %d, round-robin %d: affinity should pay fewer",
			r.PA.ColdLaunches, r.RR.ColdLaunches)
	}
	// One cold launch per program plus at most the initial thundering
	// herd: concurrent launches racing a still-compiling artifact each pay
	// the JIT (exactly the seed's global-cache behavior, now per replica).
	if r.PA.ColdLaunches > coldstartPrograms+coldstartConc {
		t.Fatalf("program-affinity paid %d cold launches, want <= %d (programs + launch herd)",
			r.PA.ColdLaunches, coldstartPrograms+coldstartConc)
	}
	if r.PA.MeanLaunch >= r.RR.MeanLaunch {
		t.Fatalf("program-affinity mean launch %v, round-robin %v: affinity should be cheaper",
			r.PA.MeanLaunch, r.RR.MeanLaunch)
	}
}

// TestColdstartSweepDeterministic pins the determinism contract: the
// whole result document is byte-identical across same-seed runs.
func TestColdstartSweepDeterministic(t *testing.T) {
	doc := func() []byte {
		b, err := json.Marshal(ColdstartSweep(Options{Quick: true, Seed: 9}))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := doc(), doc()
	if string(a) != string(b) {
		t.Fatalf("same-seed coldstart sweeps diverged:\n%s\n%s", a, b)
	}
}
