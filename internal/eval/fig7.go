package eval

import (
	"fmt"

	"pie/apps"
	"pie/internal/baseline"
	"pie/internal/metrics"
	"pie/internal/netsim"
	"pie/internal/sim"
)

// Figure 7: throughput of the function-calling agent versus the number of
// concurrent agents, with Pie's application-level optimizations stacked:
// baseline vLLM client, Pie (no opts), +Cache (#1 export/import of hot
// API-spec KV), +Call (#2 fire-and-forget concurrent tool calls),
// +Mask (#3 drop single-use spec KV). Paper: 3.5× vLLM at 128 agents.
//
// The 8B model makes KV capacity bind at high agent counts, which is what
// gives optimization #3 its lever (DESIGN.md §4).

// Fig7Series is one line of the figure.
type Fig7Series struct {
	Label      string
	AgentCount []int
	Throughput []float64 // agents/s
}

// Fig7Result holds all five lines.
type Fig7Result struct {
	Series []Fig7Series
}

// Function-calling workload shape (§7.2). API documentation is bulky —
// 256 tokens per spec, 8 specs — so at high agent counts the 8B model's
// KV capacity binds, which is the lever behind optimizations #1 and #3.
const (
	fnNumAPIs  = 8
	fnHotAPIs  = 2
	fnSpecToks = 256 // 16 pages per spec
	fnCalls    = 8
	fnThink    = 12
)

// Figure7 sweeps agent counts for every configuration.
func Figure7(o Options) Fig7Result {
	counts := []int{1, 16, 32, 64, 96, 128}
	if o.Quick {
		counts = []int{1, 16, 48}
	}
	configs := []struct {
		label              string
		system             string
		cache, async, mask bool
	}{
		{"vllm (baseline)", "vllm", false, false, false},
		{"pie (baseline)", "pie", false, false, false},
		{"+ cache (#1)", "pie", true, false, false},
		{"+ call (#2)", "pie", true, true, false},
		{"+ mask (#3)", "pie", true, true, true},
	}
	// Flatten the (config, agent count) grid: every sweep point is an
	// independent simulation, so all of them fan out together.
	var out Fig7Result
	for _, cfg := range configs {
		out.Series = append(out.Series, Fig7Series{
			Label:      cfg.label,
			AgentCount: counts,
			Throughput: make([]float64, len(counts)),
		})
	}
	parallelFor(len(configs)*len(counts), func(i int) {
		cfg := configs[i/len(counts)]
		ci := i % len(counts)
		n := counts[ci]
		total := n * 2
		if total < 8 {
			total = 8
		}
		var res loadResult
		if cfg.system == "pie" {
			params := marshalParams(apps.FnCallParams{
				Common:  apps.Common{Model: "llama-8b"},
				NumAPIs: fnNumAPIs, HotAPIs: fnHotAPIs, SpecTokens: fnSpecToks,
				Calls: fnCalls, ThinkTokens: fnThink,
				OptCache: cfg.cache, OptAsync: cfg.async, OptMask: cfg.mask,
			})
			e := newPieEngine(o.seed(), nil)
			res = runPieLoad(e, "fncall_agent", func(int) string { return params }, total, n)
		} else {
			res = runBaselineLoad(
				baseline.Config{Kind: baseline.VLLM, ModelLabel: "8B"},
				baselineFnCall(), total, n, o.seed())
		}
		out.Series[i/len(counts)].Throughput[ci] = res.Throughput()
	})
	return out
}

// baselineFnCall is the client-orchestrated function-calling workflow:
// the spec prompt is resent per generation (prefix cache mitigates), each
// call awaits its tool round trip at the client.
func baselineFnCall() baselineWorkflow {
	return func(c *baseline.Client, w *netsim.World, rng *sim.RNG) {
		// All agents share the hot spec tokens; cold specs are per-agent.
		hotRng := sim.NewRNG(0x5EEC)
		ctx := syntheticTokens(hotRng, fnHotAPIs*fnSpecToks)
		ctx = append(ctx, syntheticTokens(rng, (fnNumAPIs-fnHotAPIs)*fnSpecToks)...)
		ctx = append(ctx, syntheticTokens(rng, 8)...) // user query
		for call := 0; call < fnCalls; call++ {
			out := c.Generate(ctx, fnThink, syntheticTokens(rng, fnThink))
			ctx = append(ctx, out...)
			resp, _ := w.Call("http://fn.api/x", "call").Get()
			_ = resp
			ctx = append(ctx, syntheticTokens(rng, 8)...)
		}
		c.Generate(ctx, fnThink, syntheticTokens(rng, fnThink))
	}
}

// Table renders the sweep.
func (r Fig7Result) Table() string {
	t := &metrics.Table{Title: "Figure 7: function-calling agent throughput (agents/s, 8B model)"}
	t.Header = []string{"config"}
	if len(r.Series) > 0 {
		for _, n := range r.Series[0].AgentCount {
			t.Header = append(t.Header, fmt.Sprintf("%d ag", n))
		}
	}
	for _, s := range r.Series {
		row := []string{s.Label}
		for _, v := range s.Throughput {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		t.AddRow(row...)
	}
	// The headline ratio.
	if base := r.find("vllm (baseline)"); base != nil {
		if full := r.find("+ mask (#3)"); full != nil {
			n := len(base.Throughput) - 1
			t.Title += fmt.Sprintf("\n  (max-agents speedup over vLLM: %.2fx; paper: 3.5x)",
				full.Throughput[n]/base.Throughput[n])
		}
	}
	return t.String()
}

func (r Fig7Result) find(label string) *Fig7Series {
	for i := range r.Series {
		if r.Series[i].Label == label {
			return &r.Series[i]
		}
	}
	return nil
}
