package eval

import (
	"encoding/json"
	"testing"
)

// TestFaultsAcceptance pins the chaos experiment's headline claims at CI
// scale: both scheduled crashes are detected and recovered (in-flight
// launches requeued or failed typed, no KV pages leaked on survivors),
// and high-priority goodput holds at >= 80% of the no-fault baseline
// while best-effort launches absorb the capacity loss.
func TestFaultsAcceptance(t *testing.T) {
	r := FaultsSweep(Options{Quick: true})

	// Baseline leg: undisturbed, everything completes.
	if r.Baseline.HPDone == 0 || r.Baseline.HPFailed != 0 || r.Baseline.BEFailed != 0 {
		t.Fatalf("degenerate baseline leg: %+v", r.Baseline)
	}
	if r.Baseline.ReplicasLost != 0 || r.Baseline.Requeues != 0 || r.Baseline.Sheds != 0 {
		t.Fatalf("baseline leg saw fault activity: %+v", r.Baseline)
	}

	// Detection: both crash-stops declared dead, with bounded latency.
	f := r.Faulted
	if f.ReplicasLost != faultKills {
		t.Fatalf("replicas lost = %d, want %d", f.ReplicasLost, faultKills)
	}
	if f.DetectTime <= 0 {
		t.Fatal("dead replicas detected with zero cumulative latency")
	}

	// Recovery: the dead replicas were serving when they crashed, their
	// stranded launches were requeued, and every high-priority launch
	// still completed (the retry policy absorbed the deaths). All task
	// slots are accounted for: done + shed + typed failure, nothing hangs
	// (a hung waiter would deadlock the virtual clock, not reach here).
	if f.Requeues == 0 {
		t.Fatal("crashes stranded no launches: kills missed the loaded window")
	}
	if f.HPDone+f.HPFailed != r.Baseline.HPDone+r.Baseline.HPFailed {
		t.Fatalf("high-priority tasks unaccounted: done %d failed %d", f.HPDone, f.HPFailed)
	}
	if f.BEDone+f.BEShed+f.BEFailed != r.Baseline.BEDone {
		t.Fatalf("best-effort tasks unaccounted: done %d shed %d failed %d, want %d total",
			f.BEDone, f.BEShed, f.BEFailed, r.Baseline.BEDone)
	}
	if f.LeakedPages != 0 {
		t.Fatalf("%d KV pages leaked on surviving replicas", f.LeakedPages)
	}

	// Degradation: shedding engaged and high-priority goodput held.
	if f.Sheds == 0 {
		t.Fatal("saturation guard never shed a best-effort launch")
	}
	if f.Sheds != f.BEShed {
		t.Fatalf("cluster counted %d sheds, clients saw %d", f.Sheds, f.BEShed)
	}
	if r.GoodputRetained < 0.8 {
		t.Fatalf("high-priority goodput retained %.2f, want >= 0.8 (baseline %.1f/s, faulted %.1f/s)",
			r.GoodputRetained, r.Baseline.HPGoodput, f.HPGoodput)
	}
}

// TestFaultsSweepDeterministic pins the determinism contract under
// failure injection: the whole result document — crashes, detection,
// requeues, backoff jitter, sheds — is byte-identical across same-seed
// runs.
func TestFaultsSweepDeterministic(t *testing.T) {
	doc := func() []byte {
		b, err := json.Marshal(FaultsSweep(Options{Quick: true, Seed: 9}))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := doc(), doc()
	if string(a) != string(b) {
		t.Fatalf("same-seed fault sweeps diverged:\n%s\n%s", a, b)
	}
}
