package eval

import (
	"fmt"
	"time"

	"pie"
	"pie/apps"
	"pie/internal/baseline"
	"pie/internal/metrics"
	"pie/internal/netsim"
	"pie/internal/sim"
)

// Table 2: the application inventory. LoC figures are the paper's
// reported implementation sizes; binary sizes come from our program
// registrations (they drive the launch-cost model).

// Table2Row is one inventory entry.
type Table2Row struct {
	Technique    string
	Requirements string
	PaperLoC     int
	BinaryBytes  int
	Supported    string
}

// Table2Result is the inventory.
type Table2Result struct{ Rows []Table2Row }

// Table2 assembles the inventory from the registered programs.
func Table2() Table2Result {
	meta := []struct {
		name, tech, reqs, sup string
		loc                   int
	}{
		{"text_completion", "Text completion", "", "V, S, L", 38},
		{"tot", "ToT", "R1, R3", "S", 198},
		{"rot", "RoT", "R1, R3", "", 106},
		{"got", "GoT", "R1, R3", "", 87},
		{"skot", "SKoT", "R1, R3", "S", 82},
		{"prefix_caching", "Prefix caching", "R1", "V, S", 45},
		{"modular_caching", "Modular caching", "R1", "", 72},
		{"ebnf", "EBNF decoding", "R2", "V, S, L", 225},
		{"beam", "Beam search", "R2", "V, L", 98},
		{"watermarking", "Watermarking", "R2", "", 43},
		{"output_validation", "Output validation", "R2", "", 52},
		{"specdec", "Speculative decoding", "R2", "V", 255},
		{"jacobi", "Jacobi decoding", "R2", "", 88},
		{"attention_sink", "Attention sink", "R1", "StreamingLLM", 60},
		{"windowed_attention", "Windowed attn.", "R1", "", 60},
		{"hierarchical_attention", "Hierarchical attn.", "R1", "", 42},
		{"agent_react", "Agent-ReACT", "All", "", 60},
		{"agent_codeact", "Agent-CodeACT", "All", "", 62},
		{"agent_swarm", "Agent-SWARM", "All", "", 95},
	}
	sizes := map[string]int{}
	for _, p := range apps.All() {
		sizes[p.Name] = p.BinarySize
	}
	var out Table2Result
	for _, m := range meta {
		out.Rows = append(out.Rows, Table2Row{
			Technique: m.tech, Requirements: m.reqs, PaperLoC: m.loc,
			BinaryBytes: sizes[m.name], Supported: m.sup,
		})
	}
	return out
}

// Table renders the inventory.
func (r Table2Result) Table() string {
	t := &metrics.Table{
		Title:  "Table 2: applications implemented as inferlets",
		Header: []string{"technique", "R1-3", "paper LoC", "binary", "also supported by"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Technique, row.Requirements, fmt.Sprintf("%d", row.PaperLoC),
			fmt.Sprintf("%d KB", row.BinaryBytes>>10), row.Supported)
	}
	return t.String()
}

// Table 3: the opportunity cost of the decomposed programming model at
// 8B with 32 concurrent inferlets. Paper: vLLM 64.06 ms → Pie 65.59 ms,
// dominated by the non-pipelined sampling kernel (+1.32 ms).

// Table3Result itemizes the overheads.
type Table3Result struct {
	VLLMTPOT           time.Duration
	PieTPOT            time.Duration
	SamplingGap        time.Duration // lack of pipelined sampling
	EmbedGap           time.Duration // lack of pipelined input embedding
	SchedOverhead      time.Duration
	DistReturnOverhead time.Duration
	IPCBoundary        time.Duration
	AppBoundary        time.Duration
	WasmOverhead       time.Duration
}

const (
	t3Model      = "llama-8b"
	t3ModelLabel = "8B"
	t3Conc       = 32
	t3PromptLen  = 128
)

// tpotGens returns the two generation lengths for slope-based TPOT:
// measuring latency at both and dividing the difference by the extra
// tokens excludes launch, prefill, and ramp-up — the decode-only time per
// output token the paper reports.
func tpotGens(quick bool) (lo, hi int) {
	if quick {
		return 4, 20
	}
	return 8, 48
}

// pieTPOT measures Pie's decode-only time per output token for one
// completion-app variant under 32 concurrent inferlets. paramsFor builds
// the app parameters for a given generation length.
func pieTPOT(seed uint64, app string, paramsFor func(gen int) interface{}, mutate func(*pie.Config), quick bool) time.Duration {
	lo, hi := tpotGens(quick)
	run := func(gen int) time.Duration {
		e := newPieEngine(seed, mutate)
		blob := marshalParams(paramsFor(gen))
		res := runPieLoad(e, app, func(int) string { return blob }, t3Conc, t3Conc)
		return res.Latency.Mean()
	}
	return slopeTPOT(lo, hi, run)
}

func vllmTPOT(seed uint64, label string, quick bool) time.Duration {
	lo, hi := tpotGens(quick)
	run := func(gen int) time.Duration {
		res := runBaselineLoad(baseline.Config{Kind: baseline.VLLM, ModelLabel: label},
			func(c *baseline.Client, w *netsim.World, rng *sim.RNG) {
				c.Generate(syntheticTokens(rng, t3PromptLen), gen, nil)
			}, t3Conc, t3Conc, seed)
		return res.Latency.Mean()
	}
	return slopeTPOT(lo, hi, run)
}

// slopeTPOT measures run at both generation lengths (the two legs are
// independent engines, so they run concurrently) and returns the latency
// slope per extra token.
func slopeTPOT(lo, hi int, run func(gen int) time.Duration) time.Duration {
	var loT, hiT time.Duration
	parallelFor(2, func(i int) {
		if i == 0 {
			hiT = run(hi)
		} else {
			loT = run(lo)
		}
	})
	return (hiT - loT) / time.Duration(hi-lo)
}

// Table3 measures the ablation ladder.
func Table3(o Options) Table3Result {
	prompt := f8Prompt[:400] // ≈128 tokens
	std := func(gen int) interface{} {
		return apps.CompletionParams{Common: apps.Common{Model: t3Model}, Prompt: prompt, MaxTokens: gen}
	}
	fusedSample := func(gen int) interface{} {
		return apps.FusedCompletionParams{Common: apps.Common{Model: t3Model}, Prompt: prompt, MaxTokens: gen}
	}
	fullFused := func(gen int) interface{} {
		return apps.FusedCompletionParams{Common: apps.Common{Model: t3Model}, Prompt: prompt, MaxTokens: gen, FuseEmbed: true}
	}

	// The six TPOT measurements (five Pie variants plus the vLLM anchor)
	// are independent ladders; fan them out.
	var tpotStd, tpotFusedSample, tpotFullFused, tpotNoSched, tpotNoDist, tpotVLLM time.Duration
	measurements := []func(){
		func() { tpotStd = pieTPOT(o.seed(), "text_completion", std, nil, o.Quick) },
		func() { tpotFusedSample = pieTPOT(o.seed(), "text_completion_fused", fusedSample, nil, o.Quick) },
		func() { tpotFullFused = pieTPOT(o.seed(), "text_completion_fused", fullFused, nil, o.Quick) },
		func() {
			tpotNoSched = pieTPOT(o.seed(), "text_completion", std, func(c *pie.Config) {
				c.NoSchedOverhead = true
			}, o.Quick)
		},
		func() {
			tpotNoDist = pieTPOT(o.seed(), "text_completion", std, func(c *pie.Config) {
				c.NoDistReturnOverhead = true
			}, o.Quick)
		},
		func() { tpotVLLM = vllmTPOT(o.seed(), t3ModelLabel, o.Quick) },
	}
	parallelFor(len(measurements), func(i int) { measurements[i]() })

	clampPos := func(d time.Duration) time.Duration {
		if d < 0 {
			return 0
		}
		return d
	}
	return Table3Result{
		VLLMTPOT:           tpotVLLM,
		PieTPOT:            tpotStd,
		SamplingGap:        clampPos(tpotStd - tpotFusedSample),
		EmbedGap:           clampPos(tpotFusedSample - tpotFullFused),
		SchedOverhead:      clampPos(tpotStd - tpotNoSched),
		DistReturnOverhead: clampPos(tpotStd - tpotNoDist),
		IPCBoundary:        6 * time.Microsecond,
		AppBoundary:        time.Microsecond,
		WasmOverhead:       time.Microsecond,
	}
}

// Table renders the itemization.
func (r Table3Result) Table() string {
	t := &metrics.Table{
		Title:  "Table 3: opportunity cost of the programming model (8B, 32 inferlets)",
		Header: []string{"component", "latency"},
	}
	t.AddRow("Text completion TPOT (vLLM sim)", metrics.Ms(r.VLLMTPOT))
	t.AddRow("Lack of pipelined sampling on GPU", "+"+metrics.Ms(r.SamplingGap))
	t.AddRow("Lack of pipelined input embedding", "+"+metrics.Ms(r.EmbedGap))
	t.AddRow("Control layer batch scheduling", "+"+metrics.Ms(r.SchedOverhead))
	t.AddRow("Returning output distribution", "+"+metrics.Ms(r.DistReturnOverhead))
	t.AddRow("Boundary crossing (control-inference)", "+"+metrics.Ms(r.IPCBoundary))
	t.AddRow("Boundary crossing (app-control)", "+"+metrics.Ms(r.AppBoundary))
	t.AddRow("Wasm processing overhead", "+"+metrics.Ms(r.WasmOverhead))
	t.AddRow("Text completion TPOT (Pie)", metrics.Ms(r.PieTPOT))
	return t.String()
}

// Table 4: TPOT and relative overhead across model sizes. Paper:
// 64.06→65.59 ms (8B, 2.39%), 30.30→32.01 (3B, 5.64%), 16.83→18.75
// (1B, 11.41%).

// Table4Row is one model size.
type Table4Row struct {
	Params   string
	VLLM     time.Duration
	Pie      time.Duration
	Overhead time.Duration
	Percent  float64
}

// Table4Result holds all sizes.
type Table4Result struct{ Rows []Table4Row }

// Table4 measures TPOT for 1B/3B/8B; the six (model, system) ladders fan
// out in parallel.
func Table4(o Options) Table4Result {
	models := []struct{ id, label string }{
		{"llama-8b", "8B"}, {"llama-3b", "3B"}, {"llama-1b", "1B"},
	}
	pieT := make([]time.Duration, len(models))
	vllmT := make([]time.Duration, len(models))
	parallelFor(2*len(models), func(i int) {
		m := models[i/2]
		if i%2 == 0 {
			params := func(gen int) interface{} {
				return apps.CompletionParams{Common: apps.Common{Model: m.id}, Prompt: f8Prompt[:400], MaxTokens: gen}
			}
			pieT[i/2] = pieTPOT(o.seed(), "text_completion", params, nil, o.Quick)
		} else {
			vllmT[i/2] = vllmTPOT(o.seed(), m.label, o.Quick)
		}
	})
	var out Table4Result
	for i, m := range models {
		out.Rows = append(out.Rows, Table4Row{
			Params: m.label, VLLM: vllmT[i], Pie: pieT[i],
			Overhead: pieT[i] - vllmT[i],
			Percent:  100 * float64(pieT[i]-vllmT[i]) / float64(vllmT[i]),
		})
	}
	return out
}

// Table renders the comparison.
func (r Table4Result) Table() string {
	t := &metrics.Table{
		Title:  "Table 4: TPOT by model size (32 concurrent inferlets)",
		Header: []string{"params", "vLLM", "Pie", "overhead", "%"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Params, metrics.Ms(row.VLLM), metrics.Ms(row.Pie),
			metrics.Ms(row.Overhead), fmt.Sprintf("%.2f%%", row.Percent))
	}
	return t.String()
}

// Table 5: throughput across batching strategies under a saturated
// scheduler with 128 concurrent inferlets. Paper: Eager 5.61, K-only
// 30.09, T-only 78.11, Adaptive 84.85 requests/s.

// Table5Row is one policy.
type Table5Row struct {
	Policy     string
	Throughput float64 // requests/s
}

// Table5Result holds all four.
type Table5Result struct{ Rows []Table5Row }

// Table5 runs the policy comparison (1B, 40-token completions).
func Table5(o Options) Table5Result {
	conc := o.scale(128, 48)
	total := o.scale(384, 96)
	gen := 40
	params := marshalParams(apps.CompletionParams{Prompt: f8Prompt[:200], MaxTokens: gen})
	policies := []struct {
		name   string
		policy pie.Policy
	}{
		{"Eager", pie.PolicyEager},
		{"K-only", pie.PolicyKOnly},
		{"T-only", pie.PolicyTOnly},
		{"Adaptive", pie.PolicyAdaptive},
	}
	out := Table5Result{Rows: make([]Table5Row, len(policies))}
	parallelFor(len(policies), func(i int) {
		pol := policies[i]
		totalHere := total
		if pol.policy == pie.PolicyEager {
			// Eager is an order of magnitude slower; keep runtime sane
			// while measuring steady-state throughput.
			totalHere = o.scale(128, 48)
		}
		e := newPieEngine(o.seed(), func(c *pie.Config) { c.Policy = pol.policy })
		res := runPieLoad(e, "text_completion", func(int) string { return params }, totalHere, conc)
		out.Rows[i] = Table5Row{Policy: pol.name, Throughput: res.Throughput()}
	})
	return out
}

// Table renders the policy comparison.
func (r Table5Result) Table() string {
	t := &metrics.Table{
		Title:  "Table 5: throughput across batching strategies (128 inferlets, 1B)",
		Header: []string{"policy", "requests/s"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Policy, fmt.Sprintf("%.2f", row.Throughput))
	}
	return t.String()
}
