package eval

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(0..n-1) across up to GOMAXPROCS workers and blocks
// until every leg finishes. Experiment legs are independent by
// construction — each builds its own engines on fresh virtual clocks — so
// the drivers fan legs out here and write results into index-addressed
// slots, which keeps output identical to a serial run no matter how legs
// interleave in wall time. A panicking leg is re-panicked on the caller
// after the remaining legs drain, so a failed experiment aborts loudly
// instead of deadlocking the harness.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, legPanic{leg: i, value: r, stack: debug.Stack()})
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p.(legPanic))
	}
}

// legPanic carries a failed leg's original panic value and stack across
// the worker boundary, so the caller's panic still identifies the failing
// site and typed panic values stay recoverable by type assertion.
type legPanic struct {
	leg   int
	value interface{}
	stack []byte
}

func (p legPanic) Error() string {
	return fmt.Sprintf("eval: leg %d: %v\n%s", p.leg, p.value, p.stack)
}

// Unwrap exposes the original panic value when it was an error.
func (p legPanic) Unwrap() error {
	if err, ok := p.value.(error); ok {
		return err
	}
	return nil
}
