package eval

import (
	"encoding/json"
	"testing"
)

// TestClusterSweepScalesMonotonically pins the headline acceptance claim:
// aggregate tokens/sec grows with every added replica on the batch
// workload, the affinity policy beats round-robin on the shared-prefix
// workload, and the autoscaler both grows under load and drains back.
func TestClusterSweepScalesMonotonically(t *testing.T) {
	r := ClusterSweep(quick)
	if len(r.Sweep) != clusterSweepMaxN {
		t.Fatalf("%d sweep points, want %d", len(r.Sweep), clusterSweepMaxN)
	}
	for i, p := range r.Sweep {
		if p.Replicas != i+1 {
			t.Fatalf("point %d has Replicas=%d", i, p.Replicas)
		}
		if p.Failures != 0 {
			t.Fatalf("point N=%d had %d failures", p.Replicas, p.Failures)
		}
		if p.Done == 0 || p.Tokens == 0 || p.TTFT == 0 || p.TPOT == 0 {
			t.Fatalf("point N=%d incomplete: %+v", p.Replicas, p)
		}
		if i > 0 && p.TokensPerSec <= r.Sweep[i-1].TokensPerSec {
			t.Fatalf("tokens/sec not monotonic: N=%d %.0f <= N=%d %.0f",
				p.Replicas, p.TokensPerSec, r.Sweep[i-1].Replicas, r.Sweep[i-1].TokensPerSec)
		}
		if len(p.PerReplica) != p.Replicas {
			t.Fatalf("point N=%d has %d replica stats", p.Replicas, len(p.PerReplica))
		}
	}
	if r.AffinityKV.ReqPerSec <= r.AffinityRR.ReqPerSec {
		t.Fatalf("kv-affinity %.2f req/s did not beat round-robin %.2f req/s",
			r.AffinityKV.ReqPerSec, r.AffinityRR.ReqPerSec)
	}
	if r.Auto.ScaleUps == 0 || r.Auto.DrainDone == 0 {
		t.Fatalf("autoscaler trajectory missing: %+v", r.Auto)
	}
	if r.Auto.FinalActive != 1 {
		t.Fatalf("autoscaler ended with %d active replicas, want 1", r.Auto.FinalActive)
	}
}

// TestClusterSweepDeterministic pins the byte-identical contract for the
// whole experiment document, per-replica stats included.
func TestClusterSweepDeterministic(t *testing.T) {
	a, err := json.Marshal(ClusterSweep(quick))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(ClusterSweep(quick))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("same-seed cluster sweeps produced different documents")
	}
}
