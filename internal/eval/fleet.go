package eval

import (
	"fmt"
	"strings"
	"time"

	"pie"
	"pie/apps"
	"pie/internal/fleet"
	"pie/internal/metrics"
	"pie/internal/sim"
)

// Fleet-manifest experiment (beyond the paper): a declarative manifest
// boots the serving fleet — one pool with headroom, a service class, and
// text_completion pinned to 1.0.0 even though 2.0.0 is registered — and
// the reconciling controller carries two live operations under sustained
// interactive load:
//
//   - a rolling program upgrade: the manifest repins text_completion to
//     2.0.0 mid-run; the controller prewarms the new artifact on every
//     serving replica before the cutover, then drains old-version
//     instances in bounded batches, abort-and-requeueing stragglers past
//     the drain deadline. The naive comparator (one unbounded batch, no
//     grace, no prewarm — a restart) runs under identical load.
//   - a pool-count hot reload: grow 2 -> 5, then shrink 5 -> 3, with the
//     shrink a two-phase drain that migrates KV exports before retiring.
//
// Claims under test: the rolling upgrade completes with zero failed
// launches and upgrade-window TTFT p95 within 1.5x the steady-state leg,
// where the naive restart violates that bound; the hot reload converges
// to the desired count without dropping an in-flight session; and the
// rolling leg's full trace — controller decision log, every TTFT sample,
// makespan — is byte-identical across same-seed runs.

const (
	// fleetPoolBuilt/fleetPoolCount: the upgrade legs' pool, 4 serving
	// replicas of 6 built.
	fleetPoolBuilt = 6
	fleetPoolCount = 4
	fleetIntConc   = 8
	fleetMaxTokens = 12
	fleetTTFT      = 250 * time.Millisecond
	// fleetV2Size makes the upgrade expensive enough to matter: a 1 MiB
	// v2 binary costs ~210 ms of upload+JIT per cold replica, so skipping
	// the prewarm is visible in client TTFT.
	fleetV2Size = 1 << 20
	// fleetIdleTail lets drains retire and the rollout finish inside the
	// measured run.
	fleetIdleTail = 300 * time.Millisecond
)

// fleetLegModes name the three upgrade legs.
const (
	fleetSteady  = "steady"
	fleetRolling = "rolling"
	fleetNaive   = "naive"
)

// fleetBootManifest is the declarative boot document shared by the legs.
func fleetBootManifest(rc fleet.Reconcile) *fleet.Manifest {
	return &fleet.Manifest{
		Schema:    fleet.CurrentSchema,
		Placement: "least-loaded",
		Pools:     []fleet.Pool{{Name: "main", Count: fleetPoolCount, Max: fleetPoolBuilt}},
		Classes:   []fleet.Class{{Name: "interactive", TTFT: fleet.Duration(fleetTTFT), Priority: 10}},
		Programs:  []fleet.Pin{{Name: "text_completion", Version: "1.0.0", Class: "interactive"}},
		Reconcile: rc,
	}
}

// fleetEngine boots an engine from the manifest and registers
// text_completion 2.0.0 alongside — without the manifest's pin, bare-name
// launches would float to 2.0.0 immediately; with it, the cutover belongs
// to the controller.
func fleetEngine(seed uint64, m *fleet.Manifest) *pie.Engine {
	e := newPieEngine(seed, func(c *pie.Config) {
		fc, err := pie.ConfigFromManifest(m)
		if err != nil {
			panic(fmt.Sprintf("eval: fleet manifest: %v", err))
		}
		fc.Seed = c.Seed
		fc.Mode = c.Mode
		fc.ClientRTT = c.ClientRTT
		*c = fc
	})
	v2 := apps.TextCompletion()
	v2.Manifest.Version = "2.0.0"
	v2.BinarySize = fleetV2Size
	e.MustRegister(v2)
	return e
}

// FleetLeg is one measured upgrade leg.
type FleetLeg struct {
	Done, Failed    int
	TTFTP95         time.Duration // whole-run client TTFT p95
	WindowP95       time.Duration // TTFT p95 of launches at/after the manifest apply
	WindowN         int
	Makespan        time.Duration
	UpgradeRequeues int
	Prewarms        int
	Generation      int
	Converged       bool
	FinalPin        string
	// Fingerprint folds the controller decision log, every TTFT sample,
	// and the makespan — the determinism probe compares it across two
	// same-seed rolling runs. Excluded from JSON artifacts.
	Fingerprint string `json:"-"`
}

// FleetReloadLeg is the pool-count hot-reload run.
type FleetReloadLeg struct {
	Done, Dropped int
	Applies       int // manifest generations applied (grow + shrink)
	Activations   int
	Drains        int
	FinalServing  int
	Converged     bool
	Makespan      time.Duration
}

// FleetResult is the full experiment.
type FleetResult struct {
	Built, Desired int
	Tasks          int
	Steady         FleetLeg
	Rolling        FleetLeg
	Naive          FleetLeg
	// RollingRatio/NaiveRatio compare each upgrade leg's window p95 to the
	// steady leg's over the same task window (the acceptance bound is 1.5x).
	RollingRatio, NaiveRatio float64
	Deterministic            bool
	Reload                   FleetReloadLeg
}

// FleetSweep runs the three upgrade legs, a same-seed replay of the
// rolling leg (the determinism probe), and the hot-reload leg, each on an
// independent engine.
func FleetSweep(o Options) FleetResult {
	out := FleetResult{
		Built:   fleetPoolBuilt,
		Desired: fleetPoolCount,
		Tasks:   fleetIntConc * o.scale(14, 9),
	}
	legs := make([]FleetLeg, 4)
	parallelFor(5, func(i int) {
		switch i {
		case 0:
			legs[0] = runFleetLeg(o, fleetSteady)
		case 1:
			legs[1] = runFleetLeg(o, fleetRolling)
		case 2:
			legs[2] = runFleetLeg(o, fleetNaive)
		case 3:
			// Same seed, same leg: the replay the determinism claim is
			// judged on.
			legs[3] = runFleetLeg(o, fleetRolling)
		case 4:
			out.Reload = runFleetReload(o)
		}
	})
	out.Steady, out.Rolling, out.Naive = legs[0], legs[1], legs[2]
	out.Deterministic = legs[1].Fingerprint != "" && legs[1].Fingerprint == legs[3].Fingerprint
	if out.Steady.WindowP95 > 0 {
		out.RollingRatio = float64(out.Rolling.WindowP95) / float64(out.Steady.WindowP95)
		out.NaiveRatio = float64(out.Naive.WindowP95) / float64(out.Steady.WindowP95)
	}
	return out
}

// runFleetLeg drives one upgrade leg: closed-loop interactive clients on
// the pinned program, with the repin (if any) applied by the client that
// draws the trigger task — one third of the way through the workload.
func runFleetLeg(o Options, mode string) FleetLeg {
	perWorker := o.scale(14, 9)
	total := fleetIntConc * perWorker
	triggerTask := total / 3

	rc := fleet.Reconcile{
		Interval:      fleet.Duration(5 * time.Millisecond),
		DrainDeadline: fleet.Duration(60 * time.Millisecond),
	}
	if mode == fleetNaive {
		// The restart baseline: the whole old fleet in one batch, no
		// grace, no prewarm.
		off := false
		rc = fleet.Reconcile{
			Interval:      fleet.Duration(5 * time.Millisecond),
			DrainDeadline: fleet.Duration(-time.Millisecond),
			UpgradeBatch:  -1,
			Prewarm:       &off,
		}
	}
	boot := fleetBootManifest(rc)
	var upgradeTo *fleet.Manifest
	if mode != fleetSteady {
		upgradeTo = boot.Clone()
		upgradeTo.Programs[0].Version = "2.0.0"
	}
	e := fleetEngine(o.seed(), boot)

	promptRNG := sim.NewRNG(o.seed() ^ 0xf1ee70)
	prompts := make([]string, 64)
	for i := range prompts {
		prompts[i] = strings.Repeat("fleet manifest upgrade probe ", 1+promptRNG.Intn(8))
	}

	var leg FleetLeg
	type sample struct{ t0, d time.Duration }
	var samples []sample
	applyAt := time.Duration(-1)
	var start time.Duration
	e.Go("loadgen", func() {
		// Warmup populates the v1 artifact path before measurement; the
		// explicit version ref keeps it off 2.0.0 while the boot pin is
		// still one controller tick away.
		if h, err := e.Launch(pie.Spec("text_completion@1.0.0", marshalParams(apps.CompletionParams{
			Prompt: prompts[0], MaxTokens: 2,
		}))); err == nil {
			_ = h.Wait()
		}
		start = e.Now()
		g := sim.NewGroup(e.Clock())
		q := sim.NewMailbox[int](e.Clock())
		for t := 0; t < total; t++ {
			q.Send(t)
		}
		for w := 0; w < fleetIntConc; w++ {
			g.Go("client", func() {
				for {
					task, ok := q.TryRecv()
					if !ok {
						return
					}
					if task == triggerTask {
						// The steady leg marks the window without applying
						// anything, so all three legs window identically.
						applyAt = e.Now() - start
						if upgradeTo != nil {
							if err := e.ApplyFleet(upgradeTo); err != nil {
								panic(fmt.Sprintf("eval: fleet apply: %v", err))
							}
						}
					}
					params := marshalParams(apps.CompletionParams{
						Prompt:        prompts[task%len(prompts)],
						MaxTokens:     fleetMaxTokens,
						FirstTokenAck: true,
					})
					sp := pie.Spec("text_completion", params)
					sp.Class = "interactive"
					t0 := e.Now()
					h, err := e.Launch(sp)
					if err != nil {
						leg.Failed++
						continue
					}
					if msg, merr := h.Recv().Get(); merr == nil && msg == "first-token" {
						samples = append(samples, sample{t0 - start, e.Now() - t0})
					}
					if h.Wait() != nil {
						leg.Failed++
						continue
					}
					leg.Done++
				}
			})
		}
		g.Wait()
		leg.Makespan = e.Now() - start
		// Idle tail: the rollout's last batches and the drain bookkeeping
		// finish inside the run.
		e.Sleep(fleetIdleTail)
	})
	if err := e.Run(); err != nil {
		panic(fmt.Sprintf("eval: fleet leg run: %v", err))
	}

	all := &metrics.Series{Name: "client-ttft"}
	win := &metrics.Series{Name: "client-ttft-window"}
	for _, s := range samples {
		all.Add(s.d)
		if applyAt >= 0 && s.t0 >= applyAt {
			win.Add(s.d)
			leg.WindowN++
		}
	}
	leg.TTFTP95 = all.Percentile(95)
	if leg.WindowN > 0 {
		leg.WindowP95 = win.Percentile(95)
	}
	leg.UpgradeRequeues = e.Stats().UpgradeRequeues
	ctl := e.FleetController()
	fst := ctl.Status()
	leg.Prewarms = fst.Prewarms
	leg.Generation = fst.Generation
	leg.Converged = fst.Converged
	for _, p := range fst.Programs {
		leg.FinalPin = p.Version
	}
	var fb strings.Builder
	fmt.Fprintf(&fb, "mode=%s makespan=%v done=%d failed=%d requeues=%d prewarms=%d\n",
		mode, leg.Makespan, leg.Done, leg.Failed, leg.UpgradeRequeues, leg.Prewarms)
	for _, s := range samples {
		fmt.Fprintf(&fb, "%v %v\n", s.t0, s.d)
	}
	for _, line := range ctl.Log {
		fb.WriteString(line)
		fb.WriteByte('\n')
	}
	leg.Fingerprint = fb.String()
	return leg
}

// runFleetReload drives the pool-count hot reload: boot at 2 serving, grow
// to 5 a quarter of the way through, shrink to 3 at the halfway mark, and
// verify every in-flight session survives the churn.
func runFleetReload(o Options) FleetReloadLeg {
	conc := 6
	perWorker := o.scale(12, 8)
	total := conc * perWorker
	boot := fleetBootManifest(fleet.Reconcile{Interval: fleet.Duration(2 * time.Millisecond)})
	boot.Pools[0].Count = 2
	grow := boot.Clone()
	grow.Pools[0].Count = 5
	shrink := boot.Clone()
	shrink.Pools[0].Count = 3
	e := fleetEngine(o.seed(), boot)

	promptRNG := sim.NewRNG(o.seed() ^ 0x9e10ad)
	prompts := make([]string, 32)
	for i := range prompts {
		prompts[i] = strings.Repeat("fleet pool reload probe ", 1+promptRNG.Intn(6))
	}

	var leg FleetReloadLeg
	e.Go("loadgen", func() {
		// Same warmup as the upgrade legs: explicit version ref, since the
		// boot pin lands on the first controller tick.
		if h, err := e.Launch(pie.Spec("text_completion@1.0.0", marshalParams(apps.CompletionParams{
			Prompt: prompts[0], MaxTokens: 2,
		}))); err == nil {
			_ = h.Wait()
		}
		start := e.Now()
		g := sim.NewGroup(e.Clock())
		q := sim.NewMailbox[int](e.Clock())
		for t := 0; t < total; t++ {
			q.Send(t)
		}
		for w := 0; w < conc; w++ {
			g.Go("client", func() {
				for {
					task, ok := q.TryRecv()
					if !ok {
						return
					}
					switch task {
					case total / 4:
						if err := e.ApplyFleet(grow); err != nil {
							panic(fmt.Sprintf("eval: fleet grow: %v", err))
						}
					case total / 2:
						if err := e.ApplyFleet(shrink); err != nil {
							panic(fmt.Sprintf("eval: fleet shrink: %v", err))
						}
					}
					sp := pie.Spec("text_completion", marshalParams(apps.CompletionParams{
						Prompt:    prompts[task%len(prompts)],
						MaxTokens: fleetMaxTokens,
					}))
					sp.Class = "interactive"
					h, err := e.Launch(sp)
					if err != nil {
						leg.Dropped++
						continue
					}
					if h.Wait() != nil {
						leg.Dropped++
						continue
					}
					leg.Done++
				}
			})
		}
		g.Wait()
		leg.Makespan = e.Now() - start
		// Idle tail: the shrink's two-phase drains need idle replicas to
		// retire (KV exports migrate, then the replica deactivates).
		e.Sleep(fleetIdleTail)
	})
	if err := e.Run(); err != nil {
		panic(fmt.Sprintf("eval: fleet reload run: %v", err))
	}
	fst := e.FleetController().Status()
	leg.Applies = fst.Generation
	leg.Activations = fst.Activations
	leg.Drains = fst.Drains
	leg.Converged = fst.Converged
	if len(fst.Pools) > 0 {
		leg.FinalServing = fst.Pools[0].Serving
	}
	return leg
}

// Table renders the experiment in paper style.
func (r FleetResult) Table() string {
	var b strings.Builder
	t := &metrics.Table{
		Title: fmt.Sprintf("Fleet manifests: rolling upgrade of text_completion 1.0.0 -> 2.0.0 under load (%d/%d replicas serving, %d tasks, repin at 1/3)",
			r.Desired, r.Built, r.Tasks),
		Header: []string{"leg", "done", "failed", "ttft p95", "window p95", "vs steady", "requeues", "prewarms", "gen", "converged", "final pin"},
	}
	row := func(name string, l FleetLeg, ratio float64) {
		vs := "-"
		if ratio > 0 {
			vs = fmt.Sprintf("%.2fx", ratio)
		}
		t.AddRow(name,
			fmt.Sprint(l.Done),
			fmt.Sprint(l.Failed),
			metrics.Ms(l.TTFTP95),
			metrics.Ms(l.WindowP95),
			vs,
			fmt.Sprint(l.UpgradeRequeues),
			fmt.Sprint(l.Prewarms),
			fmt.Sprint(l.Generation),
			fmt.Sprint(l.Converged),
			l.FinalPin)
	}
	row("steady (pin 1.0.0)", r.Steady, 0)
	row("rolling upgrade", r.Rolling, r.RollingRatio)
	row("naive restart", r.Naive, r.NaiveRatio)
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nfleet: rolling window p95 %.2fx steady (bound 1.5x), naive %.2fx; %d/%d rolling sessions done with %d requeues; replay byte-identical: %v\n",
		r.RollingRatio, r.NaiveRatio, r.Rolling.Done, r.Tasks, r.Rolling.UpgradeRequeues, r.Deterministic)
	fmt.Fprintf(&b, "fleet: hot reload 2 -> 5 -> 3 converged=%v final serving=%d (%d activations, %d drains), %d/%d sessions done, %d dropped\n",
		r.Reload.Converged, r.Reload.FinalServing, r.Reload.Activations, r.Reload.Drains, r.Reload.Done, r.Reload.Done+r.Reload.Dropped, r.Reload.Dropped)
	return b.String()
}
