package eval

import (
	"fmt"
	"time"

	"pie"
	"pie/apps"
	"pie/inferlet"
	"pie/internal/metrics"
	"pie/internal/sim"
)

// Figure 9: average launch latency versus number of simultaneous inferlet
// launches, cold (upload + JIT) vs warm (cached binary). Paper: warm
// 10–50 ms, cold 35–81 ms up to 896 launches, pooled allocation keeping
// the floor low.

// Fig9Point is one (count, cold/warm) sample.
type Fig9Point struct {
	Count int
	Cold  time.Duration
	Warm  time.Duration
}

// Fig9Result is the launch-latency curve.
type Fig9Result struct {
	Points []Fig9Point
}

// Figure9 measures end-to-end launch→ack latency from the client, like
// the paper's modified text-completion probe.
func Figure9(o Options) Fig9Result {
	counts := []int{1, 64, 128, 256, 512, 896}
	if o.Quick {
		counts = []int{1, 64, 256}
	}
	// Each (count, cold/warm) probe is its own engine; fan all of them
	// out. Counts are stamped serially up front so the two legs of a
	// point never write the same field concurrently.
	out := Fig9Result{Points: make([]Fig9Point, len(counts))}
	for i, n := range counts {
		out.Points[i].Count = n
	}
	parallelFor(2*len(counts), func(i int) {
		n := counts[i/2]
		if i%2 == 0 {
			out.Points[i/2].Cold = launchProbe(o.seed(), n, false)
		} else {
			out.Points[i/2].Warm = launchProbe(o.seed(), n, true)
		}
	})
	return out
}

// launchProbe launches n ack-probes simultaneously and returns the mean
// request→ack latency. Warm runs pre-compile the binary with one launch.
func launchProbe(seed uint64, n int, warm bool) time.Duration {
	e := newPieEngine(seed, nil)
	params := marshalParams(apps.CompletionParams{Ack: true, MaxTokens: 1, Prompt: "x"})
	lat := &metrics.Series{}
	e.Go("driver", func() {
		if warm {
			h, err := e.Launch(pie.Spec("text_completion", params))
			if err == nil {
				h.Recv().Get()
				h.Wait()
			}
		}
		g := sim.NewGroup(e.Clock())
		for i := 0; i < n; i++ {
			g.Go("launcher", func() {
				t0 := e.Now()
				h, err := e.Launch(pie.Spec("text_completion", params))
				if err != nil {
					return
				}
				if _, err := h.Recv().Get(); err == nil {
					// Ack received: that is the measured latency; the
					// tail of the generation happens beyond it.
					lat.Add(e.Now() - t0 + e.ClientRTT()/2) // response leg
				}
				h.Wait()
			})
		}
		g.Wait()
	})
	if err := e.Run(); err != nil {
		panic(err)
	}
	return lat.Mean()
}

// Table renders the curve.
func (r Fig9Result) Table() string {
	t := &metrics.Table{
		Title:  "Figure 9: inferlet launch latency (paper: warm 10-50ms, cold 35-81ms)",
		Header: []string{"launches", "cold", "warm"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%d", p.Count), metrics.Ms(p.Cold), metrics.Ms(p.Warm))
	}
	return t.String()
}

// Figure 10: per-API-call overhead by handling layer versus concurrent
// inferlets, batch scheduling disabled. Paper: control layer <30 µs;
// inference layer 10–300 µs, growing with concurrency (single-threaded
// deserialization).

// Fig10Point is one concurrency sample.
type Fig10Point struct {
	Inferlets      int
	ControlLayer   time.Duration
	InferenceLayer time.Duration
}

// Fig10Result is the overhead curve.
type Fig10Result struct {
	Points []Fig10Point
}

// apiProbe measures per-call overhead at one concurrency level:
// control-layer calls are timed inside the inferlet (they are pure
// control-plane work); inference-layer overhead is observed at the
// backend boundary (submission → deserialized, plus the response IPC hop),
// which excludes kernel execution and device queueing — the paper's
// "excluding handling time".
func apiProbe(seed uint64, n int) Fig10Point {
	e := newPieEngine(seed, func(c *pie.Config) {
		c.Policy = pie.PolicyEager // "we disable batch scheduling"
		c.NoSchedOverhead = true
	})
	ctl := &metrics.Series{}
	inf := &metrics.Series{}
	e.Backend().OnOverhead = func(d time.Duration) { inf.Add(d) }
	e.MustRegister(inferlet.Program{
		Name: "api_probe", BinarySize: 4 << 10,
		Run: func(s inferlet.Session) error {
			m := s.AvailableModels()[0]
			q, err := s.Open(m.ID)
			if err != nil {
				return err
			}
			alloc, err := q.Alloc()
			if err != nil {
				return err
			}
			fwd, err := q.Forward()
			if err != nil {
				return err
			}
			pages, err := alloc.Pages(1)
			if err != nil {
				return err
			}
			bits := make([]bool, m.PageSize)
			// Inferlets issue in synchronized rounds so the single-threaded
			// deserializer sees the concurrent burst the paper measures
			// (inferlets pipeline calls rather than lock-stepping on each).
			const rounds = 8
			const period = 100 * time.Millisecond
			for i := 0; i < rounds; i++ {
				target := time.Duration(i+1) * period
				if d := target - s.Now(); d > 0 {
					s.Sleep(d)
				}
				t0 := s.Now()
				if _, err := s.AvailableTraits(m.ID); err != nil {
					return err
				}
				ctl.Add(s.Now() - t0)

				f, err := fwd.MaskPage(pages[0], bits)
				if err != nil {
					return err
				}
				if _, err := f.Get(); err != nil {
					return err
				}
			}
			return alloc.FreePages(pages)
		},
	})
	e.Go("driver", func() {
		g := sim.NewGroup(e.Clock())
		for i := 0; i < n; i++ {
			g.Go("launcher", func() {
				h, err := e.Launch(pie.Spec("api_probe"))
				if err != nil {
					return
				}
				h.Wait()
			})
		}
		g.Wait()
	})
	if err := e.Run(); err != nil {
		panic(err)
	}
	return Fig10Point{Inferlets: n, ControlLayer: ctl.Mean(), InferenceLayer: inf.Mean()}
}

// Figure10 runs the concurrency sweep.
func Figure10(o Options) Fig10Result {
	counts := []int{1, 128, 256, 512, 896}
	if o.Quick {
		counts = []int{1, 128, 384}
	}
	out := Fig10Result{Points: make([]Fig10Point, len(counts))}
	parallelFor(len(counts), func(i int) {
		out.Points[i] = apiProbe(o.seed(), counts[i])
	})
	return out
}

// Table renders the curve.
func (r Fig10Result) Table() string {
	t := &metrics.Table{
		Title:  "Figure 10: per-API-call overhead by layer (paper: control <30us, inference 10-300us)",
		Header: []string{"inferlets", "control layer", "inference layer"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%d", p.Inferlets),
			fmt.Sprintf("%.1f us", float64(p.ControlLayer)/float64(time.Microsecond)),
			fmt.Sprintf("%.1f us", float64(p.InferenceLayer)/float64(time.Microsecond)))
	}
	return t.String()
}

// Figure 11: average API calls per output token per task, split by
// handling layer. Paper: text completion ≈1.6 inference + 1.5 control;
// beam search ≈17 + 13. (Our decomposed decode loop issues
// embed+forward+dist per token, so absolute counts are ~3/token; the
// across-task shape is the claim — see EXPERIMENTS.md.)

// Fig11Row is one task's call intensity.
type Fig11Row struct {
	Task         string
	ControlCalls float64 // per output token
	InferCalls   float64
	OutputTokens int
}

// Fig11Result holds every task.
type Fig11Result struct {
	Rows []Fig11Row
}

// Figure11 runs each task once and reads the session instrumentation.
func Figure11(o Options) Fig11Result {
	tasks := []struct {
		name   string
		app    string
		params interface{}
	}{
		{"textcomp", "text_completion", apps.CompletionParams{Prompt: f8Prompt, MaxTokens: 64}},
		{"tot", "tot", apps.TreeParams{Depth: 3, Branch: 3, ThinkTokens: 24}},
		{"skot", "skot", apps.SkeletonParams{Points: 4, SkeletonTokens: 20, ExpandTokens: 24}},
		{"got", "got", apps.GraphParams{NumChunks: 4, ChunkTokens: 24, MergeTokens: 16}},
		{"specdec", "specdec", apps.SpecDecodeParams{MaxTokens: 64, DraftLen: 4, Oracle: true, AcceptRate: 0.7}},
		{"react", "agent_react", apps.AgentParams{Steps: reactSteps, ThinkTokens: reactThink, ObsTokens: reactObs, FinalTokens: reactFinal}},
		{"beam", "beam", apps.BeamParams{Width: 5, Steps: 24}},
		{"swarm", "agent_swarm", apps.SwarmParams{Workers: swarmWorkers, IOsPerWorker: swarmIOs, ThinkTokens: swarmThink}},
	}
	out := Fig11Result{Rows: make([]Fig11Row, len(tasks))}
	parallelFor(len(tasks), func(i int) {
		task := tasks[i]
		e := newPieEngine(o.seed(), nil)
		var cc, ic, tok int
		e.Go("driver", func() {
			h, err := e.Launch(pie.Spec(task.app, marshalParams(task.params)))
			if err != nil {
				return
			}
			h.Wait()
			cc, ic, tok = h.Stats()
		})
		if err := e.Run(); err != nil {
			panic(err)
		}
		if tok == 0 {
			tok = 1
		}
		out.Rows[i] = Fig11Row{
			Task:         task.name,
			ControlCalls: float64(cc) / float64(tok),
			InferCalls:   float64(ic) / float64(tok),
			OutputTokens: tok,
		}
	})
	return out
}

// Table renders the call intensities.
func (r Fig11Result) Table() string {
	t := &metrics.Table{
		Title:  "Figure 11: API calls per output token",
		Header: []string{"task", "control/tok", "inference/tok", "output tokens"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Task, fmt.Sprintf("%.2f", row.ControlCalls),
			fmt.Sprintf("%.2f", row.InferCalls), fmt.Sprintf("%d", row.OutputTokens))
	}
	return t.String()
}
