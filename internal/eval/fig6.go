package eval

import (
	"fmt"
	"time"

	"pie"
	"pie/apps"
	"pie/internal/baseline"
	"pie/internal/metrics"
	"pie/internal/netsim"
	"pie/internal/sim"
)

// Figure 6: latency and throughput of the three agents (ReACT, CodeACT,
// Swarm) on Pie vs vLLM vs SGLang, 1B model. Paper: Pie latencies
// 4.27/3.18/6.14 s; throughputs 29.94/40.18/5.21 agents/s; up to −15%
// latency and +30% throughput vs baselines.

// Fig6Row is one (workflow, system) cell.
type Fig6Row struct {
	Workflow   string
	System     string
	Latency    time.Duration
	Throughput float64 // agents/s
}

// Fig6Result holds every cell.
type Fig6Result struct {
	Rows []Fig6Row
}

// Agent workload constants (§7.1: 8 external IOs for ReACT/CodeACT, 32
// for Swarm).
const (
	reactSteps  = 8
	reactThink  = 24
	reactObs    = 16
	reactFinal  = 24
	agentPrompt = 64

	// Code actions are compact (the paper's CodeACT finishes faster than
	// ReACT despite the slower tool).
	codeSteps = 8
	codeThink = 20
	codeObs   = 12

	swarmWorkers = 4
	swarmIOs     = 8 // ×4 workers = 32 IOs
	swarmThink   = 16
)

// Figure6 runs the full grid. Every (workflow, system) cell is an
// independent pair of simulations on fresh clocks, so the 9 cells fan out
// across the parallel harness; rows are written by index to keep output
// order (and content) identical to a serial run.
func Figure6(o Options) Fig6Result {
	latencyConc := 4
	thptConc := o.scale(96, 24)
	total := o.scale(192, 36)

	type cell struct{ wf, system string }
	var cells []cell
	for _, wf := range []string{"react", "codeact", "swarm"} {
		for _, system := range []string{"pie", "vllm", "sglang"} {
			cells = append(cells, cell{wf, system})
		}
	}
	rows := make([]Fig6Row, len(cells))
	parallelFor(len(cells), func(i int) {
		c := cells[i]
		lat := runAgent(c.wf, c.system, latencyConc*3, latencyConc, o.seed())
		thp := runAgent(c.wf, c.system, total, thptConc, o.seed())
		rows[i] = Fig6Row{
			Workflow:   c.wf,
			System:     c.system,
			Latency:    lat.Latency.Mean(),
			Throughput: thp.Throughput(),
		}
	})
	return Fig6Result{Rows: rows}
}

// runAgent dispatches one (workflow, system) load. All systems see the
// same agentRTT link; vLLM runs in its v0.6.0 default configuration
// (automatic prefix caching off), SGLang keeps its radix tree.
func runAgent(workflow, system string, total, concurrency int, seed uint64) loadResult {
	if system == "pie" {
		e := newPieEngine(seed, func(c *pie.Config) { c.ClientRTT = agentRTT })
		var app string
		var params string
		switch workflow {
		case "react":
			app = "agent_react"
			params = marshalParams(apps.AgentParams{
				Steps: reactSteps, ThinkTokens: reactThink, ObsTokens: reactObs, FinalTokens: reactFinal,
			})
		case "codeact":
			app = "agent_codeact"
			params = marshalParams(apps.AgentParams{
				Steps: codeSteps, ThinkTokens: codeThink, ObsTokens: codeObs, FinalTokens: reactFinal,
			})
		case "swarm":
			app = "agent_swarm"
			params = marshalParams(apps.SwarmParams{
				Workers: swarmWorkers, IOsPerWorker: swarmIOs, ThinkTokens: swarmThink,
			})
		}
		return runPieLoad(e, app, func(int) string { return params }, total, concurrency)
	}

	cfg := baseline.Config{Kind: baseline.VLLM, ModelLabel: "1B", PrefixCache: "none"}
	if system == "sglang" {
		cfg = baseline.Config{Kind: baseline.SGLang, ModelLabel: "1B"}
	}
	var wf baselineWorkflow
	switch workflow {
	case "react":
		wf = baselineReACT("search.api", reactSteps, reactThink, reactObs, reactFinal)
	case "codeact":
		wf = baselineReACT("code.exec", codeSteps, codeThink, codeObs, reactFinal)
	case "swarm":
		wf = baselineSwarm()
	}
	return runBaselineLoadRTT(cfg, wf, total, concurrency, seed, agentRTT)
}

// baselineReACT is the client-side agent loop: every think step resends
// the full context (prefix cache mitigates the recompute, the round trip
// and request handling remain), and tool calls run at the client.
func baselineReACT(tool string, steps, think, obs, final int) baselineWorkflow {
	return func(c *baseline.Client, w *netsim.World, rng *sim.RNG) {
		ctx := syntheticTokens(rng, agentPrompt)
		for s := 0; s < steps; s++ {
			out := c.Generate(ctx, think, syntheticTokens(rng, think))
			ctx = append(ctx, out...)
			resp, _ := w.Call("http://"+tool+"/q", fmt.Sprintf("step %d", s)).Get()
			_ = resp
			ctx = append(ctx, syntheticTokens(rng, obs)...)
		}
		c.Generate(ctx, final, syntheticTokens(rng, final))
	}
}

// baselineSwarm runs the coordinator and its workers as client processes:
// inter-agent messages ride the client, each costing round trips.
func baselineSwarm() baselineWorkflow {
	return func(c *baseline.Client, w *netsim.World, rng *sim.RNG) {
		g := sim.NewGroup(c.Clock)
		results := sim.NewMailbox[[]int](c.Clock)
		for wk := 0; wk < swarmWorkers; wk++ {
			wk := wk
			g.Go("swarm-worker", func() {
				wrng := rng.Fork(uint64(wk))
				ctx := syntheticTokens(wrng, agentPrompt/2)
				for io := 0; io < swarmIOs; io++ {
					out := c.Generate(ctx, swarmThink, syntheticTokens(wrng, swarmThink))
					ctx = append(ctx, out...)
					resp, _ := w.Call("http://search.api/q", "io").Get()
					_ = resp
					ctx = append(ctx, syntheticTokens(wrng, 8)...)
				}
				out := c.Generate(ctx, swarmThink, syntheticTokens(wrng, swarmThink))
				results.Send(out)
			})
		}
		// Coordinator: collect worker outputs, then synthesize.
		var all []int
		for wk := 0; wk < swarmWorkers; wk++ {
			part, _ := results.Recv()
			all = append(all, part...)
		}
		g.Wait()
		c.Generate(all, swarmThink*2, syntheticTokens(rng, swarmThink*2))
	}
}

// Table renders the figure as normalized ratios, paper style.
func (r Fig6Result) Table() string {
	t := &metrics.Table{
		Title:  "Figure 6: agent latency and throughput (1B model)",
		Header: []string{"workflow", "system", "latency", "lat ratio", "agents/s", "thpt ratio"},
	}
	// Normalize within each workflow to the worst latency / best thpt.
	worstLat := map[string]time.Duration{}
	bestThp := map[string]float64{}
	for _, row := range r.Rows {
		if row.Latency > worstLat[row.Workflow] {
			worstLat[row.Workflow] = row.Latency
		}
		if row.Throughput > bestThp[row.Workflow] {
			bestThp[row.Workflow] = row.Throughput
		}
	}
	for _, row := range r.Rows {
		t.AddRow(row.Workflow, row.System, metrics.Sec(row.Latency),
			fmt.Sprintf("%.2f", float64(row.Latency)/float64(worstLat[row.Workflow])),
			fmt.Sprintf("%.2f", row.Throughput),
			fmt.Sprintf("%.2f", row.Throughput/bestThp[row.Workflow]))
	}
	return t.String()
}

// Get returns the cell for (workflow, system).
func (r Fig6Result) Get(workflow, system string) (Fig6Row, bool) {
	for _, row := range r.Rows {
		if row.Workflow == workflow && row.System == system {
			return row, true
		}
	}
	return Fig6Row{}, false
}
