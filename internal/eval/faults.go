package eval

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"pie"
	"pie/apps"
	"pie/internal/cluster"
	"pie/internal/metrics"
	"pie/internal/sim"
)

// Fault-tolerance chaos experiment (beyond the paper): a mixed-priority
// closed-loop workload runs twice on an 8-replica cluster — once
// undisturbed, once with faultKills replicas crash-stopped mid-workload
// while the health monitor, launch retry, and saturation shedding are
// armed. The claims under test:
//
//  1. Recovery: both crashes are detected and the stranded in-flight
//     launches are requeued onto survivors (or fail typed) — nothing
//     hangs, and no KV pages leak on the survivors.
//  2. Graceful degradation: high-priority goodput holds (>= 80% of the
//     no-fault leg) while best-effort launches absorb the capacity loss
//     through shedding.
//  3. Determinism: the faulted run is byte-identical under the same seed,
//     crashes included.

// Chaos workload shape.
const (
	faultReplicas  = 8
	faultKills     = 2
	faultHPConc    = 24 // high-priority closed-loop clients
	faultBEConc    = 8  // best-effort closed-loop clients
	faultMaxTokens = 16
)

// faultRetry is the high-priority launch retry policy: survive replica
// death with capped, jittered backoff inside a hard budget.
var faultRetry = pie.RetryPolicy{
	MaxAttempts: 4,
	BaseBackoff: 2 * time.Millisecond,
	MaxBackoff:  20 * time.Millisecond,
	Budget:      200 * time.Millisecond,
}

// FaultLeg is one measured run of the chaos workload.
type FaultLeg struct {
	HPDone    int // high-priority launches completed
	HPFailed  int // high-priority launches that failed typed
	BEDone    int // best-effort launches completed
	BEShed    int // best-effort launches rejected with ErrOverloaded
	BEFailed  int // best-effort launches that failed typed (replica loss)
	Tokens    int
	Makespan  time.Duration
	HPGoodput float64 // completed high-priority launches per second

	// Engine fault counters (all zero on the baseline leg).
	ReplicasLost int
	Replacements int
	Requeues     int
	Retries      int
	Sheds        int
	DetectTime   time.Duration // cumulative crash -> declared-dead latency

	// LeakedPages sums KV pages still allocated on surviving replicas
	// after the workload drains; recovery must leave it at zero.
	LeakedPages int

	PerReplica []metrics.ReplicaStats
}

// FaultsResult holds both legs plus the headline degradation ratio.
type FaultsResult struct {
	Replicas int
	Killed   int
	Baseline FaultLeg
	Faulted  FaultLeg
	// GoodputRetained is faulted HP goodput over baseline HP goodput.
	GoodputRetained float64
}

// FaultsSweep runs the chaos experiment: baseline and faulted legs on
// independent engines (same seed), fanned out across workers.
func FaultsSweep(o Options) FaultsResult {
	out := FaultsResult{Replicas: faultReplicas, Killed: faultKills}
	parallelFor(2, func(i int) {
		if i == 0 {
			out.Baseline = runFaultLeg(o, false)
		} else {
			out.Faulted = runFaultLeg(o, true)
		}
	})
	if out.Baseline.HPGoodput > 0 {
		out.GoodputRetained = out.Faulted.HPGoodput / out.Baseline.HPGoodput
	}
	return out
}

// faultPlan schedules the crash-stops mid-workload: the quick workload
// runs a few hundred virtual milliseconds, the full one several times
// that, so the kill times scale with the load.
func faultPlan(o Options) pie.FaultPlan {
	at := func(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }
	first := at(o.scale(800, 400))
	gap := at(o.scale(250, 150))
	var plan pie.FaultPlan
	for k := 0; k < faultKills; k++ {
		plan.Events = append(plan.Events, pie.FaultEvent{
			At:      first + time.Duration(k)*gap,
			Replica: k + 1, // replica 0 stays up: the cluster keeps a quorum
			Kind:    pie.FaultCrash,
		})
	}
	return plan
}

// runFaultLeg drives the mixed-priority workload once.
func runFaultLeg(o Options, faulted bool) FaultLeg {
	hpTotal := o.scale(240, 96)
	beTotal := o.scale(120, 48)
	e := newPieEngine(o.seed(), func(c *pie.Config) {
		c.Replicas = faultReplicas
		c.Placement = pie.PlaceLeastLoaded
		if faulted {
			c.Health = pie.HealthConfig{
				Enabled:      true,
				Interval:     2 * time.Millisecond,
				SuspectAfter: 6 * time.Millisecond,
				DeadAfter:    15 * time.Millisecond,
				HangTimeout:  50 * time.Millisecond,
			}
			// QueueDepth sits just above the healthy-cluster steady state
			// (~4 outstanding calls per replica with 32 clients on 8
			// replicas), so shedding engages only while the cluster is
			// degraded to 6 survivors.
			c.Shed = pie.ShedConfig{Enabled: true, KVWatermark: 0.9, QueueDepth: 4.5}
			c.Faults = faultPlan(o)
		}
	})
	params := marshalParams(apps.CompletionParams{
		Prompt:    "fault tolerance probe request",
		MaxTokens: faultMaxTokens,
	})
	var leg FaultLeg
	e.Go("loadgen", func() {
		// Warmup populates the binary cache before any fault fires.
		if h, err := e.Launch(pie.Spec("text_completion", params)); err == nil {
			_ = h.Wait()
		}
		start := e.Now()
		g := sim.NewGroup(e.Clock())
		hpQueue := sim.NewMailbox[int](e.Clock())
		beQueue := sim.NewMailbox[int](e.Clock())
		for t := 0; t < hpTotal; t++ {
			hpQueue.Send(t)
		}
		for t := 0; t < beTotal; t++ {
			beQueue.Send(t)
		}
		for w := 0; w < faultHPConc; w++ {
			g.Go("hp-client", func() {
				for {
					if _, ok := hpQueue.TryRecv(); !ok {
						return
					}
					spec := pie.Spec("text_completion", params)
					spec.Retry = faultRetry
					h, err := e.Launch(spec)
					if err == nil {
						err = h.Wait()
					}
					if err != nil {
						leg.HPFailed++
						continue
					}
					_, _, tok := h.Stats()
					leg.Tokens += tok
					leg.HPDone++
				}
			})
		}
		for w := 0; w < faultBEConc; w++ {
			g.Go("be-client", func() {
				for {
					if _, ok := beQueue.TryRecv(); !ok {
						return
					}
					spec := pie.Spec("text_completion", params)
					spec.Priority = -1
					h, err := e.Launch(spec)
					switch {
					case err == nil:
					case errors.Is(err, pie.ErrOverloaded):
						leg.BEShed++
						continue
					default:
						leg.BEFailed++
						continue
					}
					if err := h.Wait(); err != nil {
						leg.BEFailed++
						continue
					}
					_, _, tok := h.Stats()
					leg.Tokens += tok
					leg.BEDone++
				}
			})
		}
		g.Wait()
		leg.Makespan = e.Now() - start
	})
	if err := e.Run(); err != nil {
		panic(fmt.Sprintf("eval: fault leg run: %v", err))
	}
	if leg.Makespan > 0 {
		leg.HPGoodput = float64(leg.HPDone) / leg.Makespan.Seconds()
	}
	st := e.Stats()
	leg.ReplicasLost = st.ReplicasLost
	leg.Replacements = st.Replacements
	leg.Requeues = st.Requeues
	leg.Retries = st.Retries
	leg.Sheds = st.Sheds
	leg.DetectTime = st.DetectTime
	for _, r := range e.Cluster().Replicas() {
		if r.Health() == cluster.HealthDead {
			continue
		}
		inUse, _ := r.Ctl.KVLoad()
		leg.LeakedPages += inUse
	}
	leg.PerReplica = e.ReplicaStats()
	return leg
}

// Table renders the experiment in paper style.
func (r FaultsResult) Table() string {
	var b strings.Builder
	t := &metrics.Table{
		Title: fmt.Sprintf("Faults: chaos workload, %d replicas, %d crash-stopped mid-run (high-priority retries, best-effort shedding)",
			r.Replicas, r.Killed),
		Header: []string{"leg", "hp done/failed", "hp goodput", "be done/shed/failed", "makespan", "requeues", "retries", "lost pages"},
	}
	row := func(name string, l FaultLeg) {
		t.AddRow(name,
			fmt.Sprintf("%d/%d", l.HPDone, l.HPFailed),
			fmt.Sprintf("%.1f/s", l.HPGoodput),
			fmt.Sprintf("%d/%d/%d", l.BEDone, l.BEShed, l.BEFailed),
			metrics.Ms(l.Makespan),
			fmt.Sprint(l.Requeues), fmt.Sprint(l.Retries), fmt.Sprint(l.LeakedPages))
	}
	row("baseline", r.Baseline)
	row("faulted", r.Faulted)
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nFaults: %d replicas lost (detected in %v total), %d spares activated, "+
		"goodput retained %.0f%%\n",
		r.Faulted.ReplicasLost, r.Faulted.DetectTime.Round(time.Microsecond),
		r.Faulted.Replacements, r.GoodputRetained*100)
	b.WriteString(metrics.ReplicaTable(r.Faulted.PerReplica).String())
	return b.String()
}
