package eval

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"pie"
	"pie/inferlet"
	"pie/internal/metrics"
	"pie/internal/sim"
)

// Offload experiment (beyond the paper's evaluation; motivated by "Pie:
// Pooling CPU Memory for LLM Inference" — see PAPERS.md): how much
// effective KV capacity does the host-memory tier recover when the device
// page pool is oversubscribed, and what does the PCIe swap traffic cost
// in TTFT and end-to-end latency?
//
// Workload: agent-style inferlets ("kv_hold") that prefill a fixed page
// budget, go idle for a think period (their pages turn cold and become
// offload victims), then decode against the full context (faulting
// offloaded pages back in — the prefetch-on-Forward path). A sweep over
// oversubscription levels N× runs each level twice: device-only (the
// paper's engine; contention resolves by FCFS termination) and with a
// host tier equal to the device capacity (2× effective pages).
//
// Everything runs on virtual clocks: same-seed runs produce byte-identical
// result documents (TestOffloadSweepDeterministic enforces this).

// Offload sweep shape: a small device pool (overriding the GPU memory
// geometry) makes oversubscription cheap to reach.
const (
	offloadDevPages  = 64 // device page capacity per replica (override)
	offloadAgentPgs  = 8  // KV pages each agent holds
	offloadThinkMS   = 60 // idle period between prefill and decode
	offloadDecode    = 8  // decode steps over the full context
	offloadHostRatio = 1.0
)

// offloadOversubs are the swept oversubscription levels: peak concurrent
// page demand as a multiple of the device capacity.
var offloadOversubs = []float64{1, 1.5, 2, 3}

// kvHoldParams configures the kv_hold workload inferlet.
type kvHoldParams struct {
	Pages   int `json:"pages"`
	ThinkMS int `json:"think_ms"`
	Decode  int `json:"decode"`
	Pri     int `json:"priority"`
}

// kvHoldProgram is the offload workload: prefill a page budget, think,
// then decode reading every page. The think window is where cold pages
// get offloaded by other agents' allocations.
func kvHoldProgram() pie.Program {
	return pie.Program{
		Name:       "kv_hold",
		BinarySize: 64 << 10,
		Run: func(s pie.Session) error {
			var p kvHoldParams
			if err := unmarshalArg(s, &p); err != nil {
				return err
			}
			q, err := s.Open("llama-1b", inferlet.WithPriority(p.Pri))
			if err != nil {
				return err
			}
			al, err := q.Alloc()
			if err != nil {
				return err
			}
			fz, err := q.Fused()
			if err != nil {
				return err
			}
			ps := q.Model().PageSize
			pages, err := al.Pages(p.Pages)
			if err != nil {
				return err
			}
			outs, err := al.Embeds(1)
			if err != nil {
				return err
			}
			fill := p.Pages*ps - p.Decode // leave room for decode appends
			if fill < 1 {
				fill = 1
			}
			tokens := make([]int, fill)
			positions := make([]int, fill)
			for i := range tokens {
				tokens[i] = 4 + (i*7)%1800
				positions[i] = i
			}
			f, err := fz.Run(
				inferlet.InlineTokens(tokens, positions),
				inferlet.AppendKv(pages...),
				inferlet.Output(outs...),
			)
			if err != nil {
				return err
			}
			toks, err := f.Get()
			if err != nil {
				return err
			}
			s.Send("first-token")
			s.ReportOutputTokens(1)

			// Think: the context sits idle and may be offloaded to host.
			s.Sleep(time.Duration(p.ThinkMS) * time.Millisecond)

			last, pos := toks[0], fill
			for i := 0; i < p.Decode; i++ {
				f, err := fz.Run(
					inferlet.ReadKv(pages...), // faults offloaded pages back in
					inferlet.InlineTokens([]int{last}, []int{pos}),
					inferlet.AppendKv(pages...),
					inferlet.Output(outs...),
				)
				if err != nil {
					return err
				}
				toks, err := f.Get()
				if err != nil {
					return err
				}
				last, pos = toks[0], pos+1
				s.ReportOutputTokens(1)
			}
			s.Send("done")
			return q.Close()
		},
	}
}

// unmarshalArg decodes the first launch argument into v.
func unmarshalArg(s pie.Session, v interface{}) error {
	args := s.GetArg()
	if len(args) == 0 || args[0] == "" {
		return fmt.Errorf("kv_hold: missing params")
	}
	return json.Unmarshal([]byte(args[0]), v)
}

// OffloadPoint is one measured (oversubscription, host-ratio) leg.
type OffloadPoint struct {
	Oversub      float64
	HostRatio    float64
	Agents       int // concurrent agents (peak page demand / pages per agent)
	Done         int
	Failures     int
	Terminations int
	TTFT         time.Duration // launch -> first token, mean
	MeanLatency  time.Duration // launch -> completion, mean
	Makespan     time.Duration
	SwapInPages  int
	SwapOutPages int
	SwapTime     time.Duration
	PeakPages    int     // high-water mark of live pages, both tiers
	EffCapacity  float64 // PeakPages / device capacity
}

// OffloadResult holds the full sweep.
type OffloadResult struct {
	DevicePages   int
	PagesPerAgent int
	Points        []OffloadPoint // oversub-major, device-only leg before offload leg
}

// Get returns the point for an oversubscription level and host ratio.
func (r OffloadResult) Get(oversub, ratio float64) (OffloadPoint, bool) {
	for _, p := range r.Points {
		if p.Oversub == oversub && p.HostRatio == ratio {
			return p, true
		}
	}
	return OffloadPoint{}, false
}

// OffloadSweep runs the tiered-KV experiment. Every leg builds an
// independent single-replica engine on a fresh virtual clock, so legs fan
// out across workers with results in index-addressed slots.
func OffloadSweep(o Options) OffloadResult {
	out := OffloadResult{DevicePages: offloadDevPages, PagesPerAgent: offloadAgentPgs}
	ratios := []float64{0, offloadHostRatio}
	out.Points = make([]OffloadPoint, len(offloadOversubs)*len(ratios))
	rounds := o.scale(4, 2)
	parallelFor(len(out.Points), func(i int) {
		ov := offloadOversubs[i/len(ratios)]
		ratio := ratios[i%len(ratios)]
		out.Points[i] = runOffloadLeg(o, ov, ratio, rounds)
	})
	return out
}

// runOffloadLeg drives one closed-loop leg: `agents` concurrent kv_hold
// instances, rounds tasks each, with termination-retry accounting.
func runOffloadLeg(o Options, oversub, ratio float64, rounds int) OffloadPoint {
	agents := int(oversub * float64(offloadDevPages) / float64(offloadAgentPgs))
	total := agents * rounds
	e := newPieEngine(o.seed(), func(c *pie.Config) {
		c.KVPagesOverride = offloadDevPages
		c.HostKVRatio = ratio
	})
	e.MustRegister(kvHoldProgram())
	params := marshalParams(kvHoldParams{Pages: offloadAgentPgs, ThinkMS: offloadThinkMS, Decode: offloadDecode})
	p := OffloadPoint{Oversub: oversub, HostRatio: ratio, Agents: agents}
	var ttftSum, latSum time.Duration
	var ttftN int
	e.Go("loadgen", func() {
		// Warmup populates the binary cache so steady-state numbers
		// exclude cold JIT.
		if h, err := e.Launch(pie.Spec("kv_hold", params)); err == nil {
			_ = h.Wait()
		}
		start := e.Now()
		g := sim.NewGroup(e.Clock())
		queue := sim.NewMailbox[int](e.Clock())
		for t := 0; t < total; t++ {
			queue.Send(t)
		}
		for w := 0; w < agents; w++ {
			g.Go("agent", func() {
				for {
					if _, ok := queue.TryRecv(); !ok {
						return
					}
					for attempt := 0; attempt < 4; attempt++ {
						t0 := e.Now()
						h, err := e.Launch(pie.Spec("kv_hold", params))
						if err != nil {
							p.Failures++
							continue
						}
						var tFirst time.Duration
						if _, err := h.Recv().Get(); err == nil {
							tFirst = e.Now() - t0
						}
						if err := h.Wait(); err != nil {
							p.Failures++
							continue
						}
						if tFirst > 0 {
							ttftSum += tFirst
							ttftN++
						}
						latSum += e.Now() - t0
						p.Done++
						break
					}
				}
			})
		}
		g.Wait()
		p.Makespan = e.Now() - start
	})
	if err := e.Run(); err != nil {
		panic(fmt.Sprintf("eval: offload leg run: %v", err))
	}
	st := e.Stats()
	p.Terminations = st.Terminations
	p.SwapInPages = st.SwapInPages
	p.SwapOutPages = st.SwapOutPages
	p.SwapTime = st.SwapTime
	p.PeakPages = st.KVPeakPages
	p.EffCapacity = float64(p.PeakPages) / float64(offloadDevPages)
	if ttftN > 0 {
		p.TTFT = ttftSum / time.Duration(ttftN)
	}
	if p.Done > 0 {
		p.MeanLatency = latSum / time.Duration(p.Done)
	}
	return p
}

// Table renders the experiment in paper style.
func (r OffloadResult) Table() string {
	var b strings.Builder
	t := &metrics.Table{
		Title: fmt.Sprintf("Tiered KV cache: host-memory offload under oversubscription "+
			"(device pool %d pages, %d pages/agent, host ratio %.1f)",
			r.DevicePages, r.PagesPerAgent, offloadHostRatio),
		Header: []string{"oversub", "host", "agents", "done", "fail", "terms",
			"peak pages", "eff cap", "ttft", "mean lat", "swaps in/out", "swap time"},
	}
	for _, p := range r.Points {
		host := "off"
		if p.HostRatio > 0 {
			host = fmt.Sprintf("%.1fx", p.HostRatio)
		}
		t.AddRow(fmt.Sprintf("%.1fx", p.Oversub), host, fmt.Sprint(p.Agents),
			fmt.Sprint(p.Done), fmt.Sprint(p.Failures), fmt.Sprint(p.Terminations),
			fmt.Sprint(p.PeakPages), fmt.Sprintf("%.2fx", p.EffCapacity),
			metrics.Ms(p.TTFT), metrics.Ms(p.MeanLatency),
			fmt.Sprintf("%d/%d", p.SwapInPages, p.SwapOutPages), metrics.Ms(p.SwapTime))
	}
	b.WriteString(t.String())
	return b.String()
}
