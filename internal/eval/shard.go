package eval

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"pie/apps"
	"pie/internal/cluster"
	"pie/internal/sim"
)

// Sharded-core scaling sweep (beyond the paper): the same closed-loop
// completion workload replayed on sharded fleets of growing size — one
// event loop per replica behind the conservative time-window barrier —
// up to 128 replicas, far past what the shared-clock cluster can turn
// around. Two claims under test:
//
//   - capability: a 100+ replica fleet simulates to completion with every
//     session accounted for;
//   - parallel determinism: the largest leg replayed at GOMAXPROCS=1
//     produces a byte-identical transcript to the parallel run, while the
//     parallel run's events/sec scales with cores (wall-clock only —
//     never part of the gated headline).

// ShardPoint is one fleet size's outcome.
type ShardPoint struct {
	Replicas    int
	Sessions    int
	Completions int
	Failures    int
	Requeues    int
	AvgTTFT     time.Duration
	AvgLatency  time.Duration
	Makespan    time.Duration // virtual
	Events      uint64
	WallMS      float64
	EventsPS    float64
}

// ShardResult is the sweep outcome plus the parallelism probe at the
// largest leg.
type ShardResult struct {
	Sweep []ShardPoint

	// Parallelism probe at the largest leg: the serial rerun must match
	// the parallel transcript byte for byte.
	MaxReplicas   int
	Deterministic bool
	SerialEPS     float64 // events/sec at GOMAXPROCS=1 (wall-clock)
	ParallelEPS   float64 // events/sec at default GOMAXPROCS (wall-clock)
	SpeedupX      float64
	GoMaxProcs    int

	transcripts []string // per-leg, deterministic (no wall-clock content)
}

// Summary concatenates every leg's deterministic transcript — the
// byte-identity witness used by the GOMAXPROCS determinism tests.
func (r *ShardResult) Summary() string { return strings.Join(r.transcripts, "\n====\n") }

// runShardLeg replays the workload on a fleet of `replicas` replicas and
// returns the deterministic transcript plus the measured point.
func runShardLeg(seed uint64, replicas, clients, perClient int) (string, ShardPoint) {
	sc := cluster.NewSharded(cluster.ShardedConfig{Seed: seed, Replicas: replicas})
	if err := sc.Register(apps.All()...); err != nil {
		panic(fmt.Sprintf("eval: shard sweep register: %v", err))
	}
	var lines []string
	for c := 0; c < clients; c++ {
		c := c
		sc.Go(fmt.Sprintf("client-%d", c), func() {
			rng := sim.NewRNG(seed ^ (uint64(c+1) * 0x5851F42D4C957F2D))
			for i := 0; i < perClient; i++ {
				sc.Sleep(time.Duration(rng.Intn(3000)) * time.Microsecond)
				params := fmt.Sprintf(`{"prompt":%q,"max_tokens":%d}`,
					strings.Repeat("fleet scaling probe ", 1+rng.Intn(4)), 4+rng.Intn(8))
				res, _ := sc.Submit("text_completion", params).Get()
				lines = append(lines, fmt.Sprintf("c%d#%d err=%v rep=%d tok=%d lat=%v",
					c, i, res.Err, res.Replica, res.OutputTokens, res.Latency))
			}
		})
	}
	start := time.Now()
	if err := sc.Run(); err != nil {
		panic(fmt.Sprintf("eval: shard sweep run (%d replicas): %v", replicas, err))
	}
	wall := time.Since(start)
	st := sc.Stats()
	p := ShardPoint{
		Replicas:    replicas,
		Sessions:    st.Launches,
		Completions: st.Completions,
		Failures:    st.Failures,
		Requeues:    st.Requeues,
		AvgTTFT:     st.AvgTTFT,
		AvgLatency:  st.AvgLatency,
		Makespan:    sc.Now(),
		Events:      st.Events,
		WallMS:      float64(wall) / float64(time.Millisecond),
		EventsPS:    float64(st.Events) / wall.Seconds(),
	}
	transcript := strings.Join(lines, "\n") +
		fmt.Sprintf("\nreplicas=%d sessions=%d done=%d fail=%d rq=%d events=%d makespan=%v",
			p.Replicas, p.Sessions, p.Completions, p.Failures, p.Requeues, p.Events, p.Makespan)
	return transcript, p
}

// ShardSweep runs the fleet-size legs, then replays the largest leg at
// GOMAXPROCS=1 for the determinism + speedup probe.
func ShardSweep(o Options) *ShardResult {
	legs := []int{1, 4, 16, 64, 128}
	if o.Quick {
		legs = []int{1, 8, 32, 128}
	}
	return shardSweep(o, legs)
}

func shardSweep(o Options, legs []int) *ShardResult {
	perClient := o.scale(4, 2)
	r := &ShardResult{GoMaxProcs: runtime.GOMAXPROCS(0)}
	var lastTranscript string
	for _, n := range legs {
		tr, p := runShardLeg(o.seed(), n, n, perClient)
		r.Sweep = append(r.Sweep, p)
		r.transcripts = append(r.transcripts, tr)
		lastTranscript = tr
	}
	last := r.Sweep[len(r.Sweep)-1]
	r.MaxReplicas = last.Replicas
	r.ParallelEPS = last.EventsPS

	prev := runtime.GOMAXPROCS(1)
	serialTr, serialP := runShardLeg(o.seed(), last.Replicas, last.Replicas, perClient)
	runtime.GOMAXPROCS(prev)
	r.SerialEPS = serialP.EventsPS
	r.Deterministic = serialTr == lastTranscript
	if r.SerialEPS > 0 {
		r.SpeedupX = r.ParallelEPS / r.SerialEPS
	}
	return r
}

// Table renders the sweep in pie-bench style.
func (r *ShardResult) Table() string {
	var b strings.Builder
	b.WriteString("Sharded core scaling (one event loop per replica, conservative window barrier)\n")
	fmt.Fprintf(&b, "%-9s %9s %6s %5s %4s %11s %11s %11s %13s\n",
		"replicas", "sessions", "done", "fail", "rq", "avg-ttft", "avg-lat", "events", "events/sec")
	for _, p := range r.Sweep {
		fmt.Fprintf(&b, "%-9d %9d %6d %5d %4d %11v %11v %11d %13.0f\n",
			p.Replicas, p.Sessions, p.Completions, p.Failures, p.Requeues,
			p.AvgTTFT.Round(time.Microsecond), p.AvgLatency.Round(time.Microsecond),
			p.Events, p.EventsPS)
	}
	det := "BYTE-IDENTICAL"
	if !r.Deterministic {
		det = "DIVERGED (bug!)"
	}
	fmt.Fprintf(&b, "parallel probe @%d replicas: gomaxprocs=%d %.0f ev/s vs serial %.0f ev/s (%.2fx) — transcripts %s\n",
		r.MaxReplicas, r.GoMaxProcs, r.ParallelEPS, r.SerialEPS, r.SpeedupX, det)
	return b.String()
}
