package core

import (
	"sort"
	"time"
)

// ArtifactConfig sizes a replica's warm-artifact cache. CapacityBytes 0
// takes the device spec's default; negative disables eviction (unbounded).
type ArtifactConfig struct {
	CapacityBytes int64
}

// artifactCache is the control layer's warm-artifact store: the set of
// compiled program binaries resident on this replica. The paper's ILM
// keeps JIT-compiled Wasm modules cached so repeat launches skip the
// upload + compile pipeline (Fig. 9); a production replica bounds that
// cache, so cold programs evict the least-recently-launched artifact.
type artifactCache struct {
	capacity int64 // bytes; <0 means unbounded
	used     int64
	entries  map[string]*artifactEntry // key: name@version
	seq      uint64                    // recency stamp source

	// Stats.
	hits, misses, evictions int
}

type artifactEntry struct {
	size int64
	last uint64 // recency stamp of the latest launch
}

func newArtifactCache(capacity int64) *artifactCache {
	return &artifactCache{capacity: capacity, entries: make(map[string]*artifactEntry)}
}

// has probes residency without touching recency (placement probes).
func (c *artifactCache) has(key string) bool {
	_, ok := c.entries[key]
	return ok
}

// admit records a launch of artifact key with the given binary size.
// paidCold says whether the launch actually paid the upload + JIT
// pipeline — the caller decided that before compiling, so concurrent
// launches racing a still-compiling artifact count as misses even
// though the first one's admit has landed by the time they arrive. A
// resident artifact refreshes recency; a missing one is admitted,
// evicting least-recently-launched artifacts until it fits; an artifact
// larger than the whole cache serves uncached (every launch of it stays
// cold).
func (c *artifactCache) admit(key string, size int64, paidCold bool) {
	c.seq++
	if paidCold {
		c.misses++
	} else {
		c.hits++
	}
	if e, ok := c.entries[key]; ok {
		e.last = c.seq
		return
	}
	if size < 0 {
		size = 0
	}
	if c.capacity >= 0 && size > c.capacity {
		return // uncacheable: exceeds the whole cache
	}
	for c.capacity >= 0 && c.used+size > c.capacity && len(c.entries) > 0 {
		c.evictLRU()
	}
	c.entries[key] = &artifactEntry{size: size, last: c.seq}
	c.used += size
}

// evictLRU drops the least-recently-launched artifact.
func (c *artifactCache) evictLRU() {
	var victim string
	var oldest uint64
	for key, e := range c.entries {
		if victim == "" || e.last < oldest || (e.last == oldest && key < victim) {
			victim, oldest = key, e.last
		}
	}
	c.used -= c.entries[victim].size
	delete(c.entries, victim)
	c.evictions++
}

// keys lists resident artifacts in sorted order (tests, listings).
func (c *artifactCache) keys() []string {
	out := make([]string, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ArtifactStats summarizes a replica's warm-artifact cache.
type ArtifactStats struct {
	Resident  int   // artifacts currently cached
	UsedBytes int64 // bytes of cached binaries
	Hits      int   // warm launches served from the cache
	Misses    int   // cold launches that paid upload + JIT
	Evictions int   // artifacts displaced by capacity pressure
}

// --- Controller surface -----------------------------------------------------

// HasArtifact reports whether the program artifact (name@version) is warm
// on this replica, without disturbing recency. The cluster's
// program-affinity placement probes replicas with it.
func (ctl *Controller) HasArtifact(key string) bool { return ctl.artifacts.has(key) }

// AdmitArtifact records a launch of the artifact on this replica. cold
// says whether the launch paid the upload + JIT pipeline (the caller
// checked HasArtifact before compiling and charged ArtifactCost).
func (ctl *Controller) AdmitArtifact(key string, size int, cold bool) {
	ctl.artifacts.admit(key, int64(size), cold)
}

// ArtifactCost prices the cold-launch deployment pipeline (upload + JIT)
// for a binary of the given size on this replica's device class.
func (ctl *Controller) ArtifactCost(binaryBytes int) time.Duration {
	return ctl.models[ctl.order[0]].Spec.ArtifactCost(binaryBytes)
}

// ArtifactStats snapshots the warm-artifact cache counters.
func (ctl *Controller) ArtifactStats() ArtifactStats {
	return ArtifactStats{
		Resident:  len(ctl.artifacts.entries),
		UsedBytes: ctl.artifacts.used,
		Hits:      ctl.artifacts.hits,
		Misses:    ctl.artifacts.misses,
		Evictions: ctl.artifacts.evictions,
	}
}

// Artifacts lists the warm artifact keys on this replica, sorted.
func (ctl *Controller) Artifacts() []string { return ctl.artifacts.keys() }
