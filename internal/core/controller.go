package core

import (
	"fmt"
	"sort"
	"time"

	"pie/api"
	"pie/internal/infer"
	"pie/internal/model"
	"pie/internal/sim"
)

// Controller is the heart of the control layer: it owns resource pools,
// virtual address mappings, command queues, the export registry, and the
// batch scheduler, and it routes completed batches back to inferlets.
type Controller struct {
	clock     *sim.Clock
	backend   *infer.Backend
	models    map[string]*infer.ModelRuntime
	order     []string
	pagePool  map[string]*tieredPool
	embPool   map[string]*pool
	exports   map[string]*exportEntry
	offload   OffloadConfig
	artifacts *artifactCache

	instances map[uint64]*Instance
	instSeq   uint64
	queueSeq  uint64
	callSeq   uint64

	sched *Scheduler

	// Outstanding inference-layer work, maintained incrementally on
	// enqueue/complete/close. The cluster router's least-loaded placement
	// and the autoscaler's queue-depth signal read these; control-side ops
	// (dealloc, sync) never count.
	outstandingCalls   int
	outstandingTokens  int
	outstandingPrefill int // fresh tokens of admitted bulk-prefill forwards

	// latencyFn, when set, observes every completed forward pass: the
	// instance's service class, whether the sample is a TTFT (first forward
	// of the instance) or an ITL (gap since its previous forward), and the
	// measured duration. The cluster's SLO tracker installs it.
	latencyFn func(class string, ttft bool, d time.Duration)

	// firstTokFn, when set, observes each instance's first completed
	// forward pass. The cluster installs it on prefill-role replicas to
	// mark sessions ready for KV handoff to decode capacity.
	firstTokFn func(inst *Instance)

	// Stats.
	Terminations int
	Aborts       int           // instances cancelled via their launch handle
	Downgrades   int           // degraded sessions moved to a cheaper model variant
	xferTime     time.Duration // cumulative PCIe swap time charged to callers
}

// NewController wires a controller to its backend and models. The offload
// config sizes each model's host-memory KV tier; the zero value keeps the
// paper's device-only pools.
func NewController(clock *sim.Clock, backend *infer.Backend, models []*infer.ModelRuntime, cfg SchedConfig, offload OffloadConfig, artifacts ArtifactConfig) *Controller {
	ctl := &Controller{
		clock:     clock,
		backend:   backend,
		models:    make(map[string]*infer.ModelRuntime),
		pagePool:  make(map[string]*tieredPool),
		embPool:   make(map[string]*pool),
		exports:   make(map[string]*exportEntry),
		instances: make(map[uint64]*Instance),
		offload:   offload,
	}
	artCap := artifacts.CapacityBytes
	if artCap == 0 && len(models) > 0 {
		artCap = models[0].Spec.ArtifactCacheBytes
	}
	ctl.artifacts = newArtifactCache(artCap)
	for _, rt := range models {
		name := string(rt.Info.ID)
		ctl.models[name] = rt
		ctl.order = append(ctl.order, name)
		hostCap := int(offload.HostRatio * float64(rt.PageCapacity))
		if hostCap < 0 {
			hostCap = 0 // a negative ratio must not shrink total capacity below the device tier
		}
		ctl.pagePool[name] = newTieredPool(rt.PageCapacity, hostCap, evictorFor(offload.Eviction))
		ctl.embPool[name] = newPool(rt.EmbedCapacity)
	}
	ctl.sched = newScheduler(clock, ctl, cfg)
	backend.SetCompleteFunc(ctl.onBatchComplete)
	backend.Device.SetIdleFunc(ctl.sched.onDeviceIdle)
	return ctl
}

// Scheduler exposes the batch scheduler (for tests and stats).
func (ctl *Controller) Scheduler() *Scheduler { return ctl.sched }

// SetLatencyObserver installs the per-forward completion observer feeding
// the cluster's per-class TTFT/ITL attainment tracker. Pass nil to remove.
func (ctl *Controller) SetLatencyObserver(fn func(class string, ttft bool, d time.Duration)) {
	ctl.latencyFn = fn
}

// SetFirstTokenObserver installs the per-instance first-forward observer:
// fn runs once per instance, when its first forward pass completes. The
// cluster's prefill/decode handoff layer installs it on prefill-role
// replicas. Pass nil to remove.
func (ctl *Controller) SetFirstTokenObserver(fn func(inst *Instance)) {
	ctl.firstTokFn = fn
}

// chargeControl prices a control-layer-handled API call in the caller's
// process and bumps instrumentation.
func (ctl *Controller) chargeControl(inst *Instance) {
	inst.ControlCalls++
	ctl.clock.Sleep(controlCallBase + time.Duration(len(ctl.instances))*controlCallPerInst)
}

// --- Instance lifecycle -------------------------------------------------

// RegisterInstance creates the control-layer state for a new inferlet.
// onKill runs when the FCFS contention policy terminates the instance.
func (ctl *Controller) RegisterInstance(name string, proc *sim.Proc, onKill func(error)) *Instance {
	ctl.instSeq++
	inst := &Instance{
		ID:         ctl.instSeq,
		Name:       name,
		CreatedSeq: ctl.instSeq,
		Proc:       proc,
		vEmbeds:    make(map[api.Embed]resRef),
		vPages:     make(map[api.KvPage]resRef),
		queues:     make(map[api.Queue]*cmdQueue),
		onKill:     onKill,
		launchedAt: ctl.clock.Now(),
	}
	ctl.instances[inst.ID] = inst
	return inst
}

// ReleaseInstance frees every resource the instance holds: queues are
// closed (pending calls fail), virtual mappings are dropped, and physical
// references are released. Idempotent.
func (ctl *Controller) ReleaseInstance(inst *Instance) {
	if inst.dead {
		return
	}
	inst.dead = true
	for _, q := range inst.queues {
		q.closed = true
		for _, c := range q.pending {
			ctl.retireCall(c)
			ctl.unpinCall(c)
			if c.Op == infer.OpDealloc && c.ControlFn != nil {
				// Queue-ordered deallocs already removed their handles
				// from the instance view; the deferred physical free must
				// still run or the slots leak (abort mid-decode lands
				// here routinely).
				c.ControlFn()
				continue
			}
			c.Err = api.ErrTerminated
			failCall(c)
		}
		q.pending = nil
		ctl.sched.forgetQueue(q)
	}
	for _, ref := range inst.vEmbeds {
		ctl.embPool[ref.model].release(ref.phys)
	}
	for _, ref := range inst.vPages {
		ctl.pagePool[ref.model].release(ref.phys)
	}
	inst.vEmbeds = make(map[api.Embed]resRef)
	inst.vPages = make(map[api.KvPage]resRef)
	delete(ctl.instances, inst.ID)
}

// failCall resolves every completion future a call carries.
func failCall(c *infer.Call) {
	if c.Done != nil && !c.Done.Done() {
		sim.Fire(c.Done)
	}
	if c.SyncFut != nil && !c.SyncFut.Done() {
		sim.Fire(c.SyncFut)
	}
	if c.DistFut != nil && !c.DistFut.Done() {
		c.DistFut.Fail(c.Err)
	}
	if c.TokFut != nil && !c.TokFut.Done() {
		c.TokFut.Fail(c.Err)
	}
	if c.TextFut != nil && !c.TextFut.Done() {
		c.TextFut.Fail(c.Err)
	}
	if c.VocabFut != nil && !c.VocabFut.Done() {
		c.VocabFut.Fail(c.Err)
	}
	if c.FusedTok != nil && !c.FusedTok.Done() {
		c.FusedTok.Fail(c.Err)
	}
}

// ensurePages enforces the resource-contention policy (§5.2, §8): when a
// KvPage allocation cannot be satisfied, the most recently created live
// inferlets are terminated until enough pages are free. If the requester
// itself is the newest, it is the victim and receives ErrTerminated.
func (ctl *Controller) ensurePages(requester *Instance, modelName string, n int) error {
	p := ctl.pagePool[modelName]
	for p.available() < n {
		victim := ctl.newestInstance()
		if victim == nil {
			return api.ErrOutOfResources
		}
		ctl.Terminations++
		if victim == requester {
			ctl.terminate(victim, errTerminated(n, modelName))
			return errTerminated(n, modelName)
		}
		ctl.terminate(victim, errTerminated(n, modelName))
		if p.available() >= n {
			break
		}
	}
	return nil
}

func (ctl *Controller) newestInstance() *Instance {
	var newest *Instance
	for _, inst := range ctl.instances {
		if newest == nil || inst.CreatedSeq > newest.CreatedSeq {
			newest = inst
		}
	}
	return newest
}

func (ctl *Controller) terminate(inst *Instance, reason error) {
	onKill := inst.onKill
	ctl.ReleaseInstance(inst)
	if onKill != nil {
		onKill(reason)
	}
}

// AbortInstance cancels a live instance through its launch handle
// (Handle.Abort): queue-scoped reclamation runs exactly as for FCFS
// termination — pending calls fail, page pins drop, pages/embeds return
// to their pools, the export registry keeps its own references — and the
// inferlet process unwinds with the given reason. Idempotent: aborting a
// released instance is a no-op.
func (ctl *Controller) AbortInstance(inst *Instance, reason error) bool {
	if inst == nil || inst.dead {
		return false
	}
	ctl.Aborts++
	ctl.terminate(inst, reason)
	return true
}

// AbortInstanceByID aborts the live instance with the given ID; see
// AbortInstance. It reports whether an abort happened.
func (ctl *Controller) AbortInstanceByID(id uint64, reason error) bool {
	return ctl.AbortInstance(ctl.instances[id], reason)
}

// AbortAllInstances aborts every live instance with the given reason, in
// instance-ID order so same-seed runs unwind identically. The cluster
// health layer calls it when a replica is declared dead: every in-flight
// inferlet fails typed (api.ErrReplicaLost) instead of parking forever on
// a device that will never answer. Returns the number aborted.
func (ctl *Controller) AbortAllInstances(reason error) int {
	n := 0
	for _, id := range ctl.SortedInstanceIDs() {
		if ctl.AbortInstance(ctl.instances[id], reason) {
			n++
		}
	}
	return n
}

// DropExports declares every KV export on this controller lost — the
// registry's page references release and the names vanish — and reports
// how many exports and physical page references were dropped. Called when
// a replica dies: its cached context is unrecoverable, and affinity
// routing must stop finding it here.
func (ctl *Controller) DropExports() (exports, pages int) {
	names := make([]string, 0, len(ctl.exports))
	for name := range ctl.exports {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		entry := ctl.exports[name]
		for _, p := range entry.phys {
			ctl.pagePool[entry.model].release(p)
		}
		pages += len(entry.phys)
		delete(ctl.exports, name)
		exports++
	}
	return exports, pages
}

// KVLoad reports aggregate KV page occupancy across every model pool,
// both tiers. The cluster's saturation guard reads it to decide when to
// shed best-effort launches.
func (ctl *Controller) KVLoad() (inUse, capacity int) {
	for _, name := range ctl.order {
		p := ctl.pagePool[name]
		inUse += p.inUse()
		capacity += p.capacity()
	}
	return inUse, capacity
}

// Instances returns the number of live instances.
func (ctl *Controller) Instances() int { return len(ctl.instances) }

// --- Model discovery ----------------------------------------------------

// ModelInfos lists servable model descriptors in registration order,
// without charging any instance: the ILM validates program manifests
// against this catalog view at register and launch time.
func (ctl *Controller) ModelInfos() []api.ModelInfo {
	out := make([]api.ModelInfo, 0, len(ctl.order))
	for _, name := range ctl.order {
		out = append(out, ctl.models[name].Info)
	}
	return out
}

// Models lists servable models in registration order (available_models).
func (ctl *Controller) Models(inst *Instance) []api.ModelInfo {
	ctl.chargeControl(inst)
	out := make([]api.ModelInfo, 0, len(ctl.order))
	for _, name := range ctl.order {
		out = append(out, ctl.models[name].Info)
	}
	return out
}

// Traits reports a model's trait set (available_traits).
func (ctl *Controller) Traits(inst *Instance, m api.ModelID) ([]api.Trait, error) {
	ctl.chargeControl(inst)
	rt, ok := ctl.models[string(m)]
	if !ok {
		return nil, api.ErrNoSuchModel
	}
	return append([]api.Trait(nil), rt.Info.Traits...), nil
}

// --- Queues ---------------------------------------------------------------

// CreateQueue makes a command queue bound to a model (create_queue).
func (ctl *Controller) CreateQueue(inst *Instance, m api.ModelID) (api.Queue, error) {
	ctl.chargeControl(inst)
	rt, ok := ctl.models[string(m)]
	if !ok {
		return 0, api.ErrNoSuchModel
	}
	if inst.MaxQueues > 0 && len(inst.queues) >= inst.MaxQueues {
		return 0, fmt.Errorf("%w: manifest allows %d open queues", api.ErrLimitExceeded, inst.MaxQueues)
	}
	ctl.queueSeq++
	q := &cmdQueue{id: api.Queue(ctl.queueSeq), inst: inst, model: string(m), rt: rt,
		priority: inst.DefaultPriority}
	inst.queues[q.id] = q
	return q.id, nil
}

// SetQueuePriority hints the scheduler (set_queue_priority).
func (ctl *Controller) SetQueuePriority(inst *Instance, qid api.Queue, pri int) error {
	ctl.chargeControl(inst)
	q, err := ctl.queue(inst, qid)
	if err != nil {
		return err
	}
	q.priority = pri
	return nil
}

// Synchronize returns a signal that fires when every call enqueued on the
// queue before this point has completed (synchronize).
func (ctl *Controller) Synchronize(inst *Instance, qid api.Queue) (*sim.Signal, error) {
	ctl.chargeControl(inst)
	q, err := ctl.queue(inst, qid)
	if err != nil {
		return nil, err
	}
	if len(q.pending) == 0 && q.inflight == 0 {
		s := sim.NewSignal(ctl.clock)
		sim.Fire(s)
		return s, nil
	}
	c := &infer.Call{Op: infer.OpSync, SyncFut: sim.NewSignal(ctl.clock)}
	ctl.enqueue(q, c)
	return c.SyncFut, nil
}

func (ctl *Controller) queue(inst *Instance, qid api.Queue) (*cmdQueue, error) {
	q, ok := inst.queues[qid]
	if !ok || q.closed {
		return nil, api.ErrQueueClosed
	}
	return q, nil
}

// CloseQueue closes a command queue (close_queue). Callers that want a
// graceful close synchronize first; anything still pending fails with
// ErrQueueClosed. The queue leaves the scheduler and its id dies — the
// queue-scoped half of v2 resource reclamation (handles themselves are
// instance-scoped and are released by the dealloc calls the queue object
// issues before closing).
func (ctl *Controller) CloseQueue(inst *Instance, qid api.Queue) error {
	ctl.chargeControl(inst)
	q, err := ctl.queue(inst, qid)
	if err != nil {
		return err
	}
	q.closed = true
	for _, c := range q.pending {
		ctl.retireCall(c)
		ctl.unpinCall(c)
		if c.Op == infer.OpDealloc && c.ControlFn != nil {
			// As in ReleaseInstance: the handles died when the dealloc
			// enqueued, so the deferred physical free must still run.
			c.ControlFn()
			continue
		}
		c.Err = api.ErrQueueClosed
		failCall(c)
	}
	q.pending = nil
	ctl.sched.forgetQueue(q)
	delete(inst.queues, qid)
	return nil
}

// --- Allocation -----------------------------------------------------------

// AllocEmbeds allocates n embedding slots (alloc_emb).
func (ctl *Controller) AllocEmbeds(inst *Instance, qid api.Queue, n int) ([]api.Embed, error) {
	ctl.chargeControl(inst)
	q, err := ctl.queue(inst, qid)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, api.ErrBadArgument
	}
	phys, ok := ctl.embPool[q.model].alloc(n)
	if !ok {
		return nil, api.ErrOutOfResources
	}
	out := make([]api.Embed, n)
	for i, id := range phys {
		inst.nextEmbed++
		out[i] = inst.nextEmbed
		inst.vEmbeds[out[i]] = resRef{model: q.model, phys: id}
	}
	return out, nil
}

// AllocPages allocates n KV pages (alloc_kvpage), applying the FCFS
// contention policy on shortage.
func (ctl *Controller) AllocPages(inst *Instance, qid api.Queue, n int) ([]api.KvPage, error) {
	ctl.chargeControl(inst)
	q, err := ctl.queue(inst, qid)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, api.ErrBadArgument
	}
	if inst.MaxKvPages > 0 && len(inst.vPages)+n > inst.MaxKvPages {
		return nil, fmt.Errorf("%w: manifest allows %d KV pages (%d live, %d requested)",
			api.ErrLimitExceeded, inst.MaxKvPages, len(inst.vPages), n)
	}
	var phys []int32
	swappedOut := 0
	for attempt := 0; ; attempt++ {
		if err := ctl.ensurePages(inst, q.model, n); err != nil {
			return nil, err
		}
		ids, swapped, ok := ctl.pagePool[q.model].alloc(n, q.priority)
		if ok {
			phys, swappedOut = ids, swapped
			break
		}
		// Total capacity sufficed but device room could not be cleared:
		// every device page is pinned by queued or in-flight work. That
		// is transient — back off until the wave completes and unpins.
		if attempt >= faultRetries {
			return nil, api.ErrOutOfResources
		}
		ctl.clock.Sleep(faultBackoff)
		if q.closed {
			return nil, api.ErrQueueClosed
		}
	}
	out := make([]api.KvPage, n)
	for i, id := range phys {
		inst.nextPage++
		out[i] = inst.nextPage
		inst.vPages[out[i]] = resRef{model: q.model, phys: id}
		// Fresh pages must arrive empty even if physically recycled.
		ctl.models[q.model].Page(id).Reset()
	}
	// Charge the PCIe cost of alloc-triggered offloads only after the
	// handles are registered: an FCFS kill landing inside this sleep then
	// reclaims the pages through ReleaseInstance instead of leaking them.
	ctl.chargeSwap(q.rt, swappedOut)
	return out, nil
}

// DeallocEmbeds releases embedding slots after prior queue ops complete
// (dealloc_emb): it is a queue-ordered control op. Validation is
// all-or-nothing — a bad handle anywhere in ids releases nothing, so a
// failed call leaves the caller's handle view unchanged.
func (ctl *Controller) DeallocEmbeds(inst *Instance, qid api.Queue, ids []api.Embed) error {
	ctl.chargeControl(inst)
	q, err := ctl.queue(inst, qid)
	if err != nil {
		return err
	}
	refs := make([]resRef, 0, len(ids))
	seen := make(map[api.Embed]bool, len(ids))
	for _, id := range ids {
		ref, ok := inst.vEmbeds[id]
		if !ok || seen[id] {
			return api.ErrBadHandle
		}
		seen[id] = true
		refs = append(refs, ref)
	}
	for _, id := range ids {
		delete(inst.vEmbeds, id) // handle dies now; physical free is deferred
	}
	ctl.enqueue(q, &infer.Call{Op: infer.OpDealloc, ControlFn: func() {
		for _, ref := range refs {
			ctl.embPool[ref.model].release(ref.phys)
		}
	}})
	return nil
}

// DeallocPages releases KV pages, queue-ordered (dealloc_kvpage), with
// the same all-or-nothing validation as DeallocEmbeds.
func (ctl *Controller) DeallocPages(inst *Instance, qid api.Queue, ids []api.KvPage) error {
	ctl.chargeControl(inst)
	q, err := ctl.queue(inst, qid)
	if err != nil {
		return err
	}
	refs := make([]resRef, 0, len(ids))
	seen := make(map[api.KvPage]bool, len(ids))
	for _, id := range ids {
		ref, ok := inst.vPages[id]
		if !ok || seen[id] {
			return api.ErrBadHandle
		}
		seen[id] = true
		refs = append(refs, ref)
	}
	for _, id := range ids {
		delete(inst.vPages, id)
	}
	ctl.enqueue(q, &infer.Call{Op: infer.OpDealloc, ControlFn: func() {
		for _, ref := range refs {
			ctl.pagePool[ref.model].release(ref.phys)
		}
	}})
	return nil
}

// --- Export / import ------------------------------------------------------

// ExportPages publishes the pages under a global name (export_kvpage). The
// registry takes its own reference on each page, so the export outlives
// the exporter.
func (ctl *Controller) ExportPages(inst *Instance, name string, ids []api.KvPage) error {
	ctl.chargeControl(inst)
	if _, exists := ctl.exports[name]; exists {
		return fmt.Errorf("%w: export name %q taken", api.ErrBadArgument, name)
	}
	entry := &exportEntry{}
	for _, id := range ids {
		ref, ok := inst.vPages[id]
		if !ok {
			return api.ErrBadHandle
		}
		if entry.model == "" {
			entry.model = ref.model
		} else if entry.model != ref.model {
			return fmt.Errorf("%w: export mixes models", api.ErrBadArgument)
		}
		entry.phys = append(entry.phys, ref.phys)
	}
	for _, p := range entry.phys {
		ctl.pagePool[entry.model].retain(p)
	}
	ctl.exports[name] = entry
	return nil
}

// ImportPages maps an export into the caller's address space
// (import_kvpage); the pages are shared, not copied.
func (ctl *Controller) ImportPages(inst *Instance, name string) ([]api.KvPage, error) {
	ctl.chargeControl(inst)
	entry, ok := ctl.exports[name]
	if !ok {
		return nil, api.ErrNoSuchExport
	}
	if inst.MaxKvPages > 0 && len(inst.vPages)+len(entry.phys) > inst.MaxKvPages {
		// Imports map pages into the instance's address space too: the
		// manifest cap bounds live pages however they arrive.
		return nil, fmt.Errorf("%w: manifest allows %d KV pages (%d live, %d imported)",
			api.ErrLimitExceeded, inst.MaxKvPages, len(inst.vPages), len(entry.phys))
	}
	out := make([]api.KvPage, len(entry.phys))
	for i, p := range entry.phys {
		ctl.pagePool[entry.model].retain(p)
		inst.nextPage++
		out[i] = inst.nextPage
		inst.vPages[out[i]] = resRef{model: entry.model, phys: p}
	}
	return out, nil
}

// HasExport reports whether name is registered (used for cache probing).
func (ctl *Controller) HasExport(inst *Instance, name string) bool {
	ctl.chargeControl(inst)
	_, ok := ctl.exports[name]
	return ok
}

// ReleaseExport drops the registry's references (release_export).
func (ctl *Controller) ReleaseExport(inst *Instance, name string) error {
	ctl.chargeControl(inst)
	entry, ok := ctl.exports[name]
	if !ok {
		return api.ErrNoSuchExport
	}
	for _, p := range entry.phys {
		ctl.pagePool[entry.model].release(p)
	}
	delete(ctl.exports, name)
	return nil
}

// --- Inference-layer calls -------------------------------------------------

func (ctl *Controller) resolvePages(inst *Instance, q *cmdQueue, ids []api.KvPage) ([]*model.KvPage, []int32, error) {
	out := make([]*model.KvPage, len(ids))
	phys := make([]int32, len(ids))
	for i, id := range ids {
		ref, ok := inst.vPages[id]
		if !ok || ref.model != q.model {
			return nil, nil, api.ErrBadHandle
		}
		out[i] = q.rt.Page(ref.phys)
		phys[i] = ref.phys
	}
	return out, phys, nil
}

// chargeSwap prices n page moves across the PCIe link in the caller's
// process (allocation-triggered offloads, forward-triggered faults).
func (ctl *Controller) chargeSwap(rt *infer.ModelRuntime, n int) {
	if n <= 0 {
		return
	}
	cost := rt.Spec.SwapCost(n, rt.Info.PageSize)
	ctl.xferTime += cost
	ctl.clock.Sleep(cost)
}

// Fault-in contention backoff: when a call's working set cannot fit the
// device tier because concurrent calls pin it full, the faulting session
// waits for the in-flight wave to complete and retries. The virtual-clock
// sleep keeps the retry deterministic; the bound turns a true working-set
// overcommit (every device page pinned forever) into ErrOutOfResources.
const (
	faultBackoff = 5 * time.Millisecond
	faultRetries = 40
)

// preparePages readies the physical pages an inference call references:
// stamps recency, pins them against offload for the call's lifetime, and
// prefetches host-resident pages back to the device tier, charging the
// PCIe transfer before the call enqueues — by dispatch time the pages are
// resident. Duplicate mentions (ReadKv and AppendKv commonly name the
// same pages) pin and charge once. Transient device-tier contention
// (other calls' pins) is absorbed by a bounded backoff, so sessions
// fault transparently. The pin set rides on the call and is dropped by
// unpinCall; until it is handed over, a deferred release covers an FCFS
// kill landing inside the transfer-charge sleep.
func (ctl *Controller) preparePages(q *cmdQueue, c *infer.Call, phys []int32) error {
	if len(phys) == 0 {
		return nil
	}
	uniq := make([]int32, 0, len(phys))
	seen := make(map[int32]bool, len(phys))
	for _, id := range phys {
		if !seen[id] {
			seen[id] = true
			uniq = append(uniq, id)
		}
	}
	p := ctl.pagePool[q.model]
	var pins []infer.PagePin
	unpinAll := func() {
		for _, pp := range pins {
			p.unpin(pp.Page, pp.Gen)
		}
		pins = nil
	}
	handedOver := false
	defer func() {
		if !handedOver {
			unpinAll()
		}
	}()
	for attempt := 0; ; attempt++ {
		pins = make([]infer.PagePin, 0, len(uniq))
		for _, id := range uniq {
			if gen, ok := p.pin(id); ok {
				pins = append(pins, infer.PagePin{Page: id, Gen: gen})
			}
			p.touch(id)
		}
		in, out, ok := p.faultIn(uniq)
		if ok {
			ctl.chargeSwap(q.rt, in+out) // may be interrupted by a kill; see defer
			c.PinnedPages = pins
			handedOver = true
			return nil
		}
		// Unpin while waiting so competing faults can make progress.
		unpinAll()
		if attempt >= faultRetries {
			return fmt.Errorf("%w: cannot fault offloaded pages back to device (device tier fully pinned)",
				api.ErrOutOfResources)
		}
		ctl.clock.Sleep(faultBackoff)
		if q.closed {
			return api.ErrQueueClosed
		}
	}
}

// unpinCall releases a call's page pins. Idempotent: exactly one of batch
// completion, queue close, or instance release runs it per call.
func (ctl *Controller) unpinCall(c *infer.Call) {
	if len(c.PinnedPages) == 0 || c.Model == nil {
		return
	}
	p := ctl.pagePool[string(c.Model.Info.ID)]
	for _, pp := range c.PinnedPages {
		p.unpin(pp.Page, pp.Gen)
	}
	c.PinnedPages = nil
}

// newCall stamps common fields and instruments the instance.
func (ctl *Controller) newCall(inst *Instance, op infer.Op) *infer.Call {
	ctl.callSeq++
	inst.InferCalls++
	return &infer.Call{
		Op:   op,
		Seq:  ctl.callSeq,
		Enq:  ctl.clock.Now(),
		Inst: inst.ID,
		Done: sim.NewSignal(ctl.clock),
	}
}

// EmbedText schedules embed_txt: token ids into embedding slots with
// explicit positions.
func (ctl *Controller) EmbedText(inst *Instance, qid api.Queue, tokens, positions []int, dst []api.Embed) (*sim.Signal, error) {
	q, err := ctl.queue(inst, qid)
	if err != nil {
		return nil, err
	}
	slots, err := ctl.resolveEmbeds(inst, q, dst)
	if err != nil {
		return nil, err
	}
	c := ctl.newCall(inst, infer.OpEmbedText)
	c.Model = q.rt
	c.TokenIDs = append([]int(nil), tokens...)
	c.Positions = append([]int(nil), positions...)
	c.Outputs = slots
	ctl.enqueue(q, c)
	return c.Done, nil
}

// EmbedImage schedules embed_img.
func (ctl *Controller) EmbedImage(inst *Instance, qid api.Queue, blob []byte, positions []int, dst []api.Embed) (*sim.Signal, error) {
	q, err := ctl.queue(inst, qid)
	if err != nil {
		return nil, err
	}
	if !q.rt.Info.HasTraitClosure(api.TraitInputImage) {
		return nil, api.ErrNoSuchTrait
	}
	slots, err := ctl.resolveEmbeds(inst, q, dst)
	if err != nil {
		return nil, err
	}
	c := ctl.newCall(inst, infer.OpEmbedImage)
	c.Model = q.rt
	c.Blob = blob
	c.Positions = append([]int(nil), positions...)
	c.Outputs = slots
	ctl.enqueue(q, c)
	return c.Done, nil
}

// Forward schedules the core transformer pass.
func (ctl *Controller) Forward(inst *Instance, qid api.Queue, args api.ForwardArgs) (*sim.Signal, error) {
	c, q, err := ctl.buildForward(inst, qid, args)
	if err != nil {
		return nil, err
	}
	ctl.enqueue(q, c)
	return c.Done, nil
}

// ForwardSampled schedules forward_with_sampling (the fused monolithic-style
// pipeline, TraitFused): optional inline token embedding, forward, and
// on-GPU sampling, one kernel.
func (ctl *Controller) ForwardSampled(inst *Instance, qid api.Queue, args api.ForwardArgs, inlineTokens, inlinePos []int, spec infer.SampleSpec) (*sim.Future[[]int], error) {
	c, q, err := ctl.buildForward(inst, qid, args)
	if err != nil {
		return nil, err
	}
	if len(inlineTokens) > 0 {
		if len(args.InputEmb) > 0 {
			ctl.unpinCall(c) // the call never enqueues; release its page pins
			return nil, fmt.Errorf("%w: both InputEmb and inline tokens", api.ErrBadArgument)
		}
		c.FusedEmb = append([]int(nil), inlineTokens...)
		c.FusedPos = append([]int(nil), inlinePos...)
	}
	c.Sample = &spec
	c.FusedTok = sim.NewFuture[[]int](ctl.clock)
	ctl.enqueue(q, c)
	return c.FusedTok, nil
}

func (ctl *Controller) buildForward(inst *Instance, qid api.Queue, args api.ForwardArgs) (*infer.Call, *cmdQueue, error) {
	q, err := ctl.queue(inst, qid)
	if err != nil {
		return nil, nil, err
	}
	ctxPages, ctxPhys, err := ctl.resolvePages(inst, q, args.InputKv)
	if err != nil {
		return nil, nil, err
	}
	outPages, outPhys, err := ctl.resolvePages(inst, q, args.OutputKv)
	if err != nil {
		return nil, nil, err
	}
	inputs, err := ctl.resolveEmbeds(inst, q, args.InputEmb)
	if err != nil {
		return nil, nil, err
	}
	outputs, err := ctl.resolveEmbeds(inst, q, args.OutputEmb)
	if err != nil {
		return nil, nil, err
	}
	if args.Adapter != "" && !q.rt.Info.HasTraitClosure(api.TraitAdapter) {
		return nil, nil, api.ErrNoSuchTrait
	}
	c := ctl.newCall(inst, infer.OpForward)
	c.Model = q.rt
	c.CtxPages = ctxPages
	c.OutPages = outPages
	c.Inputs = inputs
	c.Outputs = outputs
	c.Mask = args.Mask
	c.Adapter = args.Adapter
	if err := ctl.preparePages(q, c, append(ctxPhys, outPhys...)); err != nil {
		return nil, nil, err
	}
	return c, q, nil
}

// NextDist schedules get_next_dist.
func (ctl *Controller) NextDist(inst *Instance, qid api.Queue, emb api.Embed) (*sim.Future[api.Dist], error) {
	q, err := ctl.queue(inst, qid)
	if err != nil {
		return nil, err
	}
	slots, err := ctl.resolveEmbeds(inst, q, []api.Embed{emb})
	if err != nil {
		return nil, err
	}
	c := ctl.newCall(inst, infer.OpNextDist)
	c.Model = q.rt
	c.DistOf = slots[0]
	c.DistFut = sim.NewFuture[infer.DistResult](ctl.clock)
	ctl.enqueue(q, c)

	out := sim.NewFuture[api.Dist](ctl.clock)
	ctl.clock.Go("dist-adapt", func() {
		r, err := c.DistFut.Get()
		if err != nil {
			out.Fail(err)
			return
		}
		out.Resolve(api.Dist{Tokens: r.Tokens, Probs: r.Probs})
	})
	return out, nil
}

// CopyKv schedules copy_kvpage: token-level copy between pages.
func (ctl *Controller) CopyKv(inst *Instance, qid api.Queue, src, dst api.KvPage, srcOff, dstOff, n int) (*sim.Signal, error) {
	q, err := ctl.queue(inst, qid)
	if err != nil {
		return nil, err
	}
	pages, phys, err := ctl.resolvePages(inst, q, []api.KvPage{src, dst})
	if err != nil {
		return nil, err
	}
	c := ctl.newCall(inst, infer.OpCopyKv)
	c.Model = q.rt
	c.SrcPage, c.DstPage = pages[0], pages[1]
	c.SrcOff, c.DstOff, c.NumTokens = srcOff, dstOff, n
	if err := ctl.preparePages(q, c, phys); err != nil {
		return nil, err
	}
	ctl.enqueue(q, c)
	return c.Done, nil
}

// MaskKv schedules mask_kvpage: token-level attention mask bits.
func (ctl *Controller) MaskKv(inst *Instance, qid api.Queue, page api.KvPage, bits []bool) (*sim.Signal, error) {
	q, err := ctl.queue(inst, qid)
	if err != nil {
		return nil, err
	}
	pages, phys, err := ctl.resolvePages(inst, q, []api.KvPage{page})
	if err != nil {
		return nil, err
	}
	c := ctl.newCall(inst, infer.OpMaskKv)
	c.Model = q.rt
	c.MaskPage = pages[0]
	c.MaskBits = append([]bool(nil), bits...)
	if err := ctl.preparePages(q, c, phys); err != nil {
		return nil, err
	}
	ctl.enqueue(q, c)
	return c.Done, nil
}

// Tokenize schedules tokenize.
func (ctl *Controller) Tokenize(inst *Instance, qid api.Queue, text string) (*sim.Future[[]int], error) {
	q, err := ctl.queue(inst, qid)
	if err != nil {
		return nil, err
	}
	c := ctl.newCall(inst, infer.OpTokenize)
	c.Model = q.rt
	c.Text = text
	c.TokFut = sim.NewFuture[[]int](ctl.clock)
	ctl.enqueue(q, c)
	return c.TokFut, nil
}

// Detokenize schedules detokenize.
func (ctl *Controller) Detokenize(inst *Instance, qid api.Queue, ids []int) (*sim.Future[string], error) {
	q, err := ctl.queue(inst, qid)
	if err != nil {
		return nil, err
	}
	c := ctl.newCall(inst, infer.OpDetokenize)
	c.Model = q.rt
	c.TokenIDs = append([]int(nil), ids...)
	c.TextFut = sim.NewFuture[string](ctl.clock)
	ctl.enqueue(q, c)
	return c.TextFut, nil
}

// GetVocabs schedules get_vocabs.
func (ctl *Controller) GetVocabs(inst *Instance, qid api.Queue) (*sim.Future[[][]byte], error) {
	q, err := ctl.queue(inst, qid)
	if err != nil {
		return nil, err
	}
	c := ctl.newCall(inst, infer.OpGetVocabs)
	c.Model = q.rt
	c.VocabFut = sim.NewFuture[[][]byte](ctl.clock)
	ctl.enqueue(q, c)
	return c.VocabFut, nil
}

func (ctl *Controller) resolveEmbeds(inst *Instance, q *cmdQueue, ids []api.Embed) ([]*model.EmbedSlot, error) {
	out := make([]*model.EmbedSlot, len(ids))
	for i, id := range ids {
		ref, ok := inst.vEmbeds[id]
		if !ok || ref.model != q.model {
			return nil, api.ErrBadHandle
		}
		out[i] = q.rt.Embed(ref.phys)
	}
	return out, nil
}

// callTokenWeight prices a call's share of outstanding work in tokens:
// forwards and embeds weigh their fresh tokens, other inference ops weigh
// one, control-side ops weigh nothing.
func callTokenWeight(c *infer.Call) int {
	if c.Op.ControlSide() {
		return 0
	}
	if n := c.NewTokens(); n > 0 {
		return n
	}
	return 1
}

// admitCall / retireCall maintain the outstanding-work counters. A call is
// admitted once at enqueue and retired exactly once: at batch completion
// for dispatched calls, or at queue close for calls that never dispatched.
func (ctl *Controller) admitCall(c *infer.Call) {
	if c.Op.ControlSide() {
		return
	}
	ctl.outstandingCalls++
	ctl.outstandingTokens += callTokenWeight(c)
	ctl.outstandingPrefill += prefillWeight(c)
}

func (ctl *Controller) retireCall(c *infer.Call) {
	if c.Op.ControlSide() {
		return
	}
	ctl.outstandingCalls--
	ctl.outstandingTokens -= callTokenWeight(c)
	ctl.outstandingPrefill -= prefillWeight(c)
}

// prefillWeight counts the fresh tokens of a bulk-prefill forward (more
// than one new token); single-token decode steps weigh zero. The scaler's
// saturation signal reads the aggregate: a replica deep in prefill work
// has long first-token queues ahead of any new launch.
func prefillWeight(c *infer.Call) int {
	if c.Op != infer.OpForward {
		return 0
	}
	if n := c.NewTokens(); n > 1 {
		return n
	}
	return 0
}

// OutstandingCalls reports inference-layer calls admitted but not yet
// completed (queued or in flight).
func (ctl *Controller) OutstandingCalls() int { return ctl.outstandingCalls }

// OutstandingTokens reports the token-weighted outstanding work — the
// cluster's least-outstanding-tokens placement signal.
func (ctl *Controller) OutstandingTokens() int { return ctl.outstandingTokens }

// OutstandingPrefillTokens reports the fresh tokens of admitted
// bulk-prefill forwards not yet completed — a scaler saturation signal.
func (ctl *Controller) OutstandingPrefillTokens() int { return ctl.outstandingPrefill }

// CheaperModel returns the cheapest installed model that is strictly
// cheaper (by weight bytes) than name and whose trait closure covers every
// trait name declares — so anything a program negotiated against the
// original model still negotiates against the substitute. Empty when no
// such model exists. Graceful degradation uses it to downgrade Degradable
// launches near saturation.
func (ctl *Controller) CheaperModel(name string) string {
	cur, ok := ctl.models[name]
	if !ok {
		return ""
	}
	best := ""
	var bestBytes int64
	for _, cand := range ctl.order {
		rt := ctl.models[cand]
		if rt.Spec.WeightBytes >= cur.Spec.WeightBytes {
			continue
		}
		covered := true
		for _, t := range cur.Info.Traits {
			if !rt.Info.HasTraitClosure(t) {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		if best == "" || rt.Spec.WeightBytes < bestBytes {
			best, bestBytes = cand, rt.Spec.WeightBytes
		}
	}
	return best
}

// HasExportNamed reports whether a KV export is registered under name,
// without charging any instance: the cluster router probes replicas with
// it for KV/prefix-affinity placement.
func (ctl *Controller) HasExportNamed(name string) bool {
	_, ok := ctl.exports[name]
	return ok
}

// enqueue adds a call to its queue and pokes the scheduler.
func (ctl *Controller) enqueue(q *cmdQueue, c *infer.Call) {
	ctl.admitCall(c)
	q.pending = append(q.pending, c)
	ctl.sched.onEnqueue(q)
}

// onBatchComplete is the event dispatcher (§5.2 step 5): results arrived
// from the inference layer; release queue ordering and keep dispatching.
func (ctl *Controller) onBatchComplete(b *infer.Batch) {
	for _, c := range b.Calls {
		ctl.retireCall(c)
		ctl.unpinCall(c)
		q := ctl.sched.queueOf(c)
		if q != nil {
			q.inflight--
		}
	}
	if (ctl.latencyFn != nil || ctl.firstTokFn != nil) && b.Op == infer.OpForward {
		// Feed the SLO tracker: an instance's first completed forward is
		// its TTFT (launch → first token); each later forward samples the
		// gap since the previous one (ITL). Same-batch forwards of one
		// instance read as zero-gap — they genuinely completed together.
		// The first-token observer fires on the same boundary, marking
		// prefill-replica sessions ready for KV handoff.
		now := ctl.clock.Now()
		for _, c := range b.Calls {
			inst := ctl.instances[c.Inst]
			if inst == nil {
				continue
			}
			if !inst.sawFirstTok {
				inst.sawFirstTok = true
				if ctl.latencyFn != nil {
					ctl.latencyFn(inst.Class, true, now-inst.launchedAt)
				}
				if ctl.firstTokFn != nil {
					ctl.firstTokFn(inst)
				}
			} else if ctl.latencyFn != nil {
				ctl.latencyFn(inst.Class, false, now-inst.lastTokenAt)
			}
			inst.lastTokenAt = now
		}
	}
	seen := map[*cmdQueue]bool{}
	for _, c := range b.Calls {
		q := ctl.sched.queueOf(c)
		ctl.sched.forgetCall(c)
		if q != nil && !seen[q] {
			seen[q] = true
			// Re-index the queue now that its ordering released: this
			// drains queue-ordered control ops and returns the queue to
			// its ready bucket if the next call is dispatchable.
			ctl.sched.refresh(q)
		}
	}
	ctl.sched.tryDispatch()
}

// drainControlOps executes queue-ordered control ops (dealloc, sync) that
// have reached the head with nothing in flight ahead of them.
func (ctl *Controller) drainControlOps(q *cmdQueue) {
	for q.inflight == 0 {
		h := q.head()
		if h == nil || !h.Op.ControlSide() {
			return
		}
		q.pop()
		switch h.Op {
		case infer.OpDealloc:
			h.ControlFn()
		case infer.OpSync:
			sim.Fire(h.SyncFut)
		}
	}
}

// PoolStats reports page occupancy for a model across both tiers (tests,
// Fig. 7 analysis).
func (ctl *Controller) PoolStats(modelName string) (inUse, capacity int) {
	p := ctl.pagePool[modelName]
	return p.inUse(), p.capacity()
}

// EmbedPoolStats reports embedding-slot occupancy for a model (abort and
// reclamation tests).
func (ctl *Controller) EmbedPoolStats(modelName string) (inUse, capacity int) {
	p := ctl.embPool[modelName]
	return p.inUse(), p.capacity
}

// OffloadStats aggregates tier occupancy and swap traffic across models,
// plus the cumulative PCIe transfer time charged to callers.
func (ctl *Controller) OffloadStats() OffloadStats {
	var out OffloadStats
	for _, name := range ctl.order {
		out.add(ctl.pagePool[name].stats())
	}
	out.XferTime = ctl.xferTime
	return out
}

// ExportResidency reports how many of an export's pages are device-
// resident. The cluster's kv-affinity placement scores holders with it:
// an export whose pages were offloaded to host memory is a colder hit
// than one still resident on the device.
func (ctl *Controller) ExportResidency(name string) (device, total int) {
	entry, ok := ctl.exports[name]
	if !ok {
		return 0, 0
	}
	p := ctl.pagePool[entry.model]
	for _, id := range entry.phys {
		if tier, ok := p.resident(id); ok && tier == tierDevice {
			device++
		}
	}
	return device, len(entry.phys)
}

// MigrateExportsTo moves every KV export this controller holds to dst:
// pages are allocated in dst's pools, their contents copied, the export
// re-registered there, and the source registry references released. The
// autoscaler calls it when a drain completes, so cached context survives
// replica deactivation. Exports that dst cannot host (name taken, pool
// full) stay behind. A physical page shared by several exports moves
// once and stays shared on dst. Returns distinct pages moved and the
// modeled transfer cost: two PCIe crossings for device-resident source
// pages (device -> host -> peer device), one for pages already in the
// host tier.
func (ctl *Controller) MigrateExportsTo(dst *Controller) (pages int, cost time.Duration) {
	if dst == nil || dst == ctl {
		return 0, 0
	}
	names := make([]string, 0, len(ctl.exports))
	for name := range ctl.exports {
		names = append(names, name)
	}
	sort.Strings(names)
	moved := make(map[string]map[int32]int32) // model -> src phys -> dst phys
	for _, name := range names {
		entry := ctl.exports[name]
		if _, taken := dst.exports[name]; taken {
			continue
		}
		dstPool, ok := dst.pagePool[entry.model]
		if !ok {
			continue
		}
		if moved[entry.model] == nil {
			moved[entry.model] = make(map[int32]int32)
		}
		mm := moved[entry.model]
		fresh := 0
		for _, src := range entry.phys {
			if _, done := mm[src]; !done {
				fresh++
			}
		}
		ids, swapped, allocOK := dstPool.alloc(fresh, 0)
		if !allocOK {
			continue
		}
		srcRT, dstRT := ctl.models[entry.model], dst.models[entry.model]
		srcPool := ctl.pagePool[entry.model]
		dstPhys := make([]int32, len(entry.phys))
		next := 0
		for i, src := range entry.phys {
			if id, done := mm[src]; done {
				dstPool.retain(id) // shared across exports: share on dst too
				dstPhys[i] = id
			} else {
				id := ids[next]
				next++
				copyPage(srcRT.Page(src), dstRT.Page(id))
				mm[src] = id
				dstPhys[i] = id
				pages++
				crossings := 2
				if tier, ok := srcPool.resident(src); ok && tier == tierHost {
					crossings = 1 // already offloaded: only the host -> peer leg remains
				}
				cost += time.Duration(crossings) * srcRT.Spec.SwapCost(1, srcRT.Info.PageSize)
			}
			srcPool.release(src)
		}
		dst.exports[name] = &exportEntry{model: entry.model, phys: dstPhys}
		delete(ctl.exports, name)
		cost += dstRT.Spec.SwapCost(swapped, dstRT.Info.PageSize)
	}
	return pages, cost
}

// InstanceKVFootprint counts the distinct physical KV pages a session
// holds — what a handoff would copy across the interconnect. Import
// sharing maps one physical page under several virtual handles, so the
// count dedupes by physical reference.
func (ctl *Controller) InstanceKVFootprint(inst *Instance) int {
	seen := make(map[resRef]bool, len(inst.vPages))
	n := 0
	for _, ref := range inst.vPages {
		if !seen[ref] {
			seen[ref] = true
			n++
		}
	}
	return n
}

// InstanceQuiescent reports whether the instance has no queued or
// in-flight inference work on any of its command queues — the pin-safe
// window in which a session handoff may run (no call holds page pins, no
// completion is racing the move).
func (ctl *Controller) InstanceQuiescent(inst *Instance) bool {
	for _, q := range inst.queues {
		if len(q.pending) > 0 || q.inflight > 0 {
			return false
		}
	}
	return true
}

// HandoffSession migrates a quiescent instance's session state — KV
// pages, embedding slots, and command queues — from this controller to
// dst, returning the replacement instance registered there, the number of
// distinct physical pages copied, and the modeled interconnect cost
// (charged by the caller, which holds the cluster's transfer budget).
// The prefill/decode handoff layer calls it at a forward boundary after
// the instance's first token completed on a prefill replica.
//
// Mechanics mirror MigrateExportsTo: pages allocate in dst's pools and
// copy with two PCIe crossings when device-resident at the source
// (device -> host -> peer device), one when already offloaded to the host
// tier, plus dst-side offload cost for pages its pool spilled to make
// room. Virtual handle ids are preserved — the session's queue bindings
// keep working unmodified — and queues are re-created empty under their
// original ids (quiescence guarantees nothing was pending). KV exports
// the instance published stay registered on the source: the registry
// holds its own page references, so cached context remains where affinity
// routing expects it. On success the source instance is released; on
// failure nothing moves and the session keeps running here.
func (ctl *Controller) HandoffSession(inst *Instance, dst *Controller) (*Instance, int, time.Duration, error) {
	if dst == nil || dst == ctl {
		return nil, 0, 0, fmt.Errorf("%w: handoff needs a distinct destination", api.ErrBadArgument)
	}
	if inst == nil || inst.dead {
		return nil, 0, 0, api.ErrTerminated
	}
	if !ctl.InstanceQuiescent(inst) {
		return nil, 0, 0, fmt.Errorf("%w: instance has queued or in-flight work", api.ErrBadArgument)
	}

	// Sorted handle views: same-seed runs must copy in identical order.
	pageIDs := make([]api.KvPage, 0, len(inst.vPages))
	for id := range inst.vPages {
		pageIDs = append(pageIDs, id)
	}
	sort.Slice(pageIDs, func(i, j int) bool { return pageIDs[i] < pageIDs[j] })
	embedIDs := make([]api.Embed, 0, len(inst.vEmbeds))
	for id := range inst.vEmbeds {
		embedIDs = append(embedIDs, id)
	}
	sort.Slice(embedIDs, func(i, j int) bool { return embedIDs[i] < embedIDs[j] })
	queueIDs := make([]api.Queue, 0, len(inst.queues))
	for id := range inst.queues {
		queueIDs = append(queueIDs, id)
	}
	sort.Slice(queueIDs, func(i, j int) bool { return queueIDs[i] < queueIDs[j] })

	// Every model the session touches must exist on dst; count distinct
	// physical pages (import sharing maps one page under several handles)
	// and embeds per model.
	freshPages := make(map[string]int)
	pageSeen := make(map[resRef]bool, len(pageIDs))
	for _, id := range pageIDs {
		ref := inst.vPages[id]
		if dst.pagePool[ref.model] == nil {
			return nil, 0, 0, fmt.Errorf("%w: handoff destination lacks %q", api.ErrNoSuchModel, ref.model)
		}
		if !pageSeen[ref] {
			pageSeen[ref] = true
			freshPages[ref.model]++
		}
	}
	embedCount := make(map[string]int)
	for _, id := range embedIDs {
		ref := inst.vEmbeds[id]
		if dst.embPool[ref.model] == nil {
			return nil, 0, 0, fmt.Errorf("%w: handoff destination lacks %q", api.ErrNoSuchModel, ref.model)
		}
		embedCount[ref.model]++
	}
	for _, qid := range queueIDs {
		if dst.models[inst.queues[qid].model] == nil {
			return nil, 0, 0, fmt.Errorf("%w: handoff destination lacks %q", api.ErrNoSuchModel, inst.queues[qid].model)
		}
	}

	// Allocate everything on dst up front, in model registration order,
	// rolling back on failure so a refused handoff leaves both replicas
	// untouched.
	type pageGrant struct {
		ids     []int32
		swapped int
	}
	pageGrants := make(map[string]*pageGrant)
	embedGrants := make(map[string][]int32)
	rollback := func() {
		for _, m := range dst.order {
			if g := pageGrants[m]; g != nil {
				for _, id := range g.ids {
					dst.pagePool[m].release(id)
				}
			}
			for _, id := range embedGrants[m] {
				dst.embPool[m].release(id)
			}
		}
	}
	for _, m := range dst.order {
		if n := freshPages[m]; n > 0 {
			ids, swapped, ok := dst.pagePool[m].alloc(n, 0)
			if !ok {
				rollback()
				return nil, 0, 0, fmt.Errorf("%w: destination cannot host %d KV pages of %s", api.ErrOutOfResources, n, m)
			}
			pageGrants[m] = &pageGrant{ids: ids, swapped: swapped}
		}
		if n := embedCount[m]; n > 0 {
			ids, ok := dst.embPool[m].alloc(n)
			if !ok {
				rollback()
				return nil, 0, 0, fmt.Errorf("%w: destination cannot host %d embeds of %s", api.ErrOutOfResources, n, m)
			}
			embedGrants[m] = ids
		}
	}

	dst.instSeq++
	ni := &Instance{
		ID:         dst.instSeq,
		Name:       inst.Name,
		CreatedSeq: dst.instSeq,
		Proc:       inst.Proc,
		vEmbeds:    make(map[api.Embed]resRef, len(inst.vEmbeds)),
		vPages:     make(map[api.KvPage]resRef, len(inst.vPages)),
		nextEmbed:  inst.nextEmbed,
		nextPage:   inst.nextPage,
		queues:     make(map[api.Queue]*cmdQueue, len(inst.queues)),
		onKill:     inst.onKill,

		MaxQueues:       inst.MaxQueues,
		MaxKvPages:      inst.MaxKvPages,
		DefaultPriority: inst.DefaultPriority,
		Class:           inst.Class,
		Degraded:        inst.Degraded,

		launchedAt:  inst.launchedAt,
		sawFirstTok: inst.sawFirstTok,
		lastTokenAt: inst.lastTokenAt,

		ControlCalls: inst.ControlCalls,
		InferCalls:   inst.InferCalls,
		OutputTokens: inst.OutputTokens,
	}
	dst.instances[ni.ID] = ni

	var pages int
	var cost time.Duration
	movedTo := make(map[resRef]int32, len(pageSeen))
	nextPage := make(map[string]int)
	for _, vid := range pageIDs {
		ref := inst.vPages[vid]
		dstPhys, done := movedTo[ref]
		if done {
			dst.pagePool[ref.model].retain(dstPhys) // shared within the session: share on dst too
		} else {
			g := pageGrants[ref.model]
			dstPhys = g.ids[nextPage[ref.model]]
			nextPage[ref.model]++
			movedTo[ref] = dstPhys
			srcRT, dstRT := ctl.models[ref.model], dst.models[ref.model]
			copyPage(srcRT.Page(ref.phys), dstRT.Page(dstPhys))
			pages++
			crossings := 2
			if tier, ok := ctl.pagePool[ref.model].resident(ref.phys); ok && tier == tierHost {
				crossings = 1 // already offloaded: only the host -> peer leg remains
			}
			cost += time.Duration(crossings) * srcRT.Spec.SwapCost(1, srcRT.Info.PageSize)
		}
		ni.vPages[vid] = resRef{model: ref.model, phys: dstPhys}
	}
	for _, m := range dst.order {
		if g := pageGrants[m]; g != nil && g.swapped > 0 {
			rt := dst.models[m]
			cost += rt.Spec.SwapCost(g.swapped, rt.Info.PageSize)
		}
	}
	nextEmb := make(map[string]int)
	for _, vid := range embedIDs {
		ref := inst.vEmbeds[vid]
		dstPhys := embedGrants[ref.model][nextEmb[ref.model]]
		nextEmb[ref.model]++
		copyEmbed(ctl.models[ref.model].Embed(ref.phys), dst.models[ref.model].Embed(dstPhys))
		ni.vEmbeds[vid] = resRef{model: ref.model, phys: dstPhys}
	}
	for _, qid := range queueIDs {
		q := inst.queues[qid]
		ni.queues[qid] = &cmdQueue{id: qid, inst: ni, model: q.model, rt: dst.models[q.model], priority: q.priority}
		if uint64(qid) > dst.queueSeq {
			// Future CreateQueue calls on dst must not reuse a mirrored id.
			dst.queueSeq = uint64(qid)
		}
	}

	ctl.ReleaseInstance(inst)
	return ni, pages, cost, nil
}

// copyPage deep-copies one physical page's occupancy metadata and (in
// full mode) its KV vectors.
func copyPage(src, dst *model.KvPage) {
	for s := range src.Used {
		dst.Used[s] = src.Used[s]
		dst.Masked[s] = src.Masked[s]
		dst.Pos[s] = src.Pos[s]
		if len(src.K[s]) > 0 {
			dst.K[s] = append(dst.K[s][:0], src.K[s]...)
			dst.V[s] = append(dst.V[s][:0], src.V[s]...)
		}
	}
}

// copyEmbed deep-copies one embedding slot's vector and metadata.
func copyEmbed(src, dst *model.EmbedSlot) {
	dst.Vec = append(dst.Vec[:0], src.Vec...)
	dst.Pos = src.Pos
	dst.Valid = src.Valid
}

// ModelRuntime returns the runtime for a model id.
func (ctl *Controller) ModelRuntime(name string) *infer.ModelRuntime { return ctl.models[name] }

// SortedInstanceIDs aids deterministic test assertions.
func (ctl *Controller) SortedInstanceIDs() []uint64 {
	ids := make([]uint64, 0, len(ctl.instances))
	for id := range ctl.instances {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
