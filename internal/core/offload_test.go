package core

import (
	"math/rand"
	"testing"
)

// checkTieredInvariants asserts the structural invariants every operation
// must preserve: tier counts sum to the pool total, neither tier exceeds
// its capacity, the meta table matches the counters, and no live id is
// also on the free list.
func checkTieredInvariants(t *testing.T, p *tieredPool) {
	t.Helper()
	if p.devInUse+p.hostInUse != len(p.meta) {
		t.Fatalf("tier counts %d+%d do not sum to %d live pages", p.devInUse, p.hostInUse, len(p.meta))
	}
	if p.devInUse > p.devCap {
		t.Fatalf("device tier overcommitted: %d > %d", p.devInUse, p.devCap)
	}
	if p.hostInUse > p.hostCap {
		t.Fatalf("host tier overcommitted: %d > %d", p.hostInUse, p.hostCap)
	}
	dev, host := 0, 0
	for id, m := range p.meta {
		if m.refs <= 0 {
			t.Fatalf("live page %d has refs %d", id, m.refs)
		}
		if m.tier == tierDevice {
			dev++
		} else {
			host++
		}
	}
	if dev != p.devInUse || host != p.hostInUse {
		t.Fatalf("meta tiers %d/%d disagree with counters %d/%d", dev, host, p.devInUse, p.hostInUse)
	}
	for _, id := range p.free {
		if _, live := p.meta[id]; live {
			t.Fatalf("page %d is live and on the free list", id)
		}
	}
	if p.inUse()+p.available() != p.capacity() {
		t.Fatalf("inUse %d + available %d != capacity %d", p.inUse(), p.available(), p.capacity())
	}
}

// TestTieredPoolRandomOps drives seeded random alloc/release/retain/pin/
// unpin/touch/fault sequences and asserts the invariants after every
// operation. Deterministic: a failure reproduces from the logged seed.
func TestTieredPoolRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := newTieredPool(8, 12, lruEvictor{})
		live := map[int32]int{} // id -> expected refs
		pinned := map[int32]int{}
		for step := 0; step < 600; step++ {
			switch rng.Intn(7) {
			case 0: // alloc
				n := 1 + rng.Intn(4)
				wantOK := p.available() >= n
				ids, _, ok := p.alloc(n, rng.Intn(3))
				// alloc may legitimately fail below capacity only when
				// pinned pages block device room.
				if ok != wantOK && len(pinned) == 0 {
					t.Fatalf("seed %d step %d: alloc(%d) ok=%v with %d available and nothing pinned",
						seed, step, n, ok, p.available())
				}
				for _, id := range ids {
					if _, dup := live[id]; dup {
						t.Fatalf("seed %d step %d: id %d handed out twice", seed, step, id)
					}
					live[id] = 1
				}
			case 1: // release one reference of a random live id
				for id := range live {
					freed := p.release(id)
					live[id]--
					if (live[id] == 0) != freed {
						t.Fatalf("seed %d step %d: release freed=%v with %d expected refs", seed, step, freed, live[id])
					}
					if live[id] == 0 {
						delete(live, id)
						delete(pinned, id)
					}
					break
				}
			case 2: // double-free / unknown-free must report false
				if p.release(int32(10_000 + rng.Intn(100))) {
					t.Fatalf("seed %d step %d: released an unknown id", seed, step)
				}
			case 3: // retain (export/import sharing)
				for id := range live {
					p.retain(id)
					live[id]++
					break
				}
			case 4: // pin/unpin
				for id := range live {
					if rng.Intn(2) == 0 {
						if _, ok := p.pin(id); ok {
							pinned[id]++
						}
					} else if pinned[id] > 0 {
						p.unpin(id, p.meta[id].gen)
						pinned[id]--
						if pinned[id] == 0 {
							delete(pinned, id)
						}
					}
					break
				}
			case 5: // touch
				for id := range live {
					p.touch(id)
					break
				}
			case 6: // fault a random subset back to device
				ids := make([]int32, 0, 4)
				for id := range live {
					ids = append(ids, id)
					if len(ids) == cap(ids) {
						break
					}
				}
				for _, id := range ids {
					p.pin(id)
					pinned[id]++
				}
				if _, _, ok := p.faultIn(ids); ok {
					for _, id := range ids {
						if m := p.meta[id]; m != nil && m.tier != tierDevice {
							t.Fatalf("seed %d step %d: faulted page %d not device-resident", seed, step, id)
						}
					}
				}
				for _, id := range ids {
					p.unpin(id, p.meta[id].gen)
					pinned[id]--
					if pinned[id] <= 0 {
						delete(pinned, id)
					}
				}
			}
			checkTieredInvariants(t, p)
			for id, m := range p.meta {
				if live[id] != m.refs {
					t.Fatalf("seed %d step %d: id %d refs %d, expected %d", seed, step, id, m.refs, live[id])
				}
			}
		}
		// Drain: releasing every reference empties both tiers.
		for id, refs := range live {
			for i := 0; i < refs; i++ {
				p.release(id)
			}
		}
		if p.inUse() != 0 || p.devInUse != 0 || p.hostInUse != 0 {
			t.Fatalf("seed %d: pages lost after full drain: %+v", seed, p.stats())
		}
	}
}

// TestTieredPoolPinnedNeverEvicted pins the offload-safety contract: a
// pinned page is never chosen as an offload victim, even when that makes
// allocation fail below nominal capacity.
func TestTieredPoolPinnedNeverEvicted(t *testing.T) {
	p := newTieredPool(2, 4, lruEvictor{})
	ids, _, ok := p.alloc(2, 0)
	if !ok {
		t.Fatal("alloc failed")
	}
	gen0, _ := p.pin(ids[0])
	p.pin(ids[1])
	if _, _, ok := p.alloc(1, 0); ok {
		t.Fatal("alloc evicted a pinned page")
	}
	p.unpin(ids[0], gen0)
	fresh, swapped, ok := p.alloc(1, 0)
	if !ok || swapped != 1 {
		t.Fatalf("alloc after unpin: ok=%v swapped=%d", ok, swapped)
	}
	if tier, _ := p.resident(ids[0]); tier != tierHost {
		t.Fatal("unpinned LRU page was not the victim")
	}
	if tier, _ := p.resident(ids[1]); tier != tierDevice {
		t.Fatal("pinned page was offloaded")
	}
	if tier, _ := p.resident(fresh[0]); tier != tierDevice {
		t.Fatal("fresh page not device-resident")
	}
}

// TestTieredPoolEvictionPolicies pins victim ordering: LRU offloads the
// coldest page; the priority policy offloads the lowest-priority queue's
// pages first and falls back to LRU within a class.
func TestTieredPoolEvictionPolicies(t *testing.T) {
	// LRU: oldest-touched page goes first.
	p := newTieredPool(3, 3, lruEvictor{})
	ids, _, _ := p.alloc(3, 0)
	p.touch(ids[0]) // ids[1] is now coldest
	if _, _, ok := p.alloc(1, 0); !ok {
		t.Fatal("alloc failed")
	}
	if tier, _ := p.resident(ids[1]); tier != tierHost {
		t.Fatalf("LRU did not evict the coldest page")
	}

	// Priority: a hot low-priority page loses to a cold high-priority one.
	q := newTieredPool(2, 2, priorityEvictor{})
	hi, _, _ := q.alloc(1, 5)
	lo, _, _ := q.alloc(1, 1)
	q.touch(lo[0]) // lo is hotter, but lower priority
	if _, _, ok := q.alloc(1, 3); !ok {
		t.Fatal("alloc failed")
	}
	if tier, _ := q.resident(lo[0]); tier != tierHost {
		t.Fatal("priority evictor did not prefer the low-priority page")
	}
	if tier, _ := q.resident(hi[0]); tier != tierDevice {
		t.Fatal("priority evictor offloaded the high-priority page")
	}
}

// TestTieredPoolFaultInMakesRoom exercises fault-in under a full device
// tier: cold pages offload to admit the faulted set.
func TestTieredPoolFaultInMakesRoom(t *testing.T) {
	p := newTieredPool(2, 2, lruEvictor{})
	a, _, _ := p.alloc(2, 0)
	b, _, ok := p.alloc(2, 0) // offloads a[0], a[1]
	if !ok {
		t.Fatal("second alloc failed")
	}
	if in, out, ok := p.faultIn(a); !ok || in != 2 || out != 2 {
		t.Fatalf("faultIn = %d in, %d out, ok=%v; want 2, 2, true", in, out, ok)
	}
	for _, id := range a {
		if tier, _ := p.resident(id); tier != tierDevice {
			t.Fatalf("faulted page %d not device-resident", id)
		}
	}
	for _, id := range b {
		if tier, _ := p.resident(id); tier != tierHost {
			t.Fatalf("victim page %d not offloaded", id)
		}
	}
	st := p.stats()
	if st.SwapInPages != 2 || st.SwapOutPages != 4 {
		t.Fatalf("swap counters = %d in, %d out; want 2 in, 4 out", st.SwapInPages, st.SwapOutPages)
	}
	checkTieredInvariants(t, p)
}

// TestParseEviction covers the CLI surface.
func TestParseEviction(t *testing.T) {
	for in, want := range map[string]EvictionPolicy{
		"": EvictLRU, "lru": EvictLRU, "priority": EvictPriority, "pri": EvictPriority,
	} {
		got, err := ParseEviction(in)
		if err != nil || got != want {
			t.Fatalf("ParseEviction(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseEviction("bogus"); err == nil {
		t.Fatal("ParseEviction(bogus) succeeded")
	}
	if EvictLRU.String() != "lru" || EvictPriority.String() != "priority" {
		t.Fatal("EvictionPolicy names wrong")
	}
}

// TestTieredPoolStaleUnpinIgnored: an id freed while pinned and then
// recycled must not have its new owner's pin disturbed by the stale
// unpin (the generation guard).
func TestTieredPoolStaleUnpinIgnored(t *testing.T) {
	p := newTieredPool(2, 2, lruEvictor{})
	a, _, _ := p.alloc(1, 0)
	staleGen, ok := p.pin(a[0])
	if !ok {
		t.Fatal("pin failed")
	}
	// The owner is terminated mid-flight: its ref is released while the
	// pin is still outstanding, and the id recycles to a new owner.
	if !p.release(a[0]) {
		t.Fatal("release did not free")
	}
	b, _, _ := p.alloc(1, 0)
	if b[0] != a[0] {
		t.Fatalf("expected id reuse, got %d then %d", a[0], b[0])
	}
	newGen, _ := p.pin(b[0])
	if newGen == staleGen {
		t.Fatal("recycled id kept its old generation")
	}
	p.unpin(a[0], staleGen) // the late unpin from the dead call
	if p.meta[b[0]].pins != 1 {
		t.Fatalf("stale unpin disturbed the new owner: pins = %d, want 1", p.meta[b[0]].pins)
	}
	// And the new owner stays offload-safe.
	if _, _, ok := p.alloc(2, 0); ok {
		t.Fatal("alloc evicted the still-pinned recycled page")
	}
}

// TestTieredPoolFaultInDuplicatesCountOnce: a call naming the same page
// in both its read and append sets (the standard decode shape) must
// fault, evict, and bill it once.
func TestTieredPoolFaultInDuplicatesCountOnce(t *testing.T) {
	p := newTieredPool(2, 2, lruEvictor{})
	a, _, _ := p.alloc(2, 0)
	if _, _, ok := p.alloc(2, 0); !ok { // offloads both of a
		t.Fatal("second alloc failed")
	}
	dup := []int32{a[0], a[1], a[0], a[1]} // ReadKv + AppendKv mention
	in, out, ok := p.faultIn(dup)
	if !ok {
		t.Fatal("faultIn of a feasible duplicate set failed")
	}
	if in != 2 || out != 2 {
		t.Fatalf("faultIn = %d in, %d out; duplicates double-counted (want 2, 2)", in, out)
	}
	checkTieredInvariants(t, p)
}
