package core

import (
	"fmt"
	"strings"
	"time"
)

// Tiered KV-cache pool. The device pool (§5.3) gains a second, host-memory
// tier sized as a ratio of the device capacity, following "Pie: Pooling
// CPU Memory for LLM Inference": cold pages spill over PCIe to a pinned
// host pool and fault back in when a forward references them, recovering
// effective KV capacity at a bounded transfer cost. Residency is a
// per-physical-page property; handles, refcounts, export/import sharing,
// and queue-scoped reclamation are tier-agnostic and unchanged.

// pageTier is a page's current residency.
type pageTier uint8

const (
	tierDevice pageTier = iota
	tierHost
)

// EvictionPolicy names an offload victim-selection strategy
// (pie.Config.KVEviction).
type EvictionPolicy int

const (
	// EvictLRU offloads the least-recently-used device page.
	EvictLRU EvictionPolicy = iota
	// EvictPriority offloads pages of the lowest-priority command queue
	// first (the Inferlet v2 queue priority), LRU within a priority class.
	EvictPriority
)

func (p EvictionPolicy) String() string {
	if p == EvictPriority {
		return "priority"
	}
	return "lru"
}

// ParseEviction resolves a policy name (CLI flags).
func ParseEviction(s string) (EvictionPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "lru":
		return EvictLRU, nil
	case "priority", "pri", "priority-lru":
		return EvictPriority, nil
	}
	return 0, fmt.Errorf("core: unknown eviction policy %q", s)
}

// OffloadConfig parameterizes the host-memory KV tier. The zero value
// disables offload: the pool is the paper's device-only single tier.
type OffloadConfig struct {
	// HostRatio sizes the host tier as a multiple of the device page
	// capacity (1.0 doubles effective capacity). 0 disables the tier.
	HostRatio float64
	// Eviction selects the offload victim policy.
	Eviction EvictionPolicy
}

// OffloadStats snapshots a pool's tier occupancy and swap traffic.
// Aggregated across models by Controller.OffloadStats and across replicas
// by pie.Engine.Stats.
type OffloadStats struct {
	DeviceInUse    int
	DeviceCapacity int
	HostInUse      int
	HostCapacity   int
	SwapInPages    int // pages faulted host -> device
	SwapOutPages   int // pages offloaded device -> host
	PeakInUse      int // high-water mark of live pages across both tiers
	XferTime       time.Duration
}

func (s *OffloadStats) add(o OffloadStats) {
	s.DeviceInUse += o.DeviceInUse
	s.DeviceCapacity += o.DeviceCapacity
	s.HostInUse += o.HostInUse
	s.HostCapacity += o.HostCapacity
	s.SwapInPages += o.SwapInPages
	s.SwapOutPages += o.SwapOutPages
	s.PeakInUse += o.PeakInUse
	s.XferTime += o.XferTime
}

// Evictor ranks device-resident pages for offload. Implementations must
// induce a total, deterministic order (ties are broken by page id at the
// pool), so same-seed runs pick identical victims.
type Evictor interface {
	Name() string
	// Prefer reports whether candidate a should be offloaded before b.
	Prefer(a, b *pageMeta) bool
}

type lruEvictor struct{}

func (lruEvictor) Name() string               { return "lru" }
func (lruEvictor) Prefer(a, b *pageMeta) bool { return a.lastUse < b.lastUse }

type priorityEvictor struct{}

func (priorityEvictor) Name() string { return "priority" }
func (priorityEvictor) Prefer(a, b *pageMeta) bool {
	if a.pri != b.pri {
		return a.pri < b.pri // lower queue priority offloads first
	}
	return a.lastUse < b.lastUse
}

func evictorFor(p EvictionPolicy) Evictor {
	if p == EvictPriority {
		return priorityEvictor{}
	}
	return lruEvictor{}
}

// pageMeta tracks one materialized physical page id.
type pageMeta struct {
	refs    int
	tier    pageTier
	gen     uint64 // allocation generation: stale unpins from recycled ids are ignored
	lastUse uint64 // recency stamp (pool-wide monotone counter)
	pri     int    // allocating queue's scheduler priority
	pins    int    // referencing calls in flight or queued; pinned pages never offload
}

// tieredPool allocates physical KV page ids across a device tier and an
// optional host tier. Fresh pages always materialize on the device (they
// are about to be written); when device slots run out, cold unpinned
// pages offload to the host tier. Refcounts (export/import sharing) and
// the free list span both tiers.
type tieredPool struct {
	devCap  int
	hostCap int
	next    int32   // high-water mark of materialized ids
	free    []int32 // released ids available for reuse
	meta    map[int32]*pageMeta
	evict   Evictor

	devInUse  int
	hostInUse int
	useSeq    uint64
	genSeq    uint64

	// Swap traffic counters (OffloadStats).
	swapIn    int
	swapOut   int
	peakInUse int
}

func newTieredPool(devCap, hostCap int, evict Evictor) *tieredPool {
	if evict == nil {
		evict = lruEvictor{}
	}
	return &tieredPool{devCap: devCap, hostCap: hostCap, evict: evict, meta: make(map[int32]*pageMeta)}
}

// capacity is the pool's total page capacity across both tiers.
func (p *tieredPool) capacity() int { return p.devCap + p.hostCap }

// inUse reports live pages across both tiers.
func (p *tieredPool) inUse() int { return p.devInUse + p.hostInUse }

// available reports how many pages can be handed out right now, assuming
// cold pages may offload. Pinned pages can make this optimistic: alloc
// re-checks that enough device room can actually be cleared.
func (p *tieredPool) available() int { return p.capacity() - p.inUse() }

// touch stamps a page most-recently-used.
func (p *tieredPool) touch(id int32) {
	if m, ok := p.meta[id]; ok {
		p.useSeq++
		m.lastUse = p.useSeq
	}
}

// pin marks a page referenced by a queued or in-flight call; pinned pages
// are never offload victims (their memory is addressed by a kernel). It
// returns the page's allocation generation, which the matching unpin must
// present: an id can be freed and recycled while a terminated instance's
// in-flight call still holds a pin record, and a stale unpin must never
// touch the new owner's count.
func (p *tieredPool) pin(id int32) (gen uint64, ok bool) {
	m, ok := p.meta[id]
	if !ok {
		return 0, false
	}
	m.pins++
	return m.gen, true
}

// unpin releases one pin taken at generation gen; stale generations are
// ignored (see pin).
func (p *tieredPool) unpin(id int32, gen uint64) {
	if m, ok := p.meta[id]; ok && m.gen == gen && m.pins > 0 {
		m.pins--
	}
}

// victims picks up to k offload candidates — device-resident, unpinned —
// in evictor order with page-id tie-break. The scan walks materialized
// ids in order, so the choice is deterministic.
func (p *tieredPool) victims(k int) []int32 {
	if k <= 0 {
		return nil
	}
	cands := make([]int32, 0, p.devInUse)
	for id := int32(0); id < p.next; id++ {
		if m, ok := p.meta[id]; ok && m.tier == tierDevice && m.pins == 0 {
			cands = append(cands, id)
		}
	}
	// Selection sort of the k best: k is small (pages needed by one call).
	for i := 0; i < k && i < len(cands); i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			a, b := p.meta[cands[j]], p.meta[cands[best]]
			if p.evict.Prefer(a, b) || (!p.evict.Prefer(b, a) && cands[j] < cands[best]) {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

// makeDeviceRoom offloads victims until n device slots are free. It
// reports the number of pages swapped out, or ok=false — leaving the
// pool untouched, since feasibility is checked before any swap — when
// the host tier cannot absorb enough cold pages or too few unpinned
// victims exist.
func (p *tieredPool) makeDeviceRoom(n int) (swapped int, ok bool) {
	devFree := p.devCap - p.devInUse
	if devFree >= n {
		return 0, true
	}
	need := n - devFree
	if p.hostCap-p.hostInUse < need {
		return 0, false
	}
	vs := p.victims(need)
	if len(vs) < need {
		return 0, false
	}
	p.offload(vs)
	return need, true
}

// offload moves the given device-resident pages to the host tier,
// updating tier counters and swap stats.
func (p *tieredPool) offload(ids []int32) {
	for _, id := range ids {
		m := p.meta[id]
		m.tier = tierHost
		p.devInUse--
		p.hostInUse++
		p.swapOut++
	}
}

// alloc hands out n fresh device-resident ids with refcount 1 and the
// given queue priority, offloading cold pages to the host tier as needed.
// It reports the pages swapped out (for transfer-cost charging) and
// failure — leaving the pool untouched — when total capacity or
// clearable device room is insufficient.
func (p *tieredPool) alloc(n, pri int) (ids []int32, swappedOut int, ok bool) {
	if p.available() < n {
		return nil, 0, false
	}
	swappedOut, ok = p.makeDeviceRoom(n)
	if !ok {
		return nil, 0, false
	}
	ids = make([]int32, 0, n)
	for len(ids) < n && len(p.free) > 0 {
		id := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		ids = append(ids, id)
	}
	for len(ids) < n {
		ids = append(ids, p.next)
		p.next++
	}
	for _, id := range ids {
		p.useSeq++
		p.genSeq++
		p.meta[id] = &pageMeta{refs: 1, tier: tierDevice, gen: p.genSeq, lastUse: p.useSeq, pri: pri}
	}
	p.devInUse += n
	if p.inUse() > p.peakInUse {
		p.peakInUse = p.inUse()
	}
	return ids, swappedOut, true
}

// faultIn brings every host-resident page in ids back to the device tier
// (prefetch for a forward/copy/mask that references them), offloading
// other cold pages to make room. Duplicate ids count once. It reports
// pages swapped in and out; a fault that cannot clear device room fails
// with ok=false and performs no swaps. Callers pin ids first, so
// room-making never victimizes the faulting set.
func (p *tieredPool) faultIn(ids []int32) (in, out int, ok bool) {
	need := 0
	seen := make(map[int32]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		if m, okm := p.meta[id]; okm && m.tier == tierHost {
			need++
		}
	}
	if need == 0 {
		return 0, 0, true
	}
	// Faulting k pages to the device frees k host slots, so host room is
	// never the constraint here — only clearable device room is.
	if evict := need - (p.devCap - p.devInUse); evict > 0 {
		vs := p.victims(evict)
		if len(vs) < evict {
			return 0, 0, false
		}
		p.offload(vs)
		out = evict
	}
	for _, id := range ids {
		if m, okm := p.meta[id]; okm && m.tier == tierHost {
			m.tier = tierDevice
			p.hostInUse--
			p.devInUse++
			p.swapIn++
			p.useSeq++
			m.lastUse = p.useSeq
			in++
		}
	}
	return in, out, true
}

// retain bumps an id's refcount (export/import sharing).
func (p *tieredPool) retain(id int32) {
	if m, ok := p.meta[id]; ok {
		m.refs++
	}
}

// release drops one reference; the id returns to the free list at zero.
// It reports whether the id was actually freed.
func (p *tieredPool) release(id int32) bool {
	m, ok := p.meta[id]
	if !ok {
		return false
	}
	if m.refs > 1 {
		m.refs--
		return false
	}
	if m.tier == tierDevice {
		p.devInUse--
	} else {
		p.hostInUse--
	}
	delete(p.meta, id)
	p.free = append(p.free, id)
	return true
}

// resident reports the page's tier; ok=false for unknown/free ids.
func (p *tieredPool) resident(id int32) (pageTier, bool) {
	m, ok := p.meta[id]
	if !ok {
		return 0, false
	}
	return m.tier, true
}

// stats snapshots the pool's offload counters.
func (p *tieredPool) stats() OffloadStats {
	return OffloadStats{
		DeviceInUse:    p.devInUse,
		DeviceCapacity: p.devCap,
		HostInUse:      p.hostInUse,
		HostCapacity:   p.hostCap,
		SwapInPages:    p.swapIn,
		SwapOutPages:   p.swapOut,
		PeakInUse:      p.peakInUse,
	}
}
