package core

import (
	"testing"
	"testing/quick"
)

func TestPoolAllocRelease(t *testing.T) {
	p := newPool(4)
	ids, ok := p.alloc(3)
	if !ok || len(ids) != 3 {
		t.Fatalf("alloc(3) = %v, %v", ids, ok)
	}
	if p.available() != 1 {
		t.Fatalf("available = %d, want 1", p.available())
	}
	if _, ok := p.alloc(2); ok {
		t.Fatal("overallocation succeeded")
	}
	if !p.release(ids[0]) {
		t.Fatal("release did not free")
	}
	if p.available() != 2 {
		t.Fatalf("available = %d, want 2", p.available())
	}
	// Freed ids are reused.
	again, ok := p.alloc(2)
	if !ok {
		t.Fatal("alloc after release failed")
	}
	seen := false
	for _, id := range again {
		if id == ids[0] {
			seen = true
		}
	}
	if !seen {
		t.Fatal("freed id was not reused")
	}
}

func TestPoolRefcounting(t *testing.T) {
	p := newPool(2)
	ids, _ := p.alloc(1)
	p.retain(ids[0])
	if freed := p.release(ids[0]); freed {
		t.Fatal("released with outstanding reference")
	}
	if freed := p.release(ids[0]); !freed {
		t.Fatal("final release did not free")
	}
	if p.release(ids[0]) {
		t.Fatal("double release freed again")
	}
}

func TestPoolInUse(t *testing.T) {
	p := newPool(10)
	p.alloc(4)
	if p.inUse() != 4 {
		t.Fatalf("inUse = %d, want 4", p.inUse())
	}
}

// Property: any interleaving of alloc/release keeps available+inUse equal
// to capacity and never double-hands-out an id.
func TestQuickPoolInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		p := newPool(16)
		live := map[int32]bool{}
		for _, op := range ops {
			if op%2 == 0 {
				n := int(op/2)%4 + 1
				ids, ok := p.alloc(n)
				if ok {
					for _, id := range ids {
						if live[id] {
							return false // double allocation
						}
						live[id] = true
					}
				}
			} else {
				for id := range live {
					p.release(id)
					delete(live, id)
					break
				}
			}
			if p.available()+p.inUse() != 16 {
				return false
			}
			if p.inUse() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortQueuesPriorityThenID(t *testing.T) {
	qs := []*cmdQueue{
		{id: 3, priority: 0},
		{id: 1, priority: 5},
		{id: 2, priority: 5},
		{id: 4, priority: -1},
	}
	sortQueues(qs)
	wantIDs := []int{1, 2, 3, 4}
	for i, q := range qs {
		if int(q.id) != wantIDs[i] {
			t.Fatalf("order = %v, want ids %v", qs, wantIDs)
		}
	}
}
