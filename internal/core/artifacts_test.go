package core

import (
	"reflect"
	"testing"
)

// launch emulates the ILM's sequence: probe residency, then admit with
// the cold verdict. Returns whether the launch was cold.
func launch(c *artifactCache, key string, size int64) bool {
	cold := !c.has(key)
	c.admit(key, size, cold)
	return cold
}

// The warm-artifact cache is the replica-side half of the program
// deployment API: first launch admits (cold), repeats hit (warm), and
// capacity pressure evicts the least-recently-launched artifact.
func TestArtifactCacheAdmitAndLRU(t *testing.T) {
	c := newArtifactCache(100)

	if !launch(c, "a@1.0.0", 40) {
		t.Fatal("first launch of a must be cold")
	}
	if launch(c, "a@1.0.0", 40) {
		t.Fatal("second launch of a must be warm")
	}
	if !launch(c, "b@1.0.0", 40) || !c.has("a@1.0.0") || !c.has("b@1.0.0") {
		t.Fatal("a and b should coexist under capacity")
	}

	// Touch a so b becomes the LRU victim, then admit c over capacity.
	launch(c, "a@1.0.0", 40)
	if !launch(c, "c@1.0.0", 40) {
		t.Fatal("first launch of c must be cold")
	}
	if c.has("b@1.0.0") {
		t.Fatal("b should have been evicted (least recently launched)")
	}
	if got := c.keys(); !reflect.DeepEqual(got, []string{"a@1.0.0", "c@1.0.0"}) {
		t.Fatalf("resident artifacts = %v", got)
	}
	if c.used != 80 {
		t.Fatalf("used = %d, want 80", c.used)
	}
	if c.evictions != 1 || c.hits != 2 || c.misses != 3 {
		t.Fatalf("stats = evictions %d hits %d misses %d", c.evictions, c.hits, c.misses)
	}

	// A re-launch of the evicted artifact is cold again.
	if !launch(c, "b@1.0.0", 40) {
		t.Fatal("relaunch of evicted b must be cold")
	}
}

// A launch that raced a still-compiling artifact paid the full pipeline
// even though the admit landed first: the caller's cold verdict drives
// the hit/miss stats, not residency at admit time.
func TestArtifactCacheConcurrentColdCountsAsMiss(t *testing.T) {
	c := newArtifactCache(100)
	// Both launches probed before either compile finished.
	cold1, cold2 := !c.has("x@1.0.0"), !c.has("x@1.0.0")
	c.admit("x@1.0.0", 10, cold1)
	c.admit("x@1.0.0", 10, cold2)
	if c.misses != 2 || c.hits != 0 {
		t.Fatalf("misses=%d hits=%d, want 2/0 (both paid the JIT)", c.misses, c.hits)
	}
	if !c.has("x@1.0.0") {
		t.Fatal("artifact must be resident after the race settles")
	}
}

func TestArtifactCacheOversizeAndUnbounded(t *testing.T) {
	c := newArtifactCache(100)
	launch(c, "small@1.0.0", 10)
	// An artifact larger than the whole cache serves uncached: every
	// launch stays cold and nothing resident is displaced for it.
	if !launch(c, "huge@1.0.0", 500) || !launch(c, "huge@1.0.0", 500) {
		t.Fatal("oversized artifact must stay cold on every launch")
	}
	if !c.has("small@1.0.0") || c.has("huge@1.0.0") {
		t.Fatal("oversized artifact must not displace resident entries")
	}

	// Negative capacity disables eviction entirely.
	u := newArtifactCache(-1)
	for i := 0; i < 8; i++ {
		launch(u, string(rune('a'+i))+"@1.0.0", 1<<30)
	}
	if len(u.entries) != 8 || u.evictions != 0 {
		t.Fatalf("unbounded cache evicted: %d entries, %d evictions", len(u.entries), u.evictions)
	}
}
