// Package core implements Pie's control layer (§5.2): the controller that
// serves inferlet API calls, virtualizes Embed/KvPage resources, batches
// GPU-bound calls through command queues, and dispatches completion events
// back to inferlets.
package core

import (
	"fmt"
	"time"

	"pie/api"
	"pie/internal/infer"
	"pie/internal/sim"
)

// pool tracks allocation state for one physical resource array. The memory
// itself lives in the inference layer (infer.ModelRuntime); the control
// layer owns the free list and reference counts — exactly the split §5.3
// prescribes. KvPages are refcounted because export/import lets several
// inferlets share one physical page.
type pool struct {
	capacity int
	next     int32   // high-water mark of materialized ids
	free     []int32 // released ids available for reuse
	refs     map[int32]int
}

func newPool(capacity int) *pool {
	return &pool{capacity: capacity, refs: make(map[int32]int)}
}

// available reports how many ids can be handed out right now.
func (p *pool) available() int {
	return len(p.free) + (p.capacity - int(p.next))
}

// inUse reports the number of live ids.
func (p *pool) inUse() int { return int(p.next) - len(p.free) }

// alloc hands out n ids with refcount 1, or reports failure leaving the
// pool untouched.
func (p *pool) alloc(n int) ([]int32, bool) {
	if p.available() < n {
		return nil, false
	}
	ids := make([]int32, 0, n)
	for len(ids) < n && len(p.free) > 0 {
		id := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		ids = append(ids, id)
	}
	for len(ids) < n {
		ids = append(ids, p.next)
		p.next++
	}
	for _, id := range ids {
		p.refs[id] = 1
	}
	return ids, true
}

// retain bumps an id's refcount (export/import sharing).
func (p *pool) retain(id int32) { p.refs[id]++ }

// release drops one reference; the id returns to the free list at zero.
// It reports whether the id was actually freed.
func (p *pool) release(id int32) bool {
	r, ok := p.refs[id]
	if !ok {
		return false
	}
	if r > 1 {
		p.refs[id] = r - 1
		return false
	}
	delete(p.refs, id)
	p.free = append(p.free, id)
	return true
}

// resRef locates a physical resource: which model's pool, which index.
type resRef struct {
	model string
	phys  int32
}

// Instance is the control layer's view of one running inferlet: its
// virtual resource address space, queues, and accounting.
type Instance struct {
	ID         uint64
	Name       string
	CreatedSeq uint64
	Proc       *sim.Proc

	vEmbeds   map[api.Embed]resRef
	vPages    map[api.KvPage]resRef
	nextEmbed api.Embed
	nextPage  api.KvPage
	queues    map[api.Queue]*cmdQueue
	dead      bool
	onKill    func(reason error) // ILM hook: unwind the inferlet process

	// Manifest-declared resource limits (deployment API v2), set by the
	// ILM before the instance runs; zero fields are unlimited. The
	// controller enforces them with api.ErrLimitExceeded.
	MaxQueues  int
	MaxKvPages int
	// DefaultPriority seeds the batch-scheduler priority of every queue
	// the instance opens (LaunchSpec.Priority).
	DefaultPriority int
	// Class is the launch's resolved service class name (empty when
	// unclassed); the latency observer attributes TTFT/ITL samples to it.
	Class string
	// Degraded marks a launch admitted under graceful degradation: its
	// output was capped by the admission layer and Session.Open substitutes
	// the cheapest trait-compatible model variant.
	Degraded bool

	// Latency-observer bookkeeping: launch registration time, whether the
	// first forward pass has completed (TTFT sample taken), and the
	// completion time of the most recent forward pass (ITL reference).
	launchedAt  time.Duration
	sawFirstTok bool
	lastTokenAt time.Duration

	// HandoffPending marks a session whose prefill completed on a
	// prefill-role replica: the first-token observer sets it, and the
	// session's next forward boundary consults the cluster's handoff
	// coordinator to migrate the KV state to a decode replica.
	HandoffPending bool

	// Instrumentation (Fig. 10/11).
	ControlCalls int
	InferCalls   int
	OutputTokens int
}

// ReportOutputTokens is called by the session when the application accepts
// generated tokens; Fig. 11 normalizes API-call counts by this.
func (inst *Instance) ReportOutputTokens(n int) { inst.OutputTokens += n }

// Dead reports whether the instance has been released. The ILM checks it
// after the cold-launch JIT sleep: an instance registered at placement
// time can be reclaimed (FCFS policy) before its process ever starts.
func (inst *Instance) Dead() bool { return inst.dead }

// cmdQueue is one command queue (§4.1): a FIFO of API calls whose
// dependencies are unambiguous (in-order within the queue) and which
// carries a scheduling priority.
type cmdQueue struct {
	id       api.Queue
	inst     *Instance
	model    string
	rt       *infer.ModelRuntime
	priority int
	pending  []*infer.Call
	inflight int
	closed   bool

	// Ready-bucket index state, owned by the Scheduler: which (op,
	// runtime) bucket the queue currently sits in, its slot there, and how
	// many pending calls it contributes to the incremental K-only count.
	bucket    *readyBucket
	bucketIdx int
	counted   int
}

func (q *cmdQueue) head() *infer.Call {
	if len(q.pending) == 0 {
		return nil
	}
	return q.pending[0]
}

func (q *cmdQueue) pop() *infer.Call {
	c := q.pending[0]
	q.pending[0] = nil
	q.pending = q.pending[1:]
	return c
}

// exportEntry is a named, shareable set of KV pages (export_kvpage /
// import_kvpage). The registry holds its own reference on every page, so
// exported context survives its exporter — the mechanism behind
// application-managed prompt caching (§7.2 optimization #1).
type exportEntry struct {
	model string
	phys  []int32
}

// errTerminated wraps api.ErrTerminated with policy context.
func errTerminated(need int, model string) error {
	return fmt.Errorf("%w: FCFS policy reclaimed this inferlet (%d pages short on %s)",
		api.ErrTerminated, need, model)
}

// Timing knobs for control-layer call handling (Fig. 10: control-layer
// calls cost a few µs and stay under ~30µs even at 896 concurrent
// inferlets; the slight growth models the shared controller core).
const (
	controlCallBase    = 3 * time.Microsecond
	controlCallPerInst = 25 * time.Nanosecond
)
