package core

import (
	"time"

	"pie/internal/infer"
	"pie/internal/sim"
)

// SchedPolicy selects the batch-dispatch strategy (§6.1, Table 5).
type SchedPolicy int

const (
	// PolicyAdaptive is the work-conserving default: queue while the GPU is
	// busy, form the largest eligible batch the instant it goes idle.
	PolicyAdaptive SchedPolicy = iota
	// PolicyEager dispatches every call as its own batch immediately.
	PolicyEager
	// PolicyKOnly dispatches a batch only once K same-type calls queue.
	PolicyKOnly
	// PolicyTOnly dispatches whatever queued every T interval.
	PolicyTOnly
)

func (p SchedPolicy) String() string {
	switch p {
	case PolicyAdaptive:
		return "adaptive"
	case PolicyEager:
		return "eager"
	case PolicyKOnly:
		return "k-only"
	case PolicyTOnly:
		return "t-only"
	}
	return "unknown"
}

// SchedConfig parameterizes the scheduler.
type SchedConfig struct {
	Policy        SchedPolicy
	K             int           // PolicyKOnly threshold
	T             time.Duration // PolicyTOnly flush interval
	MaxBatchCalls int           // backend's maximum batch size (tail-truncated)
	// SchedOverhead is the control-layer batch-formation cost added to each
	// batch (Table 3: +0.050 ms "overhead of control layer batch
	// scheduling").
	SchedOverhead time.Duration
	// DistReturnOverhead models shipping truncated distributions back to
	// inferlets (Table 3: +0.070 ms "overhead of returning output
	// distribution"), charged on get_next_dist batches.
	DistReturnOverhead time.Duration
}

// DefaultSchedConfig returns the paper's production configuration.
func DefaultSchedConfig() SchedConfig {
	return SchedConfig{
		Policy:             PolicyAdaptive,
		K:                  32,
		T:                  5 * time.Millisecond,
		MaxBatchCalls:      256,
		SchedOverhead:      50 * time.Microsecond,
		DistReturnOverhead: 70 * time.Microsecond,
	}
}

// Scheduler groups compatible GPU-bound API calls into batches (§5.2).
//
// Vertical batching: consecutive same-type calls from one command queue
// join one batch; because the backend executes a batch's calls in order at
// kernel completion, chained forwards (call N+1 reading call N's output
// pages — the paper's split-prefill example) are correct inside one batch.
//
// Horizontal batching: head-runs from different queues merge, higher
// priority queues placed first; the batch is truncated at MaxBatchCalls
// from the tail. Among op types, the one whose oldest pending call has
// waited longest wins.
type Scheduler struct {
	clock *sim.Clock
	ctl   *Controller
	cfg   SchedConfig

	queues map[*cmdQueue]struct{}
	callQ  map[*infer.Call]*cmdQueue

	kickPending bool

	// Stats.
	Batches      int
	BatchedCalls int
	MaxBatch     int
}

// kickDelay is the adaptive policy's dispatch hysteresis: batch formation
// waits for the in-flight completion wave (event-dispatcher fan-out plus
// the IPC hop) to deliver its burst of follow-up API calls before forming
// a batch. Without it, the first call of a wave would flush as a tiny
// batch and the cohort would fragment into phase groups that alternate on
// the GPU forever. The cost shows up in Table 3's "+0.05 ms batch
// scheduling" row.
const kickDelay = 20 * time.Microsecond

func newScheduler(clock *sim.Clock, ctl *Controller, cfg SchedConfig) *Scheduler {
	if cfg.MaxBatchCalls <= 0 {
		cfg.MaxBatchCalls = 256
	}
	s := &Scheduler{
		clock:  clock,
		ctl:    ctl,
		cfg:    cfg,
		queues: make(map[*cmdQueue]struct{}),
		callQ:  make(map[*infer.Call]*cmdQueue),
	}
	switch cfg.Policy {
	case PolicyTOnly:
		clock.GoDaemon("sched:ticker", s.tickerLoop)
	case PolicyKOnly:
		// A slow safety flush keeps sub-K tails from stalling forever; the
		// paper's K-only baseline is otherwise strictly threshold-driven.
		clock.GoDaemon("sched:konly-flush", s.kOnlyFlushLoop)
	}
	return s
}

// Config returns the active configuration.
func (s *Scheduler) Config() SchedConfig { return s.cfg }

func (s *Scheduler) tickerLoop() {
	for {
		s.clock.Sleep(s.cfg.T)
		for s.dispatchOne() {
		}
	}
}

func (s *Scheduler) kOnlyFlushLoop() {
	const stallLimit = 100 * time.Millisecond
	for {
		s.clock.Sleep(stallLimit / 2)
		for q := range s.queues {
			if q.closed || q.inflight > 0 || len(q.pending) == 0 {
				continue
			}
			h := q.head()
			if h != nil && !h.Op.ControlSide() && s.clock.Now()-h.Enq > stallLimit {
				s.dispatchOne()
				break
			}
		}
	}
}

// onEnqueue reacts to a new call on q.
func (s *Scheduler) onEnqueue(q *cmdQueue) {
	s.queues[q] = struct{}{}
	h := q.head()
	if h != nil && h.Op.ControlSide() {
		s.ctl.drainControlOps(q)
	}
	switch s.cfg.Policy {
	case PolicyEager:
		for s.dispatchOne() {
		}
	case PolicyAdaptive:
		if s.ctl.backend.Device.Idle() {
			s.scheduleKick()
		}
	case PolicyKOnly:
		if s.pendingDispatchable() >= s.cfg.K {
			s.dispatchOne()
		}
	case PolicyTOnly:
		// ticker only
	}
}

// scheduleKick arms a one-shot batch-formation event kickDelay from now
// (see kickDelay). At most one kick is pending at a time.
func (s *Scheduler) scheduleKick() {
	if s.kickPending {
		return
	}
	s.kickPending = true
	s.clock.GoDaemon("sched:kick", func() {
		s.clock.Sleep(kickDelay)
		s.kickPending = false
		if s.ctl.backend.Device.Idle() {
			s.dispatchOne()
		}
	})
}

// onDeviceIdle is the work-conserving trigger (§6.1): the inference layer
// notifies the moment the GPU drains.
func (s *Scheduler) onDeviceIdle() {
	switch s.cfg.Policy {
	case PolicyAdaptive:
		s.scheduleKick()
	case PolicyEager:
		s.dispatchOne()
	}
}

// tryDispatch is called after completions release queue ordering.
func (s *Scheduler) tryDispatch() {
	switch s.cfg.Policy {
	case PolicyAdaptive:
		if s.ctl.backend.Device.Idle() {
			s.scheduleKick()
		}
	case PolicyEager:
		for s.dispatchOne() {
		}
	case PolicyKOnly:
		if s.pendingDispatchable() >= s.cfg.K {
			s.dispatchOne()
		}
	}
}

// pendingDispatchable counts calls at eligible queue heads and their
// same-type runs.
func (s *Scheduler) pendingDispatchable() int {
	n := 0
	for q := range s.queues {
		if q.closed || q.inflight > 0 || len(q.pending) == 0 {
			continue
		}
		if q.head().Op.ControlSide() {
			continue
		}
		n += len(q.pending)
	}
	return n
}

// dispatchOne forms and submits a single batch; it reports whether one was
// dispatched.
//
// Type selection: light stage-ops (embed, sampling, KV maintenance) beat
// forwards, and within a class the type whose oldest pending call has
// waited longest wins. Draining the light ops first lets every inferlet
// blocked behind them reach its next forward, so the expensive kernel
// forms at full cohort width instead of splitting into alternating phase
// groups.
func (s *Scheduler) dispatchOne() bool {
	type key struct {
		op infer.Op
		rt *infer.ModelRuntime
	}
	oldest := map[key]time.Duration{}
	var bestKey key
	var haveBest bool
	better := func(a, b key) bool { // a beats b
		lightA, lightB := a.op != infer.OpForward, b.op != infer.OpForward
		if lightA != lightB {
			return lightA
		}
		return oldest[a] < oldest[b]
	}
	for q := range s.queues {
		if q.closed || q.inflight > 0 {
			continue
		}
		s.ctl.drainControlOps(q)
		h := q.head()
		if h == nil || h.Op.ControlSide() {
			continue
		}
		k := key{h.Op, q.rt}
		if t, ok := oldest[k]; !ok || h.Enq < t {
			oldest[k] = h.Enq
		}
		if !haveBest || better(k, bestKey) {
			bestKey, haveBest = k, true
		}
	}
	if !haveBest {
		return false
	}

	// Gather queues whose head matches, by priority then queue id.
	var eligible []*cmdQueue
	for q := range s.queues {
		if q.closed || q.inflight > 0 {
			continue
		}
		h := q.head()
		if h == nil || h.Op.ControlSide() {
			continue
		}
		if h.Op == bestKey.op && q.rt == bestKey.rt {
			eligible = append(eligible, q)
		}
	}
	sortQueues(eligible)

	batch := &infer.Batch{Op: bestKey.op, Model: bestKey.rt}
	max := s.cfg.MaxBatchCalls
	if s.cfg.Policy == PolicyEager {
		max = 1
	}
	for _, q := range eligible {
		if len(batch.Calls) >= max {
			break // truncate from the tail (§5.2)
		}
		// Vertical: take the head run of same-type calls.
		for len(q.pending) > 0 && len(batch.Calls) < max {
			h := q.head()
			if h.Op != bestKey.op {
				break
			}
			q.pop()
			q.inflight++
			s.callQ[h] = q
			batch.Calls = append(batch.Calls, h)
		}
	}
	if len(batch.Calls) == 0 {
		return false
	}
	batch.Extra = s.cfg.SchedOverhead
	if batch.Op == infer.OpNextDist {
		batch.Extra += s.cfg.DistReturnOverhead
	}
	s.Batches++
	s.BatchedCalls += len(batch.Calls)
	if len(batch.Calls) > s.MaxBatch {
		s.MaxBatch = len(batch.Calls)
	}
	s.ctl.backend.Submit(batch)
	return true
}

func sortQueues(qs []*cmdQueue) {
	// Insertion sort: eligible sets are small and allocation-free ordering
	// keeps the scheduler cheap.
	for i := 1; i < len(qs); i++ {
		for j := i; j > 0; j-- {
			a, b := qs[j-1], qs[j]
			if b.priority > a.priority || (b.priority == a.priority && b.id < a.id) {
				qs[j-1], qs[j] = b, a
			} else {
				break
			}
		}
	}
}

// queueOf maps an in-flight call back to its queue.
func (s *Scheduler) queueOf(c *infer.Call) *cmdQueue { return s.callQ[c] }

// forgetCall drops completion bookkeeping.
func (s *Scheduler) forgetCall(c *infer.Call) { delete(s.callQ, c) }

// forgetQueue removes a closed queue from scheduling.
func (s *Scheduler) forgetQueue(q *cmdQueue) { delete(s.queues, q) }

// AvgBatchSize reports mean calls per batch.
func (s *Scheduler) AvgBatchSize() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchedCalls) / float64(s.Batches)
}
