package core

import (
	"time"

	"pie/internal/infer"
	"pie/internal/sim"
)

// SchedPolicy selects the batch-dispatch strategy (§6.1, Table 5).
type SchedPolicy int

const (
	// PolicyAdaptive is the work-conserving default: queue while the GPU is
	// busy, form the largest eligible batch the instant it goes idle.
	PolicyAdaptive SchedPolicy = iota
	// PolicyEager dispatches every call as its own batch immediately.
	PolicyEager
	// PolicyKOnly dispatches a batch only once K same-type calls queue.
	PolicyKOnly
	// PolicyTOnly dispatches whatever queued every T interval.
	PolicyTOnly
)

func (p SchedPolicy) String() string {
	switch p {
	case PolicyAdaptive:
		return "adaptive"
	case PolicyEager:
		return "eager"
	case PolicyKOnly:
		return "k-only"
	case PolicyTOnly:
		return "t-only"
	}
	return "unknown"
}

// SchedConfig parameterizes the scheduler.
type SchedConfig struct {
	Policy        SchedPolicy
	K             int           // PolicyKOnly threshold
	T             time.Duration // PolicyTOnly flush interval
	MaxBatchCalls int           // backend's maximum batch size (tail-truncated)
	// SchedOverhead is the control-layer batch-formation cost added to each
	// batch (Table 3: +0.050 ms "overhead of control layer batch
	// scheduling").
	SchedOverhead time.Duration
	// DistReturnOverhead models shipping truncated distributions back to
	// inferlets (Table 3: +0.070 ms "overhead of returning output
	// distribution"), charged on get_next_dist batches.
	DistReturnOverhead time.Duration
}

// DefaultSchedConfig returns the paper's production configuration.
func DefaultSchedConfig() SchedConfig {
	return SchedConfig{
		Policy:             PolicyAdaptive,
		K:                  32,
		T:                  5 * time.Millisecond,
		MaxBatchCalls:      256,
		SchedOverhead:      50 * time.Microsecond,
		DistReturnOverhead: 70 * time.Microsecond,
	}
}

// bucketKey identifies a batch-compatible class of calls: one op type on
// one model runtime.
type bucketKey struct {
	op infer.Op
	rt *infer.ModelRuntime
}

// readyBucket indexes every queue whose head call is dispatchable right
// now for one (op, runtime) class. Buckets are maintained incrementally on
// enqueue/pop/complete/close, so batch formation touches only eligible
// queues instead of rescanning every queue in the system. The creation seq
// provides a deterministic tie-break when two classes have equally-old
// heads (a plain map iteration there would leak map order into the batch
// stream and break the sim package's determinism contract).
type readyBucket struct {
	key    bucketKey
	seq    uint64 // creation order; deterministic tie-break
	queues []*cmdQueue
}

// remove drops the queue at index i (swap-remove; member order is
// irrelevant because batch formation re-sorts by priority).
func (b *readyBucket) remove(i int) {
	last := len(b.queues) - 1
	moved := b.queues[last]
	b.queues[i] = moved
	moved.bucketIdx = i
	b.queues[last] = nil
	b.queues = b.queues[:last]
}

// Scheduler groups compatible GPU-bound API calls into batches (§5.2).
//
// Vertical batching: consecutive same-type calls from one command queue
// join one batch; because the backend executes a batch's calls in order at
// kernel completion, chained forwards (call N+1 reading call N's output
// pages — the paper's split-prefill example) are correct inside one batch.
//
// Horizontal batching: head-runs from different queues merge, higher
// priority queues placed first; the batch is truncated at MaxBatchCalls
// from the tail. Among op types, the one whose oldest pending call has
// waited longest wins.
type Scheduler struct {
	clock *sim.Clock
	ctl   *Controller
	cfg   SchedConfig

	buckets   map[bucketKey]*readyBucket
	bucketSeq uint64
	callQ     map[*infer.Call]*cmdQueue

	// readyCalls is the number of pending calls on currently-eligible
	// queues, maintained incrementally so the K-only policy never rescans
	// the queue set (the old pendingDispatchable walked every queue on
	// every enqueue and completion).
	readyCalls int

	// scratch is the reusable batch-formation working set: dispatchOne
	// must order (and then refresh) a snapshot of the winning bucket's
	// queues without allocating per dispatch.
	scratch []*cmdQueue

	kickPending bool

	// Stats.
	Batches      int
	BatchedCalls int
	MaxBatch     int
}

// kickDelay is the adaptive policy's dispatch hysteresis: batch formation
// waits for the in-flight completion wave (event-dispatcher fan-out plus
// the IPC hop) to deliver its burst of follow-up API calls before forming
// a batch. Without it, the first call of a wave would flush as a tiny
// batch and the cohort would fragment into phase groups that alternate on
// the GPU forever. The cost shows up in Table 3's "+0.05 ms batch
// scheduling" row.
const kickDelay = 20 * time.Microsecond

func newScheduler(clock *sim.Clock, ctl *Controller, cfg SchedConfig) *Scheduler {
	if cfg.MaxBatchCalls <= 0 {
		cfg.MaxBatchCalls = 256
	}
	s := &Scheduler{
		clock:   clock,
		ctl:     ctl,
		cfg:     cfg,
		buckets: make(map[bucketKey]*readyBucket),
		callQ:   make(map[*infer.Call]*cmdQueue),
	}
	switch cfg.Policy {
	case PolicyTOnly:
		clock.GoDaemon("sched:ticker", s.tickerLoop)
	case PolicyKOnly:
		// A slow safety flush keeps sub-K tails from stalling forever; the
		// paper's K-only baseline is otherwise strictly threshold-driven.
		clock.GoDaemon("sched:konly-flush", s.kOnlyFlushLoop)
	}
	return s
}

// Config returns the active configuration.
func (s *Scheduler) Config() SchedConfig { return s.cfg }

func (s *Scheduler) tickerLoop() {
	for {
		s.clock.Sleep(s.cfg.T)
		for s.dispatchOne() {
		}
	}
}

func (s *Scheduler) kOnlyFlushLoop() {
	const stallLimit = 100 * time.Millisecond
	for {
		s.clock.Sleep(stallLimit / 2)
		now := s.clock.Now()
	scan:
		for _, b := range s.buckets {
			for _, q := range b.queues {
				if now-q.head().Enq > stallLimit {
					s.dispatchOne()
					break scan
				}
			}
		}
	}
}

// refresh re-indexes one queue after any state change (enqueue, pop,
// completion, close). It drains queue-ordered control ops that reached the
// head, then moves the queue into, out of, or between ready buckets and
// updates the incremental K-only call count. O(1) amortized per call.
func (s *Scheduler) refresh(q *cmdQueue) {
	var h *infer.Call
	if !q.closed && q.inflight == 0 {
		h = q.head()
		if h != nil && h.Op.ControlSide() {
			s.ctl.drainControlOps(q)
			h = q.head()
		}
	}
	eligible := h != nil && !h.Op.ControlSide()

	contribution := 0
	if eligible {
		contribution = len(q.pending)
	}
	s.readyCalls += contribution - q.counted
	q.counted = contribution

	if !eligible {
		if q.bucket != nil {
			q.bucket.remove(q.bucketIdx)
			q.bucket = nil
		}
		return
	}
	key := bucketKey{h.Op, q.rt}
	if q.bucket != nil {
		if q.bucket.key == key {
			return
		}
		q.bucket.remove(q.bucketIdx)
		q.bucket = nil
	}
	b := s.buckets[key]
	if b == nil {
		s.bucketSeq++
		b = &readyBucket{key: key, seq: s.bucketSeq}
		s.buckets[key] = b
	}
	q.bucket = b
	q.bucketIdx = len(b.queues)
	b.queues = append(b.queues, q)
}

// onEnqueue reacts to a new call on q.
func (s *Scheduler) onEnqueue(q *cmdQueue) {
	s.refresh(q)
	switch s.cfg.Policy {
	case PolicyEager:
		for s.dispatchOne() {
		}
	case PolicyAdaptive:
		if s.ctl.backend.Device.Idle() {
			s.scheduleKick()
		}
	case PolicyKOnly:
		if s.readyCalls >= s.cfg.K {
			s.dispatchOne()
		}
	case PolicyTOnly:
		// ticker only
	}
}

// scheduleKick arms a one-shot batch-formation event kickDelay from now
// (see kickDelay). At most one kick is pending at a time.
func (s *Scheduler) scheduleKick() {
	if s.kickPending {
		return
	}
	s.kickPending = true
	s.clock.GoDaemon("sched:kick", func() {
		s.clock.Sleep(kickDelay)
		s.kickPending = false
		if s.ctl.backend.Device.Idle() {
			s.dispatchOne()
		}
	})
}

// onDeviceIdle is the work-conserving trigger (§6.1): the inference layer
// notifies the moment the GPU drains.
func (s *Scheduler) onDeviceIdle() {
	switch s.cfg.Policy {
	case PolicyAdaptive:
		s.scheduleKick()
	case PolicyEager:
		s.dispatchOne()
	}
}

// tryDispatch is called after completions release queue ordering.
func (s *Scheduler) tryDispatch() {
	switch s.cfg.Policy {
	case PolicyAdaptive:
		if s.ctl.backend.Device.Idle() {
			s.scheduleKick()
		}
	case PolicyEager:
		for s.dispatchOne() {
		}
	case PolicyKOnly:
		if s.readyCalls >= s.cfg.K {
			s.dispatchOne()
		}
	}
}

// dispatchOne forms and submits a single batch; it reports whether one was
// dispatched. It runs in O(eligible queues): the ready buckets already
// exclude closed, busy, empty, and control-headed queues.
//
// Type selection: light stage-ops (embed, sampling, KV maintenance) beat
// forwards, and within a class the type whose oldest pending call has
// waited longest wins; equal ages tie-break on bucket creation order so
// same-seed runs pick identical batches. Draining the light ops first lets
// every inferlet blocked behind them reach its next forward, so the
// expensive kernel forms at full cohort width instead of splitting into
// alternating phase groups.
func (s *Scheduler) dispatchOne() bool {
	var best *readyBucket
	var bestOldest time.Duration
	for _, b := range s.buckets {
		if len(b.queues) == 0 {
			continue
		}
		oldest := b.queues[0].head().Enq
		for _, q := range b.queues[1:] {
			if e := q.head().Enq; e < oldest {
				oldest = e
			}
		}
		if best == nil || betterBucket(b, oldest, best, bestOldest) {
			best, bestOldest = b, oldest
		}
	}
	if best == nil {
		return false
	}

	// Order a snapshot of the bucket's queues by priority then queue id
	// (refresh below mutates best.queues while we iterate the snapshot).
	eligible := append(s.scratch[:0], best.queues...)
	s.scratch = eligible
	sortQueues(eligible)

	batch := &infer.Batch{Op: best.key.op, Model: best.key.rt}
	max := s.cfg.MaxBatchCalls
	if s.cfg.Policy == PolicyEager {
		max = 1
	}
	for _, q := range eligible {
		if len(batch.Calls) >= max {
			break // truncate from the tail (§5.2)
		}
		// Vertical: take the head run of same-type calls.
		for len(q.pending) > 0 && len(batch.Calls) < max {
			h := q.head()
			if h.Op != best.key.op {
				break
			}
			q.pop()
			q.inflight++
			s.callQ[h] = q
			batch.Calls = append(batch.Calls, h)
		}
	}
	for _, q := range eligible {
		s.refresh(q)
	}
	if len(batch.Calls) == 0 {
		return false
	}
	batch.Extra = s.cfg.SchedOverhead
	if batch.Op == infer.OpNextDist {
		batch.Extra += s.cfg.DistReturnOverhead
	}
	s.Batches++
	s.BatchedCalls += len(batch.Calls)
	if len(batch.Calls) > s.MaxBatch {
		s.MaxBatch = len(batch.Calls)
	}
	s.ctl.backend.Submit(batch)
	return true
}

// betterBucket reports whether bucket a (oldest head age oa) should
// dispatch before bucket b (oldest head age ob). Light stage-ops beat
// forwards; then older heads win; then bucket creation order — a total,
// deterministic order independent of map iteration.
func betterBucket(a *readyBucket, oa time.Duration, b *readyBucket, ob time.Duration) bool {
	lightA, lightB := a.key.op != infer.OpForward, b.key.op != infer.OpForward
	if lightA != lightB {
		return lightA
	}
	if oa != ob {
		return oa < ob
	}
	return a.seq < b.seq
}

func sortQueues(qs []*cmdQueue) {
	// Insertion sort: eligible sets are small and allocation-free ordering
	// keeps the scheduler cheap.
	for i := 1; i < len(qs); i++ {
		for j := i; j > 0; j-- {
			a, b := qs[j-1], qs[j]
			if b.priority > a.priority || (b.priority == a.priority && b.id < a.id) {
				qs[j-1], qs[j] = b, a
			} else {
				break
			}
		}
	}
}

// queueOf maps an in-flight call back to its queue.
func (s *Scheduler) queueOf(c *infer.Call) *cmdQueue { return s.callQ[c] }

// forgetCall drops completion bookkeeping.
func (s *Scheduler) forgetCall(c *infer.Call) { delete(s.callQ, c) }

// forgetQueue removes a closed queue from scheduling.
func (s *Scheduler) forgetQueue(q *cmdQueue) {
	s.readyCalls -= q.counted
	q.counted = 0
	if q.bucket != nil {
		q.bucket.remove(q.bucketIdx)
		q.bucket = nil
	}
}

// AvgBatchSize reports mean calls per batch.
func (s *Scheduler) AvgBatchSize() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchedCalls) / float64(s.Batches)
}
