// Unit tests for the handoff-facing instance inspectors: the quiescence
// predicate the migration gate relies on, and the distinct-physical-page
// footprint behind the min-pages floor.
package core

import (
	"testing"

	"pie/api"
	"pie/internal/infer"
)

func TestInstanceKVFootprintDedupes(t *testing.T) {
	ctl := &Controller{}
	// Import sharing maps several virtual handles onto one physical page:
	// the footprint counts physical pages, not handles.
	inst := &Instance{vPages: map[api.KvPage]resRef{
		1: {model: "m", phys: 7},
		2: {model: "m", phys: 7},
		3: {model: "m", phys: 9},
	}}
	if got := ctl.InstanceKVFootprint(inst); got != 2 {
		t.Fatalf("footprint = %d, want 2 distinct physical pages", got)
	}
	if got := ctl.InstanceKVFootprint(&Instance{}); got != 0 {
		t.Fatalf("empty instance footprint = %d", got)
	}
}

func TestInstanceQuiescent(t *testing.T) {
	ctl := &Controller{}
	inst := &Instance{}
	if !ctl.InstanceQuiescent(inst) {
		t.Fatal("instance with no queues reported busy")
	}
	q := &cmdQueue{inflight: 1}
	inst.queues = map[api.Queue]*cmdQueue{1: q}
	if ctl.InstanceQuiescent(inst) {
		t.Fatal("in-flight call reported quiescent")
	}
	q.inflight = 0
	q.pending = []*infer.Call{nil}
	if ctl.InstanceQuiescent(inst) {
		t.Fatal("pending call reported quiescent")
	}
	q.pending = nil
	if !ctl.InstanceQuiescent(inst) {
		t.Fatal("drained queue reported busy")
	}
}

func TestSetFirstTokenObserver(t *testing.T) {
	ctl := &Controller{}
	fired := 0
	ctl.SetFirstTokenObserver(func(*Instance) { fired++ })
	if ctl.firstTokFn == nil {
		t.Fatal("observer not installed")
	}
	ctl.firstTokFn(nil)
	if fired != 1 {
		t.Fatal("installed observer is not the one provided")
	}
}
