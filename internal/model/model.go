// Package model implements the functional transformer that backs Pie's
// inference layer: a real (tiny) decoder-only model with RoPE attention
// over a paged KV cache, explicit per-token sequence positions, token-level
// attention masks, LoRA-style adapters, and top-K output distributions.
//
// Weights are deterministic functions of the model seed, so every
// experiment is reproducible. Timing is *not* this package's concern: the
// inference layer charges virtual GPU time according to the configured
// parameter class (1B/3B/8B) via internal/gpu, while this package supplies
// the semantics the paper's API contract requires (forward, masking, page
// copies, adapters).
package model

import (
	"fmt"
	"math"
	"sort"

	"pie/internal/sim"
	"pie/internal/tensor"
	"pie/internal/tokenizer"
)

// Config describes a model instance.
type Config struct {
	Name       string // model id, e.g. "llama-1b"
	ParamLabel string // timing class: "1B", "3B", "8B"
	Dim        int    // hidden size
	Layers     int
	Heads      int
	HeadDim    int
	FFDim      int
	PageSize   int // tokens per KV page
	TopK       int // distribution truncation (paper default 256)
	RopeBase   float64
	Seed       uint64
	Multimodal bool // implements the InputImage trait
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	if c.Dim != c.Heads*c.HeadDim {
		return fmt.Errorf("model: Dim %d != Heads*HeadDim %d", c.Dim, c.Heads*c.HeadDim)
	}
	if c.PageSize <= 0 || c.Layers <= 0 || c.TopK <= 0 {
		return fmt.Errorf("model: non-positive size field in config %+v", c)
	}
	return nil
}

type layer struct {
	wq, wk, wv, wo []float32 // Dim x Dim
	w1, w3         []float32 // FFDim x Dim (gate, up)
	w2             []float32 // Dim x FFDim
	norm1, norm2   []float32
}

// Adapter is a LoRA-style low-rank delta applied to the query and value
// projections of every layer (forward_with_adapter).
type Adapter struct {
	Name  string
	Rank  int
	Scale float32
	// per layer: aq,bq and av,bv with shapes Rank x Dim and Dim x Rank.
	aq, bq, av, bv [][]float32
}

// Model is an immutable set of weights plus the shared tokenizer.
type Model struct {
	cfg      Config
	tok      *tokenizer.Tokenizer
	embed    []float32 // vocab x dim, tied with the output head
	layers   []layer
	normF    []float32
	adapters map[string]*Adapter
}

// New constructs a model with deterministic seeded weights.
func New(cfg Config, tok *tokenizer.Tokenizer) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	r := sim.NewRNG(cfg.Seed)
	vocab := tok.VocabSize()
	m := &Model{cfg: cfg, tok: tok, adapters: make(map[string]*Adapter)}
	scale := 1 / math.Sqrt(float64(cfg.Dim))
	randMat := func(rows, cols int) []float32 {
		w := make([]float32, rows*cols)
		for i := range w {
			w[i] = float32(r.NormFloat64() * scale)
		}
		return w
	}
	ones := func(n int) []float32 {
		w := make([]float32, n)
		for i := range w {
			w[i] = 1
		}
		return w
	}
	m.embed = randMat(vocab, cfg.Dim)
	m.normF = ones(cfg.Dim)
	for l := 0; l < cfg.Layers; l++ {
		m.layers = append(m.layers, layer{
			wq: randMat(cfg.Dim, cfg.Dim), wk: randMat(cfg.Dim, cfg.Dim),
			wv: randMat(cfg.Dim, cfg.Dim), wo: randMat(cfg.Dim, cfg.Dim),
			w1: randMat(cfg.FFDim, cfg.Dim), w3: randMat(cfg.FFDim, cfg.Dim),
			w2:    randMat(cfg.Dim, cfg.FFDim),
			norm1: ones(cfg.Dim), norm2: ones(cfg.Dim),
		})
	}
	return m
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// Tokenizer returns the shared tokenizer.
func (m *Model) Tokenizer() *tokenizer.Tokenizer { return m.tok }

// VocabSize returns the output vocabulary size.
func (m *Model) VocabSize() int { return m.tok.VocabSize() }

// RegisterAdapter creates and installs a deterministic adapter under name.
func (m *Model) RegisterAdapter(name string, rank int, scale float32, seed uint64) *Adapter {
	r := sim.NewRNG(seed)
	a := &Adapter{Name: name, Rank: rank, Scale: scale}
	s := 1 / math.Sqrt(float64(m.cfg.Dim))
	mat := func(rows, cols int) []float32 {
		w := make([]float32, rows*cols)
		for i := range w {
			w[i] = float32(r.NormFloat64() * s)
		}
		return w
	}
	for l := 0; l < m.cfg.Layers; l++ {
		a.aq = append(a.aq, mat(rank, m.cfg.Dim))
		a.bq = append(a.bq, mat(m.cfg.Dim, rank))
		a.av = append(a.av, mat(rank, m.cfg.Dim))
		a.bv = append(a.bv, mat(m.cfg.Dim, rank))
	}
	m.adapters[name] = a
	return a
}

// Adapter looks up a registered adapter.
func (m *Model) Adapter(name string) (*Adapter, bool) {
	a, ok := m.adapters[name]
	return a, ok
}

// AdapterNames lists registered adapters in sorted order.
func (m *Model) AdapterNames() []string {
	names := make([]string, 0, len(m.adapters))
	for n := range m.adapters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EmbedSlot is one physical token-embedding slot. Vec holds either an input
// embedding (written by EmbedTokens/EmbedImage) or an output hidden state
// (written by Forward); Pos is the explicit sequence position.
type EmbedSlot struct {
	Vec   []float32
	Pos   int
	Valid bool
}

// NewEmbedSlot allocates a slot for this model's hidden size.
func (m *Model) NewEmbedSlot() *EmbedSlot {
	return &EmbedSlot{Vec: make([]float32, m.cfg.Dim)}
}

// KvPage is one physical KV-cache page: per-slot, per-layer key/value
// vectors plus position, occupancy, and token-level mask bits
// (mask_kvpage). Keys are stored post-RoPE, keyed by absolute position.
type KvPage struct {
	K, V   [][]float32 // [slot][layers*dim]
	Pos    []int
	Used   []bool
	Masked []bool
}

// NewKvPage allocates an empty page for this model.
func (m *Model) NewKvPage() *KvPage {
	p := &KvPage{
		K:      make([][]float32, m.cfg.PageSize),
		V:      make([][]float32, m.cfg.PageSize),
		Pos:    make([]int, m.cfg.PageSize),
		Used:   make([]bool, m.cfg.PageSize),
		Masked: make([]bool, m.cfg.PageSize),
	}
	for i := 0; i < m.cfg.PageSize; i++ {
		p.K[i] = make([]float32, m.cfg.Layers*m.cfg.Dim)
		p.V[i] = make([]float32, m.cfg.Layers*m.cfg.Dim)
	}
	return p
}

// Reset clears a page for reuse by a new owner.
func (p *KvPage) Reset() {
	for i := range p.Used {
		p.Used[i] = false
		p.Masked[i] = false
		p.Pos[i] = 0
	}
}

// NumUsed counts occupied slots.
func (p *KvPage) NumUsed() int {
	n := 0
	for _, u := range p.Used {
		if u {
			n++
		}
	}
	return n
}

// CopyTokens copies n token entries from src[srcOff:] to dst[dstOff:] at
// token level (the copy_kvpage API). Mask bits and positions travel with
// the entries.
func CopyTokens(src, dst *KvPage, srcOff, dstOff, n int) error {
	if srcOff < 0 || dstOff < 0 || srcOff+n > len(src.K) || dstOff+n > len(dst.K) {
		return fmt.Errorf("model: CopyTokens out of range (src %d+%d, dst %d+%d, page %d)",
			srcOff, n, dstOff, n, len(src.K))
	}
	for i := 0; i < n; i++ {
		copy(dst.K[dstOff+i], src.K[srcOff+i])
		copy(dst.V[dstOff+i], src.V[srcOff+i])
		dst.Pos[dstOff+i] = src.Pos[srcOff+i]
		dst.Used[dstOff+i] = src.Used[srcOff+i]
		dst.Masked[dstOff+i] = src.Masked[srcOff+i]
	}
	return nil
}

// EmbedTokens writes token embeddings into dst with explicit positions.
func (m *Model) EmbedTokens(ids []int, positions []int, dst []*EmbedSlot) error {
	if len(ids) != len(positions) || len(ids) != len(dst) {
		return fmt.Errorf("model: EmbedTokens length mismatch: %d ids, %d pos, %d dst",
			len(ids), len(positions), len(dst))
	}
	for i, id := range ids {
		if id < 0 || id >= m.VocabSize() {
			return fmt.Errorf("model: token id %d out of vocab", id)
		}
		copy(dst[i].Vec, m.embed[id*m.cfg.Dim:(id+1)*m.cfg.Dim])
		dst[i].Pos = positions[i]
		dst[i].Valid = true
	}
	return nil
}

// EmbedsNeededForImage reports how many embedding slots an image of the
// given byte size occupies (one per 256-byte patch, minimum 1).
func (m *Model) EmbedsNeededForImage(size int) int {
	n := (size + 255) / 256
	if n < 1 {
		n = 1
	}
	return n
}

// EmbedImage hashes image bytes into patch embeddings (the InputImage
// trait). A real vision tower is out of scope; this preserves the resource
// and API contract: n patches consume n embedding slots with positions.
func (m *Model) EmbedImage(blob []byte, positions []int, dst []*EmbedSlot) error {
	need := m.EmbedsNeededForImage(len(blob))
	if len(dst) != need || len(positions) != need {
		return fmt.Errorf("model: EmbedImage needs %d slots, got %d", need, len(dst))
	}
	for i := range dst {
		lo, hi := i*256, (i+1)*256
		if hi > len(blob) {
			hi = len(blob)
		}
		var h uint64 = 1469598103934665603
		for _, b := range blob[lo:hi] {
			h = (h ^ uint64(b)) * 1099511628211
		}
		r := sim.NewRNG(h)
		for j := range dst[i].Vec {
			dst[i].Vec[j] = float32(r.NormFloat64()) / float32(math.Sqrt(float64(m.cfg.Dim)))
		}
		dst[i].Pos = positions[i]
		dst[i].Valid = true
	}
	return nil
}

// kvRef flattens the usable context entries of a page list.
type kvRef struct {
	page *KvPage
	slot int
}

func gatherContext(pages []*KvPage) []kvRef {
	var refs []kvRef
	for _, p := range pages {
		for s, used := range p.Used {
			if used && !p.Masked[s] {
				refs = append(refs, kvRef{p, s})
			}
		}
	}
	return refs
}

// ForwardResult reports what a forward pass produced.
type ForwardResult struct {
	// Outputs holds the final-norm hidden states for the last len(OutputEmb)
	// input tokens; written into the provided slots by the caller-visible
	// contract, returned here for inspection.
	Outputs [][]float32
}

// Forward runs the full transformer pass (§4.2's forward API):
//
//   - ctx: context KV pages (token-mask bits respected),
//   - inputs: input embedding slots with explicit positions,
//   - outKv: pages that receive the input tokens' KV entries, appended in
//     order into unused slots (may be nil to discard KV),
//   - outEmb: slots that receive the outputs of the last len(outEmb) inputs,
//   - mask: optional explicit attention matrix, rows = inputs, cols =
//     context tokens (in gather order) followed by inputs. nil = causal by
//     position.
//   - adapter: optional LoRA adapter name ("" for none).
func (m *Model) Forward(ctx []*KvPage, inputs []*EmbedSlot, outKv []*KvPage, outEmb []*EmbedSlot, mask [][]bool, adapterName string) (*ForwardResult, error) {
	n := len(inputs)
	if n == 0 {
		return nil, fmt.Errorf("model: Forward with no input embeddings")
	}
	for i, in := range inputs {
		if !in.Valid {
			return nil, fmt.Errorf("model: Forward input %d is uninitialized", i)
		}
	}
	if len(outEmb) > n {
		return nil, fmt.Errorf("model: %d output embeds for %d inputs", len(outEmb), n)
	}
	var adapter *Adapter
	if adapterName != "" {
		a, ok := m.adapters[adapterName]
		if !ok {
			return nil, fmt.Errorf("model: unknown adapter %q", adapterName)
		}
		adapter = a
	}
	refs := gatherContext(ctx)
	nc := len(refs)
	if mask != nil {
		if len(mask) != n {
			return nil, fmt.Errorf("model: mask has %d rows for %d inputs", len(mask), n)
		}
		for i, row := range mask {
			if len(row) != nc+n {
				return nil, fmt.Errorf("model: mask row %d has %d cols, want %d ctx + %d inputs", i, len(row), nc, n)
			}
		}
	}
	// Reserve output KV slots up front.
	var dstRefs []kvRef
	if len(outKv) > 0 {
		for _, p := range outKv {
			for s := range p.Used {
				if !p.Used[s] {
					dstRefs = append(dstRefs, kvRef{p, s})
					if len(dstRefs) == n {
						break
					}
				}
			}
			if len(dstRefs) == n {
				break
			}
		}
		if len(dstRefs) < n {
			return nil, fmt.Errorf("model: output pages have %d free slots for %d tokens", len(dstRefs), n)
		}
	}

	d, hd, heads, L := m.cfg.Dim, m.cfg.HeadDim, m.cfg.Heads, m.cfg.Layers
	h := make([][]float32, n) // residual stream
	for i := range h {
		h[i] = tensor.Copy(inputs[i].Vec)
	}
	// Per-input per-layer new KV (needed for intra-batch attention).
	newK := make([][][]float32, n)
	newV := make([][][]float32, n)
	for i := range newK {
		newK[i] = make([][]float32, L)
		newV[i] = make([][]float32, L)
	}

	allow := func(i int, col int) bool { // col < nc: context; else input index col-nc
		if mask != nil {
			return mask[i][col]
		}
		pi := inputs[i].Pos
		if col < nc {
			r := refs[col]
			return r.page.Pos[r.slot] <= pi
		}
		return inputs[col-nc].Pos <= pi
	}

	xn := make([]float32, d)
	q := make([]float32, d)
	scores := make([]float32, nc+n)
	attnOut := make([]float32, d)
	proj := make([]float32, d)
	ff1 := make([]float32, m.cfg.FFDim)
	ff3 := make([]float32, m.cfg.FFDim)
	lowQ := make([]float32, 64)
	invSqrt := 1 / float32(math.Sqrt(float64(hd)))

	for l := 0; l < L; l++ {
		lw := &m.layers[l]
		// Compute k,v for every input token first (post-RoPE keys).
		for i := 0; i < n; i++ {
			tensor.RMSNorm(h[i], lw.norm1, xn, 1e-5)
			k := make([]float32, d)
			v := make([]float32, d)
			tensor.MatVec(lw.wk, d, d, xn, k)
			tensor.MatVec(lw.wv, d, d, xn, v)
			if adapter != nil {
				applyLoRA(adapter.av[l], adapter.bv[l], adapter.Rank, adapter.Scale, xn, v, lowQ)
			}
			tensor.Rope(k, hd, inputs[i].Pos, m.cfg.RopeBase)
			newK[i][l], newV[i][l] = k, v
		}
		for i := 0; i < n; i++ {
			tensor.RMSNorm(h[i], lw.norm1, xn, 1e-5)
			tensor.MatVec(lw.wq, d, d, xn, q)
			if adapter != nil {
				applyLoRA(adapter.aq[l], adapter.bq[l], adapter.Rank, adapter.Scale, xn, q, lowQ)
			}
			tensor.Rope(q, hd, inputs[i].Pos, m.cfg.RopeBase)
			for hh := 0; hh < heads; hh++ {
				qh := q[hh*hd : (hh+1)*hd]
				cols := 0
				scores = scores[:0]
				colIdx := make([]int, 0, nc+n)
				for cIdx := 0; cIdx < nc+n; cIdx++ {
					if !allow(i, cIdx) {
						continue
					}
					var kvec []float32
					if cIdx < nc {
						r := refs[cIdx]
						kvec = r.page.K[r.slot][l*d : (l+1)*d]
					} else {
						kvec = newK[cIdx-nc][l]
					}
					scores = append(scores, tensor.Dot(qh, kvec[hh*hd:(hh+1)*hd])*invSqrt)
					colIdx = append(colIdx, cIdx)
					cols++
				}
				for j := range attnOut[hh*hd : (hh+1)*hd] {
					attnOut[hh*hd+j] = 0
				}
				if cols == 0 {
					continue
				}
				tensor.Softmax(scores)
				for sIdx, cIdx := range colIdx {
					var vvec []float32
					if cIdx < nc {
						r := refs[cIdx]
						vvec = r.page.V[r.slot][l*d : (l+1)*d]
					} else {
						vvec = newV[cIdx-nc][l]
					}
					w := scores[sIdx]
					for j := 0; j < hd; j++ {
						attnOut[hh*hd+j] += w * vvec[hh*hd+j]
					}
				}
			}
			tensor.MatVec(lw.wo, d, d, attnOut, proj)
			tensor.AddInPlace(h[i], proj)
			// MLP (SwiGLU).
			tensor.RMSNorm(h[i], lw.norm2, xn, 1e-5)
			tensor.MatVec(lw.w1, m.cfg.FFDim, d, xn, ff1)
			tensor.MatVec(lw.w3, m.cfg.FFDim, d, xn, ff3)
			tensor.SiLU(ff1)
			for j := range ff1 {
				ff1[j] *= ff3[j]
			}
			tensor.MatVec(lw.w2, d, m.cfg.FFDim, ff1, proj)
			tensor.AddInPlace(h[i], proj)
		}
	}

	// Persist KV.
	for i, ref := range dstRefs {
		for l := 0; l < L; l++ {
			copy(ref.page.K[ref.slot][l*d:(l+1)*d], newK[i][l])
			copy(ref.page.V[ref.slot][l*d:(l+1)*d], newV[i][l])
		}
		ref.page.Pos[ref.slot] = inputs[i].Pos
		ref.page.Used[ref.slot] = true
		ref.page.Masked[ref.slot] = false
	}

	// Final norm on the last len(outEmb) tokens.
	res := &ForwardResult{}
	start := n - len(outEmb)
	for i, slot := range outEmb {
		out := make([]float32, d)
		tensor.RMSNorm(h[start+i], m.normF, out, 1e-5)
		copy(slot.Vec, out)
		slot.Pos = inputs[start+i].Pos
		slot.Valid = true
		res.Outputs = append(res.Outputs, out)
	}
	return res, nil
}

func applyLoRA(a, b []float32, rank int, scale float32, x, dst, scratch []float32) {
	low := scratch[:rank]
	tensor.MatVec(a, rank, len(x), x, low)
	d := len(dst)
	for r := 0; r < d; r++ {
		var s float32
		for c := 0; c < rank; c++ {
			s += b[r*rank+c] * low[c]
		}
		dst[r] += scale * s
	}
}

// Logits projects a hidden state onto the (tied) output vocabulary.
func (m *Model) Logits(hidden []float32) []float32 {
	v := m.VocabSize()
	out := make([]float32, v)
	tensor.MatVec(m.embed, v, m.cfg.Dim, hidden, out)
	return out
}

// NextDist computes the top-K next-token distribution for an output
// embedding produced by Forward (the get_next_dist API). Probabilities are
// renormalized over the truncated support, descending.
func (m *Model) NextDist(slot *EmbedSlot) (tokens []int, probs []float32, err error) {
	if !slot.Valid {
		return nil, nil, fmt.Errorf("model: NextDist on uninitialized embed")
	}
	logits := m.Logits(slot.Vec)
	tensor.Softmax(logits)
	k := m.cfg.TopK
	if k > len(logits) {
		k = len(logits)
	}
	idx := make([]int, len(logits))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if logits[idx[a]] != logits[idx[b]] {
			return logits[idx[a]] > logits[idx[b]]
		}
		return idx[a] < idx[b]
	})
	idx = idx[:k]
	var sum float32
	for _, i := range idx {
		sum += logits[i]
	}
	tokens = make([]int, k)
	probs = make([]float32, k)
	for j, i := range idx {
		tokens[j] = i
		probs[j] = logits[i] / sum
	}
	return tokens, probs, nil
}
