package model

import "pie/internal/tokenizer"

// Catalog holds the servable models for an engine instance. All models
// share one tokenizer so token ids (and therefore cached KV) are portable
// across experiments.
type Catalog struct {
	Tokenizer *tokenizer.Tokenizer
	Models    map[string]*Model
	order     []string
}

// StandardCatalog builds the Llama-3-style 1B/3B/8B family used throughout
// the paper's evaluation. Functional scale is tiny (the timing class, not
// the weight count, determines simulated cost); layer counts differ so the
// three models produce distinct outputs.
func StandardCatalog(seed uint64) *Catalog {
	tok := tokenizer.New()
	c := &Catalog{Tokenizer: tok, Models: make(map[string]*Model)}
	add := func(cfg Config) {
		m := New(cfg, tok)
		// A pair of fine-tune adapters per model for forward_with_adapter.
		m.RegisterAdapter("chat", 4, 0.5, cfg.Seed^0xA1)
		m.RegisterAdapter("code", 4, 0.5, cfg.Seed^0xB2)
		c.Models[cfg.Name] = m
		c.order = append(c.order, cfg.Name)
	}
	base := Config{
		Dim: 64, Heads: 4, HeadDim: 16, FFDim: 128,
		PageSize: 16, TopK: 256, RopeBase: 10000,
	}
	cfg1 := base
	cfg1.Name, cfg1.ParamLabel, cfg1.Layers, cfg1.Seed = "llama-1b", "1B", 2, seed^0x01
	cfg3 := base
	cfg3.Name, cfg3.ParamLabel, cfg3.Layers, cfg3.Seed = "llama-3b", "3B", 3, seed^0x03
	cfg8 := base
	cfg8.Name, cfg8.ParamLabel, cfg8.Layers, cfg8.Seed, cfg8.Multimodal = "llama-8b", "8B", 4, seed^0x08, true
	add(cfg1)
	add(cfg3)
	add(cfg8)
	return c
}

// Names lists model ids in registration order.
func (c *Catalog) Names() []string { return append([]string(nil), c.order...) }

// Get returns a model by id.
func (c *Catalog) Get(name string) (*Model, bool) {
	m, ok := c.Models[name]
	return m, ok
}
