package model

import (
	"math"
	"testing"
	"testing/quick"
)

func testModel(t testing.TB) *Model {
	t.Helper()
	return StandardCatalog(42).Models["llama-1b"]
}

func embedPrompt(t testing.TB, m *Model, ids []int, startPos int) []*EmbedSlot {
	t.Helper()
	slots := make([]*EmbedSlot, len(ids))
	pos := make([]int, len(ids))
	for i := range ids {
		slots[i] = m.NewEmbedSlot()
		pos[i] = startPos + i
	}
	if err := m.EmbedTokens(ids, pos, slots); err != nil {
		t.Fatalf("EmbedTokens: %v", err)
	}
	return slots
}

func maxAbsDiff(a, b []float32) float64 {
	var mx float64
	for i := range a {
		d := math.Abs(float64(a[i] - b[i]))
		if d > mx {
			mx = d
		}
	}
	return mx
}

func TestForwardDeterminism(t *testing.T) {
	a := StandardCatalog(7).Models["llama-1b"]
	b := StandardCatalog(7).Models["llama-1b"]
	ids := a.Tokenizer().Encode("the world is ")
	oa, ob := a.NewEmbedSlot(), b.NewEmbedSlot()
	if _, err := a.Forward(nil, embedPrompt(t, a, ids, 0), nil, []*EmbedSlot{oa}, nil, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Forward(nil, embedPrompt(t, b, ids, 0), nil, []*EmbedSlot{ob}, nil, ""); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(oa.Vec, ob.Vec); d != 0 {
		t.Fatalf("same-seed forward diverged by %g", d)
	}
}

func TestModelsDiffer(t *testing.T) {
	cat := StandardCatalog(7)
	ids := cat.Tokenizer.Encode("hello")
	m1, m8 := cat.Models["llama-1b"], cat.Models["llama-8b"]
	o1, o8 := m1.NewEmbedSlot(), m8.NewEmbedSlot()
	m1.Forward(nil, embedPrompt(t, m1, ids, 0), nil, []*EmbedSlot{o1}, nil, "")
	m8.Forward(nil, embedPrompt(t, m8, ids, 0), nil, []*EmbedSlot{o8}, nil, "")
	if maxAbsDiff(o1.Vec, o8.Vec) == 0 {
		t.Fatal("1B and 8B models produced identical hidden states")
	}
}

// The paper's §4.2 example: one prefill over n tokens must equal the same
// prefill split into two forward calls chained through a KvPage.
func TestSplitForwardEquivalence(t *testing.T) {
	m := testModel(t)
	ids := m.Tokenizer().Encode("the answer to life the universe and everything is ")
	n := len(ids)
	if n < 4 {
		t.Fatal("prompt too short for the test")
	}

	// Single pass.
	single := m.NewEmbedSlot()
	if _, err := m.Forward(nil, embedPrompt(t, m, ids, 0), nil, []*EmbedSlot{single}, nil, ""); err != nil {
		t.Fatal(err)
	}

	// Split pass: first n-1 tokens into a page, then the last token.
	pages := []*KvPage{m.NewKvPage(), m.NewKvPage(), m.NewKvPage(), m.NewKvPage()}
	inputs := embedPrompt(t, m, ids, 0)
	if _, err := m.Forward(nil, inputs[:n-1], pages, nil, nil, ""); err != nil {
		t.Fatal(err)
	}
	split := m.NewEmbedSlot()
	if _, err := m.Forward(pages, inputs[n-1:], nil, []*EmbedSlot{split}, nil, ""); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(single.Vec, split.Vec); d > 1e-4 {
		t.Fatalf("split forward diverged from single pass by %g", d)
	}
}

// Property: equivalence holds for any split point and prompt.
func TestQuickSplitPointEquivalence(t *testing.T) {
	m := testModel(t)
	f := func(seedText string, cutRaw uint8) bool {
		ids := m.Tokenizer().Encode("prefix " + seedText)
		if len(ids) < 3 {
			return true
		}
		if len(ids) > 24 {
			ids = ids[:24]
		}
		cut := 1 + int(cutRaw)%(len(ids)-1)

		single := m.NewEmbedSlot()
		if _, err := m.Forward(nil, embedPrompt(t, m, ids, 0), nil, []*EmbedSlot{single}, nil, ""); err != nil {
			return false
		}
		var pages []*KvPage
		for i := 0; i < (cut+m.cfg.PageSize-1)/m.cfg.PageSize+1; i++ {
			pages = append(pages, m.NewKvPage())
		}
		inputs := embedPrompt(t, m, ids, 0)
		if _, err := m.Forward(nil, inputs[:cut], pages, nil, nil, ""); err != nil {
			return false
		}
		split := m.NewEmbedSlot()
		if _, err := m.Forward(pages, inputs[cut:], nil, []*EmbedSlot{split}, nil, ""); err != nil {
			return false
		}
		return maxAbsDiff(single.Vec, split.Vec) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Masking a KV entry must be equivalent to never having cached it.
func TestMaskEquivalentToOmission(t *testing.T) {
	m := testModel(t)
	ids := m.Tokenizer().Encode("one two three four five six ")
	n := len(ids)

	// Cache all n tokens, then mask entry 1.
	pagesA := []*KvPage{m.NewKvPage(), m.NewKvPage()}
	inA := embedPrompt(t, m, ids, 0)
	if _, err := m.Forward(nil, inA, pagesA, nil, nil, ""); err != nil {
		t.Fatal(err)
	}
	pagesA[0].Masked[1] = true

	// Cache only tokens != 1 (same positions).
	pagesB := []*KvPage{m.NewKvPage(), m.NewKvPage()}
	var keepIds, keepPos []int
	for i, id := range ids {
		if i == 1 {
			continue
		}
		keepIds = append(keepIds, id)
		keepPos = append(keepPos, i)
	}
	slotsB := make([]*EmbedSlot, len(keepIds))
	for i := range slotsB {
		slotsB[i] = m.NewEmbedSlot()
	}
	if err := m.EmbedTokens(keepIds, keepPos, slotsB); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forward(nil, slotsB, pagesB, nil, nil, ""); err != nil {
		t.Fatal(err)
	}

	// Note: KV entries for kept tokens differ slightly between A and B
	// (token 1 participated in A's prefill), so compare behaviour with a
	// fresh query token instead of raw KV. Token 1 must be invisible in A.
	q := embedPrompt(t, m, m.Tokenizer().Encode("?"), n)
	outA, outB := m.NewEmbedSlot(), m.NewEmbedSlot()
	if _, err := m.Forward(pagesA, q, nil, []*EmbedSlot{outA}, nil, ""); err != nil {
		t.Fatal(err)
	}
	q2 := embedPrompt(t, m, m.Tokenizer().Encode("?"), n)
	if _, err := m.Forward(pagesB, q2, nil, []*EmbedSlot{outB}, nil, ""); err != nil {
		t.Fatal(err)
	}
	// The two outputs must differ from "no masking" and agree in the
	// number of visible context entries; exact equality is not expected
	// because A's kept KV was computed with token 1 present.
	unmaskedOut := m.NewEmbedSlot()
	pagesA[0].Masked[1] = false
	q3 := embedPrompt(t, m, m.Tokenizer().Encode("?"), n)
	if _, err := m.Forward(pagesA, q3, nil, []*EmbedSlot{unmaskedOut}, nil, ""); err != nil {
		t.Fatal(err)
	}
	pagesA[0].Masked[1] = true
	if maxAbsDiff(outA.Vec, unmaskedOut.Vec) == 0 {
		t.Fatal("masking a context token had no effect on attention")
	}
}

func TestExplicitMaskMatchesCausalDefault(t *testing.T) {
	m := testModel(t)
	ids := m.Tokenizer().Encode("a b c d ")
	pages := []*KvPage{m.NewKvPage()}
	if _, err := m.Forward(nil, embedPrompt(t, m, ids, 0), pages, nil, nil, ""); err != nil {
		t.Fatal(err)
	}
	nc := pages[0].NumUsed()

	q := embedPrompt(t, m, m.Tokenizer().Encode("!"), len(ids))
	implicit := m.NewEmbedSlot()
	if _, err := m.Forward(pages, q, nil, []*EmbedSlot{implicit}, nil, ""); err != nil {
		t.Fatal(err)
	}
	// An explicit all-true mask over (ctx + self) must equal the causal
	// default for a strictly-later query token.
	mask := [][]bool{make([]bool, nc+1)}
	for i := range mask[0] {
		mask[0][i] = true
	}
	q2 := embedPrompt(t, m, m.Tokenizer().Encode("!"), len(ids))
	explicit := m.NewEmbedSlot()
	if _, err := m.Forward(pages, q2, nil, []*EmbedSlot{explicit}, nil, ""); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(implicit.Vec, explicit.Vec); d != 0 {
		t.Fatalf("explicit all-true mask diverged from causal default by %g", d)
	}
}

func TestCausalityFutureContextIgnored(t *testing.T) {
	m := testModel(t)
	ids := m.Tokenizer().Encode("x y z ")
	pages := []*KvPage{m.NewKvPage()}
	if _, err := m.Forward(nil, embedPrompt(t, m, ids, 0), pages, nil, nil, ""); err != nil {
		t.Fatal(err)
	}
	// A query at position 0 must see only context entries at position <= 0.
	q := embedPrompt(t, m, []int{ids[0]}, 0)
	withCtx := m.NewEmbedSlot()
	if _, err := m.Forward(pages, q, nil, []*EmbedSlot{withCtx}, nil, ""); err != nil {
		t.Fatal(err)
	}
	q2 := embedPrompt(t, m, []int{ids[0]}, 0)
	lonely := m.NewEmbedSlot()
	onlyFirst := m.NewKvPage()
	if err := CopyTokens(pages[0], onlyFirst, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forward([]*KvPage{onlyFirst}, q2, nil, []*EmbedSlot{lonely}, nil, ""); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(withCtx.Vec, lonely.Vec); d != 0 {
		t.Fatalf("future-position context leaked into attention (diff %g)", d)
	}
}

func TestCopyTokensPreservesAttention(t *testing.T) {
	m := testModel(t)
	ids := m.Tokenizer().Encode("copy this page now ")
	src := []*KvPage{m.NewKvPage()}
	if _, err := m.Forward(nil, embedPrompt(t, m, ids, 0), src, nil, nil, ""); err != nil {
		t.Fatal(err)
	}
	dst := m.NewKvPage()
	if err := CopyTokens(src[0], dst, 0, 0, len(ids)); err != nil {
		t.Fatal(err)
	}
	q1 := embedPrompt(t, m, m.Tokenizer().Encode("."), len(ids))
	q2 := embedPrompt(t, m, m.Tokenizer().Encode("."), len(ids))
	a, b := m.NewEmbedSlot(), m.NewEmbedSlot()
	m.Forward(src, q1, nil, []*EmbedSlot{a}, nil, "")
	m.Forward([]*KvPage{dst}, q2, nil, []*EmbedSlot{b}, nil, "")
	if d := maxAbsDiff(a.Vec, b.Vec); d != 0 {
		t.Fatalf("copied page attends differently (diff %g)", d)
	}
}

func TestCopyTokensBounds(t *testing.T) {
	m := testModel(t)
	a, b := m.NewKvPage(), m.NewKvPage()
	if err := CopyTokens(a, b, 10, 0, 10); err == nil {
		t.Fatal("out-of-range copy succeeded")
	}
	if err := CopyTokens(a, b, 0, 0, m.cfg.PageSize+1); err == nil {
		t.Fatal("oversized copy succeeded")
	}
}

func TestNextDistWellFormed(t *testing.T) {
	m := testModel(t)
	ids := m.Tokenizer().Encode("the ")
	out := m.NewEmbedSlot()
	if _, err := m.Forward(nil, embedPrompt(t, m, ids, 0), nil, []*EmbedSlot{out}, nil, ""); err != nil {
		t.Fatal(err)
	}
	tokens, probs, err := m.NextDist(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(tokens) != m.cfg.TopK || len(probs) != m.cfg.TopK {
		t.Fatalf("dist size = %d, want TopK=%d", len(tokens), m.cfg.TopK)
	}
	var sum float32
	for i, p := range probs {
		sum += p
		if i > 0 && p > probs[i-1] {
			t.Fatal("probs not descending")
		}
		if p < 0 {
			t.Fatal("negative probability")
		}
	}
	if math.Abs(float64(sum)-1) > 1e-3 {
		t.Fatalf("probs sum to %v, want 1", sum)
	}
	seen := map[int]bool{}
	for _, tk := range tokens {
		if seen[tk] {
			t.Fatal("duplicate token in dist")
		}
		seen[tk] = true
	}
}

func TestNextDistOnInvalidSlot(t *testing.T) {
	m := testModel(t)
	if _, _, err := m.NextDist(m.NewEmbedSlot()); err == nil {
		t.Fatal("NextDist on uninitialized slot succeeded")
	}
}

func TestAdapterChangesOutput(t *testing.T) {
	m := testModel(t)
	ids := m.Tokenizer().Encode("adapt ")
	plain, tuned := m.NewEmbedSlot(), m.NewEmbedSlot()
	if _, err := m.Forward(nil, embedPrompt(t, m, ids, 0), nil, []*EmbedSlot{plain}, nil, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forward(nil, embedPrompt(t, m, ids, 0), nil, []*EmbedSlot{tuned}, nil, "chat"); err != nil {
		t.Fatal(err)
	}
	if maxAbsDiff(plain.Vec, tuned.Vec) == 0 {
		t.Fatal("adapter had no effect")
	}
	if _, err := m.Forward(nil, embedPrompt(t, m, ids, 0), nil, nil, nil, "nope"); err == nil {
		t.Fatal("unknown adapter accepted")
	}
}

func TestForwardErrors(t *testing.T) {
	m := testModel(t)
	if _, err := m.Forward(nil, nil, nil, nil, nil, ""); err == nil {
		t.Fatal("empty forward accepted")
	}
	// Uninitialized input.
	if _, err := m.Forward(nil, []*EmbedSlot{m.NewEmbedSlot()}, nil, nil, nil, ""); err == nil {
		t.Fatal("uninitialized input accepted")
	}
	// Insufficient output KV space.
	in := embedPrompt(t, m, m.Tokenizer().Encode("a lot of tokens that do not fit at all here "), 0)
	if len(in) <= m.cfg.PageSize {
		t.Fatalf("test prompt too short: %d tokens", len(in))
	}
	if _, err := m.Forward(nil, in, []*KvPage{m.NewKvPage()}, nil, nil, ""); err == nil {
		t.Fatal("overfull output page accepted")
	}
	// Bad mask shape.
	in2 := embedPrompt(t, m, []int{5}, 0)
	if _, err := m.Forward(nil, in2, nil, nil, [][]bool{{true, true, true}}, ""); err == nil {
		t.Fatal("bad mask shape accepted")
	}
}

func TestEmbedImage(t *testing.T) {
	m := StandardCatalog(42).Models["llama-8b"]
	blob := make([]byte, 700)
	for i := range blob {
		blob[i] = byte(i * 7 / (1 + i/251)) // patches differ in content
	}
	need := m.EmbedsNeededForImage(len(blob))
	if need != 3 {
		t.Fatalf("EmbedsNeededForImage(700) = %d, want 3", need)
	}
	slots := []*EmbedSlot{m.NewEmbedSlot(), m.NewEmbedSlot(), m.NewEmbedSlot()}
	if err := m.EmbedImage(blob, []int{0, 1, 2}, slots); err != nil {
		t.Fatal(err)
	}
	slots2 := []*EmbedSlot{m.NewEmbedSlot(), m.NewEmbedSlot(), m.NewEmbedSlot()}
	if err := m.EmbedImage(blob, []int{0, 1, 2}, slots2); err != nil {
		t.Fatal(err)
	}
	if maxAbsDiff(slots[0].Vec, slots2[0].Vec) != 0 {
		t.Fatal("image embedding not deterministic")
	}
	if maxAbsDiff(slots[0].Vec, slots[1].Vec) == 0 {
		t.Fatal("distinct patches embedded identically")
	}
}

func TestPageReset(t *testing.T) {
	m := testModel(t)
	p := m.NewKvPage()
	ids := m.Tokenizer().Encode("abc")
	if _, err := m.Forward(nil, embedPrompt(t, m, ids, 0), []*KvPage{p}, nil, nil, ""); err != nil {
		t.Fatal(err)
	}
	if p.NumUsed() == 0 {
		t.Fatal("page empty after forward")
	}
	p.Reset()
	if p.NumUsed() != 0 {
		t.Fatal("page not empty after Reset")
	}
}

func BenchmarkForwardDecodeStep(b *testing.B) {
	m := StandardCatalog(42).Models["llama-1b"]
	ids := m.Tokenizer().Encode("a reasonably long prompt for benchmarking the decode path of the model ")
	pages := []*KvPage{m.NewKvPage(), m.NewKvPage(), m.NewKvPage(), m.NewKvPage()}
	in := make([]*EmbedSlot, len(ids))
	pos := make([]int, len(ids))
	for i := range ids {
		in[i] = m.NewEmbedSlot()
		pos[i] = i
	}
	m.EmbedTokens(ids, pos, in)
	if _, err := m.Forward(nil, in, pages, nil, nil, ""); err != nil {
		b.Fatal(err)
	}
	q := m.NewEmbedSlot()
	m.EmbedTokens([]int{ids[0]}, []int{len(ids)}, []*EmbedSlot{q})
	out := m.NewEmbedSlot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Forward(pages, []*EmbedSlot{q}, nil, []*EmbedSlot{out}, nil, ""); err != nil {
			b.Fatal(err)
		}
	}
}
