package grammar

import (
	"encoding/json"
	"testing"
	"testing/quick"

	"pie/internal/sim"
	"pie/internal/tokenizer"
)

func mustParse(t *testing.T, src string) *Grammar {
	t.Helper()
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func machine(t *testing.T, src, start string) *Machine {
	t.Helper()
	m, err := mustParse(t, src).Compile(start)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLiteralMatch(t *testing.T) {
	m := machine(t, `greet = "hello" ;`, "")
	if !m.AdvanceString("hello") {
		t.Fatal("failed to consume 'hello'")
	}
	if !m.CanAccept() {
		t.Fatal("not accepting after full literal")
	}
	if m.CanContinue() {
		t.Fatal("claims continuation after complete literal")
	}
}

func TestLiteralReject(t *testing.T) {
	m := machine(t, `greet = "hello" ;`, "")
	if m.AdvanceString("help") {
		t.Fatal("consumed invalid input")
	}
}

func TestAlternation(t *testing.T) {
	src := `b = "yes" | "no" ;`
	for _, s := range []string{"yes", "no"} {
		m := machine(t, src, "")
		if !m.AdvanceString(s) || !m.CanAccept() {
			t.Fatalf("rejected %q", s)
		}
	}
	m := machine(t, src, "")
	if m.AdvanceString("maybe") {
		t.Fatal("accepted 'maybe'")
	}
}

func TestRepetitionAndOption(t *testing.T) {
	src := `word = [ "-" ] { "a".."z" } ;`
	for _, s := range []string{"", "-", "abc", "-abc"} {
		m := machine(t, src, "")
		if !m.AdvanceString(s) || !m.CanAccept() {
			t.Fatalf("rejected %q", s)
		}
	}
	m := machine(t, src, "")
	if m.AdvanceString("ab-") {
		t.Fatal("accepted '-' after letters")
	}
}

func TestRecursiveRule(t *testing.T) {
	src := `
	expr = "(" expr ")" | "x" ;
	`
	for _, s := range []string{"x", "(x)", "(((x)))"} {
		m := machine(t, src, "expr")
		if !m.AdvanceString(s) || !m.CanAccept() {
			t.Fatalf("rejected %q", s)
		}
	}
	for _, s := range []string{"(", "(x", "((x)", ")x("} {
		m := machine(t, src, "expr")
		if m.AdvanceString(s) && m.CanAccept() {
			t.Fatalf("accepted %q", s)
		}
	}
}

func TestLeftRecursionRejected(t *testing.T) {
	if _, err := Parse(`e = e "+" "x" | "x" ;`); err == nil {
		t.Fatal("left recursion accepted")
	}
	// Indirect.
	if _, err := Parse(`a = b "x" ; b = a | "y" ;`); err == nil {
		t.Fatal("indirect left recursion accepted")
	}
}

func TestUndefinedRefRejected(t *testing.T) {
	if _, err := Parse(`a = missing ;`); err == nil {
		t.Fatal("undefined reference accepted")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		``, `a = "x"`, `a "x" ;`, `a = "x ;`, `a = ("x" ;`, `a = "a".."" ;`,
		`a = "z".."a" ;`, `a = "x" ; a = "y" ;`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestCommentsAndQuotes(t *testing.T) {
	m := machine(t, `
	(* a comment *)
	s = 'single' | "dou\"ble" ; (* trailing *)
	`, "")
	if !m.AdvanceString("single") || !m.CanAccept() {
		t.Fatal("rejected single-quoted literal")
	}
	m2 := machine(t, `s = "dou\"ble" ;`, "")
	if !m2.AdvanceString(`dou"ble`) || !m2.CanAccept() {
		t.Fatal("escape handling broken")
	}
}

func TestJSONGrammarAcceptsValidJSON(t *testing.T) {
	valid := []string{
		`{}`, `[]`, `"abc"`, `123`, `-4.5`, `true`, `false`, `null`,
		`{"a": 1, "b": [true, null]}`,
		`[{"nested": {"deep": [1, 2, 3]}}]`,
		`  { "ws" :  "ok" }  `,
	}
	for _, s := range valid {
		m := machine(t, JSONGrammar, "json")
		if !m.AdvanceString(s) || !m.CanAccept() {
			t.Errorf("JSON grammar rejected %q", s)
		}
	}
}

func TestJSONGrammarRejectsInvalid(t *testing.T) {
	invalid := []string{
		`{`, `{"a"}`, `{"a":}`, `[1,]`, `01x`, `tru`, `"unterminated`,
		`{"a" 1}`, `{1: 2}`,
	}
	for _, s := range invalid {
		m := machine(t, JSONGrammar, "json")
		if m.AdvanceString(s) && m.CanAccept() {
			t.Errorf("JSON grammar accepted %q", s)
		}
	}
}

// Property: any string produced by walking the grammar randomly is valid
// JSON per encoding/json.
func TestQuickGeneratedJSONIsValid(t *testing.T) {
	g := mustParse(t, JSONGrammar)
	tok := tokenizer.New()
	vocab := tok.Vocab()
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		m, err := g.Compile("json")
		if err != nil {
			return false
		}
		var out []byte
		for steps := 0; steps < 200; steps++ {
			if m.CanAccept() && (!m.CanContinue() || r.Intn(4) == 0 && len(out) > 0) {
				break
			}
			allowed := m.AllowedTokens(vocab)
			if len(allowed) == 0 {
				return m.CanAccept()
			}
			pick := vocab[allowed[r.Intn(len(allowed))]]
			if !m.AdvanceString(string(pick)) {
				return false
			}
			out = append(out, pick...)
		}
		if !m.CanAccept() {
			// Ran out of steps mid-structure; not a failure of masking.
			return true
		}
		var v interface{}
		return json.Unmarshal(out, &v) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: AllowedTokens is sound — every allowed token keeps the machine
// alive; a rejected single byte token is truly not viable.
func TestQuickAllowedTokensSound(t *testing.T) {
	g := mustParse(t, JSONGrammar)
	tok := tokenizer.New()
	vocab := tok.Vocab()
	prefixes := []string{``, `{`, `{"a`, `{"key": `, `[1, `, `-1`, `{"x": [tr`}
	for _, p := range prefixes {
		m, _ := g.Compile("json")
		if !m.AdvanceString(p) {
			t.Fatalf("prefix %q rejected", p)
		}
		allowed := m.AllowedSet(vocab)
		for id, viable := range []bool{} {
			_ = id
			_ = viable
		}
		for id := 0; id < len(vocab); id++ {
			if len(vocab[id]) != 1 {
				continue // single-byte soundness check
			}
			probe := m.Clone()
			ok := probe.Advance(vocab[id][0])
			if ok != allowed[id] {
				t.Fatalf("prefix %q token %q: allowed=%v advance=%v", p, vocab[id], allowed[id], ok)
			}
		}
	}
}

func TestAllowedTokensNarrowAfterStructure(t *testing.T) {
	g := mustParse(t, JSONGrammar)
	tok := tokenizer.New()
	vocab := tok.Vocab()
	m, _ := g.Compile("json")
	m.AdvanceString(`{"a"`)
	allowed := m.AllowedSet(vocab)
	colon := tok.Encode(":")[0]
	if !allowed[colon] {
		t.Fatal("':' not allowed after object key")
	}
	rbrace := tok.Encode("}")[0]
	if allowed[rbrace] {
		t.Fatal("'}' allowed after bare object key")
	}
}

func BenchmarkAllowedTokensJSON(b *testing.B) {
	g, _ := Parse(JSONGrammar)
	tok := tokenizer.New()
	vocab := tok.Vocab()
	m, _ := g.Compile("json")
	m.AdvanceString(`{"key": [1, 2, {"x": `)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AllowedTokens(vocab)
	}
}
