package grammar

import "fmt"

// The matcher compiles the grammar to a recursive transition network: a
// graph of nodes with byte-range, epsilon, call (push return, jump to rule
// start), and pop edges. The Machine tracks a nondeterministic set of
// (node, stack) configurations; stacks are persistent linked lists so
// forked configurations share tails.

type edgeKind int

const (
	edgeEps edgeKind = iota
	edgeByte
	edgeCall
	edgePop
)

type node struct {
	id    int
	edges []edge
}

type edge struct {
	kind   edgeKind
	lo, hi byte
	to     *node // successor (eps/byte) or return node (call)
	callee *node // called rule's start node (call)
}

type compiler struct {
	g      *Grammar
	nextID int
	starts map[string]*node
}

func (c *compiler) newNode() *node {
	c.nextID++
	return &node{id: c.nextID}
}

// compileRule builds start→…→pop for one rule.
func (c *compiler) compileRule(name string) *node {
	if n, ok := c.starts[name]; ok {
		return n
	}
	start := c.newNode()
	c.starts[name] = start // pre-register for recursion
	end := c.compileExpr(c.g.rules[name], start)
	end.edges = append(end.edges, edge{kind: edgePop})
	return start
}

// compileExpr wires e between from and the returned exit node.
func (c *compiler) compileExpr(e expr, from *node) *node {
	switch t := e.(type) {
	case litExpr:
		cur := from
		for i := 0; i < len(t.s); i++ {
			nxt := c.newNode()
			cur.edges = append(cur.edges, edge{kind: edgeByte, lo: t.s[i], hi: t.s[i], to: nxt})
			cur = nxt
		}
		return cur
	case rangeExpr:
		nxt := c.newNode()
		from.edges = append(from.edges, edge{kind: edgeByte, lo: t.lo, hi: t.hi, to: nxt})
		return nxt
	case refExpr:
		callee := c.compileRule(t.name)
		ret := c.newNode()
		from.edges = append(from.edges, edge{kind: edgeCall, to: ret, callee: callee})
		return ret
	case seqExpr:
		cur := from
		for _, it := range t.items {
			cur = c.compileExpr(it, cur)
		}
		return cur
	case altExpr:
		join := c.newNode()
		for _, o := range t.opts {
			end := c.compileExpr(o, from)
			end.edges = append(end.edges, edge{kind: edgeEps, to: join})
		}
		return join
	case optExpr:
		end := c.compileExpr(t.e, from)
		join := c.newNode()
		from.edges = append(from.edges, edge{kind: edgeEps, to: join})
		end.edges = append(end.edges, edge{kind: edgeEps, to: join})
		return join
	case repExpr:
		loop := c.newNode()
		from.edges = append(from.edges, edge{kind: edgeEps, to: loop})
		end := c.compileExpr(t.e, loop)
		end.edges = append(end.edges, edge{kind: edgeEps, to: loop})
		exit := c.newNode()
		loop.edges = append(loop.edges, edge{kind: edgeEps, to: exit})
		return exit
	}
	panic(fmt.Sprintf("grammar: unknown expr %T", e))
}

type stack struct {
	ret  *node
	next *stack
}

type config struct {
	n  *node
	st *stack
}

type configKey struct {
	node  int
	stack *stack
}

// Machine is a live matcher positioned after some byte prefix.
type Machine struct {
	configs []config
	accept  bool // some configuration has consumed a complete sentence
}

// Compile builds a machine for the grammar's start rule (the first rule,
// or the named one if start != "").
func (g *Grammar) Compile(start string) (*Machine, error) {
	if start == "" {
		start = g.order[0]
	}
	if _, ok := g.rules[start]; !ok {
		return nil, fmt.Errorf("grammar: no start rule %q", start)
	}
	c := &compiler{g: g, starts: make(map[string]*node)}
	s := c.compileRule(start)
	m := &Machine{configs: []config{{n: s, st: nil}}}
	m.close()
	return m, nil
}

// Clone copies the machine's live state (configs share immutable stacks).
func (m *Machine) Clone() *Machine {
	return &Machine{configs: append([]config(nil), m.configs...), accept: m.accept}
}

// close expands epsilon, call, and pop edges until a fixpoint; it also
// records acceptance (pop with empty stack).
func (m *Machine) close() {
	seen := make(map[configKey]bool, len(m.configs)*2)
	var out []config
	work := append([]config(nil), m.configs...)
	for _, c := range work {
		seen[configKey{c.n.id, c.st}] = true
	}
	for len(work) > 0 {
		c := work[len(work)-1]
		work = work[:len(work)-1]
		hasByte := false
		for _, e := range c.n.edges {
			switch e.kind {
			case edgeByte:
				hasByte = true
			case edgeEps:
				nc := config{n: e.to, st: c.st}
				k := configKey{nc.n.id, nc.st}
				if !seen[k] {
					seen[k] = true
					work = append(work, nc)
				}
			case edgeCall:
				nc := config{n: e.callee, st: &stack{ret: e.to, next: c.st}}
				k := configKey{nc.n.id, nc.st}
				if !seen[k] {
					seen[k] = true
					work = append(work, nc)
				}
			case edgePop:
				if c.st == nil {
					m.accept = true
					continue
				}
				nc := config{n: c.st.ret, st: c.st.next}
				k := configKey{nc.n.id, nc.st}
				if !seen[k] {
					seen[k] = true
					work = append(work, nc)
				}
			}
		}
		if hasByte {
			out = append(out, c)
		}
	}
	m.configs = out
}

// Advance consumes one byte; it reports whether the machine is still live.
func (m *Machine) Advance(b byte) bool {
	var next []config
	for _, c := range m.configs {
		for _, e := range c.n.edges {
			if e.kind == edgeByte && e.lo <= b && b <= e.hi {
				next = append(next, config{n: e.to, st: c.st})
			}
		}
	}
	m.configs = next
	m.accept = false
	m.close()
	return len(m.configs) > 0 || m.accept
}

// AdvanceString consumes every byte of s; it reports whether all were
// viable.
func (m *Machine) AdvanceString(s string) bool {
	for i := 0; i < len(s); i++ {
		if !m.Advance(s[i]) {
			return false
		}
	}
	return true
}

// Viable reports whether any continuation (including acceptance) exists.
func (m *Machine) Viable() bool { return len(m.configs) > 0 || m.accept }

// CanAccept reports whether the bytes consumed so far form a complete
// sentence.
func (m *Machine) CanAccept() bool { return m.accept }

// CanContinue reports whether at least one more byte can be consumed.
func (m *Machine) CanContinue() bool { return len(m.configs) > 0 }

// TokenViable reports whether the machine could consume every byte of tok
// (without committing the machine).
func (m *Machine) TokenViable(tok []byte) bool {
	if len(tok) == 0 {
		return false
	}
	probe := m.Clone()
	for _, b := range tok {
		if !probe.Advance(b) {
			return false
		}
	}
	return true
}

// AllowedTokens filters a vocabulary (token id → bytes) down to the ids
// viable from the current state. Empty-byte tokens (specials) are never
// allowed.
func (m *Machine) AllowedTokens(vocab [][]byte) []int {
	var out []int
	for id, b := range vocab {
		if len(b) == 0 {
			continue
		}
		if m.TokenViable(b) {
			out = append(out, id)
		}
	}
	return out
}

// AllowedSet is AllowedTokens as a membership map.
func (m *Machine) AllowedSet(vocab [][]byte) map[int]bool {
	out := make(map[int]bool)
	for _, id := range m.AllowedTokens(vocab) {
		out[id] = true
	}
	return out
}

// JSONGrammar is a ready-made grammar for a practical JSON subset
// (strings over a safe alphabet, integers/decimals, nesting, booleans,
// null) used by the EBNF-decoding application and the evaluation.
const JSONGrammar = `
json     = element ;
element  = ws value ws ;
value    = object | array | string | number | "true" | "false" | "null" ;
object   = "{" ws "}" | "{" members "}" ;
members  = member { "," member } ;
member   = ws string ws ":" element ;
array    = "[" ws "]" | "[" elements "]" ;
elements = element { "," element } ;
string   = '"' { char } '"' ;
char     = "a".."z" | "A".."Z" | "0".."9" | " " | "_" | "-" | "." ;
number   = [ "-" ] intpart [ "." digits ] ;
intpart  = "0" | onenine { digit } ;
digits   = digit { digit } ;
digit    = "0".."9" ;
onenine  = "1".."9" ;
ws       = { " " } ;
`
