// Package grammar implements EBNF-driven constrained decoding: parse an
// EBNF grammar, compile it to a recursive transition network over bytes,
// and maintain a nondeterministic state set that answers "which tokens may
// come next" — the mechanism behind structured generation (§7.3; the paper
// integrates the llguidance Rust library as a Wasm dependency, this
// package is the equivalent substrate built from scratch).
//
// Supported EBNF:
//
//	rule   = alternation ";"
//	alternation = concat { "|" concat }
//	concat = term { term }
//	term   = '"lit"' | "'lit'" | ident | "(" alt ")" | "[" alt "]"
//	       | "{" alt "}" | '"a"' ".." '"z"'      (single-char range)
//	(* comments *)
//
// Left recursion is rejected at compile time (it would loop the matcher).
package grammar

import (
	"fmt"
	"strings"
)

// --- AST -------------------------------------------------------------------

type expr interface{ String() string }

type litExpr struct{ s string }
type rangeExpr struct{ lo, hi byte }
type refExpr struct{ name string }
type seqExpr struct{ items []expr }
type altExpr struct{ opts []expr }
type optExpr struct{ e expr }
type repExpr struct{ e expr }

func (e litExpr) String() string   { return fmt.Sprintf("%q", e.s) }
func (e rangeExpr) String() string { return fmt.Sprintf("%q..%q", e.lo, e.hi) }
func (e refExpr) String() string   { return e.name }
func (e seqExpr) String() string {
	parts := make([]string, len(e.items))
	for i, it := range e.items {
		parts[i] = it.String()
	}
	return strings.Join(parts, " ")
}
func (e altExpr) String() string {
	parts := make([]string, len(e.opts))
	for i, o := range e.opts {
		parts[i] = o.String()
	}
	return "(" + strings.Join(parts, " | ") + ")"
}
func (e optExpr) String() string { return "[" + e.e.String() + "]" }
func (e repExpr) String() string { return "{" + e.e.String() + "}" }

// Grammar is a parsed, validated EBNF grammar.
type Grammar struct {
	rules map[string]expr
	order []string
}

// Rules lists rule names in definition order.
func (g *Grammar) Rules() []string { return append([]string(nil), g.order...) }

// --- Parser ------------------------------------------------------------------

type parser struct {
	src []byte
	pos int
}

// Parse compiles EBNF source text into a Grammar.
func Parse(src string) (*Grammar, error) {
	p := &parser{src: []byte(src)}
	g := &Grammar{rules: make(map[string]expr)}
	for {
		p.ws()
		if p.eof() {
			break
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		p.ws()
		if !p.eat('=') {
			return nil, p.errf("expected '=' after rule name %q", name)
		}
		e, err := p.alternation()
		if err != nil {
			return nil, err
		}
		p.ws()
		if !p.eat(';') {
			return nil, p.errf("expected ';' terminating rule %q", name)
		}
		if _, dup := g.rules[name]; dup {
			return nil, fmt.Errorf("grammar: duplicate rule %q", name)
		}
		g.rules[name] = e
		g.order = append(g.order, name)
	}
	if len(g.order) == 0 {
		return nil, fmt.Errorf("grammar: no rules")
	}
	// Validate references and reject left recursion.
	for name, e := range g.rules {
		if err := g.checkRefs(e); err != nil {
			return nil, fmt.Errorf("grammar: rule %q: %w", name, err)
		}
	}
	if err := g.checkLeftRecursion(); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) ws() {
	for !p.eof() {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		if c == '(' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '*' {
			end := strings.Index(string(p.src[p.pos+2:]), "*)")
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += end + 4
			continue
		}
		return
	}
}

func (p *parser) eat(c byte) bool {
	if !p.eof() && p.src[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("grammar: at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func isIdentByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func (p *parser) ident() (string, error) {
	start := p.pos
	for !p.eof() && isIdentByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected identifier")
	}
	return string(p.src[start:p.pos]), nil
}

func (p *parser) alternation() (expr, error) {
	first, err := p.concat()
	if err != nil {
		return nil, err
	}
	opts := []expr{first}
	for {
		p.ws()
		if !p.eat('|') {
			break
		}
		e, err := p.concat()
		if err != nil {
			return nil, err
		}
		opts = append(opts, e)
	}
	if len(opts) == 1 {
		return opts[0], nil
	}
	return altExpr{opts: opts}, nil
}

func (p *parser) concat() (expr, error) {
	var items []expr
	for {
		p.ws()
		c := p.peek()
		if c == 0 || c == ';' || c == '|' || c == ')' || c == ']' || c == '}' {
			break
		}
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		items = append(items, t)
	}
	if len(items) == 0 {
		return seqExpr{}, nil // epsilon
	}
	if len(items) == 1 {
		return items[0], nil
	}
	return seqExpr{items: items}, nil
}

func (p *parser) term() (expr, error) {
	p.ws()
	switch c := p.peek(); {
	case c == '"' || c == '\'':
		s, err := p.quoted(c)
		if err != nil {
			return nil, err
		}
		// Possible range: "a" .. "z"
		p.ws()
		if strings.HasPrefix(string(p.src[p.pos:]), "..") {
			p.pos += 2
			p.ws()
			q := p.peek()
			if q != '"' && q != '\'' {
				return nil, p.errf("expected quoted upper bound after '..'")
			}
			hi, err := p.quoted(q)
			if err != nil {
				return nil, err
			}
			if len(s) != 1 || len(hi) != 1 {
				return nil, p.errf("range bounds must be single characters")
			}
			if s[0] > hi[0] {
				return nil, p.errf("inverted range %q..%q", s, hi)
			}
			return rangeExpr{lo: s[0], hi: hi[0]}, nil
		}
		return litExpr{s: s}, nil
	case c == '(':
		p.pos++
		e, err := p.alternation()
		if err != nil {
			return nil, err
		}
		p.ws()
		if !p.eat(')') {
			return nil, p.errf("expected ')'")
		}
		return e, nil
	case c == '[':
		p.pos++
		e, err := p.alternation()
		if err != nil {
			return nil, err
		}
		p.ws()
		if !p.eat(']') {
			return nil, p.errf("expected ']'")
		}
		return optExpr{e: e}, nil
	case c == '{':
		p.pos++
		e, err := p.alternation()
		if err != nil {
			return nil, err
		}
		p.ws()
		if !p.eat('}') {
			return nil, p.errf("expected '}'")
		}
		return repExpr{e: e}, nil
	case isIdentByte(c):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return refExpr{name: name}, nil
	}
	return nil, p.errf("unexpected character %q", p.peek())
}

func (p *parser) quoted(q byte) (string, error) {
	if !p.eat(q) {
		return "", p.errf("expected quote")
	}
	var out []byte
	for {
		if p.eof() {
			return "", p.errf("unterminated literal")
		}
		c := p.src[p.pos]
		p.pos++
		if c == q {
			return string(out), nil
		}
		if c == '\\' && !p.eof() {
			n := p.src[p.pos]
			p.pos++
			switch n {
			case 'n':
				out = append(out, '\n')
			case 't':
				out = append(out, '\t')
			case '\\', '"', '\'':
				out = append(out, n)
			default:
				return "", p.errf("unknown escape \\%c", n)
			}
			continue
		}
		out = append(out, c)
	}
}

func (g *Grammar) checkRefs(e expr) error {
	switch t := e.(type) {
	case refExpr:
		if _, ok := g.rules[t.name]; !ok {
			return fmt.Errorf("undefined rule %q", t.name)
		}
	case seqExpr:
		for _, it := range t.items {
			if err := g.checkRefs(it); err != nil {
				return err
			}
		}
	case altExpr:
		for _, o := range t.opts {
			if err := g.checkRefs(o); err != nil {
				return err
			}
		}
	case optExpr:
		return g.checkRefs(t.e)
	case repExpr:
		return g.checkRefs(t.e)
	}
	return nil
}

// nullable reports whether e can match the empty string.
func (g *Grammar) nullable(e expr, seen map[string]bool) bool {
	switch t := e.(type) {
	case litExpr:
		return len(t.s) == 0
	case rangeExpr:
		return false
	case refExpr:
		if seen[t.name] {
			return false
		}
		seen[t.name] = true
		defer delete(seen, t.name)
		return g.nullable(g.rules[t.name], seen)
	case seqExpr:
		for _, it := range t.items {
			if !g.nullable(it, seen) {
				return false
			}
		}
		return true
	case altExpr:
		for _, o := range t.opts {
			if g.nullable(o, seen) {
				return true
			}
		}
		return false
	case optExpr, repExpr:
		return true
	}
	return false
}

// checkLeftRecursion rejects rules that can re-enter themselves without
// consuming a byte.
func (g *Grammar) checkLeftRecursion() error {
	for _, name := range g.order {
		if g.leftCalls(g.rules[name], name, map[string]bool{name: true}) {
			return fmt.Errorf("grammar: rule %q is left-recursive", name)
		}
	}
	return nil
}

// leftCalls reports whether e can call target at its left edge.
func (g *Grammar) leftCalls(e expr, target string, visiting map[string]bool) bool {
	switch t := e.(type) {
	case refExpr:
		if t.name == target {
			return true
		}
		if visiting[t.name] {
			return false
		}
		visiting[t.name] = true
		defer delete(visiting, t.name)
		return g.leftCalls(g.rules[t.name], target, visiting)
	case seqExpr:
		for _, it := range t.items {
			if g.leftCalls(it, target, visiting) {
				return true
			}
			if !g.nullable(it, map[string]bool{}) {
				return false
			}
		}
		return false
	case altExpr:
		for _, o := range t.opts {
			if g.leftCalls(o, target, visiting) {
				return true
			}
		}
		return false
	case optExpr:
		return g.leftCalls(t.e, target, visiting)
	case repExpr:
		return g.leftCalls(t.e, target, visiting)
	}
	return false
}
