package gpu

import (
	"testing"
	"time"

	"pie/internal/sim"
)

func TestSpecCalibrationAnchors(t *testing.T) {
	// Decode-step cost at batch 32 with ~400-token contexts must sit near
	// the paper's measured vLLM TPOTs (Table 4).
	anchors := map[string]time.Duration{
		"1B": 16830 * time.Microsecond,
		"3B": 30300 * time.Microsecond,
		"8B": 64060 * time.Microsecond,
	}
	for label, want := range anchors {
		s := SpecFor(label)
		got := s.ForwardCost(32, 0, 32*400) + s.FusedSampleCost(32)
		ratio := float64(got) / float64(want)
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%s: step cost %v vs paper %v (ratio %.2f)", label, got, want, ratio)
		}
	}
}

func TestSpecOrdering(t *testing.T) {
	s1, s3, s8 := SpecFor("1B"), SpecFor("3B"), SpecFor("8B")
	if !(s1.WeightStream < s3.WeightStream && s3.WeightStream < s8.WeightStream) {
		t.Fatal("weight stream not ordered by size")
	}
	if !(s1.PerTokenPrefill < s1.PerTokenDecode) {
		t.Fatal("prefill tokens should be cheaper than decode steps")
	}
}

func TestKvPageCapacityBinds(t *testing.T) {
	// The 8B model must fit far fewer cached tokens than 1B — the Fig. 7
	// contention lever.
	c1 := SpecFor("1B").KvPageCapacity(16)
	c8 := SpecFor("8B").KvPageCapacity(16)
	if c8*4 > c1 {
		t.Fatalf("8B capacity %d not much smaller than 1B %d", c8, c1)
	}
	if c8*16 < 40000 || c8*16 > 80000 {
		t.Fatalf("8B token capacity %d outside the expected ~60K", c8*16)
	}
	if SpecFor("8B").KvPageCapacity(1<<30) != 0 {
		t.Fatal("absurd page size should yield zero capacity")
	}
}

func TestBatchSharesWeightStream(t *testing.T) {
	s := SpecFor("1B")
	one := s.ForwardCost(1, 0, 0)
	thirtyTwo := s.ForwardCost(32, 0, 0)
	if thirtyTwo > 2*one {
		t.Fatalf("batching broken: 32 seqs cost %v vs %v for one", thirtyTwo, one)
	}
}

func TestDeviceSerializesKernels(t *testing.T) {
	clock := sim.NewClock()
	d := NewDevice(clock, "t")
	var ends [3]time.Duration
	clock.Go("driver", func() {
		sigs := make([]*sim.Signal, 3)
		for i := range sigs {
			sigs[i] = d.Submit("k", 10*time.Millisecond)
		}
		for i, s := range sigs {
			_ = sim.Await(s)
			ends[i] = clock.Now()
		}
	})
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []time.Duration{10, 20, 30} {
		if ends[i] != want*time.Millisecond {
			t.Fatalf("kernel %d ended at %v, want %vms", i, ends[i], want)
		}
	}
	if d.BusyTime() != 30*time.Millisecond {
		t.Fatalf("busy time %v", d.BusyTime())
	}
	if d.Kernels() != 3 {
		t.Fatalf("kernels %d", d.Kernels())
	}
}

func TestDeviceIdleNotification(t *testing.T) {
	clock := sim.NewClock()
	d := NewDevice(clock, "t")
	idleAt := time.Duration(-1)
	d.SetIdleFunc(func() { idleAt = clock.Now() })
	clock.Go("driver", func() {
		done := d.Submit("k", 5*time.Millisecond)
		_ = sim.Await(done)
		clock.Sleep(time.Millisecond)
	})
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if idleAt != 5*time.Millisecond {
		t.Fatalf("idle fired at %v, want 5ms", idleAt)
	}
	if !d.Idle() {
		t.Fatal("device not idle after drain")
	}
}

func TestArtifactCost(t *testing.T) {
	s := SpecFor("1B")
	// Calibration: a Table 2 binary (129 KB) pays ~26 ms of upload + JIT
	// on a cold launch, reproducing Fig. 9's cold-vs-warm gap.
	got := s.ArtifactCost(129 << 10)
	want := time.Duration(129<<10) * 200 * time.Nanosecond
	if got != want {
		t.Fatalf("ArtifactCost(129KB) = %v, want %v", got, want)
	}
	if s.ArtifactCost(0) != 0 || s.ArtifactCost(-1) != 0 {
		t.Fatal("empty binaries must cost nothing")
	}
	if s.ArtifactCacheBytes <= 0 {
		t.Fatal("default artifact cache capacity must be positive")
	}
}
