// Package gpu simulates the hardware accelerator behind the inference
// layer: a single serially-executing device plus an analytical cost model
// per parameter class.
//
// Calibration. The paper's testbed is an NVIDIA L4 (24 GB) serving Llama 3
// at BF16 with FlashInfer kernels; its own measurements anchor the
// constants here:
//
//   - Table 4 gives monolithic-engine (vLLM) text-completion TPOT at 32
//     concurrent requests: 16.83 ms (1B), 30.30 ms (3B), 64.06 ms (8B).
//     A decode step over a batch B charges WeightStream plus
//     B·PerTokenDecode plus the KV reads; the constants below make the
//     vLLM simulation land on those numbers. Bulk prefill is compute-bound
//     and priced separately (PerTokenPrefill, several times cheaper).
//   - Table 3 itemizes Pie's decomposed-pipeline overheads; the dominant
//     term is the separate (non-pipelined) sampling kernel, represented by
//     SampleKernel plus a lost-overlap term that shrinks as forwards grow.
//   - Figure 10's inference-layer API overhead comes from the IPC boundary
//     (constant ~6 µs) plus single-threaded request deserialization that
//     scales with concurrent inferlets; see DeserPerCall.
//
// Memory geometry uses the real Llama-3 KV layouts (bytes/token) so KV
// capacity pressure matches the paper's setting: the 8B model fits ~60K
// cached tokens in 24 GB, making 128-agent workloads contend (Fig. 7).
package gpu

import (
	"time"

	"pie/internal/sim"
)

// Spec holds the timing and memory constants for one parameter class.
//
// Forward kernels have two per-token regimes: decode steps are
// memory-bound (each sequence's activations and KV stream per step, the
// marginal cost behind Table 4's batched TPOT), while bulk prefill is
// compute-bound and several times cheaper per token.
type Spec struct {
	Label string

	KernelLaunch    time.Duration // fixed per-kernel dispatch cost
	WeightStream    time.Duration // streaming all weights once per forward kernel
	PerTokenDecode  time.Duration // marginal cost per decode-step sequence
	PerTokenPrefill time.Duration // marginal cost per bulk prefill token
	KvReadPerTok    time.Duration // marginal cost per attended context token
	EmbedKernel     time.Duration // standalone embedding kernel
	EmbedPerTok     time.Duration
	SampleKernel    time.Duration // standalone sampling/distribution kernel
	SamplePerSeq    time.Duration
	KvOpKernel      time.Duration // alloc/copy/mask page operations

	// Host-memory KV offload (tiered cache): moving a page between device
	// and host pays one DMA setup per swap plus the page bytes over the
	// PCIe link. The L4 sits on PCIe Gen4 x16 — ~32 GB/s theoretical,
	// ~25 GB/s effective for pinned-host DMA.
	HostXferSetup    time.Duration // per-swap DMA/driver setup cost
	HostXferBytesSec int64         // effective PCIe bandwidth, bytes/sec

	// Program-artifact deployment (Fig. 9, Table 2): a cold launch uploads
	// the compiled Wasm binary and JIT-compiles it on the serving host.
	// Both charges scale with BinarySize; warm launches hit the replica's
	// artifact cache and skip them entirely.
	ArtifactUploadPerByte time.Duration // client->server upload (~100 MB/s)
	ArtifactJitPerByte    time.Duration // wasmtime JIT throughput (~5.3 MB/s)
	ArtifactCacheBytes    int64         // default warm-artifact cache capacity per replica

	TotalMemBytes   int64
	WeightBytes     int64
	KvBytesPerToken int64
	EmbedBytes      int64 // per embedding slot
}

// SpecFor returns the calibrated spec for a parameter label ("1B", "3B",
// "8B"). Unknown labels fall back to 1B.
func SpecFor(label string) Spec {
	const gb = int64(1) << 30
	base := Spec{
		Label:            label,
		KernelLaunch:     30 * time.Microsecond,
		EmbedKernel:      50 * time.Microsecond,
		EmbedPerTok:      600 * time.Nanosecond,
		SampleKernel:     800 * time.Microsecond,
		SamplePerSeq:     15 * time.Microsecond,
		KvOpKernel:       20 * time.Microsecond,
		HostXferSetup:    10 * time.Microsecond,
		HostXferBytesSec: 25 * (int64(1) << 30),
		// Calibrated so a Table 2 binary (~130 KB) pays ~26 ms cold
		// (upload + JIT), matching Fig. 9's cold-vs-warm gap. The default
		// cache holds every Table 2 artifact (~3 MB total) so single-replica
		// engines behave like the paper's always-cached ILM.
		ArtifactUploadPerByte: 10 * time.Nanosecond,
		ArtifactJitPerByte:    190 * time.Nanosecond,
		ArtifactCacheBytes:    8 << 20,
		TotalMemBytes:         24 * gb,
	}
	switch label {
	case "8B":
		base.WeightStream = 48 * time.Millisecond
		base.PerTokenDecode = 420 * time.Microsecond
		base.PerTokenPrefill = 300 * time.Microsecond
		base.KvReadPerTok = 190 * time.Nanosecond
		base.WeightBytes = 16 * gb
		base.KvBytesPerToken = 128 << 10 // 32 layers × 2 × 8 kv-heads × 128 dim × 2B
		base.EmbedBytes = 8192
	case "3B":
		base.WeightStream = 21500 * time.Microsecond
		base.PerTokenDecode = 230 * time.Microsecond
		base.PerTokenPrefill = 110 * time.Microsecond
		base.KvReadPerTok = 110 * time.Nanosecond
		base.WeightBytes = 6 * gb
		base.KvBytesPerToken = 72 << 10 // 28 layers × 2 × 8 × 128 × 2B (3.2-3B geometry)
		base.EmbedBytes = 6144
	default: // "1B"
		base.Label = "1B"
		base.WeightStream = 10 * time.Millisecond
		base.PerTokenDecode = 180 * time.Microsecond
		base.PerTokenPrefill = 40 * time.Microsecond
		base.KvReadPerTok = 60 * time.Nanosecond
		base.WeightBytes = 5 * gb / 2
		base.KvBytesPerToken = 32 << 10 // 16 layers × 2 × 8 × 64 × 2B
		base.EmbedBytes = 4096
	}
	return base
}

// KvPageCapacity returns how many pages of pageSize tokens fit beside the
// weights, reserving headroom for activations.
func (s Spec) KvPageCapacity(pageSize int) int {
	free := s.TotalMemBytes - s.WeightBytes - (2 << 30) // 2 GB activation headroom
	if free <= 0 {
		return 0
	}
	perPage := s.KvBytesPerToken * int64(pageSize)
	return int(free / perPage)
}

// ForwardCost prices one (possibly batched) forward kernel: decodeSeqs
// sequences advancing one step, prefillTokens bulk input tokens, attending
// over ctxTokens total context entries. The weight stream is paid once per
// kernel — this is the entire economics of batching (Table 5).
func (s Spec) ForwardCost(decodeSeqs, prefillTokens, ctxTokens int) time.Duration {
	return s.KernelLaunch + s.WeightStream +
		time.Duration(decodeSeqs)*s.PerTokenDecode +
		time.Duration(prefillTokens)*s.PerTokenPrefill +
		time.Duration(ctxTokens)*s.KvReadPerTok
}

// EmbedCost prices a batched embedding kernel.
func (s Spec) EmbedCost(tokens int) time.Duration {
	return s.KernelLaunch + s.EmbedKernel + time.Duration(tokens)*s.EmbedPerTok
}

// SampleCost prices a batched distribution/sampling kernel over seqs
// sequences.
func (s Spec) SampleCost(seqs int) time.Duration {
	return s.KernelLaunch + s.SampleKernel + time.Duration(seqs)*s.SamplePerSeq
}

// FusedSampleCost prices sampling when fused into the forward kernel
// (monolithic pipelines and the Table 3 ablation): the kernel launch and
// most of the sampling latency overlap with the forward pass.
func (s Spec) FusedSampleCost(seqs int) time.Duration {
	return time.Duration(seqs) * s.SamplePerSeq
}

// PageBytes returns the device footprint of one KV page of pageSize
// tokens.
func (s Spec) PageBytes(pageSize int) int64 {
	return s.KvBytesPerToken * int64(pageSize)
}

// SwapCost prices moving n KV pages of pageSize tokens across the PCIe
// link (host-memory offload, either direction): one DMA setup per swap
// operation plus the page bytes at link bandwidth.
func (s Spec) SwapCost(n, pageSize int) time.Duration {
	if n <= 0 {
		return 0
	}
	bytes := s.PageBytes(pageSize) * int64(n)
	xfer := time.Duration(float64(bytes) / float64(s.HostXferBytesSec) * float64(time.Second))
	return s.HostXferSetup + xfer
}

// ArtifactCost prices a cold program launch's deployment pipeline: upload
// the compiled binary, then JIT it on the serving host. Warm launches
// (artifact already cached on the replica) pay neither.
func (s Spec) ArtifactCost(binaryBytes int) time.Duration {
	if binaryBytes <= 0 {
		return 0
	}
	return time.Duration(binaryBytes) * (s.ArtifactUploadPerByte + s.ArtifactJitPerByte)
}

// KvOpCost prices page maintenance operations (copy/mask) over n tokens.
func (s Spec) KvOpCost(tokens int) time.Duration {
	return s.KvOpKernel + time.Duration(tokens)*200*time.Nanosecond
}

// Device is a serially-executing accelerator on the virtual clock. Kernels
// submitted while the device is busy queue FIFO. The device reports
// busy→idle transitions to an idle callback — the signal Pie's
// work-conserving batch scheduler is built on (§6.1).
type Device struct {
	clock    *sim.Clock
	name     string
	queue    *sim.Mailbox[kernel]
	busy     bool
	idleFn   func()
	busyTime time.Duration
	kernels  int
	slowdown float64 // >1 multiplies every kernel cost (degraded device)
	failed   bool    // crash-stopped: never executes or completes again
}

type kernel struct {
	label string
	cost  time.Duration
	done  *sim.Signal
}

// NewDevice starts the device process on c.
func NewDevice(c *sim.Clock, name string) *Device {
	d := &Device{clock: c, name: name, queue: sim.NewMailbox[kernel](c)}
	c.GoDaemon("gpu:"+name, d.loop)
	return d
}

func (d *Device) loop() {
	for {
		k, err := d.queue.Recv()
		if err != nil {
			return
		}
		if d.failed {
			d.park()
		}
		d.busy = true
		for {
			cost := k.cost
			if d.slowdown > 1 {
				cost = time.Duration(float64(cost) * d.slowdown)
			}
			d.clock.Sleep(cost)
			if d.failed {
				// Crash-stopped mid-kernel: the in-flight kernel is lost,
				// its completion never fires, and the device goes dark. The
				// cluster health layer is responsible for unwinding waiters.
				d.park()
			}
			d.busyTime += cost
			d.kernels++
			sim.Fire(k.done)
			next, ok := d.queue.TryRecv()
			if !ok {
				break
			}
			k = next
		}
		d.busy = false
		if d.idleFn != nil {
			d.idleFn()
		}
	}
}

// park strands the device process on a signal that never fires. Daemons
// parked without pending events contribute nothing to the event heap, so a
// dead device never turns a finished simulation into a deadlock.
func (d *Device) park() {
	_ = sim.Await(sim.NewSignal(d.clock))
}

// Submit enqueues a kernel and returns its completion signal.
func (d *Device) Submit(label string, cost time.Duration) *sim.Signal {
	done := sim.NewSignal(d.clock)
	d.queue.Send(kernel{label: label, cost: cost, done: done})
	return done
}

// Busy reports whether a kernel is executing.
func (d *Device) Busy() bool { return d.busy }

// Idle reports whether the device is fully drained: nothing executing and
// nothing queued.
func (d *Device) Idle() bool { return !d.busy && d.queue.Len() == 0 }

// SetIdleFunc installs the busy→idle notification callback. It runs in the
// device process.
func (d *Device) SetIdleFunc(fn func()) { d.idleFn = fn }

// BusyTime returns cumulative kernel execution time.
func (d *Device) BusyTime() time.Duration { return d.busyTime }

// Kernels returns the number of kernels executed.
func (d *Device) Kernels() int { return d.kernels }

// Fail crash-stops the device: the kernel in flight (if any) is lost, and
// no submitted kernel will ever execute or complete again. Queued and
// future submissions park their waiters; recovering them is the cluster
// health layer's job. Irreversible.
func (d *Device) Fail() { d.failed = true }

// Failed reports whether the device has crash-stopped.
func (d *Device) Failed() bool { return d.failed }

// SetSlowdown degrades the device: every subsequent kernel costs factor
// times its modeled price (a thermally throttled or contended accelerator).
// Factors <= 1 restore full speed.
func (d *Device) SetSlowdown(factor float64) { d.slowdown = factor }

// Slowdown reports the current degradation factor (0 or 1 = full speed).
func (d *Device) Slowdown() float64 { return d.slowdown }

// Close shuts the device process down.
func (d *Device) Close() { d.queue.Close() }
