package gpu

// Device fault-model tests: crash-stop (Fail) strands kernels without
// deadlocking the simulation, slowdown multiplies kernel cost, and the
// auxiliary cost functions price sanely. The cluster health layer builds
// its detection contract on exactly these behaviors.

import (
	"testing"
	"time"

	"pie/internal/sim"
)

func TestSpecAuxCosts(t *testing.T) {
	s := SpecFor("1B")
	if s.EmbedCost(64) <= s.EmbedCost(0) {
		t.Fatal("EmbedCost not monotonic in tokens")
	}
	if s.SampleCost(8) <= s.SampleCost(0) {
		t.Fatal("SampleCost not monotonic in seqs")
	}
	if got := s.PageBytes(16); got != 16*s.KvBytesPerToken {
		t.Fatalf("PageBytes(16) = %d, want %d", got, 16*s.KvBytesPerToken)
	}
	if s.SwapCost(0, 16) != 0 {
		t.Fatal("SwapCost of zero pages should be free")
	}
	if s.SwapCost(2, 16) <= s.HostXferSetup {
		t.Fatal("SwapCost must exceed the DMA setup floor")
	}
	if s.KvOpCost(128) <= s.KvOpCost(0) {
		t.Fatal("KvOpCost not monotonic in tokens")
	}
}

func TestDeviceSlowdownMultipliesKernelCost(t *testing.T) {
	clock := sim.NewClock()
	d := NewDevice(clock, "throttled")
	var slowEnd, fullEnd time.Duration
	clock.Go("driver", func() {
		d.SetSlowdown(4)
		if d.Slowdown() != 4 {
			t.Errorf("Slowdown() = %v, want 4", d.Slowdown())
		}
		_ = sim.Await(d.Submit("k", 10*time.Millisecond))
		slowEnd = clock.Now()
		d.SetSlowdown(1)
		_ = sim.Await(d.Submit("k", 10*time.Millisecond))
		fullEnd = clock.Now()
	})
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if slowEnd != 40*time.Millisecond {
		t.Fatalf("slowed kernel finished at %v, want 40ms", slowEnd)
	}
	if fullEnd-slowEnd != 10*time.Millisecond {
		t.Fatalf("restored kernel took %v, want 10ms", fullEnd-slowEnd)
	}
}

func TestDeviceFailMidKernelGoesDark(t *testing.T) {
	clock := sim.NewClock()
	d := NewDevice(clock, "crash-busy")
	d.Submit("doomed", 10*time.Millisecond)
	clock.Go("killer", func() {
		clock.Sleep(5 * time.Millisecond)
		if !d.Busy() {
			t.Error("device should be mid-kernel at 5ms")
		}
		d.Fail()
		if !d.Failed() {
			t.Error("Failed() false after Fail()")
		}
	})
	// The stranded kernel must not deadlock the run: the dead device parks.
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Kernels() != 0 {
		t.Fatalf("crash-stopped device completed %d kernels", d.Kernels())
	}
}

func TestDeviceFailWhileIdleParksNextKernel(t *testing.T) {
	clock := sim.NewClock()
	d := NewDevice(clock, "crash-idle")
	clock.Go("driver", func() {
		d.Fail()
		d.Submit("never", time.Millisecond)
		clock.Sleep(5 * time.Millisecond)
	})
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if d.Kernels() != 0 || d.BusyTime() != 0 {
		t.Fatalf("dead device did work: kernels=%d busy=%v", d.Kernels(), d.BusyTime())
	}
}

func TestDeviceClose(t *testing.T) {
	clock := sim.NewClock()
	d := NewDevice(clock, "closing")
	clock.Go("driver", func() {
		_ = sim.Await(d.Submit("k", time.Millisecond))
		d.Close()
	})
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if !d.Idle() || d.Kernels() != 1 {
		t.Fatalf("closed device state: idle=%v kernels=%d", d.Idle(), d.Kernels())
	}
}
