// Package tensor provides the small float32 linear-algebra kernels used by
// the functional transformer model. Matrices are flat row-major slices.
package tensor

import "math"

// MatVec computes out = W·x for a rows×cols matrix W.
func MatVec(w []float32, rows, cols int, x, out []float32) {
	if len(w) != rows*cols || len(x) != cols || len(out) != rows {
		panic("tensor: MatVec dimension mismatch")
	}
	for r := 0; r < rows; r++ {
		row := w[r*cols : (r+1)*cols]
		var s float32
		for c, v := range row {
			s += v * x[c]
		}
		out[r] = s
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AddInPlace sets dst += src.
func AddInPlace(dst, src []float32) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// Copy duplicates x.
func Copy(x []float32) []float32 {
	y := make([]float32, len(x))
	copy(y, x)
	return y
}

// RMSNorm writes weight ⊙ x/rms(x) into out (out may alias x).
func RMSNorm(x, weight, out []float32, eps float32) {
	var ss float32
	for _, v := range x {
		ss += v * v
	}
	inv := 1 / float32(math.Sqrt(float64(ss/float32(len(x))+eps)))
	for i := range x {
		out[i] = x[i] * inv * weight[i]
	}
}

// Softmax normalizes x in place with max-subtraction for stability.
func Softmax(x []float32) {
	if len(x) == 0 {
		return
	}
	mx := x[0]
	for _, v := range x[1:] {
		if v > mx {
			mx = v
		}
	}
	var sum float32
	for i, v := range x {
		e := float32(math.Exp(float64(v - mx)))
		x[i] = e
		sum += e
	}
	if sum == 0 {
		return
	}
	for i := range x {
		x[i] /= sum
	}
}

// SiLU applies x*sigmoid(x) elementwise in place.
func SiLU(x []float32) {
	for i, v := range x {
		x[i] = v / (1 + float32(math.Exp(float64(-v))))
	}
}

// Rope applies rotary position embedding to v (a concatenation of heads of
// size headDim) for absolute position pos, in place.
func Rope(v []float32, headDim, pos int, base float64) {
	if headDim%2 != 0 {
		panic("tensor: Rope requires even headDim")
	}
	for h := 0; h < len(v); h += headDim {
		for i := 0; i < headDim/2; i++ {
			theta := float64(pos) / math.Pow(base, 2*float64(i)/float64(headDim))
			sin, cos := math.Sincos(theta)
			a, b := v[h+2*i], v[h+2*i+1]
			v[h+2*i] = a*float32(cos) - b*float32(sin)
			v[h+2*i+1] = a*float32(sin) + b*float32(cos)
		}
	}
}

// ArgMax returns the index of the largest element (first on ties), or -1
// for empty input.
func ArgMax(x []float32) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}
