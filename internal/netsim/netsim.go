// Package netsim models the network around the serving system: the
// client↔server link (the paper measures end-to-end latency from a remote
// Python client on a campus network) and the external services — web APIs,
// code-execution sandboxes, other agents' endpoints — that agentic
// workflows call into (§7.1).
//
// Pie's headline agentic gains come from co-locating these calls with
// generation instead of bouncing through the client, so round-trip costs
// are first-class objects here.
package netsim

import (
	"fmt"
	"strings"
	"time"

	"pie/internal/sim"
)

// Link is a symmetric network path with a fixed round-trip time.
type Link struct {
	Clock *sim.Clock
	RTT   time.Duration
}

// RoundTrip charges one full round trip around fn (request out, response
// back) and returns fn's result.
func RoundTrip[T any](l Link, fn func() T) T {
	l.Clock.Sleep(l.RTT / 2)
	v := fn()
	l.Clock.Sleep(l.RTT - l.RTT/2)
	return v
}

// Send charges a one-way trip.
func (l Link) Send() { l.Clock.Sleep(l.RTT / 2) }

// Service is an external endpoint with its own processing latency.
type Service struct {
	Name    string
	Latency time.Duration
	Handler func(req string) string
}

// World is the registry of external services reachable over HTTP-style
// calls from inferlets and baseline clients.
type World struct {
	clock    *sim.Clock
	services map[string]*Service
	// DefaultLatency applies to unregistered hosts.
	DefaultLatency time.Duration
	Calls          int
}

// NewWorld creates an empty world.
func NewWorld(clock *sim.Clock) *World {
	return &World{
		clock:          clock,
		services:       make(map[string]*Service),
		DefaultLatency: 50 * time.Millisecond,
	}
}

// Register installs a service under a host name (e.g. "weather.api").
func (w *World) Register(s *Service) { w.services[s.Name] = s }

// Lookup fetches a registered service.
func (w *World) Lookup(host string) (*Service, bool) {
	s, ok := w.services[host]
	return s, ok
}

// host extracts the service name from a URL like "http://weather.api/q?x".
func host(url string) string {
	u := strings.TrimPrefix(strings.TrimPrefix(url, "https://"), "http://")
	if i := strings.IndexByte(u, '/'); i >= 0 {
		u = u[:i]
	}
	return u
}

// Call performs an asynchronous request against url: the returned future
// resolves after the service's latency with its response. Fire-and-forget
// callers simply drop the future (§7.2 optimization #2).
func (w *World) Call(url, body string) *sim.Future[string] {
	w.Calls++
	f := sim.NewFuture[string](w.clock)
	h := host(url)
	svc, ok := w.services[h]
	lat := w.DefaultLatency
	if ok {
		lat = svc.Latency
	}
	w.clock.GoDaemon("netsim:"+h, func() {
		w.clock.Sleep(lat)
		if !ok {
			f.Resolve(fmt.Sprintf(`{"host":%q,"status":200,"body":"ok"}`, h))
			return
		}
		f.Resolve(svc.Handler(body))
	})
	return f
}
