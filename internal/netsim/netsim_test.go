package netsim

import (
	"testing"
	"time"

	"pie/internal/sim"
)

func TestRoundTripChargesRTT(t *testing.T) {
	clock := sim.NewClock()
	var took time.Duration
	clock.Go("client", func() {
		l := Link{Clock: clock, RTT: 20 * time.Millisecond}
		v := RoundTrip(l, func() int { return 7 })
		if v != 7 {
			t.Errorf("RoundTrip returned %d", v)
		}
		took = clock.Now()
	})
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if took != 20*time.Millisecond {
		t.Fatalf("round trip took %v, want 20ms", took)
	}
}

func TestServiceLatencyAndHandler(t *testing.T) {
	clock := sim.NewClock()
	w := NewWorld(clock)
	w.Register(&Service{Name: "api.test", Latency: 30 * time.Millisecond,
		Handler: func(req string) string { return "echo:" + req }})
	var resp string
	var took time.Duration
	clock.Go("client", func() {
		resp, _ = w.Call("http://api.test/path?x=1", "hi").Get()
		took = clock.Now()
	})
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if resp != "echo:hi" {
		t.Fatalf("resp %q", resp)
	}
	if took != 30*time.Millisecond {
		t.Fatalf("latency %v, want 30ms", took)
	}
	if w.Calls != 1 {
		t.Fatalf("calls %d", w.Calls)
	}
}

func TestUnknownHostDefaultLatency(t *testing.T) {
	clock := sim.NewClock()
	w := NewWorld(clock)
	w.DefaultLatency = 15 * time.Millisecond
	var took time.Duration
	clock.Go("client", func() {
		resp, err := w.Call("https://nowhere.example/x", "").Get()
		if err != nil || resp == "" {
			t.Errorf("default handler: %q, %v", resp, err)
		}
		took = clock.Now()
	})
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if took != 15*time.Millisecond {
		t.Fatalf("latency %v", took)
	}
}

func TestFireAndForget(t *testing.T) {
	clock := sim.NewClock()
	w := NewWorld(clock)
	w.Register(&Service{Name: "slow.api", Latency: time.Second,
		Handler: func(string) string { return "late" }})
	var took time.Duration
	clock.Go("client", func() {
		_ = w.Call("http://slow.api/", "") // dropped future
		took = clock.Now()
	})
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if took != 0 {
		t.Fatalf("fire-and-forget blocked the caller for %v", took)
	}
}

func TestHostParsing(t *testing.T) {
	for url, want := range map[string]string{
		"http://a.b/c":    "a.b",
		"https://x.y":     "x.y",
		"plain.host/path": "plain.host",
		"bare":            "bare",
	} {
		if got := host(url); got != want {
			t.Errorf("host(%q) = %q, want %q", url, got, want)
		}
	}
}
