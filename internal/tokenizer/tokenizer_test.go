package tokenizer

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTripBasic(t *testing.T) {
	tok := New()
	cases := []string{
		"",
		"Hello, world",
		"the quick brown fox jumps over the lazy dog",
		"Thought: I should call the search function.\nAction: search(\"weather\")",
		`{"key": "value", "n": 42}`,
		"unicode: héllo ✓ 日本語",
		"\x00\x01\xff binary bytes",
		strings.Repeat("a", 1000),
	}
	for _, s := range cases {
		ids := tok.Encode(s)
		if got := tok.Decode(ids); got != s {
			t.Errorf("roundtrip failed:\n in: %q\nout: %q", s, got)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	tok := New()
	f := func(b []byte) bool {
		s := string(b)
		return tok.Decode(tok.Encode(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyPrefersLongestMatch(t *testing.T) {
	tok := New()
	// " the" exists as a single lexicon token; encoding "a the" must not
	// split it into " "+"the".
	ids := tok.Encode(" the")
	if len(ids) != 1 {
		t.Fatalf("Encode(\" the\") = %d tokens, want 1", len(ids))
	}
}

func TestCompressionOnEnglish(t *testing.T) {
	tok := New()
	s := "the people of the world want to know what the answer is and how to find it"
	ids := tok.Encode(s)
	if len(ids) >= len(s) {
		t.Fatalf("no compression: %d tokens for %d bytes", len(ids), len(s))
	}
	if ratio := float64(len(s)) / float64(len(ids)); ratio < 2 {
		t.Fatalf("compression ratio %.2f, want >= 2 on common English", ratio)
	}
}

func TestByteFallback(t *testing.T) {
	tok := New()
	ids := tok.Encode("\x07")
	if len(ids) != 1 || ids[0] != ByteBase+7 {
		t.Fatalf("Encode(0x07) = %v, want [%d]", ids, ByteBase+7)
	}
}

func TestVocabConsistency(t *testing.T) {
	tok := New()
	v := tok.Vocab()
	if len(v) != tok.VocabSize() {
		t.Fatalf("Vocab len %d != VocabSize %d", len(v), tok.VocabSize())
	}
	for id, b := range v {
		if got := tok.TokenBytes(id); string(got) != string(b) {
			t.Fatalf("TokenBytes(%d) mismatch", id)
		}
	}
	// All lexicon entries must decode to themselves.
	for id := lexBase; id < tok.VocabSize(); id++ {
		if len(v[id]) == 0 {
			t.Fatalf("empty lexicon token %d", id)
		}
	}
}

func TestSpecials(t *testing.T) {
	tok := New()
	for _, id := range []int{PAD, BOS, EOS} {
		if !tok.IsSpecial(id) {
			t.Errorf("IsSpecial(%d) = false", id)
		}
		if b := tok.TokenBytes(id); len(b) != 0 {
			t.Errorf("special %d decodes to %q", id, b)
		}
	}
	if tok.IsSpecial(ByteBase) {
		t.Error("byte token marked special")
	}
}

func TestDeterministicVocabAssignment(t *testing.T) {
	a, b := New(), New()
	if a.VocabSize() != b.VocabSize() {
		t.Fatal("vocab size differs across constructions")
	}
	s := "stable ids are load-bearing for cached KV"
	ia, ib := a.Encode(s), b.Encode(s)
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatal("token ids differ across constructions")
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	tok := New()
	s := strings.Repeat("the people of the world want to know the answer ", 20)
	b.SetBytes(int64(len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok.Encode(s)
	}
}
