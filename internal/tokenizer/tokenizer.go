// Package tokenizer implements a deterministic, self-contained tokenizer
// with the structure of modern LLM tokenizers: a lexicon of common words
// and subwords (with leading-space variants, BPE-style) over a byte-level
// fallback alphabet, so any byte string round-trips exactly.
//
// The serving system treats tokenization as an inference-layer service
// (the Tokenize trait, §4.2 of the paper); this package is the model-side
// implementation behind it.
package tokenizer

import "sort"

// Special token ids.
const (
	PAD = 0
	BOS = 1
	EOS = 2
	// ByteBase is the id of byte 0x00; byte b is token ByteBase+b.
	ByteBase = 4
	lexBase  = ByteBase + 256
)

// Tokenizer converts between byte strings and token ids via greedy
// longest-match over its lexicon with byte fallback.
type Tokenizer struct {
	lexicon []string       // id - lexBase -> token text
	trie    map[string]int // exact string -> id, for all lexicon entries
	maxLen  int
	// first-byte index: candidate lexicon strings by first byte, longest first
	byFirst [256][]int
}

// New builds the standard tokenizer shared by all models in the catalog.
func New() *Tokenizer {
	t := &Tokenizer{trie: make(map[string]int)}
	seen := make(map[string]bool)
	add := func(s string) {
		if s == "" || seen[s] {
			return
		}
		seen[s] = true
		t.lexicon = append(t.lexicon, s)
	}
	for _, w := range baseWords {
		add(w)
		add(" " + w)
	}
	for _, s := range suffixes {
		add(s)
	}
	for _, p := range punct {
		add(p)
	}
	// Digit pairs make numeric workloads realistic without a huge lexicon.
	for a := '0'; a <= '9'; a++ {
		for b := '0'; b <= '9'; b++ {
			add(string(a) + string(b))
		}
	}
	sort.Strings(t.lexicon) // stable id assignment independent of list order
	for i, s := range t.lexicon {
		id := lexBase + i
		t.trie[s] = id
		if len(s) > t.maxLen {
			t.maxLen = len(s)
		}
		t.byFirst[s[0]] = append(t.byFirst[s[0]], id)
	}
	// Longest-first per first byte for greedy matching.
	for b := range t.byFirst {
		ids := t.byFirst[b]
		sort.Slice(ids, func(i, j int) bool {
			return len(t.lexicon[ids[i]-lexBase]) > len(t.lexicon[ids[j]-lexBase])
		})
	}
	return t
}

// VocabSize returns the total number of token ids.
func (t *Tokenizer) VocabSize() int { return lexBase + len(t.lexicon) }

// Encode tokenizes s greedily: at each position the longest lexicon match
// wins; otherwise a single byte token is emitted.
func (t *Tokenizer) Encode(s string) []int {
	var out []int
	for i := 0; i < len(s); {
		matched := false
		for _, id := range t.byFirst[s[i]] {
			lex := t.lexicon[id-lexBase]
			if len(lex) <= len(s)-i && s[i:i+len(lex)] == lex {
				out = append(out, id)
				i += len(lex)
				matched = true
				break
			}
		}
		if !matched {
			out = append(out, ByteBase+int(s[i]))
			i++
		}
	}
	return out
}

// Decode reconstructs the exact byte string for ids; special tokens decode
// to the empty string.
func (t *Tokenizer) Decode(ids []int) string {
	var b []byte
	for _, id := range ids {
		b = append(b, t.TokenBytes(id)...)
	}
	return string(b)
}

// TokenBytes returns the byte expansion of a single token id.
func (t *Tokenizer) TokenBytes(id int) []byte {
	switch {
	case id < ByteBase:
		return nil
	case id < lexBase:
		return []byte{byte(id - ByteBase)}
	case id-lexBase < len(t.lexicon):
		return []byte(t.lexicon[id-lexBase])
	}
	return nil
}

// Vocab returns the byte expansion of every token id, indexed by id
// (the get_vocabs API).
func (t *Tokenizer) Vocab() [][]byte {
	v := make([][]byte, t.VocabSize())
	for id := range v {
		v[id] = t.TokenBytes(id)
	}
	return v
}

// IsSpecial reports whether id is a control token.
func (t *Tokenizer) IsSpecial(id int) bool { return id < ByteBase }

var baseWords = []string{
	"the", "of", "and", "a", "to", "in", "is", "you", "that", "it",
	"he", "was", "for", "on", "are", "as", "with", "his", "they", "I",
	"at", "be", "this", "have", "from", "or", "one", "had", "by", "word",
	"but", "not", "what", "all", "were", "we", "when", "your", "can", "said",
	"there", "use", "an", "each", "which", "she", "do", "how", "their", "if",
	"will", "up", "other", "about", "out", "many", "then", "them", "these", "so",
	"some", "her", "would", "make", "like", "him", "into", "time", "has", "look",
	"two", "more", "write", "go", "see", "number", "no", "way", "could", "people",
	"my", "than", "first", "water", "been", "call", "who", "oil", "its", "now",
	"find", "long", "down", "day", "did", "get", "come", "made", "may", "part",
	"over", "new", "sound", "take", "only", "little", "work", "know", "place", "year",
	"live", "me", "back", "give", "most", "very", "after", "thing", "our", "just",
	"name", "good", "sentence", "man", "think", "say", "great", "where", "help", "through",
	"much", "before", "line", "right", "too", "mean", "old", "any", "same", "tell",
	"boy", "follow", "came", "want", "show", "also", "around", "form", "three", "small",
	"set", "put", "end", "does", "another", "well", "large", "must", "big", "even",
	"such", "because", "turn", "here", "why", "ask", "went", "men", "read", "need",
	"land", "different", "home", "us", "move", "try", "kind", "hand", "picture", "again",
	"change", "off", "play", "spell", "air", "away", "animal", "house", "point", "page",
	"letter", "mother", "answer", "found", "study", "still", "learn", "should", "America", "world",
	"high", "every", "near", "add", "food", "between", "own", "below", "country", "plant",
	"last", "school", "father", "keep", "tree", "never", "start", "city", "earth", "eye",
	"light", "thought", "head", "under", "story", "saw", "left", "don't", "few", "while",
	"along", "might", "close", "something", "seem", "next", "hard", "open", "example", "begin",
	"life", "always", "those", "both", "paper", "together", "got", "group", "often", "run",
	"important", "until", "children", "side", "feet", "car", "mile", "night", "walk", "white",
	"sea", "began", "grow", "took", "river", "four", "carry", "state", "once", "book",
	"hear", "stop", "without", "second", "later", "miss", "idea", "enough", "eat", "face",
	"watch", "far", "Indian", "really", "almost", "let", "above", "girl", "sometimes", "mountain",
	"cut", "young", "talk", "soon", "list", "song", "being", "leave", "family", "it's",
	// Domain vocabulary: agents, tools, reasoning, code, JSON.
	"function", "call", "action", "observation", "thought", "final", "answer", "search",
	"query", "result", "tool", "agent", "code", "execute", "python", "javascript",
	"return", "value", "string", "true", "false", "null", "object", "array",
	"api", "request", "response", "http", "error", "status", "data", "key",
	"model", "token", "prompt", "generate", "context", "cache", "page", "memory",
	"solve", "step", "reason", "branch", "merge", "plan", "summary", "document",
	"weather", "temperature", "location", "calculate", "lookup", "fetch", "send",
	"message", "user", "system", "assistant", "input", "output", "args", "spec",
}

var suffixes = []string{
	"ing", "ed", "er", "es", "ly", "tion", "ment", "ness", "able", "est",
	" th", "re", "st", "nd", "ck", "ll", "ou", "ea", "ar", "or",
}

var punct = []string{
	" ", "  ", "\n", "\n\n", "\t", ". ", ", ", ": ", "; ", "! ",
	"? ", "'", "\"", "(", ")", "[", "]", "{", "}", "{\"",
	"\"}", "\":", ",\"", ".", ",", ":", ";", "->", "=>", "==",
	"</", "/>", "<|", "|>", "```", "##", "--", "...", "$", "%",
}
