// Package benchfmt defines the BENCH_sim.json document shared by
// cmd/pie-bench (writer) and cmd/bench-gate (reader). Keeping one schema
// means a field rename can't silently desynchronize the two commands and
// disable gate coverage.
package benchfmt

// Experiment is one experiment's entry in the report.
type Experiment struct {
	ID           string             `json:"id"`
	WallMS       float64            `json:"wall_ms"`
	Events       uint64             `json:"events"`
	EventsPerSec float64            `json:"events_per_sec"`
	Headline     map[string]float64 `json:"headline,omitempty"`
}

// Report is the top-level document. Headline metrics and event counts are
// virtual-time-deterministic (same seed + scale ⇒ identical values);
// wall-time fields depend on the machine, with GoMaxProcs recording the
// machine class they were measured under.
type Report struct {
	Seed         uint64       `json:"seed"`
	Quick        bool         `json:"quick"`
	GoMaxProcs   int          `json:"gomaxprocs"`
	TotalWallMS  float64      `json:"total_wall_ms"`
	TotalEvents  uint64       `json:"total_events"`
	EventsPerSec float64      `json:"events_per_sec"`
	Experiments  []Experiment `json:"experiments"`
}
