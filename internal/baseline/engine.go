// Package baseline simulates the monolithic serving systems Pie is
// evaluated against: vLLM (continuous batching + block-hash automatic
// prefix caching + n-gram speculative decoding + beam search), SGLang
// (RadixAttention prefix tree + server-side fork/join), LMQL (per-step
// constraint interpretation), and StreamingLLM (single-stream sink
// attention). All of them run on the same internal/gpu device and cost
// model as Pie's inference layer, so comparisons isolate architecture —
// matching the paper's methodology (§7: "all use the FlashInfer backend").
//
// The defining architectural property reproduced here is the monolithic
// generation loop: requests are prompts; the engine owns KV management and
// the predict-then-sample step; anything else (tool calls, tree search,
// cache strategy) must happen client-side through new requests.
package baseline

import (
	"time"

	"pie/internal/gpu"
	"pie/internal/sim"
)

// Kind names a baseline personality.
type Kind string

// The simulated systems.
const (
	VLLM         Kind = "vllm"
	SGLang       Kind = "sglang"
	LMQL         Kind = "lmql"
	StreamingLLM Kind = "streamingllm"
)

// Config parameterizes a baseline engine.
type Config struct {
	Kind       Kind
	ModelLabel string // "1B", "3B", "8B"
	PageSize   int    // KV block size (same 16 as Pie for parity)
	MaxBatch   int    // max sequences advanced per step

	// PrefixCache selects reuse policy: "" (none), "hash" (vLLM),
	// "radix" (SGLang).
	PrefixCache string

	// PerStepOverhead models per-iteration engine work outside kernels
	// (LMQL's query interpretation is large; others are small).
	PerStepOverhead time.Duration

	// PerRequestOverhead is the server front-end cost per request: HTTP
	// handling, tokenizing the (re-sent, full) context, detokenizing the
	// response, queue re-entry. Pie avoids this entirely for intra-agent
	// steps because the workflow never leaves the serving process.
	PerRequestOverhead time.Duration

	// GrammarStepCost is added per step for guided-decoding requests
	// (logit masking on the hot path).
	GrammarStepCost time.Duration

	// SingleStream serializes requests entirely (StreamingLLM).
	SingleStream bool
	// KernelFactor scales kernel costs (StreamingLLM's eager kernels).
	KernelFactor float64
	// SinkWindow bounds attended context (StreamingLLM): sink+window
	// tokens; 0 means unbounded.
	SinkWindow int

	// SpecDecode enables engine-wide n-gram speculative decoding.
	SpecDecode   bool
	SpecDraftLen int
	// SpecAcceptRate is the scripted acceptance probability (see
	// DESIGN.md: trained-model copy behaviour is simulated).
	SpecAcceptRate float64
}

func (c Config) withDefaults() Config {
	if c.ModelLabel == "" {
		c.ModelLabel = "1B"
	}
	if c.PageSize == 0 {
		c.PageSize = 16
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.KernelFactor == 0 {
		c.KernelFactor = 1
	}
	if c.SpecDraftLen == 0 {
		c.SpecDraftLen = 4
	}
	if c.SpecAcceptRate == 0 {
		c.SpecAcceptRate = 0.7
	}
	if c.PerRequestOverhead == 0 {
		c.PerRequestOverhead = 4 * time.Millisecond
	}
	switch c.Kind {
	case VLLM:
		if c.PrefixCache == "" {
			c.PrefixCache = "hash"
		}
		if c.PerStepOverhead == 0 {
			c.PerStepOverhead = 100 * time.Microsecond
		}
		if c.GrammarStepCost == 0 {
			c.GrammarStepCost = 900 * time.Microsecond // outlines-style FSM walk
		}
	case SGLang:
		if c.PrefixCache == "" {
			c.PrefixCache = "radix"
		}
		if c.PerStepOverhead == 0 {
			c.PerStepOverhead = 110 * time.Microsecond
		}
		if c.GrammarStepCost == 0 {
			c.GrammarStepCost = 250 * time.Microsecond // compressed-FSM jump-forward
		}
	case LMQL:
		c.PrefixCache = ""
		if c.MaxBatch > 8 {
			c.MaxBatch = 8
		}
		if c.PerStepOverhead == 0 {
			c.PerStepOverhead = 2 * time.Millisecond // Python query interpreter
		}
		if c.GrammarStepCost == 0 {
			c.GrammarStepCost = 1500 * time.Microsecond
		}
	case StreamingLLM:
		c.PrefixCache = ""
		c.SingleStream = true
		c.MaxBatch = 1
		if c.KernelFactor == 1 {
			c.KernelFactor = 1.5 // research-prototype eager kernels
		}
		if c.SinkWindow == 0 {
			c.SinkWindow = 4 + 1020
		}
		if c.PerStepOverhead == 0 {
			c.PerStepOverhead = 400 * time.Microsecond
		}
	}
	return c
}

// Request is one generation request as a monolithic engine sees it.
type Request struct {
	ID        int
	Prompt    []int
	MaxTokens int
	// Script supplies sampled tokens (teacher forcing); nil falls back to
	// deterministic pseudo-tokens.
	Script []int
	// Guided applies the per-step grammar cost (constrained decoding).
	Guided bool
	// BeamWidth > 1 runs beam search (width sequences per step).
	BeamWidth int

	// Results.
	Output     []int
	Arrived    time.Duration
	FirstToken time.Duration
	Finished   time.Duration
	Done       *sim.Signal

	// Scheduling state.
	blocks    []int32 // owned KV block ids
	cachedTok int     // prompt tokens served from prefix cache
	prefilled int     // prompt tokens whose KV exists (cached+computed)
	generated int
	beamExtra int // extra per-step sequences for beam width
}

// Engine is the shared monolithic core.
type Engine struct {
	clock  *sim.Clock
	cfg    Config
	spec   gpu.Spec
	device *gpu.Device

	waiting []*Request
	running []*Request
	wake    *sim.Mailbox[struct{}]
	nextID  int

	blockPool *blockPool
	cache     prefixCache
	rng       *sim.RNG

	// Stats.
	Steps        int
	Preemptions  int
	CacheHitToks int
	stopped      bool
}

// NewEngine starts a baseline engine on the clock.
func NewEngine(clock *sim.Clock, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	spec := gpu.SpecFor(cfg.ModelLabel)
	e := &Engine{
		clock:  clock,
		cfg:    cfg,
		spec:   spec,
		device: gpu.NewDevice(clock, "bl-"+string(cfg.Kind)),
		wake:   sim.NewMailbox[struct{}](clock),
		rng:    sim.NewRNG(0xBA5E ^ uint64(len(cfg.Kind))),
	}
	e.blockPool = newBlockPool(spec.KvPageCapacity(cfg.PageSize))
	switch cfg.PrefixCache {
	case "hash":
		e.cache = newHashCache(cfg.PageSize)
	case "radix":
		e.cache = newRadixCache(cfg.PageSize)
	default:
		e.cache = nullCache{}
	}
	clock.GoDaemon("baseline:"+string(cfg.Kind), e.loop)
	return e
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Submit enqueues a request; its Done signal fires at completion.
func (e *Engine) Submit(r *Request) *Request {
	e.nextID++
	r.ID = e.nextID
	r.Arrived = e.clock.Now()
	r.Done = sim.NewSignal(e.clock)
	if r.MaxTokens <= 0 {
		r.MaxTokens = 16
	}
	if r.BeamWidth > 1 {
		r.beamExtra = r.BeamWidth - 1
	}
	e.waiting = append(e.waiting, r)
	e.wake.Send(struct{}{})
	return r
}

// Generate is the blocking client-side call (over no link; see Client).
func (e *Engine) Generate(prompt []int, maxTokens int, script []int) []int {
	r := e.Submit(&Request{Prompt: prompt, MaxTokens: maxTokens, Script: script})
	_ = sim.Await(r.Done)
	return r.Output
}

// loop is the monolithic scheduler: admit, step, repeat — the fixed
// prefill–decode iteration of Fig. 1.
func (e *Engine) loop() {
	for !e.stopped {
		if len(e.running) == 0 && len(e.waiting) == 0 {
			if _, err := e.wake.Recv(); err != nil {
				return
			}
			continue
		}
		e.admit()
		if len(e.running) == 0 {
			// Admission starved (pool exhausted by waiting giants).
			e.clock.Sleep(time.Millisecond)
			continue
		}
		e.step()
	}
}

// admit moves waiting requests into the running batch while KV blocks
// last, consulting the prefix cache first.
func (e *Engine) admit() {
	for len(e.waiting) > 0 {
		if e.cfg.SingleStream && len(e.running) >= 1 {
			return
		}
		if len(e.running) >= e.cfg.MaxBatch {
			return
		}
		r := e.waiting[0]
		hitToks, hitBlocks := e.cache.match(r.Prompt)
		needTokens := (len(r.Prompt) - hitToks) + r.MaxTokens + 1
		needBlocks := (needTokens + e.cfg.PageSize - 1) / e.cfg.PageSize
		ids, ok := e.blockPool.alloc(needBlocks)
		if !ok {
			// vLLM-style preemption: evict cache entries, then give up
			// until a running request finishes.
			if e.cache.evict(e.blockPool, needBlocks) {
				continue
			}
			if len(e.running) == 0 {
				// Nothing running can ever free blocks: the request does
				// not fit at all. Abort it (engine OOM).
				e.Preemptions++
				e.waiting = e.waiting[1:]
				r.Finished = e.clock.Now()
				sim.Fire(r.Done)
				continue
			}
			return
		}
		for _, b := range hitBlocks {
			e.blockPool.retain(b)
		}
		r.blocks = append(append([]int32(nil), hitBlocks...), ids...)
		r.cachedTok = hitToks
		r.prefilled = hitToks
		e.CacheHitToks += hitToks
		e.waiting = e.waiting[1:]
		e.running = append(e.running, r)
	}
}

// step advances every running sequence by one iteration: chunked prefill
// for new requests plus one decode token for the rest, one fused kernel.
func (e *Engine) step() {
	e.Steps++
	const prefillChunk = 512
	prefillTokens, decodeSeqs, ctxTokens, seqs := 0, 0, 0, 0
	guided := 0
	for _, r := range e.running {
		width := 1 + r.beamExtra
		if r.prefilled < len(r.Prompt) {
			chunk := len(r.Prompt) - r.prefilled
			if chunk > prefillChunk {
				chunk = prefillChunk
			}
			prefillTokens += chunk
			ctxTokens += e.attended(r.prefilled)
			seqs++
		} else {
			decodeSeqs += width * e.specWidth(r)
			ctxTokens += width * e.attended(len(r.Prompt)+r.generated)
			seqs += width
		}
		if r.Guided {
			guided++
		}
	}
	cost := e.spec.ForwardCost(decodeSeqs, prefillTokens, ctxTokens) + e.spec.FusedSampleCost(seqs)
	cost = time.Duration(float64(cost) * e.cfg.KernelFactor)
	cost += e.cfg.PerStepOverhead
	cost += time.Duration(guided) * e.cfg.GrammarStepCost
	_ = sim.Await(e.device.Submit("step", cost))

	// Advance sequences.
	var still []*Request
	for _, r := range e.running {
		if r.prefilled < len(r.Prompt) {
			r.prefilled += prefillChunk
			if r.prefilled >= len(r.Prompt) {
				r.prefilled = len(r.Prompt)
				// The prefix is now reusable by concurrent requests
				// (SGLang shares in-flight prefixes via the radix tree).
				e.cache.insert(r.Prompt, r.blocks, e.blockPool)
			}
			still = append(still, r)
			continue
		}
		produced := e.specWidth(r)
		for k := 0; k < produced && r.generated < r.MaxTokens; k++ {
			r.Output = append(r.Output, e.nextToken(r))
			r.generated++
			if r.generated == 1 {
				r.FirstToken = e.clock.Now()
			}
		}
		if r.generated >= r.MaxTokens {
			e.finish(r)
			continue
		}
		still = append(still, r)
	}
	e.running = still
}

// attended returns context size under the engine's attention policy.
func (e *Engine) attended(ctx int) int {
	if e.cfg.SinkWindow > 0 && ctx > e.cfg.SinkWindow {
		return e.cfg.SinkWindow
	}
	return ctx
}

// specWidth returns tokens produced per step for a sequence: 1 normally,
// more under accepted speculative drafts.
func (e *Engine) specWidth(r *Request) int {
	if !e.cfg.SpecDecode {
		return 1
	}
	accepted := 1
	for i := 0; i < e.cfg.SpecDraftLen; i++ {
		if e.rng.Float64() < e.cfg.SpecAcceptRate {
			accepted++
		} else {
			break
		}
	}
	return accepted
}

func (e *Engine) nextToken(r *Request) int {
	if r.generated < len(r.Script) {
		return r.Script[r.generated]
	}
	// Deterministic filler tokens (match Pie's timing-mode convention).
	x := uint64(r.ID)*0x9E3779B97F4A7C15 ^ uint64(r.generated)*0xD6E8FEB86659FD93
	x ^= x >> 31
	return 4 + int(x%2000)
}

// finish releases or caches the request's blocks and signals completion.
// The full sequence (prompt + output) is inserted so follow-up requests
// that extend this conversation re-use its KV — the mechanism that lets
// baselines partially mitigate agent re-prefills (§2.2).
func (e *Engine) finish(r *Request) {
	r.Finished = e.clock.Now()
	seq := append(append([]int(nil), r.Prompt...), r.Output...)
	e.cache.insert(seq, r.blocks, e.blockPool)
	for _, b := range r.blocks {
		e.blockPool.release(b)
	}
	r.blocks = nil
	sim.Fire(r.Done)
}

// Stop ends the engine loop once idle.
func (e *Engine) Stop() {
	e.stopped = true
	e.wake.Close()
}

// BusyTime reports cumulative GPU time.
func (e *Engine) BusyTime() time.Duration { return e.device.BusyTime() }
