package baseline

// KV block accounting and the two prefix-reuse policies the paper's
// baselines implement: vLLM's block-hash automatic prefix caching and
// SGLang's RadixAttention token trie. Both are refcounted over the shared
// block pool and evict least-recently-used entries under pressure.

type blockPool struct {
	capacity int
	next     int32
	free     []int32
	refs     map[int32]int
}

func newBlockPool(capacity int) *blockPool {
	return &blockPool{capacity: capacity, refs: make(map[int32]int)}
}

func (p *blockPool) available() int { return len(p.free) + (p.capacity - int(p.next)) }
func (p *blockPool) inUse() int     { return int(p.next) - len(p.free) }

func (p *blockPool) alloc(n int) ([]int32, bool) {
	if p.available() < n {
		return nil, false
	}
	out := make([]int32, 0, n)
	for len(out) < n && len(p.free) > 0 {
		id := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		out = append(out, id)
	}
	for len(out) < n {
		out = append(out, p.next)
		p.next++
	}
	for _, id := range out {
		p.refs[id] = 1
	}
	return out, true
}

func (p *blockPool) retain(id int32) { p.refs[id]++ }

func (p *blockPool) release(id int32) {
	r := p.refs[id]
	if r <= 1 {
		delete(p.refs, id)
		p.free = append(p.free, id)
		return
	}
	p.refs[id] = r - 1
}

// prefixCache abstracts the reuse policy.
type prefixCache interface {
	// match returns how many leading prompt tokens are cached and the
	// blocks holding them (caller must retain them).
	match(prompt []int) (tokens int, blocks []int32)
	// insert registers a finished request's blocks for future reuse,
	// retaining them in the pool.
	insert(prompt []int, blocks []int32, pool *blockPool)
	// evict drops LRU entries until `need` blocks could be allocated; it
	// reports whether anything was freed.
	evict(pool *blockPool, need int) bool
}

type nullCache struct{}

func (nullCache) match([]int) (int, []int32)        { return 0, nil }
func (nullCache) insert([]int, []int32, *blockPool) {}
func (nullCache) evict(*blockPool, int) bool        { return false }

// hashCache is vLLM-style: block i of a prompt is keyed by the rolling
// hash of tokens [0, (i+1)*pageSize).
type hashCache struct {
	pageSize int
	entries  map[uint64]*hashEntry
	tick     int
}

type hashEntry struct {
	block    int32
	lastUsed int
}

func newHashCache(pageSize int) *hashCache {
	return &hashCache{pageSize: pageSize, entries: make(map[uint64]*hashEntry)}
}

func chainHash(prompt []int, upto int) uint64 {
	var h uint64 = 14695981039346656037
	for _, t := range prompt[:upto] {
		h = (h ^ uint64(t)) * 1099511628211
	}
	return h
}

func (c *hashCache) match(prompt []int) (int, []int32) {
	c.tick++
	var blocks []int32
	full := len(prompt) / c.pageSize
	for i := 0; i < full; i++ {
		e, ok := c.entries[chainHash(prompt, (i+1)*c.pageSize)]
		if !ok {
			break
		}
		e.lastUsed = c.tick
		blocks = append(blocks, e.block)
	}
	return len(blocks) * c.pageSize, blocks
}

func (c *hashCache) insert(prompt []int, blocks []int32, pool *blockPool) {
	c.tick++
	full := len(prompt) / c.pageSize
	for i := 0; i < full && i < len(blocks); i++ {
		key := chainHash(prompt, (i+1)*c.pageSize)
		if _, dup := c.entries[key]; dup {
			continue
		}
		pool.retain(blocks[i])
		c.entries[key] = &hashEntry{block: blocks[i], lastUsed: c.tick}
	}
}

func (c *hashCache) evict(pool *blockPool, need int) bool {
	freed := false
	for pool.available() < need && len(c.entries) > 0 {
		var lruKey uint64
		lru := int(^uint(0) >> 1)
		for k, e := range c.entries {
			if e.lastUsed < lru {
				lru, lruKey = e.lastUsed, k
			}
		}
		pool.release(c.entries[lruKey].block)
		delete(c.entries, lruKey)
		freed = true
	}
	return freed
}

// radixCache is SGLang's RadixAttention: a token trie whose edges are
// block-sized token runs.
type radixCache struct {
	pageSize int
	root     *radixNode
	tick     int
	size     int
}

type radixNode struct {
	children map[uint64]*radixNode // keyed by block-token hash
	block    int32
	lastUsed int
}

func newRadixCache(pageSize int) *radixCache {
	return &radixCache{pageSize: pageSize, root: &radixNode{children: map[uint64]*radixNode{}}}
}

func blockKey(block []int) uint64 {
	var h uint64 = 1469598103934665603
	for _, t := range block {
		h = (h ^ uint64(t)) * 1099511628211
	}
	return h
}

func (c *radixCache) match(prompt []int) (int, []int32) {
	c.tick++
	node := c.root
	var blocks []int32
	for i := 0; (i+1)*c.pageSize <= len(prompt); i++ {
		key := blockKey(prompt[i*c.pageSize : (i+1)*c.pageSize])
		child, ok := node.children[key]
		if !ok {
			break
		}
		child.lastUsed = c.tick
		blocks = append(blocks, child.block)
		node = child
	}
	return len(blocks) * c.pageSize, blocks
}

func (c *radixCache) insert(prompt []int, blocks []int32, pool *blockPool) {
	c.tick++
	node := c.root
	for i := 0; (i+1)*c.pageSize <= len(prompt) && i < len(blocks); i++ {
		key := blockKey(prompt[i*c.pageSize : (i+1)*c.pageSize])
		child, ok := node.children[key]
		if !ok {
			pool.retain(blocks[i])
			child = &radixNode{children: map[uint64]*radixNode{}, block: blocks[i], lastUsed: c.tick}
			node.children[key] = child
			c.size++
		} else {
			child.lastUsed = c.tick
		}
		node = child
	}
}

// evict removes LRU leaves (RadixAttention evicts bottom-up).
func (c *radixCache) evict(pool *blockPool, need int) bool {
	freed := false
	for pool.available() < need && c.size > 0 {
		parent, key := c.lruLeaf(c.root)
		if parent == nil {
			break
		}
		pool.release(parent.children[key].block)
		delete(parent.children, key)
		c.size--
		freed = true
	}
	return freed
}

// lruLeaf finds the least-recently-used leaf edge.
func (c *radixCache) lruLeaf(n *radixNode) (parent *radixNode, key uint64) {
	best := int(^uint(0) >> 1)
	var walk func(node *radixNode)
	walk = func(node *radixNode) {
		for k, child := range node.children {
			if len(child.children) == 0 {
				if child.lastUsed < best {
					best, parent, key = child.lastUsed, node, k
				}
				continue
			}
			walk(child)
		}
	}
	walk(n)
	return parent, key
}
