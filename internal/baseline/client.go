package baseline

import (
	"time"

	"pie/internal/netsim"
	"pie/internal/sim"
)

// Client is the remote application script of Fig. 5 (left): all agent
// logic lives here, and every LLM interaction pays a network round trip
// to the engine plus whatever re-prefill the engine's cache cannot avoid.
type Client struct {
	Clock  *sim.Clock
	Engine *Engine
	Link   netsim.Link
}

// NewClient wires a client to an engine over a link with the given RTT.
func NewClient(clock *sim.Clock, e *Engine, rtt time.Duration) *Client {
	return &Client{Clock: clock, Engine: e, Link: netsim.Link{Clock: clock, RTT: rtt}}
}

// Generate performs one request round trip (front-end handling included).
func (c *Client) Generate(prompt []int, maxTokens int, script []int) []int {
	return netsim.RoundTrip(c.Link, func() []int {
		c.Clock.Sleep(c.Engine.Config().PerRequestOverhead)
		return c.Engine.Generate(prompt, maxTokens, script)
	})
}

// GenerateOpts performs a request with engine-side features toggled.
func (c *Client) GenerateOpts(r *Request) []int {
	return netsim.RoundTrip(c.Link, func() []int {
		c.Clock.Sleep(c.Engine.Config().PerRequestOverhead)
		req := c.Engine.Submit(r)
		_ = sim.Await(req.Done)
		return req.Output
	})
}

// GenerateFork is SGLang-style server-side fork/join: n continuations of
// one shared prompt. The first request populates the radix tree before
// the siblings are admitted, so they reuse the prefix KV.
func (c *Client) GenerateFork(prompt []int, n, maxTokens int, scripts [][]int) [][]int {
	return netsim.RoundTrip(c.Link, func() [][]int {
		c.Clock.Sleep(c.Engine.Config().PerRequestOverhead)
		reqs := make([]*Request, n)
		script := func(i int) []int {
			if i < len(scripts) {
				return scripts[i]
			}
			return nil
		}
		reqs[0] = c.Engine.Submit(&Request{Prompt: prompt, MaxTokens: maxTokens, Script: script(0)})
		if n > 1 && c.Engine.cfg.PrefixCache != "" {
			// Wait for the shared prefix to land in the cache so the
			// siblings hit it (RadixAttention's in-flight sharing).
			for {
				hit, _ := c.Engine.cache.match(prompt)
				if hit >= len(prompt)/c.Engine.cfg.PageSize*c.Engine.cfg.PageSize {
					break
				}
				if reqs[0].Done.Done() {
					break
				}
				c.Clock.Sleep(2 * time.Millisecond)
			}
		}
		for i := 1; i < n; i++ {
			reqs[i] = c.Engine.Submit(&Request{Prompt: prompt, MaxTokens: maxTokens, Script: script(i)})
		}
		out := make([][]int, n)
		for i, r := range reqs {
			_ = sim.Await(r.Done)
			out[i] = r.Output
		}
		return out
	})
}
