package baseline

import (
	"testing"
	"time"

	"pie/internal/sim"
)

func prompt(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 100 + i%50
	}
	return out
}

func TestEngineCompletesRequest(t *testing.T) {
	clock := sim.NewClock()
	e := NewEngine(clock, Config{Kind: VLLM, ModelLabel: "1B"})
	var out []int
	var took time.Duration
	clock.Go("client", func() {
		t0 := clock.Now()
		out = e.Generate(prompt(64), 16, nil)
		took = clock.Now() - t0
	})
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if len(out) != 16 {
		t.Fatalf("generated %d tokens, want 16", len(out))
	}
	if took <= 0 {
		t.Fatal("no virtual time charged")
	}
	// Roughly: prefill step + 16 decode steps at 1B ≈ 16 × ~11ms.
	if took < 50*time.Millisecond || took > 2*time.Second {
		t.Fatalf("implausible single-request latency %v", took)
	}
}

func TestScriptedTokens(t *testing.T) {
	clock := sim.NewClock()
	e := NewEngine(clock, Config{Kind: VLLM})
	script := []int{9, 8, 7, 6}
	var out []int
	clock.Go("client", func() { out = e.Generate(prompt(8), 4, script) })
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	for i, tok := range out {
		if tok != script[i] {
			t.Fatalf("output %v != script %v", out, script)
		}
	}
}

func TestContinuousBatchingThroughput(t *testing.T) {
	run := func(n int) time.Duration {
		clock := sim.NewClock()
		e := NewEngine(clock, Config{Kind: VLLM, ModelLabel: "1B"})
		g := sim.NewGroup(clock)
		for i := 0; i < n; i++ {
			g.Go("client", func() { e.Generate(prompt(64), 32, nil) })
		}
		clock.Go("main", g.Wait)
		if err := clock.Run(); err != nil {
			t.Fatal(err)
		}
		return clock.Now()
	}
	one := run(1)
	sixteen := run(16)
	if sixteen > 4*one {
		t.Fatalf("16 concurrent requests took %v vs %v for one: batching broken", sixteen, one)
	}
}

func TestPrefixCacheAvoidsReprefill(t *testing.T) {
	clock := sim.NewClock()
	e := NewEngine(clock, Config{Kind: VLLM, ModelLabel: "1B"})
	p := prompt(256)
	var first, second time.Duration
	clock.Go("client", func() {
		t0 := clock.Now()
		e.Generate(p, 4, nil)
		first = clock.Now() - t0
		t0 = clock.Now()
		e.Generate(p, 4, nil)
		second = clock.Now() - t0
	})
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if e.CacheHitToks == 0 {
		t.Fatal("no cache hits on identical prompt")
	}
	if second >= first {
		t.Fatalf("cached request (%v) not faster than cold (%v)", second, first)
	}
}

func TestRadixCacheSharesPrefix(t *testing.T) {
	clock := sim.NewClock()
	e := NewEngine(clock, Config{Kind: SGLang, ModelLabel: "1B"})
	shared := prompt(128)
	a := append(append([]int(nil), shared...), 1, 2, 3)
	b := append(append([]int(nil), shared...), 4, 5, 6)
	clock.Go("client", func() {
		e.Generate(a, 4, nil)
		e.Generate(b, 4, nil)
	})
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if e.CacheHitToks < 64 {
		t.Fatalf("radix cache hit only %d tokens", e.CacheHitToks)
	}
}

func TestForkSharesPrefill(t *testing.T) {
	clock := sim.NewClock()
	e := NewEngine(clock, Config{Kind: SGLang, ModelLabel: "1B"})
	c := NewClient(clock, e, 8*time.Millisecond)
	var outs [][]int
	clock.Go("client", func() {
		outs = c.GenerateFork(prompt(128), 4, 8, nil)
	})
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if len(outs) != 4 {
		t.Fatalf("%d outputs", len(outs))
	}
	for _, o := range outs {
		if len(o) != 8 {
			t.Fatalf("branch generated %d tokens", len(o))
		}
	}
	if e.CacheHitToks < 3*112 {
		t.Fatalf("forks re-prefilled: only %d cached tokens hit", e.CacheHitToks)
	}
}

func TestSpeculativeDecodingFaster(t *testing.T) {
	run := func(spec bool) time.Duration {
		clock := sim.NewClock()
		e := NewEngine(clock, Config{Kind: VLLM, ModelLabel: "1B", SpecDecode: spec})
		clock.Go("client", func() { e.Generate(prompt(64), 64, nil) })
		if err := clock.Run(); err != nil {
			t.Fatal(err)
		}
		return clock.Now()
	}
	plain := run(false)
	spec := run(true)
	if spec >= plain {
		t.Fatalf("speculative decoding (%v) not faster than plain (%v)", spec, plain)
	}
}

func TestLMQLSlowerPerStep(t *testing.T) {
	run := func(kind Kind) time.Duration {
		clock := sim.NewClock()
		e := NewEngine(clock, Config{Kind: kind, ModelLabel: "1B"})
		clock.Go("client", func() {
			e.Submit(&Request{Prompt: prompt(32), MaxTokens: 32, Guided: true})
			r := e.Submit(&Request{Prompt: prompt(32), MaxTokens: 32, Guided: true})
			_ = sim.Await(r.Done)
		})
		if err := clock.Run(); err != nil {
			t.Fatal(err)
		}
		return clock.Now()
	}
	if vllm, lmql := run(VLLM), run(LMQL); lmql <= vllm {
		t.Fatalf("LMQL (%v) should be slower than vLLM (%v) on guided decoding", lmql, vllm)
	}
}

func TestStreamingLLMSingleStream(t *testing.T) {
	clock := sim.NewClock()
	e := NewEngine(clock, Config{Kind: StreamingLLM, ModelLabel: "1B"})
	g := sim.NewGroup(clock)
	var ends [2]time.Duration
	for i := 0; i < 2; i++ {
		i := i
		g.Go("client", func() {
			e.Generate(prompt(32), 16, nil)
			ends[i] = clock.Now()
		})
	}
	clock.Go("main", g.Wait)
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	// Strictly serialized: the second finishes roughly 2x after the first.
	if ends[1] < ends[0]*3/2 {
		t.Fatalf("requests overlapped on a single-stream engine: %v then %v", ends[0], ends[1])
	}
}

func TestSinkWindowBoundsContext(t *testing.T) {
	clock := sim.NewClock()
	cfg := Config{Kind: StreamingLLM, ModelLabel: "1B"}
	e := NewEngine(clock, cfg)
	if e.attended(10000) != e.Config().SinkWindow {
		t.Fatalf("attended(10000) = %d, want %d", e.attended(10000), e.Config().SinkWindow)
	}
	if e.attended(10) != 10 {
		t.Fatal("short context clipped")
	}
}

func TestBeamWidthCostsMore(t *testing.T) {
	run := func(width int) time.Duration {
		clock := sim.NewClock()
		e := NewEngine(clock, Config{Kind: VLLM, ModelLabel: "1B"})
		clock.Go("client", func() {
			r := e.Submit(&Request{Prompt: prompt(32), MaxTokens: 24, BeamWidth: width})
			_ = sim.Await(r.Done)
		})
		if err := clock.Run(); err != nil {
			t.Fatal(err)
		}
		return clock.Now()
	}
	if w1, w3 := run(1), run(3); w3 <= w1 {
		t.Fatalf("beam width 3 (%v) not costlier than width 1 (%v)", w3, w1)
	}
}

func TestPoolExhaustionAbortsOversizedRequest(t *testing.T) {
	clock := sim.NewClock()
	e := NewEngine(clock, Config{Kind: VLLM, ModelLabel: "8B"})
	capBlocks := e.blockPool.capacity
	huge := prompt((capBlocks + 10) * e.cfg.PageSize)
	var out []int
	clock.Go("client", func() { out = e.Generate(huge, 8, nil) })
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("oversized request produced output %v", out)
	}
	if e.blockPool.inUse() != 0 {
		t.Fatalf("blocks leaked: %d", e.blockPool.inUse())
	}
}

func TestBlockPoolRefcounting(t *testing.T) {
	p := newBlockPool(8)
	ids, ok := p.alloc(4)
	if !ok {
		t.Fatal("alloc failed")
	}
	p.retain(ids[0])
	p.release(ids[0])
	if p.available() != 4 {
		t.Fatalf("available = %d, want 4 (one ref outstanding)", p.available())
	}
	p.release(ids[0])
	if p.available() != 5 {
		t.Fatalf("available = %d, want 5", p.available())
	}
}

func TestHashCacheEviction(t *testing.T) {
	pool := newBlockPool(16)
	c := newHashCache(4)
	for i := 0; i < 3; i++ {
		pr := prompt(8)
		pr[0] = 1000 + i // distinct prompts
		blocks, _ := pool.alloc(2)
		c.insert(pr, blocks, pool)
		for _, b := range blocks {
			pool.release(b)
		}
	}
	if pool.available() != 10 {
		t.Fatalf("available = %d, want 10 (6 cached)", pool.available())
	}
	if !c.evict(pool, 14) {
		t.Fatal("evict freed nothing")
	}
	if pool.available() < 14 {
		t.Fatalf("after evict available = %d", pool.available())
	}
}
