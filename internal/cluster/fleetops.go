package cluster

// Fleet-controller hooks: the exported mutation surface the declarative
// fleet controller (internal/fleet) converges the cluster through. These
// wrap the scaler's private active-set transitions with the same
// invariants the autoscaler honors — activation only of healthy
// replicas, retirement only through the two-phase drain — so declarative
// convergence and reactive scaling cannot diverge on replica state.

func (c *Cluster) fleetOp(op string, r *Replica) {
	if c.OnFleetOp != nil {
		c.OnFleetOp(op, r)
	}
}

// Activate brings a replica into the serving set, or cancels its drain if
// one is in progress. It refuses unhealthy or crashed replicas. Reports
// whether the replica's state changed.
func (c *Cluster) Activate(r *Replica) bool {
	if r.health != HealthHealthy || r.crashed {
		return false
	}
	if r.active && !r.draining {
		return false
	}
	if r.active && r.draining {
		// Cancel the drain: the replica never left the serving set.
		r.draining = false
		c.fleetOp("activate", r)
		return true
	}
	c.markActive(r)
	c.fleetOp("activate", r)
	return true
}

// BeginDrain starts phase one of a two-phase drain: the replica stops
// receiving placements but keeps serving its in-flight sessions. Phase
// two (CompleteDrains) migrates its KV exports and retires it once idle.
// Reports whether a drain was started.
func (c *Cluster) BeginDrain(r *Replica) bool {
	if !r.active || r.draining {
		return false
	}
	r.draining = true
	c.DrainStart++
	c.fleetOp("drain", r)
	return true
}

// CompleteDrains runs phase two for every draining replica that has gone
// idle: migrate its KV exports to a serving peer over the modeled
// interconnect, then retire it. The fleet controller calls this each
// reconcile tick; the autoscaler calls the same path on its own ticks.
func (c *Cluster) CompleteDrains() { c.finishDrains() }

// Deactivate retires an idle replica immediately, without the drain
// phase. The fleet controller uses it only for initial alignment, before
// any traffic exists; a loaded replica is refused (use BeginDrain).
// Reports whether the replica was retired.
func (c *Cluster) Deactivate(r *Replica) bool {
	if !r.active || r.Ctl.Instances() > 0 || r.Ctl.OutstandingCalls() > 0 {
		return false
	}
	c.markInactive(r)
	c.fleetOp("deactivate", r)
	return true
}

// SetPlacement swaps the routing policy live (manifest hot reload).
func (c *Cluster) SetPlacement(p PlacementPolicy) { c.policy = p }

// Placement reports the routing policy in effect.
func (c *Cluster) Placement() PlacementPolicy { return c.policy }
