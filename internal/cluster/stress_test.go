package cluster_test

// Deterministic stress test for the cluster layer: 500+ launches across 8
// replicas while the autoscaler churns (bursty load with idle valleys
// forces repeated grow/drain cycles). Runs under -race in CI. Asserts the
// two contracts the cluster must never lose under load:
//
//   1. Placement safety: no inferlet is ever placed onto a draining (or
//      inactive) replica — observed at every placement via the OnPlace
//      hook, not inferred from aggregate stats.
//   2. Determinism: same-seed runs produce byte-identical stats documents
//      (per-replica counters, scaling trajectory, engine totals).

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"pie"
	"pie/internal/cluster"
	"pie/internal/metrics"
	"pie/internal/sim"
)

const (
	stressBursts   = 4
	stressPerBurst = 130 // 4 * 130 = 520 launches
	stressConc     = 64
	stressValley   = 400 * time.Millisecond // idle gap that lets drains complete
)

// stressDoc is the full result document the determinism check compares.
type stressDoc struct {
	Replicas   []metrics.ReplicaStats `json:"replicas"`
	ScaleUps   int                    `json:"scale_ups"`
	DrainStart int                    `json:"drain_start"`
	DrainDone  int                    `json:"drain_done"`
	Stats      pie.Stats              `json:"stats"`
}

func runClusterStress(t *testing.T, seed uint64) stressDoc {
	t.Helper()
	e := newEngine(t, pie.Config{
		Seed:      seed,
		Replicas:  1,
		Placement: pie.PlaceLeastLoaded,
		Autoscale: pie.AutoscaleConfig{
			Enabled: true, Min: 1, Max: 8,
			Interval: 5 * time.Millisecond,
			UpDepth:  6, DownDepth: 2,
		},
	})
	// Placement safety, checked at decision time. The hook runs in sim
	// processes only, so the counters need no lock even under -race.
	badPlacements := 0
	e.Cluster().OnPlace = func(r *cluster.Replica) {
		if !r.Active() || r.Draining() {
			badPlacements++
		}
	}
	err := e.RunClient(func() {
		for burst := 0; burst < stressBursts; burst++ {
			g := sim.NewGroup(e.Clock())
			queue := sim.NewMailbox[int](e.Clock())
			for i := 0; i < stressPerBurst; i++ {
				queue.Send(i)
			}
			for w := 0; w < stressConc; w++ {
				g.Go("client", func() {
					for {
						task, ok := queue.TryRecv()
						if !ok {
							return
						}
						// The token count varies with (seed, task): timing
						// mode ignores model weights, so the seed must
						// shape the workload itself for seed sensitivity.
						params := completionParams(2+int((seed+uint64(task))%3), "")
						h, err := e.Launch(pie.Spec("text_completion", params))
						if err != nil {
							t.Errorf("launch: %v", err)
							return
						}
						if err := h.Wait(); err != nil {
							t.Errorf("wait: %v", err)
							return
						}
					}
				})
			}
			g.Wait()
			// Idle valley: the autoscaler drains back before the next
			// burst regrows the active set.
			e.Sleep(stressValley)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if badPlacements != 0 {
		t.Fatalf("seed %d: %d placements landed on a draining or inactive replica", seed, badPlacements)
	}
	cl := e.Cluster()
	doc := stressDoc{
		Replicas:   e.ReplicaStats(),
		ScaleUps:   cl.ScaleUps,
		DrainStart: cl.DrainStart,
		DrainDone:  cl.DrainDone,
		Stats:      e.Stats(),
	}
	if doc.Stats.Launches != stressBursts*stressPerBurst {
		t.Fatalf("seed %d: %d launches, want %d", seed, doc.Stats.Launches, stressBursts*stressPerBurst)
	}
	// The bursty profile must actually churn the autoscaler: repeated
	// growth and completed drains, not one monotone ramp.
	if cl.ScaleUps < 2 || cl.DrainDone < 2 {
		t.Fatalf("seed %d: autoscaler did not churn: %d scale-ups, %d drains done", seed, cl.ScaleUps, cl.DrainDone)
	}
	if got := cl.ActiveReplicas(); got != 1 {
		t.Fatalf("seed %d: %d active replicas after final valley, want 1", seed, got)
	}
	return doc
}

func TestClusterStressChurnAndPlacementSafety(t *testing.T) {
	runClusterStress(t, 23)
}

// TestClusterStressDeterministic pins the byte-identical contract under
// full churn: two same-seed runs must agree on every counter.
func TestClusterStressDeterministic(t *testing.T) {
	marshal := func() string {
		blob, err := json.Marshal(runClusterStress(t, 23))
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}
	a, b := marshal(), marshal()
	if a != b {
		t.Fatalf("same-seed stress runs differ:\n%s\n%s", a, b)
	}
}

// TestClusterStressSeedSensitivity guards against the determinism check
// passing vacuously (e.g. stats that never vary): a different seed shapes
// a different workload and must produce a different document.
func TestClusterStressSeedSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	a, err := json.Marshal(runClusterStress(t, 23))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(runClusterStress(t, 24))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(b) {
		t.Fatal(fmt.Sprintf("different seeds produced identical documents: %s", a))
	}
}
