package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"pie/api"
)

// Service classes and SLO tracking: the cluster keeps a registry of
// api.ServiceClass contracts and a live tracker of per-class TTFT/ITL
// samples fed by every replica controller's latency observer. The scaler
// reads recent-window attainment to decide when capacity (not just queue
// depth) is failing the traffic; Stats surface cumulative attainment.
//
// The design follows llm-d's workload-variant-autoscaler: classes carry
// latency targets and a priority, replicas carry a cost rate, and scaling
// picks the cheapest variant that meets the strictest live target.

// latWindowSize bounds the recent-sample ring per class and per variant.
const latWindowSize = 256

// defaultAttainTarget is the recent-window attainment threshold admission
// uses to flag SLO risk when no scaler config supplies one.
const defaultAttainTarget = 0.95

// minAttainSamples is the minimum recent-window population before a class's
// attainment can flag SLO risk — a near-empty window is vacuously attaining,
// and one early outlier must not trigger fleet-wide degradation.
const minAttainSamples = 8

// latWindow is a fixed-capacity ring of the most recent latency samples.
type latWindow struct {
	buf [latWindowSize]time.Duration
	n   int // samples ever observed
}

func (w *latWindow) add(d time.Duration) {
	w.buf[w.n%latWindowSize] = d
	w.n++
}

func (w *latWindow) size() int {
	if w.n > latWindowSize {
		return latWindowSize
	}
	return w.n
}

// attainment is the fraction of windowed samples at or under target;
// vacuously 1 with no samples or no target.
func (w *latWindow) attainment(target time.Duration) float64 {
	n := w.size()
	if n == 0 || target <= 0 {
		return 1
	}
	good := 0
	for i := 0; i < n; i++ {
		if w.buf[i] <= target {
			good++
		}
	}
	return float64(good) / float64(n)
}

func (w *latWindow) mean() time.Duration {
	n := w.size()
	if n == 0 {
		return 0
	}
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += w.buf[i]
	}
	return sum / time.Duration(n)
}

// classTracker holds one class's live samples and cumulative counters.
type classTracker struct {
	class api.ServiceClass

	ttftRecent latWindow
	itlRecent  latWindow

	ttftGood, ttftTotal int
	itlGood, itlTotal   int
	degradations        int
	sheds               int
}

// variantTracker holds one hardware variant's live samples, regardless of
// class — the scaler's per-variant latency estimate for cost-aware picks.
type variantTracker struct {
	ttft latWindow
	itl  latWindow
}

// sloTracker aggregates class and variant observations. All access happens
// on the engine's virtual clock, so no locking is needed and same-seed
// runs observe identical sequences.
type sloTracker struct {
	classes  map[string]*classTracker
	order    []string // class names, sorted — deterministic iteration
	variants map[string]*variantTracker
	vorder   []string
	vspeed   map[string]float64 // variant -> kernel slowdown factor
}

func newSLOTracker(classes []api.ServiceClass) *sloTracker {
	t := &sloTracker{
		classes:  make(map[string]*classTracker, len(classes)),
		variants: make(map[string]*variantTracker),
		vspeed:   make(map[string]float64),
	}
	for _, cl := range classes {
		t.classes[cl.Name] = &classTracker{class: cl}
		t.order = append(t.order, cl.Name)
	}
	sort.Strings(t.order)
	return t
}

// noteVariant registers a hardware variant and its speed factor (1.0 =
// reference device) so estimates can scale across variants.
func (t *sloTracker) noteVariant(name string, speed float64) {
	if name == "" {
		name = "l4"
	}
	if speed < 1 {
		speed = 1
	}
	if _, ok := t.variants[name]; !ok {
		t.variants[name] = &variantTracker{}
		t.vorder = append(t.vorder, name)
		sort.Strings(t.vorder)
	}
	t.vspeed[name] = speed
}

// observe records one completed forward pass.
func (t *sloTracker) observe(variant, class string, ttft bool, d time.Duration) {
	if variant == "" {
		variant = "l4"
	}
	if v := t.variants[variant]; v != nil {
		if ttft {
			v.ttft.add(d)
		} else {
			v.itl.add(d)
		}
	}
	ct := t.classes[class]
	if ct == nil {
		return
	}
	if ttft {
		ct.ttftRecent.add(d)
		ct.ttftTotal++
		if ct.class.TTFTTarget <= 0 || d <= ct.class.TTFTTarget {
			ct.ttftGood++
		}
	} else {
		ct.itlRecent.add(d)
		ct.itlTotal++
		if ct.class.ITLTarget <= 0 || d <= ct.class.ITLTarget {
			ct.itlGood++
		}
	}
}

// worstRecent returns the class (sorted-name order breaks ties) whose
// recent-window attainment is furthest below target, or "" when every
// class with a latency objective is attaining.
func (t *sloTracker) worstRecent(target float64) (string, float64) {
	worst, worstAtt := "", 1.0
	for _, name := range t.order {
		ct := t.classes[name]
		if ct.ttftRecent.size()+ct.itlRecent.size() < minAttainSamples {
			continue
		}
		att := 1.0
		if ct.class.TTFTTarget > 0 {
			att = ct.ttftRecent.attainment(ct.class.TTFTTarget)
		}
		if ct.class.ITLTarget > 0 {
			if a := ct.itlRecent.attainment(ct.class.ITLTarget); a < att {
				att = a
			}
		}
		if att < target && att < worstAtt {
			worst, worstAtt = name, att
		}
	}
	return worst, worstAtt
}

// strictestTargets returns the tightest nonzero TTFT and ITL targets over
// all registered classes (zero = no class sets one).
func (t *sloTracker) strictestTargets() (ttft, itl time.Duration) {
	for _, name := range t.order {
		cl := t.classes[name].class
		if cl.TTFTTarget > 0 && (ttft == 0 || cl.TTFTTarget < ttft) {
			ttft = cl.TTFTTarget
		}
		if cl.ITLTarget > 0 && (itl == 0 || cl.ITLTarget < itl) {
			itl = cl.ITLTarget
		}
	}
	return ttft, itl
}

// estimate projects a variant's TTFT and ITL. A variant with live samples
// answers from its own window; one without scales the fastest sampled
// variant's window by the speed-factor ratio; with no samples anywhere the
// estimate is zero (optimistic — let the cheapest variant prove itself).
func (t *sloTracker) estimate(variant string, speed float64) (ttft, itl time.Duration) {
	if variant == "" {
		variant = "l4"
	}
	if speed < 1 {
		speed = 1
	}
	if v := t.variants[variant]; v != nil && (v.ttft.size() > 0 || v.itl.size() > 0) {
		return v.ttft.mean(), v.itl.mean()
	}
	// Reference: the sampled variant with the lowest speed factor.
	ref := ""
	for _, name := range t.vorder {
		v := t.variants[name]
		if v.ttft.size() == 0 && v.itl.size() == 0 {
			continue
		}
		if ref == "" || t.vspeed[name] < t.vspeed[ref] {
			ref = name
		}
	}
	if ref == "" {
		return 0, 0
	}
	scale := speed / t.vspeed[ref]
	rv := t.variants[ref]
	return time.Duration(float64(rv.ttft.mean()) * scale), time.Duration(float64(rv.itl.mean()) * scale)
}

// RegisterClasses installs the service-class registry and starts live
// TTFT/ITL sampling: every replica controller gets a latency observer that
// attributes completed forward passes to the launching instance's class
// and the replica's hardware variant. Call before Engine.Run.
func (c *Cluster) RegisterClasses(classes []api.ServiceClass) {
	if len(classes) == 0 {
		return
	}
	c.classes = make(map[string]api.ServiceClass, len(classes))
	for _, cl := range classes {
		c.classes[cl.Name] = cl
	}
	c.slo = newSLOTracker(classes)
	for _, r := range c.replicas {
		variant := r.Variant
		c.slo.noteVariant(variant, r.speedFactor())
		r.Ctl.SetLatencyObserver(func(class string, ttft bool, d time.Duration) {
			c.slo.observe(variant, class, ttft, d)
		})
	}
}

// Classes reports the registered service classes, sorted by name.
func (c *Cluster) Classes() []api.ServiceClass {
	if c.slo == nil {
		return nil
	}
	out := make([]api.ServiceClass, 0, len(c.slo.order))
	for _, name := range c.slo.order {
		out = append(out, c.classes[name])
	}
	return out
}

// ClassStat snapshots one service class's cumulative SLO attainment and
// degradation counters. The JSON shape is part of the pie-server /stats
// contract: same-seed runs marshal byte-identically.
type ClassStat struct {
	Class          string  `json:"class"`
	Priority       int     `json:"priority"`
	Degradable     bool    `json:"degradable"`
	TTFTTargetMS   float64 `json:"ttft_target_ms"`
	ITLTargetMS    float64 `json:"itl_target_ms"`
	TTFTSamples    int     `json:"ttft_samples"`
	ITLSamples     int     `json:"itl_samples"`
	TTFTAttainment float64 `json:"ttft_attainment"` // cumulative fraction within target
	ITLAttainment  float64 `json:"itl_attainment"`
	Degradations   int     `json:"degradations"` // launches admitted degraded
	Sheds          int     `json:"sheds"`        // launches hard-shed
}

// ClassStats snapshots every registered class in sorted-name order.
func (c *Cluster) ClassStats() []ClassStat {
	if c.slo == nil {
		return nil
	}
	out := make([]ClassStat, 0, len(c.slo.order))
	for _, name := range c.slo.order {
		ct := c.slo.classes[name]
		s := ClassStat{
			Class:        name,
			Priority:     ct.class.Priority,
			Degradable:   ct.class.Degradable,
			TTFTTargetMS: float64(ct.class.TTFTTarget) / float64(time.Millisecond),
			ITLTargetMS:  float64(ct.class.ITLTarget) / float64(time.Millisecond),
			TTFTSamples:  ct.ttftTotal,
			ITLSamples:   ct.itlTotal,
			Degradations: ct.degradations,
			Sheds:        ct.sheds,
		}
		s.TTFTAttainment = 1
		if ct.ttftTotal > 0 {
			s.TTFTAttainment = float64(ct.ttftGood) / float64(ct.ttftTotal)
		}
		s.ITLAttainment = 1
		if ct.itlTotal > 0 {
			s.ITLAttainment = float64(ct.itlGood) / float64(ct.itlTotal)
		}
		out = append(out, s)
	}
	return out
}

// ParseServiceClasses parses a compact class-registry spec (CLI flags):
// semicolon-separated classes, each "name:key=value,...", e.g.
//
//	interactive:ttft=250ms,itl=50ms,prio=10;batch:tps=40,prio=0,degradable
//
// Keys: ttft/itl (durations), tps (float), prio (int), degradable (flag or
// bool).
func ParseServiceClasses(spec string) ([]api.ServiceClass, error) {
	var out []api.ServiceClass
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, _ := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("cluster: service class with empty name in %q", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate service class %q", name)
		}
		seen[name] = true
		cl := api.ServiceClass{Name: name}
		for _, kv := range strings.Split(rest, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, hasVal := strings.Cut(kv, "=")
			var err error
			switch strings.TrimSpace(key) {
			case "ttft":
				cl.TTFTTarget, err = time.ParseDuration(val)
			case "itl":
				cl.ITLTarget, err = time.ParseDuration(val)
			case "tps":
				cl.MinTokensPerSec, err = strconv.ParseFloat(val, 64)
			case "prio", "priority":
				cl.Priority, err = strconv.Atoi(val)
			case "degradable":
				cl.Degradable = true
				if hasVal {
					cl.Degradable, err = strconv.ParseBool(val)
				}
			default:
				err = fmt.Errorf("unknown key %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("cluster: service class %q: %v", name, err)
			}
		}
		out = append(out, cl)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty service-class spec %q", spec)
	}
	return out, nil
}
