package cluster_test

// Fault-tolerance tests for the cluster layer: typed waiter errors on
// replica death (no parked-forever Handle.Wait), retry-driven requeue onto
// survivors, health-aware autoscaling, and the seeded chaos contract —
// a random kill/hang schedule over a stress workload must replay
// byte-identically, leak no KV pages on survivors, and leave every launch
// either completed or failed with a typed error. Runs under -race in CI.

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"pie"
	"pie/internal/cluster"
	"pie/internal/metrics"
	"pie/internal/sim"
)

// tightHealth detects failures quickly so tests stay short.
func tightHealth() pie.HealthConfig {
	return pie.HealthConfig{
		Enabled:      true,
		Interval:     2 * time.Millisecond,
		SuspectAfter: 4 * time.Millisecond,
		DeadAfter:    10 * time.Millisecond,
		HangTimeout:  40 * time.Millisecond,
	}
}

// crashAt builds a single-event crash plan.
func crashAt(replica int, at time.Duration) pie.FaultPlan {
	return pie.FaultPlan{Events: []pie.FaultEvent{
		{At: at, Replica: replica, Kind: pie.FaultCrash},
	}}
}

// TestWaitReturnsTypedErrorOnReplicaDeath is the waiter-leak regression
// test: a launch in flight on the only replica when it crash-stops must
// resolve Wait with api.ErrReplicaLost — before the health layer, the
// done future parked forever because nothing ever released the dead
// replica's instances.
func TestWaitReturnsTypedErrorOnReplicaDeath(t *testing.T) {
	e := newEngine(t, pie.Config{
		Seed: 3, Replicas: 1,
		Health: tightHealth(),
		Faults: crashAt(0, 30*time.Millisecond),
	})
	var waitErr error
	err := e.RunClient(func() {
		h, lerr := e.Launch(pie.Spec("text_completion", completionParams(64, "")))
		if lerr != nil {
			t.Errorf("launch: %v", lerr)
			return
		}
		waitErr = h.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(waitErr, pie.ErrReplicaLost) {
		t.Fatalf("Wait on dead replica = %v, want ErrReplicaLost", waitErr)
	}
	cl := e.Cluster()
	if cl.ReplicasLost != 1 {
		t.Fatalf("ReplicasLost = %d, want 1", cl.ReplicasLost)
	}
	if cl.Replicas()[0].Health() != cluster.HealthDead {
		t.Fatalf("replica health = %v, want dead", cl.Replicas()[0].Health())
	}
}

// TestHangDetectionAbortsWaiters covers the hang arm of the fault model:
// a hung device keeps answering health checks while idle (no outstanding
// work means no missed progress), so the launch places normally — then
// its first inference call stalls and the progress watchdog must time the
// replica out and fail the waiter typed.
func TestHangDetectionAbortsWaiters(t *testing.T) {
	e := newEngine(t, pie.Config{
		Seed: 3, Replicas: 1,
		Health: tightHealth(),
		Faults: pie.FaultPlan{Events: []pie.FaultEvent{
			{At: time.Millisecond, Replica: 0, Kind: pie.FaultHang},
		}},
	})
	var waitErr error
	err := e.RunClient(func() {
		// The hang is already in place: this launch's first kernel never
		// completes.
		h, lerr := e.Launch(pie.Spec("text_completion", completionParams(8, "")))
		if lerr != nil {
			t.Errorf("launch: %v", lerr)
			return
		}
		waitErr = h.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(waitErr, pie.ErrReplicaLost) {
		t.Fatalf("Wait on hung replica = %v, want ErrReplicaLost", waitErr)
	}
	if e.Cluster().Suspects == 0 {
		t.Fatal("hang was never flagged suspect before death")
	}
}

// TestRetryRequeuesOntoSurvivor: with a retry policy, the same handle
// survives its replica's death — the launch requeues onto the survivor
// and completes, counting one logical launch across two attempts.
func TestRetryRequeuesOntoSurvivor(t *testing.T) {
	e := newEngine(t, pie.Config{
		Seed: 3, Replicas: 2, Placement: pie.PlaceRoundRobin,
		Health: tightHealth(),
		Faults: crashAt(0, 30*time.Millisecond),
	})
	var waitErr error
	var attempts int
	err := e.RunClient(func() {
		spec := pie.Spec("text_completion", completionParams(64, ""))
		spec.Retry = pie.RetryPolicy{MaxAttempts: 4}
		h, lerr := e.Launch(spec) // round-robin: lands on replica 0
		if lerr != nil {
			t.Errorf("launch: %v", lerr)
			return
		}
		waitErr = h.Wait()
		attempts = h.Attempts()
	})
	if err != nil {
		t.Fatal(err)
	}
	if waitErr != nil {
		t.Fatalf("retried launch failed: %v", waitErr)
	}
	if attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (requeue after replica death)", attempts)
	}
	st := e.Stats()
	if st.Requeues == 0 {
		t.Fatal("engine counted no requeues")
	}
	if st.Launches != 1 {
		t.Fatalf("Launches = %d, want 1 (one logical launch across attempts)", st.Launches)
	}
}

// TestAutoscalerIgnoresDeadReplicas: a replica crash-stopped under
// sustained load must drop out of the autoscaler's capacity accounting —
// placements keep landing on healthy serving replicas only, the dead
// replica is never reactivated, and the workload still drains.
func TestAutoscalerIgnoresDeadReplicas(t *testing.T) {
	e := newEngine(t, pie.Config{
		Seed: 5, Replicas: 4, Placement: pie.PlaceLeastLoaded,
		Autoscale: pie.AutoscaleConfig{
			Enabled: true, Min: 1, Max: 4,
			Interval: 5 * time.Millisecond,
			UpDepth:  4, DownDepth: 1,
		},
		Health:       tightHealth(),
		Faults:       crashAt(1, 120*time.Millisecond),
		DefaultRetry: pie.RetryPolicy{MaxAttempts: 4},
	})
	badPlacements := 0
	e.Cluster().OnPlace = func(r *cluster.Replica) {
		// Decision-time check: never place onto anything but a healthy,
		// active, non-draining replica (suspect fallback is only legal
		// when no healthy replica exists, which this test never hits).
		if r.Health() != cluster.HealthHealthy || !r.Active() || r.Draining() {
			badPlacements++
		}
	}
	const total, conc = 96, 24
	var done, failed int
	err := e.RunClient(func() {
		g := sim.NewGroup(e.Clock())
		queue := sim.NewMailbox[int](e.Clock())
		for i := 0; i < total; i++ {
			queue.Send(i)
		}
		for w := 0; w < conc; w++ {
			g.Go("client", func() {
				for {
					if _, ok := queue.TryRecv(); !ok {
						return
					}
					h, lerr := e.Launch(pie.Spec("text_completion", completionParams(8, "")))
					if lerr == nil {
						lerr = h.Wait()
					}
					if lerr != nil {
						failed++
						continue
					}
					done++
				}
			})
		}
		g.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if badPlacements != 0 {
		t.Fatalf("%d placements landed on unhealthy/inactive/draining replicas", badPlacements)
	}
	if done+failed != total || done == 0 {
		t.Fatalf("work unaccounted: done %d failed %d of %d", done, failed, total)
	}
	cl := e.Cluster()
	if cl.ReplicasLost != 1 {
		t.Fatalf("ReplicasLost = %d, want 1", cl.ReplicasLost)
	}
	dead := cl.Replicas()[1]
	if dead.Health() != cluster.HealthDead || dead.Active() {
		t.Fatalf("dead replica state: health %v active %v, want dead and inactive",
			dead.Health(), dead.Active())
	}
	// The autoscaler kept the surviving set serving: every active replica
	// at the end is healthy.
	for _, r := range cl.Replicas() {
		if r.Active() && r.Health() != cluster.HealthHealthy {
			t.Fatalf("replica %d active while %v", r.ID, r.Health())
		}
	}
}

// --- Seeded chaos -------------------------------------------------------

// chaosDoc is the full result document the determinism check compares.
type chaosDoc struct {
	Replicas []metrics.ReplicaStats `json:"replicas"`
	Stats    pie.Stats              `json:"stats"`
	Done     int                    `json:"done"`
	Typed    int                    `json:"typed_failures"`
}

// runChaos drives a stress workload under a seeded random kill/hang/slow
// schedule with retry armed, and asserts the no-lost-work contract: every
// launch completes or fails typed, and surviving replicas end with zero
// KV pages allocated.
func runChaos(t *testing.T, seed uint64) chaosDoc {
	t.Helper()
	plan := pie.RandomFaultPlan(seed, 8, 6, 600*time.Millisecond)
	e := newEngine(t, pie.Config{
		Seed: seed, Replicas: 8, Placement: pie.PlaceLeastLoaded,
		Health: tightHealth(),
		Faults: plan,
		DefaultRetry: pie.RetryPolicy{
			MaxAttempts: 4,
			BaseBackoff: 2 * time.Millisecond,
			MaxBackoff:  16 * time.Millisecond,
			Budget:      100 * time.Millisecond,
		},
	})
	const total, conc = 160, 32
	doc := chaosDoc{}
	err := e.RunClient(func() {
		g := sim.NewGroup(e.Clock())
		queue := sim.NewMailbox[int](e.Clock())
		for i := 0; i < total; i++ {
			queue.Send(i)
		}
		for w := 0; w < conc; w++ {
			g.Go("client", func() {
				for {
					if _, ok := queue.TryRecv(); !ok {
						return
					}
					h, lerr := e.Launch(pie.Spec("text_completion", completionParams(8, "")))
					if lerr == nil {
						lerr = h.Wait()
					}
					switch {
					case lerr == nil:
						doc.Done++
					case errors.Is(lerr, pie.ErrReplicaLost),
						errors.Is(lerr, pie.ErrRetryBudgetExhausted),
						errors.Is(lerr, pie.ErrTransientFault),
						errors.Is(lerr, pie.ErrTerminated):
						doc.Typed++
					default:
						t.Errorf("untyped launch failure: %v", lerr)
					}
				}
			})
		}
		g.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Done+doc.Typed != total {
		t.Fatalf("lost work: done %d + typed %d != %d", doc.Done, doc.Typed, total)
	}
	for _, r := range e.Cluster().Replicas() {
		if r.Health() == cluster.HealthDead {
			continue
		}
		if inUse, _ := r.Ctl.KVLoad(); inUse != 0 {
			t.Fatalf("replica %d leaked %d KV pages", r.ID, inUse)
		}
	}
	doc.Replicas = e.ReplicaStats()
	doc.Stats = e.Stats()
	return doc
}

// TestChaosScheduleSurvivesAndReplays: the chaos schedule actually bites
// (faults injected, replicas lost, launches requeued), the workload
// drains without hangs or leaks, and the same seed replays the entire
// stats document byte-identically — failure injection included.
func TestChaosScheduleSurvivesAndReplays(t *testing.T) {
	a := runChaos(t, 11)
	if a.Stats.FaultsInjected == 0 {
		t.Fatal("chaos plan injected no faults")
	}
	if a.Stats.ReplicasLost == 0 {
		t.Fatal("chaos schedule killed no replicas")
	}
	if a.Stats.Requeues == 0 {
		t.Fatal("no launches were requeued off dead replicas")
	}

	blob := func(d chaosDoc) string {
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if x, y := blob(a), blob(runChaos(t, 11)); x != y {
		t.Fatalf("same-seed chaos runs diverged:\n%s\n%s", x, y)
	}
}

// TestChaosSeedSensitivity: different seeds must produce different fault
// schedules (the chaos layer is actually random, not a fixed script).
func TestChaosSeedSensitivity(t *testing.T) {
	a := pie.RandomFaultPlan(1, 8, 6, 600*time.Millisecond)
	b := pie.RandomFaultPlan(2, 8, 6, 600*time.Millisecond)
	if a.String() == b.String() {
		t.Fatalf("seeds 1 and 2 built identical fault plans: %s", a.String())
	}
	for _, ev := range a.Events {
		if ev.Replica == 0 {
			t.Fatal("random plan targeted replica 0 (the reserved quorum replica)")
		}
	}
}

// TestShedBestEffortUnderSaturation drives the admission guard's live
// signal path: an idle cluster admits best-effort launches, a saturated
// one sheds them typed with ErrOverloaded while high-priority work keeps
// flowing.
func TestShedBestEffortUnderSaturation(t *testing.T) {
	e := newEngine(t, pie.Config{
		Seed: 5, Replicas: 1,
		Shed: pie.ShedConfig{Enabled: true, QueueDepth: 0.5},
	})
	var idleErr, busyErr error
	err := e.RunClient(func() {
		be := pie.Spec("text_completion", completionParams(2, ""))
		be.Priority = -1
		if _, idleErr = e.LaunchAndWait(be); idleErr != nil {
			return
		}
		h, lerr := e.Launch(pie.Spec("text_completion", completionParams(64, "")))
		if lerr != nil {
			t.Errorf("high-priority launch: %v", lerr)
			return
		}
		// Let the decode loop queue outstanding calls past the watermark.
		e.Clock().Sleep(20 * time.Millisecond)
		_, busyErr = e.Launch(be)
		if werr := h.Wait(); werr != nil {
			t.Errorf("high-priority wait: %v", werr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if idleErr != nil {
		t.Fatalf("idle cluster shed a best-effort launch: %v", idleErr)
	}
	if !errors.Is(busyErr, pie.ErrOverloaded) {
		t.Fatalf("saturated launch = %v, want ErrOverloaded", busyErr)
	}
	if sheds := e.Cluster().Sheds; sheds != 1 {
		t.Fatalf("Sheds = %d, want 1", sheds)
	}
}

// TestTransientFaultInjectionRetries arms the per-launch transient stream
// at a high rate and checks the retry policy absorbs it: every launch
// completes, faults were actually injected, and at least one launch needed
// more than one attempt.
func TestTransientFaultInjectionRetries(t *testing.T) {
	e := newEngine(t, pie.Config{
		Seed: 8, Replicas: 2,
		Faults:       pie.FaultPlan{CallFailRate: 0.5, Seed: 8},
		DefaultRetry: pie.RetryPolicy{MaxAttempts: 8, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond},
	})
	retried := false
	err := e.RunClient(func() {
		for i := 0; i < 8; i++ {
			h, lerr := e.Launch(pie.Spec("text_completion", completionParams(2, "")))
			if lerr != nil {
				t.Errorf("launch %d: %v", i, lerr)
				return
			}
			if werr := h.Wait(); werr != nil {
				t.Errorf("wait %d: %v", i, werr)
				return
			}
			if h.Attempts() > 1 {
				retried = true
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := e.Cluster()
	if cl.TransientFaults == 0 {
		t.Fatal("CallFailRate 0.5 injected no transient faults")
	}
	if !retried {
		t.Fatal("no launch reported Attempts > 1 despite injected faults")
	}
	if cl.HealthEnabled() {
		t.Fatal("health monitor armed without config")
	}
}
