package cluster_test

import (
	"testing"
	"time"

	"pie"
	"pie/internal/cluster"
)

// TestFleetOps exercises the controller-facing replica lifecycle verbs:
// drain begin/cancel, idle deactivation, refusal rules, and the OnFleetOp
// observation hook.
func TestFleetOps(t *testing.T) {
	e := newEngine(t, pie.Config{Seed: 3, Replicas: 3})
	c := e.Cluster()
	var ops []string
	c.OnFleetOp = func(op string, r *cluster.Replica) {
		ops = append(ops, op)
	}
	err := e.RunClient(func() {
		rs := c.Replicas()
		r2 := rs[2]
		// Drain an idle replica: two-phase — marked first, retired by the
		// next CompleteDrains pass.
		if !c.BeginDrain(r2) || !r2.Draining() {
			panic("BeginDrain on a serving replica must mark it draining")
		}
		if c.BeginDrain(r2) {
			panic("BeginDrain twice must refuse")
		}
		// Activate cancels an in-progress drain without a drop.
		if !c.Activate(r2) || r2.Draining() || !r2.Active() {
			panic("Activate must cancel the drain")
		}
		if c.Activate(r2) {
			panic("Activate on a serving replica must be a no-op")
		}
		// Deactivate only retires idle replicas.
		if !c.Deactivate(r2) || r2.Active() {
			panic("Deactivate on an idle replica must retire it")
		}
		if c.Deactivate(r2) {
			panic("Deactivate twice must refuse")
		}
		if !c.Activate(r2) {
			panic("Activate must wake an inactive replica")
		}
		// Full two-phase drain: begin, then complete once idle.
		before := c.DrainDone
		if !c.BeginDrain(r2) {
			panic("BeginDrain after reactivation")
		}
		c.CompleteDrains()
		if r2.Active() || c.DrainDone != before+1 {
			panic("CompleteDrains must retire the idle draining replica")
		}
		e.Sleep(time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"drain", "activate", "deactivate", "activate", "drain", "drain-done"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i, op := range want {
		if ops[i] != op {
			t.Fatalf("ops[%d] = %q, want %q (%v)", i, ops[i], op, ops)
		}
	}
	if c.DrainStart < 2 {
		t.Fatalf("DrainStart = %d, want >= 2", c.DrainStart)
	}
}

// TestFleetOpsPlacementSwap: the controller can retarget the placement
// policy live.
func TestFleetOpsPlacementSwap(t *testing.T) {
	e := newEngine(t, pie.Config{Seed: 3, Replicas: 2, Placement: pie.PlaceRoundRobin})
	c := e.Cluster()
	if c.Placement() != cluster.PlaceRoundRobin {
		t.Fatalf("boot placement = %v", c.Placement())
	}
	c.SetPlacement(cluster.PlaceLeastLoaded)
	if c.Placement() != cluster.PlaceLeastLoaded {
		t.Fatalf("placement after swap = %v", c.Placement())
	}
}
