// Engine-level tests of the cluster layer: placement policies, the
// autoscaler, and the determinism contract. These drive real engines (the
// external test package may import pie) because placement decisions depend
// on live controller state — outstanding work, export registries — that
// only a full serving stack produces.
package cluster_test

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"pie"
	"pie/apps"
	"pie/internal/cluster"
)

func newEngine(t *testing.T, cfg pie.Config) *pie.Engine {
	t.Helper()
	cfg.Mode = pie.ModeTiming
	e := pie.New(cfg)
	e.MustRegister(apps.All()...)
	return e
}

func completionParams(maxTokens int, extra string) string {
	p := fmt.Sprintf(`{"prompt":"cluster test prompt","max_tokens":%d`, maxTokens)
	if extra != "" {
		p += "," + extra
	}
	return p + "}"
}

func placements(e *pie.Engine) []int {
	var out []int
	for _, r := range e.Cluster().Replicas() {
		out = append(out, r.Placements)
	}
	return out
}

func TestParsePlacement(t *testing.T) {
	for in, want := range map[string]cluster.PlacementPolicy{
		"rr": cluster.PlaceRoundRobin, "round-robin": cluster.PlaceRoundRobin,
		"least": cluster.PlaceLeastLoaded, "least-outstanding-tokens": cluster.PlaceLeastLoaded,
		"kv-affinity": cluster.PlaceKVAffinity, "affinity": cluster.PlaceKVAffinity,
		"program-affinity": cluster.PlaceProgramAffinity, "program": cluster.PlaceProgramAffinity,
	} {
		got, err := cluster.ParsePlacement(in)
		if err != nil || got != want {
			t.Fatalf("ParsePlacement(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := cluster.ParsePlacement("bogus"); err == nil {
		t.Fatal("ParsePlacement(bogus) succeeded")
	}
	for _, p := range []cluster.PlacementPolicy{
		cluster.PlaceRoundRobin, cluster.PlaceLeastLoaded, cluster.PlaceKVAffinity,
		cluster.PlaceProgramAffinity,
	} {
		if p.String() == "unknown" {
			t.Fatalf("policy %d has no name", p)
		}
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	e := newEngine(t, pie.Config{Seed: 11, Replicas: 3, Placement: pie.PlaceRoundRobin})
	err := e.RunClient(func() {
		for i := 0; i < 6; i++ {
			if _, err := e.LaunchAndWait(pie.Spec("text_completion", completionParams(2, ""))); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	got := placements(e)
	for i, n := range got {
		if n != 2 {
			t.Fatalf("replica %d placements = %v, want [2 2 2]", i, got)
		}
	}
}

func TestLeastLoadedPlacementBalances(t *testing.T) {
	e := newEngine(t, pie.Config{Seed: 11, Replicas: 2, Placement: pie.PlaceLeastLoaded})
	err := e.RunClient(func() {
		var hs []*pie.Handle
		for i := 0; i < 4; i++ {
			h, err := e.Launch(pie.Spec("text_completion", completionParams(32, "")))
			if err != nil {
				panic(err)
			}
			hs = append(hs, h)
		}
		for _, h := range hs {
			if err := h.Wait(); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	got := placements(e)
	if got[0]+got[1] != 4 || got[0] == 0 || got[1] == 0 {
		t.Fatalf("placements = %v, want 4 split across both replicas", got)
	}
}

func TestKVAffinityRoutesToExportHolder(t *testing.T) {
	e := newEngine(t, pie.Config{Seed: 11, Replicas: 4, Placement: pie.PlaceKVAffinity})
	prefixParams := func(key string, task int) string {
		b, _ := json.Marshal(apps.PrefixCachingParams{
			SharedPrefix: "a long shared prefix, repeated enough to fill a KV page or two; " +
				"the router should pin every request that names it to one replica. key=" + key,
			Prompt:    fmt.Sprintf("q%d", task),
			MaxTokens: 2,
			CacheKey:  key,
		})
		return string(b)
	}
	err := e.RunClient(func() {
		for task := 0; task < 3; task++ {
			if _, err := e.LaunchAndWait(pie.Spec("prefix_caching", prefixParams("aff:key-a", task))); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every task for the key must land on one replica, and exactly that
	// replica holds the export.
	holders, placed := 0, 0
	for _, r := range e.Cluster().Replicas() {
		if r.Ctl.HasExportNamed("aff:key-a") {
			holders++
			placed = r.Placements
		} else if r.Placements != 0 {
			t.Fatalf("replica %d got placements without holding the key", r.ID)
		}
	}
	if holders != 1 || placed != 3 {
		t.Fatalf("holders = %d, placements on holder = %d; want 1 and 3", holders, placed)
	}
}

func TestAffinityHintRoutesPlainLaunches(t *testing.T) {
	// A launch with only an "affinity" hint (no cache_key, no export yet)
	// hash-sticks: same hint, same replica, every time.
	e := newEngine(t, pie.Config{Seed: 11, Replicas: 4, Placement: pie.PlaceKVAffinity})
	err := e.RunClient(func() {
		for i := 0; i < 4; i++ {
			if _, err := e.LaunchAndWait(pie.Spec("text_completion",
				completionParams(2, `"affinity":"tenant-42"`))); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	nonZero := 0
	for _, n := range placements(e) {
		if n > 0 {
			nonZero++
			if n != 4 {
				t.Fatalf("sticky replica got %d placements, want all 4", n)
			}
		}
	}
	if nonZero != 1 {
		t.Fatalf("%d replicas got placements, want exactly 1 (hash-stick)", nonZero)
	}
}

func TestAutoscalerGrowsAndDrains(t *testing.T) {
	e := newEngine(t, pie.Config{
		Seed:      11,
		Replicas:  1,
		Placement: pie.PlaceLeastLoaded,
		Autoscale: pie.AutoscaleConfig{Enabled: true, Min: 1, Max: 4, UpDepth: 8, DownDepth: 1},
	})
	const conc = 32
	err := e.RunClient(func() {
		var hs []*pie.Handle
		for i := 0; i < conc; i++ {
			h, err := e.Launch(pie.Spec("text_completion", completionParams(48, "")))
			if err != nil {
				panic(err)
			}
			hs = append(hs, h)
		}
		for _, h := range hs {
			if err := h.Wait(); err != nil {
				panic(err)
			}
		}
		// Idle long enough for the autoscaler to drain back to Min.
		e.Sleep(2 * e.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := e.Cluster()
	if cl.ScaleUps == 0 {
		t.Fatal("autoscaler never scaled up under load")
	}
	if cl.DrainDone == 0 {
		t.Fatal("autoscaler never completed a drain after load")
	}
	if got := cl.ActiveReplicas(); got != 1 {
		t.Fatalf("active replicas after drain = %d, want 1", got)
	}
	if e.Stats().ActiveReplicas != 1 {
		t.Fatal("engine Stats does not reflect the drained cluster")
	}
}

func TestAutoscalerBoundsClampInitialActive(t *testing.T) {
	// Replicas above Autoscale.Max must not start active: the autoscaler's
	// [Min, Max] bound holds from the first event.
	e := newEngine(t, pie.Config{
		Seed:      11,
		Replicas:  8,
		Autoscale: pie.AutoscaleConfig{Enabled: true, Min: 1, Max: 4},
	})
	if got := e.Cluster().ActiveReplicas(); got != 4 {
		t.Fatalf("initial active replicas = %d, want 4 (clamped to Max)", got)
	}
}

// TestSameSeedByteIdenticalReplicaStats pins the determinism contract:
// identical seeds produce byte-identical per-replica stats documents.
func TestSameSeedByteIdenticalReplicaStats(t *testing.T) {
	run := func() []byte {
		e := newEngine(t, pie.Config{Seed: 33, Replicas: 3, Placement: pie.PlaceLeastLoaded})
		err := e.RunClient(func() {
			var hs []*pie.Handle
			for i := 0; i < 9; i++ {
				h, err := e.Launch(pie.Spec("text_completion", completionParams(8, "")))
				if err != nil {
					panic(err)
				}
				hs = append(hs, h)
			}
			for _, h := range hs {
				if err := h.Wait(); err != nil {
					panic(err)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(e.ReplicaStats())
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same-seed replica stats differ:\n%s\n%s", a, b)
	}
}

// TestDrainMigratesExports: when the autoscaler completes a drain, the
// drained replica's KV exports move to a surviving replica, so cached
// context outlives the deactivation and kv-affinity keeps finding it on
// a placeable replica.
func TestDrainMigratesExports(t *testing.T) {
	// Pick a cache key that hash-sticks to replica 1 — the replica the
	// autoscaler will drain first (scale-down walks from the highest ID).
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("drain-key-%d", i)
		h := fnv.New64a()
		h.Write([]byte(key))
		if h.Sum64()%2 == 1 {
			break
		}
	}
	e := newEngine(t, pie.Config{
		Seed:      5,
		Replicas:  2,
		Placement: pie.PlaceKVAffinity,
		Autoscale: pie.AutoscaleConfig{
			Enabled: true, Min: 1, Max: 2,
			// The first evaluation must come after the export lands on
			// replica 1 (the launch takes tens of virtual ms); then one
			// tick starts the drain and the next completes it.
			Interval: 200 * time.Millisecond, UpDepth: 1000, DownDepth: 1,
		},
	})
	params, _ := json.Marshal(apps.PrefixCachingParams{
		SharedPrefix: "a shared prefix long enough to fill at least one KV page when tokenized",
		Prompt:       "q",
		MaxTokens:    2,
		CacheKey:     key,
	})
	err := e.RunClient(func() {
		if _, err := e.LaunchAndWait(pie.Spec("prefix_caching", string(params))); err != nil {
			panic(err)
		}
		r1 := e.Cluster().Replicas()[1]
		if !r1.Ctl.HasExportNamed(key) {
			t.Error("export did not land on the hash-stuck replica 1")
		}
		// Idle until the autoscaler drains replica 1 and migrates.
		e.Sleep(500 * time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := e.Cluster()
	if cl.DrainDone == 0 {
		t.Fatal("autoscaler never completed the drain")
	}
	if cl.ExportsMigrated == 0 || cl.PagesMigrated == 0 {
		t.Fatalf("drain moved no exports: migrated=%d pages=%d", cl.ExportsMigrated, cl.PagesMigrated)
	}
	r0, r1 := cl.Replicas()[0], cl.Replicas()[1]
	if !r0.Ctl.HasExportNamed(key) {
		t.Fatal("surviving replica does not hold the migrated export")
	}
	if r1.Ctl.HasExportNamed(key) {
		t.Fatal("drained replica still holds the export")
	}
	if r1.Active() {
		t.Fatal("drained replica still active")
	}
	if dev, total := r0.Ctl.ExportResidency(key); total == 0 || dev != total {
		t.Fatalf("migrated export residency %d/%d, want all device-resident", dev, total)
	}
	// The migrated pages are the only live ones on replica 0.
	if inUse, _ := r0.Ctl.PoolStats("llama-1b"); inUse != cl.PagesMigrated {
		t.Fatalf("replica 0 holds %d pages, want the %d migrated ones", inUse, cl.PagesMigrated)
	}
	if inUse, _ := r1.Ctl.PoolStats("llama-1b"); inUse != 0 {
		t.Fatalf("drained replica still holds %d pages", inUse)
	}
}

// TestProgramAffinityPlacement: program-affinity concentrates each
// program's launches on the replica holding its artifact warm, so a
// cluster pays one upload + JIT per program instead of one per
// (program, replica) pair like round-robin.
func TestProgramAffinityPlacement(t *testing.T) {
	// 3 programs over 4 replicas: coprime cycle lengths, so round-robin
	// genuinely spreads each program across replicas instead of aliasing
	// onto one.
	const replicas, perProgram = 4, 8
	programs := []string{"text_completion", "prefix_caching", "beam"}

	run := func(placement pie.PlacementPolicy) (cold int, spread []int) {
		e := newEngine(t, pie.Config{Seed: 11, Replicas: replicas, Placement: placement})
		err := e.RunClient(func() {
			for i := 0; i < perProgram; i++ {
				for _, prog := range programs {
					h, err := e.Launch(pie.Spec(prog, completionParams(2, "")))
					if err != nil {
						t.Errorf("launch %s: %v", prog, err)
						return
					}
					_ = h.Wait()
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return e.Stats().ColdLaunches, placements(e)
	}

	coldPA, spreadPA := run(pie.PlaceProgramAffinity)
	if coldPA != len(programs) {
		t.Fatalf("program-affinity paid %d cold launches, want %d (one per program)",
			coldPA, len(programs))
	}
	// Hash-stuck programs stay put: total placements must be conserved and
	// every launch of one program lands where its artifact lives.
	total := 0
	for _, n := range spreadPA {
		total += n
	}
	if total != len(programs)*perProgram {
		t.Fatalf("placements %v, want %d total", spreadPA, len(programs)*perProgram)
	}

	coldRR, _ := run(pie.PlaceRoundRobin)
	if coldRR <= coldPA {
		t.Fatalf("round-robin cold launches = %d, want > %d (affinity should win)",
			coldRR, coldPA)
	}

	// Warm-artifact accounting agrees with the ILM's cold count.
	e := newEngine(t, pie.Config{Seed: 11, Replicas: replicas, Placement: pie.PlaceProgramAffinity})
	err := e.RunClient(func() {
		for i := 0; i < 3; i++ {
			if _, err := e.LaunchAndWait(pie.Spec("text_completion", completionParams(2, ""))); err != nil {
				t.Errorf("launch: %v", err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.ArtifactMisses != 1 || s.ArtifactHits != 2 {
		t.Fatalf("artifact stats misses=%d hits=%d, want 1/2", s.ArtifactMisses, s.ArtifactHits)
	}
}
