// Engine-level tests of the SLO scaler: the live scaling daemon against a
// real heterogeneous serving stack. The unit tests in scaler_test.go pin
// individual decisions on synthetic clusters; these drive the whole loop
// on the virtual clock — saturation-triggered scale-up, graceful
// degradation and best-effort shedding at the admission gate, per-class
// attainment sampling, and scale-to-zero on idle.
package cluster_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"pie"
)

func TestScalerGrowsDegradesShedsAndScalesToZero(t *testing.T) {
	e := newEngine(t, pie.Config{
		Seed:      7,
		Replicas:  1,
		Placement: pie.PlaceLeastLoaded,
		Classes: []pie.ServiceClass{
			{Name: "interactive", TTFTTarget: 150 * time.Millisecond, ITLTarget: 60 * time.Millisecond, Priority: 10},
			{Name: "batch", MinTokensPerSec: 40, Degradable: true},
		},
		Variants: []pie.ReplicaVariant{
			{Name: "ref", CostRate: 1, Count: 2},
			{Name: "eco", CostRate: 0.6, Slowdown: 1.3},
		},
		Shed: pie.ShedConfig{Enabled: true, KVWatermark: 0.9, QueueDepth: 8},
		Scaler: pie.ScalerConfig{
			Enabled: true, Min: 1, Max: 4, QueueRef: 4,
			ScaleToZero: true, IdleAfter: 100 * time.Millisecond,
		},
	})
	if !e.Cluster().ScalerEnabled() {
		t.Fatal("scaler not enabled")
	}
	degraded, shed := 0, 0
	err := e.RunClient(func() {
		var hs []*pie.Handle
		for i := 0; i < 24; i++ {
			sp := pie.Spec("text_completion", completionParams(16, ""))
			sp.Class = "interactive"
			h, err := e.Launch(sp)
			if err != nil {
				t.Errorf("interactive launch %d: %v", i, err)
				return
			}
			hs = append(hs, h)
		}
		// Let the interactive wave instantiate and queue, so the batch and
		// best-effort launches below arrive at a visibly loaded gate.
		e.Sleep(30 * time.Millisecond)
		for i := 0; i < 12; i++ {
			sp := pie.Spec("text_completion", completionParams(24, ""))
			sp.Class = "batch"
			h, err := e.Launch(sp)
			if err != nil {
				t.Errorf("batch launch %d: %v", i, err)
				return
			}
			if h.Degraded() {
				degraded++
				if h.Class() != "batch" {
					t.Errorf("degraded handle class = %q, want batch", h.Class())
				}
			}
			hs = append(hs, h)
		}
		for i := 0; i < 8; i++ {
			sp := pie.Spec("text_completion", completionParams(8, ""))
			sp.Priority = -1
			h, err := e.Launch(sp)
			switch {
			case err == nil:
				hs = append(hs, h)
			case errors.Is(err, pie.ErrOverloaded):
				shed++
			default:
				t.Errorf("best-effort launch %d: %v", i, err)
				return
			}
		}
		if _, _, serving := e.Cluster().SaturationSnapshot(); serving == 0 {
			t.Error("no serving replicas under load")
		}
		for _, h := range hs {
			if err := h.Wait(); err != nil {
				t.Errorf("wait: %v", err)
				return
			}
		}
		// Idle past IdleAfter so the scaler drains the fleet to zero.
		e.Sleep(600 * time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}

	cl := e.Cluster()
	if cl.ScaleUps == 0 {
		t.Fatal("scaler never scaled up under saturation")
	}
	log := strings.Join(cl.Decisions, "\n")
	if !strings.Contains(log, "scale-up") {
		t.Fatalf("no scale-up in decision log:\n%s", log)
	}
	st := e.Stats()
	if degraded == 0 || st.Degradations != degraded {
		t.Fatalf("degradations: handles saw %d, stats %d; want equal and > 0", degraded, st.Degradations)
	}
	if shed == 0 || st.Sheds != shed {
		t.Fatalf("sheds: client saw %d, stats %d; want equal and > 0", shed, st.Sheds)
	}
	if st.ScaleToZeroEvents == 0 || st.ActiveReplicas != 0 {
		t.Fatalf("idle fleet not drained to zero: events %d, active %d", st.ScaleToZeroEvents, st.ActiveReplicas)
	}
	if st.CostUnits <= 0 {
		t.Fatalf("cost units %.3f, want > 0", st.CostUnits)
	}

	classes := cl.Classes()
	if len(classes) != 2 || classes[0].Name != "batch" || classes[1].Name != "interactive" {
		t.Fatalf("Classes() = %+v, want [batch interactive]", classes)
	}
	for _, cs := range cl.ClassStats() {
		switch cs.Class {
		case "interactive":
			if cs.TTFTSamples == 0 || cs.ITLSamples == 0 {
				t.Fatalf("interactive class unsampled: %+v", cs)
			}
		case "batch":
			if cs.Degradations != degraded {
				t.Fatalf("batch class degradations = %d, want %d", cs.Degradations, degraded)
			}
		}
	}
}
