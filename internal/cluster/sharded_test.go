// Sharded-fleet tests: the per-replica event loops behind the
// time-window barrier must complete real inferlet workloads, survive
// crash/hang/slow faults through the message-based health layer, run
// prefill->decode sessions across shards, and stay byte-identical at any
// GOMAXPROCS.
package cluster_test

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"pie/api"
	"pie/apps"
	"pie/internal/cluster"
	"pie/internal/sim"
)

// runShardedTrace drives a seeded multi-client completion workload on a
// sharded fleet and returns a full transcript (every per-session result
// plus the final stats) and the stats. The transcript is the determinism
// witness: two runs match iff they made identical decisions everywhere.
func runShardedTrace(t *testing.T, cfg cluster.ShardedConfig, clients, perClient int) (string, cluster.ShardedStats) {
	t.Helper()
	sc := cluster.NewSharded(cfg)
	if err := sc.Register(apps.All()...); err != nil {
		t.Fatalf("Register: %v", err)
	}
	var lines []string
	for c := 0; c < clients; c++ {
		c := c
		sc.Go(fmt.Sprintf("client-%d", c), func() {
			rng := sim.NewRNG(cfg.Seed ^ (uint64(c+1) * 0x5851F42D4C957F2D))
			for i := 0; i < perClient; i++ {
				sc.Sleep(time.Duration(rng.Intn(4000)) * time.Microsecond)
				params := fmt.Sprintf(`{"prompt":%q,"max_tokens":%d}`,
					strings.Repeat("shard probe ", 1+rng.Intn(6)), 4+rng.Intn(12))
				res, _ := sc.Submit("text_completion", params).Get()
				lines = append(lines, fmt.Sprintf(
					"c%d#%d err=%v rep=%d tok=%d ttft=%v lat=%v rq=%v",
					c, i, res.Err, res.Replica, res.OutputTokens,
					res.TTFT, res.Latency, res.Requeued))
			}
		})
	}
	if err := sc.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := sc.Stats()
	return strings.Join(lines, "\n") + fmt.Sprintf("\nstats=%+v", st), st
}

func TestShardedBasic(t *testing.T) {
	_, st := runShardedTrace(t, cluster.ShardedConfig{Seed: 1, Replicas: 4}, 4, 3)
	if st.Launches != 12 || st.Completions != 12 || st.Failures != 0 {
		t.Fatalf("launches/completions/failures = %d/%d/%d, want 12/12/0",
			st.Launches, st.Completions, st.Failures)
	}
	if st.OutputTokens == 0 || st.Kernels == 0 || st.Events == 0 {
		t.Fatalf("no work recorded: %+v", st)
	}
	if st.AvgLatency <= 0 {
		t.Fatalf("AvgLatency = %v", st.AvgLatency)
	}
}

func TestShardedDeterminism(t *testing.T) {
	cfg := cluster.ShardedConfig{Seed: 7, Replicas: 6}
	a, _ := runShardedTrace(t, cfg, 5, 2)
	b, _ := runShardedTrace(t, cfg, 5, 2)
	if a != b {
		t.Fatalf("same-seed reruns differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	prev := runtime.GOMAXPROCS(1)
	serial, _ := runShardedTrace(t, cfg, 5, 2)
	runtime.GOMAXPROCS(prev)
	if serial != a {
		t.Fatalf("GOMAXPROCS=1 vs %d runs differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
			prev, serial, a)
	}
	cfg.Seed = 8
	c, _ := runShardedTrace(t, cfg, 5, 2)
	if c == a {
		t.Fatal("different seeds produced identical transcripts (seed not plumbed through)")
	}
}

func TestShardedCrashRequeue(t *testing.T) {
	cfg := cluster.ShardedConfig{
		Seed: 3, Replicas: 5, Active: 4,
		Faults: cluster.FaultPlan{Events: []cluster.FaultEvent{
			{At: 25 * time.Millisecond, Replica: 0, Kind: cluster.FaultCrash},
		}},
	}
	trace, st := runShardedTrace(t, cfg, 8, 2)
	if st.ReplicasLost != 1 || st.FaultsInjected != 1 {
		t.Fatalf("ReplicasLost=%d FaultsInjected=%d, want 1/1", st.ReplicasLost, st.FaultsInjected)
	}
	if st.Requeues == 0 {
		t.Fatalf("crash at 25ms under load requeued nothing:\n%s", trace)
	}
	if st.Replacements != 1 {
		t.Fatalf("Replacements = %d, want the cold spare activated", st.Replacements)
	}
	// Every session must resolve — completed on a survivor or failed
	// typed. None may vanish.
	if st.Completions+st.Failures != st.Launches {
		t.Fatalf("%d launches but %d completions + %d failures:\n%s",
			st.Launches, st.Completions, st.Failures, trace)
	}
}

func TestShardedHangAndSlow(t *testing.T) {
	cfg := cluster.ShardedConfig{
		Seed: 5, Replicas: 4,
		Faults: cluster.FaultPlan{Events: []cluster.FaultEvent{
			{At: 20 * time.Millisecond, Replica: 1, Kind: cluster.FaultHang},
			{At: 10 * time.Millisecond, Replica: 2, Kind: cluster.FaultSlow, Factor: 8},
		}},
	}
	trace, st := runShardedTrace(t, cfg, 6, 2)
	if st.ReplicasLost != 1 {
		t.Fatalf("hung replica not declared dead: %+v\n%s", st, trace)
	}
	if st.Completions+st.Failures != st.Launches {
		t.Fatalf("sessions lost under hang+slow: %+v\n%s", st, trace)
	}
	if st.Completions == 0 {
		t.Fatalf("nothing completed: %+v", st)
	}
}

func TestShardedTransientFaults(t *testing.T) {
	cfg := cluster.ShardedConfig{
		Seed: 9, Replicas: 3,
		Faults: cluster.FaultPlan{CallFailRate: 0.4, Seed: 42},
	}
	trace, st := runShardedTrace(t, cfg, 6, 3)
	if st.TransientFaults == 0 {
		t.Fatalf("40%% CallFailRate injected nothing: %+v", st)
	}
	if !strings.Contains(trace, api.ErrTransientFault.Error()) {
		t.Fatalf("transient faults not surfaced typed:\n%s", trace)
	}
	if st.Completions+st.Failures != st.Launches {
		t.Fatalf("sessions unaccounted: %+v", st)
	}
}

func TestShardedPrefillDecode(t *testing.T) {
	cfg := cluster.ShardedConfig{
		Seed: 11, Replicas: 4,
		Roles:          []cluster.RoleSpec{{Role: cluster.RolePrefill, Count: 2}, {Role: cluster.RoleDecode}},
		TransferBudget: 1,
	}
	trace, st := runShardedTrace(t, cfg, 6, 2)
	if st.Handoffs != st.Launches {
		t.Fatalf("Handoffs = %d, want every one of %d launches migrated:\n%s",
			st.Handoffs, st.Launches, trace)
	}
	if st.Completions != st.Launches || st.Failures != 0 {
		t.Fatalf("PD sessions lost: %+v\n%s", st, trace)
	}
	if st.HandoffQueued == 0 {
		t.Fatalf("TransferBudget=1 under 6 clients never queued: %+v", st)
	}
	if st.TransferTime == 0 {
		t.Fatalf("no interconnect time charged: %+v", st)
	}
	if st.AvgTTFT >= st.AvgLatency {
		t.Fatalf("TTFT %v not ahead of full latency %v", st.AvgTTFT, st.AvgLatency)
	}
	// Decode must land on the decode tier (replicas 2,3).
	for _, line := range strings.Split(trace, "\n") {
		if strings.Contains(line, "err=<nil>") &&
			(strings.Contains(line, "rep=0 ") || strings.Contains(line, "rep=1 ")) {
			t.Fatalf("session finished on a prefill replica: %s", line)
		}
	}
}

func TestShardedPDDeterminism(t *testing.T) {
	cfg := cluster.ShardedConfig{
		Seed: 13, Replicas: 6,
		Roles:          []cluster.RoleSpec{{Role: cluster.RolePrefill, Count: 3}, {Role: cluster.RoleDecode}},
		TransferBudget: 2,
		Faults: cluster.FaultPlan{Events: []cluster.FaultEvent{
			{At: 30 * time.Millisecond, Replica: 4, Kind: cluster.FaultCrash},
		}},
	}
	a, _ := runShardedTrace(t, cfg, 6, 2)
	prev := runtime.GOMAXPROCS(1)
	b, _ := runShardedTrace(t, cfg, 6, 2)
	runtime.GOMAXPROCS(prev)
	if a != b {
		t.Fatalf("PD+crash transcript differs across GOMAXPROCS:\n--- parallel ---\n%s\n--- serial ---\n%s", a, b)
	}
}

func TestShardedScaler(t *testing.T) {
	cfg := cluster.ShardedConfig{
		Seed: 17, Replicas: 6, Active: 2,
		ScaleEvery: 2 * time.Millisecond, ScaleUpAt: 2, ScaleDownAt: 0.25,
	}
	sc := cluster.NewSharded(cfg)
	if err := sc.Register(apps.All()...); err != nil {
		t.Fatal(err)
	}
	// A burst of 12 concurrent sessions against 2 serving replicas forces
	// scale-up; the drain to idle afterwards forces scale-down.
	var futs []*sim.Future[cluster.ShardedResult]
	sc.Go("burst", func() {
		for i := 0; i < 12; i++ {
			futs = append(futs, sc.Submit("text_completion",
				`{"prompt":"scale burst probe","max_tokens":12}`))
		}
		for _, f := range futs {
			if res, _ := f.Get(); res.Err != nil {
				t.Errorf("burst session failed: %v", res.Err)
			}
		}
		// Idle long enough for the scaler to drain back down.
		sc.Sleep(30 * time.Millisecond)
	})
	if err := sc.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := sc.Stats()
	if st.ScaleUps == 0 {
		t.Fatalf("burst never scaled up: %+v", st)
	}
	if st.ScaleDowns == 0 {
		t.Fatalf("idle fleet never drained: %+v", st)
	}
}

// TestShardedNoCapacity exercises the typed-failure path: a fleet whose
// only decode-eligible replica is dead must fail launches with
// ErrReplicaLost instead of hanging.
func TestShardedNoCapacity(t *testing.T) {
	cfg := cluster.ShardedConfig{
		Seed: 19, Replicas: 2,
		Faults: cluster.FaultPlan{Events: []cluster.FaultEvent{
			{At: time.Millisecond, Replica: 0, Kind: cluster.FaultCrash},
			{At: time.Millisecond, Replica: 1, Kind: cluster.FaultCrash},
		}},
	}
	sc := cluster.NewSharded(cfg)
	if err := sc.Register(apps.All()...); err != nil {
		t.Fatal(err)
	}
	var got error
	sc.Go("late-client", func() {
		// Wait out the crashes and the detector before submitting.
		sc.Sleep(50 * time.Millisecond)
		res, _ := sc.Submit("text_completion", `{"prompt":"x","max_tokens":4}`).Get()
		got = res.Err
	})
	if err := sc.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(got, api.ErrReplicaLost) {
		t.Fatalf("launch into a dead fleet returned %v, want ErrReplicaLost", got)
	}
}
