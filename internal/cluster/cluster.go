// Package cluster is the multi-backend layer between the application layer
// and N single-device serving replicas. The paper's Pie engine virtualizes
// one GPU behind inferlet APIs; production deployments front many such
// engines with a router. Here each replica owns a full inference stack —
// an infer.Backend (its own device clock domain and ingress), a
// core.Controller (its own scheduler ready-buckets and KV page pools) —
// and the Cluster decides, per inferlet launch, which replica hosts the
// instance.
//
// Placement policies:
//
//   - round-robin: cycle over active replicas.
//   - least-outstanding-tokens: place on the replica with the least
//     token-weighted outstanding inference work (llm-d-style load-aware
//     dispatch).
//   - kv-affinity: route an inferlet to the replica already holding the KV
//     export it will import (probed via explicit cache_key/affinity hints
//     in the launch params); cold keys hash-stick to a replica so racing
//     launches of the same key converge, and hint-less launches fall back
//     to least-outstanding-tokens.
//   - program-affinity: route a launch to a replica whose warm-artifact
//     cache already holds the program binary (name@version), so repeat
//     launches skip the upload + JIT pipeline (Fig. 9's cold/warm gap);
//     cold programs hash-stick to a replica so their second launch is
//     already warm.
//
// A queue-depth-driven autoscaler can grow and drain the active replica
// set within configured bounds. Everything runs on the engine's virtual
// clock, so same-seed runs make identical placement and scaling decisions.
package cluster

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"pie/api"
	"pie/internal/core"
	"pie/internal/infer"
	"pie/internal/metrics"
	"pie/internal/sim"
)

// PlacementPolicy selects the routing strategy.
type PlacementPolicy int

const (
	// PlaceRoundRobin cycles launches over active replicas.
	PlaceRoundRobin PlacementPolicy = iota
	// PlaceLeastLoaded places on the replica with the fewest outstanding
	// tokens (queued + in-flight, token-weighted).
	PlaceLeastLoaded
	// PlaceKVAffinity routes to the replica holding the launch's KV export
	// hint, hash-sticking cold keys; falls back to least-loaded.
	PlaceKVAffinity
	// PlaceProgramAffinity routes to a replica whose artifact cache holds
	// the program binary warm (launch skips upload + JIT), hash-sticking
	// cold programs; ties break by least outstanding tokens.
	PlaceProgramAffinity
)

func (p PlacementPolicy) String() string {
	switch p {
	case PlaceRoundRobin:
		return "round-robin"
	case PlaceLeastLoaded:
		return "least-outstanding-tokens"
	case PlaceKVAffinity:
		return "kv-affinity"
	case PlaceProgramAffinity:
		return "program-affinity"
	}
	return "unknown"
}

// ParsePlacement resolves a policy name (CLI flags).
func ParsePlacement(s string) (PlacementPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "rr", "round-robin", "roundrobin":
		return PlaceRoundRobin, nil
	case "llt", "least", "least-loaded", "least-outstanding-tokens":
		return PlaceLeastLoaded, nil
	case "affinity", "kv", "kv-affinity", "prefix":
		return PlaceKVAffinity, nil
	case "program", "program-affinity", "artifact":
		return PlaceProgramAffinity, nil
	}
	return 0, fmt.Errorf("cluster: unknown placement policy %q", s)
}

// AutoscaleConfig bounds and tunes the queue-depth autoscaler. The zero
// value disables autoscaling.
type AutoscaleConfig struct {
	Enabled bool
	// Min and Max bound the active replica count (defaults: 1 and the
	// replica set size).
	Min, Max int
	// Interval is the evaluation period on the virtual clock (default 25ms).
	Interval time.Duration
	// UpDepth adds a replica when mean outstanding calls per active replica
	// reaches it (default 48); DownDepth drains one when the mean falls to
	// it or below (default 4).
	UpDepth   float64
	DownDepth float64
}

func (a AutoscaleConfig) withDefaults(total int) AutoscaleConfig {
	if a.Min <= 0 {
		a.Min = 1
	}
	if a.Max <= 0 || a.Max > total {
		a.Max = total
	}
	if a.Min > a.Max {
		a.Min = a.Max
	}
	if a.Interval <= 0 {
		a.Interval = 25 * time.Millisecond
	}
	if a.UpDepth <= 0 {
		a.UpDepth = 48
	}
	if a.DownDepth <= 0 {
		a.DownDepth = 4
	}
	return a
}

// Replica is one serving stack: a backend with its own device, and a
// controller with its own scheduler and resource pools.
type Replica struct {
	ID      int
	Backend *infer.Backend
	Ctl     *core.Controller

	// Heterogeneous-pool attributes (scaler.go). Zero values mean the
	// default variant: reference speed at one cost unit per second.
	Variant     string
	CostRate    float64
	SpeedFactor float64

	// Role assigns the replica's serving phase (roles.go): unified (the
	// zero value — both phases), prefill, or decode.
	Role Role

	// Prefill/decode handoff counters (handoff.go): sessions received
	// from prefill replicas and sessions handed off to decode replicas.
	HandoffsIn  int
	HandoffsOut int

	active   bool
	draining bool
	// Cost and cold-start bookkeeping (scaler.go): activation epoch,
	// accumulated active time from earlier activations, and the end of the
	// post-activation warming window.
	activeSince time.Duration
	activeAccum time.Duration
	warmUntil   time.Duration
	// Placements counts inferlet instances routed here.
	Placements int

	// Health machinery (see health.go / faults.go).
	health    HealthState
	crashed   bool          // crash fault applied: heartbeats have stopped
	crashedAt time.Duration // when they stopped
	slowdown  float64       // slow fault applied: kernel cost multiplier
	// Progress watchdog bookkeeping.
	lastKernels int
	progressAt  time.Duration
	// Evacuations counts in-flight instances aborted off this replica by
	// the health layer when it died — the requeue candidates.
	Evacuations int
}

// Active reports whether the replica accepts or serves work.
func (r *Replica) Active() bool { return r.active }

// Draining reports whether the replica is finishing existing work only.
func (r *Replica) Draining() bool { return r.draining }

// Health reports the replica's position in the failure state machine.
func (r *Replica) Health() HealthState { return r.health }

// Cluster routes inferlet launches across replicas and autoscales the
// active set.
type Cluster struct {
	clock    *sim.Clock
	policy   PlacementPolicy
	auto     AutoscaleConfig
	replicas []*Replica
	rr       int

	// OnPlace, when set, observes every placement decision (stress tests
	// and instrumentation). It runs synchronously in the placing process
	// with the chosen replica.
	OnPlace func(r *Replica)

	// OnFleetOp, when set, observes every fleet-controller mutation
	// (fleetops.go): op is "activate", "drain", or "deactivate". It runs
	// synchronously in the mutating process.
	OnFleetOp func(op string, r *Replica)

	// Scaling stats.
	ScaleUps   int // replicas activated (or un-drained) by the autoscaler
	DrainStart int // drains initiated
	DrainDone  int // drains completed (replica deactivated)

	// Drain-migration stats: KV exports moved off replicas as their
	// drains completed, so cached context survives deactivation.
	ExportsMigrated int // drain completions that moved at least one page
	PagesMigrated   int

	// Fault layer (health.go, faults.go, shed.go).
	health   HealthConfig
	shed     ShedConfig
	faults   FaultPlan
	faultRNG *sim.RNG

	// Service classes and the SLO scaler (serviceclass.go, scaler.go).
	classes     map[string]api.ServiceClass
	slo         *sloTracker
	scaler      ScalerConfig
	lastBusyAt  time.Duration
	lowSatTicks int // consecutive scaler ticks below SatLow (hysteresis)

	// Prefill/decode disaggregation (roles.go, handoff.go): whether any
	// replica carries a non-unified role, the handoff config, the
	// controller -> replica index sessions resolve their host through, and
	// the bounded in-flight transfer budget (FIFO waiters).
	hasRoles       bool
	handoff        HandoffConfig
	ctlIndex       map[*core.Controller]*Replica
	handoffActive  int
	handoffWaiters []*handoffWaiter

	// Handoff stats.
	Handoffs        int           // sessions migrated prefill -> decode
	HandoffPages    int           // distinct physical pages copied across
	HandoffTime     time.Duration // cumulative modeled interconnect time
	HandoffDenied   int           // handoffs denied (no decode capacity or refused alloc)
	HandoffQueued   int           // handoffs that waited on the transfer budget
	HandoffRequests int           // quiescent first-token sessions that sought a target
	HandoffSkipped  int           // sessions kept in place below the min-pages floor

	// Decisions is the bounded scale/degrade/shed decision log: one line
	// per scaling action, degradation, or shed, byte-identical across
	// same-seed runs (the determinism test contract).
	Decisions []string

	// SLO-layer stats.
	Degradations      int // launches admitted degraded instead of shed
	ScaleToZeroEvents int // idle-fleet drains initiated by the scaler

	// Fault-layer stats.
	FaultsInjected  int           // replica fault events applied
	TransientFaults int           // injected transient launch failures
	Suspects        int           // healthy -> suspect transitions
	ReplicasLost    int           // replicas declared dead
	Replacements    int           // cold spares activated to replace the dead
	ExportsLost     int           // KV exports declared lost on dead replicas
	PagesLost       int           // their physical page references
	Sheds           int           // best-effort launches rejected at admission
	DetectTime      time.Duration // cumulative failure-onset -> declared-dead latency
}

// New builds a cluster over the prebuilt replica set, activating the first
// `active` replicas. When auto.Enabled, the autoscaler daemon starts on
// the clock and keeps the active count within [auto.Min, auto.Max].
func New(clock *sim.Clock, policy PlacementPolicy, auto AutoscaleConfig, replicas []*Replica, active int) *Cluster {
	if len(replicas) == 0 {
		panic("cluster: no replicas")
	}
	auto = auto.withDefaults(len(replicas))
	if active <= 0 {
		active = 1
	}
	if active > len(replicas) {
		active = len(replicas)
	}
	if auto.Enabled {
		if active < auto.Min {
			active = auto.Min
		}
		if active > auto.Max {
			active = auto.Max
		}
	}
	c := &Cluster{clock: clock, policy: policy, auto: auto, replicas: replicas}
	for _, r := range replicas {
		if r.Role != RoleUnified {
			c.hasRoles = true
			break
		}
	}
	for i := 0; i < active; i++ {
		c.markActive(replicas[i])
	}
	if auto.Enabled {
		clock.GoDaemon("cluster:autoscaler", c.autoscaleLoop)
	}
	return c
}

// Replicas exposes the full replica set (including inactive ones).
func (c *Cluster) Replicas() []*Replica { return c.replicas }

// Policy reports the placement policy.
func (c *Cluster) Policy() PlacementPolicy { return c.policy }

// ActiveReplicas counts replicas currently serving (draining included).
func (c *Cluster) ActiveReplicas() int {
	n := 0
	for _, r := range c.replicas {
		if r.active {
			n++
		}
	}
	return n
}

// placeable returns replicas eligible for new work, in ID order. With
// roles assigned, new launches (which begin with prefill) prefer
// prefill-eligible replicas and spill onto the decode pool only when no
// prefill capacity survives — better to colocate than to refuse service.
func (c *Cluster) placeable() []*Replica {
	if c.hasRoles {
		if out := c.placeableFor((*Replica).prefillEligible); len(out) > 0 {
			return out
		}
	}
	return c.placeableFor(nil)
}

// placeableFor runs the placement eligibility ladder over replicas
// matching the role predicate (nil admits every role), in ID order:
// healthy, active, not draining. Suspect replicas are avoided but serve
// as a last resort; dead ones never return. May be empty when every
// matching replica is dead.
func (c *Cluster) placeableFor(eligible func(*Replica) bool) []*Replica {
	ok := func(r *Replica) bool { return eligible == nil || eligible(r) }
	out := make([]*Replica, 0, len(c.replicas))
	for _, r := range c.replicas {
		if r.active && !r.draining && r.health == HealthHealthy && ok(r) {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		// No healthy serving replica. Fall back to suspects (they may be
		// merely stalled) before giving up.
		for _, r := range c.replicas {
			if r.active && !r.draining && r.health == HealthSuspect && ok(r) {
				out = append(out, r)
			}
		}
	}
	if len(out) == 0 {
		// Every active replica is draining (or none is active): revive the
		// lowest-ID live replica so placement still succeeds.
		for _, r := range c.replicas {
			if r.health == HealthHealthy && !r.crashed && ok(r) {
				c.markActive(r)
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// Place picks a replica for a new inferlet instance and returns its
// controller (the ilm.Placer contract). artifact is the program's
// name@version cache key, the program-affinity policy's routing signal.
// When every replica is dead it fails typed with api.ErrReplicaLost —
// retried by launches carrying a retry policy, surfaced otherwise.
func (c *Cluster) Place(program, artifact string, args []string) (*core.Controller, error) {
	r := c.pick(artifact, args)
	if r == nil {
		return nil, fmt.Errorf("%w: no live replica to place %q on", api.ErrReplicaLost, program)
	}
	r.Placements++
	if c.OnPlace != nil {
		c.OnPlace(r)
	}
	return r.Ctl, nil
}

func (c *Cluster) pick(artifact string, args []string) *Replica {
	cands := c.placeable()
	if len(cands) == 0 {
		return nil
	}
	switch c.policy {
	case PlaceRoundRobin:
		r := cands[c.rr%len(cands)]
		c.rr++
		return r
	case PlaceKVAffinity:
		return c.pickAffinity(affinityHints(args), cands)
	case PlaceProgramAffinity:
		return c.pickProgramAffinity(artifact, cands)
	default:
		return pickLeastLoaded(cands)
	}
}

// pickProgramAffinity routes a launch toward a replica holding the
// program artifact warm, so it skips the upload + JIT pipeline. Several
// warm holders tie-break by least outstanding tokens (a hot program's
// launches spread over every replica that has paid its JIT). A cold
// artifact hash-sticks to a stable replica — exactly the kv-affinity
// cold-key trick — so concurrent and repeat launches of a new program
// converge on one replica, which then stays its warm home.
func (c *Cluster) pickProgramAffinity(artifact string, cands []*Replica) *Replica {
	var warm []*Replica
	for _, r := range cands {
		if r.Ctl.HasArtifact(artifact) {
			warm = append(warm, r)
		}
	}
	if len(warm) > 0 {
		return pickLeastLoaded(warm)
	}
	return c.hashStick(artifact, cands)
}

// hashStick maps a key onto the full (stable) replica set and walks to
// the nearest placeable replica. Hashing the placeable set directly would
// move every key whenever the autoscaler resizes it. With roles assigned
// the walk also skips decode-only replicas: a launch stuck to one would
// land where new sessions cannot run.
func (c *Cluster) hashStick(key string, cands []*Replica) *Replica {
	h := fnv.New64a()
	h.Write([]byte(key))
	start := int(h.Sum64() % uint64(len(c.replicas)))
	for i := 0; i < len(c.replicas); i++ {
		r := c.replicas[(start+i)%len(c.replicas)]
		if r.active && !r.draining && r.health == HealthHealthy && (!c.hasRoles || r.prefillEligible()) {
			return r
		}
	}
	return cands[0]
}

// pickLeastLoaded places on the fewest outstanding tokens; ties break by
// live instance count. Instances register at placement time — before a
// cold launch's JIT completes — so a burst of simultaneous launches
// spreads across replicas instead of piling onto the first zero-token tie
// while everyone's work is still compiling.
func pickLeastLoaded(cands []*Replica) *Replica {
	best := cands[0]
	for _, r := range cands[1:] {
		bt, rt := best.Ctl.OutstandingTokens(), r.Ctl.OutstandingTokens()
		if rt < bt || (rt == bt && r.Ctl.Instances() < best.Ctl.Instances()) {
			best = r
		}
	}
	return best
}

func (c *Cluster) pickAffinity(hints []string, cands []*Replica) *Replica {
	// Among replicas holding a hinted export, score by residency tier:
	// device-resident cached pages serve immediately, host-offloaded ones
	// pay a fault-in, so a warmer holder wins. Ties (including the common
	// single-tier case, where every holder scores 1.0) keep the first
	// holder in replica-ID order — the pre-offload behavior.
	for _, h := range hints {
		var best *Replica
		bestScore := -1.0
		for _, r := range cands {
			if !r.Ctl.HasExportNamed(h) {
				continue
			}
			dev, total := r.Ctl.ExportResidency(h)
			score := 1.0
			if total > 0 {
				score = float64(dev) / float64(total)
			}
			if score > bestScore {
				best, bestScore = r, score
			}
		}
		if best != nil {
			return best
		}
	}
	if len(hints) > 0 {
		// Cold key: stick it to a replica by hash so concurrent launches
		// of the same key converge before the first export even lands.
		return c.hashStick(hints[0], cands)
	}
	return pickLeastLoaded(cands)
}

// affinityHints extracts KV-affinity keys from a launch's first argument,
// the JSON parameter blob every app takes: an explicit "affinity" routing
// hint, or the "cache_key" the prefix-caching apps export under.
func affinityHints(args []string) []string {
	if len(args) == 0 || args[0] == "" {
		return nil
	}
	var params struct {
		Affinity string `json:"affinity"`
		CacheKey string `json:"cache_key"`
	}
	if err := json.Unmarshal([]byte(args[0]), &params); err != nil {
		return nil
	}
	var hints []string
	if params.Affinity != "" {
		hints = append(hints, params.Affinity)
	}
	if params.CacheKey != "" {
		hints = append(hints, params.CacheKey)
	}
	return hints
}

// --- Autoscaler ---------------------------------------------------------

func (c *Cluster) autoscaleLoop() {
	for {
		c.clock.Sleep(c.auto.Interval)
		c.evaluate()
	}
}

// finishDrains completes drains whose replicas have emptied: migrate their
// KV exports to a surviving replica, then deactivate. Shared by the
// queue-depth autoscaler and the SLO scaler; iteration is in replica-ID
// order so same-seed runs decide identically.
func (c *Cluster) finishDrains() {
	for _, r := range c.replicas {
		if r.active && r.draining && r.health == HealthHealthy && r.Ctl.Instances() == 0 && r.Ctl.OutstandingCalls() == 0 {
			// Before the replica goes dark, migrate its KV exports to the
			// lowest-ID serving replica: application-managed prompt caches
			// survive the drain, and the kv-affinity router keeps finding
			// them on a placeable replica. The transfer time (device ->
			// host -> peer) is charged to the scaling loop's tick.
			if dst := c.migrationTarget(r); dst != nil {
				pages, cost := r.Ctl.MigrateExportsTo(dst.Ctl)
				if pages > 0 {
					c.ExportsMigrated++
					c.PagesMigrated += pages
					c.clock.Sleep(cost)
				}
			}
			c.markInactive(r)
			c.DrainDone++
			c.fleetOp("drain-done", r)
		}
	}
}

// evaluate runs one autoscaler tick: finish completed drains, then compare
// the mean queue depth per serving replica against the thresholds. All
// iteration is in replica-ID order, so same-seed runs scale identically.
// Dead and suspect replicas never count toward capacity: their stuck
// queues would otherwise read as load the cluster does not actually have
// the hardware to serve.
func (c *Cluster) evaluate() {
	c.finishDrains()
	serving := 0
	depth := 0
	for _, r := range c.replicas {
		if r.active && !r.draining && r.health == HealthHealthy {
			serving++
			depth += r.Ctl.OutstandingCalls()
		}
	}
	if serving == 0 {
		return
	}
	mean := float64(depth) / float64(serving)
	switch {
	case mean >= c.auto.UpDepth && serving < c.auto.Max:
		c.scaleUp()
	case mean <= c.auto.DownDepth && serving > c.auto.Min:
		c.scaleDown()
	}
}

// migrationTarget picks the replica that inherits a drained replica's KV
// exports: the lowest-ID healthy serving replica other than the drained
// one. With roles assigned, decode-eligible replicas are preferred —
// exports hold decoded context, and parking them on a prefill-only
// replica would strand them where sessions cannot stay.
func (c *Cluster) migrationTarget(drained *Replica) *Replica {
	if c.hasRoles {
		for _, r := range c.replicas {
			if r != drained && r.active && !r.draining && r.health == HealthHealthy && r.decodeEligible() {
				return r
			}
		}
	}
	for _, r := range c.replicas {
		if r != drained && r.active && !r.draining && r.health == HealthHealthy {
			return r
		}
	}
	return nil
}

// scaleUp prefers un-draining a still-warm healthy replica (lowest ID
// first), then activates the lowest-ID inactive healthy one. Dead and
// suspect replicas are not capacity.
func (c *Cluster) scaleUp() {
	for _, r := range c.replicas {
		if r.active && r.draining && r.health == HealthHealthy {
			c.markActive(r)
			c.ScaleUps++
			return
		}
	}
	for _, r := range c.replicas {
		if !r.active && r.health == HealthHealthy && !r.crashed {
			c.markActive(r)
			c.ScaleUps++
			return
		}
	}
}

// scaleDown drains the highest-ID healthy serving replica: it stops
// receiving placements and deactivates once its instances and queues
// empty. Suspect replicas are skipped — draining a replica that may be
// dead would never complete.
func (c *Cluster) scaleDown() {
	for i := len(c.replicas) - 1; i >= 0; i-- {
		r := c.replicas[i]
		if r.active && !r.draining && r.health == HealthHealthy {
			r.draining = true
			c.DrainStart++
			return
		}
	}
}

// --- Stats --------------------------------------------------------------

// ReplicaStats snapshots every replica's counters in ID order.
func (c *Cluster) ReplicaStats() []metrics.ReplicaStats {
	out := make([]metrics.ReplicaStats, 0, len(c.replicas))
	for _, r := range c.replicas {
		s := r.Ctl.Scheduler()
		off := r.Ctl.OffloadStats()
		art := r.Ctl.ArtifactStats()
		out = append(out, metrics.ReplicaStats{
			ID:           r.ID,
			Device:       r.Backend.Name,
			Active:       r.active,
			Draining:     r.draining,
			Placements:   r.Placements,
			Instances:    r.Ctl.Instances(),
			Outstanding:  r.Ctl.OutstandingCalls(),
			OutTokens:    r.Ctl.OutstandingTokens(),
			Batches:      s.Batches,
			BatchedCalls: s.BatchedCalls,
			MaxBatch:     s.MaxBatch,
			Kernels:      r.Backend.Device.Kernels(),
			GPUBusyMS:    float64(r.Backend.Device.BusyTime()) / float64(time.Millisecond),
			Terminations: r.Ctl.Terminations,
			KVDevPages:   off.DeviceInUse,
			KVHostPages:  off.HostInUse,
			KVPeakPages:  off.PeakInUse,
			SwapInPages:  off.SwapInPages,
			SwapOutPages: off.SwapOutPages,

			Artifacts:         art.Resident,
			ArtifactHits:      art.Hits,
			ArtifactMisses:    art.Misses,
			ArtifactEvictions: art.Evictions,
			Aborts:            r.Ctl.Aborts,

			Health:   r.health.String(),
			Requeues: r.Evacuations,

			Variant:    r.variantName(),
			CostRate:   r.costRate(),
			CostUnits:  r.costRate() * r.activeFor(c.now()).Seconds(),
			Warming:    c.now() < r.warmUntil,
			Downgrades: r.Ctl.Downgrades,

			Role:        r.Role.String(),
			HandoffsIn:  r.HandoffsIn,
			HandoffsOut: r.HandoffsOut,
		})
	}
	return out
}
