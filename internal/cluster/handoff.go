package cluster

import (
	"pie/api"
	"pie/internal/core"
	"pie/internal/sim"
)

// Prefill/decode KV handoff. A session launched onto a prefill replica
// runs through its first forward pass there; the controller's first-token
// observer marks the instance HandoffPending, and at the session's next
// forward boundary — when it is quiescent, with no queued or in-flight
// calls anywhere — MaybeHandoff migrates its KV pages to the least-loaded
// decode replica over the modeled interconnect and rebinds the session.
// Concurrent transfers share a bounded budget (a FIFO of sim signals), so
// a handoff storm queues rather than multiplying modeled PCIe bandwidth.

// HandoffConfig tunes prefill -> decode session migration.
type HandoffConfig struct {
	Enabled bool
	// Budget bounds concurrent in-flight KV transfers (default 2); excess
	// handoffs queue FIFO and are charged the wait.
	Budget int
	// MinPages keeps small sessions on their prefill replica: a session
	// whose distinct physical KV footprint is below the floor decodes in
	// place, because moving a near-empty cache costs more in rebind and
	// batch-join misses than the decode interference it avoids. 0 migrates
	// everything.
	MinPages int
}

// EnableHandoff arms the handoff coordinator: every prefill-role replica
// gets a first-token observer that marks its sessions for migration, and
// sessions resolve their host replica through the controller index.
func (c *Cluster) EnableHandoff(cfg HandoffConfig) {
	cfg.Enabled = true
	if cfg.Budget <= 0 {
		cfg.Budget = 2
	}
	c.handoff = cfg
	c.ctlIndex = make(map[*core.Controller]*Replica, len(c.replicas))
	for _, r := range c.replicas {
		c.ctlIndex[r.Ctl] = r
		if r.Role == RolePrefill {
			r.Ctl.SetFirstTokenObserver(func(inst *core.Instance) {
				inst.HandoffPending = true
			})
		}
	}
}

// HandoffEnabled reports whether the coordinator is armed.
func (c *Cluster) HandoffEnabled() bool { return c.handoff.Enabled }

// MaybeHandoff migrates a HandoffPending session off its prefill replica
// to the least-loaded decode-eligible replica, returning the session's new
// controller and instance. It runs synchronously in the session's own
// process (the ilm.HandoffCoordinator contract), so the transfer time and
// any budget wait are charged to the session. A false return means the
// session stays put: nothing pending, not yet quiescent (retried at the
// next forward boundary), or no decode capacity (pending is cleared and
// the denial counted — the session finishes where it started rather than
// stall, per api.ErrNoDecodeCapacity).
func (c *Cluster) MaybeHandoff(ctl *core.Controller, inst *core.Instance) (*core.Controller, *core.Instance, bool) {
	if !c.handoff.Enabled || inst == nil || !inst.HandoffPending || inst.Dead() {
		return nil, nil, false
	}
	src := c.ctlIndex[ctl]
	if src == nil || src.Role != RolePrefill {
		inst.HandoffPending = false
		return nil, nil, false
	}
	if !ctl.InstanceQuiescent(inst) {
		// Calls are still queued or in flight (pipelined forwards); keep the
		// mark and retry at the next forward boundary.
		return nil, nil, false
	}
	if min := c.handoff.MinPages; min > 0 {
		if pages := ctl.InstanceKVFootprint(inst); pages < min {
			inst.HandoffPending = false
			c.HandoffSkipped++
			c.logDecision("handoff skipped: %s#%d replica=%d pages=%d<%d",
				inst.Name, inst.ID, src.ID, pages, min)
			return nil, nil, false
		}
	}
	c.HandoffRequests++
	dst := c.handoffTarget(src)
	if dst == nil {
		return c.denyHandoff(inst, src, api.ErrNoDecodeCapacity)
	}
	// The slot is released by the deferred closure on every exit — including
	// the session's process dying mid-transfer (replica death aborts it with
	// a Killed unwind inside HandoffSession or the Sleep below). Before the
	// defer, a killed holder leaked its slot and every later handoff on a
	// saturated budget parked forever.
	release := c.acquireTransferSlot()
	defer release()
	// The wait may have been long: revalidate the session and re-pick the
	// destination under current load before touching any pages.
	if inst.Dead() || !ctl.InstanceQuiescent(inst) {
		return nil, nil, false
	}
	if dst = c.handoffTarget(src); dst == nil {
		return c.denyHandoff(inst, src, api.ErrNoDecodeCapacity)
	}
	ni, pages, cost, err := ctl.HandoffSession(inst, dst.Ctl)
	if err != nil {
		return c.denyHandoff(inst, src, err)
	}
	// Hold the transfer slot for the modeled interconnect time: the budget
	// bounds concurrent wire occupancy, not merely concurrent setup.
	c.clock.Sleep(cost)
	c.Handoffs++
	c.HandoffPages += pages
	c.HandoffTime += cost
	src.HandoffsOut++
	dst.HandoffsIn++
	dst.Placements++
	c.logDecision("handoff: %s#%d replica=%d->%d pages=%d cost=%v",
		ni.Name, ni.ID, src.ID, dst.ID, pages, cost)
	return dst.Ctl, ni, true
}

// denyHandoff clears the pending mark (the session decodes in place) and
// records the denial.
func (c *Cluster) denyHandoff(inst *core.Instance, src *Replica, err error) (*core.Controller, *core.Instance, bool) {
	inst.HandoffPending = false
	c.HandoffDenied++
	c.logDecision("handoff denied: %s#%d replica=%d: %v", inst.Name, inst.ID, src.ID, err)
	return nil, nil, false
}

// handoffTarget picks the least-loaded healthy serving decode-eligible
// replica other than the source, or nil when none survives.
func (c *Cluster) handoffTarget(src *Replica) *Replica {
	var cands []*Replica
	for _, r := range c.replicas {
		if r != src && r.active && !r.draining && r.health == HealthHealthy && r.decodeEligible() {
			cands = append(cands, r)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return pickLeastLoaded(cands)
}

// handoffWaiter is one FIFO entry for a session queued on the transfer
// budget. The flags cover the two ways a waiter can die instead of
// transferring: abandoned marks a waiter killed while parked (its replica
// died), so release skips the ghost instead of handing it the slot; granted
// marks the hand-over instant, so a waiter killed between the grant and its
// wake-up knows it owns a slot it must pass on.
type handoffWaiter struct {
	s         *sim.Signal
	granted   bool
	abandoned bool
}

// acquireTransferSlot blocks until a transfer-budget slot frees, FIFO, and
// returns an idempotent release. Callers defer it so the slot survives no
// code path — including a Killed unwind while the session holds it.
func (c *Cluster) acquireTransferSlot() (release func()) {
	released := false
	release = func() {
		if released {
			return
		}
		released = true
		c.releaseTransferSlot()
	}
	if c.handoffActive < c.handoff.Budget {
		c.handoffActive++
		return release
	}
	w := &handoffWaiter{s: sim.NewSignal(c.clock)}
	c.handoffWaiters = append(c.handoffWaiters, w)
	c.HandoffQueued++
	acquired := false
	defer func() {
		if acquired {
			return
		}
		// Killed while queued: either the slot was never handed over (mark
		// the entry so release skips it) or it was granted in the instant
		// between hand-over and wake-up — then this waiter owns it and must
		// pass it on, or the budget shrinks by one forever.
		if w.granted {
			c.releaseTransferSlot()
		} else {
			w.abandoned = true
		}
	}()
	_ = sim.Await(w.s)
	acquired = true
	return release
}

// TransferBudgetState reports the transfer budget's occupancy: slots held
// plus waiters still eligible for a grant (abandoned entries — waiters
// that died while queued — are excluded). After every session resolves,
// both must be zero; tests use this as the no-leak invariant.
func (c *Cluster) TransferBudgetState() (active, liveWaiters int) {
	for _, w := range c.handoffWaiters {
		if !w.abandoned {
			liveWaiters++
		}
	}
	return c.handoffActive, liveWaiters
}

// releaseTransferSlot hands the slot to the first live waiter if any (the
// slot transfers: handoffActive stays constant), else frees it. Waiters
// that died while queued are dropped, not granted.
func (c *Cluster) releaseTransferSlot() {
	for len(c.handoffWaiters) > 0 {
		w := c.handoffWaiters[0]
		c.handoffWaiters = c.handoffWaiters[1:]
		if w.abandoned {
			continue
		}
		w.granted = true
		sim.Fire(w.s)
		return
	}
	c.handoffActive--
}
