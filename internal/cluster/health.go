package cluster

import (
	"time"

	"pie/api"
)

// Replica health: a monitor daemon ticks on the virtual clock and drives
// each replica through healthy → suspect → dead → replaced. Two failure
// signals feed it:
//
//   - Heartbeats. A crash-stopped replica goes silent; the monitor dates
//     the silence and escalates through SuspectAfter/DeadAfter.
//   - Progress. A hung replica keeps heartbeating but stops draining its
//     queues: outstanding inference work with no kernel completions. The
//     watchdog tolerates stalls up to HangTimeout (which must exceed the
//     worst-case kernel time, or busy replicas get shot).
//
// Death is handled, not just observed: every in-flight instance on the
// dead replica is aborted with api.ErrReplicaLost (waiters unpark typed
// instead of hanging; launches with a retry policy requeue onto
// survivors), its KV exports are declared lost, and a cold spare is
// activated as the replacement — which then pays cold-start placement
// exactly like any fresh replica.

// HealthState is a replica's position in the failure state machine.
type HealthState int

const (
	// HealthHealthy accepts placements and serves traffic (the zero value:
	// clusters without health checking stay healthy forever).
	HealthHealthy HealthState = iota
	// HealthSuspect missed heartbeats or stalled recently: avoided by
	// placement (used only when no healthy replica exists) but not yet
	// condemned. Recovers to healthy when signals resume.
	HealthSuspect
	// HealthDead is terminal: the replica is out of rotation, its work
	// aborted and exports dropped. Dead replicas never reactivate.
	HealthDead
)

func (s HealthState) String() string {
	switch s {
	case HealthHealthy:
		return "healthy"
	case HealthSuspect:
		return "suspect"
	case HealthDead:
		return "dead"
	}
	return "unknown"
}

// HealthConfig tunes the replica health monitor. The zero value disables
// it (every replica is immortal, the pre-fault-layer behavior).
type HealthConfig struct {
	Enabled bool
	// Interval is the monitor tick period (default 5ms).
	Interval time.Duration
	// SuspectAfter marks a silent replica suspect (default 10ms).
	SuspectAfter time.Duration
	// DeadAfter declares a silent replica dead (default 25ms).
	DeadAfter time.Duration
	// HangTimeout declares a heartbeating replica dead when it has had
	// outstanding inference work but zero kernel completions for this
	// long (default 250ms; keep it above the slowest plausible kernel).
	HangTimeout time.Duration
}

func (h HealthConfig) withDefaults() HealthConfig {
	if h.Interval <= 0 {
		h.Interval = 5 * time.Millisecond
	}
	if h.SuspectAfter <= 0 {
		h.SuspectAfter = 10 * time.Millisecond
	}
	if h.DeadAfter <= h.SuspectAfter {
		h.DeadAfter = 25 * time.Millisecond
		if h.DeadAfter <= h.SuspectAfter {
			h.DeadAfter = h.SuspectAfter * 2
		}
	}
	if h.HangTimeout <= 0 {
		h.HangTimeout = 250 * time.Millisecond
	}
	return h
}

// EnableHealth installs the health monitor. Call before Engine.Run.
func (c *Cluster) EnableHealth(cfg HealthConfig) {
	cfg.Enabled = true
	c.health = cfg.withDefaults()
	now := c.clock.Now()
	for _, r := range c.replicas {
		r.progressAt = now
	}
	c.clock.GoDaemon("cluster:health", func() {
		for {
			c.clock.Sleep(c.health.Interval)
			c.checkHealth()
		}
	})
}

// HealthEnabled reports whether the monitor is running.
func (c *Cluster) HealthEnabled() bool { return c.health.Enabled }

// checkHealth runs one monitor tick over every replica in ID order.
func (c *Cluster) checkHealth() {
	now := c.clock.Now()
	for _, r := range c.replicas {
		if r.health == HealthDead {
			continue
		}
		var silentSince, deadAfter, suspectAfter time.Duration
		if r.crashed {
			// Heartbeats stopped at the crash instant.
			silentSince = r.crashedAt
			suspectAfter = c.health.SuspectAfter
			deadAfter = c.health.DeadAfter
		} else {
			// Heartbeats fine; check queue progress. Progress means either
			// nothing is owed (idle replica) or kernels completed since the
			// last tick.
			k := r.Backend.Device.Kernels()
			if r.Ctl.OutstandingCalls() == 0 || k != r.lastKernels {
				r.lastKernels = k
				r.progressAt = now
				if r.health == HealthSuspect {
					r.health = HealthHealthy // stall cleared: back in rotation
				}
				continue
			}
			silentSince = r.progressAt
			suspectAfter = c.health.HangTimeout / 2
			deadAfter = c.health.HangTimeout
		}
		age := now - silentSince
		switch {
		case age >= deadAfter:
			c.declareDead(r, age)
		case age >= suspectAfter && r.health == HealthHealthy:
			r.health = HealthSuspect
			c.Suspects++
		}
	}
}

// declareDead executes the death protocol for one replica: out of
// rotation, in-flight work aborted typed, exports declared lost, and a
// cold spare activated as the replacement.
func (c *Cluster) declareDead(r *Replica, detect time.Duration) {
	r.health = HealthDead
	c.markInactive(r)
	// A hung replica's device is already frozen; freezing a slow or
	// healthy-looking one on the way out keeps it from completing work
	// after the cluster has given up on it.
	r.Backend.Device.Fail()
	// Unwind every in-flight inferlet with a typed error. Launches
	// carrying a retry policy requeue onto surviving replicas; the rest
	// surface api.ErrReplicaLost to their waiters instead of hanging.
	r.Evacuations += r.Ctl.AbortAllInstances(api.ErrReplicaLost)
	exports, pages := r.Ctl.DropExports()
	c.ExportsLost += exports
	c.PagesLost += pages
	c.ReplicasLost++
	c.DetectTime += detect
	// Replacement: bring in the lowest-ID cold spare. It arrives with an
	// empty artifact cache and empty pools, so its first placements pay
	// the cold-start pipeline — the same economics as autoscaler growth.
	for _, s := range c.replicas {
		if !s.active && s.health == HealthHealthy && !s.crashed {
			c.markActive(s)
			c.Replacements++
			break
		}
	}
}
