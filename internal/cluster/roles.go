package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// Prefill/decode disaggregation (the dominant production serving
// topology): replicas carry a Role, new launches route to prefill-eligible
// capacity, and on first-token completion a session's KV pages hand off to
// a decode replica over the modeled interconnect (handoff.go). A unified
// replica serves both phases — the zero value, so role-less clusters
// behave exactly as before.

// Role is a replica's serving phase assignment.
type Role int

const (
	// RoleUnified serves both prefill and decode (the default).
	RoleUnified Role = iota
	// RolePrefill serves new launches through their first token, then
	// hands the session off to decode capacity.
	RolePrefill
	// RoleDecode receives handed-off sessions and serves decode steps;
	// new launches never place here while prefill capacity lives.
	RoleDecode
)

func (r Role) String() string {
	switch r {
	case RolePrefill:
		return "prefill"
	case RoleDecode:
		return "decode"
	}
	return "unified"
}

// ParseRole resolves a role name (CLI flags, fleet specs).
func ParseRole(s string) (Role, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "unified", "both":
		return RoleUnified, nil
	case "prefill", "p":
		return RolePrefill, nil
	case "decode", "d":
		return RoleDecode, nil
	}
	return 0, fmt.Errorf("cluster: unknown replica role %q", s)
}

// prefillEligible reports whether new launches may place on the replica.
func (r *Replica) prefillEligible() bool { return r.Role != RoleDecode }

// decodeEligible reports whether handed-off sessions may land on the
// replica.
func (r *Replica) decodeEligible() bool { return r.Role != RolePrefill }

// RoleSpec assigns a role to a run of replicas in ID order (mirrors
// ReplicaVariant's Count convention).
type RoleSpec struct {
	Role Role
	// Count is how many replicas take this role, assigned in replica-ID
	// order; <= 0 means all remaining replicas.
	Count int
}

// ExpandRoles assigns a role to each of total replicas in ID order: each
// spec covers Count replicas (<= 0 meaning the remainder), and the last
// spec pads out the pool. An empty spec yields the unified default.
func ExpandRoles(roles []RoleSpec, total int) []Role {
	if len(roles) == 0 {
		roles = []RoleSpec{{}}
	}
	out := make([]Role, 0, total)
	for _, rs := range roles {
		n := rs.Count
		if n <= 0 || n > total-len(out) {
			n = total - len(out)
		}
		for i := 0; i < n; i++ {
			out = append(out, rs.Role)
		}
		if len(out) == total {
			break
		}
	}
	for len(out) < total {
		out = append(out, roles[len(roles)-1].Role)
	}
	return out
}

// ParseRoles parses a compact role-pool spec (CLI flags), piggybacking on
// the -variants syntax: semicolon-separated roles, each
// "role:key=value,...", e.g.
//
//	prefill:count=2;decode:count=6
//
// Keys: count (int replicas; the last role may omit it to cover the
// remainder).
func ParseRoles(spec string) ([]RoleSpec, error) {
	var out []RoleSpec
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, _ := strings.Cut(part, ":")
		role, err := ParseRole(name)
		if err != nil {
			return nil, err
		}
		rs := RoleSpec{Role: role}
		for _, kv := range strings.Split(rest, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, _ := strings.Cut(kv, "=")
			switch strings.TrimSpace(key) {
			case "count":
				rs.Count, err = strconv.Atoi(val)
			default:
				err = fmt.Errorf("unknown key %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("cluster: role %q: %v", role, err)
			}
		}
		out = append(out, rs)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty role spec %q", spec)
	}
	return out, nil
}
