package cluster

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// The SLO scaler replaces the queue-depth autoscaler with a
// saturation-guarded, cost-aware scaling loop. Each tick it:
//
//   - computes per-replica saturation — the max of KV-pool utilization,
//     normalized queue depth, and normalized in-flight prefill — and
//     averages it over healthy serving replicas;
//   - reads per-class SLO attainment over the recent sample window (the
//     sloTracker fed by live TTFT/ITL observations);
//   - scales up when saturation crosses SatHigh or a class misses its
//     attainment target under load, but never while a replica activated
//     inside the cold-start window is still warming (no cascade scale-up
//     on capacity that has not had a chance to absorb load yet);
//   - picks the cheapest hardware variant whose projected latency meets
//     the strictest class target (heterogeneous pools, llm-d style);
//   - scales down the most expensive replica when the fleet is both slack
//     and attaining, and drains the whole fleet to zero after sustained
//     idleness when ScaleToZero is set.
//
// Every decision appends one line to the cluster's decision log; same-seed
// runs produce byte-identical logs (the determinism test contract).

// ScalerConfig tunes the SLO scaler. The zero value disables it; enabling
// it replaces the queue-depth autoscaler.
type ScalerConfig struct {
	Enabled bool
	// Min and Max bound the serving replica count (defaults: 1 and the
	// replica set size). ScaleToZero may drain below Min when idle.
	Min, Max int
	// Interval is the evaluation period on the virtual clock (default 10ms).
	Interval time.Duration
	// SatHigh adds capacity when mean saturation reaches it (default 0.75);
	// SatLow removes capacity when saturation falls to it (default 0.20).
	SatHigh, SatLow float64
	// AttainTarget is the recent-window SLO attainment fraction below which
	// a class counts as missing (default 0.95).
	AttainTarget float64
	// QueueRef and PrefillRef normalize outstanding calls and in-flight
	// prefill tokens into saturation fractions (defaults 32 calls, 4096
	// tokens per replica).
	QueueRef, PrefillRef float64
	// ColdStartWindow holds further scale-up while any replica activated
	// within it is still warming — newly added capacity pays artifact
	// upload + JIT before it absorbs load, and scaling into that shadow
	// cascades (default 40ms).
	ColdStartWindow time.Duration
	// ScaleToZero drains the entire fleet (below Min) once the cluster has
	// been idle — no instances, no outstanding calls — for IdleAfter
	// (default 250ms). Placement revives a replica on the next launch.
	ScaleToZero bool
	IdleAfter   time.Duration
}

func (s ScalerConfig) withDefaults(total int) ScalerConfig {
	if s.Min <= 0 {
		s.Min = 1
	}
	if s.Max <= 0 || s.Max > total {
		s.Max = total
	}
	if s.Min > s.Max {
		s.Min = s.Max
	}
	if s.Interval <= 0 {
		s.Interval = 10 * time.Millisecond
	}
	if s.SatHigh <= 0 || s.SatHigh > 1 {
		s.SatHigh = 0.75
	}
	if s.SatLow <= 0 || s.SatLow >= s.SatHigh {
		s.SatLow = 0.20
		if s.SatLow >= s.SatHigh {
			s.SatLow = s.SatHigh / 2
		}
	}
	if s.AttainTarget <= 0 || s.AttainTarget > 1 {
		s.AttainTarget = 0.95
	}
	if s.QueueRef <= 0 {
		s.QueueRef = 32
	}
	if s.PrefillRef <= 0 {
		s.PrefillRef = 4096
	}
	if s.ColdStartWindow <= 0 {
		s.ColdStartWindow = 40 * time.Millisecond
	}
	if s.IdleAfter <= 0 {
		s.IdleAfter = 250 * time.Millisecond
	}
	return s
}

// EnableScaler installs the SLO scaler and starts its daemon. Call before
// Engine.Run; mutually exclusive with the queue-depth autoscaler (the
// engine config enforces that).
func (c *Cluster) EnableScaler(cfg ScalerConfig) {
	cfg.Enabled = true
	c.scaler = cfg.withDefaults(len(c.replicas))
	if c.slo == nil {
		c.slo = newSLOTracker(nil)
	}
	for _, r := range c.replicas {
		c.slo.noteVariant(r.Variant, r.speedFactor())
	}
	c.clock.GoDaemon("cluster:scaler", func() {
		for {
			c.clock.Sleep(c.scaler.Interval)
			c.scalerTick()
		}
	})
}

// ScalerEnabled reports whether the SLO scaler is running.
func (c *Cluster) ScalerEnabled() bool { return c.scaler.Enabled }

// replicaSaturation folds one replica's three load signals into a single
// fraction: the binding constraint governs (a full KV pool saturates a
// replica whose queue is short, and vice versa).
func (c *Cluster) replicaSaturation(r *Replica) float64 {
	inUse, capacity := r.Ctl.KVLoad()
	kv := 0.0
	if capacity > 0 {
		kv = float64(inUse) / float64(capacity)
	}
	queue := float64(r.Ctl.OutstandingCalls()) / c.scaler.QueueRef
	prefill := float64(r.Ctl.OutstandingPrefillTokens()) / c.scaler.PrefillRef
	sat := kv
	if queue > sat {
		sat = queue
	}
	if prefill > sat {
		sat = prefill
	}
	return sat
}

// scalerTick runs one scaling decision. All iteration is in replica-ID
// order and all class iteration in sorted-name order, so same-seed runs
// decide identically.
func (c *Cluster) scalerTick() {
	c.finishDrains()
	now := c.clock.Now()
	serving, warming := 0, 0
	var satSum float64
	var satByRole [3]float64
	var cntByRole [3]int
	var totByRole [3]int
	busy := false
	for _, r := range c.replicas {
		totByRole[r.Role]++
		// Busyness counts work anywhere — including draining replicas still
		// finishing instances — so scale-to-zero never fires on a fleet
		// whose remaining work happens to sit on a drain.
		if r.Ctl.Instances() > 0 || r.Ctl.OutstandingCalls() > 0 {
			busy = true
		}
		if !r.active || r.draining || r.health != HealthHealthy {
			continue
		}
		serving++
		rsat := c.replicaSaturation(r)
		satSum += rsat
		satByRole[r.Role] += rsat
		cntByRole[r.Role]++
		if now < r.warmUntil {
			warming++
		}
	}
	if busy {
		c.lastBusyAt = now
	}
	if serving == 0 {
		// No healthy serving replica anywhere — the fleet-mean denominator
		// is empty. With work still owed this is an outage, not idleness:
		// attempt recovery scale-up instead of silently returning until the
		// load drains into timeouts. (Spares are usually activated by the
		// death protocol; this covers crashes outrunning it, e.g. every
		// serving replica draining or dead within one tick.)
		if busy && c.scaler.Max > 0 {
			c.scaleUpCostAware("sat=n/a fleet has no serving replica", RoleUnified)
		}
		return
	}
	sat := satSum / float64(serving)
	starved := RoleUnified
	if c.hasRoles {
		// Disaggregated pools: the fleet mean hides a starving phase (two
		// idle decode replicas average away a saturated prefill pool), so
		// scale on the hungriest role's mean and grow that role.
		sat, starved = starvedRoleSat(busy, satByRole, cntByRole, totByRole)
	}
	missClass, missAtt := "", 1.0
	if busy && sat > c.scaler.SatLow {
		// Attainment only drives scaling when the fleet is actually
		// loaded: a stale window of misses from a past burst must not pin
		// an idle fleet up, and misses on an unsaturated fleet (intrinsic
		// prompt latency) are not a capacity problem money can fix.
		missClass, missAtt = c.slo.worstRecent(c.scaler.AttainTarget)
	}
	// Scale-down hysteresis: one quiet tick between bursts must not shed
	// a replica the next tick will claw back (and pay a cold start for).
	if sat <= c.scaler.SatLow && missClass == "" {
		c.lowSatTicks++
	} else {
		c.lowSatTicks = 0
	}
	switch {
	case (sat >= c.scaler.SatHigh || missClass != "") && serving < c.scaler.Max:
		reason := fmt.Sprintf("sat=%.2f", sat)
		if c.hasRoles {
			reason = fmt.Sprintf("sat=%.2f role=%s", sat, starved)
		}
		if missClass != "" {
			reason = fmt.Sprintf("%s class=%s att=%.2f", reason, missClass, missAtt)
		}
		if warming > 0 {
			c.logDecision("hold scale-up: %d replica(s) inside cold-start window (%s)", warming, reason)
			return
		}
		c.scaleUpCostAware(reason, starved)
	case c.scaler.ScaleToZero && !busy && now-c.lastBusyAt >= c.scaler.IdleAfter:
		drained := 0
		for _, r := range c.replicas {
			if r.active && !r.draining && r.health == HealthHealthy {
				r.draining = true
				c.DrainStart++
				drained++
			}
		}
		if drained > 0 {
			c.ScaleToZeroEvents++
			c.logDecision("scale-to-zero: drained %d idle replica(s) after %v idle", drained, now-c.lastBusyAt)
		}
	case c.lowSatTicks >= scaleDownPatience && serving > c.scaler.Min:
		c.scaleDownCostAware(sat)
	}
}

// starvedRoleSat folds per-role saturation into the scaling signal for a
// disaggregated fleet: the hungriest role's mean governs. A role with
// replicas assigned (totByRole > 0) but none healthy-and-serving
// (cntByRole == 0) while the fleet is busy counts as fully saturated, not
// absent — its phase's demand cannot shift to the other pool, so the mean
// over zero replicas must read as starvation, never as zero. (Before this
// guard, an all-dead prefill pool averaged away against idle decode
// replicas and the scaler never replaced it.) An empty role on an idle
// fleet stays invisible: scale-to-zero drains must not re-trigger growth.
func starvedRoleSat(busy bool, satByRole [3]float64, cntByRole, totByRole [3]int) (sat float64, starved Role) {
	starved = RoleUnified
	for i, cnt := range cntByRole {
		switch {
		case cnt > 0:
			if m := satByRole[i] / float64(cnt); m > sat {
				sat, starved = m, Role(i)
			}
		case busy && totByRole[i] > 0 && sat < 1:
			sat, starved = 1, Role(i)
		}
	}
	return sat, starved
}

// scaleUpCostAware adds one replica: first un-drain a still-warm draining
// replica, else activate an inactive spare. Candidates order by (cost rate
// ascending, ID ascending) among variants whose projected latency meets
// the strictest class target; when no variant qualifies, the fastest one
// is taken — an SLO miss wants the best hardware available, whatever it
// costs. With roles assigned, spares matching the starved role are
// preferred (growing decode when prefill starves just moves the queue),
// falling back to any spare when that role has none left.
func (c *Cluster) scaleUpCostAware(reason string, prefer Role) {
	pick := func(eligible func(*Replica) bool) *Replica {
		var best *Replica
		bestQualifies := false
		for _, r := range c.replicas {
			if !eligible(r) {
				continue
			}
			q := c.variantMeetsTargets(r)
			switch {
			case best == nil:
				best, bestQualifies = r, q
			case q && !bestQualifies:
				best, bestQualifies = r, true
			case q == bestQualifies && c.cheaperOrFaster(r, best, q):
				best = r
			}
		}
		return best
	}
	pickRoleAware := func(eligible func(*Replica) bool) *Replica {
		if c.hasRoles {
			if r := pick(func(r *Replica) bool { return eligible(r) && r.Role == prefer }); r != nil {
				return r
			}
		}
		return pick(eligible)
	}
	if r := pickRoleAware(func(r *Replica) bool {
		return r.active && r.draining && r.health == HealthHealthy
	}); r != nil {
		c.markActive(r)
		c.ScaleUps++
		c.logDecision("scale-up: un-drain replica=%d variant=%s (%s)", r.ID, r.variantName(), reason)
		return
	}
	if r := pickRoleAware(func(r *Replica) bool {
		return !r.active && r.health == HealthHealthy && !r.crashed
	}); r != nil {
		c.markActive(r)
		c.ScaleUps++
		c.logDecision("scale-up: activate replica=%d variant=%s cost=%.2f (%s)", r.ID, r.variantName(), r.costRate(), reason)
	}
}

// cheaperOrFaster orders two candidates of equal qualification: qualifying
// candidates compete on price (cheapest first), non-qualifying ones on
// speed (fastest first); ties break by lowest ID.
func (c *Cluster) cheaperOrFaster(r, best *Replica, qualifies bool) bool {
	if qualifies {
		if r.costRate() != best.costRate() {
			return r.costRate() < best.costRate()
		}
	} else {
		if r.speedFactor() != best.speedFactor() {
			return r.speedFactor() < best.speedFactor()
		}
	}
	return r.ID < best.ID
}

// variantMeetsTargets projects the replica's variant latency against the
// strictest registered class targets.
func (c *Cluster) variantMeetsTargets(r *Replica) bool {
	if c.slo == nil {
		return true
	}
	ttftTarget, itlTarget := c.slo.strictestTargets()
	if ttftTarget == 0 && itlTarget == 0 {
		return true
	}
	estTTFT, estITL := c.slo.estimate(r.Variant, r.speedFactor())
	if ttftTarget > 0 && estTTFT > ttftTarget {
		return false
	}
	if itlTarget > 0 && estITL > itlTarget {
		return false
	}
	return true
}

// scaleDownCostAware drains the most expensive healthy serving replica
// (ties break by highest ID — mirror of activation order). With roles
// assigned, the victim comes from the slackest role that still has more
// than one serving replica — draining a role's last replica would strand
// its phase (prefill: no placements; decode: every handoff denied).
func (c *Cluster) scaleDownCostAware(sat float64) {
	victim := c.scaleDownVictim(nil)
	if c.hasRoles {
		var satByRole [3]float64
		var cntByRole [3]int
		for _, r := range c.replicas {
			if r.active && !r.draining && r.health == HealthHealthy {
				satByRole[r.Role] += c.replicaSaturation(r)
				cntByRole[r.Role]++
			}
		}
		slack, slackSat, found := RoleUnified, 0.0, false
		for i, cnt := range cntByRole {
			if cnt <= 1 {
				continue
			}
			if m := satByRole[i] / float64(cnt); !found || m < slackSat {
				slack, slackSat, found = Role(i), m, true
			}
		}
		if !found {
			return // every role is down to its last serving replica
		}
		victim = c.scaleDownVictim(func(r *Replica) bool { return r.Role == slack })
	}
	if victim == nil {
		return
	}
	victim.draining = true
	c.DrainStart++
	c.logDecision("scale-down: drain replica=%d variant=%s cost=%.2f sat=%.2f", victim.ID, victim.variantName(), victim.costRate(), sat)
}

// scaleDownVictim picks the most expensive healthy serving replica
// matching the predicate (nil admits all), ties by highest ID.
func (c *Cluster) scaleDownVictim(eligible func(*Replica) bool) *Replica {
	var victim *Replica
	for _, r := range c.replicas {
		if !r.active || r.draining || r.health != HealthHealthy {
			continue
		}
		if eligible != nil && !eligible(r) {
			continue
		}
		if victim == nil || r.costRate() > victim.costRate() ||
			(r.costRate() == victim.costRate() && r.ID > victim.ID) {
			victim = r
		}
	}
	return victim
}

// --- Heterogeneous variants ---------------------------------------------

// ReplicaVariant describes one hardware class in a heterogeneous replica
// pool (llm-d's Accelerator: a name, a unit cost, and a relative speed).
type ReplicaVariant struct {
	// Name labels the variant; replica devices are named "<name>-<id>".
	Name string
	// CostRate is the cost-units-per-second price of keeping one replica
	// of this variant active (default 1).
	CostRate float64
	// Slowdown multiplies every kernel cost relative to the reference
	// device (1 = reference speed, 2 = half speed; default 1).
	Slowdown float64
	// Count is how many replicas take this variant, assigned in replica-ID
	// order; <= 0 means all remaining replicas.
	Count int
}

func (v ReplicaVariant) withDefaults() ReplicaVariant {
	if v.Name == "" {
		v.Name = "l4"
	}
	if v.CostRate <= 0 {
		v.CostRate = 1
	}
	if v.Slowdown < 1 {
		v.Slowdown = 1
	}
	return v
}

// ExpandVariants assigns a variant to each of total replicas in ID order:
// each variant covers Count replicas (<= 0 meaning the remainder), and the
// last variant pads out the pool. An empty spec yields the default
// homogeneous pool.
func ExpandVariants(variants []ReplicaVariant, total int) []ReplicaVariant {
	if len(variants) == 0 {
		variants = []ReplicaVariant{{}}
	}
	out := make([]ReplicaVariant, 0, total)
	for _, v := range variants {
		v = v.withDefaults()
		n := v.Count
		if n <= 0 || n > total-len(out) {
			n = total - len(out)
		}
		for i := 0; i < n; i++ {
			out = append(out, v)
		}
		if len(out) == total {
			break
		}
	}
	for len(out) < total {
		out = append(out, variants[len(variants)-1].withDefaults())
	}
	return out
}

// ParseReplicaVariants parses a compact heterogeneous-pool spec (CLI
// flags): semicolon-separated variants, each "name:key=value,...", e.g.
//
//	l4:cost=1,count=4;l4e:cost=0.6,slow=1.4
//
// Keys: cost (float units/sec), slow (float kernel multiplier), count
// (int replicas; the last variant may omit it to cover the remainder).
func ParseReplicaVariants(spec string) ([]ReplicaVariant, error) {
	var out []ReplicaVariant
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, _ := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("cluster: replica variant with empty name in %q", part)
		}
		v := ReplicaVariant{Name: name}
		for _, kv := range strings.Split(rest, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, _ := strings.Cut(kv, "=")
			var err error
			switch strings.TrimSpace(key) {
			case "cost":
				v.CostRate, err = strconv.ParseFloat(val, 64)
			case "slow", "slowdown":
				v.Slowdown, err = strconv.ParseFloat(val, 64)
			case "count":
				v.Count, err = strconv.Atoi(val)
			default:
				err = fmt.Errorf("unknown key %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("cluster: replica variant %q: %v", name, err)
			}
		}
		out = append(out, v.withDefaults())
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty replica-variant spec %q", spec)
	}
	return out, nil
}

// --- Cost accounting and the decision log -------------------------------

// scaleDownPatience is how many consecutive below-SatLow ticks the scaler
// waits before shedding capacity — cold starts make scale-down much more
// expensive to regret than to delay.
const scaleDownPatience = 3

// maxDecisions bounds the decision log (it exists for the determinism
// tests and post-mortems, not as an unbounded trace).
const maxDecisions = 4096

// logDecision appends one line to the scale/degrade/shed decision log.
func (c *Cluster) logDecision(format string, args ...any) {
	if len(c.Decisions) >= maxDecisions {
		return
	}
	c.Decisions = append(c.Decisions, fmt.Sprintf("t=%v ", c.now())+fmt.Sprintf(format, args...))
}

// now is the cluster's virtual time, zero for clockless unit-test
// clusters (which never run daemons).
func (c *Cluster) now() time.Duration {
	if c.clock == nil {
		return 0
	}
	return c.clock.Now()
}

// markActive (re)activates a replica for placement, stamping cost and
// cold-start bookkeeping. Un-draining keeps the original activation epoch:
// the replica never stopped costing.
func (c *Cluster) markActive(r *Replica) {
	if !r.active {
		r.activeSince = c.now()
		r.warmUntil = r.activeSince + c.scaler.ColdStartWindow
	}
	r.active, r.draining = true, false
}

// markInactive retires a replica from the serving set, folding its active
// span into the cost accumulator.
func (c *Cluster) markInactive(r *Replica) {
	if r.active {
		r.activeAccum += c.now() - r.activeSince
	}
	r.active, r.draining = false, false
}

// activeFor reports the replica's cumulative active time as of now.
func (r *Replica) activeFor(now time.Duration) time.Duration {
	d := r.activeAccum
	if r.active {
		d += now - r.activeSince
	}
	return d
}

// costRate reports the replica's price per active second (default 1 for
// replicas built without a variant).
func (r *Replica) costRate() float64 {
	if r.CostRate > 0 {
		return r.CostRate
	}
	return 1
}

// speedFactor reports the variant's kernel slowdown (>= 1).
func (r *Replica) speedFactor() float64 {
	if r.SpeedFactor > 1 {
		return r.SpeedFactor
	}
	return 1
}

func (r *Replica) variantName() string {
	if r.Variant != "" {
		return r.Variant
	}
	return "l4"
}

// CostUnits reports the fleet's cumulative cost: each replica's cost rate
// times its active seconds, as of now. The baseline autoscaler and the SLO
// scaler are priced identically, so legs compare.
func (c *Cluster) CostUnits(now time.Duration) float64 {
	var units float64
	for _, r := range c.replicas {
		units += r.costRate() * r.activeFor(now).Seconds()
	}
	return units
}
