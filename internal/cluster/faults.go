package cluster

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"pie/api"
	"pie/internal/sim"
)

// Fault injection: a deterministic, seeded fault plan the cluster replays
// against its replicas. Three replica-level fault kinds plus a transient
// per-launch failure rate; everything is driven by the virtual clock and a
// splitmix64 stream, so the same plan and seed reproduce byte-identical
// runs — the property every chaos test in this repo asserts.

// FaultKind names one replica-level fault.
type FaultKind int

const (
	// FaultCrash crash-stops a replica: its device dies mid-kernel and its
	// heartbeats stop, so the health monitor sees it quickly (DeadAfter).
	FaultCrash FaultKind = iota
	// FaultHang freezes a replica's device without failing its heartbeats:
	// queues stop draining while the replica still looks alive, so only
	// the progress watchdog (HangTimeout) catches it.
	FaultHang
	// FaultSlow degrades a replica: every kernel costs Factor times its
	// modeled price. The replica stays healthy — slow is a gray failure
	// the load-aware placement routes around, not a death.
	FaultSlow
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultHang:
		return "hang"
	case FaultSlow:
		return "slow"
	}
	return "unknown"
}

// FaultEvent schedules one replica fault at a virtual instant.
type FaultEvent struct {
	At      time.Duration
	Replica int
	Kind    FaultKind
	Factor  float64 // FaultSlow: kernel cost multiplier (default 4)
}

func (e FaultEvent) String() string {
	s := fmt.Sprintf("%s:%d@%v", e.Kind, e.Replica, e.At)
	if e.Kind == FaultSlow {
		s += fmt.Sprintf("*%g", e.Factor)
	}
	return s
}

// FaultPlan is a deterministic failure schedule. The zero value injects
// nothing.
type FaultPlan struct {
	// Events are replica faults applied at their virtual times.
	Events []FaultEvent
	// CallFailRate injects a transient, retryable failure
	// (api.ErrTransientFault) into launch admission with this probability.
	CallFailRate float64
	// Seed drives the transient-failure stream (and nothing else: Events
	// are explicit). Zero is a valid seed.
	Seed uint64
}

// Empty reports whether the plan injects nothing.
func (p FaultPlan) Empty() bool { return len(p.Events) == 0 && p.CallFailRate <= 0 }

// String renders the plan in ParseFaultPlan syntax.
func (p FaultPlan) String() string {
	parts := make([]string, 0, len(p.Events))
	for _, e := range p.Events {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, ",")
}

// ParseFaultPlan parses a compact fault-plan spec: comma-separated events
// of the form "kind:replica@time" with an optional "*factor" suffix for
// slow events, e.g. "crash:1@200ms,hang:2@300ms,slow:3@100ms*4". An empty
// spec is an empty plan.
func ParseFaultPlan(spec string) (FaultPlan, error) {
	var plan FaultPlan
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return plan, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(part, ":")
		if !ok {
			return plan, fmt.Errorf("cluster: fault event %q: want kind:replica@time", part)
		}
		var kind FaultKind
		switch strings.ToLower(kindStr) {
		case "crash":
			kind = FaultCrash
		case "hang":
			kind = FaultHang
		case "slow":
			kind = FaultSlow
		default:
			return plan, fmt.Errorf("cluster: fault event %q: unknown kind %q", part, kindStr)
		}
		repStr, rest, ok := strings.Cut(rest, "@")
		if !ok {
			return plan, fmt.Errorf("cluster: fault event %q: missing @time", part)
		}
		replica, err := strconv.Atoi(repStr)
		if err != nil || replica < 0 {
			return plan, fmt.Errorf("cluster: fault event %q: bad replica %q", part, repStr)
		}
		factor := 4.0
		if atStr, facStr, has := strings.Cut(rest, "*"); has {
			rest = atStr
			factor, err = strconv.ParseFloat(facStr, 64)
			if err != nil || factor <= 0 {
				return plan, fmt.Errorf("cluster: fault event %q: bad factor %q", part, facStr)
			}
		}
		at, err := time.ParseDuration(rest)
		if err != nil || at < 0 {
			return plan, fmt.Errorf("cluster: fault event %q: bad time %q", part, rest)
		}
		plan.Events = append(plan.Events, FaultEvent{At: at, Replica: replica, Kind: kind, Factor: factor})
	}
	return plan, nil
}

// RandomFaultPlan derives a seeded random kill/hang/slow schedule for
// chaos tests: n events over (0, window], uniformly mixing crashes, hangs,
// and slowdowns across replicas 1..replicas-1. Replica 0 is never faulted,
// so at least one survivor can absorb requeued work and the workload can
// always finish. The same seed yields the same plan.
func RandomFaultPlan(seed uint64, replicas, n int, window time.Duration) FaultPlan {
	plan := FaultPlan{Seed: seed}
	if replicas < 2 || n <= 0 || window <= 0 {
		return plan
	}
	rng := sim.NewRNG(seed ^ 0xFA17)
	for i := 0; i < n; i++ {
		ev := FaultEvent{
			At:      time.Duration(rng.Range(1, int(window/time.Millisecond))) * time.Millisecond,
			Replica: rng.Range(1, replicas-1),
			Factor:  2 + 3*rng.Float64(),
		}
		switch rng.Intn(3) {
		case 0:
			ev.Kind = FaultCrash
		case 1:
			ev.Kind = FaultHang
		default:
			ev.Kind = FaultSlow
		}
		plan.Events = append(plan.Events, ev)
	}
	sortFaultEvents(plan.Events)
	return plan
}

func sortFaultEvents(events []FaultEvent) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
}

// InjectFaults installs a fault plan on the cluster: a daemon replays the
// replica events on the virtual clock, and launch admission consults the
// transient-failure stream. Call before Engine.Run. A plan referencing
// replicas outside the set is rejected.
func (c *Cluster) InjectFaults(plan FaultPlan) error {
	for _, ev := range plan.Events {
		if ev.Replica < 0 || ev.Replica >= len(c.replicas) {
			return fmt.Errorf("cluster: fault event %v targets replica %d of %d", ev, ev.Replica, len(c.replicas))
		}
	}
	c.faults = plan
	if plan.CallFailRate > 0 {
		c.faultRNG = sim.NewRNG(plan.Seed ^ 0x7FA4)
	}
	if len(plan.Events) > 0 {
		events := append([]FaultEvent(nil), plan.Events...)
		sortFaultEvents(events)
		c.clock.GoDaemon("cluster:fault-injector", func() {
			for _, ev := range events {
				if wait := ev.At - c.clock.Now(); wait > 0 {
					c.clock.Sleep(wait)
				}
				c.applyFault(ev)
			}
		})
	}
	return nil
}

// applyFault injects one replica fault now.
func (c *Cluster) applyFault(ev FaultEvent) {
	r := c.replicas[ev.Replica]
	switch ev.Kind {
	case FaultCrash:
		// Device dies and heartbeats stop: the health monitor dates the
		// silence from this instant.
		r.crashed = true
		r.crashedAt = c.clock.Now()
		r.Backend.Device.Fail()
	case FaultHang:
		// Device freezes but the replica keeps answering heartbeats; only
		// the progress watchdog can tell.
		r.Backend.Device.Fail()
	case FaultSlow:
		factor := ev.Factor
		if factor <= 0 {
			factor = 4
		}
		r.slowdown = factor
		r.Backend.Device.SetSlowdown(factor)
	}
	c.FaultsInjected++
}

// LaunchFault consults the transient-failure stream for one launch
// attempt. The ILM calls it (via the optional ilm.FaultSource interface)
// once per attempt, in deterministic launch order, so the stream replays
// identically under the same seed. Returns api.ErrTransientFault on an
// injected failure.
func (c *Cluster) LaunchFault() error {
	if c.faultRNG == nil || c.faults.CallFailRate <= 0 {
		return nil
	}
	if c.faultRNG.Float64() < c.faults.CallFailRate {
		c.TransientFaults++
		return fmt.Errorf("%w: injected launch failure", api.ErrTransientFault)
	}
	return nil
}
