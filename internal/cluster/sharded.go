package cluster

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"pie/api"
	"pie/inferlet"
	"pie/internal/core"
	"pie/internal/ilm"
	"pie/internal/infer"
	"pie/internal/model"
	"pie/internal/netsim"
	"pie/internal/sim"
)

// Sharded cluster serving: one event loop per replica.
//
// The shared-clock Cluster serializes the whole fleet through a single
// event heap, which caps experiments at single-digit replica counts. A
// ShardedCluster instead gives every replica its own sim.Clock on its own
// shard — a full serving stack (catalog, backend, controller, ILM) that
// never shares mutable state with any other shard — and runs a router on
// shard 0. All cross-replica interactions are timestamped messages over
// the conservative time-window barrier (sim.ShardGroup):
//
//   - placement: the router picks the least-loaded serving replica and
//     sends the launch; the replica runs it locally and sends the
//     completion back;
//   - health: replicas heartbeat the router (daemon messages, so an idle
//     fleet still terminates); silence past DeadAfter declares the replica
//     dead, requeues its in-flight launches onto survivors, and activates
//     a cold spare;
//   - KV handoff (prefill/decode roles): a prefill completion returns to
//     the router, which charges the modeled interconnect transfer under a
//     FIFO budget and forwards a decode continuation to a decode replica;
//   - export migration: a drain asks the replica to surrender its KV
//     exports; the counts travel back as a message and the replica
//     returns to the spare pool.
//
// Replicas within a window run in parallel (bounded by GOMAXPROCS); the
// barrier injects messages in (time, source shard, sequence) order, so
// same-seed runs are byte-identical at any parallelism.
//
// Modeling simplifications, chosen so the protocol stays message-pure:
// message latencies round up to the window edge; a decode continuation
// replays the prompt on the decode replica with the remaining token
// budget (the KV transfer is charged explicitly at the router, not
// replayed page-by-page); transfer size is synthesized from the prompt
// length. Replicas execute in timing mode (infer.ExecTiming).

// ShardedConfig parameterizes a sharded fleet.
type ShardedConfig struct {
	// Seed drives every per-replica random stream. Same seed, same run.
	Seed uint64
	// Replicas is the number of replica shards (each its own event loop).
	Replicas int
	// Active is how many replicas serve initially; the rest are cold
	// spares the router activates on failure or load. 0 = all serve.
	Active int
	// Window is the barrier width (default 250µs). Cross-shard latencies
	// shorter than the window round up to the next edge.
	Window time.Duration
	// NetLatency is the router<->replica message latency (default Window).
	NetLatency time.Duration
	// Roles assigns serving phases across replicas in ID order, exactly as
	// Config.Roles. Any non-unified role arms prefill->decode handoff.
	Roles []RoleSpec
	// TransferBudget bounds concurrent prefill->decode KV transfers at the
	// router (default 2); excess transfers queue FIFO.
	TransferBudget int
	// Heartbeat is the replica beat period (default 1ms).
	Heartbeat time.Duration
	// DeadAfter is beat silence before the router declares a replica dead
	// (default 5x Heartbeat; must exceed Heartbeat + 2x NetLatency).
	DeadAfter time.Duration
	// ScaleEvery enables the router's load scaler at this period (0 =
	// disabled): mean outstanding per serving replica above ScaleUpAt
	// activates a spare; below ScaleDownAt it drains an idle replica,
	// migrating its exports.
	ScaleEvery  time.Duration
	ScaleUpAt   float64
	ScaleDownAt float64
	// Faults replays a deterministic failure schedule against the
	// replicas. Crash stops the replica silently (work lost, health layer
	// recovers); hang silences it without stopping local work; slow
	// degrades its kernels. CallFailRate injects transient launch faults
	// replica-side.
	Faults FaultPlan
}

func (c ShardedConfig) withDefaults() ShardedConfig {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Active <= 0 || c.Active > c.Replicas {
		c.Active = c.Replicas
	}
	if c.Window <= 0 {
		c.Window = 250 * time.Microsecond
	}
	if c.NetLatency <= 0 {
		c.NetLatency = c.Window
	}
	if c.TransferBudget <= 0 {
		c.TransferBudget = 2
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Millisecond
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 5 * c.Heartbeat
	}
	if min := c.Heartbeat + 2*c.NetLatency + c.Window; c.DeadAfter < min {
		c.DeadAfter = min
	}
	return c
}

// ShardedResult is the client-visible outcome of one sharded launch.
type ShardedResult struct {
	Err          error
	Replica      int // replica that finished the session (decode side in PD)
	OutputTokens int
	TTFT         time.Duration // prefill completion in PD mode, else latency
	Latency      time.Duration
	Requeued     bool // survived at least one replica death
}

// launch phases for pending work.
const (
	phaseUnified = iota // single launch end to end
	phasePrefill        // PD: first-token pass, max_tokens=1
	phaseDecode         // PD: continuation after the KV transfer
)

// inflight is the router's record of one submitted session. Only router
// processes touch it.
type inflight struct {
	id       uint64
	program  string
	args     []string       // original launch args
	params   map[string]any // decoded params (PD rewriting); nil otherwise
	maxTok   int
	prompt   string
	phase    int
	replica  int
	submitAt time.Duration
	ttft     time.Duration
	requeued bool
	fut      *sim.Future[ShardedResult]
}

// shardedReplica is one replica shard's serving stack. Only processes on
// its own clock touch its fields; the router reaches it exclusively
// through messages.
type shardedReplica struct {
	idx     int // replica index; shard index is idx+1
	shard   *sim.Shard
	clock   *sim.Clock
	backend *infer.Backend
	ctl     *core.Controller
	ilm     *ilm.ILM
	silent  bool // crash/hang: every outbound message is dropped
	netLat  time.Duration
	sc      *ShardedCluster

	faultRNG *sim.RNG // transient launch faults (CallFailRate)
	failRate float64

	// Replica-owned counters, summed by Stats after Run.
	FaultsInjected  int
	TransientFaults int
}

// Place implements ilm.Placer: every launch lands on the local controller.
func (r *shardedReplica) Place(program, artifact string, args []string) (*core.Controller, error) {
	if r.silent {
		return nil, api.ErrReplicaLost
	}
	return r.ctl, nil
}

// LaunchFault implements ilm.FaultSource for replica-local transient
// faults, drawn from a per-replica deterministic stream.
func (r *shardedReplica) LaunchFault() error {
	if r.failRate <= 0 {
		return nil
	}
	if r.faultRNG.Float64() < r.failRate {
		r.TransientFaults++
		return api.ErrTransientFault
	}
	return nil
}

// replicaView is the router's belief about one replica.
type replicaView struct {
	role        Role
	serving     bool
	dead        bool
	lastBeat    time.Duration
	outstanding int // launches routed there and not yet answered
}

// ShardedCluster is a router plus N replica shards on a conservative
// time-window barrier. Build with NewSharded, Register programs, spawn
// clients with Go (Submit from inside them), then Run.
type ShardedCluster struct {
	cfg    ShardedConfig
	group  *sim.ShardGroup
	router *sim.Shard
	rclock *sim.Clock
	reps   []*shardedReplica
	pd     bool

	// Router-owned state (shard 0 processes only).
	views   []replicaView
	pending map[uint64]*inflight
	nextID  uint64

	xferActive  int
	xferWaiters []*handoffWaiter

	// Router-owned counters, read via Stats after Run.
	Launches        int
	Completions     int
	Failures        int
	OutputTokens    int
	Requeues        int
	ReplicasLost    int
	Replacements    int
	Handoffs        int
	HandoffQueued   int
	HandoffDenied   int
	TransferTime    time.Duration
	ExportsMigrated int
	PagesMigrated   int
	ScaleUps        int
	ScaleDowns      int
	ttftSum         time.Duration
	latSum          time.Duration
}

// NewSharded assembles a sharded fleet: shard 0 is the router, shards
// 1..Replicas each hold a full serving stack built from a private model
// catalog, so no mutable state crosses a shard boundary.
func NewSharded(cfg ShardedConfig) *ShardedCluster {
	cfg = cfg.withDefaults()
	g := sim.NewShardGroup(cfg.Window, cfg.Replicas+1)
	sc := &ShardedCluster{
		cfg:     cfg,
		group:   g,
		router:  g.Shard(0),
		rclock:  g.Shard(0).Clock(),
		pending: make(map[uint64]*inflight),
	}
	roles := ExpandRoles(cfg.Roles, cfg.Replicas)
	for _, ro := range roles {
		if ro != RoleUnified {
			sc.pd = true
			break
		}
	}
	sc.views = make([]replicaView, cfg.Replicas)
	sc.reps = make([]*shardedReplica, cfg.Replicas)
	for i := 0; i < cfg.Replicas; i++ {
		shard := g.Shard(i + 1)
		clock := shard.Clock()
		cat := model.StandardCatalog(cfg.Seed)
		var rts []*infer.ModelRuntime
		for _, name := range cat.Names() {
			m, _ := cat.Get(name)
			rts = append(rts, infer.NewModelRuntime(m, infer.ExecTiming))
		}
		backend := infer.NewBackend(clock, fmt.Sprintf("shard-%d", i))
		ctl := core.NewController(clock, backend, rts, core.DefaultSchedConfig(),
			core.OffloadConfig{}, core.ArtifactConfig{})
		r := &shardedReplica{
			idx: i, shard: shard, clock: clock,
			backend: backend, ctl: ctl,
			netLat: cfg.NetLatency, sc: sc,
			faultRNG: sim.NewRNG(cfg.Faults.Seed ^ (uint64(i+1) * 0x9E3779B97F4A7C15)),
			failRate: cfg.Faults.CallFailRate,
		}
		r.ilm = ilm.New(clock, r, netsim.NewWorld(clock), ctl.ModelInfos())
		sc.reps[i] = r
		sc.views[i] = replicaView{role: roles[i], serving: i < cfg.Active}
		sc.startReplicaDaemons(r)
	}
	sc.rclock.GoDaemon("router:health", sc.healthLoop)
	if cfg.ScaleEvery > 0 {
		sc.rclock.GoDaemon("router:scaler", sc.scalerLoop)
	}
	return sc
}

// startReplicaDaemons installs the heartbeat and fault-schedule daemons on
// a replica's clock.
func (sc *ShardedCluster) startReplicaDaemons(r *shardedReplica) {
	hb := sc.cfg.Heartbeat
	r.clock.GoDaemon("beat", func() {
		for {
			if !r.silent {
				i := r.idx
				r.shard.SendDaemon(0, "beat", r.netLat, func() {
					// Same-source messages deliver in send order, so
					// arrival time is monotone per replica.
					sc.views[i].lastBeat = sc.rclock.Now()
				})
			}
			r.clock.Sleep(hb)
		}
	})
	var evs []FaultEvent
	for _, ev := range sc.cfg.Faults.Events {
		if ev.Replica == r.idx {
			evs = append(evs, ev)
		}
	}
	if len(evs) == 0 {
		return
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	r.clock.GoDaemon("faults", func() {
		for _, ev := range evs {
			if d := ev.At - r.clock.Now(); d > 0 {
				r.clock.Sleep(d)
			}
			r.FaultsInjected++
			switch ev.Kind {
			case FaultCrash:
				// Crash-stop: the device dies, in-flight sessions abort
				// typed, and the replica goes permanently silent. The
				// router's health scan recovers the lost work.
				r.silent = true
				r.backend.Device.Fail()
				r.ctl.AbortAllInstances(api.ErrReplicaLost)
				return
			case FaultHang:
				// Gray failure: local work keeps running but no message —
				// beat or completion — ever leaves again.
				r.silent = true
				return
			case FaultSlow:
				f := ev.Factor
				if f <= 1 {
					f = 4
				}
				r.backend.Device.SetSlowdown(f)
			}
		}
	})
}

// Register deploys programs into every replica's lifecycle manager. Call
// before Run.
func (sc *ShardedCluster) Register(progs ...inferlet.Program) error {
	for _, p := range progs {
		for _, r := range sc.reps {
			if err := r.ilm.Register(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// Go spawns a client process on the router shard's clock.
func (sc *ShardedCluster) Go(name string, fn func()) { sc.rclock.Go(name, fn) }

// Run drives every shard to completion (see sim.ShardGroup.Run).
func (sc *ShardedCluster) Run() error { return sc.group.Run() }

// Now returns the router's virtual time.
func (sc *ShardedCluster) Now() time.Duration { return sc.rclock.Now() }

// Sleep suspends the calling router process.
func (sc *ShardedCluster) Sleep(d time.Duration) { sc.rclock.Sleep(d) }

// Submit launches a session onto the fleet and returns its result future.
// Must be called from a process on the router shard (Go). In a role-split
// fleet, completion-style launches (JSON params with max_tokens > 1) run
// as a prefill pass plus a decode continuation joined by a KV transfer;
// anything else routes to a decode-eligible replica whole.
func (sc *ShardedCluster) Submit(program string, args ...string) *sim.Future[ShardedResult] {
	fut := sim.NewFuture[ShardedResult](sc.rclock)
	sc.nextID++
	inf := &inflight{
		id: sc.nextID, program: program, args: args,
		phase: phaseUnified, submitAt: sc.rclock.Now(), fut: fut,
	}
	if sc.pd && len(args) == 1 {
		if params, ok := decodeParams(args[0]); ok {
			if mt, ok := params["max_tokens"].(float64); ok && mt > 1 {
				inf.params = params
				inf.maxTok = int(mt)
				inf.prompt, _ = params["prompt"].(string)
				inf.phase = phasePrefill
			}
		}
	}
	sc.Launches++
	dst := sc.pickReplica(inf.phase)
	if dst < 0 {
		sc.Failures++
		fut.Resolve(ShardedResult{Err: api.ErrReplicaLost})
		return fut
	}
	sc.route(inf, dst)
	return fut
}

// route binds inf to a replica and sends the launch for its current
// phase. Runs on the router.
func (sc *ShardedCluster) route(inf *inflight, dst int) {
	inf.replica = dst
	sc.pending[inf.id] = inf
	sc.views[dst].outstanding++
	args := inf.args
	switch inf.phase {
	case phasePrefill:
		args = []string{encodeParams(inf.params, 1)}
	case phaseDecode:
		rem := inf.maxTok - 1
		if rem < 1 {
			rem = 1
		}
		args = []string{encodeParams(inf.params, rem)}
	}
	spec := ilm.LaunchSpec{Program: inf.program, Args: args}
	id := inf.id
	r := sc.reps[dst]
	sc.router.Send(dst+1, "launch", sc.cfg.NetLatency, func() {
		r.handleLaunch(id, spec)
	})
}

// handleLaunch runs one launch attempt on the replica shard and reports
// the outcome to the router. A silent (crashed or hung) replica drops
// everything: the router's health layer requeues at-least-once.
func (r *shardedReplica) handleLaunch(id uint64, spec ilm.LaunchSpec) {
	if r.silent {
		return
	}
	tokens := 0
	h, err := r.ilm.Launch(spec)
	if err == nil {
		err = h.Wait()
		_, _, tokens = h.Stats()
	}
	if r.silent {
		return
	}
	rep, e, n := r.idx, err, tokens
	r.shard.Send(0, "done", r.netLat, func() {
		r.sc.handleDone(id, rep, e, n)
	})
}

// handleDone processes a completion message on the router: resolve the
// session, or — for a prefill completion in a role-split fleet — charge
// the KV transfer under the FIFO budget and forward the decode
// continuation. Runs as its own router process, so holding a transfer
// slot across the modeled wire time blocks only this session.
func (sc *ShardedCluster) handleDone(id uint64, rep int, err error, tokens int) {
	inf := sc.pending[id]
	if inf == nil || inf.replica != rep {
		// Stale: the session was requeued to another replica (or already
		// resolved) while this completion was in flight. At-least-once
		// delivery makes duplicates harmless — first resolution wins.
		return
	}
	delete(sc.pending, id)
	sc.views[rep].outstanding--
	now := sc.rclock.Now()
	if err != nil {
		sc.Failures++
		inf.fut.Resolve(ShardedResult{Err: err, Replica: rep, Requeued: inf.requeued})
		return
	}
	if inf.phase == phasePrefill {
		// First token is out: record TTFT, move the KV state to a decode
		// replica under the transfer budget, then continue decoding there.
		inf.ttft = now - inf.submitAt
		sc.Handoffs++
		release := sc.acquireXfer()
		cost := xferCost(syntheticPages(inf.prompt))
		sc.rclock.Sleep(cost)
		sc.TransferTime += cost
		release()
		inf.phase = phaseDecode
		dst := sc.pickReplica(phaseDecode)
		if dst < 0 {
			sc.HandoffDenied++
			sc.Failures++
			inf.fut.Resolve(ShardedResult{Err: api.ErrNoDecodeCapacity, Requeued: inf.requeued})
			return
		}
		sc.route(inf, dst)
		return
	}
	sc.Completions++
	sc.OutputTokens += tokens
	res := ShardedResult{
		Replica: rep, OutputTokens: tokens,
		TTFT: now - inf.submitAt, Latency: now - inf.submitAt,
		Requeued: inf.requeued,
	}
	if inf.ttft > 0 {
		res.TTFT = inf.ttft
		res.OutputTokens++ // the prefill pass produced the first token
	}
	sc.ttftSum += res.TTFT
	sc.latSum += res.Latency
	inf.fut.Resolve(res)
}

// pickReplica returns the serving replica eligible for phase with the
// least outstanding work (lowest index breaks ties), or -1.
func (sc *ShardedCluster) pickReplica(phase int) int {
	best := -1
	for i := range sc.views {
		v := &sc.views[i]
		if !v.serving || v.dead || !roleEligible(v.role, phase, sc.pd) {
			continue
		}
		if best < 0 || v.outstanding < sc.views[best].outstanding {
			best = i
		}
	}
	return best
}

func roleEligible(role Role, phase int, pd bool) bool {
	switch phase {
	case phasePrefill:
		return role == RolePrefill || role == RoleUnified
	case phaseDecode:
		return role == RoleDecode || role == RoleUnified
	default:
		// Whole-session launches in a split fleet need a replica that can
		// decode; in a uniform fleet anyone serves.
		return !pd || role == RoleDecode || role == RoleUnified
	}
}

// healthLoop is the router's failure detector: a replica silent past
// DeadAfter is declared dead, its in-flight launches requeue onto
// survivors, and a cold spare takes its place.
func (sc *ShardedCluster) healthLoop() {
	for {
		sc.rclock.Sleep(sc.cfg.Heartbeat)
		now := sc.rclock.Now()
		for i := range sc.views {
			v := &sc.views[i]
			if v.dead || now-v.lastBeat <= sc.cfg.DeadAfter {
				continue
			}
			sc.declareDead(i)
		}
	}
}

func (sc *ShardedCluster) declareDead(i int) {
	v := &sc.views[i]
	wasServing := v.serving
	v.dead = true
	v.serving = false
	sc.ReplicasLost++
	// Requeue the dead replica's sessions in submission order so recovery
	// is deterministic.
	var ids []uint64
	for id, inf := range sc.pending {
		if inf.replica == i {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		inf := sc.pending[id]
		delete(sc.pending, id)
		v.outstanding--
		dst := sc.pickReplica(inf.phase)
		if dst < 0 {
			sc.Failures++
			inf.fut.Resolve(ShardedResult{Err: api.ErrReplicaLost, Requeued: inf.requeued})
			continue
		}
		sc.Requeues++
		inf.requeued = true
		sc.route(inf, dst)
	}
	if !wasServing {
		return
	}
	// Activate a spare, preferring the dead replica's role.
	spare := -1
	for j := range sc.views {
		s := &sc.views[j]
		if s.serving || s.dead {
			continue
		}
		if s.role == v.role {
			spare = j
			break
		}
		if spare < 0 {
			spare = j
		}
	}
	if spare >= 0 {
		sc.views[spare].serving = true
		sc.Replacements++
	}
}

// scalerLoop is the router's load scaler: mean outstanding per serving
// replica above ScaleUpAt activates a spare; below ScaleDownAt an idle
// replica drains, migrating its KV exports before rejoining the spares.
func (sc *ShardedCluster) scalerLoop() {
	for {
		sc.rclock.Sleep(sc.cfg.ScaleEvery)
		serving, tot := 0, 0
		for i := range sc.views {
			if sc.views[i].serving && !sc.views[i].dead {
				serving++
				tot += sc.views[i].outstanding
			}
		}
		if serving == 0 {
			if len(sc.pending) > 0 {
				sc.activateSpare()
			}
			continue
		}
		mean := float64(tot) / float64(serving)
		switch {
		case mean > sc.cfg.ScaleUpAt:
			sc.activateSpare()
		case mean < sc.cfg.ScaleDownAt && serving > 1:
			sc.drainOne()
		}
	}
}

func (sc *ShardedCluster) activateSpare() {
	for j := range sc.views {
		s := &sc.views[j]
		if !s.serving && !s.dead {
			s.serving = true
			sc.ScaleUps++
			return
		}
	}
}

// drainOne retires the highest-index idle serving replica: it leaves the
// routing set immediately, surrenders its KV exports (the counts travel
// back as a message and are charged as a transfer), and becomes a spare.
func (sc *ShardedCluster) drainOne() {
	for j := len(sc.views) - 1; j >= 0; j-- {
		v := &sc.views[j]
		if !v.serving || v.dead || v.outstanding != 0 {
			continue
		}
		v.serving = false
		sc.ScaleDowns++
		r := sc.reps[j]
		sc.router.Send(j+1, "drain", sc.cfg.NetLatency, func() {
			if r.silent {
				return
			}
			ex, pg := r.ctl.DropExports()
			r.shard.Send(0, "drained", r.netLat, func() {
				sc.ExportsMigrated += ex
				sc.PagesMigrated += pg
				if pg > 0 {
					sc.TransferTime += xferCost(pg)
				}
			})
		})
		return
	}
}

// Transfer cost model for cross-replica KV movement: a fixed interconnect
// setup charge plus a per-page wire charge.
const (
	xferBase    = 200 * time.Microsecond
	xferPerPage = 20 * time.Microsecond
)

func xferCost(pages int) time.Duration {
	return xferBase + time.Duration(pages)*xferPerPage
}

// syntheticPages sizes a PD transfer from the prompt (the prefill
// instance is already released when its completion reaches the router, so
// the footprint is synthesized: ~4 chars/token, 16 tokens/page).
func syntheticPages(prompt string) int {
	return 1 + len(prompt)/64
}

// acquireXfer blocks until a transfer-budget slot frees (FIFO) and
// returns an idempotent release, mirroring the shared-clock coordinator.
func (sc *ShardedCluster) acquireXfer() (release func()) {
	released := false
	release = func() {
		if released {
			return
		}
		released = true
		sc.releaseXfer()
	}
	if sc.xferActive < sc.cfg.TransferBudget {
		sc.xferActive++
		return release
	}
	w := &handoffWaiter{s: sim.NewSignal(sc.rclock)}
	sc.xferWaiters = append(sc.xferWaiters, w)
	sc.HandoffQueued++
	_ = sim.Await(w.s)
	w.granted = true
	return release
}

func (sc *ShardedCluster) releaseXfer() {
	if len(sc.xferWaiters) > 0 {
		w := sc.xferWaiters[0]
		sc.xferWaiters = sc.xferWaiters[1:]
		w.granted = true
		sim.Fire(w.s)
		return
	}
	sc.xferActive--
}

// decodeParams parses a JSON params object.
func decodeParams(s string) (map[string]any, bool) {
	var m map[string]any
	if json.Unmarshal([]byte(s), &m) != nil {
		return nil, false
	}
	return m, true
}

// encodeParams re-marshals params with max_tokens overridden. Map
// marshaling sorts keys, so the encoding is deterministic.
func encodeParams(m map[string]any, maxTokens int) string {
	m["max_tokens"] = maxTokens
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("cluster: params re-encode: %v", err))
	}
	return string(b)
}

// ShardedStats aggregates fleet activity after Run.
type ShardedStats struct {
	Launches     int
	Completions  int
	Failures     int
	Requeues     int
	ReplicasLost int
	Replacements int

	Handoffs      int
	HandoffQueued int
	HandoffDenied int
	TransferTime  time.Duration

	ExportsMigrated int
	PagesMigrated   int
	ScaleUps        int
	ScaleDowns      int

	FaultsInjected  int
	TransientFaults int

	OutputTokens int
	AvgTTFT      time.Duration
	AvgLatency   time.Duration

	GPUBusy      time.Duration
	Kernels      int
	Batches      int
	BatchedCalls int
	Events       uint64
}

// Stats snapshots fleet counters. Call after Run (it reads every shard).
func (sc *ShardedCluster) Stats() ShardedStats {
	out := ShardedStats{
		Launches:     sc.Launches,
		Completions:  sc.Completions,
		Failures:     sc.Failures,
		Requeues:     sc.Requeues,
		ReplicasLost: sc.ReplicasLost,
		Replacements: sc.Replacements,

		Handoffs:      sc.Handoffs,
		HandoffQueued: sc.HandoffQueued,
		HandoffDenied: sc.HandoffDenied,
		TransferTime:  sc.TransferTime,

		ExportsMigrated: sc.ExportsMigrated,
		PagesMigrated:   sc.PagesMigrated,
		ScaleUps:        sc.ScaleUps,
		ScaleDowns:      sc.ScaleDowns,

		OutputTokens: sc.OutputTokens,
		Events:       sc.group.TotalEvents(),
	}
	if sc.Completions > 0 {
		out.AvgTTFT = sc.ttftSum / time.Duration(sc.Completions)
		out.AvgLatency = sc.latSum / time.Duration(sc.Completions)
	}
	for _, r := range sc.reps {
		out.FaultsInjected += r.FaultsInjected
		out.TransientFaults += r.TransientFaults
		out.GPUBusy += r.backend.Device.BusyTime()
		out.Kernels += r.backend.Device.Kernels()
		s := r.ctl.Scheduler()
		out.Batches += s.Batches
		out.BatchedCalls += s.BatchedCalls
	}
	return out
}
