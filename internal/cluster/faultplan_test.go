// White-box unit tests for the fault-injection plumbing: fault-plan
// parsing and rendering, config default normalization, the transient
// launch-failure stream, and the placeable fallback ladder. Engine-level
// behavior (death handling, requeue, chaos replay) lives in
// faults_test.go; these pin the pure pieces the CLI and config surface
// depend on.
package cluster

import (
	"errors"
	"testing"
	"time"

	"pie/api"
	"pie/internal/sim"
)

func TestParseFaultPlanRoundTrip(t *testing.T) {
	spec := "crash:1@200ms,hang:2@300ms,slow:3@100ms*4"
	plan, err := ParseFaultPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Events) != 3 {
		t.Fatalf("parsed %d events, want 3", len(plan.Events))
	}
	want := []FaultEvent{
		{At: 200 * time.Millisecond, Replica: 1, Kind: FaultCrash, Factor: 4},
		{At: 300 * time.Millisecond, Replica: 2, Kind: FaultHang, Factor: 4},
		{At: 100 * time.Millisecond, Replica: 3, Kind: FaultSlow, Factor: 4},
	}
	for i, e := range plan.Events {
		if e != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, e, want[i])
		}
	}
	if got := plan.String(); got != spec {
		t.Fatalf("String() = %q, want round-trip of %q", got, spec)
	}
	// Whitespace and empty parts are tolerated; slow defaults its factor.
	plan, err = ParseFaultPlan(" slow:0@5ms , ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Events) != 1 || plan.Events[0].Factor != 4 {
		t.Fatalf("slow default factor: %+v", plan.Events)
	}
	if plan, err = ParseFaultPlan("  "); err != nil || !plan.Empty() {
		t.Fatalf("blank spec = %+v, %v; want empty plan", plan, err)
	}
}

func TestParseFaultPlanRejectsMalformed(t *testing.T) {
	for _, spec := range []string{
		"boom",              // no kind separator
		"explode:1@5ms",     // unknown kind
		"crash:1",           // missing @time
		"crash:x@5ms",       // bad replica
		"crash:-1@5ms",      // negative replica
		"slow:1@5ms*zero",   // bad factor
		"slow:1@5ms*0",      // non-positive factor
		"crash:1@sometime",  // bad time
		"crash:1@-5ms",      // negative time
		"crash:1@5ms,bogus", // one bad event poisons the plan
	} {
		if _, err := ParseFaultPlan(spec); err == nil {
			t.Errorf("ParseFaultPlan(%q) succeeded, want error", spec)
		}
	}
}

func TestFaultPlanEmpty(t *testing.T) {
	if !(FaultPlan{}).Empty() {
		t.Fatal("zero plan should be empty")
	}
	if (FaultPlan{CallFailRate: 0.1}).Empty() {
		t.Fatal("transient-rate plan should not be empty")
	}
	if (FaultPlan{Events: []FaultEvent{{Kind: FaultCrash}}}).Empty() {
		t.Fatal("event plan should not be empty")
	}
}

func TestFaultAndHealthStateStrings(t *testing.T) {
	for got, want := range map[string]string{
		FaultCrash.String():      "crash",
		FaultHang.String():       "hang",
		FaultSlow.String():       "slow",
		FaultKind(99).String():   "unknown",
		HealthHealthy.String():   "healthy",
		HealthSuspect.String():   "suspect",
		HealthDead.String():      "dead",
		HealthState(99).String(): "unknown",
		(FaultEvent{At: time.Millisecond, Replica: 2, Kind: FaultSlow, Factor: 2.5}).String(): "slow:2@1ms*2.5",
	} {
		if got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}

func TestRandomFaultPlanBounds(t *testing.T) {
	for _, degenerate := range []FaultPlan{
		RandomFaultPlan(1, 1, 4, 100*time.Millisecond), // nobody to spare
		RandomFaultPlan(1, 4, 0, 100*time.Millisecond), // no events
		RandomFaultPlan(1, 4, 4, 0),                    // no window
	} {
		if len(degenerate.Events) != 0 {
			t.Fatalf("degenerate plan has events: %v", degenerate.Events)
		}
	}
	plan := RandomFaultPlan(7, 4, 6, 100*time.Millisecond)
	if len(plan.Events) != 6 {
		t.Fatalf("got %d events, want 6", len(plan.Events))
	}
	for i, e := range plan.Events {
		if e.Replica == 0 {
			t.Fatal("replica 0 must never be faulted")
		}
		if e.At <= 0 || e.At > 100*time.Millisecond {
			t.Fatalf("event %d outside window: %v", i, e.At)
		}
		if i > 0 && plan.Events[i-1].At > e.At {
			t.Fatal("events not sorted by time")
		}
	}
}

func TestShedConfigDefaults(t *testing.T) {
	d := ShedConfig{}.withDefaults()
	if d.KVWatermark != 0.9 || d.QueueDepth != 96 {
		t.Fatalf("zero-value defaults = %+v", d)
	}
	if d.DegradeRatio != 0.75 || d.DegradeOutputCap != 8 {
		t.Fatalf("degradation defaults = %+v", d)
	}
	if got := (ShedConfig{KVWatermark: 1.5}).withDefaults().KVWatermark; got != 0.9 {
		t.Fatalf("over-unity watermark normalized to %v, want 0.9", got)
	}
	keep := ShedConfig{Enabled: true, KVWatermark: 0.5, QueueDepth: 3, DegradeRatio: 0.5, DegradeOutputCap: 4}
	if keep.withDefaults() != keep {
		t.Fatalf("explicit config rewritten: %+v", keep.withDefaults())
	}
}

func TestHealthConfigDefaults(t *testing.T) {
	d := HealthConfig{}.withDefaults()
	want := HealthConfig{
		Interval: 5 * time.Millisecond, SuspectAfter: 10 * time.Millisecond,
		DeadAfter: 25 * time.Millisecond, HangTimeout: 250 * time.Millisecond,
	}
	if d != want {
		t.Fatalf("zero-value defaults = %+v, want %+v", d, want)
	}
	// DeadAfter must strictly exceed SuspectAfter, even when the suspect
	// window is set past the stock dead window.
	d = HealthConfig{SuspectAfter: 30 * time.Millisecond}.withDefaults()
	if d.DeadAfter != 60*time.Millisecond {
		t.Fatalf("DeadAfter = %v, want 2x SuspectAfter", d.DeadAfter)
	}
}

func TestLaunchFaultStream(t *testing.T) {
	// No plan installed: never faults.
	c := &Cluster{}
	if err := c.LaunchFault(); err != nil {
		t.Fatalf("no-plan LaunchFault = %v", err)
	}
	// Certain failure: every attempt faults typed, and is counted.
	c = &Cluster{faults: FaultPlan{CallFailRate: 1}, faultRNG: sim.NewRNG(1)}
	for i := 0; i < 3; i++ {
		if err := c.LaunchFault(); !errors.Is(err, api.ErrTransientFault) {
			t.Fatalf("attempt %d = %v, want ErrTransientFault", i, err)
		}
	}
	if c.TransientFaults != 3 {
		t.Fatalf("TransientFaults = %d, want 3", c.TransientFaults)
	}
}

func TestInjectFaultsRejectsOutOfRangeReplica(t *testing.T) {
	c := &Cluster{replicas: []*Replica{{ID: 0}}}
	plan := FaultPlan{Events: []FaultEvent{{Replica: 5, Kind: FaultCrash}}}
	if err := c.InjectFaults(plan); err == nil {
		t.Fatal("out-of-range fault event accepted")
	}
	// A pure transient-rate plan installs without a daemon.
	if err := c.InjectFaults(FaultPlan{CallFailRate: 0.5, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if c.faultRNG == nil {
		t.Fatal("transient stream not armed")
	}
}

func TestAdmitLaunchWithNoServingReplica(t *testing.T) {
	c := &Cluster{replicas: []*Replica{{health: HealthDead}}}
	c.EnableShedding(ShedConfig{})
	if c.HealthEnabled() {
		t.Fatal("shedding must not arm the health monitor")
	}
	if _, err := c.AdmitLaunch("", 0); err != nil {
		t.Fatalf("high-priority launch gated: %v", err)
	}
	if _, err := c.AdmitLaunch("", -1); !errors.Is(err, api.ErrOverloaded) {
		t.Fatalf("best-effort with no live replica = %v, want ErrOverloaded", err)
	}
	if c.Sheds != 1 {
		t.Fatalf("Sheds = %d, want 1", c.Sheds)
	}
	// Shedding disabled: everything admits.
	c2 := &Cluster{}
	if _, err := c2.AdmitLaunch("", -1); err != nil {
		t.Fatalf("disabled guard shed a launch: %v", err)
	}
}

func TestAdmitLaunchWithSpareActivating(t *testing.T) {
	// Regression: zero healthy *serving* replicas but a live spare (dead
	// primary, inactive healthy spare — the window while recovery
	// activates it). The old guard shed best-effort traffic vacuously
	// here; the mean-depth computation also divided by zero. Placement
	// will revive the spare, so the launch must admit.
	c := &Cluster{replicas: []*Replica{
		{ID: 0, active: true, health: HealthDead},
		{ID: 1, active: false, health: HealthHealthy},
	}}
	c.EnableShedding(ShedConfig{})
	if _, err := c.AdmitLaunch("", -1); err != nil {
		t.Fatalf("best-effort shed while a live spare exists: %v", err)
	}
	if c.Sheds != 0 {
		t.Fatalf("Sheds = %d, want 0 (vacuous shed)", c.Sheds)
	}
	// A draining-but-healthy replica is likewise revivable, not gone.
	c2 := &Cluster{replicas: []*Replica{{ID: 0, active: true, draining: true, health: HealthHealthy}}}
	c2.EnableShedding(ShedConfig{})
	if _, err := c2.AdmitLaunch("", -1); err != nil {
		t.Fatalf("best-effort shed while a draining replica exists: %v", err)
	}
	// Crashed spare does not count as live: genuinely out of hardware.
	c3 := &Cluster{replicas: []*Replica{
		{ID: 0, active: true, health: HealthDead},
		{ID: 1, active: false, health: HealthHealthy, crashed: true},
	}}
	c3.EnableShedding(ShedConfig{})
	if _, err := c3.AdmitLaunch("", -1); !errors.Is(err, api.ErrOverloaded) {
		t.Fatal("no live replica anywhere: best-effort must shed")
	}
}

func TestPlaceableFallbackLadder(t *testing.T) {
	healthy := &Replica{ID: 0, active: true, health: HealthHealthy}
	suspect := &Replica{ID: 1, active: true, health: HealthSuspect}
	dead := &Replica{ID: 2, active: true, health: HealthDead}
	c := &Cluster{replicas: []*Replica{healthy, suspect, dead}, policy: PlaceRoundRobin}
	if c.Policy() != PlaceRoundRobin {
		t.Fatal("Policy() mismatch")
	}
	if got := c.placeable(); len(got) != 1 || got[0] != healthy {
		t.Fatalf("healthy present: placeable = %v", got)
	}
	// No healthy serving replica: suspects serve as a last resort.
	healthy.draining = true
	if got := c.placeable(); len(got) != 1 || got[0] != suspect {
		t.Fatalf("suspect fallback: placeable = %v", got)
	}
	// Nothing live but a drained healthy replica: revive it.
	suspect.health = HealthDead
	if got := c.placeable(); len(got) != 1 || got[0] != healthy {
		t.Fatalf("revive fallback: placeable = %v", got)
	}
	if !healthy.active || healthy.draining {
		t.Fatal("revived replica not marked serving")
	}
	// Everything dead: placement must fail upstream.
	healthy.health = HealthDead
	healthy.crashed = true
	if got := c.placeable(); len(got) != 0 {
		t.Fatalf("all-dead cluster still placeable: %v", got)
	}
}
