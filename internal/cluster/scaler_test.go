// White-box unit tests for the SLO scaler's pure pieces: config
// normalization, heterogeneous-variant expansion and parsing, cost-aware
// candidate ordering, cost accounting, and the latency tracker's window
// arithmetic. Engine-level scaling behavior (ticks, cold-start holds,
// scale-to-zero) is pinned by the eval experiment's acceptance and
// determinism tests.
package cluster

import (
	"strings"
	"testing"
	"time"

	"pie/api"
)

func TestScalerConfigDefaults(t *testing.T) {
	d := ScalerConfig{}.withDefaults(8)
	want := ScalerConfig{
		Min: 1, Max: 8, Interval: 10 * time.Millisecond,
		SatHigh: 0.75, SatLow: 0.20, AttainTarget: 0.95,
		QueueRef: 32, PrefillRef: 4096,
		ColdStartWindow: 40 * time.Millisecond, IdleAfter: 250 * time.Millisecond,
	}
	if d != want {
		t.Fatalf("zero-value defaults = %+v, want %+v", d, want)
	}
	// Max clamps to the fleet; Min clamps to Max.
	if got := (ScalerConfig{Max: 20}).withDefaults(8).Max; got != 8 {
		t.Fatalf("oversized Max = %d, want 8", got)
	}
	if got := (ScalerConfig{Min: 5, Max: 2}).withDefaults(8); got.Min != 2 {
		t.Fatalf("Min > Max normalized to %+v", got)
	}
	// A SatLow at or above SatHigh falls back to the default, halving
	// under SatHigh when even the default would invert.
	if got := (ScalerConfig{SatHigh: 0.3, SatLow: 0.5}).withDefaults(8); got.SatLow != 0.20 {
		t.Fatalf("inverted watermarks normalized to %+v", got)
	}
	if got := (ScalerConfig{SatHigh: 0.1, SatLow: 0.5}).withDefaults(8); got.SatLow != 0.05 {
		t.Fatalf("inverted low watermarks normalized to %+v", got)
	}
	keep := ScalerConfig{
		Enabled: true, Min: 2, Max: 4, Interval: time.Millisecond,
		SatHigh: 0.9, SatLow: 0.1, AttainTarget: 0.99, QueueRef: 8,
		PrefillRef: 512, ColdStartWindow: time.Millisecond,
		ScaleToZero: true, IdleAfter: time.Second,
	}
	if keep.withDefaults(8) != keep {
		t.Fatalf("explicit config rewritten: %+v", keep.withDefaults(8))
	}
}

func TestScaleUpPicksCheapest(t *testing.T) {
	// No SLO tracker: every variant qualifies, so price decides and ties
	// break by lowest ID.
	c := &Cluster{replicas: []*Replica{
		{ID: 0, Variant: "l4", CostRate: 1.0, health: HealthHealthy},
		{ID: 1, Variant: "l4e", CostRate: 0.6, health: HealthHealthy},
		{ID: 2, Variant: "l4e", CostRate: 0.6, health: HealthHealthy},
	}}
	c.scaleUpCostAware("test", RoleUnified)
	if !c.replicas[1].active || c.ScaleUps != 1 {
		t.Fatalf("picked %+v, want replica 1 active", c.replicas)
	}
	if len(c.Decisions) != 1 || !strings.Contains(c.Decisions[0], "activate replica=1 variant=l4e") {
		t.Fatalf("decision log = %v", c.Decisions)
	}
}

func TestScaleUpPrefersUnDrain(t *testing.T) {
	// A draining replica is warm capacity: un-draining beats activating a
	// cold spare, even a cheaper one.
	c := &Cluster{replicas: []*Replica{
		{ID: 0, CostRate: 1.0, active: true, draining: true, health: HealthHealthy},
		{ID: 1, CostRate: 0.5, health: HealthHealthy},
	}}
	c.scaleUpCostAware("test", RoleUnified)
	if c.replicas[0].draining || !c.replicas[0].active {
		t.Fatalf("draining replica not reclaimed: %+v", c.replicas[0])
	}
	if c.replicas[1].active {
		t.Fatal("cold spare activated despite warm drain available")
	}
}

func TestScaleUpPrefersQualifyingVariant(t *testing.T) {
	// The slow economy variant projects past the ITL target, so the
	// pricier reference variant wins despite costing more.
	slo := newSLOTracker([]api.ServiceClass{{Name: "int", ITLTarget: 20 * time.Millisecond}})
	slo.noteVariant("l4", 1)
	slo.noteVariant("l4e", 4)
	for i := 0; i < 4; i++ {
		slo.observe("l4", "int", false, 10*time.Millisecond)
	}
	c := &Cluster{slo: slo, replicas: []*Replica{
		{ID: 0, Variant: "l4e", CostRate: 0.5, SpeedFactor: 4, health: HealthHealthy},
		{ID: 1, Variant: "l4", CostRate: 1.0, health: HealthHealthy},
	}}
	c.scaleUpCostAware("test", RoleUnified)
	if !c.replicas[1].active || c.replicas[0].active {
		t.Fatalf("qualifying variant lost to cheaper non-qualifying: %+v", c.replicas)
	}
	// With a target no variant can meet, the fastest hardware wins — an
	// SLO miss wants speed, whatever the price.
	slo2 := newSLOTracker([]api.ServiceClass{{Name: "int", ITLTarget: time.Millisecond}})
	slo2.noteVariant("l4", 1)
	slo2.noteVariant("l4e", 4)
	for i := 0; i < 4; i++ {
		slo2.observe("l4", "int", false, 10*time.Millisecond)
	}
	c2 := &Cluster{slo: slo2, replicas: []*Replica{
		{ID: 0, Variant: "l4e", CostRate: 0.5, SpeedFactor: 4, health: HealthHealthy},
		{ID: 1, Variant: "l4", CostRate: 1.0, health: HealthHealthy},
	}}
	c2.scaleUpCostAware("test", RoleUnified)
	if !c2.replicas[1].active {
		t.Fatalf("fastest variant not chosen when nothing qualifies: %+v", c2.replicas)
	}
}

func TestStarvedRoleSat(t *testing.T) {
	// Normal fold: the hungriest role's mean governs and names the role.
	sat, starved := starvedRoleSat(true,
		[3]float64{0, 1.2, 0.4}, [3]int{0, 2, 2}, [3]int{0, 2, 2})
	if sat != 0.6 || starved != RolePrefill {
		t.Fatalf("fold = %v/%v, want 0.6/prefill", sat, starved)
	}
	// The all-dead-role path: prefill has replicas assigned but none
	// healthy-and-serving. Under load that reads as full saturation — the
	// empty denominator must not average the dead pool away to zero.
	sat, starved = starvedRoleSat(true,
		[3]float64{0, 0, 0.1}, [3]int{0, 0, 2}, [3]int{0, 2, 2})
	if sat != 1 || starved != RolePrefill {
		t.Fatalf("all-dead prefill = %v/%v, want 1/prefill", sat, starved)
	}
	// Same fleet, idle: a drained role is not starvation; nothing fires.
	sat, starved = starvedRoleSat(false,
		[3]float64{0, 0, 0}, [3]int{0, 0, 2}, [3]int{0, 2, 2})
	if sat != 0 || starved != RoleUnified {
		t.Fatalf("idle dead role = %v/%v, want 0/unified", sat, starved)
	}
	// A live role even hungrier than a dead one wins (queue refs make
	// means exceed 1), whichever order the roles appear in.
	sat, starved = starvedRoleSat(true,
		[3]float64{0, 0, 2.6}, [3]int{0, 0, 2}, [3]int{0, 2, 2})
	if sat != 1.3 || starved != RoleDecode {
		t.Fatalf("live role above 1 = %v/%v, want 1.3/decode", sat, starved)
	}
	sat, starved = starvedRoleSat(true,
		[3]float64{0, 2.6, 0}, [3]int{0, 2, 0}, [3]int{0, 2, 2})
	if sat != 1.3 || starved != RolePrefill {
		t.Fatalf("dead role after live = %v/%v, want 1.3/prefill", sat, starved)
	}
	// A role with no replicas assigned at all stays invisible either way.
	sat, starved = starvedRoleSat(true,
		[3]float64{0, 0, 0.4}, [3]int{0, 0, 2}, [3]int{0, 0, 2})
	if sat != 0.2 || starved != RoleDecode {
		t.Fatalf("unassigned role = %v/%v, want 0.2/decode", sat, starved)
	}
}

func TestScaleUpRecoversAllDeadFleet(t *testing.T) {
	// Every serving replica is gone but spares exist: the recovery path
	// must activate one (the scalerTick serving==0 branch feeds this with
	// RoleUnified — any capacity beats none).
	c := &Cluster{replicas: []*Replica{
		{ID: 0, active: false, health: HealthDead},
		{ID: 1, active: false, health: HealthDead},
		{ID: 2, health: HealthHealthy},
	}}
	c.scaleUpCostAware("sat=n/a fleet has no serving replica", RoleUnified)
	if !c.replicas[2].active || c.ScaleUps != 1 {
		t.Fatalf("dead fleet did not recover onto the spare: %+v", c.replicas)
	}
	// With no healthy spare either, the attempt is a deterministic no-op.
	c2 := &Cluster{replicas: []*Replica{{ID: 0, health: HealthDead}}}
	c2.scaleUpCostAware("sat=n/a fleet has no serving replica", RoleUnified)
	if c2.ScaleUps != 0 || c2.replicas[0].active {
		t.Fatalf("no-spare recovery mutated the fleet: %+v", c2.replicas[0])
	}
}

func TestScaleDownDrainsMostExpensive(t *testing.T) {
	c := &Cluster{replicas: []*Replica{
		{ID: 0, CostRate: 0.6, active: true, health: HealthHealthy},
		{ID: 1, CostRate: 1.0, active: true, health: HealthHealthy},
		{ID: 2, CostRate: 1.0, active: true, health: HealthHealthy},
	}}
	c.scaleDownCostAware(0.1)
	// Most expensive first; equal cost breaks toward the highest ID —
	// the mirror of activation order.
	if !c.replicas[2].draining || c.replicas[0].draining || c.replicas[1].draining {
		t.Fatalf("drain victim wrong: %+v", c.replicas)
	}
	if c.DrainStart != 1 {
		t.Fatalf("DrainStart = %d, want 1", c.DrainStart)
	}
}

func TestCostAccounting(t *testing.T) {
	r := &Replica{CostRate: 2, activeAccum: 2 * time.Second}
	if got := r.activeFor(10 * time.Second); got != 2*time.Second {
		t.Fatalf("inactive replica accrues: %v", got)
	}
	r.active, r.activeSince = true, 4*time.Second
	if got := r.activeFor(7 * time.Second); got != 5*time.Second {
		t.Fatalf("active span not added: %v", got)
	}
	c := &Cluster{replicas: []*Replica{r, {activeAccum: 3 * time.Second}}}
	// 2 units/s x 5s + default 1 unit/s x 3s.
	if got := c.CostUnits(7 * time.Second); got != 13 {
		t.Fatalf("CostUnits = %v, want 13", got)
	}
	// markInactive closes the open span (clockless clusters fold at t=0)
	// and freezes the accumulator.
	r.activeSince = 0
	c.markInactive(r)
	if r.active || r.activeFor(100*time.Second) != 2*time.Second {
		t.Fatalf("markInactive bookkeeping: active=%v accum=%v", r.active, r.activeAccum)
	}
}

func TestLatWindowArithmetic(t *testing.T) {
	var w latWindow
	if w.attainment(time.Second) != 1 {
		t.Fatal("empty window must vacuously attain")
	}
	for i := 0; i < 3; i++ {
		w.add(10 * time.Millisecond)
	}
	w.add(100 * time.Millisecond)
	if got := w.attainment(20 * time.Millisecond); got != 0.75 {
		t.Fatalf("attainment = %v, want 0.75", got)
	}
	if got := w.mean(); got != 32500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	// The ring holds only the most recent latWindowSize samples.
	for i := 0; i < latWindowSize; i++ {
		w.add(time.Millisecond)
	}
	if w.size() != latWindowSize || w.attainment(2*time.Millisecond) != 1 {
		t.Fatalf("ring wrap: size=%d attainment=%v", w.size(), w.attainment(2*time.Millisecond))
	}
}

func TestWorstRecentNeedsSamples(t *testing.T) {
	slo := newSLOTracker([]api.ServiceClass{
		{Name: "int", TTFTTarget: 10 * time.Millisecond},
		{Name: "free"}, // no targets: never flagged
	})
	// Below the minimum sample count even 100% misses stay quiet — one
	// early outlier must not trigger fleet-wide reactions.
	for i := 0; i < minAttainSamples-1; i++ {
		slo.observe("l4", "int", true, time.Second)
	}
	if name, _ := slo.worstRecent(0.95); name != "" {
		t.Fatalf("underpopulated window flagged %q", name)
	}
	slo.observe("l4", "int", true, time.Second)
	name, att := slo.worstRecent(0.95)
	if name != "int" || att != 0 {
		t.Fatalf("worstRecent = %q/%v, want int/0", name, att)
	}
	for i := 0; i < minAttainSamples; i++ {
		slo.observe("l4", "free", true, time.Hour)
	}
	if name, _ := slo.worstRecent(0.95); name != "int" {
		t.Fatalf("targetless class outranked a missing one: %q", name)
	}
}

func TestEstimateScalesAcrossVariants(t *testing.T) {
	slo := newSLOTracker(nil)
	slo.noteVariant("l4", 1)
	slo.noteVariant("l4e", 2)
	if ttft, itl := slo.estimate("l4e", 2); ttft != 0 || itl != 0 {
		t.Fatalf("unsampled tracker estimate = %v/%v, want optimistic zero", ttft, itl)
	}
	slo.observe("l4", "", true, 10*time.Millisecond)
	slo.observe("l4", "", false, 4*time.Millisecond)
	// A sampled variant answers from its own window.
	if ttft, itl := slo.estimate("l4", 1); ttft != 10*time.Millisecond || itl != 4*time.Millisecond {
		t.Fatalf("own-window estimate = %v/%v", ttft, itl)
	}
	// An unsampled one scales the fastest sampled window by the speed ratio.
	if ttft, itl := slo.estimate("l4e", 2); ttft != 20*time.Millisecond || itl != 8*time.Millisecond {
		t.Fatalf("scaled estimate = %v/%v", ttft, itl)
	}
}

func TestExpandVariants(t *testing.T) {
	// Empty spec: homogeneous default pool.
	out := ExpandVariants(nil, 3)
	if len(out) != 3 || out[0].Name != "l4" || out[0].CostRate != 1 || out[0].Slowdown != 1 {
		t.Fatalf("default pool = %+v", out)
	}
	// Counted prefix plus remainder, and the last variant pads short specs.
	out = ExpandVariants([]ReplicaVariant{
		{Name: "a", Count: 2, CostRate: 2},
		{Name: "b", CostRate: 0.5},
	}, 5)
	names := ""
	for _, v := range out {
		names += v.Name
	}
	if names != "aabbb" {
		t.Fatalf("assignment = %q, want aabbb", names)
	}
	// Counts beyond the pool truncate.
	if out = ExpandVariants([]ReplicaVariant{{Name: "a", Count: 9}}, 2); len(out) != 2 {
		t.Fatalf("oversized count = %+v", out)
	}
}

func TestParseReplicaVariants(t *testing.T) {
	vs, err := ParseReplicaVariants("l4:cost=1,count=4;l4e:cost=0.6,slow=1.4")
	if err != nil {
		t.Fatal(err)
	}
	want := []ReplicaVariant{
		{Name: "l4", CostRate: 1, Slowdown: 1, Count: 4},
		{Name: "l4e", CostRate: 0.6, Slowdown: 1.4},
	}
	if len(vs) != 2 || vs[0] != want[0] || vs[1] != want[1] {
		t.Fatalf("parsed %+v, want %+v", vs, want)
	}
	for _, bad := range []string{"", "  ", ":cost=1", "l4:price=1", "l4:cost=abc", "l4:count=x"} {
		if _, err := ParseReplicaVariants(bad); err == nil {
			t.Errorf("ParseReplicaVariants(%q) succeeded, want error", bad)
		}
	}
}

func TestParseServiceClasses(t *testing.T) {
	cs, err := ParseServiceClasses("interactive:ttft=250ms,itl=50ms,prio=10;batch:tps=40,degradable")
	if err != nil {
		t.Fatal(err)
	}
	want := []api.ServiceClass{
		{Name: "interactive", TTFTTarget: 250 * time.Millisecond, ITLTarget: 50 * time.Millisecond, Priority: 10},
		{Name: "batch", MinTokensPerSec: 40, Degradable: true},
	}
	if len(cs) != 2 || cs[0] != want[0] || cs[1] != want[1] {
		t.Fatalf("parsed %+v, want %+v", cs, want)
	}
	// degradable accepts an explicit boolean.
	cs, err = ParseServiceClasses("b:degradable=false")
	if err != nil || cs[0].Degradable {
		t.Fatalf("degradable=false parsed as %+v (%v)", cs, err)
	}
	for _, bad := range []string{"", ":ttft=1ms", "a:ttft=soon", "a:prio=x", "a:bogus=1", "a:ttft=1ms;a:itl=2ms"} {
		if _, err := ParseServiceClasses(bad); err == nil {
			t.Errorf("ParseServiceClasses(%q) succeeded, want error", bad)
		}
	}
}
