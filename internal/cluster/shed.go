package cluster

import (
	"fmt"

	"pie/api"
)

// Saturation admission: near saturation the cluster degrades Degradable
// service classes (shorter output cap, cheaper model variant downstream)
// and sheds non-degradable best-effort launches (negative priority — the
// batch scheduler treats higher priority as better) with api.ErrOverloaded
// instead of letting them in to die and drag high-priority goodput down
// with them. Two aggregate signals gate admission, both computed over
// healthy serving replicas only, so losing replicas to faults tightens
// admission automatically.

// ShedConfig tunes the saturation guard. The zero value disables it.
type ShedConfig struct {
	Enabled bool
	// KVWatermark sheds best-effort launches when aggregate KV page
	// utilization (in-use / capacity across healthy serving replicas)
	// reaches this fraction (default 0.9).
	KVWatermark float64
	// QueueDepth sheds when mean outstanding inference calls per healthy
	// serving replica reaches it (default 96 — twice the autoscaler's
	// grow threshold, so shedding starts only after growth has run out).
	QueueDepth float64
	// DegradeRatio scales both watermarks down to the degradation
	// threshold: launches of a Degradable service class admitted past it
	// are degraded rather than served at full quality (default 0.75 —
	// degradation starts before shedding would).
	DegradeRatio float64
	// DegradeOutputCap is the max_tokens cap applied to degraded launches
	// (default 8).
	DegradeOutputCap int
}

func (s ShedConfig) withDefaults() ShedConfig {
	if s.KVWatermark <= 0 || s.KVWatermark > 1 {
		s.KVWatermark = 0.9
	}
	if s.QueueDepth <= 0 {
		s.QueueDepth = 96
	}
	if s.DegradeRatio <= 0 || s.DegradeRatio > 1 {
		s.DegradeRatio = 0.75
	}
	if s.DegradeOutputCap <= 0 {
		s.DegradeOutputCap = 8
	}
	return s
}

// EnableShedding installs the saturation guard. Call before Engine.Run.
func (c *Cluster) EnableShedding(cfg ShedConfig) {
	cfg.Enabled = true
	c.shed = cfg.withDefaults()
}

// AdmitLaunch is the admission gate the ILM consults before a launch
// enters the dispatch pipeline (the ilm.Admission contract), with the
// launch's resolved service class and effective priority. The returned
// outputCap is zero for a full-quality admission; a positive value admits
// the launch degraded — the ILM caps its output tokens and marks the
// instance for cheaper-model substitution. A typed error (ErrOverloaded)
// sheds the launch outright: only non-degradable best-effort launches
// (priority < 0) are ever hard-shed.
func (c *Cluster) AdmitLaunch(class string, priority int) (outputCap int, err error) {
	if !c.shed.Enabled {
		return 0, nil
	}
	degradable := false
	if cls, ok := c.classes[class]; ok {
		degradable = cls.Degradable
	}
	if !degradable && priority >= 0 {
		return 0, nil
	}
	var kvInUse, kvCap, depth, serving int
	for _, r := range c.replicas {
		if !r.active || r.draining || r.health != HealthHealthy {
			continue
		}
		serving++
		in, capacity := r.Ctl.KVLoad()
		kvInUse += in
		kvCap += capacity
		depth += r.Ctl.OutstandingCalls()
	}
	if serving == 0 {
		// No healthy serving replica right now. If a live replica exists —
		// a spare still activating, or an idle fleet the scaler drained to
		// zero — placement will revive it, so a shed here would be vacuous
		// (and the mean-depth computation below would divide by zero).
		// Shed only when the cluster genuinely has no hardware left.
		for _, r := range c.replicas {
			if r.health == HealthHealthy && !r.crashed {
				return 0, nil
			}
		}
		c.shedOne(class, "no live replica")
		return 0, fmt.Errorf("%w: no live replica", api.ErrOverloaded)
	}
	kvUtil := 0.0
	if kvCap > 0 {
		kvUtil = float64(kvInUse) / float64(kvCap)
	}
	meanDepth := float64(depth) / float64(serving)
	saturated := kvUtil >= c.shed.KVWatermark || meanDepth >= c.shed.QueueDepth
	nearSaturated := kvUtil >= c.shed.DegradeRatio*c.shed.KVWatermark ||
		meanDepth >= c.shed.DegradeRatio*c.shed.QueueDepth
	// SLO risk: a strictly higher-priority class is missing its latency
	// objective in the recent window. Degradable launches yield to it even
	// before the queue watermarks trip — capacity freed now is worth more
	// than tokens this launch would have produced.
	atRisk, atRiskClass := false, ""
	if c.slo != nil {
		target := defaultAttainTarget
		if c.scaler.Enabled {
			target = c.scaler.AttainTarget
		}
		if name, _ := c.slo.worstRecent(target); name != "" && name != class {
			if cls, ok := c.classes[name]; ok && cls.Priority > c.classes[class].Priority {
				atRisk, atRiskClass = true, name
			}
		}
	}
	switch {
	case degradable && (nearSaturated || atRisk):
		// Graceful degradation instead of a shed: admit with a shorter
		// output cap; the session layer substitutes a cheaper model.
		c.Degradations++
		if c.slo != nil {
			if ct := c.slo.classes[class]; ct != nil {
				ct.degradations++
			}
		}
		why := fmt.Sprintf("kv=%.0f%% depth=%.1f", kvUtil*100, meanDepth)
		if atRisk {
			why = "slo-risk=" + atRiskClass
		}
		c.logDecision("degrade: class=%s cap=%d %s", class, c.shed.DegradeOutputCap, why)
		return c.shed.DegradeOutputCap, nil
	case !degradable && priority < 0 && saturated:
		c.shedOne(class, fmt.Sprintf("kv %.0f%% of watermark %.0f%%, depth %.1f of %.1f",
			kvUtil*100, c.shed.KVWatermark*100, meanDepth, c.shed.QueueDepth))
		return 0, fmt.Errorf("%w: kv %.0f%% of watermark %.0f%%, depth %.1f of %.1f",
			api.ErrOverloaded, kvUtil*100, c.shed.KVWatermark*100, meanDepth, c.shed.QueueDepth)
	}
	return 0, nil
}

// shedOne books one hard shed against the cluster and the class.
func (c *Cluster) shedOne(class, why string) {
	c.Sheds++
	if c.slo != nil {
		if ct := c.slo.classes[class]; ct != nil {
			ct.sheds++
		}
	}
	c.logDecision("shed: class=%s %s", classLabel(class), why)
}

// classLabel names a class in log lines ("-" for unclassed launches).
func classLabel(class string) string {
	if class == "" {
		return "-"
	}
	return class
}

// SaturationSnapshot reports the aggregate admission signals (tests and
// the /stats surface): KV utilization and mean queue depth over healthy
// serving replicas, plus that replica count.
func (c *Cluster) SaturationSnapshot() (kvUtil, meanDepth float64, serving int) {
	var kvInUse, kvCap, depth int
	for _, r := range c.replicas {
		if !r.active || r.draining || r.health != HealthHealthy {
			continue
		}
		serving++
		in, capacity := r.Ctl.KVLoad()
		kvInUse += in
		kvCap += capacity
		depth += r.Ctl.OutstandingCalls()
	}
	if kvCap > 0 {
		kvUtil = float64(kvInUse) / float64(kvCap)
	}
	if serving > 0 {
		meanDepth = float64(depth) / float64(serving)
	}
	return kvUtil, meanDepth, serving
}
