package cluster

import "fmt"

import "pie/api"

// Saturation load shedding: near saturation the cluster stops admitting
// best-effort launches (negative LaunchSpec.Priority — the batch scheduler
// treats higher priority as better) instead of letting them in to die and
// drag high-priority goodput down with them. Two aggregate signals gate
// admission, both computed over healthy serving replicas only, so losing
// replicas to faults tightens admission automatically.

// ShedConfig tunes the saturation guard. The zero value disables it.
type ShedConfig struct {
	Enabled bool
	// KVWatermark sheds best-effort launches when aggregate KV page
	// utilization (in-use / capacity across healthy serving replicas)
	// reaches this fraction (default 0.9).
	KVWatermark float64
	// QueueDepth sheds when mean outstanding inference calls per healthy
	// serving replica reaches it (default 96 — twice the autoscaler's
	// grow threshold, so shedding starts only after growth has run out).
	QueueDepth float64
}

func (s ShedConfig) withDefaults() ShedConfig {
	if s.KVWatermark <= 0 || s.KVWatermark > 1 {
		s.KVWatermark = 0.9
	}
	if s.QueueDepth <= 0 {
		s.QueueDepth = 96
	}
	return s
}

// EnableShedding installs the saturation guard. Call before Engine.Run.
func (c *Cluster) EnableShedding(cfg ShedConfig) {
	cfg.Enabled = true
	c.shed = cfg.withDefaults()
}

// AdmitLaunch is the admission gate the ILM consults before a launch
// enters the dispatch pipeline (the ilm.Admission contract). Launches at
// priority >= 0 are always admitted; best-effort launches are shed with
// api.ErrOverloaded while either saturation signal is over its watermark.
func (c *Cluster) AdmitLaunch(priority int) error {
	if !c.shed.Enabled || priority >= 0 {
		return nil
	}
	var kvInUse, kvCap, depth, serving int
	for _, r := range c.replicas {
		if !r.active || r.draining || r.health != HealthHealthy {
			continue
		}
		serving++
		in, cap := r.Ctl.KVLoad()
		kvInUse += in
		kvCap += cap
		depth += r.Ctl.OutstandingCalls()
	}
	if serving == 0 {
		c.Sheds++
		return fmt.Errorf("%w: no healthy serving replica", api.ErrOverloaded)
	}
	kvUtil := 0.0
	if kvCap > 0 {
		kvUtil = float64(kvInUse) / float64(kvCap)
	}
	meanDepth := float64(depth) / float64(serving)
	if kvUtil >= c.shed.KVWatermark || meanDepth >= c.shed.QueueDepth {
		c.Sheds++
		return fmt.Errorf("%w: kv %.0f%% of watermark %.0f%%, depth %.1f of %.1f",
			api.ErrOverloaded, kvUtil*100, c.shed.KVWatermark*100, meanDepth, c.shed.QueueDepth)
	}
	return nil
}
