// White-box unit tests for the handoff coordinator's guard branches and
// the role-aware corners of scaling and drain migration that engine-level
// tests cannot steer into: foreign controllers, non-prefill sources, the
// starved-role scale-up preference, and the decode-eligible migration
// target.
package cluster

import (
	"testing"

	"pie/internal/core"
)

func TestMaybeHandoffGuards(t *testing.T) {
	c := &Cluster{}
	if c.HandoffEnabled() {
		t.Fatal("zero-value cluster reports handoff enabled")
	}
	// Disabled coordinator: nothing moves, no counters tick.
	if _, _, ok := c.MaybeHandoff(nil, nil); ok {
		t.Fatal("disabled coordinator migrated")
	}
	c.handoff = HandoffConfig{Enabled: true}
	if !c.HandoffEnabled() {
		t.Fatal("armed coordinator reports disabled")
	}
	// Nil instance (a session that never bound a queue).
	if _, _, ok := c.MaybeHandoff(nil, nil); ok {
		t.Fatal("nil instance migrated")
	}
	// A controller the coordinator does not index (e.g. a replica added
	// after arming): the pending mark clears and the session stays put.
	inst := &core.Instance{HandoffPending: true}
	if _, _, ok := c.MaybeHandoff(nil, inst); ok {
		t.Fatal("unknown source controller migrated")
	}
	if inst.HandoffPending {
		t.Fatal("pending mark survived an unknown source")
	}
	// A non-prefill source: only prefill replicas hand sessions off.
	ctl := &core.Controller{}
	c.ctlIndex = map[*core.Controller]*Replica{ctl: {ID: 3, Role: RoleDecode}}
	inst.HandoffPending = true
	if _, _, ok := c.MaybeHandoff(ctl, inst); ok {
		t.Fatal("decode-role source migrated")
	}
	if inst.HandoffPending {
		t.Fatal("pending mark survived a non-prefill source")
	}
}

func TestScaleUpPrefersStarvedRole(t *testing.T) {
	c := &Cluster{hasRoles: true, replicas: []*Replica{
		{ID: 0, Role: RolePrefill, CostRate: 0.5, health: HealthHealthy},
		{ID: 1, Role: RoleDecode, CostRate: 1.0, health: HealthHealthy},
	}}
	// The decode spare wins despite the prefill spare being cheaper and
	// lower-ID: capacity must land on the starving phase.
	c.scaleUpCostAware("test", RoleDecode)
	if c.replicas[0].active || !c.replicas[1].active {
		t.Fatalf("scale-up ignored the starved role: %+v", c.replicas)
	}
	// With no spare of the starved role left, any spare still serves —
	// capacity beats phase purity.
	c.scaleUpCostAware("test", RoleDecode)
	if !c.replicas[0].active {
		t.Fatal("scale-up refused the off-role spare")
	}
}

func TestMigrationTargetPrefersDecodeEligible(t *testing.T) {
	drained := &Replica{ID: 0, Role: RolePrefill, active: true, draining: true, health: HealthHealthy}
	pre := &Replica{ID: 1, Role: RolePrefill, active: true, health: HealthHealthy}
	dec := &Replica{ID: 2, Role: RoleDecode, active: true, health: HealthHealthy}
	c := &Cluster{hasRoles: true, replicas: []*Replica{drained, pre, dec}}
	// Exports from a draining replica land where handed-off sessions may
	// follow them: decode-eligible first.
	if got := c.migrationTarget(drained); got != dec {
		t.Fatalf("migration target = %+v, want the decode replica", got)
	}
	// No decode-eligible survivor: any healthy serving replica will do.
	c = &Cluster{hasRoles: true, replicas: []*Replica{drained, pre}}
	if got := c.migrationTarget(drained); got != pre {
		t.Fatalf("migration fallback = %+v, want the prefill replica", got)
	}
	// No survivor at all.
	c = &Cluster{replicas: []*Replica{drained}}
	if got := c.migrationTarget(drained); got != nil {
		t.Fatalf("migration target = %+v, want nil", got)
	}
}

func TestRoleNames(t *testing.T) {
	if RoleUnified.String() != "unified" || RolePrefill.String() != "prefill" || RoleDecode.String() != "decode" {
		t.Fatalf("role names: %v %v %v", RoleUnified, RolePrefill, RoleDecode)
	}
	for in, want := range map[string]Role{
		"both": RoleUnified, "": RoleUnified,
		"p": RolePrefill, "Prefill": RolePrefill,
		"d": RoleDecode, " decode ": RoleDecode,
	} {
		got, err := ParseRole(in)
		if err != nil || got != want {
			t.Fatalf("ParseRole(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseRole("frontend"); err == nil {
		t.Fatal("ParseRole accepted an unknown role")
	}
}
