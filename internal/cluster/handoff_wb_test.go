// White-box unit tests for the handoff coordinator's guard branches and
// the role-aware corners of scaling and drain migration that engine-level
// tests cannot steer into: foreign controllers, non-prefill sources, the
// starved-role scale-up preference, and the decode-eligible migration
// target.
package cluster

import (
	"testing"
	"time"

	"pie/internal/core"
	"pie/internal/sim"
)

func TestMaybeHandoffGuards(t *testing.T) {
	c := &Cluster{}
	if c.HandoffEnabled() {
		t.Fatal("zero-value cluster reports handoff enabled")
	}
	// Disabled coordinator: nothing moves, no counters tick.
	if _, _, ok := c.MaybeHandoff(nil, nil); ok {
		t.Fatal("disabled coordinator migrated")
	}
	c.handoff = HandoffConfig{Enabled: true}
	if !c.HandoffEnabled() {
		t.Fatal("armed coordinator reports disabled")
	}
	// Nil instance (a session that never bound a queue).
	if _, _, ok := c.MaybeHandoff(nil, nil); ok {
		t.Fatal("nil instance migrated")
	}
	// A controller the coordinator does not index (e.g. a replica added
	// after arming): the pending mark clears and the session stays put.
	inst := &core.Instance{HandoffPending: true}
	if _, _, ok := c.MaybeHandoff(nil, inst); ok {
		t.Fatal("unknown source controller migrated")
	}
	if inst.HandoffPending {
		t.Fatal("pending mark survived an unknown source")
	}
	// A non-prefill source: only prefill replicas hand sessions off.
	ctl := &core.Controller{}
	c.ctlIndex = map[*core.Controller]*Replica{ctl: {ID: 3, Role: RoleDecode}}
	inst.HandoffPending = true
	if _, _, ok := c.MaybeHandoff(ctl, inst); ok {
		t.Fatal("decode-role source migrated")
	}
	if inst.HandoffPending {
		t.Fatal("pending mark survived a non-prefill source")
	}
}

// TestTransferSlotKillPaths scripts the three ways a replica death can
// intersect the transfer budget, on a bare clock with Budget=1:
//
//   - the slot holder is killed mid-transfer (the deferred release must
//     pass the slot on, not leak it);
//   - a queued waiter is killed while parked (release must skip the ghost,
//     not grant a dead process the slot);
//   - a waiter is killed in the instant between being granted the slot and
//     waking (its unwind must release the slot it now owns).
//
// Before the deferred-release fix, the first two paths each leaked a slot:
// every later handoff on the saturated budget parked forever and the run
// deadlocked.
func TestTransferSlotKillPaths(t *testing.T) {
	clock := sim.NewClock()
	c := &Cluster{clock: clock, handoff: HandoffConfig{Enabled: true, Budget: 1}}
	var log []string
	use := func(name string, hold time.Duration) func() {
		return func() {
			release := c.acquireTransferSlot()
			defer release()
			log = append(log, name)
			clock.Sleep(hold)
		}
	}
	a := clock.Go("a", use("a", 10*time.Millisecond))
	var b *sim.Proc
	clock.Go("script", func() {
		clock.Sleep(time.Millisecond)
		b = clock.Go("b", use("b", 10*time.Millisecond))
		clock.Sleep(time.Millisecond)
		clock.Go("c", use("c", 2*time.Millisecond))
		clock.Sleep(time.Millisecond)
		// t=3ms: waiter b dies while parked on the budget.
		clock.Kill(b)
		clock.Sleep(time.Millisecond)
		// t=4ms: holder a dies mid-transfer. Its deferred release must skip
		// the dead b and grant c.
		clock.Kill(a)
		clock.Sleep(10 * time.Millisecond)
		// t=14ms: the slot is free again (c released at ~6ms).
		clock.Go("d", use("d", time.Millisecond))
	})
	if err := clock.Run(); err != nil {
		t.Fatalf("Run: %v (a leaked transfer slot deadlocks the clock)", err)
	}
	want := "a,c,d"
	got := ""
	for i, s := range log {
		if i > 0 {
			got += ","
		}
		got += s
	}
	if got != want {
		t.Fatalf("acquisition order = %q, want %q", got, want)
	}
	if active, waiting := c.TransferBudgetState(); active != 0 || waiting != 0 {
		t.Fatalf("budget state after drain = %d active, %d live waiters; want 0/0", active, waiting)
	}
	if c.HandoffQueued != 2 {
		t.Fatalf("HandoffQueued = %d, want 2", c.HandoffQueued)
	}
}

// TestTransferSlotGrantedThenKilled covers the razor's edge: the head
// waiter is granted the slot by a releasing holder and killed at the same
// virtual instant, before it wakes. Its unwind owns the slot and must pass
// it on.
func TestTransferSlotGrantedThenKilled(t *testing.T) {
	clock := sim.NewClock()
	c := &Cluster{clock: clock, handoff: HandoffConfig{Enabled: true, Budget: 1}}
	var order []string
	use := func(name string, hold time.Duration) func() {
		return func() {
			release := c.acquireTransferSlot()
			defer release()
			order = append(order, name)
			clock.Sleep(hold)
		}
	}
	clock.Go("a", use("a", 10*time.Millisecond))
	var b *sim.Proc
	clock.Go("script", func() {
		clock.Sleep(time.Millisecond)
		b = clock.Go("b", use("b", 10*time.Millisecond))
		// Sleep to the exact instant a's hold ends: a wakes first (older
		// event), releases, grants b; then this kill lands before b's
		// wake-up event dispatches.
		clock.Sleep(9 * time.Millisecond)
		clock.Kill(b)
		clock.Sleep(time.Millisecond)
		clock.Go("d", use("d", time.Millisecond))
	})
	if err := clock.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "d" {
		t.Fatalf("acquisition order = %v, want [a d]", order)
	}
	if active, waiting := c.TransferBudgetState(); active != 0 || waiting != 0 {
		t.Fatalf("budget state = %d active, %d live waiters; want 0/0", active, waiting)
	}
}

func TestScaleUpPrefersStarvedRole(t *testing.T) {
	c := &Cluster{hasRoles: true, replicas: []*Replica{
		{ID: 0, Role: RolePrefill, CostRate: 0.5, health: HealthHealthy},
		{ID: 1, Role: RoleDecode, CostRate: 1.0, health: HealthHealthy},
	}}
	// The decode spare wins despite the prefill spare being cheaper and
	// lower-ID: capacity must land on the starving phase.
	c.scaleUpCostAware("test", RoleDecode)
	if c.replicas[0].active || !c.replicas[1].active {
		t.Fatalf("scale-up ignored the starved role: %+v", c.replicas)
	}
	// With no spare of the starved role left, any spare still serves —
	// capacity beats phase purity.
	c.scaleUpCostAware("test", RoleDecode)
	if !c.replicas[0].active {
		t.Fatal("scale-up refused the off-role spare")
	}
}

func TestMigrationTargetPrefersDecodeEligible(t *testing.T) {
	drained := &Replica{ID: 0, Role: RolePrefill, active: true, draining: true, health: HealthHealthy}
	pre := &Replica{ID: 1, Role: RolePrefill, active: true, health: HealthHealthy}
	dec := &Replica{ID: 2, Role: RoleDecode, active: true, health: HealthHealthy}
	c := &Cluster{hasRoles: true, replicas: []*Replica{drained, pre, dec}}
	// Exports from a draining replica land where handed-off sessions may
	// follow them: decode-eligible first.
	if got := c.migrationTarget(drained); got != dec {
		t.Fatalf("migration target = %+v, want the decode replica", got)
	}
	// No decode-eligible survivor: any healthy serving replica will do.
	c = &Cluster{hasRoles: true, replicas: []*Replica{drained, pre}}
	if got := c.migrationTarget(drained); got != pre {
		t.Fatalf("migration fallback = %+v, want the prefill replica", got)
	}
	// No survivor at all.
	c = &Cluster{replicas: []*Replica{drained}}
	if got := c.migrationTarget(drained); got != nil {
		t.Fatalf("migration target = %+v, want nil", got)
	}
}

func TestRoleNames(t *testing.T) {
	if RoleUnified.String() != "unified" || RolePrefill.String() != "prefill" || RoleDecode.String() != "decode" {
		t.Fatalf("role names: %v %v %v", RoleUnified, RolePrefill, RoleDecode)
	}
	for in, want := range map[string]Role{
		"both": RoleUnified, "": RoleUnified,
		"p": RolePrefill, "Prefill": RolePrefill,
		"d": RoleDecode, " decode ": RoleDecode,
	} {
		got, err := ParseRole(in)
		if err != nil || got != want {
			t.Fatalf("ParseRole(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseRole("frontend"); err == nil {
		t.Fatal("ParseRole accepted an unknown role")
	}
}
