// Engine-level tests of prefill/decode disaggregation: role-aware
// placement, KV handoff after first token, the bounded transfer budget,
// denial when decode capacity is gone, and page conservation across the
// migration.
package cluster_test

import (
	"strings"
	"testing"
	"time"

	"pie"
	"pie/internal/cluster"
)

// leakedPages sums live KV pages across every replica pool; after all
// sessions finish it must be zero — a handoff that forgets a refcount on
// either side shows up here.
func leakedPages(e *pie.Engine) int {
	total := 0
	for _, r := range e.Cluster().Replicas() {
		inUse, _ := r.Ctl.KVLoad()
		total += inUse
	}
	return total
}

func TestRoleAwarePlacementPrefersPrefill(t *testing.T) {
	e := newEngine(t, pie.Config{
		Seed: 11, Replicas: 3, Placement: pie.PlaceRoundRobin,
		Roles: []pie.RoleSpec{{Role: pie.RolePrefill, Count: 1}, {Role: pie.RoleDecode}},
	})
	err := e.RunClient(func() {
		for i := 0; i < 4; i++ {
			if _, err := e.LaunchAndWait(pie.Spec("text_completion", completionParams(2, ""))); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every launch lands on the prefill replica; the decode replicas'
	// Placements count only handoffs received.
	rs := e.Cluster().Replicas()
	if rs[0].Placements < 4 {
		t.Fatalf("prefill replica placements = %d, want >= 4", rs[0].Placements)
	}
	for _, r := range rs[1:] {
		if r.Placements != r.HandoffsIn {
			t.Fatalf("decode replica %d placements = %d beyond its %d handoffs", r.ID, r.Placements, r.HandoffsIn)
		}
	}
}

func TestHandoffMigratesSessionsToDecode(t *testing.T) {
	e := newEngine(t, pie.Config{
		Seed: 11, Replicas: 3, Placement: pie.PlaceLeastLoaded,
		Roles: []pie.RoleSpec{{Role: pie.RolePrefill, Count: 1}, {Role: pie.RoleDecode}},
	})
	err := e.RunClient(func() {
		var hs []*pie.Handle
		for i := 0; i < 4; i++ {
			h, err := e.Launch(pie.Spec("text_completion", completionParams(24, "")))
			if err != nil {
				panic(err)
			}
			hs = append(hs, h)
		}
		for _, h := range hs {
			if err := h.Wait(); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Handoffs != 4 {
		t.Fatalf("Handoffs = %d, want 4 (one per session)", st.Handoffs)
	}
	if st.HandoffPages == 0 || st.HandoffTime == 0 {
		t.Fatalf("handoff moved %d pages in %v, want nonzero work and cost", st.HandoffPages, st.HandoffTime)
	}
	rs := e.Cluster().Replicas()
	if rs[0].HandoffsOut != 4 {
		t.Fatalf("prefill HandoffsOut = %d, want 4", rs[0].HandoffsOut)
	}
	if rs[1].HandoffsIn+rs[2].HandoffsIn != 4 {
		t.Fatalf("decode HandoffsIn = %d+%d, want 4 total", rs[1].HandoffsIn, rs[2].HandoffsIn)
	}
	// Decode work actually ran on decode replicas: their devices saw
	// kernels after receiving the sessions.
	if rs[1].Backend.Device.Kernels()+rs[2].Backend.Device.Kernels() == 0 {
		t.Fatal("decode replicas ran no kernels after handoff")
	}
	if n := leakedPages(e); n != 0 {
		t.Fatalf("leaked %d KV pages after all sessions finished", n)
	}
}

func TestHandoffTransferBudgetQueues(t *testing.T) {
	e := newEngine(t, pie.Config{
		Seed: 11, Replicas: 3, Placement: pie.PlaceLeastLoaded, HandoffBudget: 1,
		Roles: []pie.RoleSpec{{Role: pie.RolePrefill, Count: 1}, {Role: pie.RoleDecode}},
	})
	err := e.RunClient(func() {
		var hs []*pie.Handle
		for i := 0; i < 8; i++ {
			h, err := e.Launch(pie.Spec("text_completion", completionParams(16, "")))
			if err != nil {
				panic(err)
			}
			hs = append(hs, h)
		}
		for _, h := range hs {
			if err := h.Wait(); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Handoffs != 8 {
		t.Fatalf("Handoffs = %d, want 8", st.Handoffs)
	}
	if st.HandoffQueued == 0 {
		t.Fatal("budget=1 under 8 concurrent sessions queued no transfers")
	}
	if n := leakedPages(e); n != 0 {
		t.Fatalf("leaked %d KV pages", n)
	}
}

func TestHandoffMinPagesKeepsSmallSessions(t *testing.T) {
	// A floor far above any session's KV footprint: every handoff is
	// skipped, every session decodes on its prefill replica, and nothing
	// leaks. A floor of one page changes nothing (every prefilled session
	// holds at least one), so the skip path stays off the common case.
	for _, tc := range []struct {
		name     string
		minPages int
		migrates bool
	}{
		{"floor-above-all", 1 << 20, false},
		{"floor-of-one", 1, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := newEngine(t, pie.Config{
				Seed: 11, Replicas: 3, Placement: pie.PlaceLeastLoaded,
				Roles:           []pie.RoleSpec{{Role: pie.RolePrefill, Count: 1}, {Role: pie.RoleDecode}},
				HandoffMinPages: tc.minPages,
			})
			err := e.RunClient(func() {
				for i := 0; i < 3; i++ {
					if _, err := e.LaunchAndWait(pie.Spec("text_completion", completionParams(16, ""))); err != nil {
						panic(err)
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			st := e.Stats()
			if tc.migrates {
				if st.Handoffs != 3 || st.HandoffSkipped != 0 {
					t.Fatalf("Handoffs = %d skipped = %d, want 3/0", st.Handoffs, st.HandoffSkipped)
				}
			} else {
				if st.Handoffs != 0 || st.HandoffSkipped != 3 {
					t.Fatalf("Handoffs = %d skipped = %d, want 0/3", st.Handoffs, st.HandoffSkipped)
				}
				// Skipped sessions still finish: decode ran on the prefill
				// replica itself.
				if e.Cluster().Replicas()[0].Backend.Device.Kernels() == 0 {
					t.Fatal("prefill replica ran no kernels despite retaining its sessions")
				}
			}
			if n := leakedPages(e); n != 0 {
				t.Fatalf("leaked %d KV pages", n)
			}
		})
	}
}

func TestHandoffDeniedWithoutDecodeCapacity(t *testing.T) {
	// All-prefill pool: every first token seeks a decode replica, finds
	// none, and the session finishes where it started instead of stalling.
	e := newEngine(t, pie.Config{
		Seed: 11, Replicas: 2, Placement: pie.PlaceRoundRobin,
		Roles: []pie.RoleSpec{{Role: pie.RolePrefill}},
	})
	err := e.RunClient(func() {
		if _, err := e.LaunchAndWait(pie.Spec("text_completion", completionParams(8, ""))); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Handoffs != 0 || st.HandoffDenied == 0 {
		t.Fatalf("Handoffs = %d, HandoffDenied = %d; want denial, no migration", st.Handoffs, st.HandoffDenied)
	}
	if n := leakedPages(e); n != 0 {
		t.Fatalf("leaked %d KV pages", n)
	}
}

// TestHandoffBudgetSurvivesReplicaCrash is the regression test for the
// transfer-slot leak: a crash-stopped prefill replica kills sessions that
// hold or queue on the saturated (Budget=1) transfer budget. Every launch
// must still resolve — success or a typed error — and the budget must
// drain back to zero; before the deferred-release fix the killed holder
// leaked its slot and every later handoff parked forever (the run
// deadlocked).
func TestHandoffBudgetSurvivesReplicaCrash(t *testing.T) {
	e := newEngine(t, pie.Config{
		Seed: 11, Replicas: 4, Placement: pie.PlaceLeastLoaded, HandoffBudget: 1,
		Roles: []pie.RoleSpec{{Role: pie.RolePrefill, Count: 2}, {Role: pie.RoleDecode}},
		Health: pie.HealthConfig{
			Enabled: true, Interval: 2 * time.Millisecond,
			SuspectAfter: 4 * time.Millisecond, DeadAfter: 8 * time.Millisecond,
		},
		Faults: pie.FaultPlan{Events: []pie.FaultEvent{
			{At: 30 * time.Millisecond, Replica: 0, Kind: pie.FaultCrash},
		}},
		DefaultRetry: pie.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond},
	})
	resolved, failed := 0, 0
	err := e.RunClient(func() {
		var hs []*pie.Handle
		for i := 0; i < 12; i++ {
			h, err := e.Launch(pie.Spec("text_completion", completionParams(24, "")))
			if err != nil {
				failed++
				continue
			}
			hs = append(hs, h)
		}
		for _, h := range hs {
			if err := h.Wait(); err != nil {
				failed++
			}
			resolved++
		}
	})
	if err != nil {
		t.Fatalf("Run: %v (a leaked transfer slot deadlocks the run)", err)
	}
	st := e.Stats()
	if st.ReplicasLost != 1 {
		t.Fatalf("ReplicasLost = %d, want 1 (the crash must land)", st.ReplicasLost)
	}
	if st.HandoffQueued == 0 {
		t.Fatal("budget=1 under 12 concurrent sessions queued no transfers; the test no longer exercises the saturated budget")
	}
	if resolved+failed < 12 {
		t.Fatalf("only %d launches resolved (+%d failed early), want all 12 accounted for", resolved, failed)
	}
	if active, waiting := e.Cluster().TransferBudgetState(); active != 0 || waiting != 0 {
		t.Fatalf("transfer budget leaked: %d active, %d live waiters after drain", active, waiting)
	}
}

func TestScalerGrowsStarvedRoleTier(t *testing.T) {
	// A disaggregated pool under the SLO scaler: the fleet mean would
	// average the saturated prefill replica away against idle decode
	// capacity, so the scaler must reason per role — and say which role
	// drove the decision.
	e := newEngine(t, pie.Config{
		Seed: 11, Replicas: 2, Placement: pie.PlaceLeastLoaded,
		Roles: []pie.RoleSpec{{Role: pie.RolePrefill, Count: 1}, {Role: pie.RoleDecode}},
		Scaler: pie.ScalerConfig{
			Enabled: true, Min: 2, Max: 4,
			Interval: 2 * time.Millisecond, SatHigh: 0.05,
			ColdStartWindow: time.Millisecond,
		},
	})
	err := e.RunClient(func() {
		var hs []*pie.Handle
		for i := 0; i < 6; i++ {
			h, err := e.Launch(pie.Spec("text_completion", completionParams(24, "")))
			if err != nil {
				panic(err)
			}
			hs = append(hs, h)
		}
		for _, h := range hs {
			if err := h.Wait(); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Cluster().ScaleUps == 0 {
		t.Fatal("saturated disaggregated pool never scaled up")
	}
	log := strings.Join(e.Cluster().Decisions, "\n")
	if !strings.Contains(log, "role=") {
		t.Fatalf("scale-up decisions name no role:\n%s", log)
	}
}

func TestParseRoles(t *testing.T) {
	got, err := cluster.ParseRoles("prefill:count=2;decode")
	if err != nil {
		t.Fatal(err)
	}
	want := []cluster.RoleSpec{{Role: cluster.RolePrefill, Count: 2}, {Role: cluster.RoleDecode}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ParseRoles = %+v, want %+v", got, want)
	}
	for _, bad := range []string{"", "frontend", "prefill:shards=2"} {
		if _, err := cluster.ParseRoles(bad); err == nil {
			t.Fatalf("ParseRoles(%q) succeeded", bad)
		}
	}
}

func TestExpandRoles(t *testing.T) {
	got := cluster.ExpandRoles([]cluster.RoleSpec{
		{Role: cluster.RolePrefill, Count: 2}, {Role: cluster.RoleDecode},
	}, 5)
	want := []cluster.Role{
		cluster.RolePrefill, cluster.RolePrefill,
		cluster.RoleDecode, cluster.RoleDecode, cluster.RoleDecode,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpandRoles = %v, want %v", got, want)
		}
	}
	// Empty spec: everyone unified.
	for _, r := range cluster.ExpandRoles(nil, 3) {
		if r != cluster.RoleUnified {
			t.Fatal("empty spec must yield unified replicas")
		}
	}
	// Oversized count clamps; short spec pads with the last role.
	got = cluster.ExpandRoles([]cluster.RoleSpec{{Role: cluster.RoleDecode, Count: 9}}, 2)
	if len(got) != 2 || got[0] != cluster.RoleDecode || got[1] != cluster.RoleDecode {
		t.Fatalf("clamped ExpandRoles = %v", got)
	}
}
