package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	c := NewClock()
	var got time.Duration
	c.Go("p", func() {
		c.Sleep(10 * time.Millisecond)
		got = c.Now()
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 10*time.Millisecond {
		t.Fatalf("Now after sleep = %v, want 10ms", got)
	}
}

func TestSleepOrderingIsDeterministic(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.Go("p", func() {
			// Process i sleeps i*ms: wakes in ascending order.
			c.Sleep(time.Duration(i) * time.Millisecond)
			order = append(order, i)
		})
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("wake order = %v, want ascending", order)
		}
	}
}

func TestSameTimeEventsRunInSpawnOrder(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		c.Go("p", func() { order = append(order, i) })
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want spawn order", order)
		}
	}
}

func TestZeroSleepYields(t *testing.T) {
	c := NewClock()
	var order []string
	c.Go("a", func() {
		order = append(order, "a1")
		c.Yield()
		order = append(order, "a2")
	})
	c.Go("b", func() {
		order = append(order, "b1")
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFutureResolveWakesWaiter(t *testing.T) {
	c := NewClock()
	f := NewFuture[int](c)
	var got int
	var at time.Duration
	c.Go("waiter", func() {
		got, _ = f.Get()
		at = c.Now()
	})
	c.Go("resolver", func() {
		c.Sleep(5 * time.Millisecond)
		f.Resolve(42)
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 || at != 5*time.Millisecond {
		t.Fatalf("got %d at %v, want 42 at 5ms", got, at)
	}
}

func TestFutureMultipleWaiters(t *testing.T) {
	c := NewClock()
	f := NewFuture[string](c)
	count := 0
	for i := 0; i < 10; i++ {
		c.Go("w", func() {
			v, err := f.Get()
			if err != nil || v != "x" {
				t.Errorf("Get = %q, %v", v, err)
			}
			count++
		})
	}
	c.Go("r", func() { f.Resolve("x") })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestFutureGetAfterResolve(t *testing.T) {
	c := NewClock()
	var got int
	c.Go("p", func() {
		f := Resolved(c, 7)
		got, _ = f.Get()
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("got %d, want 7", got)
	}
}

func TestFutureFail(t *testing.T) {
	c := NewClock()
	var err error
	f := NewFuture[int](c)
	c.Go("w", func() { _, err = f.Get() })
	c.Go("r", func() { f.Fail(nil) })
	if e := c.Run(); e != nil {
		t.Fatal(e)
	}
	if err != ErrFailed {
		t.Fatalf("err = %v, want ErrFailed", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	c := NewClock()
	f := NewFuture[int](c)
	c.Go("stuck", func() { f.Get() })
	if err := c.Run(); err == nil {
		t.Fatal("expected deadlock error, got nil")
	}
}

func TestMailboxFIFO(t *testing.T) {
	c := NewClock()
	m := NewMailbox[int](c)
	var got []int
	c.Go("recv", func() {
		for i := 0; i < 3; i++ {
			v, err := m.Recv()
			if err != nil {
				t.Errorf("Recv: %v", err)
			}
			got = append(got, v)
		}
	})
	c.Go("send", func() {
		for i := 1; i <= 3; i++ {
			m.Send(i)
			c.Sleep(time.Millisecond)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got %v, want [1 2 3]", got)
		}
	}
}

func TestMailboxTryRecv(t *testing.T) {
	c := NewClock()
	c.Go("p", func() {
		m := NewMailbox[int](c)
		if _, ok := m.TryRecv(); ok {
			t.Error("TryRecv on empty mailbox returned ok")
		}
		m.Send(9)
		if m.Len() != 1 {
			t.Errorf("Len = %d, want 1", m.Len())
		}
		v, ok := m.TryRecv()
		if !ok || v != 9 {
			t.Errorf("TryRecv = %d,%v", v, ok)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMailboxClose(t *testing.T) {
	c := NewClock()
	m := NewMailbox[int](c)
	var err error
	c.Go("recv", func() { _, err = m.Recv() })
	c.Go("close", func() { m.Close() })
	if e := c.Run(); e != nil {
		t.Fatal(e)
	}
	if err != ErrMailboxClosed {
		t.Fatalf("err = %v, want ErrMailboxClosed", err)
	}
}

func TestKillSleepingProcess(t *testing.T) {
	c := NewClock()
	reached := false
	var p *Proc
	p = c.Go("victim", func() {
		c.Sleep(time.Hour)
		reached = true
	})
	c.Go("killer", func() {
		c.Sleep(time.Millisecond)
		c.Kill(p)
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("victim survived Kill")
	}
	if got := c.Now(); got >= time.Hour {
		t.Fatalf("clock advanced to %v; kill should cancel the sleep", got)
	}
}

func TestKillParkedProcess(t *testing.T) {
	c := NewClock()
	f := NewFuture[int](c)
	cleanedUp := false
	var p *Proc
	p = c.Go("victim", func() {
		defer func() { cleanedUp = true }()
		f.Get()
		t.Error("victim resumed after kill")
	})
	c.Go("killer", func() { c.Kill(p) })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !cleanedUp {
		t.Fatal("deferred cleanup did not run on kill")
	}
	if !p.Killed() {
		t.Fatal("Killed() = false")
	}
}

func TestGroupWait(t *testing.T) {
	c := NewClock()
	total := 0
	c.Go("main", func() {
		g := NewGroup(c)
		for i := 1; i <= 4; i++ {
			i := i
			g.Go("child", func() {
				c.Sleep(time.Duration(i) * time.Millisecond)
				total += i
			})
		}
		g.Wait()
		if total != 10 {
			t.Errorf("total = %d before Wait returned", total)
		}
		if c.Now() != 4*time.Millisecond {
			t.Errorf("Wait returned at %v, want 4ms", c.Now())
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNestedSpawn(t *testing.T) {
	c := NewClock()
	depth := 0
	var spawn func(n int)
	spawn = func(n int) {
		if n == 0 {
			return
		}
		c.Go("child", func() {
			depth++
			spawn(n - 1)
		})
	}
	c.Go("root", func() { spawn(50) })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if depth != 50 {
		t.Fatalf("depth = %d, want 50", depth)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(1234), NewRNG(1234)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds produced identical first values")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		r := NewRNG(seed)
		for i := 0; i < 32; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Bounds(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(5)
	a := r.Fork(1)
	b := r.Fork(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams collide %d/64 times", same)
	}
}

// Property: arbitrary DAGs of sleeps and futures always quiesce with
// monotonically non-decreasing wake times.
func TestQuickSchedulerMonotonicTime(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		c := NewClock()
		var last time.Duration
		mono := true
		n := 3 + r.Intn(10)
		sigs := make([]*Signal, n)
		for i := range sigs {
			sigs[i] = NewSignal(c)
		}
		for i := 0; i < n; i++ {
			i := i
			d := time.Duration(r.Intn(50)) * time.Millisecond
			dep := r.Intn(n)
			c.Go("p", func() {
				c.Sleep(d)
				if i > 0 && dep < i {
					Await(sigs[dep]) // only wait on earlier-indexed signals
				}
				if c.Now() < last {
					mono = false
				}
				last = c.Now()
				Fire(sigs[i])
			})
		}
		if err := c.Run(); err != nil {
			return false
		}
		return mono
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExternalModeInjectAfterIdle(t *testing.T) {
	// Server mode: the clock must stay alive while idle — even when only
	// daemons have run so far — so a later Inject can start work. (This
	// used to finish the clock at the first idle moment and panic the
	// first Inject with "Inject after clock finished".)
	c := NewClock()
	c.EnableExternal()
	c.GoDaemon("service", func() {
		m := NewMailbox[int](c)
		m.Recv() // parks forever: the daemon is idle infrastructure
	})
	runDone := make(chan error, 1)
	go func() { runDone <- c.Run() }()

	injected := make(chan int, 1)
	// Wait until Run has dispatched the daemon and gone idle: the daemon
	// parked, the heap drained, and no process running. (Current() alone
	// is nil before Run starts too, which would race Inject against Run's
	// entry check.)
	for i := 0; i < 5000; i++ {
		_, parked, pending, _ := c.Stats()
		if parked == 1 && pending == 0 && c.Current() == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	c.Inject("work", func() {
		c.Sleep(5 * time.Millisecond)
		injected <- 42
	})
	select {
	case v := <-injected:
		if v != 42 {
			t.Fatalf("injected work returned %d", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("injected work never ran")
	}
	c.Shutdown()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after Shutdown")
	}
}
