package sim

// Mailbox is an unbounded FIFO queue with blocking receive, the message
// primitive for user↔inferlet and inferlet↔inferlet communication.
type Mailbox[T any] struct {
	c       *Clock
	buf     []T
	waiters []*mboxWaiter[T]
	closed  bool
}

type mboxWaiter[T any] struct {
	f *Future[T]
}

// NewMailbox returns an empty mailbox on clock c.
func NewMailbox[T any](c *Clock) *Mailbox[T] {
	return &Mailbox[T]{c: c}
}

// Send enqueues v, waking the oldest pending receiver if any. Send never
// blocks.
func (m *Mailbox[T]) Send(v T) {
	if m.closed {
		return // messages to a closed mailbox are dropped
	}
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		m.waiters = m.waiters[1:]
		w.f.Resolve(v)
		return
	}
	m.buf = append(m.buf, v)
}

// RecvFuture returns a future that resolves with the next message. If a
// message is already queued the future is resolved immediately.
func (m *Mailbox[T]) RecvFuture() *Future[T] {
	if len(m.buf) > 0 {
		v := m.buf[0]
		m.buf = m.buf[1:]
		return Resolved(m.c, v)
	}
	if m.closed {
		return FailedFuture[T](m.c, ErrMailboxClosed)
	}
	f := NewFuture[T](m.c)
	m.waiters = append(m.waiters, &mboxWaiter[T]{f: f})
	return f
}

// Recv blocks the calling process until a message arrives.
func (m *Mailbox[T]) Recv() (T, error) {
	return m.RecvFuture().Get()
}

// TryRecv returns a queued message without blocking.
func (m *Mailbox[T]) TryRecv() (T, bool) {
	var zero T
	if len(m.buf) == 0 {
		return zero, false
	}
	v := m.buf[0]
	m.buf = m.buf[1:]
	return v, true
}

// Len reports the number of queued messages.
func (m *Mailbox[T]) Len() int { return len(m.buf) }

// Close fails all pending receivers and drops future sends.
func (m *Mailbox[T]) Close() {
	if m.closed {
		return
	}
	m.closed = true
	ws := m.waiters
	m.waiters = nil
	for _, w := range ws {
		w.f.Fail(ErrMailboxClosed)
	}
}

// ErrMailboxClosed is returned by receives on a closed, drained mailbox.
var ErrMailboxClosed = errorString("sim: mailbox closed")

type errorString string

func (e errorString) Error() string { return string(e) }
