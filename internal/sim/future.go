package sim

import (
	"errors"

	"pie/api"
)

// ErrFailed is returned by Future.Get when the future was failed without a
// specific error.
var ErrFailed = errors.New("sim: future failed")

// Future is a one-shot result cell. Any number of processes may Get; all of
// them resume once Resolve or Fail is called. Futures are the asynchronous
// completion primitive for every API call in the system.
type Future[T any] struct {
	c       *Clock
	done    bool
	val     T
	err     error
	waiters []waiter
	subs    []func()
}

type waiter struct {
	p     *Proc
	token uint64
}

// NewFuture creates an unresolved future on clock c.
func NewFuture[T any](c *Clock) *Future[T] {
	return &Future[T]{c: c}
}

// Resolved returns an already-resolved future holding v.
func Resolved[T any](c *Clock, v T) *Future[T] {
	return &Future[T]{c: c, done: true, val: v}
}

// FailedFuture returns an already-failed future holding err.
func FailedFuture[T any](c *Clock, err error) *Future[T] {
	if err == nil {
		err = ErrFailed
	}
	return &Future[T]{c: c, done: true, err: err}
}

// Done reports whether the future has been resolved or failed.
func (f *Future[T]) Done() bool {
	f.c.mu.Lock()
	defer f.c.mu.Unlock()
	return f.done
}

// Resolve completes the future with v and wakes all waiters. Resolving an
// already-completed future panics: it indicates a double-completion bug.
func (f *Future[T]) Resolve(v T) { f.complete(v, nil) }

// Fail completes the future with err and wakes all waiters.
func (f *Future[T]) Fail(err error) {
	var zero T
	if err == nil {
		err = ErrFailed
	}
	f.complete(zero, err)
}

func (f *Future[T]) complete(v T, err error) {
	f.c.mu.Lock()
	if f.done {
		f.c.mu.Unlock()
		panic("sim: future completed twice")
	}
	f.done = true
	f.val = v
	f.err = err
	waiters := f.waiters
	f.waiters = nil
	subs := f.subs
	f.subs = nil
	f.c.mu.Unlock()
	// Callbacks run before waiters wake so api.Any relays fire first —
	// the wake order stays deterministic either way, but this keeps the
	// "first completion wins" rule independent of waiter registration.
	for _, fn := range subs {
		fn()
	}
	for _, w := range waiters {
		f.c.unpark(w.p, w.token)
	}
}

// Subscribe registers fn to run exactly once when the future completes;
// if it already has, fn runs immediately. This is the api.Subscriber hook
// behind the future combinators.
func (f *Future[T]) Subscribe(fn func()) {
	f.c.mu.Lock()
	if f.done {
		f.c.mu.Unlock()
		fn()
		return
	}
	f.subs = append(f.subs, fn)
	f.c.mu.Unlock()
}

// MakeRelay mints an unresolved one-shot latch on this future's clock,
// implementing api.RelayMaker for the Any combinator.
func (f *Future[T]) MakeRelay() api.Relay { return relay{s: NewSignal(f.c)} }

// relay adapts a Signal to api.Relay with idempotent Fire.
type relay struct{ s *Signal }

func (r relay) Fire() {
	if !r.s.Done() {
		Fire(r.s)
	}
}

func (r relay) Await() error { return Await(r.s) }

// Get blocks the calling process until the future completes, then returns
// its value and error.
func (f *Future[T]) Get() (T, error) {
	f.c.mu.Lock()
	if f.done {
		v, err := f.val, f.err
		f.c.mu.Unlock()
		return v, err
	}
	p := f.c.current
	if p == nil {
		f.c.mu.Unlock()
		panic("sim: Future.Get from outside the simulation")
	}
	f.waiters = append(f.waiters, waiter{p: p, token: p.parkToken + 1})
	f.c.mu.Unlock()
	f.c.park()
	f.c.mu.Lock()
	v, err := f.val, f.err
	f.c.mu.Unlock()
	return v, err
}

// MustGet is Get for futures that cannot fail in correct programs; it
// panics on error.
func (f *Future[T]) MustGet() T {
	v, err := f.Get()
	if err != nil {
		panic(err)
	}
	return v
}

// Signal is a value-less future used as a completion barrier.
type Signal = Future[struct{}]

// NewSignal creates an unresolved Signal.
func NewSignal(c *Clock) *Signal { return NewFuture[struct{}](c) }

// Fire resolves a Signal.
func Fire(s *Signal) { s.Resolve(struct{}{}) }

// Await blocks until the signal fires.
func Await(s *Signal) error {
	_, err := s.Get()
	return err
}

// Group waits for a dynamic set of subtasks, like sync.WaitGroup but on
// virtual time.
type Group struct {
	c      *Clock
	n      int
	signal *Signal
}

// NewGroup returns an empty group.
func NewGroup(c *Clock) *Group { return &Group{c: c} }

// Add registers n more subtasks.
func (g *Group) Add(n int) { g.n += n }

// Done marks one subtask complete.
func (g *Group) Done() {
	g.n--
	if g.n < 0 {
		panic("sim: Group.Done without Add")
	}
	if g.n == 0 && g.signal != nil {
		s := g.signal
		g.signal = nil
		Fire(s)
	}
}

// Wait blocks until the count drops to zero.
func (g *Group) Wait() {
	if g.n == 0 {
		return
	}
	if g.signal == nil {
		g.signal = NewSignal(g.c)
	}
	s := g.signal
	_, _ = s.Get()
}

// Go runs fn as a child process tracked by the group.
func (g *Group) Go(name string, fn func()) {
	g.Add(1)
	g.c.Go(name, func() {
		defer g.Done()
		fn()
	})
}
