package sim

import "time"

// heapEntry is one slot of the event heap. The ordering key (virtual time,
// sequence number) is stored inline so sift comparisons never dereference
// the event record — at a thousand pending events that is the difference
// between comparing within one cache line and a pointer chase per step.
type heapEntry struct {
	t   time.Duration
	seq uint64
	ev  *event
}

// eventHeap is an inlined 4-ary min-heap specialized to *event, ordered by
// (virtual time, sequence number). Compared to container/heap it avoids
// interface dispatch and halves tree depth, which matters because every
// scheduler decision is a push and a pop.
//
// Cancelled events (Kill on a sleeping process) stay in place and are
// skipped at pop time; when they outnumber live entries the heap compacts
// in one pass so a churny workload (many kills) cannot grow the array
// without bound.
type eventHeap struct {
	es        []heapEntry
	cancelled int // lazily-cancelled entries still occupying slots
}

func entryLess(a, b *heapEntry) bool {
	return a.t < b.t || (a.t == b.t && a.seq < b.seq)
}

func (h *eventHeap) len() int { return len(h.es) }

// live reports the number of non-cancelled pending events.
func (h *eventHeap) live() int { return len(h.es) - h.cancelled }

// min returns the root entry; the heap must be non-empty.
func (h *eventHeap) min() *heapEntry { return &h.es[0] }

func (h *eventHeap) push(e *event) {
	entry := heapEntry{t: e.t, seq: e.seq, ev: e}
	i := len(h.es)
	h.es = append(h.es, entry)
	for i > 0 {
		parent := (i - 1) >> 2
		if !entryLess(&entry, &h.es[parent]) {
			break
		}
		h.es[i] = h.es[parent]
		i = parent
	}
	h.es[i] = entry
}

// pop removes and returns the minimum event. The caller must know the heap
// is non-empty. Cancelled entries are the caller's concern: pop returns
// them like any other (the clock filters and recycles them).
func (h *eventHeap) pop() *event {
	root := h.es[0].ev
	n := len(h.es) - 1
	last := h.es[n]
	h.es[n] = heapEntry{}
	h.es = h.es[:n]
	if n > 0 {
		h.siftDown(0, last)
	}
	if root.cancelled {
		h.cancelled--
	}
	return root
}

// replaceMin swaps the root for a new event in a single sift — the fused
// push+pop the Sleep fast path relies on — and returns the old minimum.
func (h *eventHeap) replaceMin(e *event) *event {
	root := h.es[0].ev
	h.siftDown(0, heapEntry{t: e.t, seq: e.seq, ev: e})
	if root.cancelled {
		h.cancelled--
	}
	return root
}

// siftDown places entry at index i and restores heap order below it.
func (h *eventHeap) siftDown(i int, entry heapEntry) {
	es := h.es
	n := len(es)
	for {
		child := i<<2 + 1
		if child >= n {
			break
		}
		end := child + 4
		if end > n {
			end = n
		}
		best := child
		for c := child + 1; c < end; c++ {
			if entryLess(&es[c], &es[best]) {
				best = c
			}
		}
		if !entryLess(&es[best], &entry) {
			break
		}
		es[i] = es[best]
		i = best
	}
	es[i] = entry
}

// compactThreshold gates compaction: below this size the dead entries are
// too few to matter and the pass would dominate.
const compactThreshold = 64

// maybeCompact drops cancelled entries and re-heapifies when they are the
// majority. Removed events are handed to recycle for pooling.
func (h *eventHeap) maybeCompact(recycle func(*event)) {
	if len(h.es) < compactThreshold || h.cancelled*2 <= len(h.es) {
		return
	}
	kept := h.es[:0]
	for _, entry := range h.es {
		if entry.ev.cancelled {
			recycle(entry.ev)
			continue
		}
		kept = append(kept, entry)
	}
	for i := len(kept); i < len(h.es); i++ {
		h.es[i] = heapEntry{}
	}
	h.es = kept
	h.cancelled = 0
	for i := (len(kept) - 2) >> 2; i >= 0; i-- {
		h.siftDown(i, h.es[i])
	}
}
