package sim

// RNG is a small, fast, deterministic pseudo-random generator (splitmix64
// core) used throughout the simulation so that experiments are reproducible
// from a single seed. It intentionally avoids math/rand so seeding behaviour
// is stable across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed*0x9E3779B97F4A7C15 + 0x243F6A8885A308D3}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns an approximately standard-normal value (Irwin–Hall
// sum of 12 uniforms); adequate for weight initialization.
func (r *RNG) NormFloat64() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// Range returns a uniform int in [lo, hi] inclusive.
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		lo, hi = hi, lo
	}
	return lo + r.Intn(hi-lo+1)
}

// Fork derives an independent child generator; streams with different tags
// do not collide.
func (r *RNG) Fork(tag uint64) *RNG {
	return NewRNG(r.Uint64() ^ (tag * 0xD6E8FEB86659FD93))
}
