package sim

import (
	"fmt"
	"sort"
	"time"
)

// Conservative time-window parallel simulation.
//
// A ShardGroup partitions one experiment across n Clocks ("shards"), each
// running its own event loop on its own goroutine. Shards never share
// simulated state; every cross-shard interaction is a timestamped message
// (Shard.Send) buffered in the sender's outbox. The group advances all
// shards in lockstep windows of fixed width: within a window each shard
// runs independently (in parallel, bounded by GOMAXPROCS), and at the
// window edge the barrier drains every outbox and injects the messages
// into their destination clocks in a deterministic merge order —
// (deliver time, source shard, per-shard sequence) — before opening the
// next window.
//
// This is the classic conservative PDES recipe: it is exact whenever the
// window width is at most the minimum cross-shard latency, because a
// message sent during window k can then never be due before window k+1.
// Messages whose latency is shorter than the window are rounded up to the
// window edge (deliverAt = max(sendTime+latency, edge)); choose the window
// accordingly. Because shards are isolated within a window and injection
// order is deterministic, same-seed runs are byte-identical at any
// GOMAXPROCS — parallelism changes wall-clock time only.
type ShardGroup struct {
	window time.Duration
	shards []*Shard
}

// Shard is one partition of a sharded simulation: a private Clock plus an
// outbox of cross-shard messages accumulated during the current window.
// All simulated processes of a shard run on its clock; Send is only legal
// from such a process (one process runs at a time per shard, so the outbox
// needs no lock).
type Shard struct {
	id     int
	group  *ShardGroup
	clock  *Clock
	outSeq uint64
	outbox []xmsg

	cmd  chan time.Duration // horizon for the next window
	done chan error
}

// xmsg is a cross-shard message: a closure to run on the destination
// shard's clock at a virtual delivery time.
type xmsg struct {
	at     time.Duration // sendTime + latency; rounded up to the window edge
	src    int
	dst    int
	seq    uint64 // per-source-shard send order
	name   string
	daemon bool // delivered as a daemon process (does not block termination)
	fn     func()
}

// NewShardGroup creates n shards synchronized on windows of width window.
func NewShardGroup(window time.Duration, n int) *ShardGroup {
	if window <= 0 {
		panic("sim: ShardGroup window must be positive")
	}
	if n <= 0 {
		panic("sim: ShardGroup needs at least one shard")
	}
	g := &ShardGroup{window: window}
	g.shards = make([]*Shard, n)
	for i := range g.shards {
		g.shards[i] = &Shard{
			id:    i,
			group: g,
			clock: NewClock(),
			cmd:   make(chan time.Duration),
			done:  make(chan error, 1),
		}
	}
	return g
}

// Window returns the barrier window width.
func (g *ShardGroup) Window() time.Duration { return g.window }

// Shards returns the number of shards.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Shard returns shard i.
func (g *ShardGroup) Shard(i int) *Shard { return g.shards[i] }

// ID returns the shard's index within its group.
func (s *Shard) ID() int { return s.id }

// Clock returns the shard's private clock. Spawn the shard's processes on
// it before ShardGroup.Run, exactly as with a standalone Clock.
func (s *Shard) Clock() *Clock { return s.clock }

// Send schedules fn to run as a fresh process on shard dst after latency
// of virtual time (clamped up to the next window edge). It must be called
// from a process currently running on s; the message is buffered locally
// and handed over at the barrier, so delivery never touches another
// shard's state mid-window.
func (s *Shard) Send(dst int, name string, latency time.Duration, fn func()) {
	s.send(dst, name, latency, fn, false)
}

// SendDaemon is Send for service traffic (heartbeats, load reports): the
// message is delivered as a daemon process on the destination shard, so an
// endless beat stream never keeps the group alive once real work drains.
func (s *Shard) SendDaemon(dst int, name string, latency time.Duration, fn func()) {
	s.send(dst, name, latency, fn, true)
}

func (s *Shard) send(dst int, name string, latency time.Duration, fn func(), daemon bool) {
	if dst < 0 || dst >= len(s.group.shards) {
		panic(fmt.Sprintf("sim: Send to unknown shard %d (have %d)", dst, len(s.group.shards)))
	}
	if latency < 0 {
		latency = 0
	}
	s.outSeq++
	s.outbox = append(s.outbox, xmsg{
		at:     s.clock.Now() + latency,
		src:    s.id,
		dst:    dst,
		seq:    s.outSeq,
		name:   name,
		daemon: daemon,
		fn:     fn,
	})
}

// TotalEvents sums the events processed by all shards. Safe to call at any
// time (the per-clock counters are atomic).
func (g *ShardGroup) TotalEvents() uint64 {
	var n uint64
	for _, s := range g.shards {
		n += s.clock.Events()
	}
	return n
}

// Run drives all shards until every non-daemon process on every shard has
// finished. It returns a deadlock error if live processes remain but no
// shard has pending events and no messages are in flight. Run must be
// called once, from outside the simulation.
func (g *ShardGroup) Run() error {
	// One persistent runner goroutine per shard: window commands flow down
	// cmd, completions flow back on done. The channel operations give the
	// barrier happens-before edges over everything a shard's processes did
	// during the window (including outbox appends).
	for _, s := range g.shards {
		go func(s *Shard) {
			for h := range s.cmd {
				s.done <- s.clock.RunWindow(h)
			}
		}(s)
	}
	defer func() {
		for _, s := range g.shards {
			close(s.cmd)
		}
	}()

	running := make([]*Shard, 0, len(g.shards))
	var inbox []xmsg
	for {
		// Termination: all non-daemon processes everywhere are done and no
		// messages await delivery. Daemon-only pending events (heartbeat
		// loops) do not keep the group alive, matching Clock.Run.
		live := 0
		for _, s := range g.shards {
			live += s.clock.liveProcs()
		}
		if live == 0 {
			for _, s := range g.shards {
				s.clock.finishWindowed(nil)
			}
			return nil
		}

		// Next window: the edge strictly after the globally earliest
		// pending event. Shards with nothing due before it stay parked.
		earliest, any := time.Duration(0), false
		for _, s := range g.shards {
			if t, ok := s.clock.pendingMin(); ok && (!any || t < earliest) {
				earliest, any = t, true
			}
		}
		if !any {
			err := fmt.Errorf("sim: cross-shard deadlock: %d process(es) blocked with no pending events on any shard", live)
			for _, s := range g.shards {
				s.clock.finishWindowed(err)
			}
			return err
		}
		horizon := (earliest/g.window + 1) * g.window

		running = running[:0]
		for _, s := range g.shards {
			if t, ok := s.clock.pendingMin(); ok && t < horizon {
				running = append(running, s)
			}
		}
		for _, s := range running {
			s.cmd <- horizon
		}
		var windowErr error
		for _, s := range running {
			if err := <-s.done; err != nil && windowErr == nil {
				windowErr = err
			}
		}
		if windowErr != nil {
			for _, s := range g.shards {
				s.clock.finishWindowed(windowErr)
			}
			return windowErr
		}

		// Barrier: merge all outboxes in deterministic order and inject.
		// deliverAt is rounded up to the just-completed edge so a message
		// can never land inside a window that already ran.
		inbox = inbox[:0]
		for _, s := range running {
			for _, m := range s.outbox {
				if m.at < horizon {
					m.at = horizon
				}
				inbox = append(inbox, m)
			}
			s.outbox = s.outbox[:0]
		}
		sort.Slice(inbox, func(i, j int) bool {
			a, b := &inbox[i], &inbox[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.seq < b.seq
		})
		for i := range inbox {
			m := &inbox[i]
			if m.daemon {
				g.shards[m.dst].clock.InjectDaemonAt(m.at, m.name, m.fn)
			} else {
				g.shards[m.dst].clock.InjectAt(m.at, m.name, m.fn)
			}
			m.fn = nil
		}
	}
}
