// Package sim provides a deterministic discrete-event simulation runtime.
//
// Every component of the serving system — engines, schedulers, inferlets,
// clients, external tool servers — runs as a cooperative process on a shared
// virtual Clock. Exactly one process executes at any instant; blocking
// operations (Sleep, Future.Get, Mailbox.Recv) hand control to the earliest
// pending event, ordered by (virtual time, sequence number). This makes
// experiments with hundreds of concurrent agents fully deterministic and
// lets hours of simulated GPU time replay in milliseconds of wall time.
//
// Simulated code must never block on real OS primitives (time.Sleep,
// channel receives, sync.WaitGroup); it must use the Clock's primitives so
// the scheduler can observe the block and advance virtual time.
package sim

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// procState tracks where a process currently lives in the scheduler.
type procState int

const (
	stateReady    procState = iota // queued in the event heap
	stateRunning                   // the single currently-executing process
	stateSleeping                  // in the heap with a future wake time
	stateParked                    // blocked on a Future/Mailbox, not in the heap
	stateDead                      // finished or killed and unwound
)

// Proc is a simulated process. Procs are created with Clock.Go and are
// scheduled cooperatively; a Proc's goroutine runs only while it is the
// clock's current process.
type Proc struct {
	id     uint64
	name   string
	wake   chan struct{}
	state  procState
	killed bool
	daemon bool
	ev     *event // pending heap event while ready/sleeping
	// parkToken increments on every park; unpark requests carrying a stale
	// token (e.g. a future resolving after the waiter was killed) are
	// ignored.
	parkToken uint64
}

// Name returns the debugging name given at spawn time.
func (p *Proc) Name() string { return p.name }

// ID returns the unique process id (assigned in spawn order).
func (p *Proc) ID() uint64 { return p.id }

// Killed reports whether the process has been killed with Clock.Kill.
func (p *Proc) Killed() bool { return p.killed }

type event struct {
	t         time.Duration
	seq       uint64
	p         *Proc
	cancelled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Killed is the panic value delivered to a process that was terminated with
// Clock.Kill while blocked. Runtimes hosting user code recover it at the
// process boundary.
type Killed struct{ Reason string }

func (k Killed) Error() string { return "sim: process killed: " + k.Reason }

// Clock is the discrete-event scheduler. The zero value is not usable; use
// NewClock.
type Clock struct {
	mu       sync.Mutex
	cond     *sync.Cond
	now      time.Duration
	seq      uint64
	heap     eventHeap
	current  *Proc
	live     int // spawned and not yet finished
	parked   int // processes in stateParked
	finished bool
	err      error
	doneCh   chan struct{}

	external bool // keep running while idle, waiting for Inject
	shutdown bool
}

// NewClock returns a fresh virtual clock at time zero.
func NewClock() *Clock {
	c := &Clock{doneCh: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// EnableExternal puts the clock in server mode: when the event heap drains
// while processes remain parked, Run waits for Inject or Shutdown instead of
// reporting a deadlock. Used by interactive front-ends (cmd/pie-server).
func (c *Clock) EnableExternal() {
	c.mu.Lock()
	c.external = true
	c.mu.Unlock()
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Current returns the currently-executing process, or nil when called from
// outside the simulation.
func (c *Clock) Current() *Proc {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.current
}

func (c *Clock) pushLocked(t time.Duration, p *Proc) *event {
	c.seq++
	ev := &event{t: t, seq: c.seq, p: p}
	p.ev = ev
	heap.Push(&c.heap, ev)
	return ev
}

// Go spawns fn as a new process named name, runnable at the current virtual
// time. It may be called from inside a process or from the coordinator
// before Run.
func (c *Clock) Go(name string, fn func()) *Proc {
	return c.spawn(name, fn, false)
}

// GoDaemon spawns a service process (device loops, schedulers, network
// servers). Daemons run like ordinary processes but do not keep the
// simulation alive: Run returns once every non-daemon process finishes.
func (c *Clock) GoDaemon(name string, fn func()) *Proc {
	return c.spawn(name, fn, true)
}

func (c *Clock) spawn(name string, fn func(), daemon bool) *Proc {
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		panic("sim: Go after clock finished")
	}
	c.seq++
	p := &Proc{id: c.seq, name: name, wake: make(chan struct{}, 1), state: stateReady, daemon: daemon}
	if !daemon {
		c.live++
	}
	c.pushLocked(c.now, p)
	c.mu.Unlock()

	go func() {
		<-p.wake
		defer c.finish(p)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(Killed); ok {
					return // killed processes unwind silently
				}
				panic(r)
			}
		}()
		fn()
	}()
	return p
}

// finish retires the current process and dispatches the next event.
func (c *Clock) finish(p *Proc) {
	c.mu.Lock()
	p.state = stateDead
	if !p.daemon {
		c.live--
	}
	c.dispatchNextLocked()
	c.mu.Unlock()
}

// dispatchNextLocked hands control to the earliest pending event, or ends
// the simulation when nothing can make progress. The simulation is over
// when every non-daemon process has finished; daemon service loops are
// then abandoned in place.
func (c *Clock) dispatchNextLocked() {
	if c.finished {
		return
	}
	if c.live == 0 && !c.external {
		c.finished = true
		close(c.doneCh)
		return
	}
	for c.heap.Len() > 0 {
		ev := heap.Pop(&c.heap).(*event)
		if ev.cancelled {
			continue
		}
		if ev.t > c.now {
			c.now = ev.t
		}
		p := ev.p
		p.ev = nil
		p.state = stateRunning
		c.current = p
		p.wake <- struct{}{}
		return
	}
	c.current = nil
	if c.live > 0 && c.external && !c.shutdown {
		// Server mode: stay alive waiting for injected work.
		c.cond.Broadcast()
		return
	}
	if c.live > 0 {
		c.err = fmt.Errorf("sim: deadlock at %v: %d process(es) blocked with no pending events", c.now, c.live)
	}
	if !c.finished {
		c.finished = true
		close(c.doneCh)
	}
}

// Run drives the simulation until every process has finished (or, in
// external mode, until Shutdown). It returns a non-nil error if the
// simulation deadlocked. Run must be called from outside the simulation.
func (c *Clock) Run() error {
	c.mu.Lock()
	if c.current != nil {
		c.mu.Unlock()
		panic("sim: Run called re-entrantly")
	}
	c.dispatchNextLocked()
	c.mu.Unlock()
	<-c.doneCh
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Inject schedules fn as a new process from outside the simulation (e.g. a
// real HTTP handler in server mode) and kicks the scheduler if it is idle.
func (c *Clock) Inject(name string, fn func()) *Proc {
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		panic("sim: Inject after clock finished")
	}
	c.seq++
	p := &Proc{id: c.seq, name: name, wake: make(chan struct{}, 1), state: stateReady}
	c.live++
	c.pushLocked(c.now, p)
	idle := c.current == nil
	c.mu.Unlock()

	go func() {
		<-p.wake
		defer c.finish(p)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(Killed); ok {
					return
				}
				panic(r)
			}
		}()
		fn()
	}()

	if idle {
		c.mu.Lock()
		if c.current == nil && !c.finished {
			c.dispatchNextLocked()
		}
		c.mu.Unlock()
	}
	return p
}

// Shutdown ends an external-mode simulation once it next goes idle.
func (c *Clock) Shutdown() {
	c.mu.Lock()
	c.shutdown = true
	if c.current == nil && c.heap.Len() == 0 && !c.finished {
		c.finished = true
		close(c.doneCh)
	}
	c.mu.Unlock()
}

// Sleep suspends the current process for d of virtual time. A non-positive
// d yields the processor, letting other same-time events run first.
func (c *Clock) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	p := c.current
	if p == nil {
		c.mu.Unlock()
		panic("sim: Sleep called from outside the simulation")
	}
	p.state = stateSleeping
	c.pushLocked(c.now+d, p)
	c.dispatchNextLocked()
	c.mu.Unlock()
	<-p.wake
	c.checkKilled(p)
}

// Yield is Sleep(0): requeue behind all currently-ready events.
func (c *Clock) Yield() { c.Sleep(0) }

// reserveParkToken returns the token the current process's next park will
// carry. Waiter registration (inside Future/Mailbox) captures it before
// parking; execution is cooperative, so nothing can intervene between the
// reservation and the park.
func (c *Clock) reserveParkToken() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.current == nil {
		panic("sim: blocking call from outside the simulation")
	}
	return c.current.parkToken + 1
}

// park blocks the current process until unpark. Used by Future and Mailbox.
func (c *Clock) park() {
	c.mu.Lock()
	p := c.current
	if p == nil {
		c.mu.Unlock()
		panic("sim: blocking call from outside the simulation")
	}
	p.state = stateParked
	p.parkToken++
	c.parked++
	c.dispatchNextLocked()
	c.mu.Unlock()
	<-p.wake
	c.checkKilled(p)
}

// unpark makes a parked process runnable at the current time. A stale
// token (the process was killed or already woken since the waiter
// registered) makes the request a no-op.
func (c *Clock) unpark(p *Proc, token uint64) {
	c.mu.Lock()
	if p.state != stateParked || p.parkToken != token {
		c.mu.Unlock()
		return
	}
	c.parked--
	p.state = stateReady
	c.pushLocked(c.now, p)
	idle := c.current == nil
	if idle && !c.finished {
		// Possible in external mode when an injected goroutine resolves
		// a future while the scheduler is idle.
		c.dispatchNextLocked()
	}
	c.mu.Unlock()
}

// checkKilled panics with Killed if the process was terminated while blocked.
func (c *Clock) checkKilled(p *Proc) {
	c.mu.Lock()
	k := p.killed
	c.mu.Unlock()
	if k {
		panic(Killed{Reason: "terminated while blocked"})
	}
}

// Kill terminates a process. If it is blocked (sleeping or parked) it is
// scheduled immediately and unwinds with a Killed panic at its block site.
// Killing the current or an already-dead process only sets the flag; the
// process observes it at its next blocking call.
func (c *Clock) Kill(p *Proc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p.killed || p.state == stateDead {
		p.killed = true
		return
	}
	p.killed = true
	switch p.state {
	case stateSleeping, stateReady:
		if p.ev != nil {
			p.ev.cancelled = true
			p.ev = nil
		}
		c.pushLocked(c.now, p)
		p.state = stateReady
	case stateParked:
		c.parked--
		c.pushLocked(c.now, p)
		p.state = stateReady
	case stateRunning:
		// Will observe the flag at its next blocking call.
	}
}

// Stats reports coarse scheduler state for diagnostics.
func (c *Clock) Stats() (live, parked, pending int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.live, c.parked, c.heap.Len()
}
