// Package sim provides a deterministic discrete-event simulation runtime.
//
// Every component of the serving system — engines, schedulers, inferlets,
// clients, external tool servers — runs as a cooperative process on a shared
// virtual Clock. Exactly one process executes at any instant; blocking
// operations (Sleep, Future.Get, Mailbox.Recv) hand control to the earliest
// pending event, ordered by (virtual time, sequence number). This makes
// experiments with hundreds of concurrent agents fully deterministic and
// lets hours of simulated GPU time replay in milliseconds of wall time.
//
// Simulated code must never block on real OS primitives (time.Sleep,
// channel receives, sync.WaitGroup); it must use the Clock's primitives so
// the scheduler can observe the block and advance virtual time.
//
// The event loop is the hottest path in the repository: every virtual
// event is one heap push, one heap pop, and one cross-goroutine handoff.
// It is kept lean by an inlined 4-ary heap (heap.go), a free list that
// recycles event records, delivering the killed flag on the wake channel
// itself (no re-lock after waking), and a fast path that skips the handoff
// entirely when a process's own event is the next to run.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// procState tracks where a process currently lives in the scheduler.
type procState int

const (
	stateReady    procState = iota // queued in the event heap
	stateRunning                   // the single currently-executing process
	stateSleeping                  // in the heap with a future wake time
	stateParked                    // blocked on a Future/Mailbox, not in the heap
	stateDead                      // finished or killed and unwound
)

// Proc is a simulated process. Procs are created with Clock.Go and are
// scheduled cooperatively; a Proc's goroutine runs only while it is the
// clock's current process.
type Proc struct {
	id   uint64
	name string
	// wake delivers control to the process; the value is the killed flag at
	// dispatch time, so a woken process never has to re-acquire the clock
	// lock just to learn whether it should unwind.
	wake   chan bool
	state  procState
	killed bool
	daemon bool
	ev     *event // pending heap event while ready/sleeping
	// parkToken increments on every park; unpark requests carrying a stale
	// token (e.g. a future resolving after the waiter was killed) are
	// ignored.
	parkToken uint64
}

// Name returns the debugging name given at spawn time.
func (p *Proc) Name() string { return p.name }

// ID returns the unique process id (assigned in spawn order).
func (p *Proc) ID() uint64 { return p.id }

// Killed reports whether the process has been killed with Clock.Kill.
func (p *Proc) Killed() bool { return p.killed }

type event struct {
	t         time.Duration
	seq       uint64
	p         *Proc
	cancelled bool
}

// Killed is the panic value delivered to a process that was terminated with
// Clock.Kill while blocked. Runtimes hosting user code recover it at the
// process boundary.
type Killed struct{ Reason string }

func (k Killed) Error() string { return "sim: process killed: " + k.Reason }

// totalEvents aggregates events processed by finished clocks across the
// whole process; the eval harness runs many clocks (in parallel) and
// pie-bench reports the sum as a wall-clock throughput.
var totalEvents atomic.Uint64

// TotalEvents returns the number of events processed by all clocks that
// have finished (or been shut down) so far in this process.
func TotalEvents() uint64 { return totalEvents.Load() }

// Clock is the discrete-event scheduler. The zero value is not usable; use
// NewClock.
type Clock struct {
	mu       sync.Mutex
	cond     *sync.Cond
	now      time.Duration
	seq      uint64
	heap     eventHeap
	pool     []*event // free list of recycled event records
	current  *Proc
	live     int // spawned and not yet finished
	parked   int // processes in stateParked
	finished bool
	err      error
	doneCh   chan struct{}

	// events is atomic (not mu-guarded) so cross-shard aggregation —
	// ShardGroup progress probes, eval harness stats — can read counters
	// while shard loops are mid-window on other goroutines.
	events atomic.Uint64

	external bool // keep running while idle, waiting for Inject
	shutdown bool
	running  bool // Run has been entered (guards against nested Run)

	// Windowed (sharded) mode: RunWindow drives the clock only up to
	// horizon, then parks the loop at the barrier instead of finishing.
	// Cross-shard coordination (ShardGroup) injects messages between
	// windows and decides global termination/deadlock.
	windowed bool
	horizon  time.Duration
	pauseCh  chan struct{} // buffered(1); signalled when a window completes
}

// NewClock returns a fresh virtual clock at time zero.
func NewClock() *Clock {
	c := &Clock{doneCh: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// EnableExternal puts the clock in server mode: when the event heap drains
// while processes remain parked, Run waits for Inject or Shutdown instead of
// reporting a deadlock. Used by interactive front-ends (cmd/pie-server).
func (c *Clock) EnableExternal() {
	c.mu.Lock()
	c.external = true
	c.mu.Unlock()
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Current returns the currently-executing process, or nil when called from
// outside the simulation.
func (c *Clock) Current() *Proc {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.current
}

// allocEventLocked takes an event record from the free list (or makes a
// new one), stamps it with the next sequence number, and links it to p.
func (c *Clock) allocEventLocked(t time.Duration, p *Proc) *event {
	c.seq++
	var ev *event
	if n := len(c.pool); n > 0 {
		ev = c.pool[n-1]
		c.pool = c.pool[:n-1]
		ev.t, ev.seq, ev.p, ev.cancelled = t, c.seq, p, false
	} else {
		ev = &event{t: t, seq: c.seq, p: p}
	}
	p.ev = ev
	return ev
}

func (c *Clock) pushLocked(t time.Duration, p *Proc) {
	c.heap.push(c.allocEventLocked(t, p))
}

// recycleLocked returns an event record to the free list.
func (c *Clock) recycleLocked(ev *event) {
	ev.p = nil
	c.pool = append(c.pool, ev)
}

// Go spawns fn as a new process named name, runnable at the current virtual
// time. It may be called from inside a process or from the coordinator
// before Run.
func (c *Clock) Go(name string, fn func()) *Proc {
	return c.spawn(name, fn, false)
}

// GoDaemon spawns a service process (device loops, schedulers, network
// servers). Daemons run like ordinary processes but do not keep the
// simulation alive: Run returns once every non-daemon process finishes.
func (c *Clock) GoDaemon(name string, fn func()) *Proc {
	return c.spawn(name, fn, true)
}

func (c *Clock) spawn(name string, fn func(), daemon bool) *Proc {
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		panic("sim: Go after clock finished")
	}
	c.seq++
	p := &Proc{id: c.seq, name: name, wake: make(chan bool, 1), state: stateReady, daemon: daemon}
	if !daemon {
		c.live++
	}
	c.pushLocked(c.now, p)
	c.mu.Unlock()

	go func() {
		// A process killed before its first dispatch still runs fn and
		// unwinds at its first blocking call, so the flag is dropped here.
		<-p.wake
		defer c.finish(p)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(Killed); ok {
					return // killed processes unwind silently
				}
				panic(r)
			}
		}()
		fn()
	}()
	return p
}

// finish retires the current process and dispatches the next event.
func (c *Clock) finish(p *Proc) {
	c.mu.Lock()
	p.state = stateDead
	if !p.daemon {
		c.live--
	}
	next, killed := c.dispatchNextLocked()
	c.mu.Unlock()
	if next != nil {
		next.wake <- killed
	}
}

// dispatchNextLocked selects the earliest pending event, marks its process
// running, and returns it for the caller to wake (outside the lock, so the
// woken goroutine never contends with its waker on c.mu). It returns nil
// when there is nothing to wake: the simulation finished, went idle in
// external mode, or deadlocked. The returned killed flag is the process's
// kill state at dispatch time; it rides the wake channel to the process.
//
// The simulation is over when every non-daemon process has finished;
// daemon service loops are then abandoned in place.
func (c *Clock) dispatchNextLocked() (next *Proc, killed bool) {
	if c.finished {
		return nil, false
	}
	if c.live == 0 && !c.external && !c.windowed {
		c.finishClockLocked()
		return nil, false
	}
	for c.heap.len() > 0 {
		if c.heap.min().ev.cancelled {
			c.recycleLocked(c.heap.pop())
			continue
		}
		if c.windowed && c.heap.min().t >= c.horizon {
			// Earliest pending work lies beyond the current window: stop
			// here and hand control back to the barrier.
			break
		}
		ev := c.heap.pop()
		if ev.t > c.now {
			c.now = ev.t
		}
		p := ev.p
		p.ev = nil
		c.recycleLocked(ev)
		p.state = stateRunning
		c.current = p
		c.events.Add(1)
		return p, p.killed
	}
	c.current = nil
	if c.windowed {
		// A windowed clock never finishes or deadlocks on its own — shards
		// with no local work may still receive cross-shard messages. Park
		// at the barrier; the ShardGroup decides termination.
		c.pauseWindowLocked()
		return nil, false
	}
	if c.external && !c.shutdown {
		// Server mode: stay alive waiting for injected work — even with no
		// live processes yet. (Requiring live > 0 here used to finish the
		// clock the moment the startup daemons went idle, so the first
		// Inject from an HTTP handler panicked with "Inject after clock
		// finished".)
		c.cond.Broadcast()
		return nil, false
	}
	if c.live > 0 {
		c.err = fmt.Errorf("sim: deadlock at %v: %d process(es) blocked with no pending events", c.now, c.live)
	}
	c.finishClockLocked()
	return nil, false
}

// finishClockLocked marks the simulation over and publishes its event count
// to the process-wide total.
func (c *Clock) finishClockLocked() {
	if c.finished {
		return
	}
	c.finished = true
	totalEvents.Add(c.events.Load())
	close(c.doneCh)
}

// pauseWindowLocked signals RunWindow that the current window is complete.
// The channel is buffered so the signal never blocks the scheduler.
func (c *Clock) pauseWindowLocked() {
	select {
	case c.pauseCh <- struct{}{}:
	default:
	}
}

// RunWindow drives the simulation until every pending event before horizon
// has run (a conservative time-window step), then returns. Processes that
// block past the horizon stay queued for later windows. Unlike Run, an
// empty heap or zero live processes does not end the simulation — global
// termination is the ShardGroup's call, made across all shards at the
// barrier. Must be called from outside the simulation.
func (c *Clock) RunWindow(horizon time.Duration) error {
	c.mu.Lock()
	if c.current != nil {
		c.mu.Unlock()
		panic("sim: RunWindow called re-entrantly")
	}
	if c.finished {
		err := c.err
		c.mu.Unlock()
		return err
	}
	if c.pauseCh == nil {
		c.pauseCh = make(chan struct{}, 1)
	}
	c.windowed = true
	c.horizon = horizon
	next, killed := c.dispatchNextLocked()
	c.mu.Unlock()
	if next != nil {
		next.wake <- killed
	}
	<-c.pauseCh
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// InjectAt schedules fn as a new process with its first dispatch at virtual
// time t (clamped to now). It is the cross-shard delivery primitive: the
// ShardGroup calls it between windows, in deterministic merge order, so it
// never kicks the scheduler itself — the next RunWindow runs the event.
func (c *Clock) InjectAt(t time.Duration, name string, fn func()) *Proc {
	return c.injectAt(t, name, fn, false)
}

// InjectDaemonAt is InjectAt for service messages (heartbeats, monitoring
// probes): the delivered process runs normally but does not keep the
// simulation alive, so a periodic cross-shard beat stream never blocks
// group termination.
func (c *Clock) InjectDaemonAt(t time.Duration, name string, fn func()) *Proc {
	return c.injectAt(t, name, fn, true)
}

func (c *Clock) injectAt(t time.Duration, name string, fn func(), daemon bool) *Proc {
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		panic("sim: InjectAt after clock finished")
	}
	if t < c.now {
		t = c.now
	}
	c.seq++
	p := &Proc{id: c.seq, name: name, wake: make(chan bool, 1), state: stateReady, daemon: daemon}
	if !daemon {
		c.live++
	}
	c.pushLocked(t, p)
	c.mu.Unlock()

	go func() {
		<-p.wake
		defer c.finish(p)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(Killed); ok {
					return
				}
				panic(r)
			}
		}()
		fn()
	}()
	return p
}

// pendingMin reports the earliest non-cancelled pending event, if any.
// Safe to call between windows (no process running).
func (c *Clock) pendingMin() (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.heap.len() > 0 && c.heap.min().ev.cancelled {
		c.recycleLocked(c.heap.pop())
	}
	if c.heap.len() == 0 {
		return 0, false
	}
	return c.heap.min().t, true
}

// liveProcs reports the number of non-daemon processes not yet finished.
func (c *Clock) liveProcs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.live
}

// finishWindowed ends a windowed clock from the barrier (all shards done,
// or a cross-shard deadlock was detected), publishing its event count.
func (c *Clock) finishWindowed(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.finishClockLocked()
	c.mu.Unlock()
}

// Run drives the simulation until every process has finished (or, in
// external mode, until Shutdown). It returns a non-nil error if the
// simulation deadlocked. Run must be called from outside the simulation.
// In external mode an Inject may have kicked the scheduler before Run is
// reached (the server starts its event loop on a goroutine); that is not
// re-entrancy — Run then skips the initial dispatch and just waits.
func (c *Clock) Run() error {
	c.mu.Lock()
	if c.running {
		c.mu.Unlock()
		panic("sim: Run called re-entrantly")
	}
	c.running = true
	var next *Proc
	var killed bool
	if c.current == nil {
		next, killed = c.dispatchNextLocked()
	}
	c.mu.Unlock()
	if next != nil {
		next.wake <- killed
	}
	<-c.doneCh
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Inject schedules fn as a new process from outside the simulation (e.g. a
// real HTTP handler in server mode) and kicks the scheduler if it is idle.
func (c *Clock) Inject(name string, fn func()) *Proc {
	c.mu.Lock()
	if c.finished {
		c.mu.Unlock()
		panic("sim: Inject after clock finished")
	}
	c.seq++
	p := &Proc{id: c.seq, name: name, wake: make(chan bool, 1), state: stateReady}
	c.live++
	c.pushLocked(c.now, p)
	idle := c.current == nil && !c.windowed
	c.mu.Unlock()

	go func() {
		<-p.wake
		defer c.finish(p)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(Killed); ok {
					return
				}
				panic(r)
			}
		}()
		fn()
	}()

	if idle {
		c.mu.Lock()
		var next *Proc
		var killed bool
		if c.current == nil && !c.finished {
			next, killed = c.dispatchNextLocked()
		}
		c.mu.Unlock()
		if next != nil {
			next.wake <- killed
		}
	}
	return p
}

// Shutdown ends an external-mode simulation once it next goes idle.
func (c *Clock) Shutdown() {
	c.mu.Lock()
	c.shutdown = true
	if c.current == nil && c.heap.live() == 0 && !c.finished {
		c.finishClockLocked()
	}
	c.mu.Unlock()
}

// Sleep suspends the current process for d of virtual time. A non-positive
// d yields the processor, letting other same-time events run first.
func (c *Clock) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	p := c.current
	if p == nil {
		c.mu.Unlock()
		panic("sim: Sleep called from outside the simulation")
	}
	p.state = stateSleeping
	next, killed := c.sleepDispatchLocked(p, c.now+d)
	c.mu.Unlock()
	if next == p {
		// Fast path: our own event was the earliest — control never left
		// this goroutine, so skip the channel round trip entirely.
		if killed {
			panic(Killed{Reason: "terminated while blocked"})
		}
		return
	}
	if next != nil {
		next.wake <- killed
	}
	if <-p.wake {
		panic(Killed{Reason: "terminated while blocked"})
	}
}

// sleepDispatchLocked is the fused push+dispatch for Sleep, the single
// hottest operation in the simulator. When the sleeping process's own wake
// at time t precedes everything pending, it is redispatched directly — no
// heap traffic, no event record, no goroutine handoff. Otherwise its event
// replaces the heap minimum in one sift instead of a push followed by a
// pop.
func (c *Clock) sleepDispatchLocked(p *Proc, t time.Duration) (next *Proc, killed bool) {
	if c.finished || (c.live == 0 && !c.external && !c.windowed) {
		// Clock teardown (only daemons remain): take the generic path,
		// which finishes the simulation and abandons p in place.
		c.pushLocked(t, p)
		return c.dispatchNextLocked()
	}
	for c.heap.len() > 0 && c.heap.min().ev.cancelled {
		c.recycleLocked(c.heap.pop())
	}
	if c.windowed && t >= c.horizon {
		// The wake lands beyond the current window: queue it and let the
		// generic path run an earlier event or park at the barrier.
		c.pushLocked(t, p)
		return c.dispatchNextLocked()
	}
	if c.heap.len() == 0 || t < c.heap.min().t {
		c.seq++ // the skipped event still consumes its sequence number
		if t > c.now {
			c.now = t
		}
		p.state = stateRunning
		c.events.Add(1)
		return p, p.killed
	}
	// Here heap.min().t <= t, so in windowed mode the dispatched event is
	// inside the window (t < horizon was established above).
	ev := c.heap.replaceMin(c.allocEventLocked(t, p))
	if ev.t > c.now {
		c.now = ev.t
	}
	nextP := ev.p
	nextP.ev = nil
	c.recycleLocked(ev)
	nextP.state = stateRunning
	c.current = nextP
	c.events.Add(1)
	return nextP, nextP.killed
}

// Yield is Sleep(0): requeue behind all currently-ready events.
func (c *Clock) Yield() { c.Sleep(0) }

// reserveParkToken returns the token the current process's next park will
// carry. Waiter registration (inside Future/Mailbox) captures it before
// parking; execution is cooperative, so nothing can intervene between the
// reservation and the park.
func (c *Clock) reserveParkToken() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.current == nil {
		panic("sim: blocking call from outside the simulation")
	}
	return c.current.parkToken + 1
}

// park blocks the current process until unpark. Used by Future and Mailbox.
func (c *Clock) park() {
	c.mu.Lock()
	p := c.current
	if p == nil {
		c.mu.Unlock()
		panic("sim: blocking call from outside the simulation")
	}
	p.state = stateParked
	p.parkToken++
	c.parked++
	next, killed := c.dispatchNextLocked()
	c.mu.Unlock()
	if next != nil {
		next.wake <- killed
	}
	if <-p.wake {
		panic(Killed{Reason: "terminated while blocked"})
	}
}

// unpark makes a parked process runnable at the current time. A stale
// token (the process was killed or already woken since the waiter
// registered) makes the request a no-op.
func (c *Clock) unpark(p *Proc, token uint64) {
	c.mu.Lock()
	if p.state != stateParked || p.parkToken != token {
		c.mu.Unlock()
		return
	}
	c.parked--
	p.state = stateReady
	c.pushLocked(c.now, p)
	var next *Proc
	var killed bool
	if c.current == nil && !c.finished && !c.windowed {
		// Possible in external mode when an injected goroutine resolves
		// a future while the scheduler is idle. A windowed clock is only
		// ever dispatched by RunWindow, so the barrier can mutate shard
		// state between windows without racing a stray dispatch.
		next, killed = c.dispatchNextLocked()
	}
	c.mu.Unlock()
	if next != nil {
		next.wake <- killed
	}
}

// Kill terminates a process. If it is blocked (sleeping or parked) it is
// scheduled immediately and unwinds with a Killed panic at its block site.
// Killing the current or an already-dead process only sets the flag; the
// process observes it at its next blocking call.
func (c *Clock) Kill(p *Proc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p.killed || p.state == stateDead {
		p.killed = true
		return
	}
	p.killed = true
	switch p.state {
	case stateSleeping, stateReady:
		if p.ev != nil {
			p.ev.cancelled = true
			c.heap.cancelled++
			p.ev = nil
			c.heap.maybeCompact(c.recycleLocked)
		}
		c.pushLocked(c.now, p)
		p.state = stateReady
	case stateParked:
		c.parked--
		c.pushLocked(c.now, p)
		p.state = stateReady
	case stateRunning:
		// Will observe the flag at its next blocking call.
	}
}

// Stats reports coarse scheduler state for diagnostics: live and parked
// process counts, pending (non-cancelled) events, and the total number of
// events this clock has processed.
func (c *Clock) Stats() (live, parked, pending int, events uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.live, c.parked, c.heap.live(), c.events.Load()
}

// Events returns the number of events this clock has processed so far. The
// counter is atomic, so reading it from outside the shard loop is safe even
// while the clock is mid-window.
func (c *Clock) Events() uint64 {
	return c.events.Load()
}
