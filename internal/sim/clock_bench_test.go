package sim

import (
	"testing"
	"time"
)

// BenchmarkClockEventLoop measures raw event throughput of the
// discrete-event core: 1k concurrent processes each sleeping
// pseudo-random durations, so every event is a heap push, a heap pop,
// and a cross-goroutine handoff. The events/sec metric is the headline
// number tracked in BENCH_sim.json.
func BenchmarkClockEventLoop(b *testing.B) {
	const (
		procs  = 1000
		rounds = 50
	)
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		c := NewClock()
		for p := 0; p < procs; p++ {
			r := NewRNG(uint64(p) + 1)
			c.Go("p", func() {
				for k := 0; k < rounds; k++ {
					c.Sleep(time.Duration(r.Intn(1000)) * time.Microsecond)
				}
			})
		}
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
		_, _, _, ev := c.Stats()
		events += int64(ev)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkClockSparseTicker measures the sparse-heap regime that
// dominates real engine runs: one pacing process advances virtual time
// while 1k other processes sit parked on futures (a device loop ticking
// while inferlets await completions). Every tick takes the self-dispatch
// fast path: no heap traffic, no event record, no goroutine handoff.
func BenchmarkClockSparseTicker(b *testing.B) {
	const parked = 1000
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		c := NewClock()
		futs := make([]*Future[int], parked)
		for p := 0; p < parked; p++ {
			f := NewFuture[int](c)
			futs[p] = f
			c.Go("waiter", func() { f.Get() })
		}
		c.Go("ticker", func() {
			for k := 0; k < 100000; k++ {
				c.Sleep(time.Microsecond)
			}
			for _, f := range futs {
				f.Resolve(1)
			}
		})
		if err := c.Run(); err != nil {
			b.Fatal(err)
		}
		_, _, _, ev := c.Stats()
		events += int64(ev)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}
