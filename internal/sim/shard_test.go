package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestShardGroupPingPong bounces a token between two shards and checks that
// delivery times are rounded up to window edges and the group terminates.
func TestShardGroupPingPong(t *testing.T) {
	g := NewShardGroup(time.Millisecond, 2)
	var log []string
	const rounds = 5

	var hop func(shard, n int)
	hop = func(shard, n int) {
		s := g.Shard(shard)
		log = append(log, fmt.Sprintf("%d@%v", shard, s.Clock().Now()))
		if n >= rounds {
			return
		}
		s.Send(1-shard, "hop", 100*time.Microsecond, func() { hop(1-shard, n+1) })
	}
	g.Shard(0).Clock().Go("start", func() { hop(0, 0) })

	if err := g.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(log) != rounds+1 {
		t.Fatalf("got %d hops, want %d: %v", len(log), rounds+1, log)
	}
	// Each hop's latency (100µs) is below the 1ms window, so every delivery
	// lands exactly on the next window edge: 1ms, 2ms, ...
	for i, want := range []string{"0@0s", "1@1ms", "0@2ms", "1@3ms", "0@4ms", "1@5ms"} {
		if log[i] != want {
			t.Fatalf("hop %d = %q, want %q (log %v)", i, log[i], want, log)
		}
	}
}

// TestShardGroupLongLatency checks that a message with latency beyond the
// window keeps its exact virtual delivery time.
func TestShardGroupLongLatency(t *testing.T) {
	g := NewShardGroup(time.Millisecond, 2)
	var at time.Duration
	g.Shard(0).Clock().Go("send", func() {
		g.Shard(0).Send(1, "far", 7500*time.Microsecond, func() {
			at = g.Shard(1).Clock().Now()
		})
	})
	if err := g.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 7500*time.Microsecond {
		t.Fatalf("delivered at %v, want 7.5ms", at)
	}
}

// TestShardGroupDeadlock: a parked process with no pending events or
// in-flight messages anywhere must be reported, not hung.
func TestShardGroupDeadlock(t *testing.T) {
	g := NewShardGroup(time.Millisecond, 2)
	c := g.Shard(0).Clock()
	c.Go("stuck", func() {
		f := NewFuture[int](c)
		f.Get() // never resolved
	})
	err := g.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

// TestShardGroupDaemonsDoNotBlock: daemon heartbeat loops must not keep the
// group alive once real work drains, matching Clock.Run semantics.
func TestShardGroupDaemonsDoNotBlock(t *testing.T) {
	g := NewShardGroup(time.Millisecond, 3)
	for i := 0; i < g.Shards(); i++ {
		c := g.Shard(i).Clock()
		c.GoDaemon("beat", func() {
			for {
				c.Sleep(500 * time.Microsecond)
			}
		})
	}
	c0 := g.Shard(0).Clock()
	c0.Go("work", func() { c0.Sleep(10 * time.Millisecond) })
	if err := g.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// shardTrace runs a seeded random cross-shard workload and returns a
// deterministic textual trace of every message execution.
func shardTrace(seed int64, shards, msgs int) string {
	g := NewShardGroup(time.Millisecond, shards)
	// One log per shard: message handlers run concurrently across shards
	// mid-window, so shared state must be partitioned exactly like
	// simulated state. Each shard's log is its deterministic local
	// execution order; the merge below is a fixed post-run concatenation.
	logs := make([]strings.Builder, shards)
	for i := 0; i < shards; i++ {
		i := i
		rng := rand.New(rand.NewSource(seed + int64(i)))
		c := g.Shard(i).Clock()
		c.Go(fmt.Sprintf("gen%d", i), func() {
			for m := 0; m < msgs; m++ {
				c.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
				dst := rng.Intn(shards)
				id := fmt.Sprintf("s%dm%d", i, m)
				g.Shard(i).Send(dst, id, time.Duration(rng.Intn(3000))*time.Microsecond, func() {
					fmt.Fprintf(&logs[dst], "%s->%d@%v\n", id, dst, g.Shard(dst).Clock().Now())
				})
			}
		})
	}
	if err := g.Run(); err != nil {
		panic(err)
	}
	var sb strings.Builder
	for i := range logs {
		fmt.Fprintf(&sb, "shard %d:\n%s", i, logs[i].String())
	}
	fmt.Fprintf(&sb, "events=%d\n", g.TotalEvents())
	return sb.String()
}

// TestShardGroupDeterminism: the trace must be byte-identical across
// repeated runs and across GOMAXPROCS settings, and must change with the
// seed (a trivially-constant trace would pass the first check vacuously).
func TestShardGroupDeterminism(t *testing.T) {
	const shards, msgs = 8, 40
	base := shardTrace(1, shards, msgs)
	if again := shardTrace(1, shards, msgs); again != base {
		t.Fatalf("same-seed rerun diverged:\n%s\nvs\n%s", base, again)
	}

	prev := runtime.GOMAXPROCS(1)
	serial := shardTrace(1, shards, msgs)
	runtime.GOMAXPROCS(prev)
	if serial != base {
		t.Fatalf("GOMAXPROCS=1 trace diverged from parallel trace:\n%s\nvs\n%s", serial, base)
	}

	if other := shardTrace(2, shards, msgs); other == base {
		t.Fatal("seed 2 produced the same trace as seed 1; trace is insensitive to the workload")
	}
}

// TestShardGroupConcurrentStats reads aggregate counters from outside while
// shard loops run; -race verifies the atomic counter path.
func TestShardGroupConcurrentStats(t *testing.T) {
	g := NewShardGroup(time.Millisecond, 4)
	for i := 0; i < g.Shards(); i++ {
		c := g.Shard(i).Clock()
		c.Go("spin", func() {
			for k := 0; k < 5000; k++ {
				c.Sleep(time.Microsecond)
			}
		})
	}
	stop := make(chan struct{})
	probed := make(chan uint64, 1)
	go func() {
		var last uint64
		for {
			select {
			case <-stop:
				probed <- last
				return
			default:
				last = g.TotalEvents()
				for i := 0; i < g.Shards(); i++ {
					g.Shard(i).Clock().Events()
				}
			}
		}
	}()
	if err := g.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	close(stop)
	<-probed
	if got := g.TotalEvents(); got < 4*5000 {
		t.Fatalf("TotalEvents = %d, want >= %d", got, 4*5000)
	}
}

// TestShardGroupMergeOrder: simultaneous deliveries from different source
// shards must run in (deliver time, source shard, seq) order.
func TestShardGroupMergeOrder(t *testing.T) {
	g := NewShardGroup(time.Millisecond, 4)
	var order []string
	// Shards 3, 1, 2 all send to shard 0 at the same virtual instant; spawn
	// order is deliberately descending to show the merge ignores it.
	for _, src := range []int{3, 2, 1} {
		src := src
		c := g.Shard(src).Clock()
		c.Go("send", func() {
			for k := 0; k < 2; k++ {
				id := fmt.Sprintf("s%d#%d", src, k)
				g.Shard(src).Send(0, id, 0, func() { order = append(order, id) })
			}
		})
	}
	if err := g.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"s1#0", "s1#1", "s2#0", "s2#1", "s3#0", "s3#1"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("merge order = %v, want %v", order, want)
	}
}

// TestRunWindowStandalone exercises RunWindow directly: events beyond the
// horizon stay queued, and re-entrant calls panic.
func TestRunWindowStandalone(t *testing.T) {
	c := NewClock()
	var ran []time.Duration
	c.Go("a", func() {
		for i := 0; i < 3; i++ {
			c.Sleep(700 * time.Microsecond)
			ran = append(ran, c.Now())
		}
	})
	if err := c.RunWindow(time.Millisecond); err != nil {
		t.Fatalf("window 1: %v", err)
	}
	if len(ran) != 1 || ran[0] != 700*time.Microsecond {
		t.Fatalf("after window 1: ran=%v", ran)
	}
	if err := c.RunWindow(2 * time.Millisecond); err != nil {
		t.Fatalf("window 2: %v", err)
	}
	if len(ran) != 2 || ran[1] != 1400*time.Microsecond {
		t.Fatalf("after window 2: ran=%v", ran)
	}
	if err := c.RunWindow(10 * time.Millisecond); err != nil {
		t.Fatalf("window 3: %v", err)
	}
	if len(ran) != 3 {
		t.Fatalf("after window 3: ran=%v", ran)
	}
	if live := c.liveProcs(); live != 0 {
		t.Fatalf("liveProcs = %d, want 0", live)
	}
	// InjectAt keeps a paused windowed clock usable between windows.
	hit := false
	c.InjectAt(5*time.Millisecond, "late", func() { hit = true })
	if err := c.RunWindow(20 * time.Millisecond); err != nil {
		t.Fatalf("window 4: %v", err)
	}
	if !hit {
		t.Fatal("InjectAt process never ran")
	}
	c.finishWindowed(nil)
	if c.Events() == 0 {
		t.Fatal("no events recorded")
	}
}
