package sim

import (
	"testing"
	"time"
)

// drain pops every event, skipping cancelled entries, and returns the
// live events in pop order.
func drain(h *eventHeap) []*event {
	var out []*event
	for h.len() > 0 {
		e := h.pop()
		if e.cancelled {
			continue
		}
		out = append(out, e)
	}
	return out
}

func TestHeapPopOrdering(t *testing.T) {
	h := &eventHeap{}
	r := NewRNG(7)
	const n = 500
	for i := 0; i < n; i++ {
		h.push(&event{t: time.Duration(r.Intn(50)) * time.Millisecond, seq: uint64(i + 1)})
	}
	out := drain(h)
	if len(out) != n {
		t.Fatalf("drained %d events, want %d", len(out), n)
	}
	for i := 1; i < len(out); i++ {
		a, b := out[i-1], out[i]
		if a.t > b.t {
			t.Fatalf("pop %d: time %v after %v", i, b.t, a.t)
		}
		if a.t == b.t && a.seq > b.seq {
			t.Fatalf("pop %d: duplicate timestamp %v ordered %d before %d", i, a.t, a.seq, b.seq)
		}
	}
}

func TestHeapDuplicateTimestampsFIFO(t *testing.T) {
	// All events at the same instant must pop in push (seq) order — the
	// determinism contract for same-time wakeups.
	h := &eventHeap{}
	const n = 64
	for i := 0; i < n; i++ {
		h.push(&event{t: time.Millisecond, seq: uint64(i + 1)})
	}
	for i := 0; i < n; i++ {
		if got := h.pop().seq; got != uint64(i+1) {
			t.Fatalf("pop %d: seq %d, want %d", i, got, i+1)
		}
	}
}

func TestHeapReplaceMin(t *testing.T) {
	h := &eventHeap{}
	for i := 1; i <= 16; i++ {
		h.push(&event{t: time.Duration(i) * time.Millisecond, seq: uint64(i)})
	}
	// Replace the 1ms root with a 5ms event: the old root comes back and
	// subsequent pops interleave the replacement correctly.
	got := h.replaceMin(&event{t: 5 * time.Millisecond, seq: 100})
	if got.t != time.Millisecond {
		t.Fatalf("replaceMin returned %v, want 1ms", got.t)
	}
	out := drain(h)
	if len(out) != 16 {
		t.Fatalf("drained %d, want 16", len(out))
	}
	prev := out[0]
	for _, e := range out[1:] {
		if e.t < prev.t || (e.t == prev.t && e.seq < prev.seq) {
			t.Fatalf("order violated after replaceMin: %v/%d before %v/%d", prev.t, prev.seq, e.t, e.seq)
		}
		prev = e
	}
}

func TestHeapCancelledCompaction(t *testing.T) {
	h := &eventHeap{}
	const n = 200
	evs := make([]*event, n)
	for i := 0; i < n; i++ {
		evs[i] = &event{t: time.Duration(i) * time.Millisecond, seq: uint64(i + 1)}
		h.push(evs[i])
	}
	// Cancel a majority, like a mass Kill of sleeping inferlets.
	recycled := 0
	for i := 0; i < n; i++ {
		if i%4 != 0 {
			evs[i].cancelled = true
			h.cancelled++
		}
	}
	h.maybeCompact(func(*event) { recycled++ })
	if h.cancelled != 0 {
		t.Fatalf("cancelled count %d after compaction, want 0", h.cancelled)
	}
	if want := n - n/4; recycled != want {
		t.Fatalf("recycled %d events, want %d", recycled, want)
	}
	if h.len() != n/4 {
		t.Fatalf("heap len %d after compaction, want %d", h.len(), n/4)
	}
	out := drain(h)
	for i := 1; i < len(out); i++ {
		if out[i-1].t > out[i].t {
			t.Fatalf("compaction broke heap order: %v before %v", out[i-1].t, out[i].t)
		}
	}
	// Survivors are exactly the non-cancelled events.
	if len(out) != n/4 {
		t.Fatalf("%d live events drained, want %d", len(out), n/4)
	}
	for _, e := range out {
		if (int(e.seq)-1)%4 != 0 {
			t.Fatalf("cancelled event seq %d survived compaction", e.seq)
		}
	}
}

func TestHeapCompactionBelowThresholdIsNoop(t *testing.T) {
	h := &eventHeap{}
	for i := 0; i < compactThreshold/2; i++ {
		e := &event{t: time.Duration(i), seq: uint64(i + 1), cancelled: true}
		h.push(e)
		h.cancelled++
	}
	h.maybeCompact(func(*event) { t.Fatal("compacted below threshold") })
	if h.len() != compactThreshold/2 {
		t.Fatalf("len changed to %d", h.len())
	}
}

func TestClockKillCompactsHeap(t *testing.T) {
	// A mass kill of sleeping processes must not leave the heap full of
	// corpses: Kill marks events cancelled and compaction reclaims them.
	c := NewClock()
	const n = 4 * compactThreshold
	victims := make([]*Proc, n)
	c.Go("killer", func() {
		c.Sleep(time.Millisecond)
		for _, v := range victims {
			c.Kill(v)
		}
		c.mu.Lock()
		heapLen := c.heap.len()
		c.mu.Unlock()
		// n cancelled sleep events were replaced by n immediate wakeups;
		// compaction must have dropped most of the cancelled slots.
		if heapLen > n+compactThreshold {
			t.Errorf("heap holds %d entries after mass kill of %d", heapLen, n)
		}
	})
	for i := range victims {
		victims[i] = c.Go("victim", func() { c.Sleep(time.Hour) })
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Now(); got >= time.Hour {
		t.Fatalf("clock ran to %v; cancelled sleeps should never fire", got)
	}
}

func TestEventPoolReuseUnderChurn(t *testing.T) {
	// Steady-state churn (sleep storms) must recycle event records through
	// the free list instead of allocating per event.
	c := NewClock()
	for p := 0; p < 8; p++ {
		r := NewRNG(uint64(p) + 1)
		c.Go("churn", func() {
			for k := 0; k < 2000; k++ {
				c.Sleep(time.Duration(r.Intn(100)) * time.Microsecond)
			}
		})
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	_, _, _, events := c.Stats()
	if events < 8*2000 {
		t.Fatalf("processed %d events, want >= 16000", events)
	}
	// The pool can never exceed the peak number of simultaneously pending
	// events (8 sleepers + spawn events), far below the event count.
	if got := len(c.pool); got > 32 {
		t.Fatalf("free list grew to %d records; recycling is broken", got)
	}
	// Total event records materialized = pool + any still referenced;
	// with the free list working this is bounded by peak concurrency, so
	// the churn of 16k sleeps must not have built 16k records.
	if cap(c.heap.es) > 64 {
		t.Fatalf("heap backing array grew to %d for 8 concurrent procs", cap(c.heap.es))
	}
}

func TestClockEventCounter(t *testing.T) {
	before := TotalEvents()
	c := NewClock()
	c.Go("p", func() {
		for i := 0; i < 10; i++ {
			c.Sleep(time.Millisecond)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	_, _, _, events := c.Stats()
	if events != 11 { // spawn dispatch + 10 sleeps
		t.Fatalf("clock events = %d, want 11", events)
	}
	if got := TotalEvents() - before; got < 11 {
		t.Fatalf("TotalEvents advanced by %d, want >= 11", got)
	}
}
