// Package infer implements Pie's inference layer (§5.3): the hardware
// execution backend. It receives batched API calls from the control layer
// across a simulated IPC boundary, prices them with the GPU cost model,
// executes them against the functional transformer, and reports results
// back to the control layer's event dispatcher.
//
// The backend runs in one of two execution modes:
//
//   - ExecFull: every forward/embed/sample op performs real tensor math on
//     the tiny functional model. Used by correctness tests, examples, and
//     content-sensitive workloads (EBNF decoding, watermarking, beam
//     search scoring).
//   - ExecTiming: tensor math is skipped; resource bookkeeping (page
//     occupancy, positions, mask bits, embed validity) still happens, and
//     all virtual-time charges are identical. Used by the large-scale
//     experiment harness (hundreds of concurrent inferlets) where paper
//     claims depend on timing structure, not token content.
package infer

import (
	"time"

	"pie/internal/model"
	"pie/internal/sim"
)

// Op enumerates the inference-layer API call types (one handler each).
type Op int

const (
	OpEmbedText Op = iota
	OpEmbedImage
	OpForward
	OpNextDist
	OpCopyKv
	OpMaskKv
	OpTokenize
	OpDetokenize
	OpGetVocabs
	// Control-side queue ops: never shipped to the backend, but they flow
	// through command queues for ordering.
	OpDealloc
	OpSync
)

var opNames = map[Op]string{
	OpEmbedText: "embed_txt", OpEmbedImage: "embed_img", OpForward: "forward",
	OpNextDist: "get_next_dist", OpCopyKv: "copy_kvpage", OpMaskKv: "mask_kvpage",
	OpTokenize: "tokenize", OpDetokenize: "detokenize", OpGetVocabs: "get_vocabs",
	OpDealloc: "dealloc", OpSync: "synchronize",
}

// String returns the paper's API name for the op.
func (o Op) String() string { return opNames[o] }

// ControlSide reports whether the op is handled by the control layer
// without a backend round trip.
func (o Op) ControlSide() bool { return o == OpDealloc || o == OpSync }

// SampleSpec requests fused sampling inside a forward kernel (the
// forward_with_sampling extension used in the Table 3 ablation): the
// monolithic-style pipeline that samples on-GPU without returning a
// distribution.
type SampleSpec struct {
	TopK        int
	Temperature float32
	Seed        uint64
}

// Call is one inference-layer API invocation with all resource handles
// already resolved to physical objects by the control layer.
type Call struct {
	Op    Op
	Seq   uint64        // global submission order
	Enq   time.Duration // control-layer enqueue time
	Inst  uint64        // issuing inferlet instance id
	Model *ModelRuntime

	// OpForward
	CtxPages []*model.KvPage
	Inputs   []*model.EmbedSlot
	OutPages []*model.KvPage
	Outputs  []*model.EmbedSlot
	Mask     [][]bool
	Adapter  string
	Sample   *SampleSpec        // fused sampling (nil for the standard path)
	FusedTok *sim.Future[[]int] // fused sampling result
	FusedEmb []int              // fused input embedding: token ids
	FusedPos []int              //   ...and their positions

	// OpEmbedText
	TokenIDs  []int
	Positions []int
	// OpEmbedImage
	Blob []byte

	// OpNextDist
	DistOf  *model.EmbedSlot
	DistFut *sim.Future[DistResult]

	// OpCopyKv
	SrcPage, DstPage *model.KvPage
	SrcOff, DstOff   int
	NumTokens        int

	// OpMaskKv
	MaskPage *model.KvPage
	MaskBits []bool

	// OpTokenize / OpDetokenize / OpGetVocabs
	Text     string
	TokFut   *sim.Future[[]int]
	TextFut  *sim.Future[string]
	VocabFut *sim.Future[[][]byte]

	// OpDealloc (control-side)
	ControlFn func()
	// OpSync (control-side)
	SyncFut *sim.Signal

	// PinnedPages is control-layer bookkeeping for the tiered KV cache:
	// the physical pages this call references, pinned device-resident
	// from enqueue until completion (or queue teardown) so the offload
	// policy never evicts a page a dispatched kernel addresses.
	PinnedPages []PagePin

	// Done resolves when the call completes (or fails).
	Done *sim.Signal
	Err  error
}

// PagePin identifies one pinned physical page by id and allocation
// generation. The generation lets the pool ignore stale unpins: an id
// can be freed and recycled while a terminated instance's in-flight call
// still holds its pin record.
type PagePin struct {
	Page int32
	Gen  uint64
}

// DistResult carries a truncated next-token distribution.
type DistResult struct {
	Tokens []int
	Probs  []float32
}

// NewTokens returns the number of fresh tokens a call feeds the model.
func (c *Call) NewTokens() int {
	switch c.Op {
	case OpForward:
		if len(c.FusedEmb) > 0 {
			return len(c.FusedEmb)
		}
		return len(c.Inputs)
	case OpEmbedText:
		return len(c.TokenIDs)
	case OpEmbedImage:
		return c.Model.Model.EmbedsNeededForImage(len(c.Blob))
	}
	return 0
}

// CtxTokens returns the number of context entries a forward attends over.
func (c *Call) CtxTokens() int {
	if c.Op != OpForward {
		return 0
	}
	n := 0
	for _, p := range c.CtxPages {
		for s, u := range p.Used {
			if u && !p.Masked[s] {
				n++
			}
		}
	}
	return n
}

// Batch is a set of same-op calls dispatched as one kernel. Calls execute
// functionally in slice order at kernel completion, which makes vertical
// batching of dependent (chained) forwards from one queue correct by
// construction.
type Batch struct {
	Op    Op
	Model *ModelRuntime
	Calls []*Call
	// Extra is control-layer overhead charged onto this batch by the
	// scheduler (batch formation, distribution return — Table 3 rows).
	Extra time.Duration
	// SubmittedAt is stamped by Backend.Submit (Fig. 10 instrumentation).
	SubmittedAt time.Duration
}

// Cost prices the batch: one kernel launch and one weight stream per
// batch, marginal per-token terms summed over calls. This shared weight
// stream is the entire economics of batching (§5.2, Table 5).
func (b *Batch) Cost() time.Duration {
	return b.Extra + b.baseCost()
}

func (b *Batch) baseCost() time.Duration {
	spec := b.Model.Spec
	switch b.Op {
	case OpForward:
		// Calls feeding one or two tokens are decode steps (memory-bound
		// marginal); larger inputs are bulk prefill (compute-bound).
		decodeSeqs, prefillTok, ctxTok, fused, fusedEmbTok := 0, 0, 0, 0, 0
		for _, c := range b.Calls {
			n := c.NewTokens()
			if n <= 2 {
				decodeSeqs += n
			} else {
				prefillTok += n
			}
			ctxTok += c.CtxTokens()
			if c.Sample != nil {
				fused++
			}
			fusedEmbTok += len(c.FusedEmb)
		}
		cost := spec.ForwardCost(decodeSeqs, prefillTok, ctxTok)
		if fused > 0 {
			cost += spec.FusedSampleCost(fused)
		}
		if fusedEmbTok > 0 {
			cost += time.Duration(fusedEmbTok) * spec.EmbedPerTok
		}
		return cost
	case OpEmbedText, OpEmbedImage:
		tok := 0
		for _, c := range b.Calls {
			tok += c.NewTokens()
		}
		return spec.EmbedCost(tok)
	case OpNextDist:
		return spec.SampleCost(len(b.Calls))
	case OpCopyKv:
		tok := 0
		for _, c := range b.Calls {
			tok += c.NumTokens
		}
		return spec.KvOpCost(tok)
	case OpMaskKv:
		tok := 0
		for _, c := range b.Calls {
			tok += len(c.MaskBits)
		}
		return spec.KvOpCost(tok)
	case OpTokenize, OpDetokenize, OpGetVocabs:
		bytes := 0
		for _, c := range b.Calls {
			bytes += len(c.Text) + 16
		}
		return 3*time.Microsecond + time.Duration(bytes)*2*time.Nanosecond
	}
	return time.Microsecond
}
