package infer

import (
	"testing"
	"time"

	"pie/internal/model"
	"pie/internal/sim"
)

func testRuntime(mode ExecMode) *ModelRuntime {
	cat := model.StandardCatalog(42)
	return NewModelRuntime(cat.Models["llama-1b"], mode)
}

func TestBatchCostSharesWeightStream(t *testing.T) {
	rt := testRuntime(ExecTiming)
	mkFwd := func() *Call {
		in := rt.Embed(0)
		in.Valid = true
		return &Call{Op: OpForward, Model: rt, Inputs: []*model.EmbedSlot{in}}
	}
	one := (&Batch{Op: OpForward, Model: rt, Calls: []*Call{mkFwd()}}).Cost()
	var calls []*Call
	for i := 0; i < 16; i++ {
		calls = append(calls, mkFwd())
	}
	sixteen := (&Batch{Op: OpForward, Model: rt, Calls: calls}).Cost()
	if sixteen >= 16*one/4 {
		t.Fatalf("no batching economics: 16 calls cost %v vs %v for one", sixteen, one)
	}
	if sixteen <= one {
		t.Fatal("marginal per-call cost missing")
	}
}

func TestBatchCostPrefillVsDecode(t *testing.T) {
	rt := testRuntime(ExecTiming)
	mk := func(n int) *Call {
		var ins []*model.EmbedSlot
		for i := 0; i < n; i++ {
			s := rt.Embed(int32(100 + i))
			s.Valid = true
			ins = append(ins, s)
		}
		return &Call{Op: OpForward, Model: rt, Inputs: ins}
	}
	decode64 := time.Duration(0)
	for i := 0; i < 64; i++ {
		decode64 += (&Batch{Op: OpForward, Model: rt, Calls: []*Call{mk(1)}}).Cost()
	}
	prefill64 := (&Batch{Op: OpForward, Model: rt, Calls: []*Call{mk(64)}}).Cost()
	if prefill64 >= decode64/4 {
		t.Fatalf("bulk prefill (%v) should be far cheaper than 64 decode kernels (%v)", prefill64, decode64)
	}
}

func TestBatchExtraAddsToCost(t *testing.T) {
	rt := testRuntime(ExecTiming)
	in := rt.Embed(0)
	in.Valid = true
	b := &Batch{Op: OpForward, Model: rt, Calls: []*Call{{Op: OpForward, Model: rt, Inputs: []*model.EmbedSlot{in}}}}
	base := b.Cost()
	b.Extra = time.Millisecond
	if b.Cost() != base+time.Millisecond {
		t.Fatalf("Extra not added: %v vs %v", b.Cost(), base)
	}
}

func TestTimingForwardBookkeeping(t *testing.T) {
	rt := testRuntime(ExecTiming)
	page := rt.Page(0)
	var ins []*model.EmbedSlot
	for i := 0; i < 5; i++ {
		s := rt.Embed(int32(i))
		s.Valid = true
		s.Pos = 10 + i
		ins = append(ins, s)
	}
	out := rt.Embed(99)
	c := &Call{Op: OpForward, Model: rt, Inputs: ins,
		OutPages: []*model.KvPage{page}, Outputs: []*model.EmbedSlot{out}}
	if err := rt.executeCall(c); err != nil {
		t.Fatal(err)
	}
	if page.NumUsed() != 5 {
		t.Fatalf("page has %d used slots, want 5", page.NumUsed())
	}
	if page.Pos[0] != 10 || page.Pos[4] != 14 {
		t.Fatalf("positions not recorded: %v", page.Pos[:5])
	}
	if !out.Valid || out.Pos != 14 {
		t.Fatalf("output slot not updated: valid=%v pos=%d", out.Valid, out.Pos)
	}
	// CtxTokens must count unmasked used slots.
	probe := &Call{Op: OpForward, Model: rt, CtxPages: []*model.KvPage{page}}
	if probe.CtxTokens() != 5 {
		t.Fatalf("CtxTokens = %d, want 5", probe.CtxTokens())
	}
	page.Masked[1] = true
	if probe.CtxTokens() != 4 {
		t.Fatalf("CtxTokens after mask = %d, want 4", probe.CtxTokens())
	}
}

func TestTimingForwardRejectsOverfullPages(t *testing.T) {
	rt := testRuntime(ExecTiming)
	page := rt.Page(1)
	var ins []*model.EmbedSlot
	for i := 0; i < rt.Model.Config().PageSize+1; i++ {
		s := rt.Embed(int32(200 + i))
		s.Valid = true
		ins = append(ins, s)
	}
	c := &Call{Op: OpForward, Model: rt, Inputs: ins, OutPages: []*model.KvPage{page}}
	if err := rt.executeCall(c); err == nil {
		t.Fatal("overfull output page accepted")
	}
}

func TestTimingDistDeterministicAndWellFormed(t *testing.T) {
	rt := testRuntime(ExecTiming)
	slot := rt.Embed(7)
	slot.Valid = true
	clock := sim.NewClock()
	get := func() DistResult {
		c := &Call{Op: OpNextDist, Model: rt, Inst: 3, Seq: 9, DistOf: slot,
			DistFut: sim.NewFuture[DistResult](clock)}
		if err := rt.executeCall(c); err != nil {
			t.Fatal(err)
		}
		r, _ := c.DistFut.Get()
		return r
	}
	var a, b DistResult
	clock.Go("p", func() { a = get(); b = get() })
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if len(a.Tokens) != rt.Model.Config().TopK {
		t.Fatalf("dist size %d", len(a.Tokens))
	}
	for i := range a.Tokens {
		if a.Tokens[i] != b.Tokens[i] {
			t.Fatal("timing-mode dist not deterministic")
		}
		if a.Tokens[i] < 4 || a.Tokens[i] >= rt.Model.VocabSize() {
			t.Fatalf("token %d out of range", a.Tokens[i])
		}
	}
}

func TestBackendExecutesBatchInOrder(t *testing.T) {
	// Two chained forwards in one batch: the second reads the first's
	// output page (vertical batching of the paper's split-prefill).
	rt := testRuntime(ExecTiming)
	clock := sim.NewClock()
	be := NewBackend(clock, "t")
	page := rt.Page(3)
	mk := func(pos int, ctx []*model.KvPage) *Call {
		in := rt.Embed(int32(300 + pos))
		in.Valid = true
		in.Pos = pos
		return &Call{Op: OpForward, Model: rt, Inputs: []*model.EmbedSlot{in},
			CtxPages: ctx, OutPages: []*model.KvPage{page},
			Done: sim.NewSignal(clock)}
	}
	c1 := mk(0, nil)
	c2 := mk(1, []*model.KvPage{page})
	clock.Go("driver", func() {
		be.Submit(&Batch{Op: OpForward, Model: rt, Calls: []*Call{c1, c2}})
		_ = sim.Await(c2.Done)
	})
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if c1.Err != nil || c2.Err != nil {
		t.Fatalf("errors: %v / %v", c1.Err, c2.Err)
	}
	if page.NumUsed() != 2 {
		t.Fatalf("page used %d, want 2 (chained writes)", page.NumUsed())
	}
	if be.BatchesRun != 1 || be.CallsRun != 2 {
		t.Fatalf("backend stats: %d batches, %d calls", be.BatchesRun, be.CallsRun)
	}
}

func TestOpControlSide(t *testing.T) {
	if OpForward.ControlSide() || OpNextDist.ControlSide() {
		t.Fatal("GPU ops marked control-side")
	}
	if !OpDealloc.ControlSide() || !OpSync.ControlSide() {
		t.Fatal("control ops not marked")
	}
	if OpForward.String() != "forward" || OpNextDist.String() != "get_next_dist" {
		t.Fatal("op names wrong")
	}
}
