package infer

import (
	"fmt"

	"pie/api"
	"pie/internal/gpu"
	"pie/internal/model"
)

// ExecMode selects functional fidelity (see the package comment).
type ExecMode int

const (
	ExecFull   ExecMode = iota // real tensor math
	ExecTiming                 // bookkeeping only, identical virtual-time charges
)

// ModelRuntime binds one servable model to its timing spec and its physical
// resource arrays. The inference layer retains the memory; allocation
// decisions (free lists, virtual mappings) belong to the control layer
// (§5.3: "resource management is entirely delegated to the control layer,
// while the inference layer retains the actual memory").
type ModelRuntime struct {
	Model *model.Model
	Spec  gpu.Spec
	Mode  ExecMode
	Info  api.ModelInfo

	PageCapacity  int
	EmbedCapacity int
	pages         []*model.KvPage    // grown lazily up to PageCapacity
	embeds        []*model.EmbedSlot // grown lazily up to EmbedCapacity
}

// NewModelRuntime sizes the physical pools from the GPU memory geometry.
func NewModelRuntime(m *model.Model, mode ExecMode) *ModelRuntime {
	spec := gpu.SpecFor(m.Config().ParamLabel)
	pageCap := spec.KvPageCapacity(m.Config().PageSize)
	embedCap := 1 << 16
	traits := []api.Trait{
		api.TraitCore, api.TraitAllocate, api.TraitForward, api.TraitInputText,
		api.TraitTokenize, api.TraitOutputText, api.TraitAdapter, api.TraitFused,
	}
	if m.Config().Multimodal {
		traits = append(traits, api.TraitInputImage)
	}
	return &ModelRuntime{
		Model: m,
		Spec:  spec,
		Mode:  mode,
		Info: api.ModelInfo{
			ID:        api.ModelID(m.Config().Name),
			Params:    m.Config().ParamLabel,
			PageSize:  m.Config().PageSize,
			VocabSize: m.VocabSize(),
			Traits:    traits,
			Adapters:  m.AdapterNames(),
		},
		PageCapacity:  pageCap,
		EmbedCapacity: embedCap,
	}
}

// Page returns the physical page with index id, materializing it on first
// touch. In timing mode pages carry occupancy metadata but no tensor data.
func (rt *ModelRuntime) Page(id int32) *model.KvPage {
	for int(id) >= len(rt.pages) {
		rt.pages = append(rt.pages, nil)
	}
	if rt.pages[id] == nil {
		if rt.Mode == ExecFull {
			rt.pages[id] = rt.Model.NewKvPage()
		} else {
			ps := rt.Model.Config().PageSize
			rt.pages[id] = &model.KvPage{
				K: make([][]float32, ps), V: make([][]float32, ps),
				Pos: make([]int, ps), Used: make([]bool, ps), Masked: make([]bool, ps),
			}
		}
	}
	return rt.pages[id]
}

// Embed returns the physical embedding slot with index id.
func (rt *ModelRuntime) Embed(id int32) *model.EmbedSlot {
	for int(id) >= len(rt.embeds) {
		rt.embeds = append(rt.embeds, nil)
	}
	if rt.embeds[id] == nil {
		if rt.Mode == ExecFull {
			rt.embeds[id] = rt.Model.NewEmbedSlot()
		} else {
			rt.embeds[id] = &model.EmbedSlot{}
		}
	}
	return rt.embeds[id]
}

// execute runs the functional side of a batch, call by call in order.
func (rt *ModelRuntime) execute(b *Batch) {
	for _, c := range b.Calls {
		if err := rt.executeCall(c); err != nil {
			c.Err = err
		}
	}
}

func (rt *ModelRuntime) executeCall(c *Call) error {
	switch c.Op {
	case OpEmbedText:
		return rt.execEmbedText(c)
	case OpEmbedImage:
		return rt.execEmbedImage(c)
	case OpForward:
		return rt.execForward(c)
	case OpNextDist:
		return rt.execNextDist(c)
	case OpCopyKv:
		return model.CopyTokens(c.SrcPage, c.DstPage, c.SrcOff, c.DstOff, c.NumTokens)
	case OpMaskKv:
		return rt.execMaskKv(c)
	case OpTokenize:
		c.TokFut.Resolve(rt.Model.Tokenizer().Encode(c.Text))
		return nil
	case OpDetokenize:
		c.TextFut.Resolve(rt.Model.Tokenizer().Decode(c.TokenIDs))
		return nil
	case OpGetVocabs:
		c.VocabFut.Resolve(rt.Model.Tokenizer().Vocab())
		return nil
	}
	return fmt.Errorf("infer: unhandled op %v", c.Op)
}

func (rt *ModelRuntime) execEmbedText(c *Call) error {
	if len(c.TokenIDs) != len(c.Positions) || len(c.TokenIDs) != len(c.Outputs) {
		return fmt.Errorf("infer: embed_txt arity mismatch: %d ids, %d pos, %d dst",
			len(c.TokenIDs), len(c.Positions), len(c.Outputs))
	}
	if rt.Mode == ExecFull {
		return rt.Model.EmbedTokens(c.TokenIDs, c.Positions, c.Outputs)
	}
	for i := range c.Outputs {
		c.Outputs[i].Pos = c.Positions[i]
		c.Outputs[i].Valid = true
	}
	return nil
}

func (rt *ModelRuntime) execEmbedImage(c *Call) error {
	if rt.Mode == ExecFull {
		return rt.Model.EmbedImage(c.Blob, c.Positions, c.Outputs)
	}
	need := rt.Model.EmbedsNeededForImage(len(c.Blob))
	if len(c.Outputs) != need {
		return fmt.Errorf("infer: embed_img needs %d slots, got %d", need, len(c.Outputs))
	}
	for i := range c.Outputs {
		c.Outputs[i].Pos = c.Positions[i]
		c.Outputs[i].Valid = true
	}
	return nil
}

func (rt *ModelRuntime) execForward(c *Call) error {
	inputs := c.Inputs
	if len(c.FusedEmb) > 0 {
		// Fused input embedding (monolithic-pipeline ablation): materialize
		// transient slots for the token ids.
		inputs = make([]*model.EmbedSlot, len(c.FusedEmb))
		for i := range inputs {
			if rt.Mode == ExecFull {
				inputs[i] = rt.Model.NewEmbedSlot()
			} else {
				inputs[i] = &model.EmbedSlot{}
			}
		}
		if rt.Mode == ExecFull {
			if err := rt.Model.EmbedTokens(c.FusedEmb, c.FusedPos, inputs); err != nil {
				return err
			}
		} else {
			for i := range inputs {
				inputs[i].Pos = c.FusedPos[i]
				inputs[i].Valid = true
			}
		}
	}
	if rt.Mode == ExecFull {
		if _, err := rt.Model.Forward(c.CtxPages, inputs, c.OutPages, c.Outputs, c.Mask, c.Adapter); err != nil {
			return err
		}
	} else {
		if err := timingForward(c, inputs); err != nil {
			return err
		}
	}
	if c.Sample != nil {
		toks, err := rt.fusedSample(c)
		if err != nil {
			return err
		}
		c.FusedTok.Resolve(toks)
	}
	return nil
}

// timingForward reproduces Forward's resource effects without tensor math.
func timingForward(c *Call, inputs []*model.EmbedSlot) error {
	n := len(inputs)
	for i, in := range inputs {
		if !in.Valid {
			return fmt.Errorf("infer: forward input %d is uninitialized", i)
		}
	}
	if len(c.Outputs) > n {
		return fmt.Errorf("infer: %d output embeds for %d inputs", len(c.Outputs), n)
	}
	if len(c.OutPages) > 0 {
		free := 0
		for _, p := range c.OutPages {
			for _, u := range p.Used {
				if !u {
					free++
				}
			}
		}
		if free < n {
			return fmt.Errorf("infer: output pages have %d free slots for %d tokens", free, n)
		}
		i := 0
		for _, p := range c.OutPages {
			for s := range p.Used {
				if i == n {
					break
				}
				if !p.Used[s] {
					p.Used[s] = true
					p.Masked[s] = false
					p.Pos[s] = inputs[i].Pos
					i++
				}
			}
		}
	}
	start := n - len(c.Outputs)
	for i, slot := range c.Outputs {
		slot.Pos = inputs[start+i].Pos
		slot.Valid = true
	}
	return nil
}

func (rt *ModelRuntime) fusedSample(c *Call) ([]int, error) {
	if len(c.Outputs) == 0 {
		return nil, fmt.Errorf("infer: fused sampling requires output embeddings")
	}
	toks := make([]int, len(c.Outputs))
	for i, slot := range c.Outputs {
		if rt.Mode == ExecFull {
			ids, probs, err := rt.Model.NextDist(slot)
			if err != nil {
				return nil, err
			}
			toks[i] = sampleFrom(ids, probs, c.Sample, uint64(c.Seq)+uint64(i))
		} else {
			toks[i] = pseudoToken(rt.Model.VocabSize(), c.Inst, c.Seq, i)
		}
	}
	return toks, nil
}

func (rt *ModelRuntime) execNextDist(c *Call) error {
	if rt.Mode == ExecFull {
		toks, probs, err := rt.Model.NextDist(c.DistOf)
		if err != nil {
			return err
		}
		c.DistFut.Resolve(DistResult{Tokens: toks, Probs: probs})
		return nil
	}
	if !c.DistOf.Valid {
		return fmt.Errorf("infer: get_next_dist on uninitialized embed")
	}
	// Timing mode: a deterministic pseudo-distribution. Scripted workloads
	// ignore its content; its shape (TopK entries) keeps transfer costs
	// honest.
	k := rt.Model.Config().TopK
	v := rt.Model.VocabSize()
	toks := make([]int, k)
	probs := make([]float32, k)
	var mass float32 = 0.5
	for i := 0; i < k; i++ {
		toks[i] = pseudoToken(v, c.Inst, c.Seq, i)
		probs[i] = mass
		mass *= 0.5
	}
	c.DistFut.Resolve(DistResult{Tokens: toks, Probs: probs})
	return nil
}

func (rt *ModelRuntime) execMaskKv(c *Call) error {
	if len(c.MaskBits) > len(c.MaskPage.Masked) {
		return fmt.Errorf("infer: mask has %d bits for a %d-token page", len(c.MaskBits), len(c.MaskPage.Masked))
	}
	for i, m := range c.MaskBits {
		c.MaskPage.Masked[i] = m
	}
	return nil
}

// sampleFrom draws from a truncated distribution per the fused SampleSpec.
func sampleFrom(ids []int, probs []float32, s *SampleSpec, salt uint64) int {
	if s.Temperature <= 0 {
		return ids[0] // greedy
	}
	k := s.TopK
	if k <= 0 || k > len(ids) {
		k = len(ids)
	}
	// Deterministic draw from (seed, salt).
	x := s.Seed*0x9E3779B97F4A7C15 + salt*0xD6E8FEB86659FD93
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	u := float32(x>>40) / (1 << 24)
	var cum, total float32
	for i := 0; i < k; i++ {
		total += probs[i]
	}
	for i := 0; i < k; i++ {
		cum += probs[i] / total
		if u <= cum {
			return ids[i]
		}
	}
	return ids[k-1]
}

// pseudoToken generates the timing-mode stand-in token stream.
func pseudoToken(vocab int, inst, seq uint64, i int) int {
	x := inst*0x9E3779B97F4A7C15 ^ seq*0xD6E8FEB86659FD93 ^ uint64(i)*0xCA5A826395121157
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	// Skip special tokens.
	return 4 + int(x%uint64(vocab-4))
}
