package infer

import (
	"time"

	"pie/internal/gpu"
	"pie/internal/sim"
)

// Boundary-crossing constants (Table 3 and Fig. 10). The control↔inference
// IPC hop is a small constant; request deserialization is single-threaded
// on the backend host (the paper attributes Fig. 10's inference-layer
// latency growth to exactly this), so its delay emerges from queueing in
// the deserialization process rather than from a formula.
const (
	IPCCrossing  = 6 * time.Microsecond
	DeserPerCall = 600 * time.Nanosecond
)

// Backend is the inference-layer server: one GPU device plus the
// single-threaded ingress that deserializes batched API calls.
type Backend struct {
	clock *sim.Clock
	// Name identifies the backend (the device name); cluster deployments
	// run one backend per replica and report stats under this name.
	Name   string
	Device *gpu.Device
	ingest *sim.Mailbox[*Batch]

	onComplete func(*Batch) // control-layer event dispatcher hook

	// OnOverhead, when set, observes each call's boundary overhead: the
	// time from control-layer submission to deserialization completion
	// plus the response IPC hop — everything except kernel execution and
	// device queueing. This is exactly what Fig. 10 measures.
	OnOverhead func(time.Duration)

	// Stats.
	BatchesRun int
	CallsRun   int
}

// NewBackend starts the backend processes on c.
func NewBackend(c *sim.Clock, deviceName string) *Backend {
	b := &Backend{
		clock:  c,
		Name:   deviceName,
		Device: gpu.NewDevice(c, deviceName),
		ingest: sim.NewMailbox[*Batch](c),
	}
	c.GoDaemon("infer:ingress:"+deviceName, b.ingressLoop)
	return b
}

// SetCompleteFunc installs the completion callback (the control layer's
// event dispatcher). It runs in a backend process after each batch.
func (b *Backend) SetCompleteFunc(fn func(*Batch)) { b.onComplete = fn }

// Submit ships a batch across the IPC boundary. The returned accounting is
// asynchronous: each call's futures resolve when the batch completes.
func (b *Backend) Submit(batch *Batch) {
	batch.SubmittedAt = b.clock.Now()
	b.ingest.Send(batch)
}

// ingressLoop is the single-threaded deserialization stage: batches queue
// here and pay a per-call parsing cost before reaching the GPU. The IPC
// hops themselves are pipelined (they add latency, not server occupancy);
// only parsing serializes. Kernel execution overlaps with parsing of
// subsequent batches.
func (b *Backend) ingressLoop() {
	for {
		batch, err := b.ingest.Recv()
		if err != nil {
			return
		}
		b.clock.Sleep(time.Duration(len(batch.Calls)) * DeserPerCall)
		if b.OnOverhead != nil {
			// Queueing + parsing, plus both pipelined IPC legs.
			perCall := (b.clock.Now() - batch.SubmittedAt) + 2*IPCCrossing
			for range batch.Calls {
				b.OnOverhead(perCall)
			}
		}
		done := b.Device.Submit(batch.Op.String(), batch.Cost())
		b.clock.GoDaemon("infer:complete", func() {
			_ = sim.Await(done)
			// Response IPC back to the control layer.
			b.clock.Sleep(IPCCrossing)
			batch.Model.execute(batch)
			b.BatchesRun++
			b.CallsRun += len(batch.Calls)
			for _, c := range batch.Calls {
				sim.Fire(c.Done)
			}
			if b.onComplete != nil {
				b.onComplete(batch)
			}
		})
	}
}

// Close shuts down the ingress; in-flight batches still complete.
func (b *Backend) Close() { b.ingest.Close() }
