package ilm

import (
	"errors"
	"testing"
	"time"

	"pie/api"
	"pie/inferlet"
	"pie/internal/sim"
)

// testCatalog mirrors the standard catalog's shape: one full-trait model
// and one text-only model lacking fused/image.
func testCatalog() []api.ModelInfo {
	return []api.ModelInfo{
		{ID: "llama-1b", Params: "1B", Traits: []api.Trait{
			api.TraitCore, api.TraitAllocate, api.TraitForward, api.TraitInputText,
			api.TraitTokenize, api.TraitOutputText, api.TraitFused,
		}},
		{ID: "tiny-text", Params: "1B", Traits: []api.Trait{
			api.TraitCore, api.TraitTokenize,
		}},
	}
}

func newTestILM() *ILM {
	return New(sim.NewClock(), nil, nil, testCatalog())
}

func prog(name, version string, m inferlet.Manifest) inferlet.Program {
	m.Version = version
	return inferlet.Program{
		Name: name, BinarySize: 1 << 10, Manifest: m,
		Run: func(inferlet.Session) error { return nil },
	}
}

func TestVersionedRegistryLatestWins(t *testing.T) {
	m := newTestILM()
	for _, v := range []string{"1.0.0", "1.2.0", "1.10.0", "0.9.9"} {
		if err := m.Register(prog("app", v, inferlet.Manifest{})); err != nil {
			t.Fatalf("register %s: %v", v, err)
		}
	}
	// Numeric, not lexicographic: 1.10.0 > 1.2.0.
	e, err := m.resolve("app")
	if err != nil || e.version != "1.10.0" {
		t.Fatalf("latest resolve = %v/%v, want 1.10.0", e, err)
	}
	// Exact pins resolve; unknown versions and names are typed.
	if e, err := m.resolve("app@1.2.0"); err != nil || e.version != "1.2.0" {
		t.Fatalf("pinned resolve = %v/%v", e, err)
	}
	if _, err := m.resolve("app@2.0.0"); !errors.Is(err, api.ErrNoSuchProgram) {
		t.Fatalf("unknown version: %v, want ErrNoSuchProgram", err)
	}
	if _, err := m.resolve("ghost"); !errors.Is(err, api.ErrNoSuchProgram) {
		t.Fatalf("unknown name: %v, want ErrNoSuchProgram", err)
	}
	// Duplicate name@version is rejected; a bare name defaults to 1.0.0,
	// which also already exists.
	if err := m.Register(prog("app", "1.2.0", inferlet.Manifest{})); err == nil {
		t.Fatal("duplicate name@version registered")
	}
	if err := m.Register(prog("app", "", inferlet.Manifest{})); err == nil {
		t.Fatal("default-version duplicate registered")
	}

	infos := m.ProgramInfos()
	if len(infos) != 4 {
		t.Fatalf("ProgramInfos = %d entries, want 4", len(infos))
	}
	latest := 0
	for i, p := range infos {
		if p.Name != "app" || p.BinarySize != 1<<10 {
			t.Fatalf("info %d = %+v", i, p)
		}
		if p.Latest {
			latest++
			if p.Version != "1.10.0" {
				t.Fatalf("latest flag on %s", p.Version)
			}
		}
	}
	if latest != 1 {
		t.Fatalf("%d entries flagged latest, want 1", latest)
	}
	// Version order within the name: ascending.
	if infos[0].Version != "0.9.9" || infos[3].Version != "1.10.0" {
		t.Fatalf("version order: %s .. %s", infos[0].Version, infos[3].Version)
	}
}

func TestManifestValidationAtRegister(t *testing.T) {
	m := newTestILM()
	cases := []struct {
		name     string
		manifest inferlet.Manifest
		ok       bool
	}{
		{"zero", inferlet.Manifest{}, true},
		{"model-ok", inferlet.Manifest{Models: []api.ModelID{"llama-1b"}}, true},
		{"model-missing", inferlet.Manifest{Models: []api.ModelID{"gpt-99"}}, false},
		{"trait-ok", inferlet.Manifest{Traits: []api.Trait{api.TraitFused}}, true},
		{"trait-on-model-ok", inferlet.Manifest{
			Models: []api.ModelID{"llama-1b"}, Traits: []api.Trait{api.TraitFused}}, true},
		{"trait-on-model-bad", inferlet.Manifest{
			Models: []api.ModelID{"tiny-text"}, Traits: []api.Trait{api.TraitFused}}, false},
		{"trait-nowhere", inferlet.Manifest{Traits: []api.Trait{api.TraitInputImage}}, false},
		{"bad-version", inferlet.Manifest{Version: "1.x"}, false},
		{"negative-limit", inferlet.Manifest{Limits: inferlet.Limits{MaxKvPages: -1}}, false},
	}
	for _, tc := range cases {
		err := m.Register(prog("m-"+tc.name, tc.manifest.Version, tc.manifest))
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected %v", tc.name, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: registered an unsatisfiable manifest", tc.name)
			} else if !errors.Is(err, api.ErrUnsatisfiedManifest) {
				t.Errorf("%s: error %v not typed ErrUnsatisfiedManifest", tc.name, err)
			}
		}
	}
	// Trait satisfied through the supertrait closure: tiny-text declares
	// only tokenize, whose closure covers input_text/forward/allocate.
	err := m.Register(prog("closure", "", inferlet.Manifest{
		Models: []api.ModelID{"tiny-text"}, Traits: []api.Trait{api.TraitAllocate}}))
	if err != nil {
		t.Fatalf("closure-satisfied manifest rejected: %v", err)
	}
}

func TestVersionParsing(t *testing.T) {
	good := map[string][3]int{
		"1":      {1, 0, 0},
		"1.2":    {1, 2, 0},
		"1.2.3":  {1, 2, 3},
		"0.0.1":  {0, 0, 1},
		"10.0.0": {10, 0, 0},
	}
	for in, want := range good {
		got, err := parseVersion(in)
		if err != nil || got != want {
			t.Errorf("parseVersion(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "a", "1.2.3.4", "1.-2", "01.2", "1.2.x"} {
		if _, err := parseVersion(bad); err == nil {
			t.Errorf("parseVersion(%q) accepted", bad)
		}
	}
	if !versionLess([3]int{1, 2, 0}, [3]int{1, 10, 0}) || versionLess([3]int{2, 0, 0}, [3]int{1, 9, 9}) {
		t.Fatal("versionLess ordering wrong")
	}
}

func TestEffectiveDeadline(t *testing.T) {
	const s, m = 2 * time.Second, 5 * time.Second
	cases := []struct{ spec, manifest, want time.Duration }{
		{0, 0, 0}, {s, 0, s}, {0, m, m}, {s, m, s}, {m, s, s},
	}
	for _, tc := range cases {
		if got := effectiveDeadline(tc.spec, tc.manifest); got != tc.want {
			t.Errorf("effectiveDeadline(%v, %v) = %v, want %v", tc.spec, tc.manifest, got, tc.want)
		}
	}
}

func TestVersionCanonicalization(t *testing.T) {
	m := newTestILM()
	if err := m.Register(prog("app", "1.0", inferlet.Manifest{})); err != nil {
		t.Fatalf("register 1.0: %v", err)
	}
	// "1.0" and "1.0.0" are the same artifact: the duplicate check keys
	// the canonical form.
	if err := m.Register(prog("app", "1.0.0", inferlet.Manifest{})); err == nil {
		t.Fatal("registered 1.0.0 alongside 1.0 (same semantic version)")
	}
	// Every spelling of the version resolves the one entry.
	for _, ref := range []string{"app", "app@1", "app@1.0", "app@1.0.0"} {
		e, err := m.resolve(ref)
		if err != nil || e.version != "1.0.0" {
			t.Fatalf("resolve(%q) = %v, %v; want 1.0.0", ref, e, err)
		}
	}
	// Malformed version references are typed, not panics.
	if _, err := m.resolve("app@1.x"); !errors.Is(err, api.ErrNoSuchProgram) {
		t.Fatalf("resolve bad version = %v, want ErrNoSuchProgram", err)
	}
	if got := m.ProgramInfos(); len(got) != 1 || got[0].Version != "1.0.0" {
		t.Fatalf("ProgramInfos = %+v, want one canonical 1.0.0 entry", got)
	}
}
