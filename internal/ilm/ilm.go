// Package ilm implements Pie's application layer (§5.1): the Inferlet
// Lifecycle Manager. It hosts the versioned program registry (deployable
// inferlet artifacts with manifests), launches inferlets into sandboxed
// cooperative processes, relays user↔inferlet messages, and hosts the
// broadcast/subscribe fabric for inter-inferlet collaboration.
//
// The paper executes inferlets as WebAssembly modules under wasmtime with
// pooled allocation preconfigured for 1,000 concurrent instances. Here the
// sandbox is a cooperative sim process whose only capability surface is
// the inferlet.Session interface — inferlets cannot reach the engine, the
// clock, or each other except through session calls, which preserves the
// isolation structure the paper relies on.
//
// Deployment API v2: programs register as name@version artifacts whose
// manifests (required models/traits, resource limits) are validated
// against the catalog's trait closure at register and launch time
// (api.ErrUnsatisfiedManifest). Launches take a LaunchSpec (version
// reference, args, priority, deadline, client tag) and return a handle
// with Abort. Launch costs reproduce the upload + JIT pipeline per
// replica: the first launch of an artifact on a replica is cold (per-byte
// upload and compile charges, priced by the device spec); warm launches
// hit the replica's LRU artifact cache.
package ilm

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"pie/api"
	"pie/inferlet"
	"pie/internal/core"
	"pie/internal/netsim"
	"pie/internal/sim"
)

// Launch-pipeline calibration (Fig. 9; see DESIGN.md §4): a
// single-threaded launch dispatcher serializes admission (its service time
// produces the latency growth with concurrent launches), while
// instantiation, upload, and JIT run in the launching process. Upload and
// JIT per-byte charges live on gpu.Spec (ArtifactCost) — they are replica
// properties now that each replica keeps its own artifact cache.
const (
	dispatchWarm     = 90 * time.Microsecond
	dispatchCold     = 100 * time.Microsecond
	instantiateFixed = 1200 * time.Microsecond
	poolSlots        = 1000 // wasmtime pooled-allocation preallocation
	poolOverflowCost = 5 * time.Millisecond
)

// Placer decides which control layer hosts a new inferlet instance. A
// cluster router places across replica controllers; a single-replica
// deployment always returns the same one. artifact is the name@version
// cache key — the program-affinity policy probes replicas' warm-artifact
// caches with it.
type Placer interface {
	// Place fails typed (api.ErrReplicaLost) when no live replica can
	// host the instance; launches carrying a retry policy retry it.
	Place(program, artifact string, args []string) (*core.Controller, error)
}

// Admission is the optional saturation gate a Placer may implement (the
// cluster's load shedder does): consulted once per launch, before the
// dispatch pipeline, with the launch's resolved service class and
// effective priority. A zero outputCap admits at full quality; a positive
// outputCap admits degraded — the ILM caps the launch's output tokens and
// marks the instance for cheaper-model substitution. A typed error
// (api.ErrOverloaded) rejects the launch without admitting it to die.
type Admission interface {
	AdmitLaunch(class string, priority int) (outputCap int, err error)
}

// FaultSource is the optional transient-fault hook a Placer may implement
// (the cluster's fault injector does): consulted once per launch attempt,
// in deterministic order. A typed error (api.ErrTransientFault) fails the
// attempt retryably.
type FaultSource interface {
	LaunchFault() error
}

// HandoffCoordinator is the optional prefill/decode hook a Placer may
// implement (the cluster's handoff layer does): consulted at a session's
// forward boundaries once its instance is marked HandoffPending. A true
// return means the session's KV state migrated — the returned controller
// and instance replace the session's bindings; the old instance is
// already released. It runs synchronously in the session's process, so
// transfer time is charged to the session.
type HandoffCoordinator interface {
	MaybeHandoff(ctl *core.Controller, inst *core.Instance) (*core.Controller, *core.Instance, bool)
}

// LaunchSpec describes one inferlet launch (deployment API v2).
type LaunchSpec struct {
	// Program references a registered artifact: "name" (latest version)
	// or "name@version" (exact).
	Program string
	// Args are the launch arguments (GetArg inside the inferlet).
	Args []string
	// Class names the service class the launch runs under (SLO targets,
	// scheduler priority, degradation eligibility). Empty takes the
	// program manifest's Class; a name unknown to the engine's registry
	// fails the launch typed api.ErrNoSuchClass.
	Class string
	// Priority seeds the batch-scheduler priority of every command queue
	// the instance opens. Zero inherits the service class's Priority when
	// the launch resolves to a registered class.
	Priority int
	// Deadline bounds the instance's virtual runtime from launch; on
	// expiry it is aborted with api.ErrDeadlineExceeded. Combined with a
	// manifest deadline, the tighter bound wins. Zero means none.
	Deadline time.Duration
	// ClientTag is an opaque client label carried on the handle
	// (multi-tenant attribution in listings and logs).
	ClientTag string
	// Retry controls requeue-on-failure: a launch that dies retryably
	// (replica lost, transient fault) is re-placed onto a surviving
	// replica after capped exponential backoff. The zero value takes the
	// ILM's default policy (itself zero — no retries — unless configured).
	Retry RetryPolicy
}

// ProgramInfo describes one registered artifact (registry listings).
type ProgramInfo struct {
	Name       string
	Version    string
	Latest     bool // this version is what a bare-name launch resolves to
	BinarySize int
	Manifest   inferlet.Manifest
}

// Ref formats the artifact's registry key.
func (p ProgramInfo) Ref() string { return inferlet.Ref(p.Name, p.Version) }

// ILM is the inferlet lifecycle manager.
type ILM struct {
	clock    *sim.Clock
	place    Placer
	world    *netsim.World
	models   []api.ModelInfo              // catalog view for manifest validation
	programs map[string]map[string]*entry // name -> version -> artifact
	latest   map[string]string            // name -> highest registered version
	pins     map[string]string            // name -> pinned version (upgrade.go)
	running  map[uint64]*Handle           // live handles by ID (upgrade.go)
	launchQ  *sim.Mailbox[*launchReq]
	topics   map[string]map[*subscription]struct{}
	live     int
	handleID uint64

	defaultRetry RetryPolicy                 // applied when a LaunchSpec's Retry is zero
	retrySeq     uint64                      // seeds per-handle jitter streams
	classes      map[string]api.ServiceClass // service-class registry (nil = unchecked)
	handoff      HandoffCoordinator          // prefill/decode migration (nil = disabled)

	// Stats.
	Launches     int
	ColdLaunches int // launches that paid the upload + JIT pipeline
	Aborts       int // instances cancelled via Handle.Abort (incl. deadline)
	Requeues     int // attempts re-placed after their replica died mid-run
	Retries      int // attempts retried before placement stuck (incl. transients)

	// UpgradeRequeues counts instances restarted onto a new pinned
	// version by a rolling upgrade (upgrade.go) — operator actions, kept
	// apart from failure Requeues and client Aborts.
	UpgradeRequeues int
}

// SetDefaultRetry installs the retry policy applied to launches whose
// spec leaves Retry zero. Call before launching.
func (m *ILM) SetDefaultRetry(p RetryPolicy) { m.defaultRetry = p }

// SetClasses installs the service-class registry. Once set, launch specs
// and program manifests naming an unknown class fail typed
// api.ErrNoSuchClass; with no registry, class names pass through
// unchecked (they still tag instances for attribution).
func (m *ILM) SetClasses(classes []api.ServiceClass) {
	if len(classes) == 0 {
		return
	}
	m.classes = make(map[string]api.ServiceClass, len(classes))
	for _, cl := range classes {
		m.classes[cl.Name] = cl
	}
}

// entry is one registered artifact.
type entry struct {
	prog    *inferlet.Program
	version string
	parsed  [3]int
}

func (e *entry) ref() string { return inferlet.Ref(e.prog.Name, e.version) }

type launchReq struct {
	grant *sim.Signal
}

// New starts the ILM on the clock. Launched instances are placed onto a
// control layer by place — the cluster router in multi-replica engines.
// models is the catalog view program manifests validate against.
func New(clock *sim.Clock, place Placer, world *netsim.World, models []api.ModelInfo) *ILM {
	m := &ILM{
		clock:    clock,
		place:    place,
		world:    world,
		models:   models,
		programs: make(map[string]map[string]*entry),
		latest:   make(map[string]string),
		running:  make(map[uint64]*Handle),
		launchQ:  sim.NewMailbox[*launchReq](clock),
		topics:   make(map[string]map[*subscription]struct{}),
	}
	if h, ok := place.(HandoffCoordinator); ok {
		m.handoff = h
	}
	clock.GoDaemon("ilm:dispatcher", m.dispatcherLoop)
	return m
}

// Register deploys a program artifact into the versioned registry. The
// manifest is validated against the catalog's trait closure now — an
// unsatisfiable deployment fails here, typed api.ErrUnsatisfiedManifest,
// instead of inside a running inferlet. Registering the same name@version
// twice is an error; registering a new version of an existing name is a
// normal rolling deployment (bare-name launches resolve to the highest
// version).
func (m *ILM) Register(p inferlet.Program) error {
	if p.Name == "" || p.Run == nil {
		return fmt.Errorf("ilm: program needs a name and a Run body")
	}
	version := p.Manifest.Version
	if version == "" {
		version = defaultVersion
	}
	parsed, err := parseVersion(version)
	if err != nil {
		return fmt.Errorf("%w: program %q: %v", api.ErrUnsatisfiedManifest, p.Name, err)
	}
	version = canonicalVersion(parsed) // "1.0" and "1.0.0" are one artifact
	if err := validateManifest(p.Name, p.Manifest, m.models); err != nil {
		return err
	}
	if p.Manifest.Class != "" && m.classes != nil {
		if _, ok := m.classes[p.Manifest.Class]; !ok {
			return fmt.Errorf("%w: program %q manifest names %q", api.ErrNoSuchClass, p.Name, p.Manifest.Class)
		}
	}
	if _, dup := m.programs[p.Name][version]; dup {
		return fmt.Errorf("ilm: program %q already registered", inferlet.Ref(p.Name, version))
	}
	cp := p
	cp.Manifest.Version = version
	if m.programs[p.Name] == nil {
		m.programs[p.Name] = make(map[string]*entry)
	}
	m.programs[p.Name][version] = &entry{prog: &cp, version: version, parsed: parsed}
	if cur, ok := m.latest[p.Name]; !ok {
		m.latest[p.Name] = version
	} else if curParsed, _ := parseVersion(cur); versionLess(curParsed, parsed) {
		m.latest[p.Name] = version
	}
	return nil
}

// resolve maps a program reference ("name" or "name@version") to its
// registry entry.
func (m *ILM) resolve(ref string) (*entry, error) {
	name, version := inferlet.SplitRef(ref)
	versions, ok := m.programs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", api.ErrNoSuchProgram, name)
	}
	if version == "" {
		// A pin (upgrade.go) fixes what the bare name means; otherwise it
		// floats to the highest registered version.
		if pinned, ok := m.pins[name]; ok {
			version = pinned
		} else {
			version = m.latest[name]
		}
	} else if parsed, err := parseVersion(version); err != nil {
		return nil, fmt.Errorf("%w: %q has no version %q", api.ErrNoSuchProgram, name, version)
	} else {
		version = canonicalVersion(parsed) // "name@1.0" resolves "1.0.0"
	}
	e, ok := versions[version]
	if !ok {
		return nil, fmt.Errorf("%w: %q has no version %q", api.ErrNoSuchProgram, name, version)
	}
	return e, nil
}

// Programs lists registered program names, sorted.
func (m *ILM) Programs() []string {
	out := make([]string, 0, len(m.programs))
	for n := range m.programs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ProgramInfos lists every registered artifact, sorted by name then
// version order.
func (m *ILM) ProgramInfos() []ProgramInfo {
	var out []ProgramInfo
	for _, name := range m.Programs() {
		versions := make([]*entry, 0, len(m.programs[name]))
		for _, e := range m.programs[name] {
			versions = append(versions, e)
		}
		sort.Slice(versions, func(i, j int) bool {
			return versionLess(versions[i].parsed, versions[j].parsed)
		})
		for _, e := range versions {
			out = append(out, ProgramInfo{
				Name:       name,
				Version:    e.version,
				Latest:     m.latest[name] == e.version,
				BinarySize: e.prog.BinarySize,
				Manifest:   e.prog.Manifest,
			})
		}
	}
	return out
}

// dispatcherLoop serializes launch admission (single-threaded, like the
// ILM RPC front end): the source of Fig. 9's latency growth under
// concurrent launches.
// The dispatcher charges the warm admission cost; cold launches pay the
// dispatch delta in the launching process once placement has picked the
// replica (coldness is a per-replica property now).
func (m *ILM) dispatcherLoop() {
	for {
		req, err := m.launchQ.Recv()
		if err != nil {
			return
		}
		m.clock.Sleep(dispatchWarm)
		sim.Fire(req.grant)
	}
}

// Handle is the client-side connection to a running inferlet. One handle
// spans every attempt of a retried launch: the client's mailboxes and done
// future survive requeues, so Wait/Recv keep working while the instance
// moves between replicas (messages already consumed by a dead attempt are
// lost — launch-level retry is at-least-once).
type Handle struct {
	ID        uint64
	Program   string
	Version   string
	ClientTag string
	ilm       *ILM
	ctl       *core.Controller // the replica control layer hosting the instance
	inst      *core.Instance
	proc      *sim.Proc
	toUser    *sim.Mailbox[string]
	toInflt   *sim.Mailbox[string]
	done      *sim.Future[error]
	killErr   error
	logs      []string

	// Service class resolved at launch (spec overrides manifest) and the
	// degradation verdict from the admission gate.
	class    string
	degraded bool

	// Retry machinery.
	spec         LaunchSpec
	entry        *entry
	policy       RetryPolicy
	retryRNG     *sim.RNG
	attempts     int           // attempts started (1 = first launch)
	backoffSpent time.Duration // cumulative backoff, charged against policy.Budget
	counted      bool          // counted in ilm.Launches (first successful attempt)
	requeuing    bool          // between attempts: last instance died, requeue pending
	aborted      error         // abort latched during the requeue gap
}

// Attempts reports how many launch attempts the handle has started
// (1 = no retries happened).
func (h *Handle) Attempts() int { return h.attempts }

// Class reports the service class the launch resolved to ("" = unclassed).
func (h *Handle) Class() string { return h.class }

// Degraded reports whether the admission gate admitted this launch
// degraded (output cap + cheaper-model substitution) instead of shedding
// it near saturation.
func (h *Handle) Degraded() bool { return h.degraded }

// Send delivers a message to the inferlet (the client side of
// send/receive).
func (h *Handle) Send(msg string) { h.toInflt.Send(msg) }

// Recv resolves with the inferlet's next message to the client.
func (h *Handle) Recv() *sim.Future[string] { return h.toUser.RecvFuture() }

// TryRecv drains one queued message without blocking.
func (h *Handle) TryRecv() (string, bool) { return h.toUser.TryRecv() }

// Wait blocks until the inferlet finishes and returns its error result.
func (h *Handle) Wait() error {
	err, _ := h.done.Get()
	return err
}

// Done reports whether the inferlet has finished.
func (h *Handle) Done() bool { return h.done.Done() }

// Abort cancels the inferlet: every page and embedding slot it holds
// returns to the pools (queue-scoped reclamation through the control
// layer — pending calls fail, page pins drop, offloaded pages unpin),
// and Wait resolves with api.ErrAborted. Aborting a finished or already
// aborted inferlet is a no-op. Must be called from a sim process. It
// reports whether this call performed the abort.
func (h *Handle) Abort() bool { return h.abort(api.ErrAborted) }

func (h *Handle) abort(reason error) bool {
	if h.done.Done() {
		return false
	}
	if h.ctl != nil && h.ctl.AbortInstance(h.inst, reason) {
		h.ilm.Aborts++
		return true
	}
	// No live instance right now. If the handle is between retry attempts
	// (its last instance died and the requeue daemon is working), latch
	// the abort; the requeue loop honors it instead of relaunching.
	if h.requeuing && h.aborted == nil {
		h.aborted = reason
		h.ilm.Aborts++
		return true
	}
	return false
}

// Logs returns lines the inferlet emitted via Print.
func (h *Handle) Logs() []string { return append([]string(nil), h.logs...) }

// Stats exposes per-instance instrumentation (Fig. 10/11).
func (h *Handle) Stats() (controlCalls, inferCalls, outputTokens int) {
	return h.inst.ControlCalls, h.inst.InferCalls, h.inst.OutputTokens
}

// Launch starts an inferlet from a LaunchSpec. It must be called from a
// sim process (a client, another inferlet, or a test driver) and returns
// once the instance is running. The manifest is revalidated, the
// saturation guard (if the placer implements Admission) may shed
// best-effort launches typed api.ErrOverloaded, the placement policy
// picks a replica, and the launch is cold — paying the upload + JIT
// pipeline — iff that replica's artifact cache lacks the binary.
//
// With a RetryPolicy (on the spec or the ILM default), retryable failures
// — a replica dying during or after launch, an injected transient fault —
// are retried with capped exponential backoff: synchronous failures here
// in the caller's process, failures after Launch returned through a
// requeue daemon that re-places the same Handle onto a survivor.
func (m *ILM) Launch(spec LaunchSpec) (*Handle, error) {
	e, err := m.resolve(spec.Program)
	if err != nil {
		return nil, err
	}
	p := e.prog
	if err := validateManifest(p.Name, p.Manifest, m.models); err != nil {
		return nil, err
	}
	className := spec.Class
	if className == "" {
		className = p.Manifest.Class
	}
	if className != "" && m.classes != nil {
		cls, ok := m.classes[className]
		if !ok {
			return nil, fmt.Errorf("%w: %q", api.ErrNoSuchClass, className)
		}
		if spec.Priority == 0 {
			// The class contract carries the scheduler priority; an
			// explicit spec priority still wins.
			spec.Priority = cls.Priority
		}
	}
	degraded := false
	if gate, ok := m.place.(Admission); ok {
		outputCap, err := gate.AdmitLaunch(className, spec.Priority)
		if err != nil {
			return nil, err
		}
		if outputCap > 0 {
			// Graceful degradation: the gate admitted the launch with a
			// shorter output budget instead of shedding it.
			degraded = true
			spec.Args = degradeArgs(spec.Args, outputCap)
		}
	}
	m.retrySeq++
	h := &Handle{
		Program:   p.Name,
		Version:   e.version,
		ClientTag: spec.ClientTag,
		class:     className,
		degraded:  degraded,
		ilm:       m,
		spec:      spec,
		entry:     e,
		policy:    spec.Retry.withDefaults(m.defaultRetry),
		retryRNG:  sim.NewRNG(0xFA17 ^ m.retrySeq*0x9E3779B97F4A7C15),
		toUser:    sim.NewMailbox[string](m.clock),
		toInflt:   sim.NewMailbox[string](m.clock),
		done:      sim.NewFuture[error](m.clock),
	}
	for {
		err := m.attempt(h)
		if err == nil {
			break
		}
		d, final := h.nextRetryDelay(err)
		if final != nil {
			h.done.Resolve(final)
			h.toUser.Close()
			h.toInflt.Close()
			return nil, final
		}
		m.Retries++
		m.clock.Sleep(d)
	}
	if d := effectiveDeadline(spec.Deadline, p.Manifest.Limits.Deadline); d > 0 {
		m.clock.GoDaemon("ilm:deadline", func() {
			m.clock.Sleep(d)
			h.abort(fmt.Errorf("%w after %v", api.ErrDeadlineExceeded, d))
		})
	}
	return h, nil
}

// attempt runs one launch attempt end to end: dispatcher admission,
// transient-fault check, placement, instance registration, artifact
// upload/JIT, and finally spawning the inferlet process. On success the
// handle's ctl/inst/proc point at the new attempt and nil returns; on
// failure the handle is left instance-less and the caller decides whether
// to retry.
func (m *ILM) attempt(h *Handle) error {
	e := h.entry
	p := e.prog
	h.attempts++
	req := &launchReq{grant: sim.NewSignal(m.clock)}
	m.launchQ.Send(req)
	if err := sim.Await(req.grant); err != nil {
		return err
	}
	m.clock.Sleep(instantiateFixed)
	if m.live >= poolSlots {
		m.clock.Sleep(poolOverflowCost)
	}
	if faults, ok := m.place.(FaultSource); ok {
		if err := faults.LaunchFault(); err != nil {
			return err
		}
	}
	// Placement happens after admission serializes the herd; the instance
	// registers with the control layer immediately, so load-aware
	// placement sees launches-in-flight (an instance still paying its
	// JIT) instead of an all-zeros tie.
	ctl, err := m.place.Place(p.Name, e.ref(), h.spec.Args)
	if err != nil {
		return err
	}

	if h.ID == 0 {
		m.handleID++
		h.ID = m.handleID
	}
	// The entry may have been swapped since the last attempt (a rolling
	// upgrade repointed the handle); the exported version follows it.
	h.Version = e.version
	h.ctl = ctl
	h.killErr = nil
	h.proc = nil
	h.inst = ctl.RegisterInstance(p.Name, nil, func(reason error) {
		h.killErr = reason
		if h.proc != nil {
			m.clock.Kill(h.proc)
		}
	})
	h.inst.MaxQueues = p.Manifest.Limits.MaxQueues
	h.inst.MaxKvPages = p.Manifest.Limits.MaxKvPages
	h.inst.DefaultPriority = h.spec.Priority
	h.inst.Class = h.class
	h.inst.Degraded = h.degraded

	cold := !ctl.HasArtifact(e.ref())
	if cold {
		// Upload + JIT on this replica, plus the dispatcher's extra
		// cold-admission handling. Concurrent launches of a
		// still-compiling artifact each pay the pipeline (the cache
		// admits on completion), reproducing Fig. 9's cold curve.
		m.clock.Sleep(dispatchCold - dispatchWarm + ctl.ArtifactCost(p.BinarySize))
	}
	ctl.AdmitArtifact(e.ref(), p.BinarySize, cold)
	if h.inst.Dead() {
		// Reclaimed while still compiling — FCFS contention
		// (api.ErrTerminated, final) or the replica died under the launch
		// (api.ErrReplicaLost, retryable). Counts as neither a launch nor
		// a cold launch.
		err := h.killErr
		if err == nil {
			err = api.ErrTerminated
		}
		return err
	}
	if !h.counted {
		// One logical launch however many attempts it takes.
		m.Launches++
		h.counted = true
	}
	if cold {
		m.ColdLaunches++
	}
	m.live++
	m.running[h.ID] = h

	sess := &session{ilm: m, handle: h, ctl: h.ctl, args: append([]string(nil), h.spec.Args...)}
	sess.rng = sim.NewRNG(0x5EED ^ uint64(h.ID))
	sess.inst = h.inst

	h.proc = m.clock.Go("inferlet:"+p.Name, func() {
		var err error
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, killed := r.(sim.Killed); killed {
						err = h.killErr
						if err == nil {
							err = api.ErrTerminated
						}
						return
					}
					panic(r)
				}
			}()
			err = p.Run(sess)
		}()
		m.finishAttempt(h, sess, err)
	})
	h.inst.Proc = h.proc
	return nil
}

// finishAttempt runs in the inferlet process as an attempt ends, in any
// way: normal return, abort, deadline, FCFS termination, or replica
// death. Retryable failures with retry headroom hand the handle to a
// requeue daemon (backoff, then re-place on a survivor) and keep the
// client's done future and mailboxes open; everything else resolves the
// handle for good. The handle's ctl/inst — not launch-time captures —
// identify the instance to release: a prefill/decode handoff may have
// rebound the attempt to a different replica mid-run.
func (m *ILM) finishAttempt(h *Handle, sess *session, err error) {
	sess.cancelSubscriptions()
	h.ctl.ReleaseInstance(h.inst)
	m.live--
	delete(m.running, h.ID)
	if err != nil && errors.Is(err, errUpgradeRestart) {
		// Rolling upgrade restart (upgrade.go): relaunch on the repointed
		// entry unconditionally — an operator action consumes no retry
		// budget, and the client's handle stays open across the restart.
		m.UpgradeRequeues++
		h.requeuing = true
		m.clock.GoDaemon("ilm:upgrade-requeue", func() {
			m.clock.Sleep(upgradeRequeueDelay)
			m.requeue(h)
		})
		return
	}
	if err != nil {
		d, final := h.nextRetryDelay(err)
		if final == nil {
			m.Requeues++
			h.requeuing = true
			m.clock.GoDaemon("ilm:requeue", func() {
				m.clock.Sleep(d)
				m.requeue(h)
			})
			return
		}
		err = final
	}
	h.done.Resolve(err)
	// Fail any client still waiting on messages (queued messages stay
	// readable); keep late client sends from piling up.
	h.toUser.Close()
	h.toInflt.Close()
}

// requeue re-places a handle whose previous attempt died retryably. It
// runs in the requeue daemon; synchronous attempt failures keep retrying
// here until the policy says stop, at which point the handle resolves
// with the final error (clients parked in Wait unpark typed).
func (m *ILM) requeue(h *Handle) {
	finalize := func(err error) {
		h.done.Resolve(err)
		h.toUser.Close()
		h.toInflt.Close()
	}
	for {
		if h.aborted != nil {
			// Abort (or deadline) latched while no instance was live.
			finalize(h.aborted)
			return
		}
		err := m.attempt(h)
		if err == nil {
			h.requeuing = false
			if h.aborted != nil {
				// Aborted mid-attempt, after the instance came back up:
				// kill it now; finishAttempt resolves the handle.
				h.ctl.AbortInstance(h.inst, h.aborted)
			}
			return
		}
		d, final := h.nextRetryDelay(err)
		if final != nil {
			finalize(final)
			return
		}
		m.Retries++
		m.clock.Sleep(d)
	}
}

// degradeArgs applies a degraded launch's output cap to its arguments:
// when args[0] is a JSON object (the apps-layer parameter convention),
// max_tokens is lowered to cap (or set if absent). Launches with
// non-JSON arguments pass through unchanged — the cheaper-model
// substitution in session.Open still applies. json.Marshal sorts object
// keys, so the rewrite is deterministic.
func degradeArgs(args []string, cap int) []string {
	if len(args) == 0 {
		return args
	}
	var params map[string]any
	if err := json.Unmarshal([]byte(args[0]), &params); err != nil || params == nil {
		return args
	}
	if mt, ok := params["max_tokens"].(float64); !ok || int(mt) > cap {
		params["max_tokens"] = cap
	}
	raw, err := json.Marshal(params)
	if err != nil {
		return args
	}
	out := append([]string(nil), args...)
	out[0] = string(raw)
	return out
}

// effectiveDeadline combines a launch-spec deadline with a manifest
// deadline: the tighter nonzero bound wins.
func effectiveDeadline(spec, manifest time.Duration) time.Duration {
	switch {
	case spec <= 0:
		return manifest
	case manifest <= 0:
		return spec
	case spec < manifest:
		return spec
	default:
		return manifest
	}
}

// subscription implements inferlet.Subscription.
type subscription struct {
	ilm   *ILM
	topic string
	mb    *sim.Mailbox[string]
}

func (s *subscription) Recv() api.Future[string] { return s.mb.RecvFuture() }

func (s *subscription) Cancel() {
	if subs, ok := s.ilm.topics[s.topic]; ok {
		delete(subs, s)
	}
	s.mb.Close()
}

// broadcast fans a message out to every topic subscriber.
func (m *ILM) broadcast(topic, msg string) {
	for s := range m.topics[topic] {
		s.mb.Send(msg)
	}
}

func (m *ILM) subscribe(topic string) *subscription {
	s := &subscription{ilm: m, topic: topic, mb: sim.NewMailbox[string](m.clock)}
	if m.topics[topic] == nil {
		m.topics[topic] = make(map[*subscription]struct{})
	}
	m.topics[topic][s] = struct{}{}
	return s
}

// Live reports the number of running inferlets.
func (m *ILM) Live() int { return m.live }
