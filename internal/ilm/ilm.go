// Package ilm implements Pie's application layer (§5.1): the Inferlet
// Lifecycle Manager. It launches inferlets into sandboxed cooperative
// processes, manages the compiled-binary cache and pooled instance
// allocation that make launches cheap (Fig. 9), relays user↔inferlet
// messages, and hosts the broadcast/subscribe fabric for inter-inferlet
// collaboration.
//
// The paper executes inferlets as WebAssembly modules under wasmtime with
// pooled allocation preconfigured for 1,000 concurrent instances. Here the
// sandbox is a cooperative sim process whose only capability surface is
// the inferlet.Session interface — inferlets cannot reach the engine, the
// clock, or each other except through session calls, which preserves the
// isolation structure the paper relies on. Launch costs reproduce the
// upload + JIT pipeline: cold launches pay per-byte upload and compile
// charges; warm launches reuse the cached artifact.
package ilm

import (
	"fmt"
	"time"

	"pie/api"
	"pie/inferlet"
	"pie/internal/core"
	"pie/internal/netsim"
	"pie/internal/sim"
)

// Launch-pipeline calibration (Fig. 9; see DESIGN.md §4): a
// single-threaded launch dispatcher serializes admission (its service time
// produces the latency growth with concurrent launches), while
// instantiation, upload, and JIT run in the launching process.
const (
	dispatchWarm     = 90 * time.Microsecond
	dispatchCold     = 100 * time.Microsecond
	instantiateFixed = 1200 * time.Microsecond
	uploadPerByte    = 10 * time.Nanosecond
	jitPerByte       = 190 * time.Nanosecond
	poolSlots        = 1000 // wasmtime pooled-allocation preallocation
	poolOverflowCost = 5 * time.Millisecond
)

// Placer decides which control layer hosts a new inferlet instance. A
// cluster router places across replica controllers; a single-replica
// deployment always returns the same one.
type Placer interface {
	Place(program string, args []string) *core.Controller
}

// ILM is the inferlet lifecycle manager.
type ILM struct {
	clock    *sim.Clock
	place    Placer
	world    *netsim.World
	programs map[string]*inferlet.Program
	compiled map[string]bool // JIT cache
	launchQ  *sim.Mailbox[*launchReq]
	topics   map[string]map[*subscription]struct{}
	live     int
	handleID uint64

	// Stats.
	Launches     int
	ColdLaunches int
}

type launchReq struct {
	cold  bool
	grant *sim.Signal
}

// New starts the ILM on the clock. Launched instances are placed onto a
// control layer by place — the cluster router in multi-replica engines.
func New(clock *sim.Clock, place Placer, world *netsim.World) *ILM {
	m := &ILM{
		clock:    clock,
		place:    place,
		world:    world,
		programs: make(map[string]*inferlet.Program),
		compiled: make(map[string]bool),
		launchQ:  sim.NewMailbox[*launchReq](clock),
		topics:   make(map[string]map[*subscription]struct{}),
	}
	clock.GoDaemon("ilm:dispatcher", m.dispatcherLoop)
	return m
}

// Register installs a program in the inferlet registry.
func (m *ILM) Register(p inferlet.Program) error {
	if p.Name == "" || p.Run == nil {
		return fmt.Errorf("ilm: program needs a name and a Run body")
	}
	if _, dup := m.programs[p.Name]; dup {
		return fmt.Errorf("ilm: program %q already registered", p.Name)
	}
	cp := p
	m.programs[p.Name] = &cp
	return nil
}

// Programs lists registered program names.
func (m *ILM) Programs() []string {
	out := make([]string, 0, len(m.programs))
	for n := range m.programs {
		out = append(out, n)
	}
	return out
}

// dispatcherLoop serializes launch admission (single-threaded, like the
// ILM RPC front end): the source of Fig. 9's latency growth under
// concurrent launches.
func (m *ILM) dispatcherLoop() {
	for {
		req, err := m.launchQ.Recv()
		if err != nil {
			return
		}
		if req.cold {
			m.clock.Sleep(dispatchCold)
		} else {
			m.clock.Sleep(dispatchWarm)
		}
		sim.Fire(req.grant)
	}
}

// Handle is the client-side connection to a running inferlet.
type Handle struct {
	ID      uint64
	Program string
	ilm     *ILM
	ctl     *core.Controller // the replica control layer hosting the instance
	inst    *core.Instance
	proc    *sim.Proc
	toUser  *sim.Mailbox[string]
	toInflt *sim.Mailbox[string]
	done    *sim.Future[error]
	killErr error
	logs    []string
}

// Send delivers a message to the inferlet (the client side of
// send/receive).
func (h *Handle) Send(msg string) { h.toInflt.Send(msg) }

// Recv resolves with the inferlet's next message to the client.
func (h *Handle) Recv() *sim.Future[string] { return h.toUser.RecvFuture() }

// TryRecv drains one queued message without blocking.
func (h *Handle) TryRecv() (string, bool) { return h.toUser.TryRecv() }

// Wait blocks until the inferlet finishes and returns its error result.
func (h *Handle) Wait() error {
	err, _ := h.done.Get()
	return err
}

// Done reports whether the inferlet has finished.
func (h *Handle) Done() bool { return h.done.Done() }

// Logs returns lines the inferlet emitted via Print.
func (h *Handle) Logs() []string { return append([]string(nil), h.logs...) }

// Stats exposes per-instance instrumentation (Fig. 10/11).
func (h *Handle) Stats() (controlCalls, inferCalls, outputTokens int) {
	return h.inst.ControlCalls, h.inst.InferCalls, h.inst.OutputTokens
}

// Launch starts an inferlet. It must be called from a sim process (a
// client, another inferlet, or a test driver) and returns once the
// instance is running. The first launch of a program is cold: the binary
// uploads and JIT-compiles, then stays cached.
func (m *ILM) Launch(program string, args []string) (*Handle, error) {
	p, ok := m.programs[program]
	if !ok {
		return nil, fmt.Errorf("ilm: no program %q", program)
	}
	cold := !m.compiled[program]
	req := &launchReq{cold: cold, grant: sim.NewSignal(m.clock)}
	m.launchQ.Send(req)
	if err := sim.Await(req.grant); err != nil {
		return nil, err
	}
	if cold {
		m.clock.Sleep(time.Duration(p.BinarySize) * (uploadPerByte + jitPerByte))
		m.compiled[program] = true
		m.ColdLaunches++
	}
	m.clock.Sleep(instantiateFixed)
	if m.live >= poolSlots {
		m.clock.Sleep(poolOverflowCost)
	}
	m.Launches++
	m.live++

	m.handleID++
	h := &Handle{
		ID:      m.handleID,
		Program: program,
		ilm:     m,
		ctl:     m.place.Place(program, args),
		toUser:  sim.NewMailbox[string](m.clock),
		toInflt: sim.NewMailbox[string](m.clock),
		done:    sim.NewFuture[error](m.clock),
	}
	sess := &session{ilm: m, handle: h, ctl: h.ctl, args: append([]string(nil), args...)}
	sess.rng = sim.NewRNG(0x5EED ^ uint64(h.ID))

	h.proc = m.clock.Go("inferlet:"+program, func() {
		var err error
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, killed := r.(sim.Killed); killed {
						err = h.killErr
						if err == nil {
							err = api.ErrTerminated
						}
						return
					}
					panic(r)
				}
			}()
			err = p.Run(sess)
		}()
		sess.cancelSubscriptions()
		h.ctl.ReleaseInstance(h.inst)
		m.live--
		h.done.Resolve(err)
		// Fail any client still waiting on messages (queued messages stay
		// readable); keep late client sends from piling up.
		h.toUser.Close()
		h.toInflt.Close()
	})
	h.inst = h.ctl.RegisterInstance(program, h.proc, func(reason error) {
		h.killErr = reason
		m.clock.Kill(h.proc)
	})
	sess.inst = h.inst
	return h, nil
}

// subscription implements inferlet.Subscription.
type subscription struct {
	ilm   *ILM
	topic string
	mb    *sim.Mailbox[string]
}

func (s *subscription) Recv() api.Future[string] { return s.mb.RecvFuture() }

func (s *subscription) Cancel() {
	if subs, ok := s.ilm.topics[s.topic]; ok {
		delete(subs, s)
	}
	s.mb.Close()
}

// broadcast fans a message out to every topic subscriber.
func (m *ILM) broadcast(topic, msg string) {
	for s := range m.topics[topic] {
		s.mb.Send(msg)
	}
}

func (m *ILM) subscribe(topic string) *subscription {
	s := &subscription{ilm: m, topic: topic, mb: sim.NewMailbox[string](m.clock)}
	if m.topics[topic] == nil {
		m.topics[topic] = make(map[*subscription]struct{})
	}
	m.topics[topic][s] = struct{}{}
	return s
}

// Live reports the number of running inferlets.
func (m *ILM) Live() int { return m.live }
