package ilm

import (
	"fmt"
	"time"

	"pie/api"
	"pie/inferlet"
	"pie/internal/core"
	"pie/internal/infer"
	"pie/internal/sim"
)

// session implements inferlet.Session: the only capability surface an
// inferlet has. Control-layer calls charge microsecond-scale handling in
// the controller; queue-based calls flow through the batch scheduler to
// the inference layer.
type session struct {
	ilm    *ILM
	handle *Handle
	ctl    *core.Controller // the replica hosting this instance
	inst   *core.Instance
	args   []string
	rng    *sim.RNG
	subs   []*subscription
}

func (s *session) cancelSubscriptions() {
	for _, sub := range s.subs {
		sub.Cancel()
	}
}

// --- Core runtime -----------------------------------------------------

func (s *session) GetArg() []string { return append([]string(nil), s.args...) }

func (s *session) Send(msg string) {
	s.inst.ControlCalls++
	s.handle.toUser.Send(msg)
}

func (s *session) Receive() api.Future[string] {
	s.inst.ControlCalls++
	return s.handle.toInflt.RecvFuture()
}

func (s *session) Print(msg string) {
	s.handle.logs = append(s.handle.logs, msg)
}

func (s *session) InstanceID() string {
	return fmt.Sprintf("%s#%d", s.handle.Program, s.handle.ID)
}

func (s *session) Now() time.Duration { return s.ilm.clock.Now() }

func (s *session) Sleep(d time.Duration) { s.ilm.clock.Sleep(d) }

func (s *session) Yield() { s.ilm.clock.Yield() }

func (s *session) Random() uint64 { return s.rng.Uint64() }

func (s *session) ReportOutputTokens(n int) { s.inst.ReportOutputTokens(n) }

// --- I/O and messaging --------------------------------------------------

func (s *session) HTTPGet(url string) api.Future[string] {
	s.inst.ControlCalls++
	return s.ilm.world.Call(url, "")
}

func (s *session) HTTPPost(url, body string) api.Future[string] {
	s.inst.ControlCalls++
	return s.ilm.world.Call(url, body)
}

func (s *session) Broadcast(topic, msg string) {
	s.inst.ControlCalls++
	s.ilm.broadcast(topic, msg)
}

func (s *session) Subscribe(topic string) inferlet.Subscription {
	s.inst.ControlCalls++
	sub := s.ilm.subscribe(topic)
	s.subs = append(s.subs, sub)
	return sub
}

func (s *session) Spawn(program string, args []string) (inferlet.Child, error) {
	s.inst.ControlCalls++
	h, err := s.ilm.Launch(program, args)
	if err != nil {
		return nil, err
	}
	return &child{h: h, clock: s.ilm.clock}, nil
}

type child struct {
	h     *Handle
	clock *sim.Clock
}

func (c *child) Send(msg string)          { c.h.Send(msg) }
func (c *child) Recv() api.Future[string] { return c.h.Recv() }
func (c *child) Wait() api.Future[error] {
	f := sim.NewFuture[error](c.clock)
	c.clock.GoDaemon("child-wait", func() { f.Resolve(c.h.Wait()) })
	return f
}

// --- Model discovery ------------------------------------------------------

func (s *session) AvailableModels() []api.ModelInfo {
	return s.ctl.Models(s.inst)
}

func (s *session) AvailableTraits(m api.ModelID) ([]api.Trait, error) {
	return s.ctl.Traits(s.inst, m)
}

// --- Queues ---------------------------------------------------------------

func (s *session) CreateQueue(m api.ModelID) (api.Queue, error) {
	return s.ctl.CreateQueue(s.inst, m)
}

func (s *session) SetQueuePriority(q api.Queue, pri int) error {
	return s.ctl.SetQueuePriority(s.inst, q, pri)
}

func (s *session) Synchronize(q api.Queue) (api.Future[struct{}], error) {
	return s.ctl.Synchronize(s.inst, q)
}

// --- Allocate trait ---------------------------------------------------------

func (s *session) AllocEmbeds(q api.Queue, n int) ([]api.Embed, error) {
	return s.ctl.AllocEmbeds(s.inst, q, n)
}

func (s *session) DeallocEmbeds(q api.Queue, ids []api.Embed) error {
	return s.ctl.DeallocEmbeds(s.inst, q, ids)
}

func (s *session) AllocKvPages(q api.Queue, n int) ([]api.KvPage, error) {
	return s.ctl.AllocPages(s.inst, q, n)
}

func (s *session) DeallocKvPages(q api.Queue, ids []api.KvPage) error {
	return s.ctl.DeallocPages(s.inst, q, ids)
}

func (s *session) ExportKvPages(name string, ids []api.KvPage) error {
	return s.ctl.ExportPages(s.inst, name, ids)
}

func (s *session) ImportKvPages(name string) ([]api.KvPage, error) {
	return s.ctl.ImportPages(s.inst, name)
}

func (s *session) HasExport(name string) bool {
	return s.ctl.HasExport(s.inst, name)
}

func (s *session) ReleaseExport(name string) error {
	return s.ctl.ReleaseExport(s.inst, name)
}

func (s *session) CopyKvPage(q api.Queue, src, dst api.KvPage, srcOff, dstOff, n int) (api.Future[struct{}], error) {
	return s.ctl.CopyKv(s.inst, q, src, dst, srcOff, dstOff, n)
}

// --- Forward trait ----------------------------------------------------------

func (s *session) Forward(q api.Queue, args api.ForwardArgs) (api.Future[struct{}], error) {
	return s.ctl.Forward(s.inst, q, args)
}

func (s *session) ForwardWithAdapter(q api.Queue, adapter string, args api.ForwardArgs) (api.Future[struct{}], error) {
	args.Adapter = adapter
	return s.ctl.Forward(s.inst, q, args)
}

func (s *session) ForwardSampled(q api.Queue, args api.ForwardArgs, inlineTokens, inlinePos []int, spec api.SampleSpec) (api.Future[[]int], error) {
	return s.ctl.ForwardSampled(s.inst, q, args, inlineTokens, inlinePos, infer.SampleSpec{
		TopK: spec.TopK, Temperature: spec.Temperature, Seed: spec.Seed,
	})
}

func (s *session) MaskKvPage(q api.Queue, page api.KvPage, bits []bool) (api.Future[struct{}], error) {
	return s.ctl.MaskKv(s.inst, q, page, bits)
}

// --- InputText / InputImage traits -------------------------------------------

func (s *session) EmbedText(q api.Queue, tokens, positions []int, dst []api.Embed) (api.Future[struct{}], error) {
	return s.ctl.EmbedText(s.inst, q, tokens, positions, dst)
}

func (s *session) EmbedImage(q api.Queue, blob []byte, positions []int, dst []api.Embed) (api.Future[struct{}], error) {
	return s.ctl.EmbedImage(s.inst, q, blob, positions, dst)
}

func (s *session) NumEmbedsNeeded(m api.ModelID, imageBytes int) (int, error) {
	rt := s.ctl.ModelRuntime(string(m))
	if rt == nil {
		return 0, api.ErrNoSuchModel
	}
	return rt.Model.EmbedsNeededForImage(imageBytes), nil
}

// --- Tokenize trait -----------------------------------------------------------

func (s *session) Tokenize(q api.Queue, text string) (api.Future[[]int], error) {
	return s.ctl.Tokenize(s.inst, q, text)
}

func (s *session) Detokenize(q api.Queue, ids []int) (api.Future[string], error) {
	return s.ctl.Detokenize(s.inst, q, ids)
}

func (s *session) GetVocabs(q api.Queue) (api.Future[[][]byte], error) {
	return s.ctl.GetVocabs(s.inst, q)
}

// --- OutputText trait -----------------------------------------------------------

func (s *session) GetNextDist(q api.Queue, emb api.Embed) (api.Future[api.Dist], error) {
	return s.ctl.NextDist(s.inst, q, emb)
}

var _ inferlet.Session = (*session)(nil)
