package ilm

import (
	"fmt"
	"time"

	"pie/api"
	"pie/inferlet"
	"pie/internal/core"
	"pie/internal/infer"
	"pie/internal/sim"
)

// session implements inferlet.Session: the only capability surface an
// inferlet has. Control-layer calls charge microsecond-scale handling in
// the controller; inference-layer access goes through queue bindings
// (inferlet.QueueRuntime) that flow through the batch scheduler.
type session struct {
	ilm    *ILM
	handle *Handle
	ctl    *core.Controller // the replica hosting this instance
	inst   *core.Instance
	args   []string
	rng    *sim.RNG
	subs   []*subscription
}

func (s *session) cancelSubscriptions() {
	for _, sub := range s.subs {
		sub.Cancel()
	}
}

// checkHandoff runs at forward boundaries: once the instance is marked
// HandoffPending (its first token completed on a prefill-role replica),
// it asks the cluster's handoff coordinator to migrate the session's KV
// state to a decode replica. On success every binding — session, handle —
// repoints at the new controller and instance; queue ids are preserved by
// the migration, so open inferlet.Queue objects keep working untouched.
func (s *session) checkHandoff() {
	if s.ilm.handoff == nil || s.inst == nil || !s.inst.HandoffPending {
		return
	}
	if ctl, inst, ok := s.ilm.handoff.MaybeHandoff(s.ctl, s.inst); ok {
		s.ctl, s.inst = ctl, inst
		s.handle.ctl, s.handle.inst = ctl, inst
	}
}

// --- Core runtime -----------------------------------------------------

func (s *session) GetArg() []string { return append([]string(nil), s.args...) }

func (s *session) Send(msg string) {
	s.inst.ControlCalls++
	s.handle.toUser.Send(msg)
}

func (s *session) Receive() api.Future[string] {
	s.inst.ControlCalls++
	return s.handle.toInflt.RecvFuture()
}

func (s *session) Print(msg string) {
	s.handle.logs = append(s.handle.logs, msg)
}

func (s *session) InstanceID() string {
	return fmt.Sprintf("%s#%d", s.handle.Program, s.handle.ID)
}

func (s *session) Now() time.Duration { return s.ilm.clock.Now() }

func (s *session) Sleep(d time.Duration) { s.ilm.clock.Sleep(d) }

func (s *session) Yield() { s.ilm.clock.Yield() }

func (s *session) Random() uint64 { return s.rng.Uint64() }

func (s *session) ReportOutputTokens(n int) { s.inst.ReportOutputTokens(n) }

// --- I/O and messaging --------------------------------------------------

func (s *session) HTTPGet(url string) api.Future[string] {
	s.inst.ControlCalls++
	return s.ilm.world.Call(url, "")
}

func (s *session) HTTPPost(url, body string) api.Future[string] {
	s.inst.ControlCalls++
	return s.ilm.world.Call(url, body)
}

func (s *session) Broadcast(topic, msg string) {
	s.inst.ControlCalls++
	s.ilm.broadcast(topic, msg)
}

func (s *session) Subscribe(topic string) inferlet.Subscription {
	s.inst.ControlCalls++
	sub := s.ilm.subscribe(topic)
	s.subs = append(s.subs, sub)
	return sub
}

func (s *session) Spawn(program string, args []string) (inferlet.Child, error) {
	s.inst.ControlCalls++
	h, err := s.ilm.Launch(LaunchSpec{Program: program, Args: args})
	if err != nil {
		return nil, err
	}
	return &child{h: h, clock: s.ilm.clock}, nil
}

type child struct {
	h     *Handle
	clock *sim.Clock
}

func (c *child) Send(msg string)          { c.h.Send(msg) }
func (c *child) Recv() api.Future[string] { return c.h.Recv() }
func (c *child) Wait() api.Future[error] {
	f := sim.NewFuture[error](c.clock)
	c.clock.GoDaemon("child-wait", func() { f.Resolve(c.h.Wait()) })
	return f
}

// --- Model discovery ------------------------------------------------------

func (s *session) AvailableModels() []api.ModelInfo {
	return s.ctl.Models(s.inst)
}

func (s *session) AvailableTraits(m api.ModelID) ([]api.Trait, error) {
	return s.ctl.Traits(s.inst, m)
}

// --- Command queues --------------------------------------------------------

// Open creates a controller command queue and wraps it in the v2 queue
// object. Capability negotiation happens locally against the model's
// ModelInfo (free of control-layer charges — the trait set is immutable
// data the inferlet already holds from discovery).
func (s *session) Open(m api.ModelID, opts ...inferlet.QueueOption) (*inferlet.Queue, error) {
	if s.inst.Degraded {
		// Graceful degradation: substitute the cheapest model whose trait
		// closure still covers the requested model's declared traits. The
		// inferlet keeps its negotiated capabilities; it just runs them on
		// fewer weight bytes.
		if alt := s.ctl.CheaperModel(string(m)); alt != "" {
			m = api.ModelID(alt)
			s.ctl.Downgrades++
		}
	}
	qid, err := s.ctl.CreateQueue(s.inst, m)
	if err != nil {
		return nil, err
	}
	rt := s.ctl.ModelRuntime(string(m))
	q := inferlet.NewQueue(rt.Info, &queueBinding{s: s, qid: qid, model: string(m)})
	for _, o := range opts {
		if err := o(q); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// queueBinding implements inferlet.QueueRuntime: every operation is bound
// to one (instance, queue) pair and delegates to the replica's controller.
// Residency in the tiered KV cache is invisible at this boundary: a
// Forward/CopyKvPage/MaskKvPage whose pages were offloaded to the host
// tier faults them back in inside the controller (charging the PCIe
// transfer to this session's process), so sessions page transparently.
type queueBinding struct {
	s     *session
	qid   api.Queue
	model string
}

func (b *queueBinding) SetPriority(pri int) error {
	return b.s.ctl.SetQueuePriority(b.s.inst, b.qid, pri)
}

func (b *queueBinding) Synchronize() (api.Future[struct{}], error) {
	return b.s.ctl.Synchronize(b.s.inst, b.qid)
}

func (b *queueBinding) Close() error {
	return b.s.ctl.CloseQueue(b.s.inst, b.qid)
}

func (b *queueBinding) AllocEmbeds(n int) ([]api.Embed, error) {
	return b.s.ctl.AllocEmbeds(b.s.inst, b.qid, n)
}

func (b *queueBinding) DeallocEmbeds(ids []api.Embed) error {
	return b.s.ctl.DeallocEmbeds(b.s.inst, b.qid, ids)
}

func (b *queueBinding) AllocKvPages(n int) ([]api.KvPage, error) {
	return b.s.ctl.AllocPages(b.s.inst, b.qid, n)
}

func (b *queueBinding) DeallocKvPages(ids []api.KvPage) error {
	return b.s.ctl.DeallocPages(b.s.inst, b.qid, ids)
}

func (b *queueBinding) ExportKvPages(name string, ids []api.KvPage) error {
	return b.s.ctl.ExportPages(b.s.inst, name, ids)
}

func (b *queueBinding) ImportKvPages(name string) ([]api.KvPage, error) {
	return b.s.ctl.ImportPages(b.s.inst, name)
}

func (b *queueBinding) HasExport(name string) bool {
	return b.s.ctl.HasExport(b.s.inst, name)
}

func (b *queueBinding) ReleaseExport(name string) error {
	return b.s.ctl.ReleaseExport(b.s.inst, name)
}

func (b *queueBinding) CopyKvPage(src, dst api.KvPage, srcOff, dstOff, n int) (api.Future[struct{}], error) {
	return b.s.ctl.CopyKv(b.s.inst, b.qid, src, dst, srcOff, dstOff, n)
}

func (b *queueBinding) Forward(args api.ForwardArgs) (api.Future[struct{}], error) {
	b.s.checkHandoff()
	return b.s.ctl.Forward(b.s.inst, b.qid, args)
}

func (b *queueBinding) ForwardSampled(args api.ForwardArgs, inlineTokens, inlinePos []int, spec api.SampleSpec) (api.Future[[]int], error) {
	b.s.checkHandoff()
	return b.s.ctl.ForwardSampled(b.s.inst, b.qid, args, inlineTokens, inlinePos, infer.SampleSpec{
		TopK: spec.TopK, Temperature: spec.Temperature, Seed: spec.Seed,
	})
}

func (b *queueBinding) MaskKvPage(page api.KvPage, bits []bool) (api.Future[struct{}], error) {
	return b.s.ctl.MaskKv(b.s.inst, b.qid, page, bits)
}

func (b *queueBinding) EmbedText(tokens, positions []int, dst []api.Embed) (api.Future[struct{}], error) {
	b.s.checkHandoff()
	return b.s.ctl.EmbedText(b.s.inst, b.qid, tokens, positions, dst)
}

func (b *queueBinding) EmbedImage(blob []byte, positions []int, dst []api.Embed) (api.Future[struct{}], error) {
	b.s.checkHandoff()
	return b.s.ctl.EmbedImage(b.s.inst, b.qid, blob, positions, dst)
}

func (b *queueBinding) NumEmbedsNeeded(imageBytes int) (int, error) {
	rt := b.s.ctl.ModelRuntime(b.model)
	if rt == nil {
		return 0, api.ErrNoSuchModel
	}
	return rt.Model.EmbedsNeededForImage(imageBytes), nil
}

func (b *queueBinding) GetNextDist(emb api.Embed) (api.Future[api.Dist], error) {
	return b.s.ctl.NextDist(b.s.inst, b.qid, emb)
}

func (b *queueBinding) Tokenize(text string) (api.Future[[]int], error) {
	return b.s.ctl.Tokenize(b.s.inst, b.qid, text)
}

func (b *queueBinding) Detokenize(ids []int) (api.Future[string], error) {
	return b.s.ctl.Detokenize(b.s.inst, b.qid, ids)
}

func (b *queueBinding) GetVocabs() (api.Future[[][]byte], error) {
	return b.s.ctl.GetVocabs(b.s.inst, b.qid)
}

var (
	_ inferlet.Session      = (*session)(nil)
	_ inferlet.QueueRuntime = (*queueBinding)(nil)
)
