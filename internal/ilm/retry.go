package ilm

import (
	"errors"
	"fmt"
	"time"

	"pie/api"
	"pie/internal/sim"
)

// RetryPolicy controls how a launch survives retryable failures — replica
// death (api.ErrReplicaLost) and injected transient faults
// (api.ErrTransientFault). A launch that fails retryably is requeued onto
// a surviving replica after a capped exponential backoff with
// deterministic jitter; everything else surfaces immediately. The zero
// value disables retries (every failure is final), preserving the
// pre-fault-layer behavior.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts including the first; <= 1 means
	// no retries.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it (default 2ms when retries are enabled).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 50ms).
	MaxBackoff time.Duration
	// Budget caps cumulative backoff across all retries of one launch;
	// when the next delay would exceed it, the launch fails with
	// api.ErrRetryBudgetExhausted. Zero means unlimited.
	Budget time.Duration
	// Jitter spreads each delay uniformly over [d·(1-J), d·(1+J)) so
	// launches evacuated off a dead replica do not thundering-herd the
	// survivors. 0 takes the default 0.2; negative disables jitter. The
	// jitter stream is seeded per handle, so runs replay byte-identically.
	Jitter float64
}

// Enabled reports whether the policy permits any retry.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// withDefaults normalizes the policy, substituting fallback for the zero
// value (the engine-level default retry policy).
func (p RetryPolicy) withDefaults(fallback RetryPolicy) RetryPolicy {
	if p == (RetryPolicy{}) {
		p = fallback
	}
	if !p.Enabled() {
		return p
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 2 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = p.BaseBackoff
	}
	switch {
	case p.Jitter == 0:
		p.Jitter = 0.2
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// Delay prices the backoff before retry number retry (1-based: the delay
// after the first failed attempt is Delay(1)): BaseBackoff doubled per
// retry, capped at MaxBackoff, jittered by ±Jitter from rng. Determinism
// contract: the same rng stream yields the same delays.
func (p RetryPolicy) Delay(retry int, rng *sim.RNG) time.Duration {
	if retry < 1 {
		retry = 1
	}
	d := p.BaseBackoff
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= p.MaxBackoff || d < 0 {
			d = p.MaxBackoff
			break
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 && rng != nil {
		d = time.Duration(float64(d) * (1 - p.Jitter + 2*p.Jitter*rng.Float64()))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Retryable reports whether an error class may be retried under a
// RetryPolicy: replica loss and transient faults, nothing else (aborts,
// deadlines, manifest errors, and FCFS terminations are final).
func Retryable(err error) bool {
	return errors.Is(err, api.ErrReplicaLost) || errors.Is(err, api.ErrTransientFault)
}

// nextRetryDelay decides the handle's fate after a failed attempt: either
// the backoff to sleep before the next attempt (nil error), or the final
// error to surface — the cause itself when retry is impossible, or a
// typed api.ErrRetryBudgetExhausted when the backoff budget ran dry.
func (h *Handle) nextRetryDelay(cause error) (time.Duration, error) {
	p := h.policy
	if !p.Enabled() || !Retryable(cause) || h.attempts >= p.MaxAttempts {
		return 0, cause
	}
	d := p.Delay(h.attempts, h.retryRNG)
	if p.Budget > 0 && h.backoffSpent+d > p.Budget {
		return 0, fmt.Errorf("%w after %d attempt(s), %v of %v backoff spent: %w",
			api.ErrRetryBudgetExhausted, h.attempts, h.backoffSpent, p.Budget, cause)
	}
	h.backoffSpent += d
	return d, nil
}
