package ilm

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pie/api"
	"pie/internal/sim"
)

func TestRetryPolicyDefaults(t *testing.T) {
	fallback := RetryPolicy{MaxAttempts: 3, Budget: 100 * time.Millisecond}

	// The zero value takes the engine-level fallback wholesale.
	got := RetryPolicy{}.withDefaults(fallback)
	if got.MaxAttempts != 3 || got.Budget != 100*time.Millisecond {
		t.Fatalf("zero policy did not take fallback: %+v", got)
	}
	if got.BaseBackoff != 2*time.Millisecond || got.MaxBackoff != 50*time.Millisecond {
		t.Fatalf("backoff defaults not applied: %+v", got)
	}
	if got.Jitter != 0.2 {
		t.Fatalf("jitter default = %v, want 0.2", got.Jitter)
	}

	// A disabled policy stays disabled even with a live fallback.
	if p := (RetryPolicy{MaxAttempts: 1}).withDefaults(fallback); p.Enabled() {
		t.Fatalf("MaxAttempts=1 policy became enabled: %+v", p)
	}

	// Clamps: MaxBackoff >= BaseBackoff, Jitter in [0, 1].
	p := RetryPolicy{MaxAttempts: 2, BaseBackoff: 8 * time.Millisecond,
		MaxBackoff: time.Millisecond, Jitter: 7}.withDefaults(RetryPolicy{})
	if p.MaxBackoff != p.BaseBackoff {
		t.Fatalf("MaxBackoff %v not raised to BaseBackoff %v", p.MaxBackoff, p.BaseBackoff)
	}
	if p.Jitter != 1 {
		t.Fatalf("jitter %v not clamped to 1", p.Jitter)
	}
	if p := (RetryPolicy{MaxAttempts: 2, Jitter: -1}).withDefaults(RetryPolicy{}); p.Jitter != 0 {
		t.Fatalf("negative jitter %v not disabled", p.Jitter)
	}
}

func TestRetryPolicyDelayDoublesAndCaps(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseBackoff: 2 * time.Millisecond,
		MaxBackoff: 10 * time.Millisecond, Jitter: -1}.withDefaults(RetryPolicy{})
	want := []time.Duration{
		2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond,
		10 * time.Millisecond, 10 * time.Millisecond, // capped
	}
	for i, w := range want {
		if d := p.Delay(i+1, nil); d != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, d, w)
		}
	}
	// Huge retry counts must not overflow past the cap.
	if d := p.Delay(200, nil); d != 10*time.Millisecond {
		t.Fatalf("Delay(200) = %v, want the cap", d)
	}
}

func TestRetryPolicyJitterDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseBackoff: 4 * time.Millisecond,
		MaxBackoff: 40 * time.Millisecond, Jitter: 0.25}.withDefaults(RetryPolicy{})
	seq := func(seed uint64) []time.Duration {
		rng := sim.NewRNG(seed)
		var out []time.Duration
		for retry := 1; retry <= 6; retry++ {
			out = append(out, p.Delay(retry, rng))
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed jitter diverged at retry %d: %v vs %v", i+1, a[i], b[i])
		}
	}
	// Jitter stays inside the ±25% band around the unjittered delay.
	flat := RetryPolicy{MaxAttempts: 8, BaseBackoff: 4 * time.Millisecond,
		MaxBackoff: 40 * time.Millisecond, Jitter: -1}.withDefaults(RetryPolicy{})
	for i, d := range a {
		base := flat.Delay(i+1, nil)
		lo := time.Duration(float64(base) * 0.75)
		hi := time.Duration(float64(base) * 1.25)
		if d < lo || d > hi {
			t.Fatalf("jittered Delay(%d) = %v outside [%v, %v]", i+1, d, lo, hi)
		}
	}
	// Different seeds must actually spread (thundering-herd protection).
	if c := seq(8); a[0] == c[0] && a[1] == c[1] && a[2] == c[2] {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

func TestRetryableClassification(t *testing.T) {
	for err, want := range map[error]bool{
		api.ErrReplicaLost:                         true,
		api.ErrTransientFault:                      true,
		fmt.Errorf("wrap: %w", api.ErrReplicaLost): true,
		api.ErrAborted:                             false,
		api.ErrTerminated:                          false,
		api.ErrDeadlineExceeded:                    false,
		errors.New("some other failure"):           false,
	} {
		if got := Retryable(err); got != want {
			t.Fatalf("Retryable(%v) = %v, want %v", err, got, want)
		}
	}
}

func TestNextRetryDelayBudgetExhaustion(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseBackoff: 4 * time.Millisecond,
		MaxBackoff: 4 * time.Millisecond, Jitter: -1,
		Budget: 10 * time.Millisecond}.withDefaults(RetryPolicy{})
	h := &Handle{policy: p, retryRNG: sim.NewRNG(1), attempts: 1}

	// Two 4ms delays fit the 10ms budget; the third would overrun it.
	for i := 0; i < 2; i++ {
		d, err := h.nextRetryDelay(api.ErrReplicaLost)
		if err != nil || d != 4*time.Millisecond {
			t.Fatalf("retry %d: delay %v err %v, want 4ms grant", i+1, d, err)
		}
		h.attempts++
	}
	_, err := h.nextRetryDelay(api.ErrReplicaLost)
	if !errors.Is(err, api.ErrRetryBudgetExhausted) {
		t.Fatalf("over-budget retry error = %v, want ErrRetryBudgetExhausted", err)
	}
	// The exhaustion error keeps the original cause visible.
	if !errors.Is(err, api.ErrReplicaLost) {
		t.Fatalf("exhaustion error %v lost its cause", err)
	}
}

func TestNextRetryDelayFinality(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond,
		Jitter: -1}.withDefaults(RetryPolicy{})

	// Non-retryable causes surface unchanged.
	h := &Handle{policy: p, retryRNG: sim.NewRNG(1), attempts: 1}
	if _, err := h.nextRetryDelay(api.ErrAborted); !errors.Is(err, api.ErrAborted) {
		t.Fatalf("abort cause came back as %v", err)
	}

	// Attempts at the limit surface the cause, not an exhaustion wrapper.
	h = &Handle{policy: p, retryRNG: sim.NewRNG(1), attempts: 2}
	_, err := h.nextRetryDelay(api.ErrReplicaLost)
	if !errors.Is(err, api.ErrReplicaLost) || errors.Is(err, api.ErrRetryBudgetExhausted) {
		t.Fatalf("attempt-capped retry error = %v, want bare cause", err)
	}

	// A disabled policy never grants a delay.
	h = &Handle{policy: RetryPolicy{}, attempts: 1}
	if d, err := h.nextRetryDelay(api.ErrReplicaLost); err == nil || d != 0 {
		t.Fatalf("disabled policy granted a retry: %v %v", d, err)
	}
}
