package ilm

import (
	"fmt"
	"strconv"
	"strings"

	"pie/api"
	"pie/inferlet"
)

// defaultVersion is assumed when a program's manifest omits one.
const defaultVersion = "1.0.0"

// parseVersion parses a semantic version "major[.minor[.patch]]" into its
// numeric components. Pre-release/build suffixes are not supported: the
// registry wants a total order.
func parseVersion(v string) ([3]int, error) {
	var out [3]int
	parts := strings.Split(v, ".")
	if len(parts) == 0 || len(parts) > 3 {
		return out, fmt.Errorf("ilm: bad version %q", v)
	}
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || (len(p) > 1 && p[0] == '0') {
			return out, fmt.Errorf("ilm: bad version %q", v)
		}
		out[i] = n
	}
	return out, nil
}

// canonicalVersion renders a parsed version back to "major.minor.patch",
// so "1.0" and "1.0.0" key the same registry entry.
func canonicalVersion(v [3]int) string {
	return fmt.Sprintf("%d.%d.%d", v[0], v[1], v[2])
}

// versionLess orders two parsed versions.
func versionLess(a, b [3]int) bool {
	for i := 0; i < 3; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// validateManifest checks a program's deployment contract against the
// catalog's trait closure. Violations return api.ErrUnsatisfiedManifest
// with the specific requirement named, so deployments fail at register or
// launch time rather than deep inside a running inferlet.
func validateManifest(name string, m inferlet.Manifest, catalog []api.ModelInfo) error {
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("%w: program %q: %s", api.ErrUnsatisfiedManifest, name,
			fmt.Sprintf(format, args...))
	}
	if m.Limits.MaxQueues < 0 || m.Limits.MaxKvPages < 0 || m.Limits.Deadline < 0 {
		return fail("negative resource limit")
	}
	byID := make(map[api.ModelID]api.ModelInfo, len(catalog))
	for _, info := range catalog {
		byID[info.ID] = info
	}
	satisfies := func(info api.ModelInfo) (api.Trait, bool) {
		for _, t := range m.Traits {
			if !info.HasTraitClosure(t) {
				return t, false
			}
		}
		return "", true
	}
	if len(m.Models) > 0 {
		for _, id := range m.Models {
			info, ok := byID[id]
			if !ok {
				return fail("required model %q not installed", id)
			}
			if t, ok := satisfies(info); !ok {
				return fail("model %q lacks required trait %q", id, t)
			}
		}
		return nil
	}
	if len(m.Traits) > 0 {
		// No pinned models: some installed model must serve every trait.
		for _, info := range catalog {
			if _, ok := satisfies(info); ok {
				return nil
			}
		}
		return fail("no installed model implements required traits %v", m.Traits)
	}
	return nil
}
