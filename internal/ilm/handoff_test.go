// Unit tests for the session-side half of prefill/decode handoff: the
// coordinator is discovered through the Placer, and a successful
// migration repoints every binding — session and handle — at the new
// controller and instance.
package ilm

import (
	"testing"

	"pie/internal/core"
	"pie/internal/sim"
)

// fakeCoordinator is a Placer that also coordinates handoffs, like the
// cluster layer does.
type fakeCoordinator struct {
	ctl   *core.Controller
	inst  *core.Instance
	calls int
	grant bool
}

func (f *fakeCoordinator) Place(program, artifact string, args []string) (*core.Controller, error) {
	return nil, nil
}

func (f *fakeCoordinator) MaybeHandoff(ctl *core.Controller, inst *core.Instance) (*core.Controller, *core.Instance, bool) {
	f.calls++
	if !f.grant {
		return nil, nil, false
	}
	return f.ctl, f.inst, true
}

func TestCheckHandoffRebindsSession(t *testing.T) {
	co := &fakeCoordinator{ctl: &core.Controller{}, inst: &core.Instance{}}
	m := New(sim.NewClock(), co, nil, testCatalog())
	if m.handoff == nil {
		t.Fatal("coordinator-capable placer not discovered")
	}
	// No instance bound yet: the boundary check is a no-op.
	s := &session{ilm: m, handle: &Handle{}}
	s.checkHandoff()
	// Bound but not marked: the coordinator is never bothered.
	s.inst = &core.Instance{}
	s.checkHandoff()
	if co.calls != 0 {
		t.Fatalf("coordinator consulted %d times before the pending mark", co.calls)
	}
	// Marked but the coordinator declines (not quiescent, no capacity):
	// bindings stay put.
	old := s.inst
	old.HandoffPending = true
	s.checkHandoff()
	if co.calls != 1 || s.inst != old {
		t.Fatalf("declined handoff rebound the session (calls=%d)", co.calls)
	}
	// Granted: session and handle repoint at the new controller/instance.
	co.grant = true
	s.checkHandoff()
	if s.ctl != co.ctl || s.inst != co.inst {
		t.Fatal("granted handoff left session bindings on the source")
	}
	if s.handle.ctl != co.ctl || s.handle.inst != co.inst {
		t.Fatal("granted handoff left handle bindings on the source")
	}
}

func TestCheckHandoffWithoutCoordinator(t *testing.T) {
	m := newTestILM()
	if m.handoff != nil {
		t.Fatal("nil placer grew a handoff coordinator")
	}
	s := &session{ilm: m, inst: &core.Instance{HandoffPending: true}}
	s.checkHandoff() // must not panic or clear anything
	if !s.inst.HandoffPending {
		t.Fatal("pending mark cleared with no coordinator installed")
	}
}
