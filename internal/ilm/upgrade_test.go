package ilm

import (
	"errors"
	"testing"

	"pie/api"
	"pie/inferlet"
)

// TestPinResolution: a pin overrides the latest-wins rule for bare names
// without touching explicit version refs.
func TestPinResolution(t *testing.T) {
	m := newTestILM()
	for _, v := range []string{"1.0.0", "2.0.0"} {
		if err := m.Register(prog("app", v, inferlet.Manifest{})); err != nil {
			t.Fatalf("register %s: %v", v, err)
		}
	}
	if e, _ := m.resolve("app"); e.version != "2.0.0" {
		t.Fatalf("unpinned bare name = %s, want latest 2.0.0", e.version)
	}
	// "1.0" canonicalizes on the way in.
	if err := m.SetPin("app", "1.0"); err != nil {
		t.Fatalf("SetPin: %v", err)
	}
	if v, ok := m.Pinned("app"); !ok || v != "1.0.0" {
		t.Fatalf("Pinned = %q, %v", v, ok)
	}
	if e, _ := m.resolve("app"); e.version != "1.0.0" {
		t.Fatalf("pinned bare name = %s, want 1.0.0", e.version)
	}
	if e, _ := m.resolve("app@2.0.0"); e.version != "2.0.0" {
		t.Fatalf("explicit ref = %s: the pin must not capture it", e.version)
	}
	m.ClearPin("app")
	if e, _ := m.resolve("app"); e.version != "2.0.0" {
		t.Fatalf("after ClearPin = %s, want latest again", e.version)
	}
}

// TestSetPinErrors: pins are typed-validated against the registry.
func TestSetPinErrors(t *testing.T) {
	m := newTestILM()
	if err := m.Register(prog("app", "1.0.0", inferlet.Manifest{})); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPin("app", "not-semver"); !errors.Is(err, api.ErrNoSuchProgram) {
		t.Fatalf("bad version: %v", err)
	}
	if err := m.SetPin("app", "3.0.0"); !errors.Is(err, api.ErrNoSuchProgram) {
		t.Fatalf("unregistered version: %v", err)
	}
	if err := m.SetPin("ghost", "1.0.0"); !errors.Is(err, api.ErrNoSuchProgram) {
		t.Fatalf("unknown program: %v", err)
	}
	if _, ok := m.Pinned("app"); ok {
		t.Fatal("failed SetPin left a pin behind")
	}
}

// TestArtifactFor resolves pins and refs to cache keys for prewarming.
func TestArtifactFor(t *testing.T) {
	m := newTestILM()
	if err := m.Register(prog("app", "1.2.0", inferlet.Manifest{})); err != nil {
		t.Fatal(err)
	}
	key, size, err := m.ArtifactFor("app@1.2.0")
	if err != nil || key == "" || size != 1<<10 {
		t.Fatalf("ArtifactFor = %q, %d, %v", key, size, err)
	}
	if _, _, err := m.ArtifactFor("app@9.9.9"); !errors.Is(err, api.ErrNoSuchProgram) {
		t.Fatalf("unknown ref: %v", err)
	}
}

// TestRunningHandlesEmpty: no live instances, no handles — and lookups on
// unregistered programs stay typed.
func TestRunningHandlesEmpty(t *testing.T) {
	m := newTestILM()
	if hs := m.RunningHandles("ghost"); len(hs) != 0 {
		t.Fatalf("RunningHandles on empty registry = %v", hs)
	}
}
