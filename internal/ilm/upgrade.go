package ilm

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"pie/api"
)

// Version pins and rolling upgrades. A pin fixes what a bare program name
// resolves to — without one, bare-name launches float to the highest
// registered version, so registering v2 instantly cuts new traffic over.
// With a pin, the fleet controller owns the cutover: it repins, then
// drains old-version instances in bounded batches, aborting stragglers
// with errUpgradeRestart so they requeue onto the pinned version with the
// client's handle (done future, mailboxes) held open — at-least-once
// execution across the version boundary.

// errUpgradeRestart marks an instance killed to restart it on the pinned
// version. finishAttempt requeues it unconditionally — the restart is an
// operator action, not a failure, so it neither consumes retry budget nor
// counts as an abort.
var errUpgradeRestart = errors.New("ilm: instance restarted for version upgrade")

// upgradeRequeueDelay spaces the relaunch of an upgrade-restarted
// instance (tear-down bookkeeping, not backoff).
const upgradeRequeueDelay = 100 * time.Microsecond

// SetPin fixes what bare-name launches of program name resolve to. The
// version must already be registered — pinning ahead of deployment fails
// typed api.ErrNoSuchProgram (callers retry once the artifact lands).
func (m *ILM) SetPin(name, version string) error {
	parsed, err := parseVersion(version)
	if err != nil {
		return fmt.Errorf("%w: cannot pin %q: %v", api.ErrNoSuchProgram, name, err)
	}
	v := canonicalVersion(parsed)
	if _, ok := m.programs[name][v]; !ok {
		return fmt.Errorf("%w: cannot pin %q to unregistered version %q", api.ErrNoSuchProgram, name, v)
	}
	if m.pins == nil {
		m.pins = make(map[string]string)
	}
	m.pins[name] = v
	return nil
}

// ClearPin removes a pin; bare-name launches float to the highest
// registered version again.
func (m *ILM) ClearPin(name string) { delete(m.pins, name) }

// Pinned reports the pinned version of a program, if any.
func (m *ILM) Pinned(name string) (string, bool) {
	v, ok := m.pins[name]
	return v, ok
}

// RunningHandles lists the live handles of a program, sorted by handle ID
// (launch order) — the deterministic iteration surface the fleet
// controller batches rolling upgrades over. A handle is live from the
// instant its instance registers until its attempt finishes; handles
// between retry attempts are not listed (they re-resolve on relaunch and
// pick the pinned version up on their own).
func (m *ILM) RunningHandles(program string) []*Handle {
	ids := make([]uint64, 0, len(m.running))
	for id, h := range m.running {
		if h.Program == program {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*Handle, len(ids))
	for i, id := range ids {
		out[i] = m.running[id]
	}
	return out
}

// RequeueForUpgrade restarts a running handle onto the currently pinned
// version of its program: the handle's next attempt resolves the pin, and
// the instance is aborted with the upgrade sentinel so finishAttempt
// requeues instead of resolving the client's handle. Reports whether a
// restart was initiated; a handle already on the pinned version (or
// already finished) is left alone.
func (m *ILM) RequeueForUpgrade(h *Handle) bool {
	target, err := m.resolve(h.Program)
	if err != nil || target == h.entry {
		return false
	}
	if h.done.Done() || h.ctl == nil {
		return false
	}
	h.entry = target
	return h.ctl.AbortInstance(h.inst, errUpgradeRestart)
}

// ArtifactFor resolves a program reference to its artifact cache key and
// binary size — the fleet controller prewarms upgrade targets with it.
func (m *ILM) ArtifactFor(ref string) (key string, size int, err error) {
	e, err := m.resolve(ref)
	if err != nil {
		return "", 0, err
	}
	return e.ref(), e.prog.BinarySize, nil
}
