package pie_test

import (
	"errors"
	"testing"
	"time"

	"pie"
	"pie/apps"
)

// TestServiceClassSurface exercises the public service-class surface end
// to end: the compact parsers, classed launches on a heterogeneous pool
// under the SLO scaler, handle-level class/degradation reporting, and the
// per-class attainment block in Stats.
func TestServiceClassSurface(t *testing.T) {
	classes, err := pie.ParseServiceClasses("interactive:ttft=150ms,itl=60ms,prio=10;batch:tps=40,degradable")
	if err != nil {
		t.Fatal(err)
	}
	variants, err := pie.ParseReplicaVariants("ref:cost=1,count=1;eco:cost=0.6,slow=1.3")
	if err != nil {
		t.Fatal(err)
	}
	e := pie.New(pie.Config{
		Mode:     pie.ModeTiming,
		Seed:     3,
		Replicas: 1,
		Classes:  classes,
		Variants: variants,
		Shed:     pie.ShedConfig{Enabled: true, KVWatermark: 0.9, QueueDepth: 8},
		Scaler: pie.ScalerConfig{
			Enabled: true, Min: 1, Max: 2, QueueRef: 4,
			ScaleToZero: true, IdleAfter: 100 * time.Millisecond,
		},
	})
	e.MustRegister(apps.All()...)

	degraded := 0
	err = e.RunClient(func() {
		var hs []*pie.Handle
		for i := 0; i < 8; i++ {
			sp := pie.Spec("text_completion", `{"prompt":"class test prompt","max_tokens":12}`)
			sp.Class = "interactive"
			h, err := e.Launch(sp)
			if err != nil {
				t.Errorf("launch %d: %v", i, err)
				return
			}
			if h.Class() != "interactive" {
				t.Errorf("handle class = %q, want interactive", h.Class())
			}
			hs = append(hs, h)
		}
		e.Sleep(30 * time.Millisecond)
		for i := 0; i < 6; i++ {
			sp := pie.Spec("text_completion", `{"prompt":"batch class prompt","max_tokens":24}`)
			sp.Class = "batch"
			h, err := e.Launch(sp)
			if err != nil {
				t.Errorf("batch launch %d: %v", i, err)
				return
			}
			if h.Degraded() {
				degraded++
			}
			hs = append(hs, h)
		}
		for _, h := range hs {
			if err := h.Wait(); err != nil {
				t.Errorf("wait: %v", err)
				return
			}
		}
		// Unknown classes are rejected at launch.
		bad := pie.Spec("text_completion", `{"prompt":"x","max_tokens":1}`)
		bad.Class = "platinum"
		if _, err := e.Launch(bad); !errors.Is(err, pie.ErrNoSuchClass) {
			t.Errorf("launch with unknown class: err = %v, want ErrNoSuchClass", err)
		}
		e.Sleep(400 * time.Millisecond)
	})
	if err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	if len(st.Classes) != 2 || st.Classes[0].Class != "batch" || st.Classes[1].Class != "interactive" {
		t.Fatalf("Stats().Classes = %+v, want [batch interactive]", st.Classes)
	}
	ic := st.Classes[1]
	if ic.TTFTSamples == 0 || ic.TTFTTargetMS != 150 || ic.Priority != 10 {
		t.Fatalf("interactive class stat %+v: want samples > 0, target 150ms, prio 10", ic)
	}
	if !st.Classes[0].Degradable || st.Classes[0].Degradations != degraded {
		t.Fatalf("batch class stat %+v: want degradable with %d degradations", st.Classes[0], degraded)
	}
	if st.CostUnits <= 0 {
		t.Fatalf("cost units %.3f, want > 0", st.CostUnits)
	}
	if st.ScaleToZeroEvents == 0 {
		t.Fatal("idle engine never scaled to zero")
	}
}
