module pie

go 1.24
