package pie_test

// Determinism regression tests. The batch scheduler used to pick between
// equally-old op classes by iterating a Go map, so equal-`oldest` ties
// depended on map order and two identical-seed runs could batch (and
// therefore time) differently. Ready buckets now break ties on bucket
// creation sequence; these tests pin that contract at the engine level and
// across every eval driver, including under the parallel harness.

import (
	"fmt"
	"testing"

	"pie"
	"pie/apps"
	"pie/internal/eval"
)

// schedulerFingerprint runs a tie-heavy mixed workload and returns every
// observable scheduler statistic formatted as one string, so two runs can
// be compared byte for byte.
func schedulerFingerprint(t *testing.T, seed uint64) string {
	t.Helper()
	e := pie.New(pie.Config{Seed: seed, Mode: pie.ModeTiming})
	e.MustRegister(apps.All()...)
	// Launch a burst of same-op work (equal enqueue times across queues
	// and op classes) plus heterogeneous apps so light ops and forwards
	// contend for dispatch order.
	e.Go("driver", func() {
		var hs []*pie.Handle
		for i := 0; i < 24; i++ {
			params := fmt.Sprintf(`{"prompt":"determinism probe %d","max_tokens":12}`, i%3)
			h, err := e.Launch(pie.Spec("text_completion", params))
			if err != nil {
				t.Errorf("launch %d: %v", i, err)
				return
			}
			hs = append(hs, h)
		}
		for i := 0; i < 4; i++ {
			h, err := e.Launch(pie.Spec("beam", `{"width":3,"steps":6}`))
			if err != nil {
				t.Errorf("beam launch: %v", err)
				return
			}
			hs = append(hs, h)
		}
		for _, h := range hs {
			h.Wait()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	st := e.Stats()
	_, _, _, events := e.Clock().Stats()
	return fmt.Sprintf("now=%v stats=%+v events=%d", e.Now(), st, events)
}

// handoffFingerprint runs a disaggregated-pool workload whose sessions
// all migrate prefill -> decode mid-run and returns every observable
// statistic — engine stats (handoff counters included), per-replica
// stats, and the cluster decision log — as one comparable string. It also
// enforces the conservation contract: after every session finishes, zero
// KV pages remain live on any replica, source or destination.
func handoffFingerprint(t *testing.T, seed uint64) string {
	t.Helper()
	e := pie.New(pie.Config{
		Seed: seed, Mode: pie.ModeTiming, Replicas: 4,
		Placement: pie.PlaceLeastLoaded, HandoffBudget: 1,
		Roles: []pie.RoleSpec{{Role: pie.RolePrefill, Count: 1}, {Role: pie.RoleDecode}},
	})
	e.MustRegister(apps.All()...)
	e.Go("driver", func() {
		var hs []*pie.Handle
		for i := 0; i < 12; i++ {
			params := fmt.Sprintf(`{"prompt":"handoff probe %d","max_tokens":%d}`, i%3, 8+4*(i%4))
			h, err := e.Launch(pie.Spec("text_completion", params))
			if err != nil {
				t.Errorf("launch %d: %v", i, err)
				return
			}
			hs = append(hs, h)
		}
		for _, h := range hs {
			h.Wait()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	st := e.Stats()
	if st.Handoffs == 0 {
		t.Fatal("disaggregated workload produced no handoffs")
	}
	leaked := 0
	for _, r := range e.Cluster().Replicas() {
		inUse, _ := r.Ctl.KVLoad()
		leaked += inUse
	}
	if leaked != 0 {
		t.Fatalf("leaked %d KV pages after all sessions finished", leaked)
	}
	_, _, _, events := e.Clock().Stats()
	return fmt.Sprintf("now=%v stats=%+v replicas=%+v decisions=%v events=%d",
		e.Now(), st, e.ReplicaStats(), e.Cluster().Decisions, events)
}

// TestHandoffDeterministic pins the prefill/decode handoff path to the
// determinism contract: a mid-workload KV migration — budget waits, page
// copies, session rebinding — must replay byte-identically same-seed.
func TestHandoffDeterministic(t *testing.T) {
	a := handoffFingerprint(t, 42)
	b := handoffFingerprint(t, 42)
	if a != b {
		t.Fatalf("identical-seed handoff runs diverged:\n run1: %s\n run2: %s", a, b)
	}
}

func TestSchedulerStatsDeterministic(t *testing.T) {
	a := schedulerFingerprint(t, 42)
	b := schedulerFingerprint(t, 42)
	if a != b {
		t.Fatalf("identical-seed runs diverged:\n run1: %s\n run2: %s", a, b)
	}
	if st := schedulerFingerprint(t, 42); st != a {
		t.Fatalf("third identical-seed run diverged:\n run1: %s\n run3: %s", a, st)
	}
}

// TestEvalDriversDeterministic runs every eval driver twice with the same
// seed and requires identical rows — including under the parallel harness,
// which must only change wall-clock time, never results.
func TestEvalDriversDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("doubles the eval suite; skipped in -short")
	}
	o := eval.Options{Seed: 42, Quick: true}
	drivers := []struct {
		id  string
		run func() string
	}{
		{"fig6", func() string { return fmt.Sprintf("%+v", eval.Figure6(o).Rows) }},
		{"fig7", func() string { return fmt.Sprintf("%+v", eval.Figure7(o).Series) }},
		{"fig8", func() string { return fmt.Sprintf("%+v", eval.Figure8(o).Rows) }},
		{"fig9", func() string { return fmt.Sprintf("%+v", eval.Figure9(o).Points) }},
		{"fig10", func() string { return fmt.Sprintf("%+v", eval.Figure10(o).Points) }},
		{"fig11", func() string { return fmt.Sprintf("%+v", eval.Figure11(o).Rows) }},
		{"table3", func() string { return fmt.Sprintf("%+v", eval.Table3(o)) }},
		{"table4", func() string { return fmt.Sprintf("%+v", eval.Table4(o).Rows) }},
		{"table5", func() string { return fmt.Sprintf("%+v", eval.Table5(o).Rows) }},
	}
	for _, d := range drivers {
		d := d
		t.Run(d.id, func(t *testing.T) {
			a := d.run()
			b := d.run()
			if a != b {
				t.Fatalf("%s: identical-seed runs diverged:\n run1: %s\n run2: %s", d.id, a, b)
			}
		})
	}
}
