package pie_test

import (
	"strings"
	"testing"
	"time"

	"pie"
	"pie/api"
	"pie/inferlet"
)

// autoregressive10 is the paper's §4.2 "putting it all together" example:
// prefill a prompt, then decode 10 tokens with greedy sampling, using the
// raw v2 capability API (alloc, text, forward, sample, tokenizer).
func autoregressive10(prompt string) inferlet.Program {
	return inferlet.Program{
		Name:       "autoregressive10",
		BinarySize: 129 << 10,
		Run: func(s inferlet.Session) error {
			models := s.AvailableModels()
			q, err := s.Open(models[0].ID)
			if err != nil {
				return err
			}
			tok, err := q.Tokenizer()
			if err != nil {
				return err
			}
			alloc, err := q.Alloc()
			if err != nil {
				return err
			}
			text, err := q.Text()
			if err != nil {
				return err
			}
			fwd, err := q.Forward()
			if err != nil {
				return err
			}
			sample, err := q.Sample()
			if err != nil {
				return err
			}
			promToks, err := mustGet(tok.Encode(prompt))
			if err != nil {
				return err
			}
			tokLimit := len(promToks) + 10
			pageSize := models[0].PageSize
			nPages := (tokLimit + pageSize - 1) / pageSize

			promEmb, err := alloc.Embeds(len(promToks))
			if err != nil {
				return err
			}
			genEmb, err := alloc.Embeds(1)
			if err != nil {
				return err
			}
			kv, err := alloc.Pages(nPages)
			if err != nil {
				return err
			}

			// Prefill.
			pos := make([]int, len(promToks))
			for i := range pos {
				pos[i] = i
			}
			if _, err := text.Embed(promToks, pos, promEmb); err != nil {
				return err
			}
			if _, err := fwd.Run(
				inferlet.Input(promEmb...),
				inferlet.AppendKv(kv...),
				inferlet.Output(genEmb...),
			); err != nil {
				return err
			}

			// Decode.
			var out []int
			for i := len(promToks); i < tokLimit; i++ {
				dist, err := mustGet(sample.NextDist(genEmb[0]))
				if err != nil {
					return err
				}
				gen := dist.ArgMax()
				out = append(out, gen)
				s.ReportOutputTokens(1)
				if _, err := text.Embed([]int{gen}, []int{i}, genEmb); err != nil {
					return err
				}
				if _, err := fwd.Run(
					inferlet.ReadKv(kv...),
					inferlet.Input(genEmb...),
					inferlet.AppendKv(kv...),
					inferlet.Output(genEmb...),
				); err != nil {
					return err
				}
			}
			answer, err := mustGet(tok.Decode(out))
			if err != nil {
				return err
			}
			s.Send(answer)

			// Cleanup: queue-scoped reclamation frees every handle above.
			return q.Close()
		},
	}
}

func mustGet[T any](f api.Future[T], err error) (T, error) {
	var zero T
	if err != nil {
		return zero, err
	}
	return f.Get()
}

func TestEndToEndAutoregressive(t *testing.T) {
	e := pie.New(pie.Config{Seed: 42, Mode: pie.ModeFull})
	e.MustRegister(autoregressive10("Hello, "))

	var text string
	var elapsed time.Duration
	err := e.RunClient(func() {
		h, err := e.Launch(pie.Spec("autoregressive10"))
		if err != nil {
			t.Errorf("Launch: %v", err)
			return
		}
		msg, err := h.Recv().Get()
		if err != nil {
			t.Errorf("Recv: %v", err)
			return
		}
		text = msg
		if err := h.Wait(); err != nil {
			t.Errorf("inferlet failed: %v", err)
		}
		elapsed = e.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if text == "" {
		t.Fatal("no generated text received")
	}
	if elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	t.Logf("generated %q in %v virtual time", text, elapsed)
}

func TestEndToEndDeterminism(t *testing.T) {
	run := func() (string, time.Duration) {
		e := pie.New(pie.Config{Seed: 7, Mode: pie.ModeFull})
		e.MustRegister(autoregressive10("the answer is "))
		var text string
		var at time.Duration
		if err := e.RunClient(func() {
			h, _ := e.Launch(pie.Spec("autoregressive10"))
			text, _ = h.Recv().Get()
			h.Wait()
			at = e.Now()
		}); err != nil {
			t.Fatal(err)
		}
		return text, at
	}
	t1, d1 := run()
	t2, d2 := run()
	if t1 != t2 {
		t.Fatalf("same-seed runs generated different text: %q vs %q", t1, t2)
	}
	if d1 != d2 {
		t.Fatalf("same-seed runs took different virtual time: %v vs %v", d1, d2)
	}
}

// Timing mode must charge the same virtual time structure while skipping
// tensor math.
func TestTimingModeRuns(t *testing.T) {
	e := pie.New(pie.Config{Seed: 42, Mode: pie.ModeTiming})
	e.MustRegister(autoregressive10("Hello, "))
	var elapsed time.Duration
	if err := e.RunClient(func() {
		h, err := e.Launch(pie.Spec("autoregressive10"))
		if err != nil {
			t.Errorf("Launch: %v", err)
			return
		}
		if _, err := h.Recv().Get(); err != nil {
			t.Errorf("Recv: %v", err)
		}
		h.Wait()
		elapsed = e.Now()
	}); err != nil {
		t.Fatal(err)
	}
	if elapsed == 0 {
		t.Fatal("timing mode charged no time")
	}
	st := e.Stats()
	if st.Kernels == 0 || st.Batches == 0 {
		t.Fatalf("no kernels/batches recorded: %+v", st)
	}
}

// Many concurrent inferlets must batch: average batch size > 1 and total
// time far below the serial sum.
func TestConcurrentInferletsBatch(t *testing.T) {
	const n = 16
	e := pie.New(pie.Config{Seed: 1, Mode: pie.ModeTiming})
	e.MustRegister(autoregressive10("concurrency test "))
	if err := e.RunClient(func() {
		handles := make([]*pie.Handle, 0, n)
		for i := 0; i < n; i++ {
			h, err := e.Launch(pie.Spec("autoregressive10"))
			if err != nil {
				t.Errorf("Launch %d: %v", i, err)
				return
			}
			handles = append(handles, h)
		}
		for _, h := range handles {
			h.Wait()
		}
	}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.AvgBatch < 2 {
		t.Fatalf("adaptive scheduler failed to batch: avg batch %.2f", st.AvgBatch)
	}
	if st.MaxBatch < 4 {
		t.Fatalf("max batch only %d across %d concurrent inferlets", st.MaxBatch, n)
	}
}

func TestLaunchUnknownProgram(t *testing.T) {
	e := pie.New(pie.Config{})
	err := e.RunClient(func() {
		if _, err := e.Launch(pie.Spec("nope")); err == nil {
			t.Error("launching unknown program succeeded")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHandleLogsAndStats(t *testing.T) {
	e := pie.New(pie.Config{Seed: 3, Mode: pie.ModeFull})
	e.MustRegister(inferlet.Program{
		Name: "logger", BinarySize: 1 << 10,
		Run: func(s inferlet.Session) error {
			s.Print("starting")
			s.Print("arg=" + strings.Join(s.GetArg(), ","))
			s.Send("done")
			return nil
		},
	})
	if err := e.RunClient(func() {
		h, err := e.Launch(pie.Spec("logger", "x", "y"))
		if err != nil {
			t.Errorf("Launch: %v", err)
			return
		}
		h.Wait()
		logs := h.Logs()
		if len(logs) != 2 || logs[1] != "arg=x,y" {
			t.Errorf("logs = %v", logs)
		}
		cc, ic, _ := h.Stats()
		if cc == 0 {
			t.Error("no control calls recorded")
		}
		if ic != 0 {
			t.Errorf("unexpected inference calls: %d", ic)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// Cold-vs-warm launch: the first launch of a program pays upload+JIT; the
// second reuses the cache (Fig. 9 mechanism).
func TestColdWarmLaunch(t *testing.T) {
	e := pie.New(pie.Config{Seed: 5})
	e.MustRegister(inferlet.Program{
		Name: "noop", BinarySize: 129 << 10,
		Run: func(s inferlet.Session) error { s.Send("ok"); return nil },
	})
	var cold, warm time.Duration
	if err := e.RunClient(func() {
		t0 := e.Now()
		h, _ := e.Launch(pie.Spec("noop"))
		h.Recv().Get()
		cold = e.Now() - t0

		t0 = e.Now()
		h2, _ := e.Launch(pie.Spec("noop"))
		h2.Recv().Get()
		warm = e.Now() - t0
		h.Wait()
		h2.Wait()
	}); err != nil {
		t.Fatal(err)
	}
	if warm >= cold {
		t.Fatalf("warm launch (%v) not faster than cold (%v)", warm, cold)
	}
	if cold-warm < 10*time.Millisecond {
		t.Fatalf("cold-warm gap only %v; expected upload+JIT to dominate", cold-warm)
	}
}
