package pie_test

import (
	"errors"
	"fmt"
	"strconv"
	"testing"
	"time"

	"pie"
	"pie/api"
	"pie/inferlet"
)

// greedyHog allocates the requested number of pages, reports, then waits
// for a "more:N" instruction or "exit".
var greedyHog = inferlet.Program{
	Name: "hog", BinarySize: 4 << 10,
	Run: func(s inferlet.Session) error {
		q, err := s.Open(s.AvailableModels()[2].ID) // llama-8b: small pool
		if err != nil {
			return err
		}
		alloc, err := q.Alloc()
		if err != nil {
			return err
		}
		n, _ := strconv.Atoi(s.GetArg()[0])
		if _, err := alloc.Pages(n); err != nil {
			s.Send("alloc-failed: " + err.Error())
			return err
		}
		s.Send("allocated")
		for {
			msg, err := s.Receive().Get()
			if err != nil {
				return err
			}
			if msg == "exit" {
				return nil
			}
			var more int
			fmt.Sscanf(msg, "more:%d", &more)
			if _, err := alloc.Pages(more); err != nil {
				s.Send("alloc-failed: " + err.Error())
				return err
			}
			s.Send("allocated")
		}
	},
}

// TestFCFSTerminatesNewest: when an older inferlet needs pages, the most
// recently created one is reclaimed (§5.2 contention policy).
func TestFCFSTerminatesNewest(t *testing.T) {
	e := pie.New(pie.Config{Seed: 9, Mode: pie.ModeTiming})
	e.MustRegister(greedyHog)
	_, capacity := e.PoolStats("llama-8b")
	if capacity < 10 {
		t.Fatalf("implausible 8B page capacity %d", capacity)
	}
	half := capacity / 2

	if err := e.RunClient(func() {
		older, err := e.Launch(pie.Spec("hog", strconv.Itoa(half)))
		if err != nil {
			t.Errorf("launch older: %v", err)
			return
		}
		if msg, _ := older.Recv().Get(); msg != "allocated" {
			t.Errorf("older: %s", msg)
			return
		}
		newer, err := e.Launch(pie.Spec("hog", strconv.Itoa(capacity-half-1)))
		if err != nil {
			t.Errorf("launch newer: %v", err)
			return
		}
		if msg, _ := newer.Recv().Get(); msg != "allocated" {
			t.Errorf("newer: %s", msg)
			return
		}
		// Older asks for more than remains: newer must be terminated.
		older.Send(fmt.Sprintf("more:%d", half/2))
		if msg, _ := older.Recv().Get(); msg != "allocated" {
			t.Errorf("older re-alloc failed: %s", msg)
		}
		if err := newer.Wait(); !errors.Is(err, api.ErrTerminated) {
			t.Errorf("newer.Wait() = %v, want ErrTerminated", err)
		}
		older.Send("exit")
		if err := older.Wait(); err != nil {
			t.Errorf("older failed: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Terminations != 1 {
		t.Fatalf("Terminations = %d, want 1", e.Stats().Terminations)
	}
}

// TestFCFSSelfTermination: if the requester itself is the newest instance,
// it is the victim and sees ErrTerminated.
func TestFCFSSelfTermination(t *testing.T) {
	e := pie.New(pie.Config{Seed: 9, Mode: pie.ModeTiming})
	e.MustRegister(greedyHog)
	_, capacity := e.PoolStats("llama-8b")
	if err := e.RunClient(func() {
		h, err := e.Launch(pie.Spec("hog", strconv.Itoa(capacity+1)))
		if err != nil {
			t.Errorf("launch: %v", err)
			return
		}
		err = h.Wait()
		if !errors.Is(err, api.ErrTerminated) && !errors.Is(err, api.ErrOutOfResources) {
			t.Errorf("Wait() = %v, want termination", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestTerminationReleasesResources: after the victim dies, its pages are
// reusable.
func TestTerminationReleasesResources(t *testing.T) {
	e := pie.New(pie.Config{Seed: 9, Mode: pie.ModeTiming})
	e.MustRegister(greedyHog)
	_, capacity := e.PoolStats("llama-8b")
	if err := e.RunClient(func() {
		a, _ := e.Launch(pie.Spec("hog", strconv.Itoa(capacity-1)))
		a.Recv().Get()
		b, _ := e.Launch(pie.Spec("hog", "1"))
		b.Recv().Get()
		// Pool is full. The older instance asks for one more page: the
		// newest (b) is reclaimed and its page satisfies a.
		a.Send("more:1")
		if msg, _ := a.Recv().Get(); msg != "allocated" {
			t.Errorf("a could not allocate after b's termination: %s", msg)
		}
		if err := b.Wait(); !errors.Is(err, api.ErrTerminated) {
			t.Errorf("b.Wait() = %v, want ErrTerminated", err)
		}
		a.Send("exit")
		a.Wait()
	}); err != nil {
		t.Fatal(err)
	}
	inUse, _ := e.PoolStats("llama-8b")
	if inUse != 0 {
		t.Fatalf("pages leaked after exit: inUse = %d", inUse)
	}
}

// exporter prefills a prompt into pages and exports them; importer imports
// and decodes one token from the shared context. Exercises cross-inferlet
// KV sharing (export_kvpage / import_kvpage).
func exportImportPrograms(prompt string) (inferlet.Program, inferlet.Program) {
	exporter := inferlet.Program{
		Name: "exporter", BinarySize: 8 << 10,
		Run: func(s inferlet.Session) error {
			q, err := s.Open(s.AvailableModels()[0].ID)
			if err != nil {
				return err
			}
			tok, err := q.Tokenizer()
			if err != nil {
				return err
			}
			alloc, err := q.Alloc()
			if err != nil {
				return err
			}
			text, err := q.Text()
			if err != nil {
				return err
			}
			fwd, err := q.Forward()
			if err != nil {
				return err
			}
			toks, err := mustGet(tok.Encode(prompt))
			if err != nil {
				return err
			}
			emb, err := alloc.Embeds(len(toks))
			if err != nil {
				return err
			}
			ps := s.AvailableModels()[0].PageSize
			pages, err := alloc.Pages((len(toks) + ps - 1) / ps)
			if err != nil {
				return err
			}
			pos := make([]int, len(toks))
			for i := range pos {
				pos[i] = i
			}
			if _, err := text.Embed(toks, pos, emb); err != nil {
				return err
			}
			if _, err := fwd.Run(inferlet.Input(emb...), inferlet.AppendKv(pages...)); err != nil {
				return err
			}
			if err := q.Sync(); err != nil {
				return err
			}
			if err := alloc.Export("shared-prompt", pages); err != nil {
				return err
			}
			s.Send(fmt.Sprintf("exported:%d", len(toks)))
			return nil
		},
	}
	importer := inferlet.Program{
		Name: "importer", BinarySize: 8 << 10,
		Run: func(s inferlet.Session) error {
			q, err := s.Open(s.AvailableModels()[0].ID)
			if err != nil {
				return err
			}
			tok, err := q.Tokenizer()
			if err != nil {
				return err
			}
			alloc, err := q.Alloc()
			if err != nil {
				return err
			}
			text, err := q.Text()
			if err != nil {
				return err
			}
			fwd, err := q.Forward()
			if err != nil {
				return err
			}
			sample, err := q.Sample()
			if err != nil {
				return err
			}
			nTokens, _ := strconv.Atoi(s.GetArg()[0])
			pages, err := alloc.Import("shared-prompt")
			if err != nil {
				return err
			}
			qtoks, err := mustGet(tok.Encode("?"))
			if err != nil {
				return err
			}
			emb, err := alloc.Embeds(len(qtoks))
			if err != nil {
				return err
			}
			out, err := alloc.Embeds(1)
			if err != nil {
				return err
			}
			pos := make([]int, len(qtoks))
			for i := range pos {
				pos[i] = nTokens + i
			}
			if _, err := text.Embed(qtoks, pos, emb); err != nil {
				return err
			}
			if _, err := fwd.Run(
				inferlet.ReadKv(pages...), inferlet.Input(emb...), inferlet.Output(out...),
			); err != nil {
				return err
			}
			dist, err := mustGet(sample.NextDist(out[0]))
			if err != nil {
				return err
			}
			s.Send(fmt.Sprintf("next:%d", dist.ArgMax()))
			return nil
		},
	}
	return exporter, importer
}

func TestExportImportSharedKV(t *testing.T) {
	e := pie.New(pie.Config{Seed: 21, Mode: pie.ModeFull})
	exp, imp := exportImportPrograms("shared context for everyone ")
	e.MustRegister(exp, imp)
	if err := e.RunClient(func() {
		he, _ := e.Launch(pie.Spec("exporter"))
		msg, _ := he.Recv().Get()
		var n int
		fmt.Sscanf(msg, "exported:%d", &n)
		if n == 0 {
			t.Errorf("exporter reported %q", msg)
			return
		}
		if err := he.Wait(); err != nil {
			t.Errorf("exporter: %v", err)
		}
		// Exporter is gone; its export must survive (registry holds refs).
		h1, _ := e.Launch(pie.Spec("importer", strconv.Itoa(n)))
		m1, _ := h1.Recv().Get()
		h1.Wait()
		h2, _ := e.Launch(pie.Spec("importer", strconv.Itoa(n)))
		m2, _ := h2.Recv().Get()
		h2.Wait()
		if m1 != m2 || m1 == "" {
			t.Errorf("importers disagree: %q vs %q", m1, m2)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// badHandles checks that foreign/stale handles are rejected.
var badHandles = inferlet.Program{
	Name: "bad-handles", BinarySize: 1 << 10,
	Run: func(s inferlet.Session) error {
		models := s.AvailableModels()
		q1, _ := s.Open(models[0].ID)
		q2, _ := s.Open(models[1].ID) // different model
		alloc1, _ := q1.Alloc()
		text1, _ := q1.Text()
		sample1, _ := q1.Sample()
		text2, _ := q2.Text()
		emb, err := alloc1.Embeds(1)
		if err != nil {
			return err
		}
		// Cross-model use must fail.
		if _, err := text2.Embed([]int{5}, []int{0}, emb); !errors.Is(err, api.ErrBadHandle) {
			return fmt.Errorf("cross-model embed: got %v, want ErrBadHandle", err)
		}
		// Unknown handle must fail.
		if _, err := sample1.NextDist(api.Embed(999999)); !errors.Is(err, api.ErrBadHandle) {
			return fmt.Errorf("unknown handle: got %v, want ErrBadHandle", err)
		}
		// Dealloc then reuse must fail.
		if err := alloc1.FreeEmbeds(emb); err != nil {
			return err
		}
		if _, err := text1.Embed([]int{5}, []int{0}, emb); !errors.Is(err, api.ErrBadHandle) {
			return fmt.Errorf("stale handle: got %v, want ErrBadHandle", err)
		}
		// Double dealloc must fail.
		if err := alloc1.FreeEmbeds(emb); !errors.Is(err, api.ErrBadHandle) {
			return fmt.Errorf("double dealloc: got %v, want ErrBadHandle", err)
		}
		return nil
	},
}

func TestHandleIsolation(t *testing.T) {
	e := pie.New(pie.Config{Seed: 2, Mode: pie.ModeTiming})
	e.MustRegister(badHandles)
	if err := e.RunClient(func() {
		h, _ := e.Launch(pie.Spec("bad-handles"))
		if err := h.Wait(); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerPolicies: with many concurrent inferlets, adaptive batching
// must beat T-only, which must beat eager (Table 5 ordering; K-only's
// place depends on K).
func TestSchedulerPolicies(t *testing.T) {
	const n = 24
	run := func(policy pie.Policy) time.Duration {
		e := pie.New(pie.Config{Seed: 4, Mode: pie.ModeTiming, Policy: policy})
		e.MustRegister(autoregressive10("policy test "))
		var took time.Duration
		if err := e.RunClient(func() {
			hs := make([]*pie.Handle, 0, n)
			for i := 0; i < n; i++ {
				h, err := e.Launch(pie.Spec("autoregressive10"))
				if err != nil {
					t.Errorf("launch: %v", err)
					return
				}
				hs = append(hs, h)
			}
			for _, h := range hs {
				h.Wait()
			}
			took = e.Now()
		}); err != nil {
			t.Fatal(err)
		}
		return took
	}
	adaptive := run(pie.PolicyAdaptive)
	eager := run(pie.PolicyEager)
	tonly := run(pie.PolicyTOnly)
	t.Logf("adaptive=%v t-only=%v eager=%v", adaptive, tonly, eager)
	if !(adaptive < tonly && tonly < eager) {
		t.Fatalf("policy ordering violated: adaptive=%v t-only=%v eager=%v", adaptive, tonly, eager)
	}
	if eager < 3*adaptive {
		t.Fatalf("eager (%v) should be several times slower than adaptive (%v)", eager, adaptive)
	}
}

// TestBroadcastSubscribe: inter-inferlet messaging via topics.
func TestBroadcastSubscribe(t *testing.T) {
	e := pie.New(pie.Config{Seed: 5, Mode: pie.ModeTiming})
	e.MustRegister(inferlet.Program{
		Name: "listener", BinarySize: 1 << 10,
		Run: func(s inferlet.Session) error {
			sub := s.Subscribe("news")
			s.Send("ready")
			msg, err := sub.Recv().Get()
			if err != nil {
				return err
			}
			s.Send("got:" + msg)
			return nil
		},
	})
	e.MustRegister(inferlet.Program{
		Name: "speaker", BinarySize: 1 << 10,
		Run: func(s inferlet.Session) error {
			s.Broadcast("news", "hello-all")
			return nil
		},
	})
	if err := e.RunClient(func() {
		l1, _ := e.Launch(pie.Spec("listener"))
		l2, _ := e.Launch(pie.Spec("listener"))
		l1.Recv().Get()
		l2.Recv().Get()
		sp, _ := e.Launch(pie.Spec("speaker"))
		sp.Wait()
		m1, _ := l1.Recv().Get()
		m2, _ := l2.Recv().Get()
		if m1 != "got:hello-all" || m2 != "got:hello-all" {
			t.Errorf("broadcast delivery: %q, %q", m1, m2)
		}
		l1.Wait()
		l2.Wait()
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSpawnChild: inferlets launching inferlets (Agent-SWARM substrate).
func TestSpawnChild(t *testing.T) {
	e := pie.New(pie.Config{Seed: 6, Mode: pie.ModeTiming})
	e.MustRegister(inferlet.Program{
		Name: "worker", BinarySize: 1 << 10,
		Run: func(s inferlet.Session) error {
			msg, err := s.Receive().Get()
			if err != nil {
				return err
			}
			s.Send("echo:" + msg)
			return nil
		},
	})
	e.MustRegister(inferlet.Program{
		Name: "parent", BinarySize: 1 << 10,
		Run: func(s inferlet.Session) error {
			c, err := s.Spawn("worker", nil)
			if err != nil {
				return err
			}
			c.Send("ping")
			reply, err := c.Recv().Get()
			if err != nil {
				return err
			}
			if reply != "echo:ping" {
				return fmt.Errorf("child replied %q", reply)
			}
			if err, _ := c.Wait().Get(); err != nil {
				return err
			}
			s.Send("ok")
			return nil
		},
	})
	if err := e.RunClient(func() {
		h, _ := e.Launch(pie.Spec("parent"))
		if msg, _ := h.Recv().Get(); msg != "ok" {
			t.Errorf("parent reported %q", msg)
		}
		h.Wait()
	}); err != nil {
		t.Fatal(err)
	}
}

// TestToolHTTP: integrated I/O from an inferlet, with virtual latency.
func TestToolHTTP(t *testing.T) {
	e := pie.New(pie.Config{Seed: 7, Mode: pie.ModeTiming})
	e.RegisterTool("weather.api", 40*time.Millisecond, func(req string) string {
		return `{"temp": 21}`
	})
	e.MustRegister(inferlet.Program{
		Name: "io", BinarySize: 1 << 10,
		Run: func(s inferlet.Session) error {
			t0 := s.Now()
			resp, err := s.HTTPGet("http://weather.api/today").Get()
			if err != nil {
				return err
			}
			s.Send(fmt.Sprintf("%s in %v", resp, s.Now()-t0))
			return nil
		},
	})
	if err := e.RunClient(func() {
		h, _ := e.Launch(pie.Spec("io"))
		msg, _ := h.Recv().Get()
		if msg != `{"temp": 21} in 40ms` {
			t.Errorf("got %q", msg)
		}
		h.Wait()
	}); err != nil {
		t.Fatal(err)
	}
}

// TestQueuePriorityOrdering: a higher-priority queue's calls land earlier
// in shared batches, observable through earlier completion under load.
func TestQueuePriority(t *testing.T) {
	e := pie.New(pie.Config{Seed: 8, Mode: pie.ModeTiming})
	e.MustRegister(inferlet.Program{
		Name: "pri", BinarySize: 1 << 10,
		Run: func(s inferlet.Session) error {
			pri, _ := strconv.Atoi(s.GetArg()[0])
			q, err := s.Open(s.AvailableModels()[0].ID, inferlet.WithPriority(pri))
			if err != nil {
				return err
			}
			tok, _ := q.Tokenizer()
			alloc, _ := q.Alloc()
			text, _ := q.Text()
			toks, _ := mustGet(tok.Encode("priority scheduling test prompt"))
			emb, err := alloc.Embeds(len(toks))
			if err != nil {
				return err
			}
			pos := make([]int, len(toks))
			for i := range pos {
				pos[i] = i
			}
			text.Embed(toks, pos, emb)
			return q.Sync()
		},
	})
	if err := e.RunClient(func() {
		lo, _ := e.Launch(pie.Spec("pri", "0"))
		hi, _ := e.Launch(pie.Spec("pri", "10"))
		lo.Wait()
		hi.Wait()
	}); err != nil {
		t.Fatal(err)
	}
}
