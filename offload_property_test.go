package pie_test

// Engine-level property test for the tiered KV cache: several concurrent
// inferlets run seeded random sequences of alloc / free / export / import
// / forward (which faults offloaded pages) / Close against a small device
// pool with a host tier, while a probe process asserts the pool
// invariants the whole time. Injected mid-sequence failures (deallocs
// containing a bogus or duplicate handle) must be all-or-nothing: the
// failed call releases nothing and every real handle stays reclaimable.

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"pie"
	"pie/api"
	"pie/inferlet"
)

const (
	chaosAgents   = 3
	chaosOps      = 80
	chaosMaxPages = 12 // per-agent page budget; 3*12 < 16 dev + 32 host
)

// chaosProgram runs one seeded random op sequence. Every decision comes
// from the session RNG (itself seeded by the engine seed and instance
// id), so same-seed engines replay identical sequences.
func chaosProgram() inferlet.Program {
	return inferlet.Program{
		Name: "chaos", BinarySize: 8 << 10,
		Run: func(s inferlet.Session) error {
			var id int
			fmt.Sscanf(s.GetArg()[0], "%d", &id)
			q, err := s.Open("llama-1b")
			if err != nil {
				return err
			}
			al, err := q.Alloc()
			if err != nil {
				return err
			}
			fwd, err := q.Forward()
			if err != nil {
				return err
			}
			var pages []api.KvPage
			exported := map[string][]api.KvPage{}
			exportSeq := 0
			for op := 0; op < chaosOps; op++ {
				switch s.Random() % 6 {
				case 0: // alloc
					n := 1 + int(s.Random()%3)
					if len(pages)+n > chaosMaxPages {
						continue
					}
					got, err := al.Pages(n)
					if err != nil {
						return fmt.Errorf("op %d: alloc: %w", op, err)
					}
					pages = append(pages, got...)
				case 1: // free a random prefix-rotation subset
					if len(pages) == 0 {
						continue
					}
					n := 1 + int(s.Random()%uint64(len(pages)))
					if err := al.FreePages(pages[:n]); err != nil {
						return fmt.Errorf("op %d: free: %w", op, err)
					}
					pages = append([]api.KvPage(nil), pages[n:]...)
				case 2: // injected failure: dealloc with a bogus handle
					if len(pages) == 0 {
						continue
					}
					bad := []api.KvPage{pages[0], api.KvPage(1 << 40)}
					if err := al.FreePages(bad); !errors.Is(err, api.ErrBadHandle) {
						return fmt.Errorf("op %d: bad dealloc = %v, want ErrBadHandle", op, err)
					}
					// All-or-nothing: the real handle must still be live —
					// freeing it now must succeed.
					if err := al.FreePages(pages[:1]); err != nil {
						return fmt.Errorf("op %d: handle lost by failed dealloc: %w", op, err)
					}
					pages = append([]api.KvPage(nil), pages[1:]...)
				case 3: // duplicate-handle dealloc must also release nothing
					if len(pages) == 0 {
						continue
					}
					dup := []api.KvPage{pages[0], pages[0]}
					if err := al.FreePages(dup); !errors.Is(err, api.ErrBadHandle) {
						return fmt.Errorf("op %d: dup dealloc = %v, want ErrBadHandle", op, err)
					}
				case 4: // forward over everything owned: faults offloaded pages
					if len(pages) == 0 {
						continue
					}
					f, err := fwd.Run(inferlet.ReadKv(pages...))
					if err != nil {
						return fmt.Errorf("op %d: forward: %w", op, err)
					}
					if _, err := f.Get(); err != nil {
						return fmt.Errorf("op %d: forward wait: %w", op, err)
					}
				case 5: // export a page, import a peer's export
					if len(pages) > 0 && s.Random()%2 == 0 {
						name := fmt.Sprintf("chaos:%d:%d", id, exportSeq)
						exportSeq++
						if err := al.Export(name, pages[:1]); err != nil {
							return fmt.Errorf("op %d: export: %w", op, err)
						}
						exported[name] = pages[:1:1]
					} else {
						peer := fmt.Sprintf("chaos:%d:0", int(s.Random()%chaosAgents))
						if al.HasExport(peer) {
							got, err := al.Import(peer)
							if err != nil {
								return fmt.Errorf("op %d: import: %w", op, err)
							}
							if len(pages)+len(got) <= chaosMaxPages {
								pages = append(pages, got...)
							} else if err := al.FreePages(got); err != nil {
								return fmt.Errorf("op %d: free import: %w", op, err)
							}
						}
					}
				}
			}
			// Tear down: drop every export registration, then Close the
			// queue — queue-scoped reclamation must return every page.
			for name := range exported {
				if err := al.ReleaseExport(name); err != nil {
					return fmt.Errorf("release export %s: %w", name, err)
				}
			}
			return q.Close()
		},
	}
}

func runChaos(t *testing.T, seed uint64) pie.Stats {
	t.Helper()
	e := pie.New(pie.Config{
		Seed: seed, Mode: pie.ModeTiming,
		KVPagesOverride: 16, HostKVRatio: 2.0, // 16 device + 32 host pages
	})
	e.MustRegister(chaosProgram())
	probeDone := false
	e.Go("invariant-probe", func() {
		// Poll the pool invariants throughout the run: tier counts must
		// always sum to the pool total and respect tier capacities.
		for !probeDone {
			e.Sleep(2 * time.Millisecond)
			st := e.Stats()
			inUse, _ := e.PoolStats("llama-1b")
			if st.KVDevicePages+st.KVHostPages != inUse {
				t.Errorf("tier counts %d+%d != pool total %d", st.KVDevicePages, st.KVHostPages, inUse)
				return
			}
			if st.KVDevicePages > 16 || st.KVHostPages > 32 {
				t.Errorf("tier overcommit: dev %d host %d", st.KVDevicePages, st.KVHostPages)
				return
			}
		}
	})
	err := e.RunClient(func() {
		defer func() { probeDone = true }()
		var hs []*pie.Handle
		for i := 0; i < chaosAgents; i++ {
			h, err := e.Launch(pie.Spec("chaos", fmt.Sprint(i)))
			if err != nil {
				t.Errorf("launch %d: %v", i, err)
				return
			}
			hs = append(hs, h)
		}
		for i, h := range hs {
			if err := h.Wait(); err != nil {
				t.Errorf("chaos agent %d: %v", i, err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// No lost pages: every queue closed and every export released, so
	// both tiers must be empty.
	if inUse, _ := e.PoolStats("llama-1b"); inUse != 0 {
		t.Fatalf("seed %d: %d pages lost after teardown", seed, inUse)
	}
	st := e.Stats()
	if st.KVDevicePages != 0 || st.KVHostPages != 0 {
		t.Fatalf("seed %d: tiers not empty after teardown: %+v", seed, st)
	}
	if st.Terminations != 0 {
		t.Fatalf("seed %d: chaos load should fit capacity, got %d terminations", seed, st.Terminations)
	}
	return st
}

// TestOffloadChaosInvariants runs the randomized sequences across several
// seeds. The workload is sized to force offload churn (device tier far
// smaller than aggregate demand) without exceeding total capacity.
func TestOffloadChaosInvariants(t *testing.T) {
	swaps := 0
	for seed := uint64(1); seed <= 4; seed++ {
		st := runChaos(t, seed)
		swaps += st.SwapOutPages
	}
	if swaps == 0 {
		t.Fatal("chaos runs never exercised the offload path")
	}
}

// TestOffloadChaosDeterministic pins replay: the same seed produces
// byte-identical engine stats, swap counters included.
func TestOffloadChaosDeterministic(t *testing.T) {
	a, err := json.Marshal(runChaos(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(runChaos(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("same-seed chaos stats differ:\n%s\n%s", a, b)
	}
}

// TestExportResidencyReflectsOffload: exported pages that went cold and
// were offloaded report a reduced device-resident fraction — the signal
// the cluster's kv-affinity placement scores holders by.
func TestExportResidencyReflectsOffload(t *testing.T) {
	e := pie.New(pie.Config{
		Seed: 3, Mode: pie.ModeTiming,
		KVPagesOverride: 8, HostKVRatio: 1.0, // 8 device + 8 host pages
	})
	e.MustRegister(inferlet.Program{
		Name: "exporter", BinarySize: 8 << 10,
		Run: func(s inferlet.Session) error {
			q, err := s.Open("llama-1b")
			if err != nil {
				return err
			}
			al, _ := q.Alloc()
			pages, err := al.Pages(4)
			if err != nil {
				return err
			}
			if err := al.Export("res:key", pages); err != nil {
				return err
			}
			s.Send("exported")
			_, err = s.Receive().Get()
			return err
		},
	})
	e.MustRegister(inferlet.Program{
		Name: "presser", BinarySize: 8 << 10,
		Run: func(s inferlet.Session) error {
			// Allocate enough fresh pages to force the exporter's cold
			// pages off the device tier.
			q, err := s.Open("llama-1b")
			if err != nil {
				return err
			}
			al, _ := q.Alloc()
			if _, err := al.Pages(7); err != nil {
				return err
			}
			return q.Close()
		},
	})
	err := e.RunClient(func() {
		h, err := e.Launch(pie.Spec("exporter"))
		if err != nil {
			t.Errorf("launch exporter: %v", err)
			return
		}
		if msg, _ := h.Recv().Get(); msg != "exported" {
			t.Errorf("got %q", msg)
			return
		}
		if dev, total := e.Controller().ExportResidency("res:key"); dev != 4 || total != 4 {
			t.Errorf("fresh export residency %d/%d, want 4/4", dev, total)
		}
		if _, err := e.LaunchAndWait(pie.Spec("presser")); err != nil {
			t.Errorf("presser: %v", err)
			return
		}
		dev, total := e.Controller().ExportResidency("res:key")
		if total != 4 || dev >= 4 {
			t.Errorf("post-pressure residency %d/%d, want fewer than 4 device-resident", dev, total)
		}
		h.Send("finish")
		_ = h.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.SwapOutPages == 0 {
		t.Fatal("pressure never offloaded the exported pages")
	}
}
