package apps

import (
	"fmt"

	"pie/api"
	"pie/inferlet"
	"pie/support"
)

// Attention-level techniques (§7.2): built entirely on mask_kvpage and
// token-level page control — features the paper notes had never been
// implemented in vLLM or SGLang because they require invasive memory-
// manager changes, yet are ~50 lines of application code here.

// SinkParams configures AttentionSink and WindowedAttention.
type SinkParams struct {
	Common
	Prompt     string `json:"prompt"`
	MaxTokens  int    `json:"max_tokens"`
	SinkTokens int    `json:"sink_tokens"`
	WindowSize int    `json:"window_size"`
	ReleaseKv  bool   `json:"release_kv"` // free fully-evicted pages
}

// AttentionSink streams long generations with bounded attention: the
// first SinkTokens stay visible forever (StreamingLLM's sinks), plus a
// sliding window of the most recent WindowSize tokens; everything in
// between is masked out and its pages optionally freed (Table 2: 60 LoC).
func AttentionSink() inferlet.Program {
	return sinkProgram("attention_sink", true)
}

// WindowedAttention is the sink-free variant: pure sliding window
// (Longformer-style; Table 2: 60 LoC).
func WindowedAttention() inferlet.Program {
	return sinkProgram("windowed_attention", false)
}

func sinkProgram(name string, keepSink bool) inferlet.Program {
	return inferlet.Program{
		Name:       name,
		BinarySize: 133 << 10,
		Manifest:   manifest(api.TraitTokenize, api.TraitOutputText),
		Run: func(s inferlet.Session) error {
			var p SinkParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			if p.Prompt == "" {
				p.Prompt = "A very long story begins here and keeps going "
			}
			if p.MaxTokens <= 0 {
				p.MaxTokens = 96
			}
			if p.SinkTokens <= 0 {
				p.SinkTokens = 4
			}
			if p.WindowSize <= 0 {
				p.WindowSize = 32
			}
			sink := p.SinkTokens
			if !keepSink {
				sink = 0
			}
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}
			ctx, err := support.NewContext(s, m)
			if err != nil {
				return err
			}
			defer ctx.Drop()
			if err := ctx.Fill(p.Prompt); err != nil {
				return err
			}

			evictedTo := sink // everything in [sink, evictedTo) is masked
			var out []int
			for len(out) < p.MaxTokens {
				dist, err := ctx.NextDist()
				if err != nil {
					return err
				}
				tok := dist.ArgMax()
				out = append(out, tok)
				s.ReportOutputTokens(1)
				if err := ctx.Append(tok); err != nil {
					return err
				}
				// Evict anything that slid out of the window.
				if horizon := ctx.Len() - p.WindowSize; horizon > evictedTo {
					if err := ctx.MaskRange(evictedTo, horizon, true); err != nil {
						return err
					}
					evictedTo = horizon
					if p.ReleaseKv {
						if _, err := ctx.ReleaseMaskedPages([][2]int{{sink, evictedTo}}); err != nil {
							return err
						}
					}
				}
			}
			text, err := ctx.DecodeText(out[maxI(0, len(out)-16):])
			if err != nil {
				return err
			}
			s.Send(fmt.Sprintf("len=%d visible<=%d %s", ctx.Len(), sink+p.WindowSize+1, text))
			return ctx.Sync()
		},
	}
}

// HierarchicalParams configures HierarchicalAttention.
type HierarchicalParams struct {
	Common
	Blocks        []string `json:"blocks"`
	NumBlocks     int      `json:"num_blocks"` // synthesized when Blocks empty
	SummaryTokens int      `json:"summary_tokens"`
	AnswerTokens  int      `json:"answer_tokens"`
}

// HierarchicalAttention processes a long document block by block: each
// block is prefilled, summarized into a few tokens, and then its body KV
// is masked away so the final answer attends only the per-block summaries
// — tree-structured attention (Table 2: 42 LoC; AST-Trans-style).
func HierarchicalAttention() inferlet.Program {
	return inferlet.Program{
		Name:       "hierarchical_attention",
		BinarySize: 130 << 10,
		Manifest:   manifest(api.TraitTokenize, api.TraitOutputText),
		Run: func(s inferlet.Session) error {
			var p HierarchicalParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			if p.SummaryTokens <= 0 {
				p.SummaryTokens = 8
			}
			if p.AnswerTokens <= 0 {
				p.AnswerTokens = 16
			}
			if len(p.Blocks) == 0 {
				if p.NumBlocks <= 0 {
					p.NumBlocks = 4
				}
				for i := 0; i < p.NumBlocks; i++ {
					p.Blocks = append(p.Blocks,
						fmt.Sprintf("section %d with many details about topic %d that matter ", i, i))
				}
			}
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}
			ctx, err := support.NewContext(s, m)
			if err != nil {
				return err
			}
			defer ctx.Drop()

			for _, block := range p.Blocks {
				bodyStart := ctx.Len()
				if err := ctx.Fill(block); err != nil {
					return err
				}
				bodyEnd := ctx.Len()
				if _, err := ctx.Generate(support.GenOpts{MaxTokens: p.SummaryTokens}); err != nil {
					return err
				}
				// Keep the summary tokens visible; hide the block body.
				if err := ctx.MaskRange(bodyStart, bodyEnd, true); err != nil {
					return err
				}
			}
			if err := ctx.Fill(" overall: "); err != nil {
				return err
			}
			res, err := ctx.Generate(support.GenOpts{MaxTokens: p.AnswerTokens})
			if err != nil {
				return err
			}
			s.Send(fmt.Sprintf("blocks=%d %s", len(p.Blocks), res.Text))
			return ctx.Sync()
		},
	}
}
