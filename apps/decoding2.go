package apps

import (
	"encoding/json"
	"fmt"

	"pie/api"
	"pie/inferlet"
	"pie/support"
)

// OutputValidationParams configures OutputValidation.
type OutputValidationParams struct {
	Common
	Prompt      string `json:"prompt"`
	MaxTokens   int    `json:"max_tokens"`
	MaxAttempts int    `json:"max_attempts"`
	// Validator: "json" (default) or "nonempty".
	Validator string `json:"validator"`
}

// OutputValidation generates, checks the output with in-process Go code,
// and on failure rolls back to the prompt checkpoint and retries with a
// different sampling seed — validate-and-retry with zero re-prefill
// (Table 2: 52 LoC; ReLM-style checking).
func OutputValidation() inferlet.Program {
	return inferlet.Program{
		Name:       "output_validation",
		BinarySize: 131 << 10,
		Manifest:   manifest(api.TraitTokenize, api.TraitOutputText),
		Run: func(s inferlet.Session) error {
			var p OutputValidationParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			if p.Prompt == "" {
				p.Prompt = "Answer with a short word: "
			}
			if p.MaxTokens <= 0 {
				p.MaxTokens = 24
			}
			if p.MaxAttempts <= 0 {
				p.MaxAttempts = 4
			}
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}
			checkpoint, err := support.NewContext(s, m)
			if err != nil {
				return err
			}
			defer checkpoint.Drop()
			if err := checkpoint.Fill(p.Prompt); err != nil {
				return err
			}

			valid := func(text string) bool {
				switch p.Validator {
				case "json":
					var v interface{}
					return json.Unmarshal([]byte(text), &v) == nil
				default:
					return len(text) > 0
				}
			}
			for attempt := 0; attempt < p.MaxAttempts; attempt++ {
				// The prompt KV is shared; only the attempt's divergence
				// allocates pages, and a failed attempt frees them.
				tries, err := checkpoint.Fork(1)
				if err != nil {
					return err
				}
				try := tries[0]
				res, err := try.Generate(support.GenOpts{
					MaxTokens: p.MaxTokens,
					Sampler:   &support.TopK{K: 8, Temperature: 1.0, Seed: p.Seed + uint64(attempt)},
				})
				if err != nil {
					return err
				}
				ok := valid(res.Text)
				if err := try.Sync(); err != nil {
					return err
				}
				if err := try.Drop(); err != nil {
					return err
				}
				if ok {
					s.Send(fmt.Sprintf("valid@%d:%s", attempt, res.Text))
					return nil
				}
			}
			s.Send("invalid: all attempts failed validation")
			return nil
		},
	}
}

// SpecDecodeParams configures SpeculativeDecoding.
type SpecDecodeParams struct {
	Common
	Prompt    string `json:"prompt"`
	MaxTokens int    `json:"max_tokens"`
	DraftLen  int    `json:"draft_len"`
	NGram     int    `json:"ngram"`
	// Oracle substitutes a scripted acceptance decision (rate
	// AcceptRate) for the model-equality check. A trained model copies
	// repetitive text and so accepts most prompt-lookup drafts; the tiny
	// functional model does not, so timing experiments script the
	// acceptance while still paying for every verification forward
	// (DESIGN.md substitution policy). The same rate drives the vLLM
	// baseline's speculative decoding.
	Oracle     bool    `json:"oracle"`
	AcceptRate float64 `json:"accept_rate"`
}

// SpeculativeDecoding implements vLLM's n-gram prompt-lookup method [62]
// as a program: draft the next tokens from an earlier occurrence of the
// current n-gram, verify all of them in ONE forward that scores every
// draft position, accept the matching prefix, and mask out the rejected
// tail's KV (Table 2: 255 LoC).
func SpeculativeDecoding() inferlet.Program {
	return inferlet.Program{
		Name:       "specdec",
		BinarySize: 152 << 10,
		Manifest:   manifest(api.TraitTokenize, api.TraitOutputText),
		Run: func(s inferlet.Session) error {
			var p SpecDecodeParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			if p.Prompt == "" {
				// Prompt lookup thrives on repetition.
				p.Prompt = "the cat sat on the mat and the cat sat on the mat again because the cat "
			}
			if p.MaxTokens <= 0 {
				p.MaxTokens = 32
			}
			if p.DraftLen <= 0 {
				p.DraftLen = 4
			}
			if p.NGram <= 0 {
				p.NGram = 2
			}
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}
			ctx, err := support.NewContext(s, m)
			if err != nil {
				return err
			}
			defer ctx.Drop()
			if err := ctx.Fill(p.Prompt); err != nil {
				return err
			}
			// The frontier distribution is carried across iterations so
			// the hot path costs ONE forward per draft window: drafts and
			// their verification dists come out of the same kernel.
			lastDist, err := ctx.NextDist()
			if err != nil {
				return err
			}
			rate := p.AcceptRate
			if rate == 0 {
				rate = 0.7
			}
			oracleBit := func(salt int) bool {
				h := hash64(fmt.Sprintf("%d:%d:%d", p.Seed, ctx.Len(), salt))
				return float64(h%10000)/10000 < rate
			}
			match := func(want int, d api.Dist, salt int) bool {
				if p.Oracle {
					return oracleBit(salt)
				}
				return d.ArgMax() == want
			}
			// step appends one model-chosen token and refreshes the
			// frontier dist in a single forward.
			step := func(tok int) error {
				dists, err := ctx.ForwardTokens([]int{tok}, 1)
				if err != nil {
					return err
				}
				lastDist = dists[0]
				return nil
			}

			generated, accepted, drafted := 0, 0, 0
			for generated < p.MaxTokens {
				drafts := promptLookup(ctx.Tokens, p.NGram, p.DraftLen)
				if len(drafts) == 0 && p.Oracle {
					// Scripted-acceptance mode: the history's token
					// identities are synthetic, so lookup hits are
					// scripted too — a trained model copying repetitive
					// text drafts from the prompt window (DESIGN.md).
					start := ctx.Len() % maxI(1, ctx.Len()-p.DraftLen)
					drafts = append([]int(nil), ctx.Tokens[start:start+p.DraftLen]...)
				}
				if len(drafts) == 0 || !match(drafts[0], lastDist, -1) {
					// No lookup hit (or it disagrees with the frontier):
					// plain decode step.
					if err := step(lastDist.ArgMax()); err != nil {
						return err
					}
					generated++
					s.ReportOutputTokens(1)
					continue
				}
				// One forward verifies the whole window: position i's
				// dist predicts element i+1.
				mark := ctx.Len()
				dists, err := ctx.ForwardTokens(drafts, len(drafts))
				if err != nil {
					return err
				}
				accept := 1 // drafts[0] matched the frontier
				for i := 0; i+1 < len(drafts); i++ {
					if match(drafts[i+1], dists[i], i) {
						accept++
					} else {
						break
					}
				}
				drafted += len(drafts)
				accepted += accept
				if accept < len(drafts) {
					// Roll back the rejected tail: mask its KV, rewind
					// positions (R1: token-level cache surgery), then take
					// the model's own continuation as a bonus token.
					if err := ctx.Truncate(mark + accept); err != nil {
						return err
					}
					if err := step(dists[accept-1].ArgMax()); err != nil {
						return err
					}
					generated += accept + 1
					s.ReportOutputTokens(accept + 1)
				} else {
					lastDist = dists[len(dists)-1]
					generated += accept
					s.ReportOutputTokens(accept)
				}
			}
			tail := ctx.Tokens[len(ctx.Tokens)-minInt(generated, len(ctx.Tokens)):]
			text, err := ctx.DecodeText(tail)
			if err != nil {
				return err
			}
			s.Send(fmt.Sprintf("accepted=%d/%d %s", accepted, drafted, text))
			return ctx.Sync()
		},
	}
}

// promptLookup finds the continuation of the history's final n-gram at
// its latest earlier occurrence (Saxena's prompt-lookup decoding [62]).
func promptLookup(history []int, n, draftLen int) []int {
	if len(history) < n+1 {
		return nil
	}
	gram := history[len(history)-n:]
	// Search right-to-left, excluding the final position itself.
	for start := len(history) - n - 1; start >= 0; start-- {
		match := true
		for j := 0; j < n; j++ {
			if history[start+j] != gram[j] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		lo := start + n
		hi := lo + draftLen
		if hi > len(history) {
			hi = len(history)
		}
		if hi <= lo {
			return nil
		}
		return append([]int(nil), history[lo:hi]...)
	}
	return nil
}

// JacobiParams configures JacobiDecoding.
type JacobiParams struct {
	Common
	Prompt    string `json:"prompt"`
	MaxTokens int    `json:"max_tokens"`
	Window    int    `json:"window"`
	MaxIters  int    `json:"max_iters"`
}

// JacobiDecoding decodes a whole window in parallel by fixed-point
// iteration [61]: probe the current guess (no KV persisted), replace each
// position with the model's prediction, repeat until the window is stable
// or the iteration budget runs out, then commit the converged prefix with
// one KV-writing forward (Table 2: 88 LoC).
func JacobiDecoding() inferlet.Program {
	return inferlet.Program{
		Name:       "jacobi",
		BinarySize: 96 << 10,
		Manifest:   manifest(api.TraitTokenize, api.TraitOutputText),
		Run: func(s inferlet.Session) error {
			var p JacobiParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			if p.Prompt == "" {
				p.Prompt = "one two three four five six "
			}
			if p.MaxTokens <= 0 {
				p.MaxTokens = 24
			}
			if p.Window <= 0 {
				p.Window = 4
			}
			if p.MaxIters <= 0 {
				p.MaxIters = 6
			}
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}
			ctx, err := support.NewContext(s, m)
			if err != nil {
				return err
			}
			defer ctx.Drop()
			if err := ctx.Fill(p.Prompt); err != nil {
				return err
			}

			generated, iters := 0, 0
			for generated < p.MaxTokens {
				// Seed the window from the frontier distribution.
				d0, err := ctx.NextDist()
				if err != nil {
					return err
				}
				window := make([]int, p.Window)
				window[0] = d0.ArgMax()
				for i := 1; i < p.Window; i++ {
					window[i] = d0.Tokens[minInt(i, len(d0.Tokens)-1)]
				}
				stable := 0
				for it := 0; it < p.MaxIters; it++ {
					iters++
					dists, err := ctx.ProbeTokens(window, len(window))
					if err != nil {
						return err
					}
					next := make([]int, len(window))
					next[0] = d0.ArgMax()
					stable = 1
					changed := false
					for i := 1; i < len(window); i++ {
						next[i] = dists[i-1].ArgMax()
						if next[i] != window[i] {
							changed = true
						} else if !changed {
							stable++
						}
					}
					window = next
					if !changed {
						stable = len(window)
						break
					}
				}
				// Commit the stable prefix with a single KV-writing pass.
				commit := window[:maxI(1, stable)]
				if _, err := ctx.ForwardTokens(commit, 1); err != nil {
					return err
				}
				generated += len(commit)
				s.ReportOutputTokens(len(commit))
			}
			tail := ctx.Tokens[len(ctx.Tokens)-minInt(generated, len(ctx.Tokens)):]
			text, err := ctx.DecodeText(tail)
			if err != nil {
				return err
			}
			s.Send(fmt.Sprintf("iters=%d %s", iters, text))
			return ctx.Sync()
		},
	}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
