// Package apps contains the inferlet applications of the paper's Table 2:
// standard techniques (text completion, prefix/modular caching), custom
// decoding (EBNF, beam search, watermarking, output validation,
// speculative and Jacobi decoding), attention-level techniques (sink,
// windowed, hierarchical), deliberate prompting strategies (ToT, RoT, GoT,
// SkoT), and agentic workflows (ReACT, CodeACT, SWARM, plus the Fig. 7
// function-calling agent with its three stackable optimizations).
//
// Every program reads a JSON parameter blob from its first launch argument
// — the way a real client would configure a deployed inferlet — and
// reports results to the client with Send. Token counts (not token
// identities) parameterize the workloads, so the same programs run under
// both execution modes; content-sensitive programs (EBNF, watermarking,
// beam) use real distributions in full mode.
package apps

import (
	"encoding/json"
	"fmt"

	"pie/api"
	"pie/inferlet"
	"pie/support"
)

// Common holds parameters shared by every program.
type Common struct {
	Model string `json:"model"` // default "llama-1b"
	Seed  uint64 `json:"seed"`
}

// decodeParams unmarshals the launch-argument blob into v.
func decodeParams(s inferlet.Session, v interface{}) error {
	args := s.GetArg()
	if len(args) == 0 || args[0] == "" {
		return nil
	}
	if err := json.Unmarshal([]byte(args[0]), v); err != nil {
		return fmt.Errorf("apps: bad params: %w", err)
	}
	return nil
}

// modelInfo resolves a model name ("" means the first installed model).
func modelInfo(s inferlet.Session, name string) (api.ModelInfo, error) {
	models := s.AvailableModels()
	if name == "" {
		return models[0], nil
	}
	for _, m := range models {
		if string(m.ID) == name {
			return m, nil
		}
	}
	return api.ModelInfo{}, fmt.Errorf("apps: %w: %q", api.ErrNoSuchModel, name)
}

// All returns every registered application, ready for Engine.MustRegister.
func All() []inferlet.Program {
	return []inferlet.Program{
		TextCompletion(),
		PrefixCaching(),
		ModularCaching(),
		TreeOfThought(),
		RecursionOfThought(),
		GraphOfThought(),
		SkeletonOfThought(),
		EBNFDecoding(),
		BeamSearch(),
		Watermarking(),
		OutputValidation(),
		SpeculativeDecoding(),
		JacobiDecoding(),
		AttentionSink(),
		WindowedAttention(),
		HierarchicalAttention(),
		AgentReACT(),
		AgentCodeACT(),
		AgentSwarm(),
		AgentSwarmWorker(),
		FunctionCallAgent(),
		TextCompletionFused(),
		PrefixTree(),
	}
}

// ---------------------------------------------------------------------------
// Text completion — the baseline workload (Table 2: 38 LoC, 129 KB).

// CompletionParams configures TextCompletion.
type CompletionParams struct {
	Common
	Prompt      string  `json:"prompt"`
	MaxTokens   int     `json:"max_tokens"`
	Temperature float64 `json:"temperature"`
	TopK        int     `json:"top_k"`
	// Ack makes the program message the client before generating (the
	// Fig. 9 launch-latency probe).
	Ack bool `json:"ack"`
	// FirstTokenAck messages the client the moment the first token is
	// accepted — the TTFT probe for the cluster scaling sweep.
	FirstTokenAck bool `json:"first_token_ack"`
}

// TextCompletion is the standard autoregressive completion inferlet.
func TextCompletion() inferlet.Program {
	return inferlet.Program{
		Name:       "text_completion",
		BinarySize: 129 << 10,
		Manifest:   manifest(api.TraitTokenize, api.TraitOutputText),
		Run: func(s inferlet.Session) error {
			var p CompletionParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			if p.MaxTokens <= 0 {
				p.MaxTokens = 32
			}
			if p.Prompt == "" {
				p.Prompt = "Hello, "
			}
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}
			if p.Ack {
				s.Send("ack")
			}
			ctx, err := support.NewContext(s, m)
			if err != nil {
				return err
			}
			defer ctx.Drop()
			if err := ctx.Fill(p.Prompt); err != nil {
				return err
			}
			var sampler support.Sampler = support.Greedy{}
			if p.Temperature > 0 {
				sampler = &support.TopK{K: p.TopK, Temperature: p.Temperature, Seed: p.Seed}
			}
			var onToken func(int)
			if p.FirstTokenAck {
				sent := false
				onToken = func(int) {
					if !sent {
						sent = true
						s.Send("first-token")
					}
				}
			}
			res, err := ctx.Generate(support.GenOpts{MaxTokens: p.MaxTokens, Sampler: sampler, OnToken: onToken})
			if err != nil {
				return err
			}
			s.Send(res.Text)
			return ctx.Sync()
		},
	}
}

// ---------------------------------------------------------------------------
// Prefix caching — replicates vLLM's automatic prefix caching as a
// program (Table 2: 45 LoC; §7.3), built on export/import.

// PrefixCachingParams configures PrefixCaching.
type PrefixCachingParams struct {
	Common
	SharedPrefix string `json:"shared_prefix"`
	Prompt       string `json:"prompt"`
	MaxTokens    int    `json:"max_tokens"`
	CacheKey     string `json:"cache_key"` // default: derived from prefix
}

// PrefixCaching fills a shared prefix once per cache key: the first
// inferlet prefills and exports page-aligned KV; later ones import it and
// skip the prefill entirely.
func PrefixCaching() inferlet.Program {
	return inferlet.Program{
		Name:       "prefix_caching",
		BinarySize: 131 << 10,
		Manifest:   manifest(api.TraitTokenize, api.TraitOutputText),
		Run: func(s inferlet.Session) error {
			var p PrefixCachingParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			if p.MaxTokens <= 0 {
				p.MaxTokens = 16
			}
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}
			key := p.CacheKey
			if key == "" {
				key = fmt.Sprintf("prefix:%d:%x", len(p.SharedPrefix), hash64(p.SharedPrefix))
			}
			q, err := s.Open(m.ID)
			if err != nil {
				return err
			}
			tok, err := q.Tokenizer()
			if err != nil {
				return err
			}
			alloc, err := q.Alloc()
			if err != nil {
				return err
			}
			toksF, err := tok.Encode(p.SharedPrefix)
			if err != nil {
				return err
			}
			prefixToks, err := toksF.Get()
			if err != nil {
				return err
			}
			// Only page-aligned KV is shareable; the remainder re-fills.
			aligned := len(prefixToks) / m.PageSize * m.PageSize

			var ctx *support.Context
			if aligned > 0 && alloc.HasExport(key) {
				ctx, err = support.ImportContext(s, m, key, prefixToks[:aligned])
				if err != nil {
					return err
				}
				if err := ctx.FillTokens(prefixToks[aligned:]); err != nil {
					return err
				}
			} else {
				ctx, err = support.NewContext(s, m)
				if err != nil {
					return err
				}
				if err := ctx.FillTokens(prefixToks[:aligned]); err != nil {
					return err
				}
				if aligned > 0 {
					// Racing exporters: first one wins, losers just continue.
					_ = ctx.Export(key)
				}
				if err := ctx.FillTokens(prefixToks[aligned:]); err != nil {
					return err
				}
			}
			defer ctx.Drop()
			if err := ctx.Fill(p.Prompt); err != nil {
				return err
			}
			res, err := ctx.Generate(support.GenOpts{MaxTokens: p.MaxTokens})
			if err != nil {
				return err
			}
			s.Send(res.Text)
			return ctx.Sync()
		},
	}
}

// ---------------------------------------------------------------------------
// Modular caching — Prompt Cache-style reuse of independent prompt
// modules at schema positions (Table 2: 72 LoC; [21]).

// Module is one cacheable prompt segment.
type Module struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// ModularCachingParams configures ModularCaching.
type ModularCachingParams struct {
	Common
	// Schema declares every module and fixes its position range.
	Schema []Module `json:"schema"`
	// Use selects the modules this request includes (by name).
	Use       []string `json:"use"`
	Prompt    string   `json:"prompt"`
	MaxTokens int      `json:"max_tokens"`
	// SlotTokens is each module's fixed position budget (page-aligned
	// internally).
	SlotTokens int `json:"slot_tokens"`
}

// ModularCaching caches each module's KV independently at its schema
// position (modules attend only to themselves, like Prompt Cache), then
// composes an arbitrary subset per request without re-prefilling.
func ModularCaching() inferlet.Program {
	return inferlet.Program{
		Name:       "modular_caching",
		BinarySize: 139 << 10,
		Manifest:   manifest(api.TraitTokenize, api.TraitOutputText),
		Run: func(s inferlet.Session) error {
			var p ModularCachingParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			if p.MaxTokens <= 0 {
				p.MaxTokens = 16
			}
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}
			if p.SlotTokens <= 0 {
				p.SlotTokens = 2 * m.PageSize
			}
			p.SlotTokens = (p.SlotTokens + m.PageSize - 1) / m.PageSize * m.PageSize
			q, err := s.Open(m.ID)
			if err != nil {
				return err
			}
			alloc, err := q.Alloc()
			if err != nil {
				return err
			}

			// Ensure every used module is cached at its schema position.
			slotOf := map[string]int{}
			for i, mod := range p.Schema {
				slotOf[mod.Name] = i
			}
			var importedPages []api.KvPage
			used := 0
			for _, name := range p.Use {
				idx, ok := slotOf[name]
				if !ok {
					return fmt.Errorf("apps: module %q not in schema", name)
				}
				mod := p.Schema[idx]
				key := fmt.Sprintf("module:%x:%d", hash64(mod.Text), idx)
				if !alloc.HasExport(key) {
					if err := cacheModule(q, m, mod, idx*p.SlotTokens, p.SlotTokens, key); err != nil {
						return err
					}
				}
				pages, err := alloc.Import(key)
				if err != nil {
					return err
				}
				importedPages = append(importedPages, pages...)
				used++
			}

			// Compose: a fresh context that attends the imported modules.
			ctx, err := support.NewContext(s, m)
			if err != nil {
				return err
			}
			defer ctx.Drop()
			composed, err := support.ComposeContext(ctx, importedPages, len(p.Schema)*p.SlotTokens)
			if err != nil {
				return err
			}
			if err := composed.Fill(p.Prompt); err != nil {
				return err
			}
			res, err := composed.Generate(support.GenOpts{MaxTokens: p.MaxTokens})
			if err != nil {
				return err
			}
			s.Send(fmt.Sprintf("modules=%d %s", used, res.Text))
			return composed.Sync()
		},
	}
}

// cacheModule prefills one module in isolation at its schema position and
// exports the page-aligned KV.
func cacheModule(q *inferlet.Queue, m api.ModelInfo, mod Module, startPos, slotTokens int, key string) error {
	tok, err := q.Tokenizer()
	if err != nil {
		return err
	}
	alloc, err := q.Alloc()
	if err != nil {
		return err
	}
	text, err := q.Text()
	if err != nil {
		return err
	}
	fwd, err := q.Forward()
	if err != nil {
		return err
	}
	toksF, err := tok.Encode(mod.Text)
	if err != nil {
		return err
	}
	toks, err := toksF.Get()
	if err != nil {
		return err
	}
	if len(toks) > slotTokens {
		toks = toks[:slotTokens]
	}
	// Pad to the full slot with PAD tokens so positions stay page-aligned.
	for len(toks) < slotTokens {
		toks = append(toks, 0)
	}
	pages, err := alloc.Pages(slotTokens / m.PageSize)
	if err != nil {
		return err
	}
	emb, err := alloc.Embeds(len(toks))
	if err != nil {
		return err
	}
	defer alloc.FreeEmbeds(emb)
	pos := make([]int, len(toks))
	for i := range pos {
		pos[i] = startPos + i
	}
	if _, err := text.Embed(toks, pos, emb); err != nil {
		return err
	}
	if _, err := fwd.Run(inferlet.Input(emb...), inferlet.AppendKv(pages...)); err != nil {
		return err
	}
	if err := q.Sync(); err != nil {
		return err
	}
	return alloc.Export(key, pages)
}

// hash64 is FNV-1a for cache keys.
func hash64(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// manifest builds the standard Table 2 deployment contract: the artifact
// version plus the capability traits the program requires of a serving
// model. The registry validates these against the catalog's trait closure
// at register and launch time (api.ErrUnsatisfiedManifest), so a program
// deployed onto an engine that cannot serve it fails before it runs.
func manifest(traits ...api.Trait) inferlet.Manifest {
	return inferlet.Manifest{Version: appsVersion, Traits: traits}
}

// appsVersion is the artifact version every Table 2 program ships at.
const appsVersion = "1.0.0"
