package apps_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"pie"
	"pie/apps"
)

// newEngine builds a full-fidelity engine with every app registered and
// the agent tool services installed.
func newEngine(t *testing.T, mode pie.ExecutionMode) *pie.Engine {
	t.Helper()
	e := pie.New(pie.Config{Seed: 42, Mode: mode})
	e.MustRegister(apps.All()...)
	e.RegisterTool("search.api", 40*time.Millisecond, func(req string) string { return "search results" })
	e.RegisterTool("code.exec", 80*time.Millisecond, func(req string) string { return "exit 0" })
	e.RegisterTool("fn.api", 30*time.Millisecond, func(req string) string { return "ok" })
	return e
}

// launch runs one app with params and returns its first message.
func launch(t *testing.T, e *pie.Engine, app string, params interface{}) string {
	t.Helper()
	blob, err := json.Marshal(params)
	if err != nil {
		t.Fatal(err)
	}
	var msg string
	if err := e.RunClient(func() {
		h, err := e.Launch(pie.Spec(app, string(blob)))
		if err != nil {
			t.Errorf("launch %s: %v", app, err)
			return
		}
		msg, err = h.Recv().Get()
		if err != nil {
			t.Errorf("%s recv: %v", app, err)
			return
		}
		if err := h.Wait(); err != nil {
			t.Errorf("%s failed: %v", app, err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return msg
}

// assertNoLeak checks that an engine's page pools drained (modulo pages
// held alive by the export registry).
func assertNoLeak(t *testing.T, e *pie.Engine, allowExports bool) {
	t.Helper()
	for _, m := range e.Models() {
		inUse, _ := e.PoolStats(m)
		if inUse != 0 && !allowExports {
			t.Errorf("model %s leaked %d pages", m, inUse)
		}
	}
}

func TestTextCompletionApp(t *testing.T) {
	e := newEngine(t, pie.ModeFull)
	msg := launch(t, e, "text_completion", apps.CompletionParams{Prompt: "Hello, ", MaxTokens: 8})
	if msg == "" {
		t.Fatal("empty completion")
	}
	assertNoLeak(t, e, false)
}

func TestTextCompletionDeterministic(t *testing.T) {
	a := launch(t, newEngine(t, pie.ModeFull), "text_completion", apps.CompletionParams{Prompt: "abc ", MaxTokens: 6})
	b := launch(t, newEngine(t, pie.ModeFull), "text_completion", apps.CompletionParams{Prompt: "abc ", MaxTokens: 6})
	if a != b {
		t.Fatalf("non-deterministic completion: %q vs %q", a, b)
	}
}

func TestPrefixCachingSecondRunFaster(t *testing.T) {
	e := newEngine(t, pie.ModeFull)
	prefix := strings.Repeat("a long shared system prompt with many words ", 6)
	params := apps.PrefixCachingParams{SharedPrefix: prefix, Prompt: "query one ", MaxTokens: 4}
	var first, second time.Duration
	var m1, m2 string
	if err := e.RunClient(func() {
		t0 := e.Now()
		h1, _ := e.Launch(pie.Spec("prefix_caching", marshal(t, params)))
		m1, _ = h1.Recv().Get()
		h1.Wait()
		first = e.Now() - t0

		t0 = e.Now()
		h2, _ := e.Launch(pie.Spec("prefix_caching", marshal(t, params)))
		m2, _ = h2.Recv().Get()
		h2.Wait()
		second = e.Now() - t0
	}); err != nil {
		t.Fatal(err)
	}
	if second >= first {
		t.Fatalf("cached run (%v) not faster than cold run (%v)", second, first)
	}
	if m1 != m2 {
		t.Fatalf("cache changed output: %q vs %q", m1, m2)
	}
}

func TestModularCachingComposition(t *testing.T) {
	e := newEngine(t, pie.ModeFull)
	schema := []apps.Module{
		{Name: "sys", Text: "you are a helpful assistant "},
		{Name: "tools", Text: "tools available: search and calculate "},
		{Name: "style", Text: "answer briefly "},
	}
	msg := launch(t, e, "modular_caching", apps.ModularCachingParams{
		Schema: schema, Use: []string{"sys", "style"}, Prompt: "hi ", MaxTokens: 4,
	})
	if !strings.HasPrefix(msg, "modules=2") {
		t.Fatalf("unexpected report %q", msg)
	}
}

func TestTreeOfThought(t *testing.T) {
	e := newEngine(t, pie.ModeFull)
	msg := launch(t, e, "tot", apps.TreeParams{Depth: 2, Branch: 2, ThinkTokens: 6})
	if !strings.HasPrefix(msg, "tot:") {
		t.Fatalf("unexpected output %q", msg)
	}
	assertNoLeak(t, e, false)
}

func TestTreeOfThoughtWithToolEval(t *testing.T) {
	e := newEngine(t, pie.ModeFull)
	msg := launch(t, e, "tot", apps.TreeParams{
		Depth: 2, Branch: 2, ThinkTokens: 5, EvalURL: "http://search.api/eval",
	})
	if !strings.HasPrefix(msg, "tot:") {
		t.Fatalf("unexpected output %q", msg)
	}
	if e.Stats().ToolCalls != 4 {
		t.Fatalf("tool calls = %d, want 4 (2 levels × 2 branches)", e.Stats().ToolCalls)
	}
}

func TestRecursionOfThought(t *testing.T) {
	e := newEngine(t, pie.ModeFull)
	msg := launch(t, e, "rot", apps.RecursionParams{Depth: 2, Branch: 2, DivideTokens: 4, SolveTokens: 4})
	if !strings.HasPrefix(msg, "rot:") {
		t.Fatalf("unexpected output %q", msg)
	}
	assertNoLeak(t, e, false)
}

func TestGraphOfThought(t *testing.T) {
	e := newEngine(t, pie.ModeFull)
	msg := launch(t, e, "got", apps.GraphParams{NumChunks: 4, ChunkTokens: 5, MergeTokens: 4})
	if !strings.HasPrefix(msg, "got:") {
		t.Fatalf("unexpected output %q", msg)
	}
	assertNoLeak(t, e, false)
}

func TestSkeletonOfThought(t *testing.T) {
	e := newEngine(t, pie.ModeFull)
	msg := launch(t, e, "skot", apps.SkeletonParams{Points: 3, SkeletonTokens: 5, ExpandTokens: 5})
	if !strings.HasPrefix(msg, "skot:") || !strings.Contains(msg, "[3]") {
		t.Fatalf("unexpected output %q", msg)
	}
	assertNoLeak(t, e, false)
}

// The headline structured-generation property: grammar-constrained output
// from an untrained model is valid JSON.
func TestEBNFGeneratesValidJSON(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		e := pie.New(pie.Config{Seed: seed, Mode: pie.ModeFull})
		e.MustRegister(apps.All()...)
		msg := launch(t, e, "ebnf", apps.EBNFParams{MaxTokens: 40, Common: apps.Common{Seed: seed}})
		var v interface{}
		if err := json.Unmarshal([]byte(msg), &v); err != nil {
			t.Fatalf("seed %d: EBNF output %q is not valid JSON: %v", seed, msg, err)
		}
	}
}

func TestBeamSearch(t *testing.T) {
	e := newEngine(t, pie.ModeFull)
	msg := launch(t, e, "beam", apps.BeamParams{Width: 3, Steps: 5})
	if !strings.HasPrefix(msg, "beam[") {
		t.Fatalf("unexpected output %q", msg)
	}
	assertNoLeak(t, e, false)
}

// Beam search must find a sequence at least as likely as greedy decoding.
func TestBeamBeatsGreedyScore(t *testing.T) {
	e := newEngine(t, pie.ModeFull)
	msg := launch(t, e, "beam", apps.BeamParams{Width: 4, Steps: 6, Prompt: "score test "})
	var score float64
	if _, err := fmt.Sscanf(msg, "beam[%f]", &score); err != nil {
		t.Fatalf("cannot parse %q", msg)
	}
	if score > 0 {
		t.Fatalf("positive log-prob %f", score)
	}
}

func TestWatermarkDetectable(t *testing.T) {
	e := newEngine(t, pie.ModeFull)
	msg := launch(t, e, "watermarking", apps.WatermarkParams{MaxTokens: 60, Delta: 6})
	var z float64
	if _, err := fmt.Sscanf(msg, "z=%f", &z); err != nil {
		t.Fatalf("cannot parse %q", msg)
	}
	if z < 2 {
		t.Fatalf("watermark z-score %.2f below detection threshold", z)
	}
}

func TestWatermarkAbsentInPlainText(t *testing.T) {
	e := newEngine(t, pie.ModeFull)
	msg := launch(t, e, "text_completion", apps.CompletionParams{
		Prompt: "The quick brown ", MaxTokens: 60, Temperature: 1.0, TopK: 16,
	})
	// Recover tokens by re-encoding is lossy; instead check a freshly
	// sampled stream's z-score via the detector over pseudo tokens.
	toks := []int{}
	for i, r := range msg {
		toks = append(toks, int(r)%1000+4)
		if i > 80 {
			break
		}
	}
	if z := apps.WatermarkZScore(toks, 0xC0FFEE, 0.5); z > 3 {
		t.Fatalf("unwatermarked text scored z=%.2f", z)
	}
}

func TestOutputValidationAcceptsNonEmpty(t *testing.T) {
	e := newEngine(t, pie.ModeFull)
	msg := launch(t, e, "output_validation", apps.OutputValidationParams{
		Validator: "nonempty", MaxTokens: 6, MaxAttempts: 3,
	})
	if !strings.HasPrefix(msg, "valid@0") {
		t.Fatalf("unexpected output %q", msg)
	}
	assertNoLeak(t, e, false)
}

func TestOutputValidationRetries(t *testing.T) {
	e := newEngine(t, pie.ModeFull)
	// A random model essentially never emits valid JSON unconstrained:
	// all attempts fail, every retry reusing the prompt's KV.
	msg := launch(t, e, "output_validation", apps.OutputValidationParams{
		Validator: "json", MaxTokens: 8, MaxAttempts: 3,
	})
	if !strings.HasPrefix(msg, "invalid") && !strings.HasPrefix(msg, "valid@") {
		t.Fatalf("unexpected output %q", msg)
	}
	assertNoLeak(t, e, false)
}

func TestSpeculativeDecoding(t *testing.T) {
	e := newEngine(t, pie.ModeFull)
	msg := launch(t, e, "specdec", apps.SpecDecodeParams{MaxTokens: 16, DraftLen: 3})
	if !strings.HasPrefix(msg, "accepted=") {
		t.Fatalf("unexpected output %q", msg)
	}
	assertNoLeak(t, e, false)
}

func TestJacobiDecoding(t *testing.T) {
	e := newEngine(t, pie.ModeFull)
	msg := launch(t, e, "jacobi", apps.JacobiParams{MaxTokens: 8, Window: 3, MaxIters: 3})
	if !strings.HasPrefix(msg, "iters=") {
		t.Fatalf("unexpected output %q", msg)
	}
	assertNoLeak(t, e, false)
}

func TestAttentionSinkBoundsKV(t *testing.T) {
	e := newEngine(t, pie.ModeTiming)
	msg := launch(t, e, "attention_sink", apps.SinkParams{
		MaxTokens: 80, SinkTokens: 4, WindowSize: 16, ReleaseKv: true,
	})
	if !strings.HasPrefix(msg, "len=") {
		t.Fatalf("unexpected output %q", msg)
	}
	assertNoLeak(t, e, false)
}

func TestWindowedAttention(t *testing.T) {
	e := newEngine(t, pie.ModeTiming)
	msg := launch(t, e, "windowed_attention", apps.SinkParams{MaxTokens: 40, WindowSize: 16})
	if !strings.Contains(msg, "visible<=17") {
		t.Fatalf("window bound missing in %q", msg)
	}
}

func TestHierarchicalAttention(t *testing.T) {
	e := newEngine(t, pie.ModeFull)
	msg := launch(t, e, "hierarchical_attention", apps.HierarchicalParams{
		NumBlocks: 3, SummaryTokens: 4, AnswerTokens: 6,
	})
	if !strings.HasPrefix(msg, "blocks=3") {
		t.Fatalf("unexpected output %q", msg)
	}
}

func TestAgentReACT(t *testing.T) {
	e := newEngine(t, pie.ModeTiming)
	msg := launch(t, e, "agent_react", apps.AgentParams{Steps: 4, ThinkTokens: 6, ObsTokens: 6, FinalTokens: 6})
	if !strings.HasPrefix(msg, "agent_react:") {
		t.Fatalf("unexpected output %q", msg)
	}
	if e.Stats().ToolCalls != 4 {
		t.Fatalf("tool calls = %d, want 4", e.Stats().ToolCalls)
	}
	assertNoLeak(t, e, false)
}

func TestAgentCodeACT(t *testing.T) {
	e := newEngine(t, pie.ModeTiming)
	msg := launch(t, e, "agent_codeact", apps.AgentParams{Steps: 3, ThinkTokens: 6, ObsTokens: 6, FinalTokens: 6})
	if !strings.HasPrefix(msg, "agent_codeact:") {
		t.Fatalf("unexpected output %q", msg)
	}
}

func TestAgentSwarm(t *testing.T) {
	e := newEngine(t, pie.ModeTiming)
	msg := launch(t, e, "agent_swarm", apps.SwarmParams{Workers: 3, IOsPerWorker: 2, ThinkTokens: 5})
	if !strings.HasPrefix(msg, "swarm:") {
		t.Fatalf("unexpected output %q", msg)
	}
	st := e.Stats()
	if st.Launches != 4 { // coordinator + 3 workers
		t.Fatalf("launches = %d, want 4", st.Launches)
	}
	if st.ToolCalls != 6 {
		t.Fatalf("tool calls = %d, want 6", st.ToolCalls)
	}
	assertNoLeak(t, e, false)
}

func TestFunctionCallAgentAllOptLevels(t *testing.T) {
	for _, tc := range []struct {
		name  string
		cache bool
		async bool
		mask  bool
	}{
		{"baseline", false, false, false},
		{"cache", true, false, false},
		{"cache+async", true, true, false},
		{"cache+async+mask", true, true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := newEngine(t, pie.ModeTiming)
			msg := launch(t, e, "fncall_agent", apps.FnCallParams{
				NumAPIs: 4, HotAPIs: 1, Calls: 4, ThinkTokens: 5, SpecTokens: 32,
				OptCache: tc.cache, OptAsync: tc.async, OptMask: tc.mask,
			})
			if !strings.HasPrefix(msg, "fncall:") {
				t.Fatalf("unexpected output %q", msg)
			}
			assertNoLeak(t, e, true) // the spec cache export stays alive
		})
	}
}

// Each optimization must reduce end-to-end latency on its target workload.
func TestFunctionCallOptimizationsReduceLatency(t *testing.T) {
	runWith := func(cache, async, mask bool) time.Duration {
		e := newEngine(t, pie.ModeTiming)
		var took time.Duration
		params := apps.FnCallParams{
			NumAPIs: 6, HotAPIs: 2, Calls: 6, ThinkTokens: 6, SpecTokens: 64,
			OptCache: cache, OptAsync: async, OptMask: mask,
		}
		if err := e.RunClient(func() {
			// Warm the spec cache so OptCache measures steady state.
			if cache {
				h, _ := e.Launch(pie.Spec("fncall_agent", marshal(t, params)))
				h.Recv().Get()
				h.Wait()
			}
			t0 := e.Now()
			h, _ := e.Launch(pie.Spec("fncall_agent", marshal(t, params)))
			h.Recv().Get()
			h.Wait()
			took = e.Now() - t0
		}); err != nil {
			t.Fatal(err)
		}
		return took
	}
	base := runWith(false, false, false)
	withCache := runWith(true, false, false)
	withAsync := runWith(true, true, false)
	t.Logf("base=%v +cache=%v +async=%v", base, withCache, withAsync)
	if withCache >= base {
		t.Errorf("opt #1 (cache) did not help: %v >= %v", withCache, base)
	}
	if withAsync >= withCache {
		t.Errorf("opt #2 (async) did not help: %v >= %v", withAsync, withCache)
	}
}

func marshal(t *testing.T, v interface{}) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestAllAppsHaveDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range apps.All() {
		if p.Name == "" || p.Run == nil || p.BinarySize == 0 {
			t.Errorf("program %q incompletely defined", p.Name)
		}
		if seen[p.Name] {
			t.Errorf("duplicate program name %q", p.Name)
		}
		seen[p.Name] = true
	}
	if len(seen) < 20 {
		t.Fatalf("only %d programs registered", len(seen))
	}
}
