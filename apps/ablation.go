package apps

import (
	"pie/api"
	"pie/inferlet"
	"pie/support"
)

// FusedCompletionParams configures TextCompletionFused.
type FusedCompletionParams struct {
	Common
	Prompt    string `json:"prompt"`
	MaxTokens int    `json:"max_tokens"`
	// FuseEmbed also folds token embedding into the forward kernel
	// (full monolithic pipeline); otherwise embed_txt stays separate.
	FuseEmbed bool `json:"fuse_embed"`
}

// TextCompletionFused is the Table 3 ablation program: it decodes with
// forward_with_sampling (the negotiated Fused capability), emulating the
// monolithic pipeline's fused sampling (and optionally fused embedding)
// to measure the opportunity cost of Pie's decomposed APIs.
func TextCompletionFused() inferlet.Program {
	return inferlet.Program{
		Name:       "text_completion_fused",
		BinarySize: 129 << 10,
		Manifest:   manifest(api.TraitTokenize, api.TraitFused),
		Run: func(s inferlet.Session) error {
			var p FusedCompletionParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			if p.Prompt == "" {
				p.Prompt = "Hello, "
			}
			if p.MaxTokens <= 0 {
				p.MaxTokens = 32
			}
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}
			q, err := s.Open(m.ID)
			if err != nil {
				return err
			}
			tok, err := q.Tokenizer()
			if err != nil {
				return err
			}
			alloc, err := q.Alloc()
			if err != nil {
				return err
			}
			text, err := q.Text()
			if err != nil {
				return err
			}
			fused, err := q.Fused()
			if err != nil {
				return err
			}
			tf, err := tok.Encode(p.Prompt)
			if err != nil {
				return err
			}
			prom, err := tf.Get()
			if err != nil {
				return err
			}
			limit := len(prom) + p.MaxTokens
			pages, err := alloc.Pages((limit + m.PageSize - 1) / m.PageSize)
			if err != nil {
				return err
			}
			gen, err := alloc.Embeds(1)
			if err != nil {
				return err
			}
			sampling := inferlet.WithSampling(inferlet.TopK(1), inferlet.SampleSeed(p.Seed))

			// Prefill with fused sampling: one call yields the first token.
			pos := make([]int, len(prom))
			for i := range pos {
				pos[i] = i
			}
			promEmb, err := alloc.Embeds(len(prom))
			if err != nil {
				return err
			}
			if _, err := text.Embed(prom, pos, promEmb); err != nil {
				return err
			}
			tokF, err := fused.Run(
				inferlet.Input(promEmb...), inferlet.AppendKv(pages...),
				inferlet.Output(gen...), sampling,
			)
			if err != nil {
				return err
			}
			toks, err := tokF.Get()
			if err != nil {
				return err
			}
			cur := toks[0]
			out := []int{cur}
			s.ReportOutputTokens(1)
			if err := alloc.FreeEmbeds(promEmb); err != nil {
				return err
			}

			for i := len(prom); len(out) < p.MaxTokens; i++ {
				opts := []inferlet.ForwardOption{
					inferlet.ReadKv(pages...), inferlet.AppendKv(pages...),
					inferlet.Output(gen...), sampling,
				}
				if p.FuseEmbed {
					opts = append(opts, inferlet.InlineTokens([]int{cur}, []int{i}))
				} else {
					if _, err := text.Embed([]int{cur}, []int{i}, gen); err != nil {
						return err
					}
					opts = append(opts, inferlet.Input(gen...))
				}
				tf, err := fused.Run(opts...)
				if err != nil {
					return err
				}
				ts, err := tf.Get()
				if err != nil {
					return err
				}
				cur = ts[len(ts)-1]
				out = append(out, cur)
				s.ReportOutputTokens(1)
			}
			textF, err := tok.Decode(out)
			if err != nil {
				return err
			}
			decoded, err := textF.Get()
			if err != nil {
				return err
			}
			s.Send(decoded)
			// Queue-scoped reclamation: one Close frees the pages and both
			// embed allocations this program made.
			return q.Close()
		},
	}
}

// PrefixTreeParams configures PrefixTree.
type PrefixTreeParams struct {
	Common
	Prompt       string `json:"prompt"`
	Branches     int    `json:"branches"`
	BranchTokens int    `json:"branch_tokens"`
}

// PrefixTree is SGLang-style branching generation (the "PrefixTree" entry
// of Fig. 8): fork n continuations off one shared prompt, decode them in
// lockstep, and return all branches. The shared prefix's pages are never
// duplicated (RadixAttention-equivalent, as a program).
func PrefixTree() inferlet.Program {
	return inferlet.Program{
		Name:       "prefix_tree",
		BinarySize: 134 << 10,
		Manifest:   manifest(api.TraitTokenize, api.TraitOutputText),
		Run: func(s inferlet.Session) error {
			var p PrefixTreeParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			if p.Prompt == "" {
				p.Prompt = "Consider three different answers: "
			}
			if p.Branches <= 0 {
				p.Branches = 4
			}
			if p.BranchTokens <= 0 {
				p.BranchTokens = 16
			}
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}
			root, err := support.NewContext(s, m)
			if err != nil {
				return err
			}
			if err := root.Fill(p.Prompt); err != nil {
				return err
			}
			kids, err := root.Fork(p.Branches)
			if err != nil {
				return err
			}
			samplers := make([]support.Sampler, p.Branches)
			for i := range samplers {
				samplers[i] = &support.TopK{K: 8, Temperature: 0.9, Seed: p.Seed + uint64(i)}
			}
			res, err := support.ParallelGenerate(kids, support.GenOpts{MaxTokens: p.BranchTokens}, samplers)
			if err != nil {
				return err
			}
			for i, r := range res {
				s.Send(r.Text)
				if err := kids[i].Drop(); err != nil {
					return err
				}
			}
			if err := root.Sync(); err != nil {
				return err
			}
			return root.Drop()
		},
	}
}
