package apps

import (
	"fmt"
	"strings"

	"pie/api"
	"pie/inferlet"
	"pie/support"
)

// The deliberate prompting strategies (§7.2): each gets explicit,
// program-controlled KV reuse — fork shares prefix pages, pruned branches
// free theirs immediately — which is exactly what implicit system-wide
// caching cannot express (the paper's R1 motivation). Workloads follow
// the papers' simplified tasks: arithmetic search for ToT/RoT, document
// summarization for GoT, outline expansion for SkoT.

// TreeParams configures TreeOfThought.
type TreeParams struct {
	Common
	Prompt      string `json:"prompt"`
	Depth       int    `json:"depth"`
	Branch      int    `json:"branch"`
	ThinkTokens int    `json:"think_tokens"`
	// EvalURL, when set, scores candidates with an external symbolic
	// evaluator (integrated I/O, R3); otherwise a local Go value function
	// runs in-process.
	EvalURL string `json:"eval_url"`
}

// TreeOfThought explores a candidate tree: fork the frontier, expand each
// branch, evaluate, keep the best, free the rest (Table 2: 198 LoC).
func TreeOfThought() inferlet.Program {
	return inferlet.Program{
		Name:       "tot",
		BinarySize: 148 << 10,
		Manifest:   manifest(api.TraitTokenize, api.TraitOutputText),
		Run: func(s inferlet.Session) error {
			var p TreeParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			applyTreeDefaults(&p)
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}
			cur, err := support.NewContext(s, m)
			if err != nil {
				return err
			}
			if err := cur.Fill(p.Prompt); err != nil {
				return err
			}
			owned := true
			for d := 0; d < p.Depth; d++ {
				kids, err := cur.Fork(p.Branch)
				if err != nil {
					return err
				}
				samplers := make([]support.Sampler, p.Branch)
				for i := range samplers {
					samplers[i] = &support.TopK{K: 8, Temperature: 0.8, Seed: p.Seed + uint64(d*100+i)}
				}
				res, err := support.ParallelGenerate(kids, support.GenOpts{MaxTokens: p.ThinkTokens}, samplers)
				if err != nil {
					return err
				}
				best, bestScore := 0, -1.0
				for i, r := range res {
					score, err := scoreCandidate(s, p.EvalURL, r.Tokens)
					if err != nil {
						return err
					}
					if score > bestScore {
						best, bestScore = i, score
					}
				}
				// Free the losers' divergent pages; keep only the winner.
				for i, k := range kids {
					if i != best {
						if err := k.Drop(); err != nil {
							return err
						}
					}
				}
				if owned {
					// The old frontier's pages stay alive as the winner's
					// shared prefix; its private tail is shared too. Only
					// the decode slot can go.
					_ = owned
				}
				cur = kids[best]
				owned = true
			}
			res, err := cur.Generate(support.GenOpts{MaxTokens: p.ThinkTokens})
			if err != nil {
				return err
			}
			s.Send("tot:" + res.Text)
			return cur.Sync()
		},
	}
}

func applyTreeDefaults(p *TreeParams) {
	if p.Prompt == "" {
		p.Prompt = "Use the numbers 4 7 8 8 to make 24. "
	}
	if p.Depth <= 0 {
		p.Depth = 3
	}
	if p.Branch <= 0 {
		p.Branch = 3
	}
	if p.ThinkTokens <= 0 {
		p.ThinkTokens = 24
	}
}

// scoreCandidate evaluates a thought either with in-process Go (symbolic
// check) or an external evaluator service.
func scoreCandidate(s inferlet.Session, evalURL string, toks []int) (float64, error) {
	if evalURL == "" {
		// Local value function: a cheap deterministic surrogate for the
		// symbolic arithmetic check (R3: computation inside the inferlet).
		var h uint64 = 14695981039346656037
		for _, t := range toks {
			h = (h ^ uint64(t)) * 1099511628211
		}
		return float64(h%1000) / 1000, nil
	}
	resp, err := s.HTTPGet(evalURL).Get()
	if err != nil {
		return 0, err
	}
	return float64(hash64(resp)%1000) / 1000, nil
}

// RecursionParams configures RecursionOfThought.
type RecursionParams struct {
	Common
	Prompt       string `json:"prompt"`
	Depth        int    `json:"depth"`  // recursion depth (≤5 ⇒ ≤32 leaves)
	Branch       int    `json:"branch"` // subproblems per node (paper: 2)
	DivideTokens int    `json:"divide_tokens"`
	SolveTokens  int    `json:"solve_tokens"`
}

// RecursionOfThought solves divide-and-conquer problems: each node
// generates a decomposition, recursively solves subproblems in fresh
// short-lived contexts, splices the answers back, and frees the subproblem
// KV — a dynamic reuse pattern radix caches cannot track (Table 2: 106
// LoC; §7.2).
func RecursionOfThought() inferlet.Program {
	return inferlet.Program{
		Name:       "rot",
		BinarySize: 152 << 10,
		Manifest:   manifest(api.TraitTokenize, api.TraitOutputText),
		Run: func(s inferlet.Session) error {
			var p RecursionParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			if p.Prompt == "" {
				p.Prompt = "Compute 48*37+95*12 step by step. "
			}
			if p.Depth <= 0 {
				p.Depth = 3
			}
			if p.Branch <= 0 {
				p.Branch = 2
			}
			if p.DivideTokens <= 0 {
				p.DivideTokens = 12
			}
			if p.SolveTokens <= 0 {
				p.SolveTokens = 16
			}
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}

			var solve func(ctx *support.Context, depth int) error
			solve = func(ctx *support.Context, depth int) error {
				if depth == 0 {
					_, err := ctx.Generate(support.GenOpts{MaxTokens: p.SolveTokens})
					return err
				}
				// Divide: the node writes its decomposition.
				div, err := ctx.Generate(support.GenOpts{MaxTokens: p.DivideTokens})
				if err != nil {
					return err
				}
				for b := 0; b < p.Branch; b++ {
					// Conquer in a fresh context seeded with the
					// subproblem; the parent's KV stays resident.
					sub, err := support.NewContext(s, m)
					if err != nil {
						return err
					}
					seedText := fmt.Sprintf("subproblem %d of: %s", b, div.Text)
					if err := sub.Fill(seedText); err != nil {
						return err
					}
					if err := solve(sub, depth-1); err != nil {
						return err
					}
					// Splice the answer tokens into the parent, then free
					// the child's entire KV footprint.
					tail := sub.Tokens[len(sub.Tokens)-minInt(p.SolveTokens, len(sub.Tokens)):]
					if err := ctx.FillTokens(tail); err != nil {
						return err
					}
					if err := sub.Drop(); err != nil {
						return err
					}
				}
				return nil
			}

			root, err := support.NewContext(s, m)
			if err != nil {
				return err
			}
			defer root.Drop()
			if err := root.Fill(p.Prompt); err != nil {
				return err
			}
			if err := solve(root, p.Depth); err != nil {
				return err
			}
			final, err := root.Generate(support.GenOpts{MaxTokens: p.SolveTokens})
			if err != nil {
				return err
			}
			s.Send("rot:" + final.Text)
			return root.Sync()
		},
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// GraphParams configures GraphOfThought.
type GraphParams struct {
	Common
	Chunks      []string `json:"chunks"` // documents to summarize
	ChunkTokens int      `json:"chunk_tokens"`
	MergeTokens int      `json:"merge_tokens"`
	NumChunks   int      `json:"num_chunks"` // synthesized when Chunks empty
}

// GraphOfThought runs a map-reduce summarization graph: summarize chunks
// in parallel, then merge pairwise; each merge reuses the left operand's
// KV directly and frees both operands afterwards (Table 2: 87 LoC).
func GraphOfThought() inferlet.Program {
	return inferlet.Program{
		Name:       "got",
		BinarySize: 171 << 10,
		Manifest:   manifest(api.TraitTokenize, api.TraitOutputText),
		Run: func(s inferlet.Session) error {
			var p GraphParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			if p.ChunkTokens <= 0 {
				p.ChunkTokens = 24
			}
			if p.MergeTokens <= 0 {
				p.MergeTokens = 16
			}
			if len(p.Chunks) == 0 {
				if p.NumChunks <= 0 {
					p.NumChunks = 4
				}
				for i := 0; i < p.NumChunks; i++ {
					p.Chunks = append(p.Chunks,
						fmt.Sprintf("document part %d: the story continues with more detail about the %d events ", i, i*3))
				}
			}
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}

			// Map: summarize every chunk in lockstep-parallel contexts.
			nodes := make([]*support.Context, len(p.Chunks))
			for i, chunk := range p.Chunks {
				ctx, err := support.NewContext(s, m)
				if err != nil {
					return err
				}
				if err := ctx.Fill("summarize: " + chunk); err != nil {
					return err
				}
				nodes[i] = ctx
			}
			if _, err := support.ParallelGenerate(nodes, support.GenOpts{MaxTokens: p.ChunkTokens}, nil); err != nil {
				return err
			}

			// Reduce: pairwise merges until one node remains. The left
			// operand's context (KV included) is extended in place; the
			// right operand contributes its summary tokens and is freed.
			for len(nodes) > 1 {
				var next []*support.Context
				for i := 0; i+1 < len(nodes); i += 2 {
					left, right := nodes[i], nodes[i+1]
					tail := right.Tokens[len(right.Tokens)-minInt(p.ChunkTokens, len(right.Tokens)):]
					if err := left.FillTokens(tail); err != nil {
						return err
					}
					if err := right.Drop(); err != nil {
						return err
					}
					if _, err := left.Generate(support.GenOpts{MaxTokens: p.MergeTokens}); err != nil {
						return err
					}
					next = append(next, left)
				}
				if len(nodes)%2 == 1 {
					next = append(next, nodes[len(nodes)-1])
				}
				nodes = next
			}
			final := nodes[0]
			text, err := final.DecodeText(final.Tokens[len(final.Tokens)-minInt(p.MergeTokens, len(final.Tokens)):])
			if err != nil {
				return err
			}
			s.Send("got:" + text)
			err = final.Sync()
			final.Drop()
			return err
		},
	}
}

// SkeletonParams configures SkeletonOfThought.
type SkeletonParams struct {
	Common
	Prompt         string `json:"prompt"`
	Points         int    `json:"points"`
	SkeletonTokens int    `json:"skeleton_tokens"`
	ExpandTokens   int    `json:"expand_tokens"`
}

// SkeletonOfThought writes an outline, then expands every point in
// parallel forks sharing the skeleton's KV (Table 2: 82 LoC).
func SkeletonOfThought() inferlet.Program {
	return inferlet.Program{
		Name:       "skot",
		BinarySize: 173 << 10,
		Manifest:   manifest(api.TraitTokenize, api.TraitOutputText),
		Run: func(s inferlet.Session) error {
			var p SkeletonParams
			if err := decodeParams(s, &p); err != nil {
				return err
			}
			if p.Prompt == "" {
				p.Prompt = "Write about the history of computing. "
			}
			if p.Points <= 0 {
				p.Points = 4
			}
			if p.SkeletonTokens <= 0 {
				p.SkeletonTokens = 20
			}
			if p.ExpandTokens <= 0 {
				p.ExpandTokens = 24
			}
			m, err := modelInfo(s, p.Model)
			if err != nil {
				return err
			}
			root, err := support.NewContext(s, m)
			if err != nil {
				return err
			}
			if err := root.Fill(p.Prompt + "Outline: "); err != nil {
				return err
			}
			if _, err := root.Generate(support.GenOpts{MaxTokens: p.SkeletonTokens}); err != nil {
				return err
			}

			kids, err := root.Fork(p.Points)
			if err != nil {
				return err
			}
			// Seed each fork with its point marker, then expand in
			// lockstep: every step batches across the points.
			for i, k := range kids {
				if err := k.Fill(fmt.Sprintf(" point %d: ", i+1)); err != nil {
					return err
				}
			}
			res, err := support.ParallelGenerate(kids, support.GenOpts{MaxTokens: p.ExpandTokens}, nil)
			if err != nil {
				return err
			}
			var sb strings.Builder
			for i, r := range res {
				fmt.Fprintf(&sb, "[%d]%s", i+1, r.Text)
				if err := kids[i].Drop(); err != nil {
					return err
				}
			}
			s.Send("skot:" + sb.String())
			err = root.Sync()
			root.Drop()
			return err
		},
	}
}
